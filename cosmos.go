// Package cosmos is the public API of this COSMOS reproduction — the
// middleware of "Toward Massive Query Optimization in Large-Scale
// Distributed Stream Systems" (Zhou, Aberer, Tan — Middleware 2008).
//
// COSMOS couples a content-based Publish/Subscribe substrate (which
// eliminates duplicate data transfer and filters/projects data as early as
// possible) with a hierarchical query-distribution middleware (which places
// whole continuous queries on processors to balance load and minimize
// weighted communication cost). Queries are written in the paper's CQL
// subset; co-located queries with overlapping results are merged into one
// superset query whose shared result stream is split back per user with
// residual subscriptions (§2.1).
//
// The deployment is dynamic, setup and teardown alike: streams may be
// registered after Start (the source broker joins the running overlay and
// its advertisement re-propagates existing subscriptions toward it) and
// unregistered again (the advert withdrawal floods and every broker prunes
// the routing state the advert justified), queries may be submitted and
// cancelled at any time (cancellation retracts the routing state the
// query's subscriptions installed across the overlay AND removes the
// query's vertex, assignment and load from every level of the coordinator
// tree), and Adapt migrates queries between processors at runtime. The
// Pub/Sub substrate's routing-state lifecycle (internal/pubsub) keeps
// filtering exact under this churn: no ordering of
// advertise/subscribe/unsubscribe/unadvertise loses deliveries or leaves
// stale forwarding state behind — when the last query is cancelled and the
// last stream unregistered, every broker and the coordinator tree drain to
// empty.
//
// Typical use:
//
//	m, _ := cosmos.New(graph, processors, cosmos.Config{})
//	m.RegisterStream(cosmos.StreamDef{Name: "Station1", Source: src, ...})
//	h, _ := m.Submit(`SELECT * FROM Station1 [Now] WHERE snowHeight > 10`,
//		proxy, func(t stream.Tuple) { ... })
//	m.Start()
//	m.Publish(tuple)            // at sources, via the Pub/Sub
//	m.Adapt()                   // periodic runtime re-optimization
//	m.RegisterStream(...)       // late stream: joins the live overlay
//	h.Cancel()                  // done: engine + routing state torn down
package cosmos

import (
	"fmt"
	"reflect"
	"sort"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/engine"
	"repro/internal/hierarchy"
	"repro/internal/pubsub"
	"repro/internal/query"
	"repro/internal/querygraph"
	"repro/internal/stream"
	"repro/internal/topology"
)

// NodeID re-exports the topology node identifier.
type NodeID = topology.NodeID

// Tuple re-exports the stream element type.
type Tuple = stream.Tuple

// Config tunes the middleware.
type Config struct {
	// K is the coordinator-tree cluster-size parameter (default 4).
	K int
	// VMax is the per-coordinator coarsening budget (default 100).
	VMax int
	// Alpha is the load-imbalance slack of Eqn 3.1 (default 0.1).
	Alpha float64
	// Seed drives all randomized decisions (default 1).
	Seed uint64
	// DisableResultSharing turns off §2.1 superset-query merging
	// (used by the sharing ablation).
	DisableResultSharing bool
	// LinearMatch routes with the brokers' linear reference matcher
	// instead of the inverted matching index (used by the matching-index
	// ablation; forwarding decisions and traffic are identical either
	// way, only matching throughput differs).
	LinearMatch bool
	// Workers bounds the goroutines used by the hierarchical
	// distribution passes — both the initial Distribute and Adapt's
	// current-placement descent (0 selects GOMAXPROCS, 1 runs
	// sequentially; placements are identical for any value).
	Workers int
	// SequentialAdapt forces Adapt's descent onto the sequential
	// reference path even when Workers permits parallelism (used to
	// isolate suspected descent-concurrency problems; placements are
	// identical either way).
	SequentialAdapt bool
	// DisableSnapshotRouting turns off the brokers' lock-free snapshot
	// route path, serializing every route under its broker's mutex
	// against the live matching index (pubsub.SetSnapshotRouting). The
	// sequential reference mode for debugging; routing decisions are
	// identical, only concurrency differs. See CONCURRENCY.md.
	DisableSnapshotRouting bool
	// CoverDelta enables covering-delta re-propagation
	// (pubsub.SetCoverDelta): when a new advertisement replays a burst of
	// existing subscriptions toward its source, only the burst's maximal
	// elements under the containment order are sent — covered members are
	// suppressed locally, exactly as if the cover had arrived first. Off
	// by default so traffic-shape oracles see the reference per-sub
	// propagation; delivery and drained state are identical either way.
	CoverDelta bool
}

// StreamDef declares a source stream.
type StreamDef struct {
	Name   string
	Schema stream.Schema
	// Source is the node publishing the stream.
	Source NodeID
	// Substreams is the number of interest partitions (default 1).
	Substreams int
	// RatePerSubstream is the estimated data rate of each substream in
	// bytes/sec, used by the optimizer.
	RatePerSubstream float64
	// AvgTupleBytes sizes tuples for traffic accounting (default 56).
	AvgTupleBytes int
}

// Middleware is a COSMOS instance over a network of processors.
type Middleware struct {
	cfg    Config
	oracle *topology.Oracle
	procs  []NodeID

	mu       sync.Mutex
	registry *stream.Registry
	defs     map[string]StreamDef
	net      *pubsub.Network
	tree     *hierarchy.Tree
	engines  map[NodeID]*engine.Engine
	handles  map[string]*QueryHandle
	started  bool
	nextID   int

	subRates    []float64
	sourceOfSub []NodeID
	// optDim freezes the optimizer's interest-vector dimension at Start:
	// substreams registered later are routed by the Pub/Sub but carry no
	// interest bits until a future full redistribution.
	optDim int

	// crashed tracks source brokers removed by CrashBroker and not yet
	// rejoined; streams they publish are unreachable meanwhile.
	crashed map[NodeID]bool

	// inSubs tracks each processor's active input-subscription IDs.
	inSubs map[NodeID][]string
	// residuals maps query name -> how to split its result from the
	// shared result stream.
	residuals map[string]residualInfo
}

// New creates a middleware over the given topology and processor set.
func New(g *topology.Graph, processors []NodeID, cfg Config) (*Middleware, error) {
	if len(processors) == 0 {
		return nil, fmt.Errorf("cosmos: no processors")
	}
	if cfg.K == 0 {
		cfg.K = 4
	}
	if cfg.VMax == 0 {
		cfg.VMax = 100
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Middleware{
		cfg:      cfg,
		oracle:   topology.NewOracle(g),
		procs:    append([]NodeID(nil), processors...),
		registry: stream.NewRegistry(),
		defs:     make(map[string]StreamDef),
		engines:  make(map[NodeID]*engine.Engine),
		handles:  make(map[string]*QueryHandle),
		crashed:  make(map[NodeID]bool),
	}, nil
}

// RegisterStream declares a source stream. Streams registered before Start
// are batch-wired by it; a stream registered on a running middleware joins
// dynamically: its source broker attaches to the live overlay (a new MST
// leaf link) and the advertisement floods, re-propagating any existing
// subscriptions toward the new publisher, so queries submitted afterwards —
// or already waiting on the stream name — route correctly. Substreams
// registered after Start are routed exactly by the Pub/Sub but do not
// contribute optimizer interest bits until the next full redistribution
// (the coordinator tree's interest dimension is frozen at Start).
// Re-registering a name withdrawn by UnregisterStream revives it (original
// schema and substream slots, possibly a new source); re-registering a live
// name is an error.
func (m *Middleware) RegisterStream(def StreamDef) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, live := m.defs[def.Name]; live {
		return fmt.Errorf("cosmos: stream %q already registered", def.Name)
	}
	if m.started && m.crashed[def.Source] {
		return fmt.Errorf("cosmos: source broker %d is crashed (rejoin it first)", def.Source)
	}
	if prev, ok := m.registry.Lookup(def.Name); ok {
		// Reviving a previously unregistered stream: its substream slots
		// (and their recorded rates) are fixed in the frozen interest
		// space, so the original schema and partitioning stay; the
		// source may move — the (possibly new) source broker joins the
		// live overlay and the re-advertisement replays the waiting
		// subscriptions toward it. A revival that tries to CHANGE the
		// frozen shape (an explicitly supplied schema or substream count
		// differing from the original) is rejected, not silently ignored.
		if len(def.Schema.Attrs) > 0 && !reflect.DeepEqual(def.Schema, prev.Schema) {
			return fmt.Errorf("cosmos: stream %q revival changes the schema (unregister keeps the original)", def.Name)
		}
		if def.Substreams > 0 && def.Substreams != prev.SubCount {
			return fmt.Errorf("cosmos: stream %q revival changes substreams %d -> %d (slots are frozen)",
				def.Name, prev.SubCount, def.Substreams)
		}
		if def.AvgTupleBytes > 0 && def.AvgTupleBytes != prev.AvgTuple {
			return fmt.Errorf("cosmos: stream %q revival changes avg tuple bytes %d -> %d (frozen with the slots)",
				def.Name, prev.AvgTuple, def.AvgTupleBytes)
		}
		// RatePerSubstream is advisory only here: the optimizer's rate
		// vector is frozen with the interest space, so the recorded
		// original rates keep applying until a full redistribution.
		def.Schema = prev.Schema
		def.Substreams = prev.SubCount
		def.AvgTupleBytes = prev.AvgTuple
		m.defs[def.Name] = def
		if m.started {
			b := m.net.AddBroker(def.Source)
			b.Advertise(def.Name)
		}
		return nil
	}
	if def.Substreams <= 0 {
		def.Substreams = 1
	}
	if def.AvgTupleBytes <= 0 {
		def.AvgTupleBytes = 56
	}
	s, err := m.registry.Register(def.Name, def.Schema, int(def.Source), def.Substreams, def.AvgTupleBytes)
	if err != nil {
		return err
	}
	m.defs[def.Name] = def
	first, count := s.SubstreamRange()
	for i := 0; i < count; i++ {
		if err := m.registry.SetRate(first+i, def.RatePerSubstream); err != nil {
			return err
		}
		m.subRates = append(m.subRates, def.RatePerSubstream)
		m.sourceOfSub = append(m.sourceOfSub, def.Source)
	}
	if m.started {
		b := m.net.AddBroker(def.Source)
		b.Advertise(def.Name)
	}
	return nil
}

// UnregisterStream withdraws a registered stream: its advertisement floods
// off the overlay (pruning, at every broker, the advert state and the
// subscription records it alone justified — see pubsub.Broker.Unadvertise),
// and tuples can no longer be published on it. Queries referencing the
// stream stay submitted; their input subscriptions simply receive nothing
// until the stream is registered again, which re-advertises it and replays
// the waiting subscriptions toward the publisher. The optimizer statistics
// are frozen like registration-after-Start: the stream's substream rates
// keep their slots in the interest space until the next full
// redistribution. Unregistering an unknown stream is an error; a second
// unregistration of the same stream is therefore also an error (the first
// already removed it).
func (m *Middleware) UnregisterStream(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	def, ok := m.defs[name]
	if !ok {
		return fmt.Errorf("cosmos: unknown stream %q", name)
	}
	delete(m.defs, name)
	if m.started {
		m.net.RemoveStream(def.Source, name)
	}
	return nil
}

// QueryHandle tracks one submitted query.
type QueryHandle struct {
	Name  string
	Query *query.Query
	Proxy NodeID

	m    *Middleware
	sink func(Tuple)
	info querygraph.QueryInfo

	mu        sync.Mutex
	processor NodeID
	delivered int64
}

// Processor returns the processor currently evaluating the query.
func (h *QueryHandle) Processor() NodeID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.processor
}

// Delivered returns how many result tuples reached the user.
func (h *QueryHandle) Delivered() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.delivered
}

// Cancel withdraws the query from the middleware: the user-side result
// subscription is unsubscribed at the proxy (retracting its routing state
// across the overlay), the query is removed from its processor's engine,
// the processor's input subscriptions are recomputed from the queries that
// remain — shrinking or retracting the pushed-down union filters — and the
// coordinator tree removes the query's graph vertex, assignment entry and
// load contribution at every level (hierarchy.Tree.Remove), so sustained
// submit/cancel churn keeps the optimizer's load picture exact. Cancelling
// a handle that was already cancelled is a no-op and reports success, as
// does cancelling before Start (the query simply leaves the pending batch).
func (h *QueryHandle) Cancel() error {
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.handles[h.Name]; !ok {
		return nil // already cancelled: idempotent
	}
	delete(m.handles, h.Name)
	delete(m.residuals, h.Name)
	h.mu.Lock()
	proc := h.processor
	h.processor = -1
	h.mu.Unlock()
	if !m.started {
		return nil
	}
	m.tree.Remove(h.Name)
	if pb, ok := m.net.Broker(h.Proxy); ok {
		pb.Unsubscribe("user/" + h.Name)
	}
	if proc >= 0 {
		if err := m.rewire(proc); err != nil {
			return err
		}
		// Rewiring regroups the survivors at the processor: a query
		// that shared a superset with the cancelled one now feeds from
		// a different merged query (different result tag and
		// residual), so its user-side subscription must be rebuilt —
		// exactly as Adapt does after migrations.
		names := make([]string, 0, len(m.handles))
		for name, other := range m.handles {
			if other.processor == proc {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			if err := m.wireUserSide(m.handles[name]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Cancelled reports whether the query has been withdrawn.
func (h *QueryHandle) Cancelled() bool {
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.handles[h.Name]
	return !ok
}

// Submit parses and registers a continuous query whose results are
// delivered to sink at the given proxy processor. Queries submitted before
// Start are batch-distributed by Start; later submissions are routed online
// through the coordinator tree (§3.6).
func (m *Middleware) Submit(cql string, proxy NodeID, sink func(Tuple)) (*QueryHandle, error) {
	q, err := query.Parse(cql)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.isProcessor(proxy) {
		return nil, fmt.Errorf("cosmos: proxy %d is not a processor", proxy)
	}
	q.Name = fmt.Sprintf("Q%d", m.nextID)
	m.nextID++
	info, err := m.compile(q, proxy)
	if err != nil {
		return nil, err
	}
	h := &QueryHandle{
		Name:      q.Name,
		Query:     q,
		Proxy:     proxy,
		m:         m,
		sink:      sink,
		info:      info,
		processor: -1,
	}
	m.handles[q.Name] = h

	if m.started {
		proc, err := m.tree.Insert(info)
		if err != nil {
			return nil, err
		}
		h.processor = proc
		if err := m.rewire(proc); err != nil {
			return nil, err
		}
		if err := m.wireUserSide(h); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// compile derives the optimizer's view of a query: substream interest over
// its FROM streams, load and result-rate estimates.
func (m *Middleware) compile(q *query.Query, proxy NodeID) (querygraph.QueryInfo, error) {
	dim := len(m.subRates)
	if m.started {
		dim = m.optDim
	}
	interest := bitvec.New(dim)
	var inputRate float64
	for _, name := range q.StreamNames() {
		s, ok := m.registry.Lookup(name)
		if !ok {
			return querygraph.QueryInfo{}, fmt.Errorf("cosmos: query references unknown stream %q", name)
		}
		first, count := s.SubstreamRange()
		for i := 0; i < count; i++ {
			interest.Set(first + i)
			inputRate += m.subRates[first+i]
		}
		// Validate attribute references against the schema.
		for _, p := range q.Where {
			for _, col := range []*query.ColRef{p.Left.Col, p.Right.Col} {
				if col == nil {
					continue
				}
				ref, ok := q.RefByAlias(col.Alias)
				if !ok || ref.Stream != name {
					continue
				}
				if !s.Schema.HasAttr(col.Attr) {
					return querygraph.QueryInfo{}, fmt.Errorf(
						"cosmos: stream %q has no attribute %q", name, col.Attr)
				}
			}
		}
	}
	return querygraph.QueryInfo{
		Name:       q.Name,
		Proxy:      proxy,
		Load:       0.001 * inputRate,
		Interest:   interest,
		ResultRate: 0.1 * inputRate,
		StateSize:  inputRate,
	}, nil
}

// Start distributes the pending queries, builds the Pub/Sub overlay and the
// per-processor engines, and wires all subscriptions.
func (m *Middleware) Start() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return fmt.Errorf("cosmos: already started")
	}
	if len(m.defs) == 0 {
		return fmt.Errorf("cosmos: no streams registered")
	}

	// Broker overlay spans processors and source nodes.
	nodeSet := make(map[NodeID]bool, len(m.procs)+len(m.defs))
	for _, p := range m.procs {
		nodeSet[p] = true
	}
	for _, def := range m.defs {
		nodeSet[def.Source] = true
	}
	nodes := make([]NodeID, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	net, err := pubsub.NewNetwork(m.oracle, nodes)
	if err != nil {
		return err
	}
	if m.cfg.LinearMatch {
		net.SetLinearMatching(true)
	}
	if m.cfg.DisableSnapshotRouting {
		net.SetSnapshotRouting(false)
	}
	if m.cfg.CoverDelta {
		net.SetCoverDelta(true)
	}
	m.net = net
	// Sources advertise their streams; processors advertise the result
	// streams they may create.
	for _, def := range m.defs {
		b, _ := net.Broker(def.Source)
		b.Advertise(def.Name)
	}
	for _, p := range m.procs {
		b, _ := net.Broker(p)
		b.Advertise(resultStreamName(p))
		m.engines[p] = engine.New()
	}

	// Distribute the batch.
	m.optDim = len(m.subRates)
	tree, err := hierarchy.Build(m.oracle, m.procs, nil, hierarchy.Config{
		K: m.cfg.K, VMax: m.cfg.VMax, Alpha: m.cfg.Alpha, Seed: m.cfg.Seed,
		Workers: m.cfg.Workers, SequentialAdapt: m.cfg.SequentialAdapt,
	})
	if err != nil {
		return err
	}
	m.tree = tree
	infos := make([]querygraph.QueryInfo, 0, len(m.handles))
	names := make([]string, 0, len(m.handles))
	for name := range m.handles {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		infos = append(infos, m.handles[name].info)
	}
	if len(infos) > 0 {
		if _, err := tree.Distribute(infos, m.subRates, m.sourceOfSub); err != nil {
			return err
		}
	} else if _, err := tree.Distribute(nil, m.subRates, m.sourceOfSub); err != nil {
		return err
	}
	for name, proc := range tree.Placement() {
		if h, ok := m.handles[name]; ok {
			h.processor = proc
		}
	}
	m.started = true

	// Wire every processor and every user.
	for _, p := range m.procs {
		if err := m.rewire(p); err != nil {
			return err
		}
	}
	for _, name := range names {
		if err := m.wireUserSide(m.handles[name]); err != nil {
			return err
		}
	}
	return nil
}

// Publish injects a source tuple at its stream's source broker.
func (m *Middleware) Publish(t Tuple) error {
	m.mu.Lock()
	def, ok := m.defs[t.Stream]
	net := m.net
	down := ok && m.crashed[def.Source]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("cosmos: unknown stream %q", t.Stream)
	}
	if net == nil {
		return fmt.Errorf("cosmos: not started")
	}
	if down {
		return fmt.Errorf("cosmos: stream %q source broker %d is crashed", t.Stream, def.Source)
	}
	if t.Size == 0 {
		t.Size = def.AvgTupleBytes
	}
	b, ok := net.Broker(def.Source)
	if !ok {
		return fmt.Errorf("cosmos: no broker at source %d", def.Source)
	}
	b.Publish(t)
	return nil
}

// Adapt runs one hierarchical adaptation round and migrates queries whose
// processor changed, rewiring subscriptions.
func (m *Middleware) Adapt() (migrations int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		return 0, fmt.Errorf("cosmos: not started")
	}
	rep, err := m.tree.Adapt(nil)
	if err != nil {
		return 0, err
	}
	touched := make(map[NodeID]bool)
	for name, proc := range m.tree.Placement() {
		h, ok := m.handles[name]
		if !ok {
			continue
		}
		if h.processor != proc {
			touched[h.processor] = true
			touched[proc] = true
			h.processor = proc
		}
	}
	for p := range touched {
		if err := m.rewire(p); err != nil {
			return rep.Migrations, err
		}
	}
	if len(touched) > 0 {
		for _, h := range m.handles {
			if err := m.wireUserSide(h); err != nil {
				return rep.Migrations, err
			}
		}
	}
	return rep.Migrations, nil
}

// CrashBroker simulates the ungraceful failure of a source broker: the
// broker vanishes without unadvertising or retracting anything. Its former
// neighbors detach the dead link — withdrawing every advert and
// subscription record learned through it, exactly as if the withdrawals had
// been sent — and the overlay re-attaches around the gap
// (pubsub.Network.RemoveBroker). Streams published at the crashed broker
// become unreachable (Publish errors, RegisterStream at that source is
// refused) until RejoinBroker. Crashing a processor node is refused:
// processor failure would orphan engine state and query placements, whose
// recovery is a separate concern (see ROADMAP).
func (m *Middleware) CrashBroker(n NodeID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		return fmt.Errorf("cosmos: not started")
	}
	if m.isProcessor(n) {
		return fmt.Errorf("cosmos: broker %d hosts a processor (processor crash recovery is not supported)", n)
	}
	if m.crashed[n] {
		return fmt.Errorf("cosmos: broker %d already crashed", n)
	}
	if !m.net.RemoveBroker(n) {
		return fmt.Errorf("cosmos: no broker at node %d", n)
	}
	m.crashed[n] = true
	return nil
}

// RejoinBroker brings a crashed source broker back: a fresh broker attaches
// to the live overlay (its attach link resyncs the surviving advert state
// and replays waiting subscriptions — pubsub.Network.AddBroker) and every
// stream still registered at that source re-advertises under a new epoch,
// re-propagating existing subscriptions toward the publisher. The healed
// overlay is state-equivalent to one where the broker never crashed.
func (m *Middleware) RejoinBroker(n NodeID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.crashed[n] {
		return fmt.Errorf("cosmos: broker %d is not crashed", n)
	}
	delete(m.crashed, n)
	b := m.net.AddBroker(n)
	names := make([]string, 0, 2)
	for name, def := range m.defs {
		if def.Source == n {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		b.Advertise(name)
	}
	return nil
}

// Traffic returns the Pub/Sub substrate's traffic report.
func (m *Middleware) Traffic() pubsub.TrafficReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.net == nil {
		return pubsub.TrafficReport{}
	}
	return m.net.Traffic()
}

// EngineStats sums engine counters across processors.
func (m *Middleware) EngineStats() engine.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total engine.Stats
	for _, e := range m.engines {
		s := e.Stats()
		total.Consumed += s.Consumed
		total.Emitted += s.Emitted
		total.Dropped += s.Dropped
	}
	return total
}

// Placement returns the current query→processor map.
func (m *Middleware) Placement() map[string]NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]NodeID, len(m.handles))
	for name, h := range m.handles {
		out[name] = h.processor
	}
	return out
}

func (m *Middleware) isProcessor(n NodeID) bool {
	for _, p := range m.procs {
		if p == n {
			return true
		}
	}
	return false
}

func resultStreamName(p NodeID) string { return fmt.Sprintf("results@%d", p) }
