// This file wires a placed query into the pub/sub overlay: subscribing its
// processor to the union of the input filters it needs (early filtering and
// projection, §2), tagging and splitting shared superset result streams,
// and rewiring when Adapt moves the placement. Everything here is
// middleware-internal; the public API lives in cosmos.go.

package cosmos

import (
	"fmt"
	"sort"

	"repro/internal/pubsub"
	"repro/internal/query"
	"repro/internal/stream"
)

// queryTag is the result-tuple attribute carrying the producing (superset)
// query's name, letting proxies split a shared result stream (§2.1).
const queryTag = "__q"

// residualInfo records how a user recovers its exact result from the
// (possibly shared) result stream of its processor.
type residualInfo struct {
	super    string // superset query name evaluated at the processor
	residual query.Residual
}

// rewire rebuilds the engine content and input subscriptions of one
// processor from the queries currently placed there: co-located queries
// with compatible structure are merged into superset queries (§2.1), the
// processor subscribes to its input streams with union filters (early
// filtering in the Pub/Sub), and each user's residual is recorded.
func (m *Middleware) rewire(proc NodeID) error {
	eng, ok := m.engines[proc]
	if !ok {
		return fmt.Errorf("cosmos: no engine at processor %d", proc)
	}
	broker, ok := m.net.Broker(proc)
	if !ok {
		return fmt.Errorf("cosmos: no broker at processor %d", proc)
	}

	// Tear down previous state.
	for _, name := range eng.QueryNames() {
		if _, err := eng.RemoveQuery(name); err != nil {
			return err
		}
	}
	for _, id := range m.inSubs[proc] {
		broker.Unsubscribe(id)
	}
	if m.inSubs == nil {
		m.inSubs = make(map[NodeID][]string)
	}
	m.inSubs[proc] = nil
	if m.residuals == nil {
		m.residuals = make(map[string]residualInfo)
	}

	// Queries placed here, deterministically ordered.
	var local []*QueryHandle
	for _, h := range m.handles {
		if h.processor == proc {
			local = append(local, h)
		}
	}
	sort.Slice(local, func(i, j int) bool { return local[i].Name < local[j].Name })
	if len(local) == 0 {
		return nil
	}

	// Group queries for result-stream sharing.
	type group struct {
		super     *query.Query
		residuals map[string]query.Residual
	}
	var groups []group
	if m.cfg.DisableResultSharing {
		for _, h := range local {
			groups = append(groups, soloGroup(h.Query))
		}
	} else {
		asts := make([]*query.Query, len(local))
		for i, h := range local {
			asts[i] = h.Query
		}
		merged, leftovers := query.MergeAll(asts)
		for _, mr := range merged {
			g := group{super: mr.Super, residuals: make(map[string]query.Residual, len(mr.Residuals))}
			for _, r := range mr.Residuals {
				g.residuals[r.Query.Name] = r
			}
			groups = append(groups, g)
		}
		for _, q := range leftovers {
			groups = append(groups, soloGroup(q))
		}
	}

	resultStream := resultStreamName(proc)
	for _, g := range groups {
		super := g.super
		superName := super.Name
		sink := func(t stream.Tuple) {
			t.Attrs[queryTag] = stream.StringVal(superName)
			t.Size += 16
			broker.Publish(t)
		}
		if err := eng.AddQuery(super, resultStream, sink); err != nil {
			return err
		}
		for name, r := range g.residuals {
			m.residuals[name] = residualInfo{super: superName, residual: r}
		}
	}

	// Input subscriptions: one per input stream with union filters.
	for _, streamName := range inputStreams(local) {
		sub := &pubsub.Subscription{
			ID:      fmt.Sprintf("in@%d/%s", proc, streamName),
			Streams: []string{streamName},
			Filters: unionFilters(local, streamName),
			Attrs:   neededAttrs(local, streamName),
		}
		if err := broker.Subscribe(sub, func(_ *pubsub.Subscription, t stream.Tuple) {
			eng.Process(t)
		}); err != nil {
			return err
		}
		m.inSubs[proc] = append(m.inSubs[proc], sub.ID)
	}
	return nil
}

// soloGroup wraps an unmergeable query as its own group with an empty
// residual (it recovers its result with only the query-tag filter).
func soloGroup(q *query.Query) struct {
	super     *query.Query
	residuals map[string]query.Residual
} {
	return struct {
		super     *query.Query
		residuals map[string]query.Residual
	}{
		super: q,
		residuals: map[string]query.Residual{
			q.Name: {Query: q},
		},
	}
}

// inputStreams returns the distinct input stream names of the handles.
func inputStreams(hs []*QueryHandle) []string {
	seen := make(map[string]bool)
	var out []string
	for _, h := range hs {
		for _, name := range h.Query.StreamNames() {
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// unionFilters computes the filters safe to push into the Pub/Sub for one
// input stream at a processor: a column filter is kept only when EVERY
// local query reading the stream constrains that column, and then with the
// union (weakest) interval, so no query loses tuples it needs.
func unionFilters(hs []*QueryHandle, streamName string) []query.Predicate {
	var perQuery []map[string]query.Interval
	for _, h := range hs {
		for _, ref := range h.Query.From {
			if ref.Stream != streamName {
				continue
			}
			ivs := make(map[string]query.Interval)
			for _, p := range h.Query.SelectionsFor(ref.Alias) {
				p = p.Normalize()
				attr := p.Left.Col.Attr
				iv, ok := ivs[attr]
				if !ok {
					iv = query.FullInterval()
				}
				ivs[attr] = iv.Constrain(p.Op, *p.Right.Lit)
			}
			perQuery = append(perQuery, ivs)
		}
	}
	if len(perQuery) == 0 {
		return nil
	}
	// Columns constrained by every reader.
	common := make([]string, 0, len(perQuery[0]))
	for attr := range perQuery[0] {
		inAll := true
		for _, ivs := range perQuery[1:] {
			if _, ok := ivs[attr]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			common = append(common, attr)
		}
	}
	sort.Strings(common)
	var out []query.Predicate
	for _, attr := range common {
		u := perQuery[0][attr]
		for _, ivs := range perQuery[1:] {
			u = u.Union(ivs[attr])
		}
		out = append(out, u.Predicates(query.ColRef{Attr: attr})...)
	}
	return out
}

// neededAttrs returns the attribute projection to request for one input
// stream: nil (all) when any local query selects a star over it, else the
// union of projected and referenced attributes.
func neededAttrs(hs []*QueryHandle, streamName string) []string {
	want := make(map[string]bool)
	for _, h := range hs {
		for _, ref := range h.Query.From {
			if ref.Stream != streamName {
				continue
			}
			for _, p := range h.Query.Select {
				switch {
				case p.Star && (p.Col.Alias == "" || p.Col.Alias == ref.Alias):
					return nil
				case !p.Star && p.Col.Alias == ref.Alias:
					want[p.Col.Attr] = true
				}
			}
			for _, p := range h.Query.Where {
				for _, col := range []*query.ColRef{p.Left.Col, p.Right.Col} {
					if col != nil && col.Alias == ref.Alias {
						want[col.Attr] = true
					}
				}
			}
		}
	}
	out := make([]string, 0, len(want)+1)
	for a := range want {
		if a != "timestamp" {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// wireUserSide (re)subscribes a user's proxy to its query's result stream,
// applying the residual filters and window re-checks that split a shared
// superset result back into the exact per-user result (§2.1).
func (m *Middleware) wireUserSide(h *QueryHandle) error {
	if h.processor < 0 {
		return fmt.Errorf("cosmos: query %s is not placed", h.Name)
	}
	proxyBroker, ok := m.net.Broker(h.Proxy)
	if !ok {
		return fmt.Errorf("cosmos: no broker at proxy %d", h.Proxy)
	}
	ri, ok := m.residuals[h.Name]
	if !ok {
		return fmt.Errorf("cosmos: query %s has no residual record", h.Name)
	}

	subID := "user/" + h.Name
	proxyBroker.Unsubscribe(subID)

	filters := []query.Predicate{tagFilter(ri.super)}
	for _, f := range ri.residual.Filters {
		filters = append(filters, qualifyFilter(f))
	}
	sub := &pubsub.Subscription{
		ID:      subID,
		Streams: []string{resultStreamName(h.processor)},
		Filters: filters,
		Attrs:   residualAttrs(ri.residual),
	}
	windows := ri.residual.Windows
	sink := h.sink
	// A projected (non-star) subscription receives a private per-delivery
	// map from the broker's projection, so the routing tag can be stripped
	// in place; only star subscriptions get the shared full-tuple map (the
	// pubsub.Handler read-only contract) and must copy before mutating.
	sharedAttrs := sub.Attrs == nil
	handler := func(_ *pubsub.Subscription, t stream.Tuple) {
		// Re-enforce the windows the superset widened.
		for alias, w := range windows {
			v, ok := t.Get(alias + ".timestamp")
			if !ok {
				return
			}
			age := t.Timestamp - int64(v.F)
			if age < 0 || age > w.Span.Milliseconds() {
				return
			}
		}
		if sharedAttrs {
			attrs := make(map[string]stream.Value, len(t.Attrs))
			for a, v := range t.Attrs {
				if a != queryTag {
					attrs[a] = v
				}
			}
			t.Attrs = attrs
		} else {
			delete(t.Attrs, queryTag)
		}
		h.mu.Lock()
		h.delivered++
		h.mu.Unlock()
		if sink != nil {
			sink(t)
		}
	}
	return proxyBroker.Subscribe(sub, handler)
}

// tagFilter matches the producing superset query's tag.
func tagFilter(superName string) query.Predicate {
	col := &query.ColRef{Attr: queryTag}
	lit := stream.StringVal(superName)
	return query.Predicate{Left: query.Operand{Col: col}, Op: query.Eq, Right: query.Operand{Lit: &lit}}
}

// qualifyFilter rewrites a residual predicate (over superset aliases) to
// the flat qualified-attribute space of result tuples.
func qualifyFilter(p query.Predicate) query.Predicate {
	q := func(o query.Operand) query.Operand {
		if o.Col == nil {
			return o
		}
		return query.Operand{Col: &query.ColRef{Attr: o.Col.Alias + "." + o.Col.Attr}}
	}
	return query.Predicate{Left: q(p.Left), Op: p.Op, Right: q(p.Right)}
}

// residualAttrs converts a residual projection into the qualified attribute
// list to request; nil (all) when it contains a star.
func residualAttrs(r query.Residual) []string {
	if len(r.Projection) == 0 {
		return nil
	}
	var out []string
	for _, p := range r.Projection {
		if p.Star {
			return nil
		}
		out = append(out, p.Col.Alias+"."+p.Col.Attr)
	}
	out = append(out, queryTag)
	sort.Strings(out)
	return out
}
