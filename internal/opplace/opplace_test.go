package opplace

import (
	"testing"

	"repro/internal/query"
	"repro/internal/topology"
)

// fixedModel is a deterministic RateModel for tests.
type fixedModel struct {
	rates   map[string]float64
	sources map[string]topology.NodeID
}

func (m fixedModel) StreamRate(name string) float64 { return m.rates[name] }
func (m fixedModel) SourceOf(name string) (topology.NodeID, bool) {
	n, ok := m.sources[name]
	return n, ok
}
func (m fixedModel) Selectivity(string, []query.Predicate) float64 { return 0.5 }
func (m fixedModel) JoinFactor(*query.Query) float64               { return 0.1 }

func testModel() fixedModel {
	return fixedModel{
		rates:   map[string]float64{"R": 100, "S": 80},
		sources: map[string]topology.NodeID{"R": 0, "S": 1},
	}
}

func lineOracle(t *testing.T, n int) *topology.Oracle {
	t.Helper()
	g := topology.NewGraph(n)
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(topology.NodeID(i), topology.NodeID(i+1), 5); err != nil {
			t.Fatal(err)
		}
	}
	return topology.NewOracle(g)
}

func TestAddQueryBuildsSharedOperators(t *testing.T) {
	g := NewGraph()
	model := testModel()
	q1 := query.MustParse(`SELECT * FROM R [Now], S [Now] WHERE R.a = S.a AND R.x > 10`)
	q1.Name = "q1"
	q2 := query.MustParse(`SELECT * FROM R [Now], S [Now] WHERE R.a = S.a AND R.x > 10`)
	q2.Name = "q2"
	if err := g.AddQuery(q1, 5, model); err != nil {
		t.Fatal(err)
	}
	if err := g.AddQuery(q2, 6, model); err != nil {
		t.Fatal(err)
	}
	counts := g.OperatorCount()
	// Identical structure: shared sources, shared selection, shared join;
	// only the sinks differ.
	if counts[OpSource] != 2 {
		t.Errorf("sources = %d, want 2", counts[OpSource])
	}
	if counts[OpSelect] != 1 {
		t.Errorf("selections = %d, want 1 (shared)", counts[OpSelect])
	}
	if counts[OpJoin] != 1 {
		t.Errorf("joins = %d, want 1 (shared)", counts[OpJoin])
	}
	if counts[OpSink] != 2 {
		t.Errorf("sinks = %d, want 2", counts[OpSink])
	}
}

func TestDifferentPredicatesNotShared(t *testing.T) {
	g := NewGraph()
	model := testModel()
	q1 := query.MustParse(`SELECT * FROM R [Now] WHERE x > 10`)
	q1.Name = "a"
	q2 := query.MustParse(`SELECT * FROM R [Now] WHERE x > 20`)
	q2.Name = "b"
	_ = g.AddQuery(q1, 5, model)
	_ = g.AddQuery(q2, 6, model)
	if got := g.OperatorCount()[OpSelect]; got != 2 {
		t.Errorf("selections = %d, want 2 (different thresholds)", got)
	}
}

func TestSelectionRateUsesSelectivity(t *testing.T) {
	g := NewGraph()
	model := testModel()
	q := query.MustParse(`SELECT * FROM R [Now] WHERE x > 10`)
	q.Name = "q"
	if err := g.AddQuery(q, 5, model); err != nil {
		t.Fatal(err)
	}
	for _, op := range g.Ops {
		if op.Kind == OpSelect && op.OutRate != 50 { // 100 * 0.5
			t.Errorf("selection rate = %v, want 50", op.OutRate)
		}
	}
}

func TestPlacePinsAndImproves(t *testing.T) {
	oracle := lineOracle(t, 8)
	g := NewGraph()
	model := testModel()
	for i, text := range []string{
		`SELECT * FROM R [Now], S [Now] WHERE R.a = S.a AND R.x > 10`,
		`SELECT * FROM R [Now], S [Now] WHERE R.a = S.a AND S.y < 3`,
	} {
		q := query.MustParse(text)
		q.Name = string(rune('a' + i))
		if err := g.AddQuery(q, topology.NodeID(6+i), model); err != nil {
			t.Fatal(err)
		}
	}
	candidates := []topology.NodeID{2, 3, 4, 5}
	// Legal naive baseline: every movable operator on one processor.
	for _, op := range g.Ops {
		if !op.Pinned {
			op.Node = candidates[0]
		}
	}
	before := g.Cost(oracle)
	g.Place(oracle, candidates, 3)
	after := g.Cost(oracle)
	if after > before {
		t.Errorf("placement worsened cost: %v -> %v", before, after)
	}
	for _, op := range g.Ops {
		switch op.Kind {
		case OpSource:
			if op.Node != 0 && op.Node != 1 {
				t.Errorf("source moved to %d", op.Node)
			}
		case OpSink:
			if op.Node != 6 && op.Node != 7 {
				t.Errorf("sink moved to %d", op.Node)
			}
		default:
			found := false
			for _, c := range candidates {
				if op.Node == c {
					found = true
				}
			}
			if !found {
				t.Errorf("%v operator placed off-candidate at %d", op.Kind, op.Node)
			}
		}
	}
}

func TestUnknownStreamRejected(t *testing.T) {
	g := NewGraph()
	q := query.MustParse(`SELECT * FROM Mystery [Now]`)
	q.Name = "m"
	if err := g.AddQuery(q, 5, testModel()); err == nil {
		t.Error("unknown stream accepted")
	}
}

func TestTopoOrderSourcesFirst(t *testing.T) {
	g := NewGraph()
	model := testModel()
	q := query.MustParse(`SELECT * FROM R [Now], S [Now] WHERE R.a = S.a AND R.x > 1`)
	q.Name = "q"
	if err := g.AddQuery(q, 5, model); err != nil {
		t.Fatal(err)
	}
	seen := make(map[*Operator]bool)
	for _, op := range g.topoOrder() {
		for _, in := range op.Inputs {
			if !seen[in] {
				t.Errorf("operator %v ordered before its input", op.Kind)
			}
		}
		seen[op] = true
	}
	if len(seen) != len(g.Ops) {
		t.Errorf("topo order covers %d of %d", len(seen), len(g.Ops))
	}
}
