// Package opplace implements the operator-placement baseline of the
// prototype study (§4.2): a NiagaraCQ-style global operator graph with
// shared selections and joins, plus a network-aware greedy placement in the
// spirit of Ahmad et al. [3]. COSMOS is compared against it on plan quality
// (weighted communication cost) and optimizer running time (Fig 11).
package opplace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/query"
	"repro/internal/topology"
)

// OpKind classifies operators.
type OpKind int

// Operator kinds.
const (
	OpSource OpKind = iota + 1
	OpSelect
	OpJoin
	OpSink
)

func (k OpKind) String() string {
	switch k {
	case OpSource:
		return "source"
	case OpSelect:
		return "select"
	case OpJoin:
		return "join"
	case OpSink:
		return "sink"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Operator is one vertex of the global operator graph.
type Operator struct {
	ID   int
	Kind OpKind
	// Stream is the input stream name (sources) or a description key.
	Stream string
	// Signature is the sharing key: operators with equal signatures are
	// the same operator (NiagaraCQ-style group sharing).
	Signature string
	// Inputs and Consumers wire the DAG.
	Inputs    []*Operator
	Consumers []*Operator
	// OutRate is the estimated output rate in bytes/sec.
	OutRate float64
	// Load is the estimated CPU load.
	Load float64
	// Node is the placement; Pinned operators (sources, sinks) cannot
	// move.
	Node   topology.NodeID
	Pinned bool
}

// Graph is the shared global operator graph.
type Graph struct {
	Ops []*Operator

	bySig map[string]*Operator
}

// NewGraph returns an empty operator graph.
func NewGraph() *Graph {
	return &Graph{bySig: make(map[string]*Operator)}
}

// RateModel supplies the statistics the optimizer needs.
type RateModel interface {
	// StreamRate returns a stream's raw rate in bytes/sec.
	StreamRate(name string) float64
	// SourceOf returns the node publishing a stream.
	SourceOf(name string) (topology.NodeID, bool)
	// Selectivity estimates the pass fraction of a selection
	// conjunction over a stream.
	Selectivity(streamName string, preds []query.Predicate) float64
	// JoinFactor estimates output rate of a join as a fraction of the
	// product of input rates (per byte heuristics folded in).
	JoinFactor(q *query.Query) float64
}

// shared returns the operator with the given signature, creating it with
// mk() on first use.
func (g *Graph) shared(sig string, mk func() *Operator) *Operator {
	if op, ok := g.bySig[sig]; ok {
		return op
	}
	op := mk()
	op.ID = len(g.Ops)
	op.Signature = sig
	g.Ops = append(g.Ops, op)
	g.bySig[sig] = op
	return op
}

func connect(from, to *Operator) {
	for _, c := range from.Consumers {
		if c == to {
			return
		}
	}
	from.Consumers = append(from.Consumers, to)
	to.Inputs = append(to.Inputs, from)
}

// AddQuery expands one query into (shared) operators: a pinned source per
// stream, one selection per FROM entry carrying that alias's predicates, a
// join combining the filtered inputs, and a pinned sink at the proxy.
func (g *Graph) AddQuery(q *query.Query, proxy topology.NodeID, model RateModel) error {
	if err := q.Validate(); err != nil {
		return err
	}
	var joinInputs []*Operator
	for _, ref := range q.From {
		src, ok := model.SourceOf(ref.Stream)
		if !ok {
			return fmt.Errorf("opplace: unknown stream %q in query %s", ref.Stream, q.Name)
		}
		srcOp := g.shared("src:"+ref.Stream, func() *Operator {
			return &Operator{
				Kind:    OpSource,
				Stream:  ref.Stream,
				OutRate: model.StreamRate(ref.Stream),
				Node:    src,
				Pinned:  true,
			}
		})
		sels := q.SelectionsFor(ref.Alias)
		in := srcOp
		if len(sels) > 0 {
			sig := selectionSignature(ref.Stream, sels)
			rate := srcOp.OutRate * model.Selectivity(ref.Stream, sels)
			selOp := g.shared(sig, func() *Operator {
				return &Operator{
					Kind:    OpSelect,
					Stream:  ref.Stream,
					OutRate: rate,
					Load:    srcOp.OutRate * 0.001,
					Node:    src, // initial guess; movable
				}
			})
			connect(srcOp, selOp)
			in = selOp
		}
		joinInputs = append(joinInputs, in)
	}

	top := joinInputs[0]
	if len(joinInputs) > 1 {
		sig := joinSignature(q, joinInputs)
		var inRate float64
		for _, in := range joinInputs {
			inRate += in.OutRate
		}
		joinOp := g.shared(sig, func() *Operator {
			return &Operator{
				Kind:    OpJoin,
				Stream:  q.Name,
				OutRate: inRate * model.JoinFactor(q),
				Load:    inRate * 0.002,
				Node:    joinInputs[0].Node,
			}
		})
		for _, in := range joinInputs {
			connect(in, joinOp)
		}
		top = joinOp
	}

	sink := &Operator{
		ID:      len(g.Ops),
		Kind:    OpSink,
		Stream:  q.Name,
		OutRate: 0,
		Node:    proxy,
		Pinned:  true,
	}
	g.Ops = append(g.Ops, sink)
	connect(top, sink)
	return nil
}

func selectionSignature(streamName string, sels []query.Predicate) string {
	parts := make([]string, len(sels))
	for i, p := range sels {
		np := p.Normalize()
		parts[i] = np.Left.Col.Attr + np.Op.String() + np.Right.Lit.String()
	}
	sort.Strings(parts)
	return "sel:" + streamName + ":" + join(parts, "&")
}

func joinSignature(q *query.Query, inputs []*Operator) string {
	ins := make([]string, len(inputs))
	for i, in := range inputs {
		ins[i] = in.Signature
		if ins[i] == "" {
			ins[i] = "src:" + in.Stream
		}
	}
	sort.Strings(ins)
	preds := make([]string, 0, len(q.Where))
	for _, p := range q.JoinPredicates() {
		np := p.Normalize()
		preds = append(preds, np.Left.Col.Attr+np.Op.String()+np.Right.Col.Attr)
	}
	sort.Strings(preds)
	wins := make([]string, len(q.From))
	for i, r := range q.From {
		wins[i] = r.Stream + r.Window.String()
	}
	sort.Strings(wins)
	return "join:" + join(ins, "|") + ":" + join(preds, "&") + ":" + join(wins, ",")
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

// Place runs the network-aware placement: operators are visited in
// topological order and each movable operator lands on the candidate node
// minimizing Σ rate·latency to its placed neighbors; a fixed number of
// refinement sweeps then re-optimizes every operator against both inputs
// and consumers. This mirrors the two-phase optimize-then-place structure
// of the baseline systems ([12] + [3]).
func (g *Graph) Place(oracle *topology.Oracle, candidates []topology.NodeID, sweeps int) {
	if sweeps <= 0 {
		sweeps = 3
	}
	order := g.topoOrder()
	for _, op := range order {
		if op.Pinned {
			continue
		}
		op.Node = bestNode(op, oracle, candidates, false)
	}
	for s := 0; s < sweeps; s++ {
		moved := false
		for _, op := range order {
			if op.Pinned {
				continue
			}
			if n := bestNode(op, oracle, candidates, true); n != op.Node {
				op.Node = n
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}

func bestNode(op *Operator, oracle *topology.Oracle, candidates []topology.NodeID, withConsumers bool) topology.NodeID {
	best := op.Node
	bestCost := math.Inf(1)
	for _, cand := range candidates {
		var cost float64
		for _, in := range op.Inputs {
			// The input feed is free when it already flows to cand
			// for another consumer — dissemination deduplicates per
			// destination node.
			if !feedsNode(in, cand, op) {
				cost += in.OutRate * oracle.Latency(in.Node, cand)
			}
		}
		if withConsumers {
			seen := make(map[topology.NodeID]bool, len(op.Consumers))
			for _, c := range op.Consumers {
				if c.Node == cand || seen[c.Node] {
					continue
				}
				seen[c.Node] = true
				cost += op.OutRate * oracle.Latency(cand, c.Node)
			}
		}
		if cost < bestCost {
			best, bestCost = cand, cost
		}
	}
	return best
}

// feedsNode reports whether producer's output already reaches node through
// a consumer other than except (or because the producer sits there).
func feedsNode(producer *Operator, node topology.NodeID, except *Operator) bool {
	if producer.Node == node {
		return true
	}
	for _, c := range producer.Consumers {
		if c != except && c.Node == node {
			return true
		}
	}
	return false
}

// topoOrder returns operators sources-first.
func (g *Graph) topoOrder() []*Operator {
	indeg := make(map[*Operator]int, len(g.Ops))
	for _, op := range g.Ops {
		indeg[op] = len(op.Inputs)
	}
	queue := make([]*Operator, 0, len(g.Ops))
	for _, op := range g.Ops {
		if indeg[op] == 0 {
			queue = append(queue, op)
		}
	}
	out := make([]*Operator, 0, len(g.Ops))
	for len(queue) > 0 {
		op := queue[0]
		queue = queue[1:]
		out = append(out, op)
		for _, c := range op.Consumers {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	return out
}

// Cost returns Σ rate·latency over operator graph edges — the plan's
// weighted communication cost. An operator's output travels once per
// DISTINCT consumer node (co-located consumers share the feed, co-located
// endpoints cost nothing), mirroring the duplicate elimination any
// dissemination substrate provides.
func (g *Graph) Cost(oracle *topology.Oracle) float64 {
	var total float64
	seen := make(map[topology.NodeID]bool, 8)
	for _, op := range g.Ops {
		clear(seen)
		for _, c := range op.Consumers {
			if c.Node == op.Node || seen[c.Node] {
				continue
			}
			seen[c.Node] = true
			total += op.OutRate * oracle.Latency(op.Node, c.Node)
		}
	}
	return total
}

// OperatorCount returns counts by kind, reflecting how much sharing the
// global graph achieved.
func (g *Graph) OperatorCount() map[OpKind]int {
	out := make(map[OpKind]int, 4)
	for _, op := range g.Ops {
		out[op.Kind]++
	}
	return out
}
