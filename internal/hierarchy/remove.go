package hierarchy

import (
	"repro/internal/mapping"
	"repro/internal/querygraph"
	"repro/internal/topology"
)

// Remove withdraws a query from the coordinator tree — the teardown
// counterpart of Insert (§3.6). Walking the ancestor chain of the query's
// processor (exactly the coordinators whose state the query lives in,
// whether it arrived via the initial distribution, PlaceAt, or online
// insertion), each level removes the query's graph vertex — or shrinks the
// merged vertex containing it, with incremental inverted-index repair in
// querygraph rather than a vertex-count-triggered rebuild — retires the
// assignment entry, and recomputes the per-target loads from the surviving
// vertices. Sustained submit/cancel churn therefore keeps the optimizer's
// load picture exact: after the last removal every coordinator holds zero
// query vertices and zero load, and nothing of the query biases later
// insertions or adaptation rounds. Returns the processor the query was
// placed on and whether the query was known (removing an unknown or
// already-removed name is a no-op).
func (t *Tree) Remove(name string) (topology.NodeID, bool) {
	q, known := t.queries[name]
	if !known {
		return -1, false
	}
	proc, placed := t.placement[name]
	delete(t.queries, name)
	delete(t.placement, name)
	if !placed {
		return -1, true
	}
	for c := t.leafOf[proc]; c != nil; c = c.Parent {
		if c.graph == nil {
			continue
		}
		t.removeQueryAt(c, name, q)
	}
	return proc, true
}

// removeQueryAt erases one query from a coordinator's mapped state. A
// single-query vertex is removed outright (the graph repairs its inverted
// index in place and the slot's assignment is retired); a merged vertex is
// shrunk to its surviving constituents, its edges re-estimated from the new
// content. Either way the per-target loads are recomputed from the
// surviving vertex weights — bit-exact, not decayed by subtract-and-drift.
func (t *Tree) removeQueryAt(c *Coordinator, name string, _ querygraph.QueryInfo) {
	g := c.graph
	vi, ok := c.byQuery[name]
	if !ok {
		return // not represented at this level (nothing to repair)
	}
	delete(c.byQuery, name)
	v := g.Vertices[vi]
	if v == nil {
		return // defensive: the index should never point at a freed slot
	}
	qi := -1
	for j := range v.Queries {
		if v.Queries[j].Name == name {
			qi = j
			break
		}
	}
	if qi < 0 {
		return // defensive: index and vertex content disagree
	}
	if len(v.Queries) == 1 {
		g.RemoveVertex(vi)
		if vi < len(c.assign) {
			c.assign[vi] = mapping.Unassigned
		}
	} else {
		g.ShrinkVertex(vi, shrunkVertex(v, qi))
	}
	c.loads = mapping.Loads(g, c.ng, c.assign)
}

// shrunkVertex rebuilds a merged vertex without its qi-th constituent query:
// weight, state size, interest union and per-proxy result rates are
// recomputed from the survivors (content only ever shrinks, which is what
// lets querygraph repair the index in place). The vertex identity (tag, key,
// grain, pin) is preserved; the old vertex object is left untouched — it may
// be shared with expansion registries.
func shrunkVertex(v *querygraph.Vertex, qi int) *querygraph.Vertex {
	nv := &querygraph.Vertex{
		Nodes:      append([]topology.NodeID(nil), v.Nodes...),
		Clu:        v.Clu,
		Assignable: v.Assignable,
		Tag:        v.Tag,
		Key:        v.Key,
		Grain:      v.Grain,
	}
	nv.Queries = make([]querygraph.QueryInfo, 0, len(v.Queries)-1)
	for j := range v.Queries {
		if j != qi {
			nv.Queries = append(nv.Queries, v.Queries[j])
		}
	}
	for _, q := range nv.Queries {
		nv.Weight += q.Load
		nv.StateSize += q.StateSize
		if q.Interest != nil {
			if nv.Interest == nil {
				nv.Interest = q.Interest.Clone()
			} else {
				_ = nv.Interest.Or(q.Interest) // lengths equal within one graph
			}
		}
		if nv.ResultRates == nil {
			nv.ResultRates = make(map[topology.NodeID]float64)
		}
		nv.ResultRates[q.Proxy] += q.ResultRate
	}
	return nv
}

// Residual reports the query state the tree still holds anywhere: the
// registered query count, the query-bearing vertices across every
// coordinator's mapped graph, and the summed per-target loads. All three
// are zero exactly when every submitted query has been removed — the
// coordinator-tree half of the drain-to-empty invariant the churn-soak
// asserts.
func (t *Tree) Residual() (queries, vertices int, load float64) {
	queries = len(t.queries)
	if len(t.placement) > queries {
		queries = len(t.placement)
	}
	for _, c := range t.All {
		if c.graph == nil {
			continue
		}
		for _, v := range c.graph.Vertices {
			if v != nil && len(v.Queries) > 0 {
				vertices++
			}
		}
		for _, l := range c.loads {
			load += l
		}
	}
	return queries, vertices, load
}
