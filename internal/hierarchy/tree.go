// Package hierarchy implements COSMOS's distributed coordinator tree (§3.3):
// processors are clustered by latency into groups of size [k, 3k−1] whose
// median becomes the cluster's coordinator, coordinators are clustered the
// same way level by level up to a root, and every coordinator performs graph
// mapping only over its own children. The package provides the three query-
// distribution operations of the paper — hierarchical initial distribution
// (§3.4–3.5), online insertion of new queries (§3.6), and adaptive
// redistribution rounds (§3.7) — over the querygraph/mapping/adapt
// machinery.
package hierarchy

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/mapping"
	"repro/internal/netgraph"
	"repro/internal/querygraph"
	"repro/internal/topology"
)

// Config parameterizes the tree.
type Config struct {
	// K is the cluster-size parameter: clusters hold between K and 3K−1
	// members (the root may hold fewer). Default 4, as in §4.1.
	K int
	// VMax is the per-coordinator coarsening budget of Algorithm 1.
	// Default 100.
	VMax int
	// Alpha is the load-imbalance slack of Eqn 3.1. Default 0.1.
	Alpha float64
	// Seed drives all randomized choices deterministically.
	Seed uint64
	// Workers bounds the goroutines used to run independent coordinators
	// concurrently during distribution and adaptation (upward coarsening
	// per level, downward descent per sibling subtree — Distribute's and
	// Adapt's alike). 0 selects GOMAXPROCS; 1 runs fully sequentially.
	// Placements are identical for any value: every per-coordinator
	// computation is seeded independently and results are combined in a
	// fixed order.
	Workers int
	// SequentialAdapt forces Adapt's downward descent onto the
	// sequential reference path regardless of Workers (Distribute's
	// descent keeps its own Workers-driven fan-out). Placements are
	// identical either way; the switch exists to isolate suspected
	// descent-concurrency problems while debugging.
	SequentialAdapt bool
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 4
	}
	if c.VMax == 0 {
		c.VMax = 100
	}
	if c.Alpha == 0 {
		c.Alpha = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Coordinator is one node of the tree. Leaf coordinators (level 1) manage a
// cluster of processors; inner coordinators manage child coordinators.
type Coordinator struct {
	Name     string
	Level    int // 1 = leaf
	Parent   *Coordinator
	Children []*Coordinator
	// Node is the median processor playing this coordinator role.
	Node topology.NodeID
	// Procs are the member processors of a leaf cluster (nil for inner).
	Procs []topology.NodeID
	// Members are all descendant processors.
	Members []topology.NodeID
	// Capability is the summed capability of Members.
	Capability float64

	// memberSet indexes Members for covering tests.
	memberSet map[topology.NodeID]bool
	// childOfNode maps a member processor to the child index covering it.
	childOfNode map[topology.NodeID]int

	// expand is the upward-pass expansion registry: Key -> fine vertices
	// at the next granularity down (§3.4 "retrieved from the
	// corresponding coordinator based on the tags").
	expand map[string][]*querygraph.Vertex
	keySeq int

	// anchorIdx maps external nodes (sources, foreign processors) to
	// their zero-capability anchor vertex in the fixed network graph.
	anchorIdx map[topology.NodeID]int

	// Mapped state of the last distribution/adaptation descent.
	graph  *querygraph.Graph
	ng     *netgraph.Graph
	assign mapping.Assignment
	loads  []float64 // per-NG-vertex load, kept current across insertions
	// byQuery maps each constituent query name to the ID of the graph
	// vertex holding it, so removal finds a query in O(1) per level
	// instead of scanning every vertex. Rebuilt by setState, maintained
	// by Insert/PlaceAt/Remove.
	byQuery map[string]int

	// timing of the last operation phases, for Fig 6(b).
	upTime   time.Duration
	downTime time.Duration
}

// IsLeaf reports whether the coordinator manages processors directly.
func (c *Coordinator) IsLeaf() bool { return len(c.Children) == 0 }

// setAssign installs the mapping target of vertex id, growing the
// assignment array when the vertex extended the graph (reused slots keep
// their position).
func (c *Coordinator) setAssign(id, k int) {
	for len(c.assign) <= id {
		c.assign = append(c.assign, mapping.Unassigned)
	}
	c.assign[id] = k
}

// noteQuery records which vertex holds a query.
func (c *Coordinator) noteQuery(name string, id int) {
	if c.byQuery == nil {
		c.byQuery = make(map[string]int)
	}
	c.byQuery[name] = id
}

// Covers reports whether the processor is a descendant of this coordinator.
func (c *Coordinator) Covers(n topology.NodeID) bool { return c.memberSet[n] }

// Tree is the full coordinator hierarchy plus the global bookkeeping COSMOS
// needs: per-query placement and query metadata.
type Tree struct {
	Cfg    Config
	Oracle *topology.Oracle
	Root   *Coordinator
	Leaves []*Coordinator
	All    []*Coordinator

	byName  map[string]*Coordinator
	procCap map[topology.NodeID]float64
	leafOf  map[topology.NodeID]*Coordinator

	subRates    []float64
	sourceOfSub []topology.NodeID
	// space is the shared substream index over (subRates, sourceOfSub),
	// built once per distribution and reused by every per-coordinator
	// query graph.
	space *querygraph.Space

	// placement maps query name -> processor node. placeMu guards it
	// during the parallel downward descent, where sibling subtrees
	// install leaf placements concurrently.
	placeMu   sync.Mutex
	placement map[string]topology.NodeID
	queries   map[string]querygraph.QueryInfo

	// loadOf refreshes per-query load estimates during adaptation.
	loadOf func(name string) float64

	rng *rand.Rand
}

// Build constructs the coordinator tree over the given processors with the
// given per-processor capabilities (nil means capability 1 everywhere).
func Build(oracle *topology.Oracle, processors []topology.NodeID, caps map[topology.NodeID]float64, cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	if len(processors) == 0 {
		return nil, fmt.Errorf("hierarchy: no processors")
	}
	t := &Tree{
		Cfg:       cfg,
		Oracle:    oracle,
		byName:    make(map[string]*Coordinator),
		procCap:   make(map[topology.NodeID]float64, len(processors)),
		leafOf:    make(map[topology.NodeID]*Coordinator),
		placement: make(map[string]topology.NodeID),
		queries:   make(map[string]querygraph.QueryInfo),
		rng:       rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xabcdef12345)),
	}
	for _, p := range processors {
		c := 1.0
		if caps != nil {
			if v, ok := caps[p]; ok {
				c = v
			}
		}
		t.procCap[p] = c
	}

	// Level 1: cluster processors into leaf coordinators.
	groups := t.clusterize(processors, cfg.K)
	var current []*Coordinator
	for gi, g := range groups {
		median := oracle.Median(g)
		leaf := &Coordinator{
			Name:    fmt.Sprintf("L1.%d", gi),
			Level:   1,
			Node:    median,
			Procs:   append([]topology.NodeID(nil), g...),
			Members: append([]topology.NodeID(nil), g...),
		}
		for _, p := range g {
			leaf.Capability += t.procCap[p]
			t.leafOf[p] = leaf
		}
		leaf.index()
		t.register(leaf)
		t.Leaves = append(t.Leaves, leaf)
		current = append(current, leaf)
	}

	// Upper levels: cluster coordinators by their median nodes.
	level := 2
	for len(current) > 1 {
		nodes := make([]topology.NodeID, len(current))
		for i, c := range current {
			nodes[i] = c.Node
		}
		idxGroups := t.clusterizeIndices(nodes, cfg.K)
		var next []*Coordinator
		for gi, idxs := range idxGroups {
			members := make([]topology.NodeID, 0, len(idxs))
			for _, i := range idxs {
				members = append(members, current[i].Node)
			}
			median := oracle.Median(members)
			parent := &Coordinator{
				Name:  fmt.Sprintf("L%d.%d", level, gi),
				Level: level,
				Node:  median,
			}
			for _, i := range idxs {
				child := current[i]
				child.Parent = parent
				parent.Children = append(parent.Children, child)
				parent.Members = append(parent.Members, child.Members...)
				parent.Capability += child.Capability
			}
			parent.index()
			t.register(parent)
			next = append(next, parent)
		}
		current = next
		level++
	}
	t.Root = current[0]
	return t, nil
}

func (t *Tree) register(c *Coordinator) {
	t.byName[c.Name] = c
	t.All = append(t.All, c)
	c.expand = make(map[string][]*querygraph.Vertex)
}

// index precomputes membership lookups.
func (c *Coordinator) index() {
	c.memberSet = make(map[topology.NodeID]bool, len(c.Members))
	for _, m := range c.Members {
		c.memberSet[m] = true
	}
	c.childOfNode = make(map[topology.NodeID]int)
	if c.IsLeaf() {
		for i, p := range c.Procs {
			c.childOfNode[p] = i
		}
		return
	}
	for i, ch := range c.Children {
		for _, m := range ch.Members {
			c.childOfNode[m] = i
		}
	}
}

// clusterize groups nodes into latency-proximate clusters of size
// [k, 3k−1], following the construction goals of [5] (§3.3).
func (t *Tree) clusterize(nodes []topology.NodeID, k int) [][]topology.NodeID {
	idxGroups := t.clusterizeIndices(nodes, k)
	out := make([][]topology.NodeID, len(idxGroups))
	for gi, idxs := range idxGroups {
		for _, i := range idxs {
			out[gi] = append(out[gi], nodes[i])
		}
	}
	return out
}

func (t *Tree) clusterizeIndices(nodes []topology.NodeID, k int) [][]int {
	n := len(nodes)
	if n <= 3*k-1 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return [][]int{all}
	}
	unassigned := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		unassigned[i] = true
	}
	var groups [][]int
	order := t.rng.Perm(n)
	for _, seed := range order {
		if !unassigned[seed] {
			continue
		}
		if len(unassigned) < 2*k {
			break // leave the remainder for redistribution below
		}
		row := t.Oracle.Row(nodes[seed])
		// k nearest unassigned nodes including the seed.
		cands := make([]int, 0, len(unassigned))
		for i := range unassigned {
			cands = append(cands, i)
		}
		sort.Slice(cands, func(a, b int) bool {
			da, db := row[nodes[cands[a]]], row[nodes[cands[b]]]
			if da != db {
				return da < db
			}
			return cands[a] < cands[b]
		})
		group := cands[:k]
		groups = append(groups, append([]int(nil), group...))
		for _, i := range group {
			delete(unassigned, i)
		}
	}
	// Distribute the remainder (< 2k nodes) to their nearest groups with
	// room (< 3k−1 members); create a final group if none has room.
	var rest []int
	for i := range unassigned {
		rest = append(rest, i)
	}
	sort.Ints(rest)
	for _, i := range rest {
		row := t.Oracle.Row(nodes[i])
		bestG, bestD := -1, 0.0
		for gi, g := range groups {
			if len(g) >= 3*k-1 {
				continue
			}
			d := row[nodes[g[0]]]
			if bestG < 0 || d < bestD {
				bestG, bestD = gi, d
			}
		}
		if bestG < 0 {
			groups = append(groups, []int{i})
			continue
		}
		groups[bestG] = append(groups[bestG], i)
	}
	return groups
}

// LeafOf returns the leaf coordinator managing a processor.
func (t *Tree) LeafOf(p topology.NodeID) (*Coordinator, bool) {
	l, ok := t.leafOf[p]
	return l, ok
}

// ByName returns a coordinator by name.
func (t *Tree) ByName(name string) (*Coordinator, bool) {
	c, ok := t.byName[name]
	return c, ok
}

// Placement returns a copy of the current query → processor map.
func (t *Tree) Placement() map[string]topology.NodeID {
	out := make(map[string]topology.NodeID, len(t.placement))
	for q, p := range t.placement {
		out[q] = p
	}
	return out
}

// ProcessorLoads returns the current per-processor query load. Loads are
// accumulated in sorted query order: float addition is not associative, so
// a map-order sum would drift bit-for-bit across runs.
func (t *Tree) ProcessorLoads() map[topology.NodeID]float64 {
	out := make(map[topology.NodeID]float64, len(t.procCap))
	for p := range t.procCap {
		out[p] = 0
	}
	names := make([]string, 0, len(t.placement))
	for q := range t.placement {
		names = append(names, q)
	}
	sort.Strings(names)
	for _, q := range names {
		out[t.placement[q]] += t.queries[q].Load
	}
	return out
}

// Depth returns the number of levels in the tree.
func (t *Tree) Depth() int { return t.Root.Level }
