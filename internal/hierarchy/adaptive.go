package hierarchy

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/adapt"
	"repro/internal/mapping"
	"repro/internal/querygraph"
)

// AdaptReport summarizes one adaptation round (§3.7).
type AdaptReport struct {
	// Migrations counts queries whose processor changed this round.
	Migrations int
	// MovedLoad and MovedState total the load and operator state of
	// migrated queries.
	MovedLoad  float64
	MovedState float64
}

// Adapt runs one hierarchical adaptation round, initiated at the root and
// propagated level by level (§3.7): every coordinator refreshes statistics,
// runs the two-phase Algorithm 3 (diffusion-guided re-balance plus
// refinement) over its level, and hands each child its share — expanding
// vertices that migrated in from other subtrees via the tagging
// coordinators' registries. Queries physically migrate only at the end,
// which is when the report counts them.
//
// loadOf, when non-nil, supplies refreshed per-query load estimates (§3.8);
// stream-rate changes are picked up automatically because the tree shares
// the rate slice passed to Distribute.
func (t *Tree) Adapt(loadOf func(name string) float64) (*AdaptReport, error) {
	if t.Root.graph == nil {
		return nil, fmt.Errorf("hierarchy: no distribution state; run Distribute first")
	}
	if loadOf != nil {
		t.loadOf = loadOf
	}
	prev := t.Placement()

	// Refresh per-query load estimates (§3.8).
	if t.loadOf != nil {
		for name, q := range t.queries {
			q.Load = t.loadOf(name)
			t.queries[name] = q
		}
	}
	// Periodic query-graph propagation (§3.4): rebuild the interest-based
	// hierarchy bottom-up over the current query set, so coarse vertices
	// reflect current statistics and group structure rather than the
	// grouping frozen at initial-distribution time.
	queries := make([]querygraph.QueryInfo, 0, len(t.queries))
	for _, q := range t.queries {
		queries = append(queries, q)
	}
	sort.Slice(queries, func(i, j int) bool { return queries[i].Name < queries[j].Name })
	for _, c := range t.All {
		c.expand = make(map[string][]*querygraph.Vertex)
		c.keySeq = 0
	}
	rootIncoming, err := t.upwardPass(queries, nil)
	if err != nil {
		return nil, err
	}
	// Downward pass against the current placement. Sibling subtrees are
	// independent — shares are disjoint, per-coordinator RNGs are
	// self-seeded, and the warm-start reads of t.placement touch only the
	// descending subtree's own (pre-round) entries — so the recursion fans
	// out over bounded workers exactly like Distribute's descent, unless
	// the sequential reference path is forced (Config.SequentialAdapt).
	var sem chan struct{}
	if t.Cfg.Workers > 1 && !t.Cfg.SequentialAdapt {
		sem = make(chan struct{}, t.Cfg.Workers-1)
	}
	if err := t.descendCurrent(t.Root, rootIncoming, false, true, false, sem); err != nil {
		return nil, err
	}

	// Accumulate in sorted query order: float addition is not associative,
	// so a map-order sum would drift bit-for-bit across runs.
	rep := &AdaptReport{}
	moved := make([]string, 0, len(t.placement))
	for name, proc := range t.placement {
		if old, ok := prev[name]; ok && old != proc {
			moved = append(moved, name)
		}
	}
	sort.Strings(moved)
	for _, name := range moved {
		rep.Migrations++
		q := t.queries[name]
		rep.MovedLoad += q.Load
		rep.MovedState += q.StateSize
	}
	return rep, nil
}

// SetLoadEstimator installs a per-query load refresher used by Adapt.
func (t *Tree) SetLoadEstimator(loadOf func(name string) float64) {
	t.loadOf = loadOf
}

// descendCurrent processes one coordinator against the CURRENT placement
// and recurses. With useStored, the coordinator's stored graph is refreshed
// and reused (the root at the start of an adaptation round); otherwise the
// working set comes from the parent's decisions and is warm-started from
// the current placement. With rebalance, Algorithm 3 runs at this level;
// without it the warm assignment is installed verbatim (placement
// restoration). With pure, coarsening only merges vertices placed on the
// same processor so the current placement is preserved exactly.
//
// With a non-nil sem, sibling subtrees recurse concurrently over the
// semaphore's worker slots (same bounded fan-out as Distribute's descend);
// the shared tree maps (placement, queries) are then guarded by placeMu in
// the helpers that touch them, and everything else a branch writes is
// per-coordinator state of its own subtree.
func (t *Tree) descendCurrent(c *Coordinator, incoming []*querygraph.Vertex, useStored, rebalance, pure bool, sem chan struct{}) error {
	var g *querygraph.Graph
	var assign mapping.Assignment
	var fineShares func(res mapping.Assignment) ([][]*querygraph.Vertex, error)

	if useStored {
		// Refresh the stored graph in place: weights and edges.
		g = c.graph
		t.refreshWeights(g)
		g.ComputeEdges()
		assign = c.assign.Clone()
		fineShares = func(res mapping.Assignment) ([][]*querygraph.Vertex, error) {
			shares := make([][]*querygraph.Vertex, c.assignableCount())
			for vi, v := range g.Vertices {
				if v == nil || len(v.Queries) == 0 {
					continue
				}
				k := res[vi]
				if k < 0 || k >= len(shares) {
					return nil, fmt.Errorf("hierarchy: %s: vertex %d on non-child target %d", c.Name, vi, k)
				}
				shares[k] = append(shares[k], v)
			}
			return shares, nil
		}
	} else {
		work, err := t.expandAll(incoming, c.Level-1)
		if err != nil {
			return err
		}
		prep, err := t.prepare(c, work)
		if err != nil {
			return err
		}
		// Edge weights depend on interests, rates, and result rates — not
		// on the query loads refreshWeights updates — so the edges built
		// by prepare stay valid.
		t.refreshWeights(prep.g)

		// Coarsen by interest (heavy-edge matching), as in the initial
		// distribution: interest-grouped vertices are what lets the
		// rebalance escape the local minima single-query moves cannot.
		// The per-coordinator RNG is fixed, so grouping is stable
		// across rounds and constituents of a vertex are co-located
		// from the previous round — the warm majority start is then
		// exact except right after workload changes. At the leaf,
		// queries stay atomic: the diffusion flows of Algorithm 3 are
		// small relative to coarse-chunk weights, and per-processor
		// balancing needs query granularity. In pure mode only
		// same-processor merges are allowed, preserving placement.
		warmOf := func(v *querygraph.Vertex) int { return t.warmTarget(c, v) }
		opts := querygraph.CoarsenOptions{
			VMax:       t.Cfg.VMax,
			Rng:        t.coordRng(c),
			NoQN:       true,
			CountQOnly: true,
		}
		if pure {
			opts.CanMerge = t.samePlacedProc
		}
		if c.IsLeaf() {
			opts.VMax = len(prep.g.Vertices) + 1
		}
		res := prep.g.Coarsen(opts)
		g = res.Graph
		assign = make(mapping.Assignment, len(g.Vertices))
		m := mapping.NewMapper(g, c.ng, mapping.Options{Alpha: t.Cfg.Alpha, Rng: t.coordRng(c)})
		loads := make([]float64, c.ng.Len())
		for vi, v := range g.Vertices {
			switch {
			case v.IsN():
				assign[vi] = v.Clu
			case warmOf(v) >= 0:
				assign[vi] = warmOf(v)
			default:
				assign[vi] = mapping.Unassigned
			}
			if assign[vi] >= 0 {
				loads[assign[vi]] += v.Weight
			}
		}
		for vi, v := range g.Vertices {
			if assign[vi] == mapping.Unassigned {
				assign[vi] = m.BestTarget(assign, vi, loads)
				loads[assign[vi]] += v.Weight
			}
		}
		fineShares = func(resA mapping.Assignment) ([][]*querygraph.Vertex, error) {
			shares := make([][]*querygraph.Vertex, c.assignableCount())
			for ci, v := range g.Vertices {
				if len(v.Queries) == 0 {
					continue
				}
				k := resA[ci]
				if k < 0 || k >= len(shares) {
					return nil, fmt.Errorf("hierarchy: %s: vertex %d on non-child target %d", c.Name, ci, k)
				}
				for _, fi := range res.CoarseToFine[ci] {
					fv := prep.g.Vertices[fi]
					if len(fv.Queries) > 0 {
						shares[k] = append(shares[k], fv)
					}
				}
			}
			return shares, nil
		}
	}

	final := assign
	if rebalance {
		result, err := adapt.Rebalance(g, c.ng, assign, adapt.Options{
			Alpha: t.Cfg.Alpha,
			Rng:   t.coordRng(c),
		})
		if err != nil {
			return fmt.Errorf("hierarchy: %s: %w", c.Name, err)
		}
		final = result.Assignment
	}
	t.setState(c, g, final)

	shares, err := fineShares(final)
	if err != nil {
		return err
	}
	if c.IsLeaf() {
		t.placeMu.Lock()
		for k, share := range shares {
			proc := c.ng.Vertices[k].Node
			for _, v := range share {
				for _, q := range v.Queries {
					t.placement[q.Name] = proc
				}
			}
		}
		t.placeMu.Unlock()
		return nil
	}
	if sem == nil {
		for k, share := range shares {
			if err := t.descendCurrent(c.Children[k], share, false, rebalance, pure, nil); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	record := func(err error) {
		if err == nil {
			return
		}
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for k, share := range shares {
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(k int, share []*querygraph.Vertex) {
				defer wg.Done()
				err := t.descendCurrent(c.Children[k], share, false, rebalance, pure, sem)
				<-sem
				record(err)
			}(k, share)
		default:
			// No free worker slot: recurse inline rather than blocking.
			record(t.descendCurrent(c.Children[k], share, false, rebalance, pure, sem))
		}
	}
	wg.Wait()
	return firstErr
}

// samePlacedProc reports whether two query-bearing vertices are currently
// placed on the same processor (pure n-vertices merge freely). Because it
// is applied at every coarsening step, vertices stay placement-pure by
// induction and checking the first constituent suffices. placeMu guards the
// map read against concurrent leaf installs in sibling subtrees; the
// entries read here belong to this subtree and are stable for the round.
func (t *Tree) samePlacedProc(u, v *querygraph.Vertex) bool {
	if len(u.Queries) == 0 || len(v.Queries) == 0 {
		return true
	}
	t.placeMu.Lock()
	pu, okU := t.placement[u.Queries[0].Name]
	pv, okV := t.placement[v.Queries[0].Name]
	t.placeMu.Unlock()
	return okU && okV && pu == pv
}

// warmTarget returns the target index at c where the vertex's constituent
// queries currently live (load-weighted majority), or -1 when unknown.
// placeMu guards the placement reads during the parallel descent; a
// subtree's warm reads only ever see its own pre-round entries, so the
// result does not depend on sibling progress.
func (t *Tree) warmTarget(c *Coordinator, v *querygraph.Vertex) int {
	weights := make(map[int]float64)
	t.placeMu.Lock()
	defer t.placeMu.Unlock()
	for _, q := range v.Queries {
		proc, ok := t.placement[q.Name]
		if !ok {
			continue
		}
		if k, covered := c.childOfNode[proc]; covered {
			w := q.Load
			if w <= 0 {
				w = 1e-9
			}
			weights[k] += w
		}
	}
	best, bestW := -1, 0.0
	for k, w := range weights {
		if w > bestW || (w == bestW && (best < 0 || k < best)) {
			best, bestW = k, w
		}
	}
	return best
}

// refreshWeights re-estimates q-vertex weights from the installed load
// estimator (§3.8). Without an estimator, recorded loads are kept. The
// whole body runs under placeMu: it writes the shared t.queries map and
// calls the user-supplied estimator, which must not observe concurrent
// invocations from sibling subtrees.
func (t *Tree) refreshWeights(g *querygraph.Graph) {
	if t.loadOf == nil {
		return
	}
	t.placeMu.Lock()
	defer t.placeMu.Unlock()
	for _, v := range g.Vertices {
		if v == nil || len(v.Queries) == 0 {
			continue
		}
		var sum float64
		for i := range v.Queries {
			l := t.loadOf(v.Queries[i].Name)
			v.Queries[i].Load = l
			sum += l
			if q, ok := t.queries[v.Queries[i].Name]; ok {
				q.Load = l
				t.queries[v.Queries[i].Name] = q
			}
		}
		v.Weight = sum
	}
}
