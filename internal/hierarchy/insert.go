package hierarchy

import (
	"fmt"
	"math"

	"repro/internal/mapping"
	"repro/internal/querygraph"
	"repro/internal/topology"
)

// Insert routes a new query through the coordinator tree (§3.6): starting
// at the root, each coordinator estimates the new vertex's edges against its
// current query graph, picks the child that minimizes the WEC increase
// without violating the load constraint, and forwards the query; the leaf
// assigns a processor. It returns the chosen processor.
//
// Distribute must have run first so coordinators have mapped state.
func (t *Tree) Insert(q querygraph.QueryInfo) (topology.NodeID, error) {
	c := t.Root
	for {
		if c.graph == nil || c.ng == nil {
			return -1, fmt.Errorf("hierarchy: %s has no distribution state; run Distribute first", c.Name)
		}
		k, err := t.routeAt(c, q)
		if err != nil {
			return -1, err
		}
		// Record the vertex in the coordinator's graph so subsequent
		// insertions and adaptation rounds see it (AddVertex may reuse a
		// slot freed by an earlier removal, so the assignment entry is
		// installed by ID, not appended). Edges are computed lazily at
		// the next adaptation round's graph rebuild.
		v := atomVertex(q)
		prevLen := len(c.graph.Vertices)
		c.graph.AddVertex(v)
		c.setAssign(v.ID, k)
		c.noteQuery(q.Name, v.ID)
		if len(c.graph.Vertices) > prevLen {
			// Appended at the end: the O(1) increment equals the
			// vertex-order recompute exactly (old sum, then the new
			// last weight).
			c.loads[k] += q.Load
		} else {
			// A freed mid-array slot was reused: recompute so loads
			// stay the exact vertex-order sum a removal's repair
			// produces.
			c.loads = mapping.Loads(c.graph, c.ng, c.assign)
		}

		if c.IsLeaf() {
			proc := c.ng.Vertices[k].Node
			t.placement[q.Name] = proc
			t.queries[q.Name] = q
			return proc, nil
		}
		c = c.Children[k]
	}
}

// RouteAtRoot performs only the root coordinator's routing decision for a
// query, without inserting it — the primitive timed by the throughput
// experiment of Fig 9(b), which studies the root because it is the
// potential bottleneck of the system (§3.6).
func (t *Tree) RouteAtRoot(q querygraph.QueryInfo) (int, error) {
	if t.Root.graph == nil {
		return -1, fmt.Errorf("hierarchy: no distribution state; run Distribute first")
	}
	return t.routeAt(t.Root, q)
}

// routeAt scores every assignable target of c for the new query and returns
// the best one. The cost of a target is the WEC increase: overlap edges
// against the coordinator's current query vertices plus source and result
// edges against the query's referenced nodes, each weighted by the latency
// from the candidate target to the referenced vertex's current position.
//
// The WEC increase is assembled in two steps: every edge contribution is
// first bucketed by the network-graph position it is anchored at (the
// overlap weights come from the graph's inverted substream index, touching
// only vertices that share a substream with q), and the per-target costs
// are then |positions| dot products against hoisted latency rows — instead
// of |Vq|·|targets| Latency() calls.
func (t *Tree) routeAt(c *Coordinator, q querygraph.QueryInfo) (int, error) {
	g, ng := c.graph, c.ng
	n := c.assignableCount()
	costs := make([]float64, n)

	wByPos := make([]float64, ng.Len())
	touched := make([]int, 0, 16)
	anchor := func(pos int, w float64) {
		if wByPos[pos] == 0 && w != 0 {
			touched = append(touched, pos)
		}
		wByPos[pos] += w
	}

	// Overlap edges to existing query vertices.
	g.ForEachOverlap(q.Interest, func(vi int, w float64) {
		v := g.Vertices[vi]
		if len(v.Queries) == 0 || c.assign[vi] < 0 || w == 0 {
			return
		}
		anchor(c.assign[vi], w)
	})
	// Source edges: demand per origin node of the query's substreams.
	for _, idx := range q.Interest.Indices() {
		rate := g.SubRates[idx]
		if rate == 0 {
			continue
		}
		src := g.SourceOfSub[idx]
		pin, _, ok := c.pinOf(src)
		if !ok {
			continue
		}
		anchor(pin, rate)
	}
	// Result edge to the proxy.
	if pin, _, ok := c.pinOf(q.Proxy); ok {
		anchor(pin, q.ResultRate)
	}
	for k := 0; k < n; k++ {
		row := ng.Row(k)
		var cost float64
		for _, pos := range touched {
			cost += wByPos[pos] * row[pos]
		}
		costs[k] = cost
	}

	// Load feasibility under Eqn 3.1 with the query's load included.
	total := q.Load
	for _, l := range c.loads {
		total += l
	}
	bestK, bestCost := -1, math.Inf(1)
	bestOverK, bestOver := -1, math.Inf(1)
	for k := 0; k < n; k++ {
		cap := (1 + t.Cfg.Alpha) * ng.Vertices[k].Capability * total / ng.TotalCapability()
		if c.loads[k]+q.Load <= cap {
			if costs[k] < bestCost {
				bestK, bestCost = k, costs[k]
			}
		} else if over := c.loads[k] + q.Load - cap; over < bestOver {
			bestOverK, bestOver = k, over
		}
	}
	if bestK >= 0 {
		return bestK, nil
	}
	if bestOverK >= 0 {
		return bestOverK, nil
	}
	return -1, fmt.Errorf("hierarchy: %s has no assignable target", c.Name)
}

// PlaceAt force-places a query on a processor, bypassing routing — the
// "Random" baseline of Fig 8 and the Naive baseline use it. The query is
// attached to the processor's leaf coordinator state so later adaptation
// rounds can move it.
func (t *Tree) PlaceAt(q querygraph.QueryInfo, proc topology.NodeID) error {
	leaf, ok := t.leafOf[proc]
	if !ok {
		return fmt.Errorf("hierarchy: node %d is not a processor", proc)
	}
	t.placement[q.Name] = proc
	t.queries[q.Name] = q
	// Thread the vertex through the ancestor chain so adaptation sees it.
	v := atomVertex(q)
	for c := leaf; c != nil; c = c.Parent {
		if c.graph == nil {
			continue
		}
		k, _, ok := c.pinOf(proc)
		if !ok {
			return fmt.Errorf("hierarchy: %s cannot pin processor %d", c.Name, proc)
		}
		cv := v.Clone()
		prevLen := len(c.graph.Vertices)
		c.graph.AddVertex(cv)
		c.setAssign(cv.ID, k)
		c.noteQuery(q.Name, cv.ID)
		if len(c.graph.Vertices) > prevLen {
			if k < len(c.loads) {
				c.loads[k] += q.Load
			}
		} else {
			c.loads = mapping.Loads(c.graph, c.ng, c.assign)
		}
	}
	return nil
}

// Queries returns the query info map (by name).
func (t *Tree) Queries() map[string]querygraph.QueryInfo {
	out := make(map[string]querygraph.QueryInfo, len(t.queries))
	for k, v := range t.queries {
		out[k] = v
	}
	return out
}
