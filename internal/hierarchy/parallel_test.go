package hierarchy

import (
	"testing"

	"repro/internal/topology"
)

// TestDistributeParallelDeterminism: the parallel upward pass and downward
// descent must yield the exact placement of a fully sequential run, for
// several tree seeds and worker counts.
func TestDistributeParallelDeterminism(t *testing.T) {
	oracle, procs, queries, rates, sources := testSetup(t)
	for _, seed := range []uint64{1, 7, 23} {
		var want map[string]topology.NodeID
		for _, workers := range []int{1, 2, 8} {
			tree, err := Build(oracle, procs, nil, Config{K: 3, VMax: 20, Seed: seed, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tree.Distribute(queries, rates, sources); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			got := tree.Placement()
			if workers == 1 {
				want = got
				if len(want) != len(queries) {
					t.Fatalf("seed %d: placed %d of %d", seed, len(want), len(queries))
				}
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d workers %d: placed %d, sequential placed %d",
					seed, workers, len(got), len(want))
			}
			for q, p := range want {
				if got[q] != p {
					t.Errorf("seed %d workers %d: query %s on %d, sequential on %d",
						seed, workers, q, got[q], p)
				}
			}
		}
	}
}

// TestAdaptParallelUpwardDeterminism: Adapt runs both the upward pass and
// the downward current-placement descent over bounded workers; adaptation
// rounds must land identical placements for any worker count.
func TestAdaptParallelUpwardDeterminism(t *testing.T) {
	oracle, procs, queries, rates, sources := testSetup(t)
	run := func(workers int) map[string]topology.NodeID {
		tree, err := Build(oracle, procs, nil, Config{K: 3, VMax: 20, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tree.Distribute(queries, rates, sources); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := tree.Adapt(nil); err != nil {
				t.Fatal(err)
			}
		}
		return tree.Placement()
	}
	want := run(1)
	got := run(8)
	if len(got) != len(want) {
		t.Fatalf("placed %d vs %d", len(got), len(want))
	}
	for q, p := range want {
		if got[q] != p {
			t.Errorf("query %s on %d parallel, %d sequential", q, got[q], p)
		}
	}
}

// TestAdaptSequentialReferenceMode: forcing the sequential reference path
// (Config.SequentialAdapt) with a parallel worker budget must reproduce the
// parallel descent's placements exactly, including when a load estimator
// shifts query weights between rounds (refreshWeights runs inside the
// descent on every non-root coordinator).
func TestAdaptSequentialReferenceMode(t *testing.T) {
	oracle, procs, queries, rates, sources := testSetup(t)
	loadOf := func(round int) func(string) float64 {
		return func(name string) float64 {
			return 0.1 + float64((len(name)*7+round*13)%5)*0.05
		}
	}
	run := func(sequential bool) map[string]topology.NodeID {
		cfg := Config{K: 3, VMax: 20, Seed: 11, Workers: 8, SequentialAdapt: sequential}
		tree, err := Build(oracle, procs, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tree.Distribute(queries, rates, sources); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := tree.Adapt(loadOf(i)); err != nil {
				t.Fatal(err)
			}
		}
		return tree.Placement()
	}
	want := run(true)
	got := run(false)
	if len(got) != len(want) || len(want) == 0 {
		t.Fatalf("placed %d parallel vs %d sequential", len(got), len(want))
	}
	for q, p := range want {
		if got[q] != p {
			t.Errorf("query %s on %d parallel, %d sequential", q, got[q], p)
		}
	}
}
