package hierarchy

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/mapping"
	"repro/internal/querygraph"
)

// This file tests hierarchy query removal — the teardown counterpart of
// Insert: per-level vertex removal with exact load repair, drain-to-zero
// after the last removal, and the no-residue property (a redistribution on
// a churned tree equals one on a freshly built tree).

// checkLoadsExact asserts that every coordinator's cached per-target loads
// equal a recomputation from its surviving vertex weights, and that its
// query-vertex content matches the surviving placement of its subtree.
func checkLoadsExact(t *testing.T, tree *Tree, step string) {
	t.Helper()
	surviving := make(map[string]bool, len(tree.queries))
	for name := range tree.queries {
		surviving[name] = true
	}
	for _, c := range tree.All {
		if c.graph == nil {
			continue
		}
		want := mapping.Loads(c.graph, c.ng, c.assign)
		if !reflect.DeepEqual(c.loads, want) {
			t.Fatalf("%s: %s cached loads diverge from vertex weights\ngot:  %v\nwant: %v",
				step, c.Name, c.loads, want)
		}
		// Every query named in the coordinator's graph must still exist,
		// and every surviving query placed in the subtree must be named.
		named := make(map[string]bool)
		for _, v := range c.graph.Vertices {
			if v == nil {
				continue
			}
			for _, q := range v.Queries {
				if !surviving[q.Name] {
					t.Fatalf("%s: %s still holds removed query %s", step, c.Name, q.Name)
				}
				if named[q.Name] {
					t.Fatalf("%s: %s holds query %s twice", step, c.Name, q.Name)
				}
				named[q.Name] = true
			}
		}
		for name := range surviving {
			if c.Covers(tree.placement[name]) && !named[name] {
				t.Fatalf("%s: %s lost surviving query %s (placed at %d)",
					step, c.Name, name, tree.placement[name])
			}
		}
	}
}

// TestRemoveKeepsStateExact: remove a mix of batch-distributed queries
// (living inside merged coarse vertices) and online-inserted ones (atomic
// vertices) and verify, after every removal, that loads and vertex content
// across all levels are exactly the surviving workload's.
func TestRemoveKeepsStateExact(t *testing.T) {
	oracle, procs, queries, rates, sources := testSetup(t)
	tree, err := Build(oracle, procs, nil, Config{K: 3, VMax: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Distribute(queries, rates, sources); err != nil {
		t.Fatal(err)
	}
	// A few online insertions on top of the batch.
	var online []querygraph.QueryInfo
	for i := 0; i < 8; i++ {
		q := querygraph.QueryInfo{
			Name:       fmt.Sprintf("online%d", i),
			Proxy:      procs[i%len(procs)],
			Load:       0.2,
			Interest:   bitvec.FromIndices(40, []int{i % 40, (i * 7) % 40}),
			ResultRate: 0.5,
			StateSize:  1,
		}
		online = append(online, q)
		if _, err := tree.Insert(q); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	checkLoadsExact(t, tree, "after inserts")

	// Interleave removals of batch and online queries.
	victims := []string{
		queries[0].Name, online[0].Name, queries[7].Name, queries[13].Name,
		online[3].Name, queries[25].Name, online[7].Name, queries[41].Name,
	}
	for i, name := range victims {
		proc, ok := tree.Remove(name)
		if !ok {
			t.Fatalf("Remove(%s) unknown", name)
		}
		if proc < 0 {
			t.Fatalf("Remove(%s) returned processor %d", name, proc)
		}
		if _, still := tree.Placement()[name]; still {
			t.Fatalf("%s still placed after removal", name)
		}
		checkLoadsExact(t, tree, fmt.Sprintf("after removal %d (%s)", i, name))
	}
	// Double removal is a no-op.
	if _, ok := tree.Remove(victims[0]); ok {
		t.Fatal("second Remove of the same query reported known")
	}

	// Insertion after removals still routes and stays exact.
	late := querygraph.QueryInfo{
		Name:       "late",
		Proxy:      procs[1],
		Load:       0.3,
		Interest:   bitvec.FromIndices(40, []int{3, 5}),
		ResultRate: 0.5,
	}
	if _, err := tree.Insert(late); err != nil {
		t.Fatalf("Insert after removals: %v", err)
	}
	checkLoadsExact(t, tree, "after late insert")

	// Drain: removing everything leaves zero queries, zero query
	// vertices and EXACTLY zero load at every coordinator.
	for name := range tree.Queries() {
		if _, ok := tree.Remove(name); !ok {
			t.Fatalf("Remove(%s) unknown during drain", name)
		}
	}
	q, v, load := tree.Residual()
	if q != 0 || v != 0 || load != 0 {
		t.Fatalf("residual after full drain: queries=%d vertices=%d load=%v, want 0/0/0", q, v, load)
	}
}

// TestRemoveThenRedistributeMatchesFresh: a tree that lived through
// distribute + insert + remove churn must, on the next full redistribution
// of the surviving workload, produce placements identical to a freshly
// built tree distributing the same workload — incremental teardown leaves
// no residue that biases the optimizer.
func TestRemoveThenRedistributeMatchesFresh(t *testing.T) {
	oracle, procs, queries, rates, sources := testSetup(t)
	cfg := Config{K: 3, VMax: 20, Seed: 1}
	churned, err := Build(oracle, procs, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := churned.Distribute(queries, rates, sources); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		q := querygraph.QueryInfo{
			Name:       fmt.Sprintf("online%d", i),
			Proxy:      procs[(i*3)%len(procs)],
			Load:       0.15,
			Interest:   bitvec.FromIndices(40, []int{(i * 5) % 40}),
			ResultRate: 0.4,
		}
		if _, err := churned.Insert(q); err != nil {
			t.Fatal(err)
		}
	}
	// Remove every third batch query and half the online ones.
	survivors := make([]querygraph.QueryInfo, 0, len(queries))
	for i, q := range queries {
		if i%3 == 0 {
			if _, ok := churned.Remove(q.Name); !ok {
				t.Fatalf("Remove(%s) unknown", q.Name)
			}
			continue
		}
		survivors = append(survivors, q)
	}
	for i := 0; i < 6; i += 2 {
		if _, ok := churned.Remove(fmt.Sprintf("online%d", i)); !ok {
			t.Fatal("online removal unknown")
		}
	}
	for i := 1; i < 6; i += 2 {
		q := querygraph.QueryInfo{
			Name:       fmt.Sprintf("online%d", i),
			Proxy:      procs[(i*3)%len(procs)],
			Load:       0.15,
			Interest:   bitvec.FromIndices(40, []int{(i * 5) % 40}),
			ResultRate: 0.4,
		}
		survivors = append(survivors, q)
	}

	if _, err := churned.Distribute(survivors, rates, sources); err != nil {
		t.Fatalf("redistribute on churned tree: %v", err)
	}
	fresh, err := Build(oracle, procs, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Distribute(survivors, rates, sources); err != nil {
		t.Fatal(err)
	}
	if got, want := churned.Placement(), fresh.Placement(); !reflect.DeepEqual(got, want) {
		t.Fatalf("churned-tree redistribution diverges from fresh tree\nchurned: %v\nfresh:   %v", got, want)
	}
}

// TestRemoveSurvivesAdapt: adaptation rounds rebuild coordinator state from
// the surviving query set; removals before and after rounds keep the load
// picture consistent and never resurrect removed queries.
func TestRemoveSurvivesAdapt(t *testing.T) {
	oracle, procs, queries, rates, sources := testSetup(t)
	tree, err := Build(oracle, procs, nil, Config{K: 3, VMax: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Distribute(queries, rates, sources); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok := tree.Remove(queries[i].Name); !ok {
			t.Fatalf("Remove(%s) unknown", queries[i].Name)
		}
	}
	if _, err := tree.Adapt(nil); err != nil {
		t.Fatalf("Adapt after removals: %v", err)
	}
	place := tree.Placement()
	for i := 0; i < 10; i++ {
		if _, back := place[queries[i].Name]; back {
			t.Fatalf("adaptation resurrected removed query %s", queries[i].Name)
		}
	}
	if len(place) != len(queries)-10 {
		t.Fatalf("placement holds %d queries after adapt, want %d", len(place), len(queries)-10)
	}
	checkLoadsExact(t, tree, "after adapt")
	// ProcessorLoads reflects exactly the survivors.
	var total float64
	for _, l := range tree.ProcessorLoads() {
		//lint:maporder the sum is asserted within a 1e-9 tolerance, far above any summation-order drift
		total += l
	}
	want := 0.1 * float64(len(queries)-10)
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("total processor load %v, want %v", total, want)
	}
}
