package hierarchy

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mapping"
	"repro/internal/netgraph"
	"repro/internal/querygraph"
	"repro/internal/topology"
)

// Report summarizes a full initial distribution for Fig 6(b): response time
// is the critical path through the tree (subtrees work in parallel in a
// real deployment); total time sums the work of every coordinator.
type Report struct {
	ResponseTime time.Duration
	TotalTime    time.Duration
}

// Distribute performs the initial hierarchical query distribution
// (§3.4–3.5): leaf coordinators build and coarsen query graphs over their
// local queries, submissions propagate to the root, and mapping descends
// level by level, uncoarsening one level per step, until every query is
// assigned to a processor.
//
// subRates and sourceOfSub describe the global substream space; the slices
// are retained (not copied) so that callers can perturb rates in place
// between adaptation rounds, as the experiments do.
func (t *Tree) Distribute(queries []querygraph.QueryInfo, subRates []float64, sourceOfSub []topology.NodeID) (*Report, error) {
	return t.distribute(queries, subRates, sourceOfSub, nil)
}

// assignFunc overrides the per-coordinator mapping decision during a
// descent (nil selects Algorithm 2 via mapping.Mapper.Map).
type assignFunc func(c *Coordinator, g *querygraph.Graph, m *mapping.Mapper) (mapping.Assignment, error)

func (t *Tree) distribute(queries []querygraph.QueryInfo, subRates []float64,
	sourceOfSub []topology.NodeID, assignFn assignFunc) (*Report, error) {
	if err := t.resetDistribution(queries, subRates, sourceOfSub); err != nil {
		return nil, err
	}

	rootIncoming, err := t.upwardPass(queries, nil)
	if err != nil {
		return nil, err
	}
	// Downward pass from the root. Sibling subtrees are independent, so
	// the recursion fans out over bounded workers — except when an
	// assignFn override is installed, whose closures (e.g. the shared RNG
	// of DistributeRandom) require the sequential visit order.
	var sem chan struct{}
	if assignFn == nil && t.Cfg.Workers > 1 {
		sem = make(chan struct{}, t.Cfg.Workers-1)
	}
	if err := t.descend(t.Root, rootIncoming, assignFn, sem); err != nil {
		return nil, err
	}
	return t.timingReport(), nil
}

// resetDistribution installs the substream statistics and clears all
// coordinator state for a fresh distribution pass.
func (t *Tree) resetDistribution(queries []querygraph.QueryInfo, subRates []float64,
	sourceOfSub []topology.NodeID) error {
	space, err := querygraph.NewSpace(subRates, sourceOfSub)
	if err != nil {
		return fmt.Errorf("hierarchy: %w", err)
	}
	t.subRates = subRates
	t.sourceOfSub = sourceOfSub
	t.space = space
	t.placement = make(map[string]topology.NodeID, len(queries))
	t.queries = make(map[string]querygraph.QueryInfo, len(queries))
	for _, c := range t.All {
		c.expand = make(map[string][]*querygraph.Vertex)
		c.keySeq = 0
		c.graph, c.ng, c.assign, c.loads = nil, nil, nil, nil
		c.byQuery = nil
		c.upTime, c.downTime = 0, 0
	}
	return nil
}

// DistributeRandom builds the query-graph hierarchy normally but assigns
// coarse vertices uniformly at random during the descent, modelling the
// random initial allocation under inaccurate a-priori statistics of Fig 7.
// Coordinator state stays fully consistent, so Adapt can repair it.
func (t *Tree) DistributeRandom(queries []querygraph.QueryInfo, subRates []float64,
	sourceOfSub []topology.NodeID, seed uint64) error {
	rng := rand.New(rand.NewPCG(seed, seed^0x5eed))
	assignFn := func(c *Coordinator, g *querygraph.Graph, m *mapping.Mapper) (mapping.Assignment, error) {
		a := make(mapping.Assignment, len(g.Vertices))
		n := c.assignableCount()
		for vi, v := range g.Vertices {
			if v.IsN() {
				a[vi] = v.Clu
				continue
			}
			a[vi] = rng.IntN(n)
		}
		return a, nil
	}
	_, err := t.distribute(queries, subRates, sourceOfSub, assignFn)
	return err
}

// DistributeWith installs an explicit query placement (e.g. random, for the
// inaccurate-statistics experiment of Fig 7, or an external baseline) and
// builds consistent coordinator state so that later Adapt rounds and
// insertions can improve on it. The placement is restored exactly: every
// coarsening step only merges vertices bound to the same target.
func (t *Tree) DistributeWith(queries []querygraph.QueryInfo, subRates []float64,
	sourceOfSub []topology.NodeID, placeAt func(q querygraph.QueryInfo) topology.NodeID) error {
	if err := t.resetDistribution(queries, subRates, sourceOfSub); err != nil {
		return err
	}
	for _, q := range queries {
		proc := placeAt(q)
		if _, ok := t.procCap[proc]; !ok {
			return fmt.Errorf("hierarchy: placement of %s targets non-processor %d", q.Name, proc)
		}
		t.placement[q.Name] = proc
	}
	// Merging is restricted to vertices placed on the same processor so
	// the forced placement survives coarsening exactly.
	canMerge := func(_ *Coordinator, u, v *querygraph.Vertex) bool {
		return t.samePlacedProc(u, v)
	}
	rootIncoming, err := t.upwardPass(queries, canMerge)
	if err != nil {
		return err
	}
	return t.descendCurrent(t.Root, rootIncoming, false, false, true, nil)
}

// upwardPass runs the bottom-up query-graph hierarchy construction (§3.4).
// canMerge optionally constrains coarsening per coordinator.
//
// Coordinators of one level are independent (each works on its own
// submissions with its own seeded RNG), so every level runs its graph
// builds and coarsenings across bounded workers; results are appended to
// the parents in the fixed coordinator order, making the outcome identical
// to the sequential pass.
func (t *Tree) upwardPass(queries []querygraph.QueryInfo,
	canMerge func(c *Coordinator, u, v *querygraph.Vertex) bool) ([]*querygraph.Vertex, error) {
	// Group queries by the leaf coordinator of their proxy.
	byLeaf := make(map[*Coordinator][]*querygraph.Vertex)
	for _, q := range queries {
		leaf, ok := t.leafOf[q.Proxy]
		if !ok {
			return nil, fmt.Errorf("hierarchy: query %s has non-processor proxy %d", q.Name, q.Proxy)
		}
		t.queries[q.Name] = q
		byLeaf[leaf] = append(byLeaf[leaf], atomVertex(q))
	}
	submissions := make(map[*Coordinator][]*querygraph.Vertex)
	for _, leaf := range t.Leaves {
		submissions[leaf] = byLeaf[leaf]
	}
	if t.Root.Level == 1 {
		return submissions[t.Root], nil
	}
	byLevel := t.coordinatorsByLevel()
	for level := 1; level < t.Root.Level; level++ {
		cs := byLevel[level]
		outs := make([][]*querygraph.Vertex, len(cs))
		errs := make([]error, len(cs))
		t.forEachParallel(len(cs), func(i int) {
			c := cs[i]
			start := time.Now() //lint:nondeterminism wall-clock instrumentation: upTime only feeds timing reports, never a decision
			out, err := t.coarsenAndRegister(c, submissions[c], canMerge)
			c.upTime = time.Since(start) //lint:nondeterminism wall-clock instrumentation: upTime only feeds timing reports, never a decision
			outs[i], errs[i] = out, err
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		for i, c := range cs {
			submissions[c.Parent] = append(submissions[c.Parent], outs[i]...)
		}
	}
	return submissions[t.Root], nil
}

// forEachParallel runs fn(0..n-1) across at most Cfg.Workers goroutines,
// inline when parallelism is off.
func (t *Tree) forEachParallel(n int, fn func(int)) {
	workers := t.Cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func atomVertex(q querygraph.QueryInfo) *querygraph.Vertex {
	return &querygraph.Vertex{
		Weight:      q.Load,
		Clu:         querygraph.ClusterUnknown,
		Queries:     []querygraph.QueryInfo{q},
		Interest:    q.Interest,
		ResultRates: map[topology.NodeID]float64{q.Proxy: q.ResultRate},
		StateSize:   q.StateSize,
		Key:         "q:" + q.Name,
		Grain:       0,
	}
}

func (t *Tree) coordinatorsByLevel() map[int][]*Coordinator {
	out := make(map[int][]*Coordinator)
	for _, c := range t.All {
		out[c.Level] = append(out[c.Level], c)
	}
	return out
}

// coarsenAndRegister builds c's working graph over the incoming vertices,
// coarsens it, registers expansions, and returns the query-bearing coarse
// vertices to submit to the parent.
func (t *Tree) coarsenAndRegister(c *Coordinator, incoming []*querygraph.Vertex,
	canMerge func(c *Coordinator, u, v *querygraph.Vertex) bool) ([]*querygraph.Vertex, error) {
	prep, err := t.prepare(c, incoming)
	if err != nil {
		return nil, err
	}
	opts := querygraph.CoarsenOptions{
		VMax:       t.Cfg.VMax,
		Rng:        t.coordRng(c),
		NoQN:       true,
		CountQOnly: true,
	}
	if canMerge != nil {
		opts.CanMerge = func(u, v *querygraph.Vertex) bool { return canMerge(c, u, v) }
	}
	res := prep.g.Coarsen(opts)
	var out []*querygraph.Vertex
	for ci, v := range res.Graph.Vertices {
		if len(v.Queries) == 0 {
			continue
		}
		// Snapshot the fine constituents as clones before register
		// mutates the coarse vertex: an unmerged vertex is the same
		// object in both graphs, and registering it in place would
		// otherwise make it its own (infinite) expansion.
		fines := make([]*querygraph.Vertex, 0, len(res.CoarseToFine[ci]))
		for _, fi := range res.CoarseToFine[ci] {
			fv := prep.g.Vertices[fi]
			if len(fv.Queries) > 0 {
				fines = append(fines, fv.Clone())
			}
		}
		c.register(v, fines)
		out = append(out, v)
	}
	return out, nil
}

// register tags a coarse vertex with this coordinator's identity and
// records its one-level expansion.
func (c *Coordinator) register(v *querygraph.Vertex, fines []*querygraph.Vertex) {
	v.Tag = c.Name
	v.Key = fmt.Sprintf("%s#%d", c.Name, c.keySeq)
	v.Grain = c.Level
	c.keySeq++
	c.expand[v.Key] = fines
}

// coordRng returns a deterministic per-coordinator RNG so coarsening is
// stable across rounds for unchanged graphs.
func (t *Tree) coordRng(c *Coordinator) *rand.Rand {
	var h uint64 = 1469598103934665603
	for _, b := range []byte(c.Name) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return rand.New(rand.NewPCG(t.Cfg.Seed^h, h))
}

// prepared bundles a coordinator's working query graph.
type prepared struct {
	g *querygraph.Graph
	// work are the query-bearing clones, in graph order.
	work []*querygraph.Vertex
}

// prepare builds c's working query graph: clones of the incoming query-
// bearing vertices plus n-vertices for every node they reference (proxies
// from result-rate maps, sources from interest vectors), each pinned to the
// covering child or to its anchor in c's fixed network graph. Edges are
// fully materialized.
func (t *Tree) prepare(c *Coordinator, incoming []*querygraph.Vertex) (*prepared, error) {
	if err := t.ensureNG(c); err != nil {
		return nil, err
	}
	g := querygraph.NewOnSpace(t.space)
	prep := &prepared{g: g}

	referenced := make(map[topology.NodeID]bool)
	seenSrc := make([]bool, t.space.NumSources())
	for _, v := range incoming {
		cv := v.Clone()
		g.AddVertex(cv)
		prep.work = append(prep.work, cv)
		for proxy := range cv.ResultRates {
			referenced[proxy] = true
		}
		t.space.MarkSources(cv.Interest, seenSrc)
	}
	for si, ok := range seenSrc {
		if ok {
			referenced[t.space.SourceNode(si)] = true
		}
	}

	nodes := make([]topology.NodeID, 0, len(referenced))
	for n := range referenced {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		pin, assignable, ok := c.pinOf(n)
		if !ok {
			return nil, fmt.Errorf("hierarchy: %s has no pin for node %d", c.Name, n)
		}
		g.AddNVertex(n, pin, assignable)
	}
	g.ComputeEdges()
	return prep, nil
}

// ensureNG lazily builds the coordinator's fixed network graph: children
// clusters (or member processors at a leaf) first, then zero-capability
// anchors for every data source and every foreign processor. Building it
// once keeps target indices stable across distribution, insertion and
// adaptation.
func (t *Tree) ensureNG(c *Coordinator) error {
	if c.ng != nil {
		return nil
	}
	var verts []netgraph.Vertex
	if c.IsLeaf() {
		for _, p := range c.Procs {
			verts = append(verts, netgraph.Vertex{
				Node:       p,
				Capability: t.procCap[p],
				Members:    []topology.NodeID{p},
			})
		}
	} else {
		for _, ch := range c.Children {
			verts = append(verts, netgraph.Vertex{
				Node:       ch.Node,
				Capability: ch.Capability,
				Members:    ch.Members,
			})
		}
	}
	c.anchorIdx = make(map[topology.NodeID]int)
	addAnchor := func(n topology.NodeID) {
		if _, dup := c.anchorIdx[n]; dup || c.memberSet[n] {
			return
		}
		c.anchorIdx[n] = len(verts)
		verts = append(verts, netgraph.Vertex{Node: n})
	}
	seen := make(map[topology.NodeID]bool)
	for _, src := range t.sourceOfSub {
		if !seen[src] {
			seen[src] = true
			addAnchor(src)
		}
	}
	procs := make([]topology.NodeID, 0, len(t.procCap))
	for p := range t.procCap {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	for _, p := range procs {
		addAnchor(p)
	}
	ng, err := netgraph.New(verts, t.Oracle)
	if err != nil {
		return fmt.Errorf("hierarchy: %s network graph: %w", c.Name, err)
	}
	c.ng = ng
	return nil
}

// pinOf resolves the network-graph target a node is pinned to at this
// coordinator, and whether that target can host query load.
func (c *Coordinator) pinOf(n topology.NodeID) (idx int, assignable bool, ok bool) {
	if i, covered := c.childOfNode[n]; covered {
		return i, true, true
	}
	if i, anchored := c.anchorIdx[n]; anchored {
		return i, false, true
	}
	return 0, false, false
}

// assignableCount returns the number of load-hosting targets (children or
// member processors), which occupy the first indices of the network graph.
func (c *Coordinator) assignableCount() int {
	if c.IsLeaf() {
		return len(c.Procs)
	}
	return len(c.Children)
}

// descend maps the incoming vertices at coordinator c and recurses into the
// children with their uncoarsened shares (§3.5). With a non-nil sem, child
// recursions fan out over goroutines bounded by the semaphore's capacity,
// running inline when no slot is free.
func (t *Tree) descend(c *Coordinator, incoming []*querygraph.Vertex, assignFn assignFunc, sem chan struct{}) error {
	start := time.Now() //lint:nondeterminism wall-clock instrumentation: downTime only feeds timing reports, never a decision

	// Expand to this coordinator's working granularity.
	work, err := t.expandAll(incoming, c.Level-1)
	if err != nil {
		return err
	}
	prep, err := t.prepare(c, work)
	if err != nil {
		return err
	}
	res := prep.g.Coarsen(querygraph.CoarsenOptions{
		VMax:       t.Cfg.VMax,
		Rng:        t.coordRng(c),
		NoQN:       true,
		CountQOnly: true,
	})
	m := mapping.NewMapper(res.Graph, c.ng, mapping.Options{Alpha: t.Cfg.Alpha, Rng: t.coordRng(c)})
	var assign mapping.Assignment
	if assignFn != nil {
		assign, err = assignFn(c, res.Graph, m)
	} else {
		assign, err = m.Map()
	}
	if err != nil {
		return fmt.Errorf("hierarchy: %s mapping: %w", c.Name, err)
	}
	t.setState(c, res.Graph, assign)

	// Split the fine working vertices by assigned child.
	shares := make([][]*querygraph.Vertex, c.assignableCount())
	for ci, v := range res.Graph.Vertices {
		if len(v.Queries) == 0 {
			continue
		}
		k := assign[ci]
		if k < 0 || k >= len(shares) {
			return fmt.Errorf("hierarchy: %s: coarse vertex %d assigned to non-child target %d", c.Name, ci, k)
		}
		for _, fi := range res.CoarseToFine[ci] {
			fv := prep.g.Vertices[fi]
			if len(fv.Queries) > 0 {
				shares[k] = append(shares[k], fv)
			}
		}
	}
	c.downTime = time.Since(start) //lint:nondeterminism wall-clock instrumentation: downTime only feeds timing reports, never a decision

	if c.IsLeaf() {
		t.placeMu.Lock()
		for k, share := range shares {
			proc := c.ng.Vertices[k].Node
			for _, v := range share {
				for _, q := range v.Queries {
					t.placement[q.Name] = proc
				}
			}
		}
		t.placeMu.Unlock()
		return nil
	}
	if sem == nil {
		for k, share := range shares {
			if err := t.descend(c.Children[k], share, assignFn, nil); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	record := func(err error) {
		if err == nil {
			return
		}
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for k, share := range shares {
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(k int, share []*querygraph.Vertex) {
				defer wg.Done()
				err := t.descend(c.Children[k], share, assignFn, sem)
				<-sem
				record(err)
			}(k, share)
		default:
			// No free worker slot: recurse inline rather than blocking.
			record(t.descend(c.Children[k], share, assignFn, sem))
		}
	}
	wg.Wait()
	return firstErr
}

// setState records the mapped graph as the coordinator's current state for
// online insertion, removal and the next adaptation round.
func (t *Tree) setState(c *Coordinator, g *querygraph.Graph, assign mapping.Assignment) {
	c.graph = g
	c.assign = assign
	c.loads = mapping.Loads(g, c.ng, assign)
	c.byQuery = make(map[string]int)
	for id, v := range g.Vertices {
		if v == nil {
			continue
		}
		for _, q := range v.Queries {
			c.byQuery[q.Name] = id
		}
	}
}

// expandAll expands every vertex until its grain is at most maxGrain, using
// the tagging coordinators' expansion registries.
func (t *Tree) expandAll(verts []*querygraph.Vertex, maxGrain int) ([]*querygraph.Vertex, error) {
	var out []*querygraph.Vertex
	var rec func(v *querygraph.Vertex) error
	rec = func(v *querygraph.Vertex) error {
		if v.Grain <= maxGrain {
			out = append(out, v)
			return nil
		}
		owner, ok := t.byName[v.Tag]
		if !ok {
			return fmt.Errorf("hierarchy: vertex %s tagged by unknown coordinator %q", v.Key, v.Tag)
		}
		fines, ok := owner.expand[v.Key]
		if !ok {
			// No finer detail; treat as atomic at this grain.
			out = append(out, v)
			return nil
		}
		for _, f := range fines {
			if err := rec(f); err != nil {
				return err
			}
		}
		return nil
	}
	for _, v := range verts {
		if err := rec(v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// timingReport aggregates coordinator phase times into response (critical
// path) and total time.
func (t *Tree) timingReport() *Report {
	var total time.Duration
	for _, c := range t.All {
		total += c.upTime + c.downTime
	}
	var up func(c *Coordinator) time.Duration
	up = func(c *Coordinator) time.Duration {
		var maxChild time.Duration
		for _, ch := range c.Children {
			if d := up(ch); d > maxChild {
				maxChild = d
			}
		}
		return maxChild + c.upTime
	}
	var down func(c *Coordinator) time.Duration
	down = func(c *Coordinator) time.Duration {
		var maxChild time.Duration
		for _, ch := range c.Children {
			if d := down(ch); d > maxChild {
				maxChild = d
			}
		}
		return maxChild + c.downTime
	}
	return &Report{
		ResponseTime: up(t.Root) + down(t.Root),
		TotalTime:    total,
	}
}
