package hierarchy

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/querygraph"
	"repro/internal/topology"
)

// testSetup builds a 24-node line-ish topology with 12 processors and 2
// sources, and a small workload.
func testSetup(t *testing.T) (*topology.Oracle, []topology.NodeID, []querygraph.QueryInfo, []float64, []topology.NodeID) {
	t.Helper()
	cfg := topology.Config{
		TransitDomains:      2,
		TransitNodes:        2,
		StubDomainsPerNode:  2,
		StubNodes:           4,
		InterTransitLatency: [2]float64{50, 80},
		IntraTransitLatency: [2]float64{10, 20},
		TransitStubLatency:  [2]float64{2, 6},
		IntraStubLatency:    [2]float64{1, 2},
		Seed:                9,
	}
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	procs, err := topology.SampleNodes(g, topology.Stub, 12, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ex := map[topology.NodeID]bool{}
	for _, p := range procs {
		ex[p] = true
	}
	srcs, err := topology.SampleNodes(g, topology.Stub, 2, 2, ex)
	if err != nil {
		t.Fatal(err)
	}

	const nsub = 40
	rates := make([]float64, nsub)
	sources := make([]topology.NodeID, nsub)
	for i := range rates {
		rates[i] = 2
		sources[i] = srcs[i%2]
	}
	var queries []querygraph.QueryInfo
	for i := 0; i < 60; i++ {
		subs := []int{i % nsub, (i + 1) % nsub, (i + 2) % nsub}
		queries = append(queries, querygraph.QueryInfo{
			Name:       "q" + string(rune('A'+i%26)) + string(rune('a'+i/26)),
			Proxy:      procs[i%len(procs)],
			Load:       0.1,
			Interest:   bitvec.FromIndices(nsub, subs),
			ResultRate: 0.5,
			StateSize:  1,
		})
	}
	return topology.NewOracle(g), procs, queries, rates, sources
}

func TestBuildTreeStructure(t *testing.T) {
	oracle, procs, _, _, _ := testSetup(t)
	tree, err := Build(oracle, procs, nil, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Every processor is covered by exactly one leaf.
	covered := make(map[topology.NodeID]int)
	for _, leaf := range tree.Leaves {
		if len(leaf.Procs) < 2 {
			t.Errorf("leaf %s has %d processors (want >= 2 with k=3)", leaf.Name, len(leaf.Procs))
		}
		if len(leaf.Procs) > 3*3-1 {
			t.Errorf("leaf %s exceeds 3k-1 processors: %d", leaf.Name, len(leaf.Procs))
		}
		for _, p := range leaf.Procs {
			covered[p]++
		}
		// The leaf's coordinator node must be one of its members.
		if !leaf.Covers(leaf.Node) {
			t.Errorf("leaf %s median %d outside its cluster", leaf.Name, leaf.Node)
		}
	}
	for _, p := range procs {
		if covered[p] != 1 {
			t.Errorf("processor %d covered %d times", p, covered[p])
		}
	}
	// Root covers everything; capability sums match.
	if len(tree.Root.Members) != len(procs) {
		t.Errorf("root covers %d processors", len(tree.Root.Members))
	}
	if tree.Root.Capability != float64(len(procs)) {
		t.Errorf("root capability = %v", tree.Root.Capability)
	}
	// Levels are consistent parent-child.
	for _, c := range tree.All {
		for _, ch := range c.Children {
			if ch.Parent != c || ch.Level != c.Level-1 {
				t.Errorf("broken parent/level link at %s -> %s", c.Name, ch.Name)
			}
		}
	}
}

func TestDistributePlacesEveryQuery(t *testing.T) {
	oracle, procs, queries, rates, sources := testSetup(t)
	tree, err := Build(oracle, procs, nil, Config{K: 3, VMax: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tree.Distribute(queries, rates, sources)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	place := tree.Placement()
	if len(place) != len(queries) {
		t.Fatalf("placed %d of %d", len(place), len(queries))
	}
	procSet := make(map[topology.NodeID]bool, len(procs))
	for _, p := range procs {
		procSet[p] = true
	}
	for q, p := range place {
		if !procSet[p] {
			t.Errorf("query %s on non-processor %d", q, p)
		}
	}
	if rep.TotalTime < rep.ResponseTime {
		t.Errorf("total %v < response %v", rep.TotalTime, rep.ResponseTime)
	}
	// Load is spread: no processor holds more than a third of queries.
	counts := make(map[topology.NodeID]int)
	for _, p := range place {
		counts[p]++
	}
	for p, n := range counts {
		if n > len(queries)/3 {
			t.Errorf("processor %d hoards %d queries", p, n)
		}
	}
}

func TestInsertAfterDistribute(t *testing.T) {
	oracle, procs, queries, rates, sources := testSetup(t)
	tree, err := Build(oracle, procs, nil, Config{K: 3, VMax: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Distribute(queries, rates, sources); err != nil {
		t.Fatal(err)
	}
	q := querygraph.QueryInfo{
		Name:       "online",
		Proxy:      procs[0],
		Load:       0.1,
		Interest:   bitvec.FromIndices(40, []int{0, 1}),
		ResultRate: 0.5,
	}
	proc, err := tree.Insert(q)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if got := tree.Placement()["online"]; got != proc {
		t.Errorf("placement map says %d, Insert returned %d", got, proc)
	}
	if _, err := tree.RouteAtRoot(q); err != nil {
		t.Errorf("RouteAtRoot: %v", err)
	}
}

func TestInsertBeforeDistributeFails(t *testing.T) {
	oracle, procs, _, _, _ := testSetup(t)
	tree, err := Build(oracle, procs, nil, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Insert(querygraph.QueryInfo{Name: "x"}); err == nil {
		t.Error("Insert before Distribute succeeded")
	}
}

func TestDistributeRejectsBadProxy(t *testing.T) {
	oracle, procs, queries, rates, sources := testSetup(t)
	tree, err := Build(oracle, procs, nil, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	queries[0].Proxy = 99999
	if _, err := tree.Distribute(queries, rates, sources); err == nil {
		t.Error("non-processor proxy accepted")
	}
}

func TestAdaptWithoutChangesIsQuiet(t *testing.T) {
	oracle, procs, queries, rates, sources := testSetup(t)
	tree, err := Build(oracle, procs, nil, Config{K: 3, VMax: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Distribute(queries, rates, sources); err != nil {
		t.Fatal(err)
	}
	// Let adaptation settle, then verify steady state is calm.
	var last int
	for i := 0; i < 4; i++ {
		rep, err := tree.Adapt(nil)
		if err != nil {
			t.Fatalf("Adapt: %v", err)
		}
		last = rep.Migrations
	}
	if last > len(queries)/5 {
		t.Errorf("steady-state round still migrates %d of %d queries", last, len(queries))
	}
}

func TestProcessorLoads(t *testing.T) {
	oracle, procs, queries, rates, sources := testSetup(t)
	tree, err := Build(oracle, procs, nil, Config{K: 3, VMax: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Distribute(queries, rates, sources); err != nil {
		t.Fatal(err)
	}
	loads := tree.ProcessorLoads()
	var total float64
	for _, l := range loads {
		//lint:maporder the sum is asserted within a 1e-9 tolerance, far above any summation-order drift
		total += l
	}
	want := 0.1 * float64(len(queries))
	if diff := total - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("total load = %v, want %v", total, want)
	}
}
