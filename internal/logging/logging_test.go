package logging

import (
	"bytes"
	"errors"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want Level
		err  bool
	}{
		{"debug", LevelDebug, false},
		{"INFO", LevelInfo, false},
		{" warn ", LevelWarn, false},
		{"warning", LevelWarn, false},
		{"Error", LevelError, false},
		{"off", LevelOff, false},
		{"none", LevelOff, false},
		{"verbose", 0, true},
		{"", 0, true},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseLevel(%q): want error, got %v", c.in, got)
			} else if !strings.Contains(err.Error(), strings.TrimSpace(c.in)) && c.in != "" {
				t.Errorf("ParseLevel(%q) error does not name the value: %v", c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseLevel(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("ParseLevel(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

var lineRE = regexp.MustCompile(`^ts=\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z level=(\w+) msg=(.*)$`)

func TestTextLoggerFormat(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelDebug)
	l.Info("hello", "node", 3, "addr", "127.0.0.1:7000")
	line := strings.TrimSuffix(buf.String(), "\n")
	m := lineRE.FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("line does not match schema: %q", line)
	}
	if m[1] != "info" {
		t.Errorf("level = %q, want info", m[1])
	}
	if want := "hello node=3 addr=127.0.0.1:7000"; m[2] != want {
		t.Errorf("payload = %q, want %q", m[2], want)
	}
}

func TestTextLoggerQuoting(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelDebug)
	l.Warn("two words", "err", errors.New(`dial "x": refused`), "empty", "", "eq", "a=b")
	got := buf.String()
	for _, want := range []string{
		`msg="two words"`,
		`err="dial \"x\": refused"`,
		`empty=""`,
		`eq="a=b"`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q: %q", want, got)
		}
	}
}

func TestTextLoggerLevelGate(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelWarn)
	l.Debug("d")
	l.Info("i")
	if buf.Len() != 0 {
		t.Fatalf("gated records emitted: %q", buf.String())
	}
	l.Warn("w")
	l.Error("e")
	if n := strings.Count(buf.String(), "\n"); n != 2 {
		t.Fatalf("want 2 records, got %d: %q", n, buf.String())
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelInfo) {
		t.Errorf("Enabled gate wrong: error=%v info=%v", l.Enabled(LevelError), l.Enabled(LevelInfo))
	}
}

func TestWithBindsFields(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo).With("node", 7)
	l.Info("up", "addr", ":9")
	if got := buf.String(); !strings.Contains(got, "msg=up node=7 addr=:9") {
		t.Fatalf("bound field missing: %q", got)
	}
	// The parent logger is unchanged.
	buf.Reset()
	New(&buf, LevelInfo).Info("plain")
	if strings.Contains(buf.String(), "node=7") {
		t.Fatalf("parent logger polluted: %q", buf.String())
	}
}

func TestDanglingKey(t *testing.T) {
	var buf bytes.Buffer
	New(&buf, LevelInfo).Info("m", "alone")
	if !strings.Contains(buf.String(), "alone=!MISSING") {
		t.Fatalf("dangling key not marked: %q", buf.String())
	}
}

func TestNopLogger(t *testing.T) {
	l := Nop()
	l.Debug("x")
	l.Info("x")
	l.Warn("x")
	l.Error("x")
	if l.Enabled(LevelError) {
		t.Fatal("Nop().Enabled must be false")
	}
	if l.With("k", "v") == nil {
		t.Fatal("Nop().With returned nil")
	}
}

func TestOffEmitsNothing(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelOff)
	l.Error("x")
	if buf.Len() != 0 || l.Enabled(LevelError) {
		t.Fatalf("LevelOff logger emitted: %q", buf.String())
	}
}

func TestConcurrentWritesDoNotInterleave(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			child := l.With("g", g)
			for i := 0; i < 50; i++ {
				child.Info("tick", "i", i)
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("want 400 lines, got %d", len(lines))
	}
	for _, line := range lines {
		if !lineRE.MatchString(line) {
			t.Fatalf("interleaved or malformed line: %q", line)
		}
	}
}
