// Package logging is the node's structured, leveled logger: one line per
// event, `key=value` pairs, a fixed level gate. It exists so the deployable
// node (cmd/cosmos-node) and the libraries it threads the Logger interface
// through (internal/transport, internal/pubsub) emit operator-greppable
// logs instead of free-form Printf — the compose smoke and the OPS.md
// runbook both key off the msg= and field names, so they are part of the
// node's operational contract (see OPS.md "Log schema").
//
// The interface is deliberately tiny: four level methods taking alternating
// key/value pairs, With for binding permanent fields (node=3), Enabled for
// guarding expensive field construction on hot paths. Libraries accept a
// Logger and never construct one; Nop() is the default wiring, so a library
// holding a Logger costs one interface word and a predictable-false branch
// when logging is off.
package logging

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities. The zero value is LevelDebug; a Logger
// emits records at or above its configured minimum.
type Level int32

// Severity levels, least severe first.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff is above every severity: a logger gated at LevelOff emits
	// nothing (the level string "off" in config).
	LevelOff
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// ParseLevel maps a level name ("debug", "info", "warn", "error", "off",
// case-insensitive) to its Level. The error names the bad value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	}
	return LevelInfo, fmt.Errorf("logging: unknown level %q (want debug, info, warn, error or off)", s)
}

// Logger is the structured logging interface threaded through the node's
// libraries. kv is alternating key/value pairs; a trailing key without a
// value is rendered with the value "!MISSING". Implementations must be safe
// for concurrent use.
type Logger interface {
	Debug(msg string, kv ...any)
	Info(msg string, kv ...any)
	Warn(msg string, kv ...any)
	Error(msg string, kv ...any)
	// With returns a Logger that appends the given pairs to every record.
	With(kv ...any) Logger
	// Enabled reports whether records at the given level would be
	// emitted — the guard for hot paths that would otherwise build
	// fields for a record the gate drops.
	Enabled(l Level) bool
}

// Nop returns the do-nothing Logger: every method is a no-op and Enabled is
// always false. The default for every library seam.
func Nop() Logger { return nopLogger{} }

type nopLogger struct{}

func (nopLogger) Debug(string, ...any) {}
func (nopLogger) Info(string, ...any)  {}
func (nopLogger) Warn(string, ...any)  {}
func (nopLogger) Error(string, ...any) {}
func (nopLogger) With(...any) Logger   { return nopLogger{} }
func (nopLogger) Enabled(Level) bool   { return false }

// New returns a Logger writing one `ts=… level=… msg=… k=v …` line per
// record to w, emitting records at or above min. Writes are serialized with
// an internal mutex, so one logger may be shared across goroutines and
// With-derived children (lines never interleave).
func New(w io.Writer, min Level) Logger {
	return &textLogger{out: &syncWriter{w: w}, min: min}
}

// syncWriter serializes writes from every logger sharing it.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) writeLine(line []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// A logging failure has no better place to be reported than the log
	// itself; dropping the record is the only option.
	_, _ = s.w.Write(line)
}

// textLogger is the key=value text implementation.
type textLogger struct {
	out   *syncWriter
	min   Level
	bound string // pre-rendered With fields, " k=v k=v"
}

func (t *textLogger) Enabled(l Level) bool { return l >= t.min && t.min < LevelOff }

func (t *textLogger) With(kv ...any) Logger {
	if len(kv) == 0 {
		return t
	}
	var b strings.Builder
	b.WriteString(t.bound)
	appendPairs(&b, kv)
	return &textLogger{out: t.out, min: t.min, bound: b.String()}
}

func (t *textLogger) Debug(msg string, kv ...any) { t.log(LevelDebug, msg, kv) }
func (t *textLogger) Info(msg string, kv ...any)  { t.log(LevelInfo, msg, kv) }
func (t *textLogger) Warn(msg string, kv ...any)  { t.log(LevelWarn, msg, kv) }
func (t *textLogger) Error(msg string, kv ...any) { t.log(LevelError, msg, kv) }

func (t *textLogger) log(l Level, msg string, kv []any) {
	if !t.Enabled(l) {
		return
	}
	var b strings.Builder
	b.Grow(64 + len(msg) + len(t.bound) + 16*len(kv))
	b.WriteString("ts=")
	b.WriteString(time.Now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(l.String())
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	b.WriteString(t.bound)
	appendPairs(&b, kv)
	b.WriteByte('\n')
	t.out.writeLine([]byte(b.String()))
}

// appendPairs renders alternating key/value pairs as " k=v". A dangling key
// gets the value "!MISSING"; a non-string key is rendered with %v.
func appendPairs(b *strings.Builder, kv []any) {
	for i := 0; i < len(kv); i += 2 {
		b.WriteByte(' ')
		if k, ok := kv[i].(string); ok {
			b.WriteString(k)
		} else {
			b.WriteString(quoteValue(fmt.Sprintf("%v", kv[i])))
		}
		b.WriteByte('=')
		if i+1 < len(kv) {
			b.WriteString(formatValue(kv[i+1]))
		} else {
			b.WriteString("!MISSING")
		}
	}
}

func formatValue(v any) string {
	switch x := v.(type) {
	case string:
		return quoteValue(x)
	case error:
		if x == nil {
			return "<nil>"
		}
		return quoteValue(x.Error())
	case fmt.Stringer:
		return quoteValue(x.String())
	default:
		return quoteValue(fmt.Sprintf("%v", v))
	}
}

// quoteValue quotes a value only when it needs it (spaces, quotes, '=' or
// control characters), keeping the common case grep-friendly.
func quoteValue(s string) string {
	if s == "" {
		return `""`
	}
	for _, r := range s {
		if r <= ' ' || r == '"' || r == '=' || r == 0x7f {
			return strconv.Quote(s)
		}
	}
	return s
}
