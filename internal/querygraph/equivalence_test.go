package querygraph

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/topology"
)

// randomGraph builds a randomized query graph over a random substream space:
// q-vertices with zipf-ish interests, n-vertices for processors and sources
// (some never referenced), and prebuilt mixed coarse vertices with multiple
// queries, nodes, and result-rate entries — every vertex shape the
// hierarchy's coarsening and shipping can produce.
func randomGraph(r *rand.Rand) *Graph {
	nSub := 16 + r.IntN(120)
	nSrc := 1 + r.IntN(5)
	nProc := 2 + r.IntN(5)
	rates := make([]float64, nSub)
	sources := make([]topology.NodeID, nSub)
	for i := range rates {
		if r.IntN(5) > 0 { // leave some substreams at rate zero
			rates[i] = r.Float64() * 10
		}
		sources[i] = topology.NodeID(1000 + r.IntN(nSrc))
	}
	g, err := New(rates, sources)
	if err != nil {
		panic(err)
	}

	interest := func() *bitvec.Vector {
		iv := bitvec.New(nSub)
		for b := 1 + r.IntN(8); b > 0; b-- {
			iv.Set(r.IntN(nSub))
		}
		return iv
	}

	nQ := r.IntN(20)
	for q := 0; q < nQ; q++ {
		g.AddQVertex(QueryInfo{
			Name:       fmt.Sprintf("q%d", q),
			Proxy:      topology.NodeID(r.IntN(nProc)),
			Load:       r.Float64(),
			Interest:   interest(),
			ResultRate: r.Float64() * 2,
		})
	}
	// Mixed coarse vertices, as coarsening with q-n merges produces.
	for m := r.IntN(4); m > 0; m-- {
		v := &Vertex{
			Weight:   r.Float64(),
			Clu:      r.IntN(nProc),
			Queries:  []QueryInfo{{Name: fmt.Sprintf("m%d", m)}},
			Interest: interest(),
			ResultRates: map[topology.NodeID]float64{
				topology.NodeID(r.IntN(nProc)): r.Float64(),
				topology.NodeID(r.IntN(nProc)): r.Float64(),
			},
		}
		if r.IntN(2) == 0 {
			v.Nodes = []topology.NodeID{topology.NodeID(r.IntN(nProc))}
		}
		g.AddVertex(v)
	}
	for p := 0; p < nProc; p++ {
		g.AddNVertex(topology.NodeID(p), p, true)
	}
	for s := 0; s < nSrc; s++ {
		if r.IntN(4) > 0 { // occasionally leave a source out of the graph
			g.AddNVertex(topology.NodeID(1000+s), nProc+s, false)
		}
	}
	return g
}

func sameAdjacency(t *testing.T, label string, a, b *Graph) {
	t.Helper()
	if len(a.Vertices) != len(b.Vertices) {
		t.Fatalf("%s: vertex counts differ: %d vs %d", label, len(a.Vertices), len(b.Vertices))
	}
	for i := range a.Vertices {
		ra, rb := a.Neighbors(i), b.Neighbors(i)
		if len(ra) != len(rb) {
			t.Fatalf("%s: vertex %d degree %d vs %d", label, i, len(ra), len(rb))
		}
		for k := range ra {
			if ra[k].To != rb[k].To || ra[k].W != rb[k].W {
				t.Fatalf("%s: vertex %d entry %d: (%d,%v) vs (%d,%v)",
					label, i, k, ra[k].To, ra[k].W, rb[k].To, rb[k].W)
			}
		}
	}
}

// TestComputeEdgesMatchesNaive: the index-driven edge construction must
// reproduce the retained O(V²) reference bit-for-bit — same edge set, same
// weights — on randomized graphs.
func TestComputeEdgesMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 0xed9e))
		g := randomGraph(r)
		g.ComputeEdges()

		naive := &Graph{Space: g.Space, Vertices: g.Vertices, adj: make([][]Adj, len(g.Vertices))}
		naive.ComputeEdgesNaive()
		sameAdjacency(t, fmt.Sprintf("seed %d", seed), g, naive)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestConnectVertexMatchesNaive: incremental connection of a late-arriving
// vertex must agree with a from-scratch naive construction.
func TestConnectVertexMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 0xc044))
		g := randomGraph(r)
		g.ComputeEdges()

		iv := bitvec.New(len(g.SubRates))
		for b := 1 + r.IntN(6); b > 0; b-- {
			iv.Set(r.IntN(len(g.SubRates)))
		}
		v := g.AddQVertex(QueryInfo{
			Name:       "late",
			Proxy:      0,
			Load:       r.Float64(),
			Interest:   iv,
			ResultRate: r.Float64(),
		})
		g.ConnectVertex(v)

		naive := &Graph{Space: g.Space, Vertices: g.Vertices, adj: make([][]Adj, len(g.Vertices))}
		naive.ComputeEdgesNaive()
		sameAdjacency(t, fmt.Sprintf("seed %d", seed), g, naive)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestCoarsenEquivalentOnNaiveEdges: Coarsen's deferred, batched edge
// re-estimation must produce the same coarse graph regardless of whether
// the fine edges came from the indexed or the naive construction.
func TestCoarsenEquivalentOnNaiveEdges(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		r := rand.New(rand.NewPCG(seed, 0xc0a5))
		g := randomGraph(r)
		g.ComputeEdges()
		naive := &Graph{Space: g.Space, Vertices: g.Vertices, adj: make([][]Adj, len(g.Vertices))}
		naive.ComputeEdgesNaive()

		vmax := 1 + r.IntN(8)
		a := g.Coarsen(CoarsenOptions{VMax: vmax, Rng: rand.New(rand.NewPCG(seed, 1)), NoQN: true, CountQOnly: true})
		b := naive.Coarsen(CoarsenOptions{VMax: vmax, Rng: rand.New(rand.NewPCG(seed, 1)), NoQN: true, CountQOnly: true})
		sameAdjacency(t, fmt.Sprintf("seed %d", seed), a.Graph, b.Graph)
		for i := range a.FineToCoarse {
			if a.FineToCoarse[i] != b.FineToCoarse[i] {
				t.Fatalf("seed %d: fine %d coarsens to %d vs %d", seed, i, a.FineToCoarse[i], b.FineToCoarse[i])
			}
		}
	}
}
