package querygraph

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/topology"
)

// This file property-tests the teardown primitives RemoveVertex and
// ShrinkVertex: after arbitrary interleavings of additions, removals and
// shrinks, the in-place-repaired inverted index must behave exactly like an
// index rebuilt from scratch over the surviving vertices, and re-estimated
// edges must equal a full ComputeEdges pass.

func randRemQuery(r *rand.Rand, id int, nSub int, procs []topology.NodeID) QueryInfo {
	iv := bitvec.New(nSub)
	for i := 0; i < 1+r.IntN(4); i++ {
		iv.Set(r.IntN(nSub))
	}
	return QueryInfo{
		Name:       fmt.Sprintf("q%d", id),
		Proxy:      procs[r.IntN(len(procs))],
		Load:       1 + r.Float64(),
		Interest:   iv,
		ResultRate: 1 + 10*r.Float64(),
		StateSize:  r.Float64(),
	}
}

// overlapSnapshot captures ForEachOverlap's output for a probe interest —
// the index-driven view routeAt consumes.
func overlapSnapshot(g *Graph, iv *bitvec.Vector) map[int]float64 {
	out := make(map[int]float64)
	g.ForEachOverlap(iv, func(v int, w float64) {
		if g.Vertices[v] == nil {
			panic(fmt.Sprintf("index surfaced removed vertex %d", v))
		}
		out[v] = w
	})
	return out
}

// edgeSnapshot renders the live adjacency as a canonical map.
func edgeSnapshot(g *Graph) map[[2]int]float64 {
	out := make(map[[2]int]float64)
	for i, run := range g.AdjacencyLists() {
		if i >= len(g.Vertices) || g.Vertices[i] == nil {
			continue
		}
		for _, e := range run {
			a, b := i, e.To
			if a > b {
				a, b = b, a
			}
			out[[2]int{a, b}] = e.W
		}
	}
	return out
}

// rebuiltTwin constructs a fresh graph holding exactly the surviving
// vertices of g (clones, same content) and returns it plus the ID mapping.
func rebuiltTwin(g *Graph) (*Graph, []int) {
	twin := NewOnSpace(g.Space)
	idOf := make([]int, len(g.Vertices))
	for i := range idOf {
		idOf[i] = -1
	}
	for i, v := range g.Vertices {
		if v == nil {
			continue
		}
		cv := v.Clone()
		cv.Interest = v.Interest // content-identical is what matters
		idOf[i] = twin.AddVertex(cv).ID
	}
	twin.ComputeEdges()
	return twin, idOf
}

// TestRemoveVertexRepairsIndex: random add/remove/shrink churn; after every
// mutation the repaired index's overlap view and the re-estimated edges are
// bit-identical to a from-scratch twin graph over the surviving vertices.
func TestRemoveVertexRepairsIndex(t *testing.T) {
	procs := []topology.NodeID{0, 1, 2, 3}
	for seed := uint64(0); seed < 25; seed++ {
		r := rand.New(rand.NewPCG(seed, 4242))
		nSub := 8 + r.IntN(24)
		subRates := make([]float64, nSub)
		sourceOfSub := make([]topology.NodeID, nSub)
		for i := range subRates {
			subRates[i] = 1 + 5*r.Float64()
			sourceOfSub[i] = topology.NodeID(10 + r.IntN(3))
		}
		g, err := New(subRates, sourceOfSub)
		if err != nil {
			t.Fatal(err)
		}
		// Anchor n-vertices (sources and proxies), as coordinator graphs
		// have.
		for _, n := range []topology.NodeID{10, 11, 12, 0, 1, 2, 3} {
			g.AddNVertex(n, int(n)%3, true)
		}
		var queries []QueryInfo
		for i := 0; i < 12+r.IntN(12); i++ {
			q := randRemQuery(r, i, nSub, procs)
			queries = append(queries, q)
			v := g.AddQVertex(q)
			g.ConnectVertex(v) // builds the index incrementally, like Insert
		}
		live := make(map[int]bool)
		for i, v := range g.Vertices {
			if v != nil && len(v.Queries) > 0 {
				live[i] = true
			}
		}

		check := func(step string) {
			t.Helper()
			twin, idOf := rebuiltTwin(g)
			// Edges of the churned graph == full recompute on the twin.
			got := edgeSnapshot(g)
			want := edgeSnapshot(twin)
			remapped := make(map[[2]int]float64, len(got))
			for k, w := range got {
				a, b := idOf[k[0]], idOf[k[1]]
				if a < 0 || b < 0 {
					t.Fatalf("seed %d %s: edge %v touches removed vertex", seed, step, k)
				}
				if a > b {
					a, b = b, a
				}
				remapped[[2]int{a, b}] = w
			}
			if !reflect.DeepEqual(remapped, want) {
				t.Fatalf("seed %d %s: edges diverge from rebuilt twin\ngot:  %v\nwant: %v", seed, step, remapped, want)
			}
			// Overlap view for random probes.
			for p := 0; p < 5; p++ {
				iv := bitvec.New(nSub)
				for i := 0; i < 1+r.IntN(4); i++ {
					iv.Set(r.IntN(nSub))
				}
				gotOv := overlapSnapshot(g, iv)
				wantOv := overlapSnapshot(twin, iv)
				remappedOv := make(map[int]float64, len(gotOv))
				for v, w := range gotOv {
					remappedOv[idOf[v]] = w
				}
				if !reflect.DeepEqual(remappedOv, wantOv) {
					t.Fatalf("seed %d %s: overlap view diverges\ngot:  %v\nwant: %v", seed, step, remappedOv, wantOv)
				}
			}
		}

		for round := 0; round < 10; round++ {
			// Sorted so the seeded r.IntN index picks the same vertex
			// every run — map order would break reproducibility.
			ids := make([]int, 0, len(live))
			for id := range live {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			switch {
			case len(ids) > 0 && r.IntN(2) == 0:
				// Remove a random query vertex.
				id := ids[r.IntN(len(ids))]
				if g.RemoveVertex(id) == nil {
					t.Fatalf("seed %d: RemoveVertex(%d) found empty slot", seed, id)
				}
				delete(live, id)
				check(fmt.Sprintf("round %d remove %d", round, id))
			case len(ids) > 0 && r.IntN(2) == 0:
				// Shrink: drop the vertex's last query, keep the rest —
				// here vertices are atomic, so synthesize a 2-query
				// merged vertex first, then shrink it back down.
				id := ids[r.IntN(len(ids))]
				old := g.Vertices[id]
				extra := randRemQuery(r, 1000+round, nSub, procs)
				merged := &Vertex{
					Weight:      old.Weight + extra.Load,
					Clu:         ClusterUnknown,
					Queries:     append(append([]QueryInfo(nil), old.Queries...), extra),
					Interest:    old.Interest.Clone(),
					ResultRates: map[topology.NodeID]float64{},
					StateSize:   old.StateSize + extra.StateSize,
				}
				_ = merged.Interest.Or(extra.Interest)
				for n, rr := range old.ResultRates {
					//lint:maporder unique keys: each entry of the fresh map is written exactly once
					merged.ResultRates[n] += rr
				}
				merged.ResultRates[extra.Proxy] += extra.ResultRate
				// Growing content needs the count-based rebuild path:
				// install the merged vertex as a NEW vertex and remove
				// the old one (exactly how a coarse vertex arises),
				// then shrink the new vertex back to old's content.
				g.RemoveVertex(id)
				delete(live, id)
				nv := g.AddVertex(merged)
				g.ConnectVertex(nv)
				check(fmt.Sprintf("round %d merge-into %d", round, nv.ID))
				shrunk := &Vertex{
					Weight:      old.Weight,
					Clu:         ClusterUnknown,
					Queries:     append([]QueryInfo(nil), old.Queries...),
					Interest:    old.Interest.Clone(),
					ResultRates: map[topology.NodeID]float64{},
					StateSize:   old.StateSize,
				}
				for n, rr := range old.ResultRates {
					//lint:maporder unique keys: each entry of the fresh map is written exactly once
					shrunk.ResultRates[n] += rr
				}
				g.ShrinkVertex(nv.ID, shrunk)
				live[nv.ID] = true
				check(fmt.Sprintf("round %d shrink %d", round, nv.ID))
			default:
				q := randRemQuery(r, 100+round, nSub, procs)
				queries = append(queries, q)
				v := g.AddQVertex(q)
				g.ConnectVertex(v)
				live[v.ID] = true
				check(fmt.Sprintf("round %d add %d", round, v.ID))
			}
		}

		// Drain: removing every query vertex leaves an index that still
		// answers (empty) overlap queries and edge scans correctly.
		for id := range live {
			g.RemoveVertex(id)
		}
		probe := bitvec.New(nSub)
		for i := 0; i < nSub; i++ {
			probe.Set(i)
		}
		for v, w := range overlapSnapshot(g, probe) {
			if len(g.Vertices[v].Queries) > 0 {
				t.Fatalf("seed %d: drained graph still surfaces query vertex %d (w=%v)", seed, v, w)
			}
		}
	}
}
