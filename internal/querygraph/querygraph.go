// Package querygraph implements the query graph QG = {Vq, Eq, Wq} of the
// paper's graph-mapping model (§3.1.2) and the coarsening procedure of
// Algorithm 1.
//
// A query graph has two vertex kinds: q-vertices representing (groups of)
// continuous queries, weighted by estimated CPU load, and n-vertices
// representing network nodes (data sources and user proxies), weighted zero.
// Edges carry estimated data rates: source edges (query pulls substreams
// from a source), result edges (query pushes its result stream to a proxy),
// and overlap edges between queries with shared data interest — the model
// component that makes the mapping aware of Pub/Sub communication sharing.
//
// Every edge weight is derivable from vertex content (interest bit vectors,
// per-substream rates, result-rate maps), which is what lets coarsening
// re-estimate edges exactly and lets parents compute cross-subtree overlap
// edges between coarse vertices submitted by different children.
//
// # Representation
//
// Adjacency is CSR-style: each vertex's edges are a []Adj run sorted by
// neighbor ID, and ComputeEdges lays every run out over one shared backing
// array. Incremental operations (ConnectVertex, coarsening's edge
// re-estimation) patch individual runs in place, falling back to a private
// allocation only when a run outgrows its span. The mapping algorithms
// therefore iterate dense slices, never hash maps.
//
// Edge construction is index-driven: the graph maintains inverted indexes
// from substream to interested vertices, from source node to the vertices
// representing it, and from proxy node to the vertices sending results to
// it. ComputeEdges and ConnectVertex enumerate only candidate pairs that
// can have nonzero weight — pairs sharing a substream, a source, or a
// proxy — instead of evaluating all O(|V|²) pairs. ComputeEdgesNaive
// retains the literal all-pairs construction as the reference
// implementation; the indexed path reproduces its weights bit-for-bit.
package querygraph

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/topology"
)

// ClusterUnknown marks an n-vertex not covered by any child cluster of the
// current coordinator.
const ClusterUnknown = -1

// QueryInfo is the leaf-granularity description of one continuous query as
// the distribution machinery sees it.
type QueryInfo struct {
	Name       string
	Proxy      topology.NodeID
	Load       float64        // CPU time per unit time on a ci=1 processor
	Interest   *bitvec.Vector // substream interest
	ResultRate float64        // result stream rate, bytes/sec
	StateSize  float64        // operator state size, for migration cost
}

// Vertex is a (possibly coarsened) query-graph vertex. A pure q-vertex has
// Queries and no Nodes; a pure n-vertex has exactly one node and no queries;
// coarsening may produce mixed vertices.
type Vertex struct {
	ID     int
	Weight float64 // total query load; 0 for pure n-vertices

	// Nodes are the network nodes this vertex represents (n-vertex part).
	Nodes []topology.NodeID
	// Clu is the network-graph vertex index this vertex is pinned to by
	// the network constraint, or ClusterUnknown. For n-vertices covered
	// by a child cluster this is the child's index; for external nodes
	// (sources or proxies outside the coordinator's subtree) it is the
	// index of a zero-capability anchor vertex in the network graph.
	Clu int
	// Assignable records whether the pinned target can also host query
	// load (a real child cluster) as opposed to a pure anchor. Only
	// n-vertices pinned to assignable targets may absorb q-vertices
	// during coarsening; merging a query into a source anchor would pin
	// the query to a node with no processing capability.
	Assignable bool

	// Queries are the constituent queries (q-vertex part).
	Queries []QueryInfo
	// Interest is the union of constituent queries' interest vectors.
	Interest *bitvec.Vector
	// ResultRates aggregates result-stream rate per proxy node.
	ResultRates map[topology.NodeID]float64
	// StateSize is the total operator state of constituent queries.
	StateSize float64

	// Tag names the coordinator holding the finer-grained expansion of
	// this vertex (§3.4).
	Tag string
	// Key identifies the vertex within its tagging coordinator's
	// expansion registry. (Tag, Key) is globally unique and survives
	// cloning across graphs.
	Key string
	// Grain is the granularity level of the vertex: 0 for an atomic
	// single-query vertex, L for a vertex produced by the coarsening of
	// a level-L coordinator. A level-L coordinator works on vertices of
	// grain <= L-1.
	Grain int
	// Dirty marks vertices already picked for remapping in the current
	// adaptation round (Algorithm 3).
	Dirty bool

	// scan caches the interest's set-bit indices when sparse, cutting
	// pairwise overlap evaluation from a full word scan to O(popcount)
	// bit tests. Built lazily on first edge estimation; Interest must
	// not be mutated afterwards (graph construction never does — merged
	// vertices get fresh Interest unions).
	scan interestScan
	// nscan caches per-node compact source indexes (see Graph.nodeSrcs).
	nscan nodeScan
}

type nodeScan struct {
	built bool
	src   []int32
}

// sparseMax bounds the popcount up to which a vertex caches its interest
// indices; denser interests use the word-parallel overlap scan.
const sparseMax = 192

type interestScan struct {
	built bool
	idx   []int32 // set-bit indices; nil when dense (or no interest)
	// lo/hi bound the nonzero words of the interest, so dense overlap
	// scans cover only the span intersection.
	lo, hi int32
}

// ensureScan builds the cached scan info: the word span always, the set-bit
// index list only when the interest is sparse.
func (v *Vertex) ensureScan() *interestScan {
	if !v.scan.built {
		v.scan.built = true
		if v.Interest != nil {
			words := v.Interest.Words()
			lo, hi := -1, 0
			n := 0
			for wi, w := range words {
				if w != 0 {
					if lo < 0 {
						lo = wi
					}
					hi = wi + 1
					n += bits.OnesCount64(w)
				}
			}
			if lo < 0 {
				lo = 0
			}
			v.scan.lo, v.scan.hi = int32(lo), int32(hi)
			if n <= sparseMax {
				idx := make([]int32, 0, n)
				for wi := lo; wi < hi; wi++ {
					w := words[wi]
					for w != 0 {
						idx = append(idx, int32(wi<<6+bits.TrailingZeros64(w)))
						w &= w - 1
					}
				}
				v.scan.idx = idx
			}
		}
	}
	return &v.scan
}

// sparseIdx returns the cached set-bit indices, or nil for dense interests.
func (v *Vertex) sparseIdx() []int32 { return v.ensureScan().idx }

// nodeSrcs returns, per entry of v.Nodes, the compact source index of that
// node (or -1), cached on the vertex. It keeps demand evaluation free of
// map lookups. Valid because a vertex only ever lives in graphs sharing one
// substream space.
func (g *Graph) nodeSrcs(v *Vertex) []int32 {
	if !v.nscan.built {
		v.nscan.built = true
		if len(v.Nodes) > 0 {
			arr := make([]int32, len(v.Nodes))
			for i, node := range v.Nodes {
				if si, ok := g.srcIdxOfNode[node]; ok {
					arr[i] = si
				} else {
					arr[i] = -1
				}
			}
			v.nscan.src = arr
		}
	}
	return v.nscan.src
}

// Clone returns a copy of the vertex suitable for insertion into another
// graph. Immutable content (interest vector, query list, node list) is
// shared; the result-rate map is copied because coarsening mutates it.
func (v *Vertex) Clone() *Vertex {
	c := *v
	c.Nodes = append([]topology.NodeID(nil), v.Nodes...)
	if v.ResultRates != nil {
		c.ResultRates = make(map[topology.NodeID]float64, len(v.ResultRates))
		for n, r := range v.ResultRates {
			c.ResultRates[n] = r
		}
	}
	return &c
}

// IsN reports whether the vertex has an n-vertex component, which pins its
// mapping target.
func (v *Vertex) IsN() bool { return len(v.Nodes) > 0 }

// Adj is one adjacency entry.
type Adj struct {
	To int
	W  float64
}

// Space holds the substream statistics shared by every query graph of one
// distribution task: per-substream rates and origins plus the derived
// source-node indexes. Building it is O(#substreams); the coordinator
// hierarchy builds it once and shares it across all per-coordinator graphs
// (it is immutable apart from in-place SubRates perturbation, which the
// graphs read live).
type Space struct {
	// SubRates is the per-substream rate vector (bytes/sec). The slice is
	// retained, and callers may perturb rates in place between rounds.
	SubRates []float64
	// SourceOfSub maps each substream index to its origin node.
	SourceOfSub []topology.NodeID

	// subsByNode caches, per origin node, the substream indices it
	// originates, as a bit vector for fast demand computation;
	// subsBySrc is the same data keyed by compact source index.
	subsByNode map[topology.NodeID]*bitvec.Vector
	subsBySrc  []*bitvec.Vector
	// srcIdxOfSub maps a substream to the compact index of its origin in
	// srcNodes; srcIdxOfNode is the node-keyed inverse.
	srcIdxOfSub  []int32
	srcNodes     []topology.NodeID
	srcIdxOfNode map[topology.NodeID]int32
}

// NumSources returns the number of distinct source nodes.
func (s *Space) NumSources() int { return len(s.srcNodes) }

// SourceNode returns the node of compact source index si.
func (s *Space) SourceNode(si int) topology.NodeID { return s.srcNodes[si] }

// MarkSources sets seen[si] for every compact source index si whose node
// originates a substream the interest is set on. seen must have length
// NumSources; it accumulates across calls, letting callers collect the
// referenced sources of many vertices without per-vertex allocations.
func (s *Space) MarkSources(interest *bitvec.Vector, seen []bool) {
	if interest == nil {
		return
	}
	for wi, w := range interest.Words() {
		for w != 0 {
			b := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if b >= len(s.srcIdxOfSub) {
				break
			}
			seen[s.srcIdxOfSub[b]] = true
		}
	}
}

// NewSpace indexes the substream statistics. SubRates and SourceOfSub must
// have equal length; both slices are retained, not copied.
func NewSpace(subRates []float64, sourceOfSub []topology.NodeID) (*Space, error) {
	if len(subRates) != len(sourceOfSub) {
		return nil, fmt.Errorf("querygraph: %d rates but %d substream sources",
			len(subRates), len(sourceOfSub))
	}
	s := &Space{
		SubRates:     subRates,
		SourceOfSub:  sourceOfSub,
		subsByNode:   make(map[topology.NodeID]*bitvec.Vector),
		srcIdxOfSub:  make([]int32, len(sourceOfSub)),
		srcIdxOfNode: make(map[topology.NodeID]int32),
	}
	for i, n := range sourceOfSub {
		si, ok := s.srcIdxOfNode[n]
		if !ok {
			si = int32(len(s.srcNodes))
			s.srcIdxOfNode[n] = si
			s.srcNodes = append(s.srcNodes, n)
			v := bitvec.New(len(sourceOfSub))
			s.subsByNode[n] = v
			s.subsBySrc = append(s.subsBySrc, v)
		}
		s.srcIdxOfSub[i] = si
		s.subsByNode[n].Set(i)
	}
	return s, nil
}

// Graph is a query graph plus the stream statistics needed to (re)estimate
// its edge weights.
type Graph struct {
	*Space

	Vertices []*Vertex
	// adj holds one sorted-by-To adjacency run per vertex. After
	// ComputeEdges all runs alias one shared backing array (capped with
	// three-index slices so in-place patches never bleed into a sibling
	// run).
	adj [][]Adj

	idx *invIndex // lazily built inverted indexes; see ensureIndex
	sc  *scratch  // reusable per-graph scratch for index traversals

	// free lists the slots of removed vertices. AddVertex reuses them
	// (newest first) before growing the arrays, so sustained
	// insert/remove churn keeps Vertices, adj and the callers' parallel
	// assignment arrays bounded by the peak population instead of the
	// cumulative insertion count.
	free []int
}

// invIndex is the inverted-index bundle enabling candidate-pair enumeration.
// It is valid while n == len(g.Vertices); any vertex addition invalidates it
// and the next ensureIndex rebuilds. Vertex REMOVAL (RemoveVertex,
// ShrinkVertex) keeps the count and repairs the postings in place instead —
// each CSR segment carries its live length, so deleting an ID is a shift
// within the segment, not a rebuild. It stores vertex IDs only — edge
// weights always read rates live — so in-place SubRates perturbation never
// stales it.
type invIndex struct {
	n int

	// interested: CSR substream -> IDs (ascending) of vertices whose
	// Interest has the bit. interestedLen[s] is the live entry count of
	// segment s (== the segment span right after a build; removals
	// shrink it in place).
	interestedOff []int32
	interestedIDs []int32
	interestedLen []int32
	// bySrc: CSR compact-source -> IDs of vertices interested in at least
	// one substream of that source, with live lengths like interested.
	bySrcOff []int32
	bySrcIDs []int32
	bySrcLen []int32
	// vertsOfSrc: compact-source -> IDs of vertices whose Nodes contain
	// the source node (the source-node index).
	vertsOfSrc [][]int32
	// vertsOfNode: node -> IDs of vertices whose Nodes contain it; used
	// to resolve result edges toward proxies (the proxy-node index, from
	// the query side).
	vertsOfNode map[topology.NodeID][]int32
	// resultTo: node -> IDs of vertices whose ResultRates target it (the
	// proxy-node index, from the node side).
	resultTo map[topology.NodeID][]int32
}

// scratch bundles epoch-stamped work arrays so hot paths run allocation-
// free. A Graph is not safe for concurrent use.
type scratch struct {
	epoch    int32
	stamp    []int32   // per-vertex: candidate already collected this epoch
	accMark  []int32   // per-vertex: acc[v] valid this epoch
	acc      []float64 // per-vertex overlap-weight accumulator
	srcStamp []int32   // per-source: source already expanded this epoch
	cands    []int
}

func (g *Graph) scratchFor(nVerts int) *scratch {
	if g.sc == nil {
		g.sc = &scratch{}
	}
	sc := g.sc
	if len(sc.stamp) < nVerts {
		sc.stamp = make([]int32, nVerts)
		sc.accMark = make([]int32, nVerts)
		sc.acc = make([]float64, nVerts)
	}
	if len(sc.srcStamp) < len(g.srcNodes) {
		sc.srcStamp = make([]int32, len(g.srcNodes))
	}
	sc.bump()
	return sc
}

// bump starts a new stamp epoch. Stamps only ever hold positive epochs, so
// when the int32 counter overflows (to negative, not zero) the arrays are
// cleared and the epoch restarts at 1 — old stamps can never collide.
func (sc *scratch) bump() {
	sc.epoch++
	if sc.epoch <= 0 {
		for i := range sc.stamp {
			sc.stamp[i], sc.accMark[i] = 0, 0
		}
		for i := range sc.srcStamp {
			sc.srcStamp[i] = 0
		}
		sc.epoch = 1
	}
}

// New returns an empty query graph over the given substream statistics.
// SubRates and SourceOfSub must have equal length.
func New(subRates []float64, sourceOfSub []topology.NodeID) (*Graph, error) {
	s, err := NewSpace(subRates, sourceOfSub)
	if err != nil {
		return nil, err
	}
	return NewOnSpace(s), nil
}

// NewOnSpace returns an empty query graph sharing an existing substream
// space, skipping the O(#substreams) space construction. The coordinator
// hierarchy uses it to amortize one Space across every per-coordinator
// graph of a distribution pass.
func NewOnSpace(s *Space) *Graph {
	return &Graph{Space: s}
}

// AddNVertex adds a pure n-vertex for a network node, pinned to network-
// graph vertex clu. assignable marks whether the target is a real child
// cluster (able to host queries) rather than a zero-capability anchor.
func (g *Graph) AddNVertex(node topology.NodeID, clu int, assignable bool) *Vertex {
	v := &Vertex{
		ID:         len(g.Vertices),
		Nodes:      []topology.NodeID{node},
		Clu:        clu,
		Assignable: assignable,
	}
	g.Vertices = append(g.Vertices, v)
	g.adj = append(g.adj, nil)
	return v
}

// AddQVertex adds a q-vertex for a single query.
func (g *Graph) AddQVertex(q QueryInfo) *Vertex {
	v := &Vertex{
		ID:          len(g.Vertices),
		Weight:      q.Load,
		Clu:         ClusterUnknown,
		Queries:     []QueryInfo{q},
		Interest:    q.Interest.Clone(),
		ResultRates: map[topology.NodeID]float64{q.Proxy: q.ResultRate},
		StateSize:   q.StateSize,
	}
	g.Vertices = append(g.Vertices, v)
	g.adj = append(g.adj, nil)
	return v
}

// AddVertex adds a prebuilt (e.g. coarsened, received-from-child) vertex,
// reassigning its ID. A slot freed by RemoveVertex is reused before the
// arrays grow; either way the inverted indexes are rebuilt by the next
// ensureIndex (the appended/reused content is not in the postings).
func (g *Graph) AddVertex(v *Vertex) *Vertex {
	if n := len(g.free); n > 0 {
		id := g.free[n-1]
		g.free = g.free[:n-1]
		v.ID = id
		g.Vertices[id] = v
		g.adj[id] = g.adj[id][:0]
		// Slot reuse keeps len(Vertices) unchanged, so the count-based
		// staleness check would wrongly keep the repaired index alive:
		// invalidate it explicitly.
		g.idx = nil
		return v
	}
	v.ID = len(g.Vertices)
	g.Vertices = append(g.Vertices, v)
	g.adj = append(g.adj, nil)
	return v
}

// EdgeWeight computes the model edge weight between two vertices from their
// content:
//
//	overlap(u,v)  — rate of substreams both are interested in (q–q sharing)
//	demand(u→v)   — rate u requests from sources among v's nodes
//	demand(v→u)   — symmetric
//	result(u→v)   — result rate u sends to proxies among v's nodes
//	result(v→u)   — symmetric
func (g *Graph) EdgeWeight(u, v *Vertex) float64 {
	var w float64
	if u.Interest != nil && v.Interest != nil {
		w += g.overlapRate(u, v)
	}
	w += g.demand(u, v) + g.demand(v, u)
	w += resultTo(u, v) + resultTo(v, u)
	return w
}

// overlapRate is OverlapWeightedSum with an adaptive strategy: when either
// interest is sparse, walk its cached indices and test the other side,
// which beats the full word scan for atomic queries. Every strategy visits
// the shared bits in the same ascending order, so the sums are identical
// bit-for-bit.
func (g *Graph) overlapRate(u, v *Vertex) float64 {
	su, sv := u.ensureScan(), v.ensureScan()
	lo, hi := su.lo, su.hi
	if sv.lo > lo {
		lo = sv.lo
	}
	if sv.hi < hi {
		hi = sv.hi
	}
	if lo >= hi {
		return 0
	}
	switch {
	case su.idx != nil && (sv.idx == nil || len(su.idx) <= len(sv.idx)):
		return sparseOverlap(su.idx, v.Interest, g.SubRates)
	case sv.idx != nil:
		return sparseOverlap(sv.idx, u.Interest, g.SubRates)
	default:
		return u.Interest.OverlapWeightedSumRange(v.Interest, g.SubRates, int(lo), int(hi))
	}
}

// sparseOverlap sums rates over the indices whose bit is set in o —
// ascending, matching OverlapWeightedSum's summation order exactly.
func sparseOverlap(idx []int32, o *bitvec.Vector, rates []float64) float64 {
	words := o.Words()
	var s float64
	for _, b := range idx {
		if wi := int(b) >> 6; wi < len(words) && words[wi]&(1<<(uint(b)&63)) != 0 {
			s += rates[b]
		}
	}
	return s
}

func (g *Graph) demand(q, n *Vertex) float64 {
	if q.Interest == nil || len(n.Nodes) == 0 {
		return 0
	}
	var w float64
	sq := q.ensureScan()
	for _, si := range g.nodeSrcs(n) {
		if si < 0 {
			continue
		}
		subs := g.subsBySrc[si]
		if sq.idx != nil {
			w += sparseOverlap(sq.idx, subs, g.SubRates)
		} else {
			w += q.Interest.OverlapWeightedSumRange(subs, g.SubRates, int(sq.lo), int(sq.hi))
		}
	}
	return w
}

func resultTo(q, n *Vertex) float64 {
	if len(q.ResultRates) == 0 || len(n.Nodes) == 0 {
		return 0
	}
	var w float64
	for _, node := range n.Nodes {
		w += q.ResultRates[node]
	}
	return w
}

// ensureIndex (re)builds the inverted indexes when the vertex set changed
// since the last build.
func (g *Graph) ensureIndex() *invIndex {
	if g.idx != nil && g.idx.n == len(g.Vertices) {
		return g.idx
	}
	nSub := len(g.SubRates)
	nSrc := len(g.srcNodes)
	idx := &invIndex{
		n:             len(g.Vertices),
		interestedOff: make([]int32, nSub+1),
		bySrcOff:      make([]int32, nSrc+1),
		vertsOfSrc:    make([][]int32, nSrc),
		vertsOfNode:   make(map[topology.NodeID][]int32),
		resultTo:      make(map[topology.NodeID][]int32),
	}
	// Counting pass for the two CSR indexes. srcSeen de-duplicates a
	// vertex's substreams per source; it doubles as the fill-pass stamp.
	srcSeen := make([]int32, nSrc)
	for i := range srcSeen {
		srcSeen[i] = -1
	}
	countVertex := func(id int, v *Vertex) {
		if v.Interest == nil {
			return
		}
		for wi, w := range v.Interest.Words() {
			for w != 0 {
				s := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if s >= nSub {
					break
				}
				idx.interestedOff[s+1]++
				if si := g.srcIdxOfSub[s]; srcSeen[si] != int32(id) {
					srcSeen[si] = int32(id)
					idx.bySrcOff[si+1]++
				}
			}
		}
	}
	for id, v := range g.Vertices {
		if v == nil {
			continue
		}
		countVertex(id, v)
		for _, node := range v.Nodes {
			if si, ok := g.srcIdxOfNode[node]; ok {
				idx.vertsOfSrc[si] = append(idx.vertsOfSrc[si], int32(id))
			}
			idx.vertsOfNode[node] = append(idx.vertsOfNode[node], int32(id))
		}
		for node := range v.ResultRates {
			//lint:maporder one append per (node, id) pair: each per-node list still fills in ascending id order from the outer slice scan
			idx.resultTo[node] = append(idx.resultTo[node], int32(id))
		}
	}
	for s := 0; s < nSub; s++ {
		idx.interestedOff[s+1] += idx.interestedOff[s]
	}
	for s := 0; s < nSrc; s++ {
		idx.bySrcOff[s+1] += idx.bySrcOff[s]
	}
	idx.interestedIDs = make([]int32, idx.interestedOff[nSub])
	idx.bySrcIDs = make([]int32, idx.bySrcOff[nSrc])
	idx.interestedLen = make([]int32, nSub)
	for s := 0; s < nSub; s++ {
		idx.interestedLen[s] = idx.interestedOff[s+1] - idx.interestedOff[s]
	}
	idx.bySrcLen = make([]int32, nSrc)
	for s := 0; s < nSrc; s++ {
		idx.bySrcLen[s] = idx.bySrcOff[s+1] - idx.bySrcOff[s]
	}
	subCur := make([]int32, nSub)
	copy(subCur, idx.interestedOff[:nSub])
	srcCur := make([]int32, nSrc)
	copy(srcCur, idx.bySrcOff[:nSrc])
	for i := range srcSeen {
		srcSeen[i] = -1
	}
	// Fill pass in ascending vertex order, so every list is sorted.
	for id, v := range g.Vertices {
		if v == nil || v.Interest == nil {
			continue
		}
		for wi, w := range v.Interest.Words() {
			for w != 0 {
				s := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if s >= nSub {
					break
				}
				idx.interestedIDs[subCur[s]] = int32(id)
				subCur[s]++
				if si := g.srcIdxOfSub[s]; srcSeen[si] != int32(id) {
					srcSeen[si] = int32(id)
					idx.bySrcIDs[srcCur[si]] = int32(id)
					srcCur[si]++
				}
			}
		}
	}
	g.idx = idx
	return idx
}

func (idx *invIndex) interestedIn(s int) []int32 {
	off := idx.interestedOff[s]
	return idx.interestedIDs[off : off+idx.interestedLen[s]]
}

func (idx *invIndex) bySource(si int32) []int32 {
	off := idx.bySrcOff[si]
	return idx.bySrcIDs[off : off+idx.bySrcLen[si]]
}

// segDelete removes id from the sorted live segment ids[off:off+n],
// returning the new live length (n unchanged when id is absent).
func segDelete(ids []int32, off, n, id int32) int32 {
	seg := ids[off : off+n]
	lo, hi := 0, len(seg)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if seg[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(seg) || seg[lo] != id {
		return n
	}
	copy(seg[lo:], seg[lo+1:])
	return n - 1
}

// idSliceDelete removes id from a sorted id slice (the map-backed postings).
func idSliceDelete(ids []int32, id int32) []int32 {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// indexForget repairs the inverted indexes after vertex id lost the given
// content: interest bits, node roles and result-edge keys are passed
// explicitly so ShrinkVertex can forget only the delta. No-op when no index
// is built. Caller must have checked idx.n == len(g.Vertices).
func (g *Graph) indexForget(id int32, interestBits []int, dropSrcs []int32, nodes []topology.NodeID, resultNodes []topology.NodeID) {
	idx := g.idx
	for _, s := range interestBits {
		idx.interestedLen[s] = segDelete(idx.interestedIDs, idx.interestedOff[s], idx.interestedLen[s], id)
	}
	for _, si := range dropSrcs {
		idx.bySrcLen[si] = segDelete(idx.bySrcIDs, idx.bySrcOff[si], idx.bySrcLen[si], id)
	}
	for _, node := range nodes {
		if si, ok := g.srcIdxOfNode[node]; ok {
			idx.vertsOfSrc[si] = idSliceDelete(idx.vertsOfSrc[si], id)
		}
		if rest := idSliceDelete(idx.vertsOfNode[node], id); len(rest) == 0 {
			delete(idx.vertsOfNode, node)
		} else {
			idx.vertsOfNode[node] = rest
		}
	}
	for _, node := range resultNodes {
		if rest := idSliceDelete(idx.resultTo[node], id); len(rest) == 0 {
			delete(idx.resultTo, node)
		} else {
			idx.resultTo[node] = rest
		}
	}
}

// interestBitsOf lists the set bits of a vertex interest below the substream
// space bound, and the distinct compact sources they originate from.
func (g *Graph) interestBitsOf(interest *bitvec.Vector) (set []int, srcs []int32) {
	if interest == nil {
		return nil, nil
	}
	seen := make(map[int32]bool)
	for wi, w := range interest.Words() {
		for w != 0 {
			s := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if s >= len(g.SubRates) {
				break
			}
			set = append(set, s)
			if si := g.srcIdxOfSub[s]; !seen[si] {
				seen[si] = true
				srcs = append(srcs, si)
			}
		}
	}
	return set, srcs
}

// srcRates is the per-vertex cached weighted interest rate, broken down by
// origin source: rate[i] is the total rate of vertex i's interest
// substreams originating at src[i]. Each value equals
// Interest.OverlapWeightedSum(subsByNode[source], SubRates) bit-for-bit, so
// indexed demand-edge assembly reproduces the naive weights exactly while
// computing every per-source rate of a vertex in one pass over its bits.
type srcRates struct {
	off  []int32
	src  []int32
	rate []float64
}

func (g *Graph) buildSrcRates() srcRates {
	n := len(g.Vertices)
	r := srcRates{off: make([]int32, n+1)}
	nSrc := len(g.srcNodes)
	seen := make([]int32, nSrc) // per-source slot in the current vertex run
	for i := range seen {
		seen[i] = -1
	}
	for id, v := range g.Vertices {
		r.off[id] = int32(len(r.src))
		if v == nil || v.Interest == nil {
			continue
		}
		base := len(r.src)
		for wi, w := range v.Interest.Words() {
			for w != 0 {
				s := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if s >= len(g.SubRates) {
					break
				}
				si := g.srcIdxOfSub[s]
				if seen[si] < int32(base) {
					seen[si] = int32(len(r.src))
					r.src = append(r.src, si)
					r.rate = append(r.rate, 0)
				}
				r.rate[seen[si]] += g.SubRates[s]
			}
		}
	}
	r.off[n] = int32(len(r.src))
	return r
}

// demandOf sums vertex q's cached per-source rates over n's nodes, in node
// order — exactly demand(q, n).
func (g *Graph) demandOf(r *srcRates, q int, n *Vertex) float64 {
	lo, hi := r.off[q], r.off[q+1]
	if lo == hi || len(n.Nodes) == 0 {
		return 0
	}
	var w float64
	for _, node := range n.Nodes {
		si, ok := g.srcIdxOfNode[node]
		if !ok {
			continue
		}
		for k := lo; k < hi; k++ {
			if r.src[k] == si {
				w += r.rate[k]
				break
			}
		}
	}
	return w
}

// ComputeEdges materializes the full edge set from vertex content,
// replacing any existing edges. The inverted indexes restrict weight
// evaluation to candidate pairs that share a substream, a source node, or a
// proxy node; the result is identical (bit-for-bit) to ComputeEdgesNaive.
func (g *Graph) ComputeEdges() {
	g.idx = nil // vertex content may have changed wholesale; rebuild
	idx := g.ensureIndex()
	V := len(g.Vertices)
	sc := g.scratchFor(V)
	rates := g.buildSrcRates()

	type edgeRec struct {
		u, v int
		w    float64
	}
	var edges []edgeRec
	deg := make([]int32, V+1)

	addCand := func(sc *scratch, u int, ids []int32, cands []int) []int {
		for _, vv := range ids {
			v := int(vv)
			if v <= u {
				continue
			}
			if sc.stamp[v] != sc.epoch {
				sc.stamp[v] = sc.epoch
				cands = append(cands, v)
			}
		}
		return cands
	}

	for u := 0; u < V; u++ {
		uv := g.Vertices[u]
		if uv == nil {
			continue
		}
		sc.bump()
		cands := sc.cands[:0]

		// Overlap accumulation: for every set bit s (ascending), credit
		// rate_s to each later vertex sharing s. Per candidate this sums
		// the shared rates in ascending substream order — exactly
		// OverlapWeightedSum. The same bit walk expands the source-node
		// index once per distinct source for demand candidates.
		if uv.Interest != nil {
			for wi, w := range uv.Interest.Words() {
				for w != 0 {
					s := wi<<6 + bits.TrailingZeros64(w)
					w &= w - 1
					if s >= len(g.SubRates) {
						break
					}
					r := g.SubRates[s]
					for _, vv := range idx.interestedIn(s) {
						v := int(vv)
						if v <= u {
							continue
						}
						if sc.accMark[v] != sc.epoch {
							sc.accMark[v] = sc.epoch
							sc.acc[v] = 0
							if sc.stamp[v] != sc.epoch {
								sc.stamp[v] = sc.epoch
								cands = append(cands, v)
							}
						}
						sc.acc[v] += r
					}
					if si := g.srcIdxOfSub[s]; sc.srcStamp[si] != sc.epoch {
						sc.srcStamp[si] = sc.epoch
						cands = addCand(sc, u, idx.vertsOfSrc[si], cands)
					}
				}
			}
		}
		// Result edges toward proxies this vertex reports to.
		for node := range uv.ResultRates {
			cands = addCand(sc, u, idx.vertsOfNode[node], cands)
		}
		// Node roles: vertices interested in substreams we originate, and
		// vertices sending results to nodes we represent.
		for _, node := range uv.Nodes {
			if si, ok := g.srcIdxOfNode[node]; ok {
				cands = addCand(sc, u, idx.bySource(si), cands)
			}
			cands = addCand(sc, u, idx.resultTo[node], cands)
		}

		// Ascending candidate order keeps every CSR run sorted as it is
		// filled, so no per-run sort pass is needed.
		sort.Ints(cands)
		for _, v := range cands {
			vv := g.Vertices[v]
			if vv == nil {
				continue
			}
			// Mirror EdgeWeight's term grouping exactly.
			var w float64
			if uv.Interest != nil && vv.Interest != nil && sc.accMark[v] == sc.epoch {
				w += sc.acc[v]
			}
			w += g.demandOf(&rates, u, vv) + g.demandOf(&rates, v, uv)
			w += resultTo(uv, vv) + resultTo(vv, uv)
			if w > 0 {
				edges = append(edges, edgeRec{u, v, w})
				deg[u+1]++
				deg[v+1]++
			}
		}
		sc.cands = cands[:0]
	}

	// Lay the runs out over one shared backing array (CSR).
	for i := 0; i < V; i++ {
		deg[i+1] += deg[i]
	}
	pool := make([]Adj, deg[V])
	cur := make([]int32, V)
	copy(cur, deg[:V])
	for _, e := range edges {
		pool[cur[e.u]] = Adj{To: e.v, W: e.w}
		cur[e.u]++
		pool[cur[e.v]] = Adj{To: e.u, W: e.w}
		cur[e.v]++
	}
	if len(g.adj) < V {
		g.adj = make([][]Adj, V)
	}
	g.adj = g.adj[:V]
	// Runs are sorted by construction: entries below i arrive in ascending
	// u order, entries above i in ascending candidate order.
	for i := 0; i < V; i++ {
		g.adj[i] = pool[deg[i]:deg[i+1]:deg[i+1]]
	}
}

// ComputeEdgesNaive is the literal O(|V|²) edge construction of the model —
// every vertex pair gets one EdgeWeight evaluation. It is retained as the
// reference implementation that the indexed ComputeEdges must match
// bit-for-bit (see the package equivalence test); production paths use
// ComputeEdges.
func (g *Graph) ComputeEdgesNaive() {
	for i := range g.adj {
		g.adj[i] = nil
	}
	for len(g.adj) < len(g.Vertices) {
		g.adj = append(g.adj, nil)
	}
	for i := 0; i < len(g.Vertices); i++ {
		for j := i + 1; j < len(g.Vertices); j++ {
			if g.Vertices[i] == nil || g.Vertices[j] == nil {
				continue
			}
			w := g.EdgeWeight(g.Vertices[i], g.Vertices[j])
			if w > 0 {
				g.setEdge(i, j, w)
			}
		}
	}
}

// setEdge installs (or updates) the undirected edge i–j, keeping both runs
// sorted. Appends reuse a run's own span when possible and reallocate
// privately when it is full, so shared-backing runs never overlap.
func (g *Graph) setEdge(i, j int, w float64) {
	g.adj[i] = insertAdj(g.adj[i], j, w)
	g.adj[j] = insertAdj(g.adj[j], i, w)
}

// searchAdj returns the insertion point of `to` in a sorted run — a
// hand-rolled sort.Search that avoids the per-probe closure call.
func searchAdj(run []Adj, to int) int {
	lo, hi := 0, len(run)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if run[mid].To < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func insertAdj(run []Adj, to int, w float64) []Adj {
	n := len(run)
	// Fast path: strictly ascending insertion (bulk builds).
	if n == 0 || run[n-1].To < to {
		return append(run, Adj{To: to, W: w})
	}
	k := searchAdj(run, to)
	if k < n && run[k].To == to {
		run[k].W = w
		return run
	}
	run = append(run, Adj{})
	copy(run[k+1:], run[k:])
	run[k] = Adj{To: to, W: w}
	return run
}

// removeAdj deletes the entry for `to` from run, in place.
func removeAdj(run []Adj, to int) []Adj {
	k := searchAdj(run, to)
	if k == len(run) || run[k].To != to {
		return run
	}
	copy(run[k:], run[k+1:])
	return run[:len(run)-1]
}

func (g *Graph) deleteVertexEdges(i int) {
	for _, e := range g.adj[i] {
		g.adj[e.To] = removeAdj(g.adj[e.To], i)
	}
	g.adj[i] = g.adj[i][:0]
}

// Neighbors returns vertex i's adjacency run, sorted by neighbor ID.
// Callers must not modify it, and must not retain it across graph
// mutations.
func (g *Graph) Neighbors(i int) []Adj { return g.adj[i] }

// Weight returns the weight of edge i–j, if present.
func (g *Graph) Weight(i, j int) (float64, bool) {
	run := g.adj[i]
	k := searchAdj(run, j)
	if k < len(run) && run[k].To == j {
		return run[k].W, true
	}
	return 0, false
}

// Degree returns the number of edges incident to vertex i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// ConnectVertex computes and installs the edges between vertex v (already
// added to the graph) and every other vertex — the incremental step of
// online query insertion (§3.6). The inverted indexes restrict evaluation
// to candidates sharing a substream, source, or proxy with v.
func (g *Graph) ConnectVertex(v *Vertex) {
	idx := g.ensureIndex()
	sc := g.scratchFor(len(g.Vertices))
	sc.stamp[v.ID] = sc.epoch // exclude self
	cands := sc.cands[:0]
	add := func(ids []int32) {
		for _, jj := range ids {
			j := int(jj)
			if sc.stamp[j] != sc.epoch {
				sc.stamp[j] = sc.epoch
				cands = append(cands, j)
			}
		}
	}
	if v.Interest != nil {
		for wi, w := range v.Interest.Words() {
			for w != 0 {
				s := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if s >= len(g.SubRates) {
					break
				}
				add(idx.interestedIn(s))
				if si := g.srcIdxOfSub[s]; sc.srcStamp[si] != sc.epoch {
					sc.srcStamp[si] = sc.epoch
					add(idx.vertsOfSrc[si])
				}
			}
		}
	}
	for node := range v.ResultRates {
		add(idx.vertsOfNode[node])
	}
	for _, node := range v.Nodes {
		if si, ok := g.srcIdxOfNode[node]; ok {
			add(idx.bySource(si))
		}
		add(idx.resultTo[node])
	}
	sort.Ints(cands)
	for _, j := range cands {
		o := g.Vertices[j]
		if o == nil {
			continue
		}
		if w := g.EdgeWeight(v, o); w > 0 {
			g.setEdge(v.ID, j, w)
		}
	}
	sc.cands = cands[:0]
}

// ForEachOverlap visits every vertex whose Interest shares at least one
// substream with iv, passing the shared weighted rate (the overlap-edge
// weight a query with interest iv would have toward that vertex). It is the
// online-routing primitive: cost is proportional to the index postings
// touched, not to |V|.
func (g *Graph) ForEachOverlap(iv *bitvec.Vector, fn func(vertex int, w float64)) {
	if iv == nil {
		return
	}
	idx := g.ensureIndex()
	sc := g.scratchFor(len(g.Vertices))
	touched := sc.cands[:0]
	for wi, w := range iv.Words() {
		for w != 0 {
			s := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if s >= len(g.SubRates) {
				break
			}
			r := g.SubRates[s]
			for _, vv := range idx.interestedIn(s) {
				v := int(vv)
				if sc.accMark[v] != sc.epoch {
					sc.accMark[v] = sc.epoch
					sc.acc[v] = 0
					touched = append(touched, v)
				}
				sc.acc[v] += r
			}
		}
	}
	for _, v := range touched {
		fn(v, sc.acc[v])
	}
	sc.cands = touched[:0]
}

// RemoveVertexEdges detaches vertex i from all neighbors (used when a
// vertex migrates out of a coordinator's graph).
func (g *Graph) RemoveVertexEdges(i int) { g.deleteVertexEdges(i) }

// RemoveVertex deletes vertex id from the graph — the teardown primitive of
// online query removal. Its edges are detached, the slot is niled (other
// vertices keep their IDs, so parallel assignment arrays stay aligned), and
// the inverted indexes are repaired IN PLACE: the ID is deleted from every
// posting list its content appeared in, so index consumers (ForEachOverlap,
// ConnectVertex) never surface the dead slot and no vertex-count-triggered
// rebuild is paid. Returns the removed vertex (nil if the slot was already
// empty).
func (g *Graph) RemoveVertex(id int) *Vertex {
	if id < 0 || id >= len(g.Vertices) {
		return nil
	}
	v := g.Vertices[id]
	if v == nil {
		return nil
	}
	g.deleteVertexEdges(id)
	if g.idx != nil {
		if g.idx.n != len(g.Vertices) {
			g.idx = nil // stale anyway: let the next ensureIndex rebuild
		} else {
			bits, srcs := g.interestBitsOf(v.Interest)
			resultNodes := make([]topology.NodeID, 0, len(v.ResultRates))
			for node := range v.ResultRates {
				//lint:maporder indexForget removes id from each node's list independently; removals on distinct keys commute
				resultNodes = append(resultNodes, node)
			}
			g.indexForget(int32(id), bits, srcs, v.Nodes, resultNodes)
		}
	}
	g.Vertices[id] = nil
	g.free = append(g.free, id)
	return v
}

// ShrinkVertex replaces vertex id with nv — a vertex with strictly reduced
// content (queries removed from a merged vertex): nv's interest bits,
// result-rate keys and node list must be subsets of the old vertex's (node
// lists equal, in practice, since query-bearing vertices carry no nodes
// under the hierarchy's NoQN coarsening). The inverted indexes are repaired
// in place for exactly the content delta, and the vertex's incident edges
// are re-estimated from the new content against the index's candidates —
// the removal counterpart of ConnectVertex. nv is installed with ID id.
func (g *Graph) ShrinkVertex(id int, nv *Vertex) {
	old := g.Vertices[id]
	g.deleteVertexEdges(id)
	if g.idx != nil && old != nil {
		if g.idx.n != len(g.Vertices) {
			g.idx = nil
		} else {
			// Forget only the delta: bits and result keys the new
			// content no longer has, and sources no remaining bit
			// originates from.
			oldBits, oldSrcs := g.interestBitsOf(old.Interest)
			_, newSrcs := g.interestBitsOf(nv.Interest)
			var gone []int
			for _, s := range oldBits {
				if nv.Interest == nil || !nv.Interest.Test(s) {
					gone = append(gone, s)
				}
			}
			keep := make(map[int32]bool, len(newSrcs))
			for _, si := range newSrcs {
				keep[si] = true
			}
			var dropSrcs []int32
			for _, si := range oldSrcs {
				if !keep[si] {
					dropSrcs = append(dropSrcs, si)
				}
			}
			var dropResult []topology.NodeID
			for node := range old.ResultRates {
				if _, still := nv.ResultRates[node]; !still {
					//lint:maporder indexForget removes id from each node's list independently; removals on distinct keys commute
					dropResult = append(dropResult, node)
				}
			}
			g.indexForget(int32(id), gone, dropSrcs, nil, dropResult)
		}
	}
	nv.ID = id
	g.Vertices[id] = nv
	g.ConnectVertex(nv)
}

// DropOverlapEdges removes every query-query edge, leaving only source and
// result edges — the ablation of the paper's communication-sharing model
// component (Table 2's scheme-2-versus-scheme-3 distinction).
func (g *Graph) DropOverlapEdges() {
	// A q-q edge has two non-N endpoints, so filtering every non-N run of
	// its non-N entries removes both directions.
	for i, u := range g.Vertices {
		if u == nil || u.IsN() {
			continue
		}
		run := g.adj[i]
		kept := run[:0]
		for _, e := range run {
			if v := g.Vertices[e.To]; v != nil && v.IsN() {
				kept = append(kept, e)
			}
		}
		g.adj[i] = kept
	}
}

// SourceNodes returns the distinct origin nodes of the substreams set in
// the interest vector.
func (g *Graph) SourceNodes(interest *bitvec.Vector) []topology.NodeID {
	if interest == nil {
		return nil
	}
	seen := make([]bool, len(g.srcNodes))
	var out []topology.NodeID
	for wi, w := range interest.Words() {
		for w != 0 {
			s := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if s >= len(g.SourceOfSub) {
				break
			}
			if si := g.srcIdxOfSub[s]; !seen[si] {
				seen[si] = true
				out = append(out, g.srcNodes[si])
			}
		}
	}
	return out
}

// AdjacencyLists returns the dense adjacency runs, sorted by neighbor ID,
// suitable for the mapping algorithms. The returned slices alias the
// graph's own representation: callers must treat them as read-only and must
// not retain them across graph mutations.
func (g *Graph) AdjacencyLists() [][]Adj { return g.adj }

// EdgeCount returns the number of (undirected) edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, run := range g.adj {
		n += len(run)
	}
	return n / 2
}

// TotalQueryLoad returns Σ Wq over q-vertices.
func (g *Graph) TotalQueryLoad() float64 {
	var s float64
	for _, v := range g.Vertices {
		if v != nil {
			s += v.Weight
		}
	}
	return s
}

// CoarsenOptions tunes Algorithm 1.
type CoarsenOptions struct {
	// VMax is the target vertex count.
	VMax int
	// Rng drives random vertex selection; nil seeds a fixed PCG.
	Rng *rand.Rand
	// NoQN forbids merging q-vertices into n-vertices. The coordinator
	// hierarchy rebuilds n-vertices locally at every level and only
	// ships query-bearing vertices, so it keeps the two kinds separate.
	NoQN bool
	// CountQOnly makes VMax count only query-bearing vertices, leaving
	// pure n-vertices outside the budget.
	CountQOnly bool
	// CanMerge, when non-nil, adds an extra admissibility constraint on
	// candidate pairs. The adaptation path uses it to only merge
	// vertices currently placed on the same child, so that coarse-level
	// warm starts introduce no spurious migrations.
	CanMerge func(u, v *Vertex) bool
}

func (o CoarsenOptions) withDefaults() CoarsenOptions {
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewPCG(13, 1313))
	}
	if o.VMax <= 0 {
		o.VMax = 1
	}
	return o
}

// CoarsenResult is the outcome of one Coarsen call.
type CoarsenResult struct {
	Graph *Graph
	// FineToCoarse maps fine vertex ID -> coarse vertex ID.
	FineToCoarse []int
	// CoarseToFine maps coarse vertex ID -> fine vertex IDs.
	CoarseToFine [][]int
}

// collapse merges u and v (Algorithm 1 lines 8–14) into a fresh vertex.
func collapse(u, v *Vertex) *Vertex {
	w := &Vertex{
		Weight:    u.Weight + v.Weight,
		StateSize: u.StateSize + v.StateSize,
		Clu:       ClusterUnknown,
		Tag:       u.Tag,
	}
	w.Nodes = append(append([]topology.NodeID(nil), u.Nodes...), v.Nodes...)
	w.Queries = append(append([]QueryInfo(nil), u.Queries...), v.Queries...)
	switch {
	case u.Interest != nil && v.Interest != nil:
		w.Interest = u.Interest.Clone()
		_ = w.Interest.Or(v.Interest) // lengths equal within one graph
	case u.Interest != nil:
		w.Interest = u.Interest.Clone()
	case v.Interest != nil:
		w.Interest = v.Interest.Clone()
	}
	if len(u.ResultRates)+len(v.ResultRates) > 0 {
		w.ResultRates = make(map[topology.NodeID]float64, len(u.ResultRates)+len(v.ResultRates))
		for n, r := range u.ResultRates {
			//lint:maporder map keys are unique, so each w entry is written once per source map — u's value then v's; no order-dependent accumulation
			w.ResultRates[n] += r
		}
		for n, r := range v.ResultRates {
			//lint:maporder map keys are unique, so each w entry is written once per source map — u's value then v's; no order-dependent accumulation
			w.ResultRates[n] += r
		}
	}
	// w.clu = is_n(u) ? u.clu : v.clu (Algorithm 1 line 14).
	if u.IsN() {
		w.Clu = u.Clu
		w.Assignable = u.Assignable
	} else if v.IsN() {
		w.Clu = v.Clu
		w.Assignable = v.Assignable
	}
	if w.Tag == "" {
		w.Tag = v.Tag
	}
	return w
}

// Coarsen runs Algorithm 1: repeatedly collapse heavy-edge-matched vertex
// pairs until at most VMax vertices remain. N-vertices from different
// clusters (or with unknown cluster) are never merged, because they must map
// to different network-graph vertices. The receiver is not modified.
func (g *Graph) Coarsen(opts CoarsenOptions) *CoarsenResult {
	opts = opts.withDefaults()
	rng := opts.Rng
	cur := g.cloneShallow()
	fineToCur := make([]int, len(g.Vertices))
	for i := range fineToCur {
		fineToCur[i] = i
	}
	// count tallies live (non-merged) vertices, restricted to query-
	// bearing ones in q-only mode. Merged-away slots are nil.
	count := func(gr *Graph) int {
		n := 0
		for _, v := range gr.Vertices {
			if v == nil {
				continue
			}
			if !opts.CountQOnly || len(v.Queries) > 0 {
				n++
			}
		}
		return n
	}

	for count(cur) > opts.VMax {
		matched := make([]bool, len(cur.Vertices))
		order := rng.Perm(len(cur.Vertices))
		merges := 0
		live := count(cur)
		// redirect[old] = merged-into index within cur's ID space.
		redirect := make(map[int]int)
		// mergedFrom[ui] = the slot merged into ui this round. Edges of
		// merged vertices are NOT re-estimated here: a merged vertex is
		// matched, so nothing reads its edges for the rest of the round —
		// re-estimation (Algorithm 1 line 11) is deferred to the
		// round-end compact, which computes each merged edge exactly
		// once. Rows therefore stay untouched all round; stale entries
		// toward merged slots are skipped by the matched/nil checks.
		mergedFrom := make(map[int]int)

		for _, ui := range order {
			if live <= opts.VMax {
				break
			}
			if matched[ui] || cur.Vertices[ui] == nil {
				continue
			}
			u := cur.Vertices[ui]
			// A ← adj(u) − matched(adj(u)), with the n-vertex
			// cluster restriction of Algorithm 1 line 6.
			best, bestW := -1, 0.0
			for _, e := range cur.adj[ui] {
				vi, w := e.To, e.W
				if matched[vi] || cur.Vertices[vi] == nil {
					continue
				}
				v := cur.Vertices[vi]
				if u.IsN() && v.IsN() &&
					(u.Clu != v.Clu || v.Clu == ClusterUnknown) {
					continue
				}
				// A query must not be absorbed into an n-vertex
				// pinned to an unassignable anchor (or with an
				// unknown pin): it would be forced onto a node
				// that cannot process it.
				if u.IsN() != v.IsN() {
					if opts.NoQN {
						continue
					}
					n := u
					if v.IsN() {
						n = v
					}
					if !n.Assignable || n.Clu == ClusterUnknown {
						continue
					}
				}
				if opts.CanMerge != nil && !opts.CanMerge(u, v) {
					continue
				}
				if w > bestW || (w == bestW && best >= 0 && vi < best) {
					best, bestW = vi, w
				}
			}
			if best < 0 {
				matched[ui] = true
				continue
			}
			v := cur.Vertices[best]
			merged := collapse(u, v)
			merged.ID = ui
			cur.Vertices[ui] = merged
			cur.Vertices[best] = nil
			matched[ui] = true
			redirect[best] = ui
			mergedFrom[ui] = best
			// A merge reduces the counted vertex set only when both
			// halves were counted (both query-bearing in q-only
			// mode).
			if !opts.CountQOnly || (len(u.Queries) > 0 && len(v.Queries) > 0) {
				merges++
				live--
			}
		}
		if merges == 0 {
			break // nothing mergeable (all blocked by constraints)
		}
		// Compact: drop nil slots, rebuild IDs, re-estimate merged edges.
		cur, fineToCur = compact(cur, fineToCur, redirect, mergedFrom)
	}

	res := &CoarsenResult{
		Graph:        cur,
		FineToCoarse: fineToCur,
		CoarseToFine: make([][]int, len(cur.Vertices)),
	}
	for fine, coarse := range fineToCur {
		res.CoarseToFine[coarse] = append(res.CoarseToFine[coarse], fine)
	}
	return res
}

// mergeNeighborIDs returns the sorted union of the neighbor IDs of two
// sorted adjacency runs.
func mergeNeighborIDs(a, b []Adj) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].To < b[j].To:
			out = append(out, a[i].To)
			i++
		case a[i].To > b[j].To:
			out = append(out, b[j].To)
			j++
		default:
			out = append(out, a[i].To)
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		out = append(out, a[i].To)
	}
	for ; j < len(b); j++ {
		out = append(out, b[j].To)
	}
	return out
}

// cloneShallow copies graph structure (vertices are shared pointers for
// unmerged vertices; merged ones are fresh). Adjacency runs are shared with
// the receiver: coarsening rounds never patch rows in place — merged-vertex
// edges are rebuilt by compact into a fresh graph.
func (g *Graph) cloneShallow() *Graph {
	c := &Graph{
		Space:    g.Space,
		Vertices: make([]*Vertex, len(g.Vertices)),
		adj:      make([][]Adj, len(g.Vertices)),
	}
	copy(c.Vertices, g.Vertices)
	copy(c.adj, g.adj)
	return c
}

// compact builds the next-round graph: nil slots dropped, IDs renumbered,
// edges among untouched vertices copied verbatim, and every edge incident
// to a vertex merged this round re-estimated from content (Algorithm 1
// line 11) — exactly once per edge, with the merged-merged direction fixed
// by slot order (EdgeWeight is symmetric bit-for-bit).
func compact(cur *Graph, fineToCur []int, redirect map[int]int, mergedFrom map[int]int) (*Graph, []int) {
	n := len(cur.Vertices)
	// Flatten the maps into slot-indexed arrays: the copy loop below does
	// per-edge lookups, where map hashing dominates.
	target := make([]int32, n) // slot -> round-end slot (redirect resolved)
	newID := make([]int32, n)  // slot -> compacted ID (-1 for dropped)
	partner := make([]int32, n)
	for i := range target {
		target[i] = int32(i)
		newID[i] = -1
		partner[i] = -1
	}
	for from, to := range redirect {
		target[from] = int32(to)
	}
	for i := range target {
		for target[i] != target[target[i]] {
			target[i] = target[target[i]]
		}
	}
	for ui, best := range mergedFrom {
		partner[ui] = int32(best)
	}

	out := &Graph{Space: cur.Space}
	for i, v := range cur.Vertices {
		if v == nil {
			continue
		}
		newID[i] = int32(len(out.Vertices))
		v.ID = len(out.Vertices)
		out.Vertices = append(out.Vertices, v)
		out.adj = append(out.adj, nil)
	}
	// Edges among untouched pairs carry over unchanged.
	for i, run := range cur.adj {
		if cur.Vertices[i] == nil || partner[i] >= 0 {
			continue
		}
		ni := newID[i]
		for _, e := range run {
			if cur.Vertices[e.To] == nil || partner[e.To] >= 0 {
				continue
			}
			nj := newID[e.To]
			if ni < nj {
				out.setEdge(int(ni), int(nj), e.W)
			}
		}
	}
	// Re-estimate the edges of this round's merged vertices (Algorithm 1
	// line 11, deferred from merge time). A merged vertex's candidate
	// neighbors are the union of its two constituents' round-start rows;
	// merging only adds content, so no edge can vanish or appear outside
	// that union.
	for ui := 0; ui < n; ui++ {
		best := partner[ui]
		if best < 0 {
			continue
		}
		m := cur.Vertices[ui]
		for _, j := range mergeNeighborIDs(cur.adj[ui], cur.adj[best]) {
			if j == ui || j == int(best) {
				continue
			}
			tj := int(target[j])
			o := cur.Vertices[tj]
			if o == nil || tj == ui {
				continue
			}
			// Both endpoints merged this round: compute the pair once,
			// from the lower slot (each side's union contains the
			// other by symmetry of adjacency).
			if partner[tj] >= 0 && tj < ui {
				continue
			}
			ni, nj := int(newID[ui]), int(newID[tj])
			// Both of m's constituents may neighbor constituents of
			// tj; the probe skips the second visit.
			if _, done := out.Weight(ni, nj); done {
				continue
			}
			if w := cur.EdgeWeight(m, o); w > 0 {
				out.setEdge(ni, nj, w)
			}
		}
	}
	next := make([]int, len(fineToCur))
	for f, c := range fineToCur {
		next[f] = int(newID[target[c]])
	}
	return out, next
}
