// Package querygraph implements the query graph QG = {Vq, Eq, Wq} of the
// paper's graph-mapping model (§3.1.2) and the coarsening procedure of
// Algorithm 1.
//
// A query graph has two vertex kinds: q-vertices representing (groups of)
// continuous queries, weighted by estimated CPU load, and n-vertices
// representing network nodes (data sources and user proxies), weighted zero.
// Edges carry estimated data rates: source edges (query pulls substreams
// from a source), result edges (query pushes its result stream to a proxy),
// and overlap edges between queries with shared data interest — the model
// component that makes the mapping aware of Pub/Sub communication sharing.
//
// Every edge weight is derivable from vertex content (interest bit vectors,
// per-substream rates, result-rate maps), which is what lets coarsening
// re-estimate edges exactly and lets parents compute cross-subtree overlap
// edges between coarse vertices submitted by different children.
package querygraph

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/topology"
)

// ClusterUnknown marks an n-vertex not covered by any child cluster of the
// current coordinator.
const ClusterUnknown = -1

// QueryInfo is the leaf-granularity description of one continuous query as
// the distribution machinery sees it.
type QueryInfo struct {
	Name       string
	Proxy      topology.NodeID
	Load       float64        // CPU time per unit time on a ci=1 processor
	Interest   *bitvec.Vector // substream interest
	ResultRate float64        // result stream rate, bytes/sec
	StateSize  float64        // operator state size, for migration cost
}

// Vertex is a (possibly coarsened) query-graph vertex. A pure q-vertex has
// Queries and no Nodes; a pure n-vertex has exactly one node and no queries;
// coarsening may produce mixed vertices.
type Vertex struct {
	ID     int
	Weight float64 // total query load; 0 for pure n-vertices

	// Nodes are the network nodes this vertex represents (n-vertex part).
	Nodes []topology.NodeID
	// Clu is the network-graph vertex index this vertex is pinned to by
	// the network constraint, or ClusterUnknown. For n-vertices covered
	// by a child cluster this is the child's index; for external nodes
	// (sources or proxies outside the coordinator's subtree) it is the
	// index of a zero-capability anchor vertex in the network graph.
	Clu int
	// Assignable records whether the pinned target can also host query
	// load (a real child cluster) as opposed to a pure anchor. Only
	// n-vertices pinned to assignable targets may absorb q-vertices
	// during coarsening; merging a query into a source anchor would pin
	// the query to a node with no processing capability.
	Assignable bool

	// Queries are the constituent queries (q-vertex part).
	Queries []QueryInfo
	// Interest is the union of constituent queries' interest vectors.
	Interest *bitvec.Vector
	// ResultRates aggregates result-stream rate per proxy node.
	ResultRates map[topology.NodeID]float64
	// StateSize is the total operator state of constituent queries.
	StateSize float64

	// Tag names the coordinator holding the finer-grained expansion of
	// this vertex (§3.4).
	Tag string
	// Key identifies the vertex within its tagging coordinator's
	// expansion registry. (Tag, Key) is globally unique and survives
	// cloning across graphs.
	Key string
	// Grain is the granularity level of the vertex: 0 for an atomic
	// single-query vertex, L for a vertex produced by the coarsening of
	// a level-L coordinator. A level-L coordinator works on vertices of
	// grain <= L-1.
	Grain int
	// Dirty marks vertices already picked for remapping in the current
	// adaptation round (Algorithm 3).
	Dirty bool
}

// Clone returns a copy of the vertex suitable for insertion into another
// graph. Immutable content (interest vector, query list, node list) is
// shared; the result-rate map is copied because coarsening mutates it.
func (v *Vertex) Clone() *Vertex {
	c := *v
	c.Nodes = append([]topology.NodeID(nil), v.Nodes...)
	if v.ResultRates != nil {
		c.ResultRates = make(map[topology.NodeID]float64, len(v.ResultRates))
		for n, r := range v.ResultRates {
			c.ResultRates[n] = r
		}
	}
	return &c
}

// IsN reports whether the vertex has an n-vertex component, which pins its
// mapping target.
func (v *Vertex) IsN() bool { return len(v.Nodes) > 0 }

// Adj is one adjacency entry.
type Adj struct {
	To int
	W  float64
}

// Graph is a query graph plus the stream statistics needed to (re)estimate
// its edge weights.
type Graph struct {
	// SubRates is the per-substream rate vector (bytes/sec).
	SubRates []float64
	// SourceOfSub maps each substream index to its origin node.
	SourceOfSub []topology.NodeID

	Vertices []*Vertex
	adj      []map[int]float64

	// subsByNode caches, per origin node, the substream indices it
	// originates, as a bit vector for fast demand computation.
	subsByNode map[topology.NodeID]*bitvec.Vector
}

// New returns an empty query graph over the given substream statistics.
// SubRates and SourceOfSub must have equal length.
func New(subRates []float64, sourceOfSub []topology.NodeID) (*Graph, error) {
	if len(subRates) != len(sourceOfSub) {
		return nil, fmt.Errorf("querygraph: %d rates but %d substream sources",
			len(subRates), len(sourceOfSub))
	}
	g := &Graph{
		SubRates:    subRates,
		SourceOfSub: sourceOfSub,
		subsByNode:  make(map[topology.NodeID]*bitvec.Vector),
	}
	for i, n := range sourceOfSub {
		v, ok := g.subsByNode[n]
		if !ok {
			v = bitvec.New(len(sourceOfSub))
			g.subsByNode[n] = v
		}
		v.Set(i)
	}
	return g, nil
}

// AddNVertex adds a pure n-vertex for a network node, pinned to network-
// graph vertex clu. assignable marks whether the target is a real child
// cluster (able to host queries) rather than a zero-capability anchor.
func (g *Graph) AddNVertex(node topology.NodeID, clu int, assignable bool) *Vertex {
	v := &Vertex{
		ID:         len(g.Vertices),
		Nodes:      []topology.NodeID{node},
		Clu:        clu,
		Assignable: assignable,
	}
	g.Vertices = append(g.Vertices, v)
	g.adj = append(g.adj, nil)
	return v
}

// AddQVertex adds a q-vertex for a single query.
func (g *Graph) AddQVertex(q QueryInfo) *Vertex {
	v := &Vertex{
		ID:          len(g.Vertices),
		Weight:      q.Load,
		Clu:         ClusterUnknown,
		Queries:     []QueryInfo{q},
		Interest:    q.Interest.Clone(),
		ResultRates: map[topology.NodeID]float64{q.Proxy: q.ResultRate},
		StateSize:   q.StateSize,
	}
	g.Vertices = append(g.Vertices, v)
	g.adj = append(g.adj, nil)
	return v
}

// AddVertex adds a prebuilt (e.g. coarsened, received-from-child) vertex,
// reassigning its ID.
func (g *Graph) AddVertex(v *Vertex) *Vertex {
	v.ID = len(g.Vertices)
	g.Vertices = append(g.Vertices, v)
	g.adj = append(g.adj, nil)
	return v
}

// EdgeWeight computes the model edge weight between two vertices from their
// content:
//
//	overlap(u,v)  — rate of substreams both are interested in (q–q sharing)
//	demand(u→v)   — rate u requests from sources among v's nodes
//	demand(v→u)   — symmetric
//	result(u→v)   — result rate u sends to proxies among v's nodes
//	result(v→u)   — symmetric
func (g *Graph) EdgeWeight(u, v *Vertex) float64 {
	var w float64
	if u.Interest != nil && v.Interest != nil {
		w += u.Interest.OverlapWeightedSum(v.Interest, g.SubRates)
	}
	w += g.demand(u, v) + g.demand(v, u)
	w += resultTo(u, v) + resultTo(v, u)
	return w
}

func (g *Graph) demand(q, n *Vertex) float64 {
	if q.Interest == nil || len(n.Nodes) == 0 {
		return 0
	}
	var w float64
	for _, node := range n.Nodes {
		if subs, ok := g.subsByNode[node]; ok {
			w += q.Interest.OverlapWeightedSum(subs, g.SubRates)
		}
	}
	return w
}

func resultTo(q, n *Vertex) float64 {
	if len(q.ResultRates) == 0 || len(n.Nodes) == 0 {
		return 0
	}
	var w float64
	for _, node := range n.Nodes {
		w += q.ResultRates[node]
	}
	return w
}

// ComputeEdges materializes the full edge set from vertex content,
// replacing any existing edges. Cost is O(|V|²) edge-weight evaluations.
func (g *Graph) ComputeEdges() {
	for i := range g.adj {
		g.adj[i] = nil
	}
	for i := 0; i < len(g.Vertices); i++ {
		for j := i + 1; j < len(g.Vertices); j++ {
			w := g.EdgeWeight(g.Vertices[i], g.Vertices[j])
			if w > 0 {
				g.setEdge(i, j, w)
			}
		}
	}
}

func (g *Graph) setEdge(i, j int, w float64) {
	if g.adj[i] == nil {
		g.adj[i] = make(map[int]float64)
	}
	if g.adj[j] == nil {
		g.adj[j] = make(map[int]float64)
	}
	g.adj[i][j] = w
	g.adj[j][i] = w
}

func (g *Graph) deleteVertexEdges(i int) {
	for j := range g.adj[i] {
		delete(g.adj[j], i)
	}
	g.adj[i] = nil
}

// Neighbors returns the adjacency map of vertex i; callers must not modify
// it.
func (g *Graph) Neighbors(i int) map[int]float64 { return g.adj[i] }

// ConnectVertex computes and installs the edges between vertex v (already
// added to the graph) and every other vertex — the incremental step of
// online query insertion (§3.6). Cost is O(|V|) edge evaluations.
func (g *Graph) ConnectVertex(v *Vertex) {
	for j, o := range g.Vertices {
		if j == v.ID || o == nil {
			continue
		}
		if w := g.EdgeWeight(v, o); w > 0 {
			g.setEdge(v.ID, j, w)
		}
	}
}

// RemoveVertexEdges detaches vertex i from all neighbors (used when a
// vertex migrates out of a coordinator's graph).
func (g *Graph) RemoveVertexEdges(i int) { g.deleteVertexEdges(i) }

// DropOverlapEdges removes every query-query edge, leaving only source and
// result edges — the ablation of the paper's communication-sharing model
// component (Table 2's scheme-2-versus-scheme-3 distinction).
func (g *Graph) DropOverlapEdges() {
	for i, u := range g.Vertices {
		if u.IsN() {
			continue
		}
		for j := range g.adj[i] {
			if v := g.Vertices[j]; v != nil && !v.IsN() {
				delete(g.adj[i], j)
				delete(g.adj[j], i)
			}
		}
	}
}

// SourceNodes returns the distinct origin nodes of the substreams set in
// the interest vector.
func (g *Graph) SourceNodes(interest *bitvec.Vector) []topology.NodeID {
	if interest == nil {
		return nil
	}
	seen := make(map[topology.NodeID]bool)
	var out []topology.NodeID
	for _, idx := range interest.Indices() {
		n := g.SourceOfSub[idx]
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// AdjacencyLists returns dense adjacency slices sorted by neighbor ID,
// suitable for the mapping algorithms.
func (g *Graph) AdjacencyLists() [][]Adj {
	out := make([][]Adj, len(g.Vertices))
	for i, m := range g.adj {
		lst := make([]Adj, 0, len(m))
		for j, w := range m {
			lst = append(lst, Adj{To: j, W: w})
		}
		sort.Slice(lst, func(a, b int) bool { return lst[a].To < lst[b].To })
		out[i] = lst
	}
	return out
}

// EdgeCount returns the number of (undirected) edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, m := range g.adj {
		n += len(m)
	}
	return n / 2
}

// TotalQueryLoad returns Σ Wq over q-vertices.
func (g *Graph) TotalQueryLoad() float64 {
	var s float64
	for _, v := range g.Vertices {
		s += v.Weight
	}
	return s
}

// CoarsenOptions tunes Algorithm 1.
type CoarsenOptions struct {
	// VMax is the target vertex count.
	VMax int
	// Rng drives random vertex selection; nil seeds a fixed PCG.
	Rng *rand.Rand
	// NoQN forbids merging q-vertices into n-vertices. The coordinator
	// hierarchy rebuilds n-vertices locally at every level and only
	// ships query-bearing vertices, so it keeps the two kinds separate.
	NoQN bool
	// CountQOnly makes VMax count only query-bearing vertices, leaving
	// pure n-vertices outside the budget.
	CountQOnly bool
	// CanMerge, when non-nil, adds an extra admissibility constraint on
	// candidate pairs. The adaptation path uses it to only merge
	// vertices currently placed on the same child, so that coarse-level
	// warm starts introduce no spurious migrations.
	CanMerge func(u, v *Vertex) bool
}

func (o CoarsenOptions) withDefaults() CoarsenOptions {
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewPCG(13, 1313))
	}
	if o.VMax <= 0 {
		o.VMax = 1
	}
	return o
}

// CoarsenResult is the outcome of one Coarsen call.
type CoarsenResult struct {
	Graph *Graph
	// FineToCoarse maps fine vertex ID -> coarse vertex ID.
	FineToCoarse []int
	// CoarseToFine maps coarse vertex ID -> fine vertex IDs.
	CoarseToFine [][]int
}

// collapse merges u and v (Algorithm 1 lines 8–14) into a fresh vertex.
func collapse(u, v *Vertex) *Vertex {
	w := &Vertex{
		Weight:    u.Weight + v.Weight,
		StateSize: u.StateSize + v.StateSize,
		Clu:       ClusterUnknown,
		Tag:       u.Tag,
	}
	w.Nodes = append(append([]topology.NodeID(nil), u.Nodes...), v.Nodes...)
	w.Queries = append(append([]QueryInfo(nil), u.Queries...), v.Queries...)
	switch {
	case u.Interest != nil && v.Interest != nil:
		w.Interest = u.Interest.Clone()
		_ = w.Interest.Or(v.Interest) // lengths equal within one graph
	case u.Interest != nil:
		w.Interest = u.Interest.Clone()
	case v.Interest != nil:
		w.Interest = v.Interest.Clone()
	}
	if len(u.ResultRates)+len(v.ResultRates) > 0 {
		w.ResultRates = make(map[topology.NodeID]float64, len(u.ResultRates)+len(v.ResultRates))
		for n, r := range u.ResultRates {
			w.ResultRates[n] += r
		}
		for n, r := range v.ResultRates {
			w.ResultRates[n] += r
		}
	}
	// w.clu = is_n(u) ? u.clu : v.clu (Algorithm 1 line 14).
	if u.IsN() {
		w.Clu = u.Clu
		w.Assignable = u.Assignable
	} else if v.IsN() {
		w.Clu = v.Clu
		w.Assignable = v.Assignable
	}
	if w.Tag == "" {
		w.Tag = v.Tag
	}
	return w
}

// Coarsen runs Algorithm 1: repeatedly collapse heavy-edge-matched vertex
// pairs until at most VMax vertices remain. N-vertices from different
// clusters (or with unknown cluster) are never merged, because they must map
// to different network-graph vertices. The receiver is not modified.
func (g *Graph) Coarsen(opts CoarsenOptions) *CoarsenResult {
	opts = opts.withDefaults()
	rng := opts.Rng
	cur := g.cloneShallow()
	fineToCur := make([]int, len(g.Vertices))
	for i := range fineToCur {
		fineToCur[i] = i
	}
	// count tallies live (non-merged) vertices, restricted to query-
	// bearing ones in q-only mode. Merged-away slots are nil.
	count := func(gr *Graph) int {
		n := 0
		for _, v := range gr.Vertices {
			if v == nil {
				continue
			}
			if !opts.CountQOnly || len(v.Queries) > 0 {
				n++
			}
		}
		return n
	}

	for count(cur) > opts.VMax {
		matched := make([]bool, len(cur.Vertices))
		order := rng.Perm(len(cur.Vertices))
		merges := 0
		live := count(cur)
		// redirect[old] = merged-into index within cur's ID space.
		redirect := make(map[int]int)

		for _, ui := range order {
			if live <= opts.VMax {
				break
			}
			if matched[ui] || cur.Vertices[ui] == nil {
				continue
			}
			u := cur.Vertices[ui]
			// A ← adj(u) − matched(adj(u)), with the n-vertex
			// cluster restriction of Algorithm 1 line 6.
			best, bestW := -1, 0.0
			for vi, w := range cur.adj[ui] {
				if matched[vi] || cur.Vertices[vi] == nil {
					continue
				}
				v := cur.Vertices[vi]
				if u.IsN() && v.IsN() &&
					(u.Clu != v.Clu || v.Clu == ClusterUnknown) {
					continue
				}
				// A query must not be absorbed into an n-vertex
				// pinned to an unassignable anchor (or with an
				// unknown pin): it would be forced onto a node
				// that cannot process it.
				if u.IsN() != v.IsN() {
					if opts.NoQN {
						continue
					}
					n := u
					if v.IsN() {
						n = v
					}
					if !n.Assignable || n.Clu == ClusterUnknown {
						continue
					}
				}
				if opts.CanMerge != nil && !opts.CanMerge(u, v) {
					continue
				}
				if w > bestW || (w == bestW && best >= 0 && vi < best) {
					best, bestW = vi, w
				}
			}
			if best < 0 {
				matched[ui] = true
				continue
			}
			v := cur.Vertices[best]
			merged := collapse(u, v)
			merged.ID = ui
			cur.Vertices[ui] = merged
			cur.Vertices[best] = nil
			matched[ui] = true

			// Re-estimate edges of the merged vertex (line 11).
			neighbors := make(map[int]bool, len(cur.adj[ui])+len(cur.adj[best]))
			for j := range cur.adj[ui] {
				neighbors[j] = true
			}
			for j := range cur.adj[best] {
				neighbors[j] = true
			}
			cur.deleteVertexEdges(ui)
			cur.deleteVertexEdges(best)
			for j := range neighbors {
				if j == ui || j == best || cur.Vertices[j] == nil {
					continue
				}
				if w := cur.EdgeWeight(merged, cur.Vertices[j]); w > 0 {
					cur.setEdge(ui, j, w)
				}
			}
			redirect[best] = ui
			// A merge reduces the counted vertex set only when both
			// halves were counted (both query-bearing in q-only
			// mode).
			if !opts.CountQOnly || (len(u.Queries) > 0 && len(v.Queries) > 0) {
				merges++
				live--
			}
		}
		if merges == 0 {
			break // nothing mergeable (all blocked by constraints)
		}
		// Compact: drop nil slots and rebuild IDs.
		cur, fineToCur = compact(cur, fineToCur, redirect)
	}

	res := &CoarsenResult{
		Graph:        cur,
		FineToCoarse: fineToCur,
		CoarseToFine: make([][]int, len(cur.Vertices)),
	}
	for fine, coarse := range fineToCur {
		res.CoarseToFine[coarse] = append(res.CoarseToFine[coarse], fine)
	}
	return res
}

// cloneShallow copies graph structure (vertices are shared pointers for
// unmerged vertices; merged ones are fresh).
func (g *Graph) cloneShallow() *Graph {
	c := &Graph{
		SubRates:    g.SubRates,
		SourceOfSub: g.SourceOfSub,
		subsByNode:  g.subsByNode,
		Vertices:    make([]*Vertex, len(g.Vertices)),
		adj:         make([]map[int]float64, len(g.Vertices)),
	}
	copy(c.Vertices, g.Vertices)
	for i, m := range g.adj {
		if len(m) == 0 {
			continue
		}
		c.adj[i] = make(map[int]float64, len(m))
		for j, w := range m {
			c.adj[i][j] = w
		}
	}
	return c
}

func compact(cur *Graph, fineToCur []int, redirect map[int]int) (*Graph, []int) {
	resolve := func(i int) int {
		for {
			j, ok := redirect[i]
			if !ok {
				return i
			}
			i = j
		}
	}
	newID := make(map[int]int, len(cur.Vertices))
	out := &Graph{
		SubRates:    cur.SubRates,
		SourceOfSub: cur.SourceOfSub,
		subsByNode:  cur.subsByNode,
	}
	for i, v := range cur.Vertices {
		if v == nil {
			continue
		}
		newID[i] = len(out.Vertices)
		v.ID = len(out.Vertices)
		out.Vertices = append(out.Vertices, v)
		out.adj = append(out.adj, nil)
	}
	for i, m := range cur.adj {
		if cur.Vertices[i] == nil {
			continue
		}
		ni := newID[i]
		for j, w := range m {
			if cur.Vertices[j] == nil {
				continue
			}
			nj := newID[j]
			if ni < nj {
				out.setEdge(ni, nj, w)
			}
		}
	}
	next := make([]int, len(fineToCur))
	for f, c := range fineToCur {
		next[f] = newID[resolve(c)]
	}
	return out, next
}
