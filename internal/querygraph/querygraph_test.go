package querygraph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/topology"
)

const (
	nodeA = topology.NodeID(10)
	nodeB = topology.NodeID(11)
	srcX  = topology.NodeID(20)
	srcY  = topology.NodeID(21)
)

// smallGraph builds a graph with 6 substreams: 0-2 from srcX, 3-5 from srcY,
// all rate 2.
func smallGraph(t *testing.T) *Graph {
	t.Helper()
	rates := []float64{2, 2, 2, 2, 2, 2}
	sources := []topology.NodeID{srcX, srcX, srcX, srcY, srcY, srcY}
	g, err := New(rates, sources)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func qinfo(name string, proxy topology.NodeID, subs []int, load float64) QueryInfo {
	return QueryInfo{
		Name:       name,
		Proxy:      proxy,
		Load:       load,
		Interest:   bitvec.FromIndices(6, subs),
		ResultRate: 1,
		StateSize:  load * 10,
	}
}

func TestEdgeWeights(t *testing.T) {
	g := smallGraph(t)
	q1 := g.AddQVertex(qinfo("q1", nodeA, []int{0, 1}, 0.1))
	q2 := g.AddQVertex(qinfo("q2", nodeB, []int{1, 2}, 0.1))
	nx := g.AddNVertex(srcX, 2, false)
	na := g.AddNVertex(nodeA, 0, true)
	g.ComputeEdges()

	// q1-q2 overlap: substream 1 (rate 2).
	if w, _ := g.Weight(q1.ID, q2.ID); w != 2 {
		t.Errorf("overlap edge = %v, want 2", w)
	}
	// q1-srcX demand: substreams 0,1 -> 4.
	if w, _ := g.Weight(q1.ID, nx.ID); w != 4 {
		t.Errorf("source edge = %v, want 4", w)
	}
	// q1-nodeA result edge: 1.
	if w, _ := g.Weight(q1.ID, na.ID); w != 1 {
		t.Errorf("result edge = %v, want 1", w)
	}
	// No n-n edge.
	if _, ok := g.Weight(nx.ID, na.ID); ok {
		t.Error("unexpected n-n edge")
	}
}

func TestSourceAndProxySameNode(t *testing.T) {
	g := smallGraph(t)
	// Query proxied at srcX AND pulling from srcX: one edge carrying both.
	q := g.AddQVertex(qinfo("q", srcX, []int{0}, 0.1))
	n := g.AddNVertex(srcX, 0, true)
	g.ComputeEdges()
	if w, _ := g.Weight(q.ID, n.ID); w != 2+1 {
		t.Errorf("combined edge = %v, want 3 (demand 2 + result 1)", w)
	}
}

func TestConnectVertexMatchesComputeEdges(t *testing.T) {
	g := smallGraph(t)
	g.AddQVertex(qinfo("q1", nodeA, []int{0, 1}, 0.1))
	g.AddNVertex(srcX, 1, false)
	g.ComputeEdges()
	v := g.AddQVertex(qinfo("q2", nodeB, []int{1, 2}, 0.1))
	g.ConnectVertex(v)

	g2 := smallGraph(t)
	g2.AddQVertex(qinfo("q1", nodeA, []int{0, 1}, 0.1))
	g2.AddNVertex(srcX, 1, false)
	g2.AddQVertex(qinfo("q2", nodeB, []int{1, 2}, 0.1))
	g2.ComputeEdges()

	for i := range g.Vertices {
		for _, e := range g.Neighbors(i) {
			if w2, ok := g2.Weight(i, e.To); !ok || w2 != e.W {
				t.Errorf("edge (%d,%d) = %v incrementally, %v from scratch", i, e.To, e.W, w2)
			}
		}
		if len(g.Neighbors(i)) != len(g2.Neighbors(i)) {
			t.Errorf("vertex %d degree %d vs %d", i, len(g.Neighbors(i)), len(g2.Neighbors(i)))
		}
	}
}

func TestCoarsenReachesVMax(t *testing.T) {
	g := smallGraph(t)
	for i := 0; i < 12; i++ {
		g.AddQVertex(qinfo("q", nodeA, []int{i % 6, (i + 1) % 6}, 0.1))
	}
	g.ComputeEdges()
	res := g.Coarsen(CoarsenOptions{VMax: 4, Rng: rand.New(rand.NewPCG(1, 1))})
	if got := len(res.Graph.Vertices); got > 4 {
		t.Errorf("coarsened to %d vertices, want <= 4", got)
	}
	// Every fine vertex maps to a live coarse vertex, and weights add up.
	var fineLoad, coarseLoad float64
	for _, v := range g.Vertices {
		fineLoad += v.Weight
	}
	for _, v := range res.Graph.Vertices {
		coarseLoad += v.Weight
	}
	if diff := fineLoad - coarseLoad; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("total load changed: %v -> %v", fineLoad, coarseLoad)
	}
	for fine, coarse := range res.FineToCoarse {
		if coarse < 0 || coarse >= len(res.Graph.Vertices) {
			t.Errorf("fine %d maps to invalid coarse %d", fine, coarse)
		}
	}
	for ci, fines := range res.CoarseToFine {
		for _, fi := range fines {
			if res.FineToCoarse[fi] != ci {
				t.Errorf("inconsistent coarse/fine maps at %d/%d", ci, fi)
			}
		}
	}
}

func TestCoarsenRespectsNVertexClusters(t *testing.T) {
	g := smallGraph(t)
	g.AddNVertex(nodeA, 0, true)
	g.AddNVertex(nodeB, 1, true)
	g.AddQVertex(qinfo("q1", nodeA, []int{0}, 0.1))
	g.AddQVertex(qinfo("q2", nodeB, []int{0}, 0.1))
	g.ComputeEdges()
	res := g.Coarsen(CoarsenOptions{VMax: 1, Rng: rand.New(rand.NewPCG(2, 2))})
	// The two n-vertices are pinned to different clusters and must
	// survive unmerged.
	for _, v := range res.Graph.Vertices {
		if len(v.Nodes) > 1 {
			t.Errorf("n-vertices from different clusters merged: %v", v.Nodes)
		}
	}
}

func TestCoarsenNoQN(t *testing.T) {
	g := smallGraph(t)
	g.AddNVertex(nodeA, 0, true)
	g.AddQVertex(qinfo("q1", nodeA, []int{0}, 0.1))
	g.AddQVertex(qinfo("q2", nodeA, []int{0}, 0.1))
	g.ComputeEdges()
	res := g.Coarsen(CoarsenOptions{VMax: 1, Rng: rand.New(rand.NewPCG(3, 3)), NoQN: true, CountQOnly: true})
	for _, v := range res.Graph.Vertices {
		if v.IsN() && len(v.Queries) > 0 {
			t.Errorf("q-n merge happened despite NoQN: %+v", v)
		}
	}
}

func TestCoarsenCanMergeHook(t *testing.T) {
	g := smallGraph(t)
	for i := 0; i < 6; i++ {
		g.AddQVertex(qinfo("q", nodeA, []int{0}, 0.1))
	}
	g.ComputeEdges()
	// Forbid all merges: graph must stay at 6 vertices.
	res := g.Coarsen(CoarsenOptions{
		VMax:     1,
		Rng:      rand.New(rand.NewPCG(4, 4)),
		CanMerge: func(u, v *Vertex) bool { return false },
	})
	if len(res.Graph.Vertices) != 6 {
		t.Errorf("merges happened despite CanMerge=false: %d vertices", len(res.Graph.Vertices))
	}
}

func TestCloneIndependence(t *testing.T) {
	g := smallGraph(t)
	v := g.AddQVertex(qinfo("q1", nodeA, []int{0}, 0.1))
	c := v.Clone()
	c.ResultRates[nodeB] = 9
	if _, ok := v.ResultRates[nodeB]; ok {
		t.Error("clone shares result-rate map")
	}
	c.Nodes = append(c.Nodes, nodeB)
	if len(v.Nodes) != 0 {
		t.Error("clone shares node slice")
	}
}

func TestSourceNodes(t *testing.T) {
	g := smallGraph(t)
	iv := bitvec.FromIndices(6, []int{0, 4})
	nodes := g.SourceNodes(iv)
	if len(nodes) != 2 {
		t.Fatalf("SourceNodes = %v", nodes)
	}
	seen := map[topology.NodeID]bool{nodes[0]: true, nodes[1]: true}
	if !seen[srcX] || !seen[srcY] {
		t.Errorf("SourceNodes = %v, want {srcX, srcY}", nodes)
	}
	if g.SourceNodes(nil) != nil {
		t.Error("SourceNodes(nil) != nil")
	}
}

// TestQuickCoarsenPreservesQueries: coarsening never loses or duplicates a
// query, for random graphs and budgets.
func TestQuickCoarsenPreservesQueries(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 17))
		g, err := New([]float64{1, 1, 1, 1}, []topology.NodeID{srcX, srcX, srcY, srcY})
		if err != nil {
			return false
		}
		n := 3 + r.IntN(10)
		for i := 0; i < n; i++ {
			g.AddQVertex(QueryInfo{
				Name:     string(rune('a' + i)),
				Proxy:    nodeA,
				Load:     0.1,
				Interest: bitvec.FromIndices(4, []int{r.IntN(4), r.IntN(4)}),
			})
		}
		g.ComputeEdges()
		res := g.Coarsen(CoarsenOptions{VMax: 1 + r.IntN(n), Rng: r})
		seen := make(map[string]int)
		for _, v := range res.Graph.Vertices {
			for _, q := range v.Queries {
				seen[q.Name]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
