// Package stream defines the data model shared by the whole system: named
// streams with typed attributes, their partitioning into substreams, per-
// substream rate statistics, and the tuples that flow through the processing
// engine.
//
// Substreams are the unit of data interest in COSMOS (§3.2): every stream is
// partitioned into a number of substreams and a query's interest is a bit
// vector over the global substream space, so overlap estimation between
// queries is a bit operation rather than semantic reasoning.
package stream

import (
	"fmt"
	"sort"
	"sync"
)

// AttrType is the type of a stream attribute.
type AttrType int

// Supported attribute types.
const (
	Float AttrType = iota + 1
	Int
	String
)

func (t AttrType) String() string {
	switch t {
	case Float:
		return "float"
	case Int:
		return "int"
	case String:
		return "string"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Attribute is one column of a stream schema.
type Attribute struct {
	Name string
	Type AttrType
}

// Schema describes the attributes of a stream. The implicit "timestamp"
// attribute is always present on every stream.
type Schema struct {
	Attrs []Attribute
}

// HasAttr reports whether the schema (or the implicit timestamp) contains
// the named attribute.
func (s Schema) HasAttr(name string) bool {
	if name == "timestamp" {
		return true
	}
	for _, a := range s.Attrs {
		if a.Name == name {
			return true
		}
	}
	return false
}

// AttrNames returns the schema's attribute names plus the implicit
// timestamp, sorted.
func (s Schema) AttrNames() []string {
	out := make([]string, 0, len(s.Attrs)+1)
	for _, a := range s.Attrs {
		out = append(out, a.Name)
	}
	out = append(out, "timestamp")
	sort.Strings(out)
	return out
}

// Stream is a named source stream whose data is partitioned into a
// contiguous range of global substream indices.
type Stream struct {
	Name      string
	Schema    Schema
	Source    int // node ID of the origin processor
	FirstSub  int // first global substream index
	SubCount  int // number of substreams
	AvgTuple  int // average tuple size, bytes
	Partition func(Tuple) int
}

// SubstreamRange returns the half-open global substream index range
// [first, first+count).
func (s *Stream) SubstreamRange() (first, count int) {
	return s.FirstSub, s.SubCount
}

// SubstreamOf maps a tuple to its global substream index using the stream's
// partition function, defaulting to hashing the tuple's timestamp when none
// is set.
func (s *Stream) SubstreamOf(t Tuple) int {
	if s.SubCount <= 0 {
		return s.FirstSub
	}
	if s.Partition != nil {
		local := s.Partition(t) % s.SubCount
		if local < 0 {
			local += s.SubCount
		}
		return s.FirstSub + local
	}
	return s.FirstSub + int(uint64(t.Timestamp)%uint64(s.SubCount))
}

// Value is a dynamically typed attribute value carried by tuples.
type Value struct {
	Type AttrType
	F    float64
	S    string
}

// FloatVal wraps a float64.
func FloatVal(f float64) Value { return Value{Type: Float, F: f} }

// IntVal wraps an integer (stored as float64 for uniform comparison).
func IntVal(i int64) Value { return Value{Type: Int, F: float64(i)} }

// StringVal wraps a string.
func StringVal(s string) Value { return Value{Type: String, S: s} }

// Compare returns -1, 0, or +1 comparing v with o. Numeric types compare by
// value; strings lexicographically; mixed numeric/string compares by type.
func (v Value) Compare(o Value) int {
	vn, on := v.Type != String, o.Type != String
	switch {
	case vn && on:
		switch {
		case v.F < o.F:
			return -1
		case v.F > o.F:
			return 1
		}
		return 0
	case !vn && !on:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	case vn:
		return -1
	default:
		return 1
	}
}

func (v Value) String() string {
	if v.Type == String {
		return fmt.Sprintf("%q", v.S)
	}
	return fmt.Sprintf("%g", v.F)
}

// Tuple is one stream element: a timestamp (milliseconds since the stream
// epoch), the producing stream's name, and attribute values.
type Tuple struct {
	Stream    string
	Timestamp int64
	Attrs     map[string]Value
	Size      int // encoded size in bytes, for traffic accounting

	// Relay is an opaque hint the transport layer attaches to tuples that
	// arrived off the wire: the already-decoded wire form, reused verbatim
	// when the tuple is forwarded whole to the next hop instead of being
	// rebuilt and re-flattened. Matching and delivery ignore it, and any
	// transformation that copies the tuple (projection) drops it, so a
	// non-nil Relay always describes exactly this tuple.
	Relay any
}

// Get returns the named attribute; "timestamp" resolves to the tuple
// timestamp as an Int value.
func (t Tuple) Get(name string) (Value, bool) {
	if name == "timestamp" {
		return IntVal(t.Timestamp), true
	}
	v, ok := t.Attrs[name]
	return v, ok
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	attrs := make(map[string]Value, len(t.Attrs))
	for k, v := range t.Attrs {
		attrs[k] = v
	}
	return Tuple{Stream: t.Stream, Timestamp: t.Timestamp, Attrs: attrs, Size: t.Size}
}

// Registry is a concurrency-safe catalogue of streams and the global
// substream space. Streams register once; substream indices are assigned
// contiguously in registration order.
type Registry struct {
	mu      sync.RWMutex
	streams map[string]*Stream
	order   []string
	nextSub int
	rates   []float64 // per-substream rate, bytes/sec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{streams: make(map[string]*Stream)}
}

// Register adds a stream with the given number of substreams and returns the
// stored stream with its substream range assigned. Registering a duplicate
// name is an error.
func (r *Registry) Register(name string, schema Schema, source, subCount, avgTuple int) (*Stream, error) {
	if name == "" {
		return nil, fmt.Errorf("stream: empty stream name")
	}
	if subCount < 1 {
		return nil, fmt.Errorf("stream: stream %q needs >= 1 substream, got %d", name, subCount)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.streams[name]; dup {
		return nil, fmt.Errorf("stream: stream %q already registered", name)
	}
	s := &Stream{
		Name:     name,
		Schema:   schema,
		Source:   source,
		FirstSub: r.nextSub,
		SubCount: subCount,
		AvgTuple: avgTuple,
	}
	r.streams[name] = s
	r.order = append(r.order, name)
	r.nextSub += subCount
	r.rates = append(r.rates, make([]float64, subCount)...)
	return s, nil
}

// Lookup returns the stream with the given name.
func (r *Registry) Lookup(name string) (*Stream, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.streams[name]
	return s, ok
}

// Names returns stream names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// SubstreamCount returns the size of the global substream space.
func (r *Registry) SubstreamCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nextSub
}

// SetRate records the data rate (bytes/sec) of a global substream index.
func (r *Registry) SetRate(sub int, rate float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if sub < 0 || sub >= r.nextSub {
		return fmt.Errorf("stream: substream %d out of range [0,%d)", sub, r.nextSub)
	}
	r.rates[sub] = rate
	return nil
}

// Rate returns the recorded rate of a global substream index.
func (r *Registry) Rate(sub int) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if sub < 0 || sub >= r.nextSub {
		return 0
	}
	return r.rates[sub]
}

// Rates returns a copy of the per-substream rate vector.
func (r *Registry) Rates() []float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]float64, len(r.rates))
	copy(out, r.rates)
	return out
}

// ScaleRate multiplies the rate of substream sub by factor — the primitive
// behind the rate-perturbation experiment (Fig 10).
func (r *Registry) ScaleRate(sub int, factor float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if sub < 0 || sub >= r.nextSub {
		return fmt.Errorf("stream: substream %d out of range [0,%d)", sub, r.nextSub)
	}
	r.rates[sub] *= factor
	return nil
}
