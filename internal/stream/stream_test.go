package stream

import (
	"testing"
	"testing/quick"
)

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{FloatVal(1), FloatVal(2), -1},
		{FloatVal(2), FloatVal(2), 0},
		{FloatVal(3), FloatVal(2), 1},
		{IntVal(5), FloatVal(5), 0},
		{StringVal("a"), StringVal("b"), -1},
		{StringVal("b"), StringVal("b"), 0},
		{FloatVal(1), StringVal("a"), -1}, // numeric sorts before string
		{StringVal("a"), FloatVal(1), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTupleGet(t *testing.T) {
	tp := Tuple{
		Timestamp: 42,
		Attrs:     map[string]Value{"a": FloatVal(1)},
	}
	if v, ok := tp.Get("a"); !ok || v.F != 1 {
		t.Errorf("Get(a) = %v %v", v, ok)
	}
	if v, ok := tp.Get("timestamp"); !ok || v.F != 42 {
		t.Errorf("Get(timestamp) = %v %v", v, ok)
	}
	if _, ok := tp.Get("missing"); ok {
		t.Error("Get(missing) succeeded")
	}
	clone := tp.Clone()
	clone.Attrs["a"] = FloatVal(99)
	if tp.Attrs["a"].F != 1 {
		t.Error("Clone shares attribute map")
	}
}

func TestRegistryRegisterAndRanges(t *testing.T) {
	r := NewRegistry()
	s1, err := r.Register("A", Schema{}, 1, 3, 32)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Register("B", Schema{}, 2, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if f, c := s1.SubstreamRange(); f != 0 || c != 3 {
		t.Errorf("A range = %d,%d", f, c)
	}
	if f, c := s2.SubstreamRange(); f != 3 || c != 2 {
		t.Errorf("B range = %d,%d", f, c)
	}
	if r.SubstreamCount() != 5 {
		t.Errorf("SubstreamCount = %d", r.SubstreamCount())
	}
	if _, err := r.Register("A", Schema{}, 1, 1, 32); err == nil {
		t.Error("duplicate stream accepted")
	}
	if _, err := r.Register("", Schema{}, 1, 1, 32); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := r.Register("C", Schema{}, 1, 0, 32); err == nil {
		t.Error("zero substreams accepted")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("Names = %v", names)
	}
}

func TestRegistryRates(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register("A", Schema{}, 1, 2, 32); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRate(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRate(7, 5); err == nil {
		t.Error("out-of-range SetRate accepted")
	}
	if got := r.Rate(0); got != 5 {
		t.Errorf("Rate(0) = %v", got)
	}
	if err := r.ScaleRate(0, 2); err != nil {
		t.Fatal(err)
	}
	if got := r.Rate(0); got != 10 {
		t.Errorf("scaled Rate(0) = %v", got)
	}
	rates := r.Rates()
	rates[0] = 999
	if r.Rate(0) == 999 {
		t.Error("Rates() exposes internal slice")
	}
}

func TestSubstreamOf(t *testing.T) {
	r := NewRegistry()
	s, err := r.Register("A", Schema{}, 1, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Default partitioner hashes by timestamp within range.
	f := func(ts int64) bool {
		if ts < 0 {
			ts = -ts
		}
		sub := s.SubstreamOf(Tuple{Timestamp: ts})
		return sub >= 0 && sub < 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Custom partitioner.
	s.Partition = func(t Tuple) int { return int(t.Attrs["k"].F) }
	got := s.SubstreamOf(Tuple{Attrs: map[string]Value{"k": FloatVal(6)}})
	if got != 2 { // 6 mod 4
		t.Errorf("SubstreamOf = %d, want 2", got)
	}
}

func TestSchemaHasAttr(t *testing.T) {
	s := Schema{Attrs: []Attribute{{Name: "a", Type: Float}}}
	if !s.HasAttr("a") || !s.HasAttr("timestamp") {
		t.Error("HasAttr missed existing attributes")
	}
	if s.HasAttr("zzz") {
		t.Error("HasAttr found phantom attribute")
	}
	names := s.AttrNames()
	if len(names) != 2 {
		t.Errorf("AttrNames = %v", names)
	}
}
