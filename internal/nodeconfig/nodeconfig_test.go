package nodeconfig

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/logging"
)

// env builds a lookupEnv func from a map.
func env(m map[string]string) func(string) (string, bool) {
	return func(k string) (string, bool) {
		v, ok := m[k]
		return v, ok
	}
}

func load(t *testing.T, args []string, envm map[string]string) *Config {
	t.Helper()
	cfg, err := Load(args, env(envm), io.Discard)
	if err != nil {
		t.Fatalf("Load(%q, %v): %v", args, envm, err)
	}
	return cfg
}

func TestDefaults(t *testing.T) {
	cfg := load(t, nil, nil)
	if cfg.NodeID != 0 || cfg.Listen != "127.0.0.1:0" || cfg.OpsListen != "" {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if cfg.Period != time.Second || cfg.LogLevel != "info" {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if cfg.PeerWait != 30*time.Second || cfg.DrainTimeout != 10*time.Second {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
}

func TestFlagLayer(t *testing.T) {
	cfg := load(t, []string{
		"-id", "3", "-listen", ":7003", "-peers", "1=h1:7001,0=h0:7000",
		"-period", "250ms", "-no-batching", "-ops-listen", ":8080",
	}, nil)
	if cfg.NodeID != 3 || cfg.Listen != ":7003" || cfg.OpsListen != ":8080" {
		t.Errorf("flags not applied: %+v", cfg)
	}
	if !cfg.NoBatching || cfg.Period != 250*time.Millisecond {
		t.Errorf("flags not applied: %+v", cfg)
	}
	// Peers come back sorted by ID regardless of input order.
	if len(cfg.Peers) != 2 || cfg.Peers[0] != (Peer{0, "h0:7000"}) || cfg.Peers[1] != (Peer{1, "h1:7001"}) {
		t.Errorf("peers = %+v", cfg.Peers)
	}
}

func writeConfig(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "node.conf")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFileLayerAndFormat(t *testing.T) {
	path := writeConfig(t, `
# cosmos-node config
id = 5
listen = ":7005"
advertise = Station1, Station2
period = 2s
subscribe = "Station1:snowHeight > 40"
`)
	cfg := load(t, []string{"-config", path}, nil)
	if cfg.NodeID != 5 || cfg.Listen != ":7005" || cfg.Period != 2*time.Second {
		t.Errorf("file not applied: %+v", cfg)
	}
	if len(cfg.Advertise) != 2 || cfg.Advertise[0] != "Station1" || cfg.Advertise[1] != "Station2" {
		t.Errorf("advertise = %q", cfg.Advertise)
	}
	if cfg.Subscribe != "Station1:snowHeight > 40" {
		t.Errorf("quoted value mishandled: %q", cfg.Subscribe)
	}
}

func TestPrecedenceEnvOverFileOverFlag(t *testing.T) {
	path := writeConfig(t, "id = 5\nlisten = :7005\nperiod = 2s\n")
	cfg := load(t,
		[]string{"-config", path, "-id", "1", "-listen", ":7001", "-period", "1s", "-publish", "S"},
		map[string]string{"COSMOS_ID": "9"},
	)
	if cfg.NodeID != 9 {
		t.Errorf("env must beat file and flag: id = %d", cfg.NodeID)
	}
	if cfg.Listen != ":7005" || cfg.Period != 2*time.Second {
		t.Errorf("file must beat flag: %+v", cfg)
	}
	if cfg.Publish != "S" {
		t.Errorf("flag set only at flag layer must survive: %q", cfg.Publish)
	}
}

func TestEnvConfigFileOverridesFlagPath(t *testing.T) {
	flagged := writeConfig(t, "id = 1\n")
	enved := writeConfig(t, "id = 2\n")
	cfg := load(t, []string{"-config", flagged}, map[string]string{EnvConfigFile: enved})
	if cfg.NodeID != 2 {
		t.Errorf("COSMOS_CONFIG must override -config: id = %d", cfg.NodeID)
	}
}

func TestErrorsNameTheKeyAndSource(t *testing.T) {
	cases := []struct {
		name string
		args []string
		envm map[string]string
		file string
		want []string
	}{
		{
			name: "bad duration from env",
			envm: map[string]string{"COSMOS_PERIOD": "fast"},
			want: []string{`"period"`, "COSMOS_PERIOD"},
		},
		{
			name: "bad int from flag",
			args: []string{"-id", "three"},
			want: []string{`"id"`, "flag -id"},
		},
		{
			name: "bad peer from file",
			file: "peers = 1:nohost\n",
			want: []string{`"peers"`, "bad peer"},
		},
		{
			name: "unknown file key",
			file: "listne = :7000\n",
			want: []string{"unknown key", `"listne"`, "line 1"},
		},
		{
			name: "malformed file line",
			file: "just words\n",
			want: []string{"line 1", "key = value"},
		},
		{
			name: "duplicate file key",
			file: "id = 1\nid = 2\n",
			want: []string{"line 2", "duplicate", `"id"`},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			args := c.args
			if c.file != "" {
				args = append([]string{"-config", writeConfig(t, c.file)}, args...)
			}
			_, err := Load(args, env(c.envm), io.Discard)
			if err == nil {
				t.Fatal("want error")
			}
			for _, frag := range c.want {
				if !strings.Contains(err.Error(), frag) {
					t.Errorf("error %q does not contain %q", err, frag)
				}
			}
		})
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		key  string
	}{
		{"negative id", func(c *Config) { c.NodeID = -1 }, `"id"`},
		{"empty listen", func(c *Config) { c.Listen = " " }, `"listen"`},
		{"self peer", func(c *Config) { c.NodeID = 2; c.Peers = []Peer{{2, "x:1"}} }, `"peers"`},
		{"dup peer", func(c *Config) { c.Peers = []Peer{{1, "x:1"}, {1, "y:2"}} }, `"peers"`},
		{"negative peer", func(c *Config) { c.Peers = []Peer{{-3, "x:1"}} }, `"peers"`},
		{"zero period", func(c *Config) { c.Period = 0 }, `"period"`},
		{"negative peer-wait", func(c *Config) { c.PeerWait = -time.Second }, `"peer-wait"`},
		{"zero drain-timeout", func(c *Config) { c.DrainTimeout = 0 }, `"drain-timeout"`},
		{"negative batch-size", func(c *Config) { c.BatchSize = -1 }, `"batch-size"`},
		{"negative queue-depth", func(c *Config) { c.QueueDepth = -1 }, `"queue-depth"`},
		{"bad log level", func(c *Config) { c.LogLevel = "loud" }, `"log-level"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := defaults()
			c.mut(cfg)
			err := Validate(cfg)
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), c.key) {
				t.Errorf("error %q does not name key %s", err, c.key)
			}
		})
	}
	if err := Validate(defaults()); err != nil {
		t.Errorf("defaults must validate: %v", err)
	}
}

// The level names nodeconfig accepts must be exactly the ones
// logging.ParseLevel accepts, or a validated config would fail at logger
// construction.
func TestLogLevelSetMatchesLoggingPackage(t *testing.T) {
	for _, name := range []string{"debug", "info", "warn", "warning", "error", "off", "none", "DEBUG", " info "} {
		_, errN := parseLogLevel(name)
		_, errL := logging.ParseLevel(name)
		if (errN == nil) != (errL == nil) {
			t.Errorf("level %q: nodeconfig err=%v, logging err=%v", name, errN, errL)
		}
	}
	for _, name := range []string{"", "trace", "loud"} {
		if _, err := parseLogLevel(name); err == nil {
			t.Errorf("level %q must be rejected", name)
		}
		if _, err := logging.ParseLevel(name); err == nil {
			t.Errorf("logging level %q must be rejected", name)
		}
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers(" 2 = b:2 , 1=a:1 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0] != (Peer{1, "a:1"}) || peers[1] != (Peer{2, "b:2"}) {
		t.Errorf("peers = %+v", peers)
	}
	for _, bad := range []string{"1", "x=addr", "1=", "=addr"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q): want error", bad)
		}
	}
	if peers, err := ParsePeers(""); err != nil || len(peers) != 0 {
		t.Errorf("empty peers: %v, %v", peers, err)
	}
}

func TestPositionalArgsRejected(t *testing.T) {
	if _, err := Load([]string{"stray"}, env(nil), io.Discard); err == nil {
		t.Fatal("want error for positional args")
	}
}

func TestReferenceCoversEveryOption(t *testing.T) {
	ref := Reference()
	for _, o := range options() {
		if !strings.Contains(ref, "| `"+o.key+"` |") {
			t.Errorf("Reference() missing option %q", o.key)
		}
		if !strings.Contains(ref, EnvVar(o.key)) {
			t.Errorf("Reference() missing env var for %q", o.key)
		}
	}
}

// TestOpsReferenceInSync pins OPS.md's "Configuration reference" table to
// the rendered option table: the docs promise they are generated from the
// same source of truth, and this is what makes that promise enforceable —
// adding or changing an option without updating OPS.md fails here. On a
// mismatch, paste the output of nodeconfig.Reference() into OPS.md.
func TestOpsReferenceInSync(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "OPS.md"))
	if err != nil {
		t.Fatalf("reading OPS.md: %v", err)
	}
	if !strings.Contains(string(data), Reference()) {
		t.Fatalf("OPS.md's configuration reference is out of sync with nodeconfig.Reference(); regenerate the table:\n%s", Reference())
	}
}
