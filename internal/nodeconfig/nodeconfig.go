// Package nodeconfig loads the deployable node's configuration from three
// layered sources with the precedence
//
//	environment  >  config file  >  command-line flag  >  built-in default
//
// Every knob has one canonical key (e.g. "ops-listen"), which names its
// flag (-ops-listen), its file line (ops-listen = :8080) and its
// environment variable (COSMOS_OPS_LISTEN, the key upper-cased with dashes
// turned into underscores). The inverted-looking precedence is deliberate
// for fleet deployments: the baked-in command line and the shipped config
// file are image-wide, while environment variables are the per-instance
// override a scheduler injects — the layer closest to the running instance
// wins. All defaults are documented in OPS.md ("Configuration reference"),
// which is generated from the same option table this package validates
// against, so the docs cannot drift silently.
//
// Validation failures always name the offending key and the source layer it
// came from, e.g.:
//
//	nodeconfig: bad value for "period" (from env COSMOS_PERIOD): time: invalid duration "fast"
package nodeconfig

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Peer is one configured overlay neighbor.
type Peer struct {
	ID   int
	Addr string
}

// Config is the node's merged configuration. Fields correspond one-to-one
// to the option table in this package (and the OPS.md reference).
type Config struct {
	// NodeID is this broker's overlay node ID (unique across the fleet).
	NodeID int
	// Listen is the broker's TCP listen address for overlay traffic.
	Listen string
	// OpsListen is the operational HTTP listener address (/healthz,
	// /metrics, /debug/overlay.dot). Empty disables the ops server.
	OpsListen string
	// Peers are the overlay neighbors, parsed from "id=addr[,id=addr...]".
	Peers []Peer
	// Advertise lists the stream names this node's clients publish.
	Advertise []string
	// Publish names a stream to publish synthetic readings on (demo
	// publisher; implies advertising it if Advertise is empty).
	Publish string
	// Subscribe is a subscription expression, "stream[:attr OP number]".
	Subscribe string
	// Period is the synthetic publisher's period.
	Period time.Duration
	// LogLevel gates the structured logger (debug, info, warn, error, off).
	LogLevel string
	// PeerWait bounds the startup probe that waits for configured peers'
	// TCP listeners to become reachable before the first advert flood.
	// Zero skips the probe.
	PeerWait time.Duration
	// DrainTimeout bounds the graceful SIGTERM drain (retract
	// subscriptions, withdraw adverts, flush pipelines) before the node
	// gives up and closes anyway.
	DrainTimeout time.Duration
	// BatchSize, FlushWindow, QueueDepth and NoBatching tune the
	// transport send pipelines (0 = the transport's default).
	BatchSize   int
	FlushWindow time.Duration
	QueueDepth  int
	NoBatching  bool
}

// defaults returns the built-in configuration every layer overrides.
func defaults() *Config {
	return &Config{
		NodeID:       0,
		Listen:       "127.0.0.1:0",
		OpsListen:    "",
		Period:       time.Second,
		LogLevel:     "info",
		PeerWait:     30 * time.Second,
		DrainTimeout: 10 * time.Second,
	}
}

// option is one configuration knob: its canonical key plus the setter that
// parses a raw string into the Config. Setter errors are wrapped with the
// key and source layer by apply().
type option struct {
	key   string
	usage string
	set   func(c *Config, raw string) error
}

// Options returns the option table in declaration order — the single source
// of truth for flags, file keys, env vars and the OPS.md reference.
func options() []option {
	return []option{
		{"id", "node ID (unique across the overlay)", func(c *Config, raw string) error {
			v, err := strconv.Atoi(raw)
			if err != nil {
				return err
			}
			c.NodeID = v
			return nil
		}},
		{"listen", "overlay TCP listen address", func(c *Config, raw string) error {
			c.Listen = raw
			return nil
		}},
		{"ops-listen", "ops HTTP listen address (/healthz, /metrics, /debug/overlay.dot); empty disables", func(c *Config, raw string) error {
			c.OpsListen = raw
			return nil
		}},
		{"peers", "overlay neighbors as id=addr[,id=addr...]", func(c *Config, raw string) error {
			peers, err := ParsePeers(raw)
			if err != nil {
				return err
			}
			c.Peers = peers
			return nil
		}},
		{"advertise", "comma-separated stream names this node publishes", func(c *Config, raw string) error {
			c.Advertise = splitNonEmpty(raw)
			return nil
		}},
		{"publish", "publish synthetic readings on this stream", func(c *Config, raw string) error {
			c.Publish = strings.TrimSpace(raw)
			return nil
		}},
		{"subscribe", "subscription as stream[:attr>num] (also <, >=, <=)", func(c *Config, raw string) error {
			c.Subscribe = strings.TrimSpace(raw)
			return nil
		}},
		{"period", "synthetic publish period", func(c *Config, raw string) error {
			v, err := time.ParseDuration(raw)
			if err != nil {
				return err
			}
			c.Period = v
			return nil
		}},
		{"log-level", "log gate: debug, info, warn, error or off", func(c *Config, raw string) error {
			c.LogLevel = strings.TrimSpace(raw)
			return nil
		}},
		{"peer-wait", "how long to wait for peers' listeners at startup (0 = don't wait)", func(c *Config, raw string) error {
			v, err := time.ParseDuration(raw)
			if err != nil {
				return err
			}
			c.PeerWait = v
			return nil
		}},
		{"drain-timeout", "graceful-shutdown drain bound", func(c *Config, raw string) error {
			v, err := time.ParseDuration(raw)
			if err != nil {
				return err
			}
			c.DrainTimeout = v
			return nil
		}},
		{"batch-size", "max envelopes per transport batch (0 = transport default)", func(c *Config, raw string) error {
			v, err := strconv.Atoi(raw)
			if err != nil {
				return err
			}
			c.BatchSize = v
			return nil
		}},
		{"flush-window", "how long a partial batch waits for more traffic (0 = default, negative = immediate)", func(c *Config, raw string) error {
			v, err := time.ParseDuration(raw)
			if err != nil {
				return err
			}
			c.FlushWindow = v
			return nil
		}},
		{"queue-depth", "per-peer send queue bound, both planes (0 = transport default)", func(c *Config, raw string) error {
			v, err := strconv.Atoi(raw)
			if err != nil {
				return err
			}
			c.QueueDepth = v
			return nil
		}},
		{"no-batching", "v1 framing: one wire message per envelope", func(c *Config, raw string) error {
			v, err := strconv.ParseBool(raw)
			if err != nil {
				return err
			}
			c.NoBatching = v
			return nil
		}},
	}
}

// EnvVar returns the environment variable that overrides the given option
// key: COSMOS_ plus the key upper-cased, dashes as underscores.
func EnvVar(key string) string {
	return "COSMOS_" + strings.ToUpper(strings.ReplaceAll(key, "-", "_"))
}

// EnvConfigFile is the environment override for the config-file path itself
// (strongest source for it, mirroring the option precedence).
const EnvConfigFile = "COSMOS_CONFIG"

// Load parses the command line, the optional config file (the -config flag,
// overridden by $COSMOS_CONFIG) and the environment, merges them with the
// package's documented precedence, validates the result and returns it.
// lookupEnv is os.LookupEnv in production, injectable for tests; errOut
// receives flag usage output (os.Stderr in production). flag.ErrHelp is
// returned as-is for -h.
func Load(args []string, lookupEnv func(string) (string, bool), errOut io.Writer) (*Config, error) {
	if lookupEnv == nil {
		lookupEnv = os.LookupEnv
	}
	opts := options()

	fs := flag.NewFlagSet("cosmos-node", flag.ContinueOnError)
	if errOut != nil {
		fs.SetOutput(errOut)
	}
	configPath := fs.String("config", "", "config file path (key = value lines; $"+EnvConfigFile+" overrides)")
	flagVals := make(map[string]*string, len(opts))
	for _, o := range opts {
		o := o
		if o.key == "no-batching" {
			// Bool flags must accept the bare form (-no-batching); the
			// raw value is recovered from Visit below.
			fs.Bool(o.key, false, o.usage)
			continue
		}
		flagVals[o.key] = fs.String(o.key, "", o.usage)
	}
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("nodeconfig: unexpected positional arguments: %q", fs.Args())
	}

	// Weakest layer first: collect only the flags the user actually set
	// (Visit skips defaults), in the canonical table order.
	fromFlags := make(map[string]string)
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "config" {
			return
		}
		fromFlags[f.Name] = f.Value.String()
	})

	path := *configPath
	if v, ok := lookupEnv(EnvConfigFile); ok && strings.TrimSpace(v) != "" {
		path = strings.TrimSpace(v)
	}
	var fromFile map[string]string
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("nodeconfig: read config file: %w", err)
		}
		fromFile, err = parseFile(string(data), known(opts))
		if err != nil {
			return nil, fmt.Errorf("nodeconfig: config file %s: %w", path, err)
		}
	}

	fromEnv := make(map[string]string)
	for _, o := range opts {
		if v, ok := lookupEnv(EnvVar(o.key)); ok {
			fromEnv[o.key] = v
		}
	}

	cfg := defaults()
	for _, layer := range []struct {
		name   string
		values map[string]string
	}{
		{"flag", fromFlags},
		{"file " + path, fromFile},
		{"env", fromEnv},
	} {
		if err := apply(cfg, opts, layer.values, layer.name); err != nil {
			return nil, err
		}
	}
	if err := Validate(cfg); err != nil {
		return nil, err
	}
	return cfg, nil
}

// known returns the set of valid option keys.
func known(opts []option) map[string]bool {
	set := make(map[string]bool, len(opts))
	for _, o := range opts {
		set[o.key] = true
	}
	return set
}

// apply overlays one source layer onto cfg, in option-table order. A parse
// failure names the key and the layer it came from.
func apply(cfg *Config, opts []option, values map[string]string, source string) error {
	for _, o := range opts {
		raw, ok := values[o.key]
		if !ok {
			continue
		}
		if err := o.set(cfg, raw); err != nil {
			loc := source
			if source == "env" {
				loc = "env " + EnvVar(o.key)
			} else if source == "flag" {
				loc = "flag -" + o.key
			}
			return fmt.Errorf("nodeconfig: bad value for %q (from %s): %w", o.key, loc, err)
		}
	}
	return nil
}

// parseFile reads the `key = value` file format: one pair per line, '#'
// comments, blank lines ignored, optional double quotes around the value.
// Unknown keys and malformed lines are errors naming the line.
func parseFile(content string, valid map[string]bool) (map[string]string, error) {
	out := make(map[string]string)
	for i, line := range strings.Split(content, "\n") {
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("line %d: not a key = value pair: %q", i+1, s)
		}
		key := strings.TrimSpace(s[:eq])
		val := strings.TrimSpace(s[eq+1:])
		if !valid[key] {
			return nil, fmt.Errorf("line %d: unknown key %q", i+1, key)
		}
		if len(val) >= 2 && strings.HasPrefix(val, `"`) && strings.HasSuffix(val, `"`) {
			unq, err := strconv.Unquote(val)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad quoted value for %q: %v", i+1, key, err)
			}
			val = unq
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", i+1, key)
		}
		out[key] = val
	}
	return out, nil
}

// ParsePeers parses "id=addr[,id=addr...]" into a Peer list sorted by ID.
// Duplicate IDs and self-loops are rejected by Validate, not here.
func ParsePeers(raw string) ([]Peer, error) {
	var peers []Peer
	for _, p := range splitNonEmpty(raw) {
		idAddr := strings.SplitN(p, "=", 2)
		if len(idAddr) != 2 || strings.TrimSpace(idAddr[1]) == "" {
			return nil, fmt.Errorf("bad peer %q (want id=addr)", p)
		}
		id, err := strconv.Atoi(strings.TrimSpace(idAddr[0]))
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", idAddr[0], err)
		}
		peers = append(peers, Peer{ID: id, Addr: strings.TrimSpace(idAddr[1])})
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	return peers, nil
}

// Validate checks the merged configuration's semantic invariants. Errors
// name the offending key.
func Validate(c *Config) error {
	if c.NodeID < 0 {
		return fmt.Errorf(`nodeconfig: "id" must be >= 0 (got %d)`, c.NodeID)
	}
	if strings.TrimSpace(c.Listen) == "" {
		return fmt.Errorf(`nodeconfig: "listen" must not be empty`)
	}
	seen := make(map[int]bool, len(c.Peers))
	for _, p := range c.Peers {
		if p.ID < 0 {
			return fmt.Errorf(`nodeconfig: "peers": peer id must be >= 0 (got %d)`, p.ID)
		}
		if p.ID == c.NodeID {
			return fmt.Errorf(`nodeconfig: "peers": peer %d is this node's own id`, p.ID)
		}
		if seen[p.ID] {
			return fmt.Errorf(`nodeconfig: "peers": duplicate peer id %d`, p.ID)
		}
		seen[p.ID] = true
	}
	if c.Period <= 0 {
		return fmt.Errorf(`nodeconfig: "period" must be positive (got %v)`, c.Period)
	}
	if c.PeerWait < 0 {
		return fmt.Errorf(`nodeconfig: "peer-wait" must be >= 0 (got %v)`, c.PeerWait)
	}
	if c.DrainTimeout <= 0 {
		return fmt.Errorf(`nodeconfig: "drain-timeout" must be positive (got %v)`, c.DrainTimeout)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf(`nodeconfig: "batch-size" must be >= 0 (got %d)`, c.BatchSize)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf(`nodeconfig: "queue-depth" must be >= 0 (got %d)`, c.QueueDepth)
	}
	if _, err := parseLogLevel(c.LogLevel); err != nil {
		return fmt.Errorf(`nodeconfig: bad value for "log-level": %w`, err)
	}
	return nil
}

// parseLogLevel validates the level name without importing internal/logging
// (nodeconfig stays a leaf package); the accepted set matches
// logging.ParseLevel exactly, which a nodeconfig test asserts.
func parseLogLevel(s string) (string, error) {
	v := strings.ToLower(strings.TrimSpace(s))
	switch v {
	case "debug", "info", "warn", "warning", "error", "off", "none":
		return v, nil
	}
	return "", fmt.Errorf("unknown level %q (want debug, info, warn, error or off)", s)
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Reference renders the option table as a markdown table (key, flag, env
// var, default, description) — the generator behind OPS.md's configuration
// reference, kept here so the docs and the code share one source of truth.
func Reference() string {
	def := defaults()
	defaultFor := map[string]string{
		"id":            strconv.Itoa(def.NodeID),
		"listen":        def.Listen,
		"ops-listen":    "(disabled)",
		"peers":         "(none)",
		"advertise":     "(none)",
		"publish":       "(none)",
		"subscribe":     "(none)",
		"period":        def.Period.String(),
		"log-level":     def.LogLevel,
		"peer-wait":     def.PeerWait.String(),
		"drain-timeout": def.DrainTimeout.String(),
		"batch-size":    "0 (transport default 64)",
		"flush-window":  "0 (transport default 1ms)",
		"queue-depth":   "0 (transport default 4096)",
		"no-batching":   "false",
	}
	var b strings.Builder
	b.WriteString("| Key | Flag | Env | Default | Description |\n")
	b.WriteString("|-----|------|-----|---------|-------------|\n")
	for _, o := range options() {
		fmt.Fprintf(&b, "| `%s` | `-%s` | `%s` | `%s` | %s |\n",
			o.key, o.key, EnvVar(o.key), defaultFor[o.key], o.usage)
	}
	return b.String()
}
