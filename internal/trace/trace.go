// Package trace generates synthetic SensorScope-style sensor readings — the
// substitute for the proprietary dataset the paper's prototype study uses
// (§4.2). Each station produces periodic readings (snow height, temperature,
// wind speed) following a seeded diurnal pattern with noise and slow drift,
// so that selection predicates over the readings have stable, non-trivial
// selectivities.
package trace

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/stream"
)

// Station is one simulated sensor station.
type Station struct {
	// Name is the station identifier, e.g. "station07".
	Name string
	// Stream is the stream name its readings are published under.
	Stream string
	// SensorType partitions stations into classes ("snow", "weather",
	// "wind"), which the prototype queries filter on.
	SensorType string

	baseSnow float64
	baseTemp float64
	baseWind float64
	drift    float64
	rng      *rand.Rand
}

// Config parameterizes the generator.
type Config struct {
	// Stations is the number of stations (paper: 100 sensors).
	Stations int
	// Deployments is the number of independent deployments (paper: 5
	// source nodes); station i belongs to deployment i % Deployments and
	// publishes on that deployment's stream.
	Deployments int
	// PeriodMillis is the sampling period per station.
	PeriodMillis int64
	Seed         uint64
}

// DefaultConfig mirrors the prototype study's setup.
func DefaultConfig() Config {
	return Config{Stations: 100, Deployments: 5, PeriodMillis: 1000, Seed: 1}
}

// Generator produces tuples for a set of stations.
type Generator struct {
	Cfg      Config
	Stations []*Station
	now      int64
}

// SensorTypes lists the station classes in rotation order.
var SensorTypes = []string{"snow", "weather", "wind"}

// Schema returns the reading schema shared by all deployment streams.
func Schema() stream.Schema {
	return stream.Schema{Attrs: []stream.Attribute{
		{Name: "station", Type: stream.Int},
		{Name: "sensorType", Type: stream.String},
		{Name: "snowHeight", Type: stream.Float},
		{Name: "temperature", Type: stream.Float},
		{Name: "windSpeed", Type: stream.Float},
	}}
}

// StreamName returns the stream name of deployment d.
func StreamName(d int) string { return fmt.Sprintf("Deployment%d", d) }

// New builds a generator with deterministic station characteristics.
func New(cfg Config) (*Generator, error) {
	if cfg.Stations < 1 || cfg.Deployments < 1 {
		return nil, fmt.Errorf("trace: need >=1 stations and deployments, got %d/%d",
			cfg.Stations, cfg.Deployments)
	}
	if cfg.PeriodMillis <= 0 {
		cfg.PeriodMillis = 1000
	}
	g := &Generator{Cfg: cfg}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x7ace))
	for i := 0; i < cfg.Stations; i++ {
		g.Stations = append(g.Stations, &Station{
			Name:       fmt.Sprintf("station%02d", i),
			Stream:     StreamName(i % cfg.Deployments),
			SensorType: SensorTypes[i%len(SensorTypes)],
			baseSnow:   20 + rng.Float64()*60,  // cm
			baseTemp:   -15 + rng.Float64()*20, // °C
			baseWind:   2 + rng.Float64()*10,   // m/s
			drift:      (rng.Float64() - 0.5) * 0.01,
			rng:        rand.New(rand.NewPCG(cfg.Seed+uint64(i)+1, 0x5eed)),
		})
	}
	return g, nil
}

// Next advances time by one period and returns the batch of readings, one
// per station, all stamped with the new timestamp.
func (g *Generator) Next() []stream.Tuple {
	g.now += g.Cfg.PeriodMillis
	out := make([]stream.Tuple, 0, len(g.Stations))
	for i, s := range g.Stations {
		out = append(out, s.reading(i, g.now))
	}
	return out
}

// Now returns the generator's current timestamp.
func (g *Generator) Now() int64 { return g.now }

// reading produces one tuple: a diurnal sinusoid plus drift and noise.
func (s *Station) reading(idx int, now int64) stream.Tuple {
	dayFrac := float64(now%86_400_000) / 86_400_000
	diurnal := math.Sin(2 * math.Pi * dayFrac)
	noise := func(scale float64) float64 { return (s.rng.Float64() - 0.5) * scale }

	snow := s.baseSnow + s.drift*float64(now)/1000 - 2*diurnal + noise(1.5)
	if snow < 0 {
		snow = 0
	}
	temp := s.baseTemp + 5*diurnal + noise(1)
	wind := s.baseWind + 2*math.Abs(diurnal) + noise(2)
	if wind < 0 {
		wind = 0
	}
	attrs := map[string]stream.Value{
		"station":     stream.IntVal(int64(idx)),
		"sensorType":  stream.StringVal(s.SensorType),
		"snowHeight":  stream.FloatVal(snow),
		"temperature": stream.FloatVal(temp),
		"windSpeed":   stream.FloatVal(wind),
	}
	return stream.Tuple{
		Stream:    s.Stream,
		Timestamp: now,
		Attrs:     attrs,
		Size:      16 + 8*len(attrs),
	}
}
