package trace

import (
	"testing"
)

func TestGeneratorBasics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stations = 12
	cfg.Deployments = 3
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	batch := g.Next()
	if len(batch) != 12 {
		t.Fatalf("batch = %d readings", len(batch))
	}
	streams := make(map[string]int)
	for _, r := range batch {
		streams[r.Stream]++
		if r.Timestamp != g.Now() {
			t.Errorf("reading timestamp %d != now %d", r.Timestamp, g.Now())
		}
		for _, attr := range []string{"station", "sensorType", "snowHeight", "temperature", "windSpeed"} {
			if _, ok := r.Attrs[attr]; !ok {
				t.Errorf("reading missing %s", attr)
			}
		}
		if snow := r.Attrs["snowHeight"].F; snow < 0 {
			t.Errorf("negative snow height %v", snow)
		}
		if wind := r.Attrs["windSpeed"].F; wind < 0 {
			t.Errorf("negative wind speed %v", wind)
		}
	}
	if len(streams) != 3 {
		t.Errorf("streams = %v, want 3 deployments", streams)
	}
	for name, n := range streams {
		if n != 4 {
			t.Errorf("stream %s has %d stations, want 4", name, n)
		}
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stations = 6
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ba, bb := a.Next(), b.Next()
	for i := range ba {
		if ba[i].Attrs["snowHeight"].F != bb[i].Attrs["snowHeight"].F {
			t.Fatalf("station %d diverges between identical seeds", i)
		}
	}
}

func TestTimestampsAdvance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stations = 2
	cfg.PeriodMillis = 500
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t1 := g.Next()[0].Timestamp
	t2 := g.Next()[0].Timestamp
	if t2-t1 != 500 {
		t.Errorf("period = %d, want 500", t2-t1)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Stations: 0, Deployments: 1}); err == nil {
		t.Error("zero stations accepted")
	}
	if _, err := New(Config{Stations: 5, Deployments: 0}); err == nil {
		t.Error("zero deployments accepted")
	}
}

func TestSensorTypesRotate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stations = 9
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, s := range g.Stations {
		counts[s.SensorType]++
	}
	for _, typ := range SensorTypes {
		if counts[typ] != 3 {
			t.Errorf("type %s count = %d, want 3", typ, counts[typ])
		}
	}
}
