package query

import (
	"strings"
	"testing"
	"time"
)

func TestParsePaperQ1(t *testing.T) {
	q, err := Parse(`SELECT * FROM R [Now], S [Now] WHERE R.b = S.b AND R.a > 10 AND S.c > 10`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.From) != 2 || q.From[0].Stream != "R" || q.From[1].Stream != "S" {
		t.Fatalf("FROM = %v", q.From)
	}
	if q.From[0].Window.Kind != Now {
		t.Errorf("R window = %v", q.From[0].Window)
	}
	if len(q.Where) != 3 {
		t.Fatalf("WHERE has %d predicates", len(q.Where))
	}
	if joins := q.JoinPredicates(); len(joins) != 1 {
		t.Errorf("join predicates = %v", joins)
	}
	if sels := q.SelectionsFor("R"); len(sels) != 1 || sels[0].String() != "R.a > 10" {
		t.Errorf("selections for R = %v", sels)
	}
}

func TestParsePaperQ3(t *testing.T) {
	q, err := Parse(`SELECT S2.*
		FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2
		WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.From[0].Alias != "S1" || q.From[1].Alias != "S2" {
		t.Fatalf("aliases = %v", q.From)
	}
	if q.From[0].Window.Kind != Range || q.From[0].Window.Span != 30*time.Minute {
		t.Errorf("S1 window = %v", q.From[0].Window)
	}
	if !q.Select[0].Star || q.Select[0].Col.Alias != "S2" {
		t.Errorf("projection = %v", q.Select)
	}
}

func TestParseWindows(t *testing.T) {
	cases := []struct {
		text string
		kind WindowKind
		span time.Duration
	}{
		{"S [Now]", Now, 0},
		{"S [Unbounded]", Unbounded, 0},
		{"S [Range 5 Seconds]", Range, 5 * time.Second},
		{"S [Range 2 Hours]", Range, 2 * time.Hour},
		{"S [Range 1 Day]", Range, 24 * time.Hour},
		{"S [Range 1.5 Minutes]", Range, 90 * time.Second},
		{"S", Unbounded, 0}, // window omitted
	}
	for _, c := range cases {
		q, err := Parse("SELECT * FROM " + c.text)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.text, err)
			continue
		}
		w := q.From[0].Window
		if w.Kind != c.kind || (c.kind == Range && w.Span != c.span) {
			t.Errorf("window of %q = %v", c.text, w)
		}
	}
}

func TestParseOperators(t *testing.T) {
	q, err := Parse(`SELECT * FROM S [Now] WHERE a = 1 AND b != 2 AND c < 3 AND d <= 4 AND e > 5 AND f >= 6 AND g <> 7`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	wantOps := []Op{Eq, Ne, Lt, Le, Gt, Ge, Ne}
	for i, p := range q.Where {
		if p.Op != wantOps[i] {
			t.Errorf("predicate %d op = %v, want %v", i, p.Op, wantOps[i])
		}
	}
}

func TestParseNegativeAndString(t *testing.T) {
	q, err := Parse(`SELECT * FROM S [Now] WHERE temp > -12.5 AND kind = 'snow'`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Where[0].Right.Lit.F != -12.5 {
		t.Errorf("negative literal = %v", q.Where[0].Right.Lit)
	}
	if q.Where[1].Right.Lit.S != "snow" {
		t.Errorf("string literal = %v", q.Where[1].Right.Lit)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`SELECT`,
		`SELECT * FROM`,
		`SELECT FROM S [Now]`,
		`SELECT * FROM S [Range]`,
		`SELECT * FROM S [Range 5 Lightyears]`,
		`SELECT * FROM S [Now] WHERE`,
		`SELECT * FROM S [Now] WHERE a >`,
		`SELECT * FROM S [Now] WHERE a ! b`,
		`SELECT * FROM R [Now], S [Now] WHERE a > 1`, // ambiguous column
		`SELECT a FROM R [Now], S [Now]`,             // ambiguous projection
		`SELECT * FROM S [Now] extra garbage ,`,
		`SELECT * FROM S [Now] S, T [Now] S`, // duplicate alias
		`SELECT X.a FROM S [Now]`,            // unknown alias
		`SELECT * FROM S [Now] WHERE a = 'unterminated`,
	}
	for _, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", text)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	texts := []string{
		`SELECT * FROM R [Now], S [Now] WHERE R.b = S.b AND R.a > 10`,
		`SELECT S1.snowHeight, S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 WHERE S1.snowHeight >= 10`,
	}
	for _, text := range texts {
		q1, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", q1.String(), err)
		}
		if q1.Signature() != q2.Signature() {
			t.Errorf("round-trip changed query:\n  %s\n  %s", q1.Signature(), q2.Signature())
		}
	}
}

func TestSignatureOrderInsensitive(t *testing.T) {
	a := MustParse(`SELECT * FROM S [Now] WHERE a > 1 AND b < 2`)
	b := MustParse(`SELECT * FROM S [Now] WHERE b < 2 AND a > 1`)
	if a.Signature() != b.Signature() {
		t.Errorf("signatures differ:\n%s\n%s", a.Signature(), b.Signature())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("not a query")
}

func TestValidateCatchesUnknownAliasInWhere(t *testing.T) {
	q := MustParse(`SELECT * FROM S [Now]`)
	q.Where = append(q.Where, Predicate{
		Left:  Operand{Col: &ColRef{Alias: "ZZ", Attr: "a"}},
		Op:    Gt,
		Right: Operand{Col: &ColRef{Alias: "S", Attr: "a"}},
	})
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "ZZ") {
		t.Errorf("Validate = %v, want unknown-alias error", err)
	}
}
