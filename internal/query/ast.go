// Package query implements the CQL-like continuous query dialect used
// throughout the paper (Table 1): SELECT projections over windowed stream
// references with conjunctive WHERE predicates. It provides the parser, the
// predicate algebra, and the window-based containment and merging theorems
// that COSMOS uses to share result-stream delivery (§2.1).
package query

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/stream"
)

// WindowKind distinguishes the window specifications of the dialect.
type WindowKind int

// Window kinds. Now is the degenerate zero-length window; Range carries a
// span; Unbounded admits the whole history.
const (
	Now WindowKind = iota + 1
	Range
	Unbounded
)

// Window is a time-based sliding window attached to a stream reference.
type Window struct {
	Kind WindowKind
	Span time.Duration // meaningful only for Range
}

// Covers reports whether w admits at least the tuples of o: a window covers
// another if its span is at least as long.
func (w Window) Covers(o Window) bool {
	return w.spanOrInf() >= o.spanOrInf()
}

// MaxWindow returns the wider of the two windows.
func MaxWindow(a, b Window) Window {
	if a.Covers(b) {
		return a
	}
	return b
}

func (w Window) spanOrInf() time.Duration {
	switch w.Kind {
	case Now:
		return 0
	case Unbounded:
		return time.Duration(1<<63 - 1)
	default:
		return w.Span
	}
}

func (w Window) String() string {
	switch w.Kind {
	case Now:
		return "[Now]"
	case Unbounded:
		return "[Unbounded]"
	default:
		n, unit := spanUnits(w.Span)
		return fmt.Sprintf("[Range %g %s]", n, unit)
	}
}

// spanUnits renders a duration in the largest CQL unit that divides it, so
// String output parses back losslessly.
func spanUnits(d time.Duration) (float64, string) {
	day := 24 * time.Hour
	switch {
	case d >= day && d%day == 0:
		return float64(d / day), "Days"
	case d >= time.Hour && d%time.Hour == 0:
		return float64(d / time.Hour), "Hours"
	case d >= time.Minute && d%time.Minute == 0:
		return float64(d / time.Minute), "Minutes"
	case d >= time.Second && d%time.Second == 0:
		return float64(d / time.Second), "Seconds"
	default:
		return float64(d) / float64(time.Millisecond), "Milliseconds"
	}
}

// StreamRef is one entry of the FROM clause: a stream name, a window, and an
// optional alias (defaulting to the stream name).
type StreamRef struct {
	Stream string
	Alias  string
	Window Window
}

func (r StreamRef) String() string {
	if r.Alias != "" && r.Alias != r.Stream {
		return fmt.Sprintf("%s %s %s", r.Stream, r.Window, r.Alias)
	}
	return fmt.Sprintf("%s %s", r.Stream, r.Window)
}

// ColRef names an attribute of an aliased stream, e.g. S1.snowHeight.
type ColRef struct {
	Alias string
	Attr  string
}

func (c ColRef) String() string {
	if c.Alias == "" {
		return c.Attr
	}
	return c.Alias + "." + c.Attr
}

// Projection is one SELECT item: either Alias.* (Star) or a single column.
type Projection struct {
	Star bool
	Col  ColRef // for Star, only Col.Alias is meaningful ("" = bare *)
}

func (p Projection) String() string {
	if p.Star {
		if p.Col.Alias == "" {
			return "*"
		}
		return p.Col.Alias + ".*"
	}
	return p.Col.String()
}

// Op is a comparison operator.
type Op int

// Comparison operators.
const (
	Eq Op = iota + 1
	Ne
	Lt
	Le
	Gt
	Ge
)

var opNames = map[Op]string{Eq: "=", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Flip returns the operator with swapped operand order (a < b ⇔ b > a).
func (o Op) Flip() Op {
	switch o {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	default:
		return o
	}
}

// Eval applies the operator to a three-way comparison result.
func (o Op) Eval(cmp int) bool {
	switch o {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	default:
		return false
	}
}

// Operand is either a column reference or a literal value.
type Operand struct {
	Col *ColRef
	Lit *stream.Value
}

// IsCol reports whether the operand is a column reference.
func (o Operand) IsCol() bool { return o.Col != nil }

func (o Operand) String() string {
	if o.Col != nil {
		return o.Col.String()
	}
	if o.Lit != nil {
		return o.Lit.String()
	}
	return "?"
}

// Predicate is a binary comparison. The WHERE clause is a conjunction of
// predicates. A predicate with two column operands referencing different
// aliases is a join predicate; one column and one literal is a selection.
type Predicate struct {
	Left  Operand
	Op    Op
	Right Operand
}

// IsJoin reports whether the predicate compares columns of two different
// aliases.
func (p Predicate) IsJoin() bool {
	return p.Left.IsCol() && p.Right.IsCol() && p.Left.Col.Alias != p.Right.Col.Alias
}

// IsSelection reports whether the predicate compares a column to a literal.
func (p Predicate) IsSelection() bool {
	return p.Left.IsCol() != p.Right.IsCol()
}

// Normalize returns the predicate with a canonical operand order: selections
// carry the column on the left; column-column comparisons order the two
// columns lexicographically.
func (p Predicate) Normalize() Predicate {
	switch {
	case !p.Left.IsCol() && p.Right.IsCol():
		return Predicate{Left: p.Right, Op: p.Op.Flip(), Right: p.Left}
	case p.Left.IsCol() && p.Right.IsCol():
		if p.Right.Col.String() < p.Left.Col.String() {
			return Predicate{Left: p.Right, Op: p.Op.Flip(), Right: p.Left}
		}
	}
	return p
}

func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
}

// Query is a parsed continuous query.
type Query struct {
	Name   string // assigned by the submitter; not part of the text
	Select []Projection
	From   []StreamRef
	Where  []Predicate
}

// StreamNames returns the distinct source stream names in FROM order.
func (q *Query) StreamNames() []string {
	seen := make(map[string]bool, len(q.From))
	out := make([]string, 0, len(q.From))
	for _, r := range q.From {
		if !seen[r.Stream] {
			seen[r.Stream] = true
			out = append(out, r.Stream)
		}
	}
	return out
}

// RefByAlias returns the FROM entry with the given alias.
func (q *Query) RefByAlias(alias string) (StreamRef, bool) {
	for _, r := range q.From {
		if r.Alias == alias {
			return r, true
		}
	}
	return StreamRef{}, false
}

// SelectionsFor returns the selection predicates on the given alias.
func (q *Query) SelectionsFor(alias string) []Predicate {
	var out []Predicate
	for _, p := range q.Where {
		p = p.Normalize()
		if p.IsSelection() && p.Left.Col.Alias == alias {
			out = append(out, p)
		}
	}
	return out
}

// JoinPredicates returns the join predicates of the query.
func (q *Query) JoinPredicates() []Predicate {
	var out []Predicate
	for _, p := range q.Where {
		if p.IsJoin() {
			out = append(out, p)
		}
	}
	return out
}

// Validate checks structural consistency: non-empty SELECT and FROM, unique
// aliases, and predicates/projections referencing known aliases.
func (q *Query) Validate() error {
	if len(q.Select) == 0 {
		return fmt.Errorf("query %s: empty SELECT list", q.Name)
	}
	if len(q.From) == 0 {
		return fmt.Errorf("query %s: empty FROM list", q.Name)
	}
	aliases := make(map[string]bool, len(q.From))
	for _, r := range q.From {
		if r.Alias == "" {
			return fmt.Errorf("query %s: stream %q missing alias", q.Name, r.Stream)
		}
		if aliases[r.Alias] {
			return fmt.Errorf("query %s: duplicate alias %q", q.Name, r.Alias)
		}
		aliases[r.Alias] = true
	}
	check := func(c *ColRef) error {
		if c == nil || c.Alias == "" {
			return nil
		}
		if !aliases[c.Alias] {
			return fmt.Errorf("query %s: unknown alias %q", q.Name, c.Alias)
		}
		return nil
	}
	for _, p := range q.Select {
		if !p.Star || p.Col.Alias != "" {
			if err := check(&p.Col); err != nil {
				return err
			}
		}
	}
	for _, p := range q.Where {
		if err := check(p.Left.Col); err != nil {
			return err
		}
		if err := check(p.Right.Col); err != nil {
			return err
		}
	}
	return nil
}

// String renders the query back to (canonicalized) CQL text.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, p := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString(" FROM ")
	for i, r := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.String())
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	return b.String()
}

// Signature returns an order-insensitive canonical form of the query used
// for duplicate detection: sorted FROM refs, sorted projections, sorted
// normalized predicates.
func (q *Query) Signature() string {
	froms := make([]string, len(q.From))
	for i, r := range q.From {
		froms[i] = r.String()
	}
	sort.Strings(froms)
	sels := make([]string, len(q.Select))
	for i, p := range q.Select {
		sels[i] = p.String()
	}
	sort.Strings(sels)
	preds := make([]string, len(q.Where))
	for i, p := range q.Where {
		preds[i] = p.Normalize().String()
	}
	sort.Strings(preds)
	return strings.Join(sels, ",") + "|" + strings.Join(froms, ",") + "|" + strings.Join(preds, " AND ")
}
