package query

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

// randomQuery draws a random single- or two-stream query over streams R,S
// with numeric predicates on attributes a,b and (for joins) an equi-join on
// k, so that merge compatibility is common but not universal.
func randomQuery(r *rand.Rand, name string) *Query {
	twoStreams := r.IntN(2) == 0
	var text string
	windows := []string{"[Now]", "[Range 10 Minutes]", "[Range 1 Hour]"}
	if twoStreams {
		text = fmt.Sprintf("SELECT R.a, S.b FROM R %s R, S %s S WHERE R.k = S.k",
			windows[r.IntN(len(windows))], windows[r.IntN(len(windows))])
	} else {
		text = fmt.Sprintf("SELECT * FROM R %s R", windows[r.IntN(len(windows))])
	}
	q := MustParse(text)
	q.Name = name
	// Add 0-2 numeric selections.
	attrs := []string{"a", "b"}
	ops := []Op{Gt, Ge, Lt, Le}
	for i := 0; i < r.IntN(3); i++ {
		lit := stream.FloatVal(float64(r.IntN(40) - 20))
		q.Where = append(q.Where, Predicate{
			Left:  Operand{Col: &ColRef{Alias: "R", Attr: attrs[r.IntN(len(attrs))]}},
			Op:    ops[r.IntN(len(ops))],
			Right: Operand{Lit: &lit},
		})
	}
	return q
}

// TestQuickMergeContainsInputs: whenever Merge succeeds, the superset
// contains both inputs and the residuals only ever tighten (never relax)
// the superset.
func TestQuickMergeContainsInputs(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 61))
		q1 := randomQuery(r, "q1")
		q2 := randomQuery(r, "q2")
		mr, err := Merge(q1, q2)
		if err != nil {
			return true // incompatible pair; nothing to verify
		}
		if !Contains(mr.Super, q1) || !Contains(mr.Super, q2) {
			t.Logf("superset %s does not contain %s / %s", mr.Super, q1, q2)
			return false
		}
		for _, res := range mr.Residuals {
			// Residual windows must be no wider than the superset's.
			for alias, w := range res.Windows {
				sw, ok := mr.Super.RefByAlias(alias)
				if !ok || !sw.Window.Covers(w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestQuickContainmentTransitive: containment must be transitive on
// randomly nested queries built by progressive weakening.
func TestQuickContainmentTransitive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 67))
		// c (strongest) ⊑ b ⊑ a (weakest) by construction.
		base := float64(r.IntN(10))
		mk := func(bound float64, window string) *Query {
			return MustParse(fmt.Sprintf(
				"SELECT * FROM R %s R WHERE R.a > %g", window, bound))
		}
		a := mk(base, "[Range 1 Hour]")
		b := mk(base+float64(r.IntN(5)), "[Range 30 Minutes]")
		c := mk(base+5+float64(r.IntN(5)), "[Range 10 Minutes]")
		if !Contains(a, b) || !Contains(b, c) {
			return false
		}
		return Contains(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickMergeCommutative: Merge(q1,q2) and Merge(q2,q1) produce
// equivalent supersets.
func TestQuickMergeCommutative(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 71))
		q1 := randomQuery(r, "q1")
		q2 := randomQuery(r, "q2")
		m12, err1 := Merge(q1, q2)
		m21, err2 := Merge(q2, q1)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return Equivalent(m12.Super, m21.Super)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
