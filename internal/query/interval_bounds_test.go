package query

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/stream"
)

// randomBoundInterval draws an interval through Constrain so open/closed
// combinations and contradictions arise the same way compiled subscription
// filters produce them.
func randomBoundInterval(r *rand.Rand) Interval {
	iv := FullInterval()
	ops := []Op{Eq, Ne, Lt, Le, Gt, Ge}
	for i := 0; i < r.IntN(4); i++ {
		iv = iv.Constrain(ops[r.IntN(len(ops))], stream.FloatVal(float64(r.IntN(11)-5)))
	}
	return iv
}

// TestAdmitsBoundsSupersetOfContainsFloat: the pure-bound conjunction
// AdmitsLower ∧ AdmitsUpper admits every value ContainsFloat admits — the
// superset guarantee candidate pruning relies on.
func TestAdmitsBoundsSupersetOfContainsFloat(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		r := rand.New(rand.NewPCG(seed, 11))
		iv := randomBoundInterval(r)
		for trial := 0; trial < 40; trial++ {
			x := float64(r.IntN(15) - 7)
			if iv.ContainsFloat(x) && !(iv.AdmitsLower(x) && iv.AdmitsUpper(x)) {
				t.Fatalf("seed %d: %s contains %g but bounds reject it", seed, iv, x)
			}
		}
	}
}

// TestBoundOrderMonotone: sorted by LowerLess, AdmitsLower(x) is a prefix
// (monotone non-increasing); sorted by UpperLess, AdmitsUpper(x) is a
// suffix. These are the invariants the prune index's binary searches and
// stabbing-tree descent use.
func TestBoundOrderMonotone(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		r := rand.New(rand.NewPCG(seed, 13))
		ivs := make([]Interval, 30)
		for i := range ivs {
			ivs[i] = randomBoundInterval(r)
		}
		for trial := 0; trial < 20; trial++ {
			x := float64(r.IntN(15) - 7)
			sort.Slice(ivs, func(i, j int) bool { return LowerLess(ivs[i], ivs[j]) })
			rejected := false
			for _, iv := range ivs {
				if !iv.AdmitsLower(x) {
					rejected = true
				} else if rejected {
					t.Fatalf("seed %d: AdmitsLower(%g) not monotone over LowerLess order", seed, x)
				}
			}
			sort.Slice(ivs, func(i, j int) bool { return UpperLess(ivs[i], ivs[j]) })
			admitted := false
			for _, iv := range ivs {
				if iv.AdmitsUpper(x) {
					admitted = true
				} else if admitted {
					t.Fatalf("seed %d: AdmitsUpper(%g) not monotone over UpperLess order", seed, x)
				}
			}
		}
	}
}

// TestUpperMax: the UpperMax of a set admits x iff some member admits x.
func TestUpperMax(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		r := rand.New(rand.NewPCG(seed, 17))
		n := 1 + r.IntN(8)
		ivs := make([]Interval, n)
		max := Interval{Hi: math.Inf(-1), HiOpen: true}
		for i := range ivs {
			ivs[i] = randomBoundInterval(r)
			max = UpperMax(max, ivs[i])
		}
		for trial := 0; trial < 20; trial++ {
			x := float64(r.IntN(15) - 7)
			any := false
			for _, iv := range ivs {
				if iv.AdmitsUpper(x) {
					any = true
				}
			}
			if got := max.AdmitsUpper(x); got != any {
				t.Fatalf("seed %d: UpperMax admits %g = %v, want %v", seed, x, got, any)
			}
		}
	}
}
