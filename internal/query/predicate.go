package query

import (
	"fmt"
	"math"

	"repro/internal/stream"
)

// EvalSelection evaluates a selection predicate against a tuple belonging to
// the predicate's alias. It returns false when the attribute is absent.
func EvalSelection(p Predicate, t stream.Tuple) bool {
	p = p.Normalize()
	if !p.IsSelection() {
		return false
	}
	v, ok := t.Get(p.Left.Col.Attr)
	if !ok {
		return false
	}
	return p.Op.Eval(v.Compare(*p.Right.Lit))
}

// EvalJoin evaluates a join predicate against a pair of tuples bound to the
// predicate's two aliases.
func EvalJoin(p Predicate, left, right stream.Tuple, leftAlias string) bool {
	if !p.IsJoin() {
		return false
	}
	bind := func(c *ColRef) (stream.Value, bool) {
		if c.Alias == leftAlias {
			return left.Get(c.Attr)
		}
		return right.Get(c.Attr)
	}
	lv, ok := bind(p.Left.Col)
	if !ok {
		return false
	}
	rv, ok := bind(p.Right.Col)
	if !ok {
		return false
	}
	return p.Op.Eval(lv.Compare(rv))
}

// Interval is a numeric constraint set over one column: an interval with
// optionally open bounds, plus an optional disequality set. It is the
// normal form used to decide implication between conjunctions of selection
// predicates.
type Interval struct {
	Lo, Hi         float64
	LoOpen, HiOpen bool
	NotEq          []float64 // excluded points (from != predicates)
	EqString       *string   // exact string constraint, if any
	NeStrings      []string  // excluded strings
	contradictory  bool
}

// FullInterval returns the unconstrained interval.
func FullInterval() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
}

// Empty reports whether the constraint set is unsatisfiable.
func (iv Interval) Empty() bool {
	if iv.contradictory {
		return true
	}
	if iv.Lo > iv.Hi {
		return true
	}
	if iv.Lo == iv.Hi {
		if iv.LoOpen || iv.HiOpen {
			return true
		}
		for _, x := range iv.NotEq {
			if x == iv.Lo {
				return true
			}
		}
	}
	return false
}

// Constrain tightens the interval with (op, literal).
func (iv Interval) Constrain(op Op, lit stream.Value) Interval {
	if lit.Type == stream.String {
		switch op {
		case Eq:
			if iv.EqString != nil && *iv.EqString != lit.S {
				iv.contradictory = true
			}
			s := lit.S
			iv.EqString = &s
			for _, ne := range iv.NeStrings {
				if ne == lit.S {
					iv.contradictory = true
				}
			}
		case Ne:
			if iv.EqString != nil && *iv.EqString == lit.S {
				iv.contradictory = true
			}
			iv.NeStrings = append(iv.NeStrings, lit.S)
		default:
			// Ordered string comparisons are rare; treat as opaque
			// (no tightening), which is sound for implication tests.
		}
		return iv
	}
	v := lit.F
	switch op {
	case Eq:
		// An equality at (or beyond) an open bound contradicts it:
		// {x > 5, x == 5} admits nothing. Record the contradiction
		// before pinning, or the pinned [v,v] would silently admit v.
		if v < iv.Lo || (v == iv.Lo && iv.LoOpen) || v > iv.Hi || (v == iv.Hi && iv.HiOpen) {
			iv.contradictory = true
		}
		if v > iv.Lo || (v == iv.Lo && iv.LoOpen) {
			iv.Lo, iv.LoOpen = v, false
		}
		if v < iv.Hi || (v == iv.Hi && iv.HiOpen) {
			iv.Hi, iv.HiOpen = v, false
		}
	case Ne:
		iv.NotEq = append(iv.NotEq, v)
	case Lt:
		if v < iv.Hi || (v == iv.Hi && !iv.HiOpen) {
			iv.Hi, iv.HiOpen = v, true
		}
	case Le:
		if v < iv.Hi {
			iv.Hi, iv.HiOpen = v, false
		}
	case Gt:
		if v > iv.Lo || (v == iv.Lo && !iv.LoOpen) {
			iv.Lo, iv.LoOpen = v, true
		}
	case Ge:
		if v > iv.Lo {
			iv.Lo, iv.LoOpen = v, false
		}
	}
	return iv
}

// Implies reports whether every point satisfying iv also satisfies
// (op, lit). An empty iv implies everything.
func (iv Interval) Implies(op Op, lit stream.Value) bool {
	if iv.Empty() {
		return true
	}
	if lit.Type == stream.String {
		switch op {
		case Eq:
			return iv.EqString != nil && *iv.EqString == lit.S
		case Ne:
			if iv.EqString != nil && *iv.EqString != lit.S {
				return true
			}
			for _, ne := range iv.NeStrings {
				if ne == lit.S {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	v := lit.F
	switch op {
	case Eq:
		return iv.Lo == v && iv.Hi == v && !iv.LoOpen && !iv.HiOpen
	case Ne:
		if v < iv.Lo || v > iv.Hi {
			return true
		}
		if v == iv.Lo && iv.LoOpen {
			return true
		}
		if v == iv.Hi && iv.HiOpen {
			return true
		}
		for _, x := range iv.NotEq {
			if x == v {
				return true
			}
		}
		return false
	case Lt:
		return iv.Hi < v || (iv.Hi == v && iv.HiOpen)
	case Le:
		return iv.Hi <= v
	case Gt:
		return iv.Lo > v || (iv.Lo == v && iv.LoOpen)
	case Ge:
		return iv.Lo >= v
	default:
		return false
	}
}

// ContainsFloat reports whether the numeric value x satisfies every
// constraint of the interval — the point-membership dual of Implies. It
// reproduces, for a Float/Int-typed attribute value, the conjunction of the
// selection predicates folded into the interval by Constrain: each numeric
// comparison op tightens exactly one bound (or the disequality set), so
// membership in the resulting set equals evaluating every predicate in turn.
// A string-equality constraint never admits a numeric value (Value.Compare
// orders all numerics before all strings), and excluded strings never reject
// one. The broker matching index uses this to evaluate a subscription's
// per-attribute filter conjunction with one call.
func (iv Interval) ContainsFloat(x float64) bool {
	if iv.contradictory || iv.EqString != nil {
		return false
	}
	if x < iv.Lo || (x == iv.Lo && iv.LoOpen) {
		return false
	}
	if x > iv.Hi || (x == iv.Hi && iv.HiOpen) {
		return false
	}
	for _, ne := range iv.NotEq {
		if ne == x {
			return false
		}
	}
	return true
}

// AdmitsLower reports whether x satisfies the interval's lower-bound
// constraint alone (x is to the right of, or on a closed, lower endpoint).
// Together with AdmitsUpper it decomposes the pure-bound part of
// ContainsFloat: AdmitsLower ∧ AdmitsUpper is ContainsFloat minus the
// disequality set, string constraints and the contradiction flag — a
// superset test, which is what candidate pruning needs (the exact matcher
// still runs on whatever the bounds admit).
func (iv Interval) AdmitsLower(x float64) bool {
	return x > iv.Lo || (x == iv.Lo && !iv.LoOpen)
}

// AdmitsUpper reports whether x satisfies the interval's upper-bound
// constraint alone.
func (iv Interval) AdmitsUpper(x float64) bool {
	return x < iv.Hi || (x == iv.Hi && !iv.HiOpen)
}

// LowerLess orders intervals by lower bound: ascending Lo, with a closed
// bound before an open one at the same value. Along this order AdmitsLower
// for any fixed x is monotone non-increasing (once a bound rejects x, every
// later bound rejects it too), which is what makes a sorted-bound prefix
// count and a lower-bound-sorted stabbing tree correct.
func LowerLess(a, b Interval) bool {
	if a.Lo != b.Lo {
		return a.Lo < b.Lo
	}
	return !a.LoOpen && b.LoOpen
}

// UpperLess orders intervals by upper bound: ascending Hi, with an open
// bound before a closed one at the same value. Along this order AdmitsUpper
// for any fixed x is monotone non-decreasing.
func UpperLess(a, b Interval) bool {
	if a.Hi != b.Hi {
		return a.Hi < b.Hi
	}
	return a.HiOpen && !b.HiOpen
}

// UpperMax returns the interval whose upper bound admits more (the
// UpperLess-greater of the two) — the subtree augmentation a stabbing tree
// keeps to prune descents.
func UpperMax(a, b Interval) Interval {
	if UpperLess(a, b) {
		return b
	}
	return a
}

// SelectionIntervalsByAttr folds a conjunction of selection predicates over
// flat (alias-free) tuples into one Interval per bare attribute name — the
// Pub/Sub counterpart of ColumnIntervals, whose keys carry aliases.
// Non-selection predicates are ignored.
func SelectionIntervalsByAttr(preds []Predicate) map[string]Interval {
	out := make(map[string]Interval)
	for _, p := range preds {
		p = p.Normalize()
		if !p.IsSelection() || p.Right.Lit == nil {
			continue
		}
		key := p.Left.Col.Attr
		iv, ok := out[key]
		if !ok {
			iv = FullInterval()
		}
		out[key] = iv.Constrain(p.Op, *p.Right.Lit)
	}
	return out
}

// NumericSelection reports whether p compares a column to a finite numeric
// literal — the predicate class whose conjunctions compile exactly into
// Interval constraints evaluable with ContainsFloat. It returns the
// normalized (column-on-the-left) form. A missing literal (a malformed
// column-versus-nothing predicate, which IsSelection still reports true
// for) is rejected so callers fall back to raw evaluation. String literals
// are excluded because mixed numeric/string comparisons follow
// Value.Compare's type ordering, and NaN literals because every comparison
// against NaN evaluates through Compare's cmp==0 branch, which no interval
// bound can express.
func NumericSelection(p Predicate) (Predicate, bool) {
	p = p.Normalize()
	if !p.IsSelection() || p.Right.Lit == nil || p.Right.Lit.Type == stream.String || math.IsNaN(p.Right.Lit.F) {
		return p, false
	}
	switch p.Op {
	case Eq, Ne, Lt, Le, Gt, Ge:
		return p, true
	}
	return p, false
}

// Union widens iv to cover both iv and o — the weakest numeric constraint
// implied by both conjuncts. Used when merging two queries: the merged query
// must admit the union of the two result sets.
func (iv Interval) Union(o Interval) Interval {
	out := FullInterval()
	switch {
	case iv.Lo > o.Lo:
		out.Lo, out.LoOpen = o.Lo, o.LoOpen
	case o.Lo > iv.Lo:
		out.Lo, out.LoOpen = iv.Lo, iv.LoOpen
	default:
		out.Lo, out.LoOpen = iv.Lo, iv.LoOpen && o.LoOpen
	}
	switch {
	case iv.Hi < o.Hi:
		out.Hi, out.HiOpen = o.Hi, o.HiOpen
	case o.Hi < iv.Hi:
		out.Hi, out.HiOpen = iv.Hi, iv.HiOpen
	default:
		out.Hi, out.HiOpen = iv.Hi, iv.HiOpen && o.HiOpen
	}
	if iv.EqString != nil && o.EqString != nil && *iv.EqString == *o.EqString {
		s := *iv.EqString
		out.EqString = &s
	}
	return out
}

// Predicates converts the interval back to a minimal predicate list over the
// given column. Unbounded sides produce no predicate.
func (iv Interval) Predicates(col ColRef) []Predicate {
	var out []Predicate
	mk := func(op Op, v stream.Value) Predicate {
		lit := v
		c := col
		return Predicate{Left: Operand{Col: &c}, Op: op, Right: Operand{Lit: &lit}}
	}
	if iv.EqString != nil {
		return []Predicate{mk(Eq, stream.StringVal(*iv.EqString))}
	}
	if iv.Lo == iv.Hi && !math.IsInf(iv.Lo, 0) && !iv.LoOpen && !iv.HiOpen {
		return []Predicate{mk(Eq, stream.FloatVal(iv.Lo))}
	}
	if !math.IsInf(iv.Lo, -1) {
		if iv.LoOpen {
			out = append(out, mk(Gt, stream.FloatVal(iv.Lo)))
		} else {
			out = append(out, mk(Ge, stream.FloatVal(iv.Lo)))
		}
	}
	if !math.IsInf(iv.Hi, 1) {
		if iv.HiOpen {
			out = append(out, mk(Lt, stream.FloatVal(iv.Hi)))
		} else {
			out = append(out, mk(Le, stream.FloatVal(iv.Hi)))
		}
	}
	return out
}

// ColumnIntervals builds the per-column normal form of a query's selection
// predicates, keyed by "alias.attr".
func ColumnIntervals(q *Query) map[string]Interval {
	out := make(map[string]Interval)
	for _, p := range q.Where {
		p = p.Normalize()
		if !p.IsSelection() {
			continue
		}
		key := p.Left.Col.String()
		iv, ok := out[key]
		if !ok {
			iv = FullInterval()
		}
		out[key] = iv.Constrain(p.Op, *p.Right.Lit)
	}
	return out
}

// ImpliesPredicate reports whether the conjunction captured by intervals
// (plus the join predicate set joins) implies predicate p. Join predicates
// are implied only by syntactic presence after normalization.
func ImpliesPredicate(intervals map[string]Interval, joins map[string]bool, p Predicate) bool {
	p = p.Normalize()
	if p.IsSelection() {
		iv, ok := intervals[p.Left.Col.String()]
		if !ok {
			iv = FullInterval()
		}
		return iv.Implies(p.Op, *p.Right.Lit)
	}
	return joins[p.String()]
}

// JoinSet returns the normalized join predicates of q as a string set.
func JoinSet(q *Query) map[string]bool {
	out := make(map[string]bool)
	for _, p := range q.JoinPredicates() {
		out[p.Normalize().String()] = true
	}
	return out
}

// Selectivity estimates the fraction of a value domain [lo,hi] admitted by
// the interval, used by the cost model to size filtered stream rates.
func (iv Interval) Selectivity(lo, hi float64) float64 {
	if iv.Empty() || hi <= lo {
		return 0
	}
	l := math.Max(iv.Lo, lo)
	h := math.Min(iv.Hi, hi)
	if h <= l {
		return 0
	}
	return (h - l) / (hi - lo)
}

func (iv Interval) String() string {
	lb, rb := "[", "]"
	if iv.LoOpen {
		lb = "("
	}
	if iv.HiOpen {
		rb = ")"
	}
	return fmt.Sprintf("%s%g,%g%s", lb, iv.Lo, iv.Hi, rb)
}
