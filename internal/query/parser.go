package query

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/stream"
)

// Parse parses a query in the paper's CQL dialect, e.g.
//
//	SELECT S2.*, S1.snowHeight FROM Station1 [Range 30 Minutes] S1,
//	Station2 [Now] S2 WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10
//
// Grammar:
//
//	query      = "SELECT" selectList "FROM" fromList ["WHERE" predicates]
//	selectList = selectItem {"," selectItem}
//	selectItem = "*" | ident "." "*" | ident ["." ident]
//	fromList   = streamRef {"," streamRef}
//	streamRef  = ident "[" window "]" [ident]
//	window     = "Now" | "Unbounded" | "Range" number unit
//	unit       = "Seconds"|"Minutes"|"Hours"|"Days" (singular accepted)
//	predicates = predicate {"AND" predicate}
//	predicate  = operand cmp operand
//	operand    = ["-"] number | string | ident ["." ident]
//	cmp        = "=" | "!=" | "<" | "<=" | ">" | ">="
//
// Unqualified column references resolve to the single FROM alias when the
// query has exactly one stream, and are an error otherwise.
func Parse(text string) (*Query, error) {
	toks, err := lex(text)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: text}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse parses text and panics on error. It exists for tests and
// package-level example construction only.
func MustParse(text string) *Query {
	q, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("query: expected %s, got %s at offset %d", kw, p.cur(), p.cur().pos)
	}
	return nil
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	t := p.cur()
	if t.kind != k {
		return token{}, fmt.Errorf("query: expected %s, got %s at offset %d", what, t, t.pos)
	}
	p.i++
	return t, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseFromList()
	if err != nil {
		return nil, err
	}
	q := &Query{Select: sel, From: from}
	if p.keyword("WHERE") {
		preds, err := p.parsePredicates(q)
		if err != nil {
			return nil, err
		}
		q.Where = preds
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input %s at offset %d", p.cur(), p.cur().pos)
	}
	if err := p.resolveSelect(q); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseSelectList() ([]Projection, error) {
	var out []Projection
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		out = append(out, item)
		if p.cur().kind != tokComma {
			return out, nil
		}
		p.i++
	}
}

func (p *parser) parseSelectItem() (Projection, error) {
	if p.cur().kind == tokStar {
		p.i++
		return Projection{Star: true}, nil
	}
	id, err := p.expect(tokIdent, "identifier")
	if err != nil {
		return Projection{}, err
	}
	if p.cur().kind != tokDot {
		// Unqualified column; alias resolved after FROM is known.
		return Projection{Col: ColRef{Attr: id.text}}, nil
	}
	p.i++
	if p.cur().kind == tokStar {
		p.i++
		return Projection{Star: true, Col: ColRef{Alias: id.text}}, nil
	}
	attr, err := p.expect(tokIdent, "attribute name")
	if err != nil {
		return Projection{}, err
	}
	return Projection{Col: ColRef{Alias: id.text, Attr: attr.text}}, nil
}

func (p *parser) parseFromList() ([]StreamRef, error) {
	var out []StreamRef
	for {
		ref, err := p.parseStreamRef()
		if err != nil {
			return nil, err
		}
		out = append(out, ref)
		if p.cur().kind != tokComma {
			return out, nil
		}
		p.i++
	}
}

func (p *parser) parseStreamRef() (StreamRef, error) {
	name, err := p.expect(tokIdent, "stream name")
	if err != nil {
		return StreamRef{}, err
	}
	ref := StreamRef{Stream: name.text, Alias: name.text, Window: Window{Kind: Unbounded}}
	if p.cur().kind == tokLBracket {
		p.i++
		w, err := p.parseWindow()
		if err != nil {
			return StreamRef{}, err
		}
		ref.Window = w
		if _, err := p.expect(tokRBracket, "]"); err != nil {
			return StreamRef{}, err
		}
	}
	if p.cur().kind == tokIdent && !isKeyword(p.cur().text) {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func isKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "SELECT", "FROM", "WHERE", "AND":
		return true
	}
	return false
}

func (p *parser) parseWindow() (Window, error) {
	switch {
	case p.keyword("Now"):
		return Window{Kind: Now}, nil
	case p.keyword("Unbounded"):
		return Window{Kind: Unbounded}, nil
	case p.keyword("Range"):
		num, err := p.expect(tokNumber, "window length")
		if err != nil {
			return Window{}, err
		}
		n, err := strconv.ParseFloat(num.text, 64)
		if err != nil {
			return Window{}, fmt.Errorf("query: bad window length %q: %v", num.text, err)
		}
		unit, err := p.expect(tokIdent, "time unit")
		if err != nil {
			return Window{}, err
		}
		d, err := parseUnit(unit.text)
		if err != nil {
			return Window{}, err
		}
		return Window{Kind: Range, Span: time.Duration(n * float64(d))}, nil
	default:
		return Window{}, fmt.Errorf("query: expected window spec, got %s at offset %d", p.cur(), p.cur().pos)
	}
}

func parseUnit(s string) (time.Duration, error) {
	switch strings.ToLower(strings.TrimSuffix(strings.ToLower(s), "s")) {
	case "millisecond", "milli":
		return time.Millisecond, nil
	case "second", "sec":
		return time.Second, nil
	case "minute", "min":
		return time.Minute, nil
	case "hour":
		return time.Hour, nil
	case "day":
		return 24 * time.Hour, nil
	default:
		return 0, fmt.Errorf("query: unknown time unit %q", s)
	}
}

func (p *parser) parsePredicates(q *Query) ([]Predicate, error) {
	var out []Predicate
	for {
		pred, err := p.parsePredicate(q)
		if err != nil {
			return nil, err
		}
		out = append(out, pred)
		if !p.keyword("AND") {
			return out, nil
		}
	}
}

func (p *parser) parsePredicate(q *Query) (Predicate, error) {
	left, err := p.parseOperand(q)
	if err != nil {
		return Predicate{}, err
	}
	opTok, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return Predicate{}, err
	}
	op, err := parseOp(opTok.text)
	if err != nil {
		return Predicate{}, err
	}
	right, err := p.parseOperand(q)
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Left: left, Op: op, Right: right}, nil
}

func parseOp(s string) (Op, error) {
	switch s {
	case "=":
		return Eq, nil
	case "!=":
		return Ne, nil
	case "<":
		return Lt, nil
	case "<=":
		return Le, nil
	case ">":
		return Gt, nil
	case ">=":
		return Ge, nil
	default:
		return 0, fmt.Errorf("query: unknown operator %q", s)
	}
}

func (p *parser) parseOperand(q *Query) (Operand, error) {
	neg := false
	if p.cur().kind == tokMinus {
		neg = true
		p.i++
	}
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.i++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("query: bad number %q: %v", t.text, err)
		}
		if neg {
			f = -f
		}
		v := stream.FloatVal(f)
		return Operand{Lit: &v}, nil
	case tokString:
		if neg {
			return Operand{}, fmt.Errorf("query: '-' before string at offset %d", t.pos)
		}
		p.i++
		v := stream.StringVal(t.text)
		return Operand{Lit: &v}, nil
	case tokIdent:
		if neg {
			return Operand{}, fmt.Errorf("query: '-' before column at offset %d", t.pos)
		}
		p.i++
		col := ColRef{Attr: t.text}
		if p.cur().kind == tokDot {
			p.i++
			attr, err := p.expect(tokIdent, "attribute name")
			if err != nil {
				return Operand{}, err
			}
			col = ColRef{Alias: t.text, Attr: attr.text}
		} else if len(q.From) == 1 {
			col.Alias = q.From[0].Alias
		} else {
			return Operand{}, fmt.Errorf(
				"query: unqualified column %q is ambiguous over %d streams", t.text, len(q.From))
		}
		return Operand{Col: &col}, nil
	default:
		return Operand{}, fmt.Errorf("query: expected operand, got %s at offset %d", t, t.pos)
	}
}

// resolveSelect fills in aliases for unqualified SELECT columns on single-
// stream queries and rejects ambiguous ones.
func (p *parser) resolveSelect(q *Query) error {
	for i := range q.Select {
		item := &q.Select[i]
		if item.Star || item.Col.Alias != "" {
			continue
		}
		if len(q.From) != 1 {
			return fmt.Errorf("query: unqualified column %q is ambiguous over %d streams",
				item.Col.Attr, len(q.From))
		}
		item.Col.Alias = q.From[0].Alias
	}
	return nil
}
