package query

import (
	"fmt"
	"sort"
)

// This file implements the window-based query containment and merging
// theorems sketched in §2.1 of the paper (details in its reference [25]):
// when several queries placed on the same processor have overlapping
// results, COSMOS composes one superset query Q whose result contains each
// original result, runs only Q, and "splits" Q's result stream back into the
// original results with per-user residual subscriptions.
//
// The dialect restriction (conjunctive comparison predicates, per-stream
// sliding windows, projection lists) makes containment decidable with
// per-column interval reasoning:
//
//	Q' contains Q  ⇐  same FROM streams
//	               ∧ every window of Q' covers the matching window of Q
//	               ∧ Q's predicate conjunction implies every predicate of Q'
//	               ∧ Q' projects every attribute Q projects.

// aliasMap maps q2's aliases onto q1's by stream name. Queries with repeated
// streams (self-joins) are out of scope and return an error.
func aliasMap(q1, q2 *Query) (map[string]string, error) {
	byStream := make(map[string]string, len(q1.From))
	for _, r := range q1.From {
		if _, dup := byStream[r.Stream]; dup {
			return nil, fmt.Errorf("query: self-join on %q not supported by containment", r.Stream)
		}
		byStream[r.Stream] = r.Alias
	}
	if len(q2.From) != len(q1.From) {
		return nil, errStreamMismatch
	}
	m := make(map[string]string, len(q2.From))
	seen := make(map[string]bool, len(q2.From))
	for _, r := range q2.From {
		a1, ok := byStream[r.Stream]
		if !ok || seen[r.Stream] {
			return nil, errStreamMismatch
		}
		seen[r.Stream] = true
		m[r.Alias] = a1
	}
	return m, nil
}

var errStreamMismatch = fmt.Errorf("query: FROM stream sets differ")

// rename rewrites q2-side column references through the alias map.
func renameCol(c *ColRef, m map[string]string) *ColRef {
	if c == nil {
		return nil
	}
	out := *c
	if a, ok := m[c.Alias]; ok {
		out.Alias = a
	}
	return &out
}

func renamePredicate(p Predicate, m map[string]string) Predicate {
	return Predicate{
		Left:  Operand{Col: renameCol(p.Left.Col, m), Lit: p.Left.Lit},
		Op:    p.Op,
		Right: Operand{Col: renameCol(p.Right.Col, m), Lit: p.Right.Lit},
	}
}

func renamed(q *Query, m map[string]string) *Query {
	out := &Query{Name: q.Name}
	for _, r := range q.From {
		rr := r
		if a, ok := m[r.Alias]; ok {
			rr.Alias = a
		}
		out.From = append(out.From, rr)
	}
	for _, s := range q.Select {
		ss := s
		if a, ok := m[s.Col.Alias]; ok {
			ss.Col.Alias = a
		}
		out.Select = append(out.Select, ss)
	}
	for _, p := range q.Where {
		out.Where = append(out.Where, renamePredicate(p, m))
	}
	return out
}

// projectsAll reports whether super's projection list covers sub's.
func projectsAll(super, sub *Query) bool {
	bareStarSuper := false
	starAliases := make(map[string]bool)
	cols := make(map[string]bool)
	for _, p := range super.Select {
		switch {
		case p.Star && p.Col.Alias == "":
			bareStarSuper = true
		case p.Star:
			starAliases[p.Col.Alias] = true
		default:
			cols[p.Col.String()] = true
		}
	}
	if bareStarSuper {
		return true
	}
	for _, p := range sub.Select {
		switch {
		case p.Star && p.Col.Alias == "":
			// sub wants everything; super must star every alias.
			for _, r := range sub.From {
				if !starAliases[r.Alias] {
					return false
				}
			}
		case p.Star:
			if !starAliases[p.Col.Alias] {
				return false
			}
		default:
			if !cols[p.Col.String()] && !starAliases[p.Col.Alias] {
				return false
			}
		}
	}
	return true
}

// Contains reports whether super's result is a superset of sub's under the
// dialect's containment theorem. Both queries must be valid.
func Contains(super, sub *Query) bool {
	m, err := aliasMap(super, sub)
	if err != nil {
		return false
	}
	s := renamed(sub, m)
	// Windows: super must cover.
	for _, r := range s.From {
		sr, ok := super.RefByAlias(r.Alias)
		if !ok || !sr.Window.Covers(r.Window) {
			return false
		}
	}
	// Predicates: sub's conjunction must imply each super predicate.
	ivs := ColumnIntervals(s)
	joins := JoinSet(s)
	for _, p := range super.Where {
		if !ImpliesPredicate(ivs, joins, p) {
			return false
		}
	}
	return projectsAll(super, s)
}

// Equivalent reports mutual containment.
func Equivalent(a, b *Query) bool {
	return Contains(a, b) && Contains(b, a)
}

// MergeResult is the outcome of merging two queries: the superset query plus
// the residual filters each original query needs to recover its exact result
// from the superset's result stream.
type MergeResult struct {
	Super *Query
	// Residuals[i] holds, for input query i, the selection predicates
	// (in the superset's alias space) that must be re-applied, and the
	// window constraint to re-check, when splitting the shared result.
	Residuals []Residual
}

// Residual describes the post-filter for one original query over the merged
// result stream.
type Residual struct {
	Query      *Query            // the original query
	Filters    []Predicate       // selections to re-apply (superset aliases)
	Windows    map[string]Window // per-alias windows to re-enforce
	Projection []Projection      // the original projection (superset aliases)
	AliasToSub map[string]string // superset alias -> original alias
}

// Merge composes the minimal superset query covering q1 and q2, mirroring
// the Q3+Q4 → Q5 example of §2.1:
//
//   - per-stream windows take the maximum span;
//   - per-column selection intervals take the union (weakest common bound);
//   - join predicates present in both queries are kept; a join predicate
//     present in only one query blocks merging (results would not align);
//   - projections take the union.
//
// It returns an error when the two queries read different stream sets or
// disagree on join structure.
func Merge(q1, q2 *Query) (*MergeResult, error) {
	m, err := aliasMap(q1, q2)
	if err != nil {
		return nil, err
	}
	r2 := renamed(q2, m)

	j1, j2 := JoinSet(q1), JoinSet(r2)
	if len(j1) != len(j2) {
		return nil, fmt.Errorf("query: join structures differ (%d vs %d predicates)", len(j1), len(j2))
	}
	for k := range j1 {
		if !j2[k] {
			return nil, fmt.Errorf("query: join predicate %s missing from %s", k, q2.Name)
		}
	}

	super := &Query{Name: q1.Name + "+" + q2.Name}
	for _, r := range q1.From {
		rr := r
		if r2ref, ok := r2.RefByAlias(r.Alias); ok {
			rr.Window = MaxWindow(r.Window, r2ref.Window)
		}
		super.From = append(super.From, rr)
	}

	// Union of selection constraints per column.
	iv1, iv2 := ColumnIntervals(q1), ColumnIntervals(r2)
	keys := make([]string, 0, len(iv1))
	for k := range iv1 {
		if _, ok := iv2[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	colOf := func(key string, q *Query) ColRef {
		for _, p := range q.Where {
			p = p.Normalize()
			if p.IsSelection() && p.Left.Col.String() == key {
				return *p.Left.Col
			}
		}
		return ColRef{}
	}
	for _, k := range keys {
		u := iv1[k].Union(iv2[k])
		col := colOf(k, q1)
		if col.Attr == "" {
			col = colOf(k, r2)
		}
		super.Where = append(super.Where, u.Predicates(col)...)
	}
	// Shared join predicates.
	for _, p := range q1.JoinPredicates() {
		super.Where = append(super.Where, p.Normalize())
	}

	// Projection union (dedup by string form).
	seen := make(map[string]bool)
	addProj := func(ps []Projection) {
		for _, p := range ps {
			if !seen[p.String()] {
				seen[p.String()] = true
				super.Select = append(super.Select, p)
			}
		}
	}
	addProj(q1.Select)
	addProj(r2.Select)

	if err := super.Validate(); err != nil {
		return nil, fmt.Errorf("merge %s,%s: %w", q1.Name, q2.Name, err)
	}
	if !Contains(super, q1) || !Contains(super, r2) {
		return nil, fmt.Errorf("query: merged query does not contain inputs (dialect limit)")
	}

	res := &MergeResult{Super: super}
	res.Residuals = append(res.Residuals,
		residualFor(q1, q1, super, nil),
		residualFor(q2, r2, super, invert(m)))
	return res, nil
}

// MergeAll left-folds Merge over a set of queries, returning the superset
// query and one residual per input. Inputs that cannot merge with the
// accumulated superset are returned in the leftover list so the caller can
// form additional groups.
func MergeAll(queries []*Query) (merged []*MergeResult, leftovers []*Query) {
	remaining := append([]*Query(nil), queries...)
	for len(remaining) > 0 {
		acc := remaining[0]
		group := []*Query{remaining[0]}
		var next []*Query
		for _, q := range remaining[1:] {
			mr, err := Merge(acc, q)
			if err != nil {
				next = append(next, q)
				continue
			}
			acc = mr.Super
			group = append(group, q)
		}
		if len(group) == 1 {
			leftovers = append(leftovers, group[0])
		} else {
			// Re-derive residuals of every group member against the
			// final accumulated superset.
			mr := &MergeResult{Super: acc}
			for _, q := range group {
				m, err := aliasMap(acc, q)
				if err != nil {
					continue
				}
				mr.Residuals = append(mr.Residuals, residualFor(q, renamed(q, m), acc, invert(m)))
			}
			merged = append(merged, mr)
		}
		remaining = next
	}
	return merged, leftovers
}

func invert(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// residualFor computes the split subscription for original (with renamed
// being original expressed in super's alias space).
func residualFor(original, renamedQ, super *Query, superToOrig map[string]string) Residual {
	res := Residual{
		Query:      original,
		Windows:    make(map[string]Window, len(renamedQ.From)),
		Projection: renamedQ.Select,
		AliasToSub: superToOrig,
	}
	// Re-apply every selection of the original that the superset weakened
	// or dropped.
	supIVs := ColumnIntervals(super)
	supJoins := JoinSet(super)
	for _, p := range renamedQ.Where {
		if ImpliesPredicate(supIVs, supJoins, p) {
			continue
		}
		res.Filters = append(res.Filters, p.Normalize())
	}
	// Re-enforce windows the superset widened.
	for _, r := range renamedQ.From {
		sr, ok := super.RefByAlias(r.Alias)
		if ok && !r.Window.Covers(sr.Window) {
			res.Windows[r.Alias] = r.Window
		}
	}
	return res
}
