package query

import (
	"testing"
)

// The paper's Table 1 queries.
func paperQ3() *Query {
	q := MustParse(`SELECT S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2
		WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10`)
	q.Name = "Q3"
	return q
}

func paperQ4() *Query {
	q := MustParse(`SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp
		FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2
		WHERE S1.snowHeight > S2.snowHeight`)
	q.Name = "Q4"
	return q
}

func paperQ5() *Query {
	q := MustParse(`SELECT S2.*, S1.snowHeight, S1.timestamp
		FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2
		WHERE S1.snowHeight > S2.snowHeight`)
	q.Name = "Q5"
	return q
}

// TestPaperContainment verifies the §2.1 relations: Q5 contains both Q3 and
// Q4, while neither contains the other.
func TestPaperContainment(t *testing.T) {
	q3, q4, q5 := paperQ3(), paperQ4(), paperQ5()
	if !Contains(q5, q3) {
		t.Error("Q5 should contain Q3")
	}
	if !Contains(q5, q4) {
		t.Error("Q5 should contain Q4")
	}
	if Contains(q3, q4) {
		t.Error("Q3 should not contain Q4 (narrower window, extra filter)")
	}
	if Contains(q4, q3) {
		t.Error("Q4 should not contain Q3 (projection misses S2.*)")
	}
	if Contains(q3, q5) {
		t.Error("Q3 should not contain Q5")
	}
}

// TestPaperMerge reproduces the Q3+Q4 → Q5 composition of §2.1.
func TestPaperMerge(t *testing.T) {
	q3, q4 := paperQ3(), paperQ4()
	mr, err := Merge(q3, q4)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	super := mr.Super
	if !Contains(super, q3) || !Contains(super, q4) {
		t.Fatalf("superset %s does not contain inputs", super)
	}
	if !Equivalent(super, paperQ5()) {
		t.Errorf("merged query not equivalent to the paper's Q5:\n  got  %s\n  want %s",
			super, paperQ5())
	}
	// Residual of Q3 must re-apply its filter and its 30-minute window.
	var resQ3, resQ4 *Residual
	for i := range mr.Residuals {
		switch mr.Residuals[i].Query.Name {
		case "Q3":
			resQ3 = &mr.Residuals[i]
		case "Q4":
			resQ4 = &mr.Residuals[i]
		}
	}
	if resQ3 == nil || resQ4 == nil {
		t.Fatalf("missing residuals: %+v", mr.Residuals)
	}
	if len(resQ3.Filters) != 1 || resQ3.Filters[0].String() != "S1.snowHeight >= 10" {
		t.Errorf("Q3 residual filters = %v", resQ3.Filters)
	}
	if w, ok := resQ3.Windows["S1"]; !ok || w.Span.Minutes() != 30 {
		t.Errorf("Q3 residual windows = %v", resQ3.Windows)
	}
	if len(resQ4.Filters) != 0 || len(resQ4.Windows) != 0 {
		t.Errorf("Q4 residual should be empty: filters=%v windows=%v", resQ4.Filters, resQ4.Windows)
	}
}

func TestContainsRejectsDifferentStreams(t *testing.T) {
	a := MustParse(`SELECT * FROM R [Now]`)
	b := MustParse(`SELECT * FROM S [Now]`)
	if Contains(a, b) || Contains(b, a) {
		t.Error("queries over different streams must not contain each other")
	}
}

func TestContainsAliasIndependent(t *testing.T) {
	a := MustParse(`SELECT X.a FROM S [Range 1 Hour] X WHERE X.a > 5`)
	b := MustParse(`SELECT Y.a FROM S [Range 30 Minutes] Y WHERE Y.a > 10`)
	if !Contains(a, b) {
		t.Error("containment must match streams by name, not alias")
	}
	if Contains(b, a) {
		t.Error("narrower query cannot contain wider")
	}
}

func TestMergeRejectsJoinMismatch(t *testing.T) {
	a := MustParse(`SELECT * FROM R [Now], S [Now] WHERE R.a = S.a`)
	b := MustParse(`SELECT * FROM R [Now], S [Now] WHERE R.b = S.b`)
	if _, err := Merge(a, b); err == nil {
		t.Error("merge accepted different join predicates")
	}
	c := MustParse(`SELECT * FROM R [Now], S [Now]`)
	if _, err := Merge(a, c); err == nil {
		t.Error("merge accepted missing join predicate")
	}
}

func TestMergeSelectionUnion(t *testing.T) {
	a := MustParse(`SELECT * FROM S [Now] WHERE a > 10`)
	a.Name = "A"
	b := MustParse(`SELECT * FROM S [Now] WHERE a > 20`)
	b.Name = "B"
	mr, err := Merge(a, b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	// Union keeps the weaker bound a > 10.
	if len(mr.Super.Where) != 1 || mr.Super.Where[0].String() != "S.a > 10" {
		t.Errorf("superset WHERE = %v", mr.Super.Where)
	}
	// B must re-apply its stricter filter.
	for _, r := range mr.Residuals {
		switch r.Query.Name {
		case "A":
			if len(r.Filters) != 0 {
				t.Errorf("A residual = %v", r.Filters)
			}
		case "B":
			if len(r.Filters) != 1 {
				t.Errorf("B residual = %v", r.Filters)
			}
		}
	}
}

func TestMergeDisjointSelectionColumnsDropsFilter(t *testing.T) {
	a := MustParse(`SELECT * FROM S [Now] WHERE a > 10`)
	b := MustParse(`SELECT * FROM S [Now] WHERE b < 5`)
	mr, err := Merge(a, b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	// Neither filter can survive: the superset must admit both results.
	if len(mr.Super.Where) != 0 {
		t.Errorf("superset WHERE = %v, want empty", mr.Super.Where)
	}
}

func TestMergeAllGroups(t *testing.T) {
	q1 := MustParse(`SELECT * FROM S [Now] WHERE a > 10`)
	q1.Name = "q1"
	q2 := MustParse(`SELECT * FROM S [Now] WHERE a > 20`)
	q2.Name = "q2"
	q3 := MustParse(`SELECT * FROM T [Now] WHERE x < 1`)
	q3.Name = "q3"
	merged, leftovers := MergeAll([]*Query{q1, q2, q3})
	if len(merged) != 1 {
		t.Fatalf("merged groups = %d, want 1", len(merged))
	}
	if len(merged[0].Residuals) != 2 {
		t.Errorf("group residuals = %d, want 2", len(merged[0].Residuals))
	}
	if len(leftovers) != 1 || leftovers[0].Name != "q3" {
		t.Errorf("leftovers = %v", leftovers)
	}
}

func TestSelfJoinRejected(t *testing.T) {
	q := MustParse(`SELECT * FROM S [Now] A, S [Now] B WHERE A.x = B.x`)
	if Contains(q, q) {
		t.Error("self-join containment should be rejected (conservatively)")
	}
	if _, err := Merge(q, q); err == nil {
		t.Error("self-join merge should fail")
	}
}

func TestEquivalentReflexive(t *testing.T) {
	q := paperQ4()
	if !Equivalent(q, paperQ4()) {
		t.Error("query not equivalent to itself")
	}
}
