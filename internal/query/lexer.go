package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes of the CQL dialect.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber
	tokString
	tokStar
	tokComma
	tokDot
	tokLBracket
	tokRBracket
	tokOp // = != < <= > >=
	tokMinus
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes a query string. Keywords are recognized by the parser via
// case-insensitive comparison on tokIdent, matching the paper's mixed-case
// examples ("Range 30 Minutes", "FROM", "Now").
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == ',':
			l.emit(tokComma, ",")
			l.pos++
		case c == '.':
			l.emit(tokDot, ".")
			l.pos++
		case c == '*':
			l.emit(tokStar, "*")
			l.pos++
		case c == '[':
			l.emit(tokLBracket, "[")
			l.pos++
		case c == ']':
			l.emit(tokRBracket, "]")
			l.pos++
		case c == '-':
			l.emit(tokMinus, "-")
			l.pos++
		case c == '=':
			l.emit(tokOp, "=")
			l.pos++
		case c == '!':
			if l.peek(1) == '=' {
				l.emit(tokOp, "!=")
				l.pos += 2
			} else {
				return nil, fmt.Errorf("query: unexpected '!' at offset %d", l.pos)
			}
		case c == '<':
			if l.peek(1) == '=' {
				l.emit(tokOp, "<=")
				l.pos += 2
			} else if l.peek(1) == '>' {
				l.emit(tokOp, "!=")
				l.pos += 2
			} else {
				l.emit(tokOp, "<")
				l.pos++
			}
		case c == '>':
			if l.peek(1) == '=' {
				l.emit(tokOp, ">=")
				l.pos += 2
			} else {
				l.emit(tokOp, ">")
				l.pos++
			}
		case c == '\'' || c == '"':
			s, err := l.lexString(c)
			if err != nil {
				return nil, err
			}
			l.emit(tokString, s)
		case unicode.IsDigit(rune(c)):
			l.emit(tokNumber, l.lexWhile(func(r byte) bool {
				return unicode.IsDigit(rune(r)) || r == '.'
			}))
		case isIdentStart(c):
			l.emit(tokIdent, l.lexWhile(isIdentPart))
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, l.pos)
		}
	}
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func (l *lexer) peek(ahead int) byte {
	if l.pos+ahead >= len(l.src) {
		return 0
	}
	return l.src[l.pos+ahead]
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) lexWhile(pred func(byte) bool) string {
	start := l.pos
	for l.pos < len(l.src) && pred(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexString(quote byte) (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("query: unterminated string starting at offset %d", start)
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
