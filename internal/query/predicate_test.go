package query

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

func tup(attrs map[string]float64) stream.Tuple {
	t := stream.Tuple{Attrs: make(map[string]stream.Value, len(attrs))}
	for k, v := range attrs {
		t.Attrs[k] = stream.FloatVal(v)
	}
	return t
}

func selPred(alias, attr string, op Op, v float64) Predicate {
	lit := stream.FloatVal(v)
	return Predicate{
		Left:  Operand{Col: &ColRef{Alias: alias, Attr: attr}},
		Op:    op,
		Right: Operand{Lit: &lit},
	}
}

func TestEvalSelection(t *testing.T) {
	p := selPred("S", "a", Gt, 10)
	if !EvalSelection(p, tup(map[string]float64{"a": 11})) {
		t.Error("11 > 10 failed")
	}
	if EvalSelection(p, tup(map[string]float64{"a": 10})) {
		t.Error("10 > 10 passed")
	}
	if EvalSelection(p, tup(map[string]float64{"b": 99})) {
		t.Error("missing attribute passed")
	}
	// Flipped literal-first form must behave identically.
	flipped := Predicate{Left: p.Right, Op: Lt, Right: p.Left}
	if !EvalSelection(flipped, tup(map[string]float64{"a": 11})) {
		t.Error("flipped form failed")
	}
}

func TestEvalJoin(t *testing.T) {
	p := Predicate{
		Left:  Operand{Col: &ColRef{Alias: "L", Attr: "x"}},
		Op:    Gt,
		Right: Operand{Col: &ColRef{Alias: "R", Attr: "x"}},
	}
	l := tup(map[string]float64{"x": 5})
	r := tup(map[string]float64{"x": 3})
	if !EvalJoin(p, l, r, "L") {
		t.Error("5 > 3 failed")
	}
	if EvalJoin(p, r, l, "L") {
		t.Error("3 > 5 passed")
	}
}

func TestIntervalConstrainAndImplies(t *testing.T) {
	iv := FullInterval().
		Constrain(Gt, stream.FloatVal(10)).
		Constrain(Le, stream.FloatVal(20))
	cases := []struct {
		op   Op
		v    float64
		want bool
	}{
		{Gt, 5, true},
		{Gt, 10, true},
		{Gt, 11, false},
		{Ge, 10, true},
		{Le, 20, true},
		{Le, 19, false},
		{Lt, 21, true},
		{Lt, 20, false},
		{Ne, 9, true},   // 9 outside (10,20]
		{Ne, 15, false}, // 15 inside
		{Eq, 15, false},
	}
	for _, c := range cases {
		if got := iv.Implies(c.op, stream.FloatVal(c.v)); got != c.want {
			t.Errorf("(10,20] implies x %v %v = %v, want %v", c.op, c.v, got, c.want)
		}
	}
}

func TestIntervalEmpty(t *testing.T) {
	iv := FullInterval().
		Constrain(Gt, stream.FloatVal(10)).
		Constrain(Lt, stream.FloatVal(5))
	if !iv.Empty() {
		t.Error("contradictory interval not empty")
	}
	point := FullInterval().Constrain(Eq, stream.FloatVal(7))
	if point.Empty() {
		t.Error("point interval reported empty")
	}
	notPoint := point.Constrain(Ne, stream.FloatVal(7))
	if !notPoint.Empty() {
		t.Error("x=7 AND x!=7 not empty")
	}
	strContra := FullInterval().
		Constrain(Eq, stream.StringVal("a")).
		Constrain(Eq, stream.StringVal("b"))
	if !strContra.Empty() {
		t.Error("a=b string contradiction not empty")
	}
}

func TestIntervalUnion(t *testing.T) {
	a := FullInterval().Constrain(Ge, stream.FloatVal(10)) // [10,∞)
	b := FullInterval().Constrain(Gt, stream.FloatVal(20)) // (20,∞)
	u := a.Union(b)
	if !u.Implies(Ge, stream.FloatVal(10)) {
		t.Errorf("union %v does not imply >= 10", u)
	}
	if u.Implies(Gt, stream.FloatVal(20)) {
		t.Errorf("union %v wrongly implies > 20", u)
	}
}

func TestIntervalPredicatesRoundTrip(t *testing.T) {
	col := ColRef{Alias: "S", Attr: "a"}
	iv := FullInterval().
		Constrain(Ge, stream.FloatVal(10)).
		Constrain(Lt, stream.FloatVal(20))
	preds := iv.Predicates(col)
	if len(preds) != 2 {
		t.Fatalf("predicates = %v", preds)
	}
	rebuilt := FullInterval()
	for _, p := range preds {
		p = p.Normalize()
		rebuilt = rebuilt.Constrain(p.Op, *p.Right.Lit)
	}
	if rebuilt.Lo != 10 || rebuilt.Hi != 20 || rebuilt.LoOpen || !rebuilt.HiOpen {
		t.Errorf("round trip = %v", rebuilt)
	}
	// Point interval renders as equality.
	pt := FullInterval().Constrain(Eq, stream.FloatVal(5))
	preds = pt.Predicates(col)
	if len(preds) != 1 || preds[0].Op != Eq {
		t.Errorf("point predicates = %v", preds)
	}
}

func TestSelectivity(t *testing.T) {
	iv := FullInterval().
		Constrain(Ge, stream.FloatVal(25)).
		Constrain(Lt, stream.FloatVal(75))
	if got := iv.Selectivity(0, 100); got != 0.5 {
		t.Errorf("Selectivity = %v, want 0.5", got)
	}
	empty := FullInterval().Constrain(Gt, stream.FloatVal(5)).Constrain(Lt, stream.FloatVal(1))
	if got := empty.Selectivity(0, 100); got != 0 {
		t.Errorf("empty Selectivity = %v", got)
	}
}

// TestQuickImpliesSoundness: if an interval implies a predicate, every
// sampled value satisfying the interval must satisfy the predicate.
func TestQuickImpliesSoundness(t *testing.T) {
	ops := []Op{Eq, Ne, Lt, Le, Gt, Ge}
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 11))
		iv := FullInterval()
		for i := 0; i < r.IntN(4); i++ {
			iv = iv.Constrain(ops[r.IntN(len(ops))], stream.FloatVal(float64(r.IntN(21)-10)))
		}
		op := ops[r.IntN(len(ops))]
		lit := stream.FloatVal(float64(r.IntN(21) - 10))
		if !iv.Implies(op, lit) {
			return true // nothing to check
		}
		// Sample integer points and verify.
		for x := -15.0; x <= 15; x++ {
			if !inInterval(iv, x) {
				continue
			}
			if !op.Eval(stream.FloatVal(x).Compare(lit)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func inInterval(iv Interval, x float64) bool {
	if iv.Empty() {
		return false
	}
	if x < iv.Lo || (x == iv.Lo && iv.LoOpen) {
		return false
	}
	if x > iv.Hi || (x == iv.Hi && iv.HiOpen) {
		return false
	}
	for _, ne := range iv.NotEq {
		if x == ne {
			return false
		}
	}
	return true
}

// TestQuickUnionAdmitsBoth: every point admitted by either input interval
// is admitted by the union.
func TestQuickUnionAdmitsBoth(t *testing.T) {
	ops := []Op{Lt, Le, Gt, Ge}
	mk := func(r *rand.Rand) Interval {
		iv := FullInterval()
		for i := 0; i < 1+r.IntN(3); i++ {
			iv = iv.Constrain(ops[r.IntN(len(ops))], stream.FloatVal(float64(r.IntN(21)-10)))
		}
		return iv
	}
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 13))
		a, b := mk(r), mk(r)
		u := a.Union(b)
		for x := -15.0; x <= 15; x++ {
			if (inInterval(a, x) || inInterval(b, x)) && !inInterval(u, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickContainsFloatMatchesConjunction: membership in the interval built
// by folding a random conjunction of numeric selection predicates must equal
// evaluating every predicate in turn — the contract the broker matching
// index compiles subscriptions under.
func TestQuickContainsFloatMatchesConjunction(t *testing.T) {
	ops := []Op{Eq, Ne, Lt, Le, Gt, Ge}
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 17))
		var preds []Predicate
		iv := FullInterval()
		for i := 0; i < 1+r.IntN(4); i++ {
			p := selPred("", "a", ops[r.IntN(len(ops))], float64(r.IntN(11)-5))
			preds = append(preds, p)
			iv = iv.Constrain(p.Op, *p.Right.Lit)
		}
		for x := -8.0; x <= 8; x += 0.5 {
			want := true
			for _, p := range preds {
				if !p.Op.Eval(stream.FloatVal(x).Compare(*p.Right.Lit)) {
					want = false
					break
				}
			}
			if iv.ContainsFloat(x) != want {
				t.Logf("seed %d: x=%v interval=%v want=%v", seed, x, iv, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestContainsFloatStringConstraints(t *testing.T) {
	iv := FullInterval().Constrain(Eq, stream.StringVal("x"))
	if iv.ContainsFloat(3) {
		t.Error("numeric value admitted by a string-equality constraint")
	}
	iv = FullInterval().Constrain(Ne, stream.StringVal("x"))
	if !iv.ContainsFloat(3) {
		t.Error("numeric value rejected by a string-disequality constraint")
	}
}

func TestSelectionIntervalsByAttr(t *testing.T) {
	preds := []Predicate{
		selPred("", "a", Gt, 1),
		selPred("", "a", Le, 5),
		selPred("", "b", Eq, 2),
		// Flipped literal-first form (2 > a) normalizes onto the same column.
		{Left: selPred("", "a", Gt, 2).Right, Op: Gt, Right: selPred("", "a", Gt, 2).Left},
	}
	ivs := SelectionIntervalsByAttr(preds)
	if len(ivs) != 2 {
		t.Fatalf("intervals for %d attrs, want 2", len(ivs))
	}
	a := ivs["a"]
	if a.ContainsFloat(1) || !a.ContainsFloat(1.5) || a.ContainsFloat(2) || a.ContainsFloat(6) {
		t.Errorf("interval for a = %v, want (1,2)", a)
	}
	if b := ivs["b"]; !b.ContainsFloat(2) || b.ContainsFloat(3) {
		t.Errorf("interval for b = %v, want [2,2]", b)
	}
}

func TestNumericSelection(t *testing.T) {
	if _, ok := NumericSelection(selPred("", "a", Gt, 1)); !ok {
		t.Error("numeric selection rejected")
	}
	// Literal-first form compiles via normalization, flipping the op.
	flip := Predicate{Left: selPred("", "a", Gt, 3).Right, Op: Lt, Right: selPred("", "a", Gt, 3).Left}
	n, ok := NumericSelection(flip)
	if !ok || n.Op != Gt || n.Left.Col == nil {
		t.Errorf("flipped selection normalized to %v ok=%v", n, ok)
	}
	slit := stream.StringVal("x")
	if _, ok := NumericSelection(Predicate{
		Left: Operand{Col: &ColRef{Attr: "a"}}, Op: Eq, Right: Operand{Lit: &slit},
	}); ok {
		t.Error("string-literal selection accepted as numeric")
	}
	join := Predicate{
		Left:  Operand{Col: &ColRef{Alias: "L", Attr: "x"}},
		Op:    Eq,
		Right: Operand{Col: &ColRef{Alias: "R", Attr: "x"}},
	}
	if _, ok := NumericSelection(join); ok {
		t.Error("join predicate accepted as numeric selection")
	}
	nan := stream.FloatVal(math.NaN())
	if _, ok := NumericSelection(Predicate{
		Left: Operand{Col: &ColRef{Attr: "a"}}, Op: Lt, Right: Operand{Lit: &nan},
	}); ok {
		t.Error("NaN-literal selection accepted (intervals cannot express cmp==0-against-NaN)")
	}
}
