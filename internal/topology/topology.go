// Package topology generates and queries the overlay network used by the
// simulation study: a Transit-Stub topology in the style of the GT-ITM
// generator the paper uses (§4.1), plus shortest-path latency queries and
// median selection, which the coordinator-tree construction relies on.
//
// The generator is deterministic for a given seed so experiments are
// reproducible.
package topology

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
)

// NodeID identifies a node in the topology. IDs are dense in [0, N).
type NodeID int

// Kind classifies a node by its role in the Transit-Stub hierarchy.
type Kind int

// Node kinds. Transit nodes form the wide-area backbone; stub nodes hang off
// transit nodes in local clusters.
const (
	Transit Kind = iota + 1
	Stub
)

func (k Kind) String() string {
	switch k {
	case Transit:
		return "transit"
	case Stub:
		return "stub"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Edge is a weighted undirected link.
type Edge struct {
	To      NodeID
	Latency float64 // milliseconds
}

// Node carries a node's kind and domain identity.
type Node struct {
	ID     NodeID
	Kind   Kind
	Domain int // transit domain index; stub nodes record their parent's domain
	Stub   int // stub domain index within the transit domain (-1 for transit)
}

// Graph is an undirected weighted graph with dense node IDs.
type Graph struct {
	Nodes []Node
	adj   [][]Edge
}

// NewGraph returns an empty graph with n isolated nodes of Stub kind.
func NewGraph(n int) *Graph {
	g := &Graph{
		Nodes: make([]Node, n),
		adj:   make([][]Edge, n),
	}
	for i := range g.Nodes {
		g.Nodes[i] = Node{ID: NodeID(i), Kind: Stub, Stub: -1}
	}
	return g
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.Nodes) }

// AddEdge inserts an undirected edge with the given latency. Self-loops and
// out-of-range endpoints are rejected.
func (g *Graph) AddEdge(a, b NodeID, latency float64) error {
	if a == b {
		return fmt.Errorf("topology: self-loop on node %d", a)
	}
	if !g.valid(a) || !g.valid(b) {
		return fmt.Errorf("topology: edge (%d,%d) out of range [0,%d)", a, b, g.Len())
	}
	if latency <= 0 {
		return fmt.Errorf("topology: non-positive latency %v on edge (%d,%d)", latency, a, b)
	}
	g.adj[a] = append(g.adj[a], Edge{To: b, Latency: latency})
	g.adj[b] = append(g.adj[b], Edge{To: a, Latency: latency})
	return nil
}

// Neighbors returns the adjacency list of n. The returned slice must not be
// modified by the caller.
func (g *Graph) Neighbors(n NodeID) []Edge {
	if !g.valid(n) {
		return nil
	}
	return g.adj[n]
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total / 2
}

func (g *Graph) valid(n NodeID) bool { return n >= 0 && int(n) < g.Len() }

// Dijkstra computes shortest-path latencies from src to every node.
// Unreachable nodes get +Inf.
func (g *Graph) Dijkstra(src NodeID) []float64 {
	dist := make([]float64, g.Len())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if !g.valid(src) {
		return dist
	}
	dist[src] = 0
	h := &nodeHeap{items: []heapItem{{node: src, dist: 0}}}
	for h.len() > 0 {
		it := h.pop()
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			if nd := it.dist + e.Latency; nd < dist[e.To] {
				dist[e.To] = nd
				h.push(heapItem{node: e.To, dist: nd})
			}
		}
	}
	return dist
}

// DijkstraTree computes shortest-path distances and the parent of each node
// on its shortest path from src (-1 for src and unreachable nodes). The
// parent pointers define the shortest-path tree used as the multicast
// delivery tree in the cost model.
func (g *Graph) DijkstraTree(src NodeID) (dist []float64, parent []NodeID) {
	dist = make([]float64, g.Len())
	parent = make([]NodeID, g.Len())
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	if !g.valid(src) {
		return dist, parent
	}
	dist[src] = 0
	h := &nodeHeap{items: []heapItem{{node: src, dist: 0}}}
	for h.len() > 0 {
		it := h.pop()
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			if nd := it.dist + e.Latency; nd < dist[e.To] {
				dist[e.To] = nd
				parent[e.To] = it.node
				h.push(heapItem{node: e.To, dist: nd})
			}
		}
	}
	return dist, parent
}

type heapItem struct {
	node NodeID
	dist float64
}

// nodeHeap is a minimal binary min-heap specialized for Dijkstra; avoiding
// container/heap's interface dispatch matters because the simulation runs
// hundreds of single-source computations on a 4096-node graph.
type nodeHeap struct{ items []heapItem }

func (h *nodeHeap) len() int { return len(h.items) }

func (h *nodeHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].dist <= h.items[i].dist {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *nodeHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].dist < h.items[small].dist {
			small = l
		}
		if r < len(h.items) && h.items[r].dist < h.items[small].dist {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

// Oracle answers latency queries over a graph, caching one Dijkstra row per
// distinct source. The experiments only ever query distances from a few
// hundred processors/sources out of thousands of routers, so lazy per-row
// caching is far cheaper than all-pairs shortest paths.
type Oracle struct {
	g *Graph

	mu   sync.Mutex
	rows map[NodeID][]float64
}

// NewOracle returns an oracle over g.
func NewOracle(g *Graph) *Oracle {
	return &Oracle{g: g, rows: make(map[NodeID][]float64)}
}

// Graph returns the underlying graph.
func (o *Oracle) Graph() *Graph { return o.g }

// Latency returns the shortest-path latency between a and b.
func (o *Oracle) Latency(a, b NodeID) float64 {
	if a == b {
		return 0
	}
	return o.row(a)[b]
}

// Row returns the full distance row from src. The returned slice is shared;
// callers must not modify it.
func (o *Oracle) Row(src NodeID) []float64 { return o.row(src) }

func (o *Oracle) row(src NodeID) []float64 {
	o.mu.Lock()
	r, ok := o.rows[src]
	o.mu.Unlock()
	if ok {
		return r
	}
	r = o.g.Dijkstra(src)
	o.mu.Lock()
	o.rows[src] = r
	o.mu.Unlock()
	return r
}

// Median returns the member of nodes with minimum total latency to all
// members — the paper's definition of a cluster median (§3.3). Ties break
// toward the lower node ID for determinism. It returns -1 for an empty set.
func (o *Oracle) Median(nodes []NodeID) NodeID {
	best := NodeID(-1)
	bestTotal := math.Inf(1)
	for _, cand := range nodes {
		row := o.row(cand)
		var total float64
		for _, other := range nodes {
			total += row[other]
		}
		if total < bestTotal || (total == bestTotal && cand < best) {
			bestTotal = total
			best = cand
		}
	}
	return best
}

// Config parameterizes the Transit-Stub generator. The defaults mirror the
// simulation study: 4 transit domains x 4 transit nodes, each transit node
// with 16 stub domains of 16 nodes each gives 4096 nodes.
type Config struct {
	TransitDomains     int // number of transit (backbone) domains
	TransitNodes       int // nodes per transit domain
	StubDomainsPerNode int // stub domains attached to each transit node
	StubNodes          int // nodes per stub domain

	// Latency bands, in milliseconds.
	InterTransitLatency [2]float64 // between transit domains (WAN)
	IntraTransitLatency [2]float64 // within a transit domain
	TransitStubLatency  [2]float64 // transit node <-> stub domain uplink
	IntraStubLatency    [2]float64 // within a stub domain (LAN)

	// ExtraStubEdgeProb adds redundant intra-stub edges with this
	// probability per node pair, giving the path diversity real topologies
	// have. Zero yields trees inside stub domains.
	ExtraStubEdgeProb float64

	Seed uint64
}

// DefaultConfig returns the paper-scale configuration (4096 nodes).
func DefaultConfig() Config {
	return Config{
		TransitDomains:      4,
		TransitNodes:        4,
		StubDomainsPerNode:  16,
		StubNodes:           16,
		InterTransitLatency: [2]float64{40, 120},
		IntraTransitLatency: [2]float64{10, 30},
		TransitStubLatency:  [2]float64{2, 10},
		IntraStubLatency:    [2]float64{0.5, 2},
		ExtraStubEdgeProb:   0.05,
		Seed:                1,
	}
}

// Validate reports whether the configuration is generatable.
func (c Config) Validate() error {
	switch {
	case c.TransitDomains < 1:
		return fmt.Errorf("topology: TransitDomains must be >= 1, got %d", c.TransitDomains)
	case c.TransitNodes < 1:
		return fmt.Errorf("topology: TransitNodes must be >= 1, got %d", c.TransitNodes)
	case c.StubDomainsPerNode < 0:
		return fmt.Errorf("topology: StubDomainsPerNode must be >= 0, got %d", c.StubDomainsPerNode)
	case c.StubNodes < 1 && c.StubDomainsPerNode > 0:
		return fmt.Errorf("topology: StubNodes must be >= 1, got %d", c.StubNodes)
	}
	for _, band := range [][2]float64{
		c.InterTransitLatency, c.IntraTransitLatency,
		c.TransitStubLatency, c.IntraStubLatency,
	} {
		if band[0] <= 0 || band[1] < band[0] {
			return fmt.Errorf("topology: invalid latency band %v", band)
		}
	}
	return nil
}

// TotalNodes returns the node count the configuration will generate.
func (c Config) TotalNodes() int {
	perTransit := c.TransitNodes * (1 + c.StubDomainsPerNode*c.StubNodes)
	return c.TransitDomains * perTransit
}

// Generate builds a Transit-Stub topology:
//
//   - transit domains are cliques of transit nodes, fully interconnected
//     domain-to-domain through one random gateway pair per domain pair;
//   - each transit node uplinks StubDomainsPerNode stub domains;
//   - each stub domain is a ring (guaranteeing connectivity) plus random
//     chords controlled by ExtraStubEdgeProb.
func Generate(cfg Config) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))
	g := NewGraph(cfg.TotalNodes())

	lat := func(band [2]float64) float64 {
		return band[0] + rng.Float64()*(band[1]-band[0])
	}

	next := 0
	alloc := func() NodeID {
		id := NodeID(next)
		next++
		return id
	}

	transit := make([][]NodeID, cfg.TransitDomains)
	for d := 0; d < cfg.TransitDomains; d++ {
		transit[d] = make([]NodeID, cfg.TransitNodes)
		for i := 0; i < cfg.TransitNodes; i++ {
			id := alloc()
			g.Nodes[id] = Node{ID: id, Kind: Transit, Domain: d, Stub: -1}
			transit[d][i] = id
			// Intra-domain clique keeps backbone paths short.
			for j := 0; j < i; j++ {
				if err := g.AddEdge(id, transit[d][j], lat(cfg.IntraTransitLatency)); err != nil {
					return nil, err
				}
			}
		}
	}
	// One inter-domain link per domain pair through random gateways.
	for a := 0; a < cfg.TransitDomains; a++ {
		for b := a + 1; b < cfg.TransitDomains; b++ {
			ga := transit[a][rng.IntN(len(transit[a]))]
			gb := transit[b][rng.IntN(len(transit[b]))]
			if err := g.AddEdge(ga, gb, lat(cfg.InterTransitLatency)); err != nil {
				return nil, err
			}
		}
	}

	stubIdx := 0
	for d := 0; d < cfg.TransitDomains; d++ {
		for _, tn := range transit[d] {
			for s := 0; s < cfg.StubDomainsPerNode; s++ {
				members := make([]NodeID, cfg.StubNodes)
				for i := 0; i < cfg.StubNodes; i++ {
					id := alloc()
					g.Nodes[id] = Node{ID: id, Kind: Stub, Domain: d, Stub: stubIdx}
					members[i] = id
				}
				// Uplink from a random stub member to its transit node.
				up := members[rng.IntN(len(members))]
				if err := g.AddEdge(up, tn, lat(cfg.TransitStubLatency)); err != nil {
					return nil, err
				}
				// Ring for connectivity.
				for i := 0; i < len(members); i++ {
					j := (i + 1) % len(members)
					if len(members) == 1 {
						break
					}
					if len(members) == 2 && i == 1 {
						break
					}
					if err := g.AddEdge(members[i], members[j], lat(cfg.IntraStubLatency)); err != nil {
						return nil, err
					}
				}
				// Random chords.
				for i := 0; i < len(members); i++ {
					for j := i + 2; j < len(members); j++ {
						if i == 0 && j == len(members)-1 {
							continue // ring edge already present
						}
						if rng.Float64() < cfg.ExtraStubEdgeProb {
							if err := g.AddEdge(members[i], members[j], lat(cfg.IntraStubLatency)); err != nil {
								return nil, err
							}
						}
					}
				}
				stubIdx++
			}
		}
	}
	return g, nil
}

// SampleNodes draws n distinct node IDs of the given kind from g, using the
// supplied seed. It returns an error if g has fewer than n such nodes. The
// experiments use it to pick sources, processors and routers disjointly:
// pass the previously drawn IDs as exclude.
func SampleNodes(g *Graph, kind Kind, n int, seed uint64, exclude map[NodeID]bool) ([]NodeID, error) {
	var pool []NodeID
	for _, node := range g.Nodes {
		if node.Kind == kind && !exclude[node.ID] {
			pool = append(pool, node.ID)
		}
	}
	if len(pool) < n {
		return nil, fmt.Errorf("topology: want %d %v nodes, only %d available", n, kind, len(pool))
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xda942042e4dd58b5))
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	out := make([]NodeID, n)
	copy(out, pool[:n])
	return out, nil
}
