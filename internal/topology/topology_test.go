package topology

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.TransitDomains = 2
	cfg.TransitNodes = 2
	cfg.StubDomainsPerNode = 2
	cfg.StubNodes = 4
	return cfg
}

func TestGenerateCounts(t *testing.T) {
	cfg := smallConfig()
	g, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if got, want := g.Len(), cfg.TotalNodes(); got != want {
		t.Fatalf("node count = %d, want %d", got, want)
	}
	transit, stub := 0, 0
	for _, n := range g.Nodes {
		switch n.Kind {
		case Transit:
			transit++
		case Stub:
			stub++
		}
	}
	if transit != cfg.TransitDomains*cfg.TransitNodes {
		t.Errorf("transit count = %d", transit)
	}
	if stub != g.Len()-transit {
		t.Errorf("stub count = %d", stub)
	}
}

func TestGenerateConnected(t *testing.T) {
	g, err := Generate(smallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	dist := g.Dijkstra(0)
	for i, d := range dist {
		if math.IsInf(d, 1) {
			t.Fatalf("node %d unreachable from 0", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgeCount() != b.EdgeCount() {
		t.Fatalf("edge counts differ: %d vs %d", a.EdgeCount(), b.EdgeCount())
	}
	da, db := a.Dijkstra(0), b.Dijkstra(0)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("distances differ at node %d: %v vs %v", i, da[i], db[i])
		}
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(0, 1, -2); err == nil {
		t.Error("negative latency accepted")
	}
	if err := g.AddEdge(0, 1, 2); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	if g.EdgeCount() != 1 {
		t.Errorf("edge count = %d", g.EdgeCount())
	}
}

func TestDijkstraLine(t *testing.T) {
	// 0 -1- 1 -2- 2 -4- 3
	g := NewGraph(4)
	for _, e := range []struct {
		a, b NodeID
		w    float64
	}{{0, 1, 1}, {1, 2, 2}, {2, 3, 4}} {
		if err := g.AddEdge(e.a, e.b, e.w); err != nil {
			t.Fatal(err)
		}
	}
	dist := g.Dijkstra(0)
	want := []float64{0, 1, 3, 7}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], want[i])
		}
	}
	dist2, parent := g.DijkstraTree(0)
	for i := range want {
		if dist2[i] != want[i] {
			t.Errorf("tree dist[%d] = %v", i, dist2[i])
		}
	}
	if parent[0] != -1 || parent[1] != 0 || parent[2] != 1 || parent[3] != 2 {
		t.Errorf("parents = %v", parent)
	}
}

func TestDijkstraShortcut(t *testing.T) {
	// Triangle with a shortcut: 0-2 direct (10) vs via 1 (3).
	g := NewGraph(3)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(1, 2, 2)
	_ = g.AddEdge(0, 2, 10)
	dist := g.Dijkstra(0)
	if dist[2] != 3 {
		t.Errorf("dist[2] = %v, want 3 (via node 1)", dist[2])
	}
}

func TestOracleCachesAndMedian(t *testing.T) {
	g := NewGraph(4)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(1, 2, 1)
	_ = g.AddEdge(2, 3, 1)
	o := NewOracle(g)
	if got := o.Latency(0, 3); got != 3 {
		t.Errorf("Latency(0,3) = %v", got)
	}
	if got := o.Latency(3, 0); got != 3 {
		t.Errorf("Latency(3,0) = %v", got)
	}
	if got := o.Latency(2, 2); got != 0 {
		t.Errorf("Latency(2,2) = %v", got)
	}
	// Median of a path graph is an interior node.
	med := o.Median([]NodeID{0, 1, 2, 3})
	if med != 1 && med != 2 {
		t.Errorf("Median = %v, want 1 or 2", med)
	}
	if got := o.Median(nil); got != -1 {
		t.Errorf("Median(nil) = %v, want -1", got)
	}
}

func TestSampleNodes(t *testing.T) {
	g, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	first, err := SampleNodes(g, Stub, 5, 1, nil)
	if err != nil {
		t.Fatalf("SampleNodes: %v", err)
	}
	exclude := make(map[NodeID]bool)
	for _, n := range first {
		exclude[n] = true
	}
	second, err := SampleNodes(g, Stub, 5, 2, exclude)
	if err != nil {
		t.Fatalf("SampleNodes with exclude: %v", err)
	}
	for _, n := range second {
		if exclude[n] {
			t.Errorf("excluded node %d sampled again", n)
		}
		if g.Nodes[n].Kind != Stub {
			t.Errorf("node %d is not a stub", n)
		}
	}
	if _, err := SampleNodes(g, Transit, 10_000, 1, nil); err == nil {
		t.Error("oversized sample accepted")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{},
		{TransitDomains: 1, TransitNodes: 0},
		func() Config { c := smallConfig(); c.IntraStubLatency = [2]float64{5, 1}; return c }(),
		func() Config { c := smallConfig(); c.InterTransitLatency = [2]float64{0, 1}; return c }(),
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated unexpectedly", i)
		}
	}
}

// TestQuickTriangleInequality: shortest-path distances must satisfy the
// triangle inequality on random connected graphs.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 5))
		n := 8 + int(seed%8)
		g := NewGraph(n)
		// Ring for connectivity plus random chords.
		for i := 0; i < n; i++ {
			_ = g.AddEdge(NodeID(i), NodeID((i+1)%n), 1+r.Float64()*10)
		}
		for i := 0; i < n; i++ {
			a, b := NodeID(r.IntN(n)), NodeID(r.IntN(n))
			if a != b {
				_ = g.AddEdge(a, b, 1+r.Float64()*10)
			}
		}
		o := NewOracle(g)
		for trial := 0; trial < 20; trial++ {
			a, b, c := NodeID(r.IntN(n)), NodeID(r.IntN(n)), NodeID(r.IntN(n))
			if o.Latency(a, c) > o.Latency(a, b)+o.Latency(b, c)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
