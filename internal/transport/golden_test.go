package transport

import (
	"bytes"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/stream"
)

// goldenEnvelopes is one fixture per wire kind (including MsgBatch). The
// data tuple carries TWO attributes on purpose: WireTuple sorts them by
// name, so multi-attribute envelopes are byte-stable (a map-typed Attrs
// field would gob-encode in random iteration order).
func goldenEnvelopes() []struct {
	name string
	env  Envelope
} {
	lit := stream.FloatVal(10)
	sub := &WireSubscription{
		ID:      "q1",
		Seq:     7,
		Streams: []string{"R"},
		Attrs:   []string{"a"},
		Filters: []WirePredicate{{LeftCol: "a", Op: query.Ge, RightLit: &lit}},
	}
	tuple := toWireTuple(stream.Tuple{
		Stream:    "R",
		Timestamp: 42,
		Attrs: map[string]stream.Value{
			"b": stream.StringVal("x"),
			"a": stream.FloatVal(11),
		},
		Size: 24,
	})
	return []struct {
		name string
		env  Envelope
	}{
		{"advert", Envelope{Kind: MsgAdvert, From: 1, StreamName: "R", Origin: 2, Seq: 3}},
		{"unadvertise", Envelope{Kind: MsgUnadvertise, From: 1, StreamName: "R", Origin: 2, Seq: 4}},
		{"subscribe", Envelope{Kind: MsgSubscribe, From: 1, Sub: sub}},
		{"unsubscribe", Envelope{Kind: MsgUnsubscribe, From: 1, SubID: "q1", Seq: 8}},
		{"data", Envelope{Kind: MsgData, From: 1, Tuple: tuple}},
		{"batch", Envelope{Kind: MsgBatch, From: 1, Batch: []Envelope{
			{Kind: MsgAdvert, From: 1, StreamName: "R", Origin: 2, Seq: 3},
			{Kind: MsgData, From: 1, Tuple: tuple},
		}}},
	}
}

// goldenPreamble is the gob type-definition stream a fresh encoder emits
// before the first Envelope value: the wire names and field layout of
// Envelope, WireSubscription, WirePredicate and stream.Value, plus the
// GobEncoder registration of WireTuple (its body is the hand-written flat
// encoding in transport.go, opaque to gob's reflection). Renaming or
// reordering ANY of those fields — or changing the WireTuple body layout —
// changes these bytes: a wire-format break.
const goldenPreamble = "727f03010108456e76656c6f706501ff8000010901044b696e64010400010446726f6d010400010a53747265616d4e616d65010c0001064f726967696e010400010353756201ff820001055375624944010c00010353657101060001055475706c6501ff8c000105426174636801ff8e00000052ff810301011057697265537562736372697074696f6e01ff8200010501024944010c000103536571010600010753747265616d7301ff84000105417474727301ff8400010746696c7465727301ff8a00000016ff83020101085b5d737472696e6701ff8400010c000028ff89020101195b5d7472616e73706f72742e5769726550726564696361746501ff8a0001ff86000071ff850301010d5769726550726564696361746501ff8600010701074c656674436f6c010c0001074c6566744c697401ff880001024f7001040001085269676874436f6c010c00010852696768744c697401ff880001094c656674416c696173010c0001085269676874416c73010c00000028ff870301010556616c756501ff88000103010454797065010400010146010800010153010c0000000aff8b050102ff900000000dff93020102ff940001ff92000028ff9103010108576972654174747201ff9200010201044e616d65010c00010356616c01ff8800000023ff8d020101145b5d7472616e73706f72742e456e76656c6f706501ff8e0001ff800000"

// goldenEnvelopeHex pins the exact gob bytes of every envelope kind — each
// encoded by a FRESH encoder, so the preamble above is part of the pin. Any
// drift here is a wire-format break: old and new nodes in one overlay would
// stop understanding each other. Deliberate format changes must bump the
// fixture AND note the incompatibility; run with COSMOS_UPDATE_GOLDEN=1 to
// print the new bytes.
var goldenEnvelopeHex = map[string]string{
	"advert":      goldenPreamble + "0eff80010201020101520104030300",
	"unadvertise": goldenPreamble + "0eff80010a01020101520104030400",
	"subscribe":   goldenPreamble + "27ff80010401020301027131010701010152010101610101010161020c02010201fe244000000000",
	"unsubscribe": goldenPreamble + "0dff800108010204027131010800",
	"data":        goldenPreamble + "28ff8001060102061f0101525430020161014026000000000000000162030000000000000000017800",
	"batch":       goldenPreamble + "3bff80010c0102070201020102010152010403030001060102061f010152543002016101402600000000000000016203000000000000000001780000",
}

func TestGoldenEnvelopeBytes(t *testing.T) {
	for _, g := range goldenEnvelopes() {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(g.env); err != nil {
			t.Fatalf("%s: encode: %v", g.name, err)
		}
		got := hex.EncodeToString(buf.Bytes())
		if os.Getenv("COSMOS_UPDATE_GOLDEN") != "" {
			fmt.Printf("\t%q: %q,\n", g.name, got)
			continue
		}
		want, ok := goldenEnvelopeHex[g.name]
		if !ok {
			t.Fatalf("%s: no golden bytes recorded", g.name)
		}
		if got != want {
			t.Errorf("%s: wire bytes drifted from golden\n got %s\nwant %s", g.name, got, want)
		}
		// And the pinned bytes decode back to the fixture (round-trip
		// guards against a stale pin surviving a format change).
		raw, err := hex.DecodeString(want)
		if err != nil {
			t.Fatalf("%s: bad golden hex: %v", g.name, err)
		}
		var dec Envelope
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&dec); err != nil {
			t.Fatalf("%s: golden bytes do not decode: %v", g.name, err)
		}
		if dec.Kind != g.env.Kind || dec.From != g.env.From {
			t.Errorf("%s: golden decoded to kind=%d from=%d", g.name, dec.Kind, dec.From)
		}
	}
}

// --- v1 interop: a peer that predates MsgBatch speaks plain envelopes in
// --- both directions.

// v1Peer is a minimal single-envelope peer: a raw listener whose decode
// loop understands only the plain kinds and treats MsgBatch as a protocol
// error — exactly what a pre-batching node would do (unknown kind).
type v1Peer struct {
	ln   net.Listener
	got  chan Envelope
	bad  chan MsgKind
	done chan struct{}
}

func startV1Peer(t *testing.T) *v1Peer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &v1Peer{ln: ln, got: make(chan Envelope, 64), bad: make(chan MsgKind, 64), done: make(chan struct{})}
	go func() {
		defer close(p.done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				for {
					var env Envelope
					if err := dec.Decode(&env); err != nil {
						return
					}
					if env.Kind == MsgBatch || env.Kind <= 0 || env.Kind > MsgUnadvertise {
						p.bad <- env.Kind
						continue
					}
					p.got <- env
				}
			}()
		}
	}()
	t.Cleanup(func() { _ = ln.Close(); <-p.done }) //lint:errdrop test teardown is best-effort
	return p
}

// TestV1InteropSingleEnvelopeFallback: a node configured with
// DisableBatching (the negotiated fallback for a MsgBatch-unaware neighbor)
// sends a v1 peer nothing but plain envelopes, whatever the traffic rate.
func TestV1InteropSingleEnvelopeFallback(t *testing.T) {
	n, err := NewNodeWith(0, "127.0.0.1:0", Options{DisableBatching: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() }) //lint:errdrop test teardown is best-effort
	old := startV1Peer(t)
	n.Connect(1, old.ln.Addr().String())

	// A burst dense enough that batching mode WOULD coalesce it.
	for i := 0; i < 20; i++ {
		n.Peer(1).AdvertFrom(0, fmt.Sprintf("S%d", i), 0, 1)
	}
	n.Flush()
	for i := 0; i < 20; i++ {
		select {
		case env := <-old.got:
			if env.Kind != MsgAdvert {
				t.Fatalf("v1 peer got kind %d, want advert", env.Kind)
			}
		case k := <-old.bad:
			t.Fatalf("v1 peer got undecipherable kind %d (batch leaked into fallback mode)", k)
		case <-time.After(5 * time.Second):
			t.Fatalf("v1 peer received only %d of 20 envelopes", i)
		}
	}
}

// TestV1InteropBatchOfOneUnwrapped: even with batching ON, a lone envelope
// (no traffic behind it in the flush window) goes out in v1 framing — a
// batch of one is unwrapped. Low-rate links interoperate with old peers
// without any configuration.
func TestV1InteropBatchOfOneUnwrapped(t *testing.T) {
	n, err := NewNodeWith(0, "127.0.0.1:0", Options{FlushWindow: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() }) //lint:errdrop test teardown is best-effort
	old := startV1Peer(t)
	n.Connect(1, old.ln.Addr().String())

	n.Peer(1).AdvertFrom(0, "R", 0, 1)
	n.Flush()
	select {
	case env := <-old.got:
		if env.Kind != MsgAdvert || env.StreamName != "R" {
			t.Fatalf("v1 peer got %+v, want plain advert for R", env)
		}
	case k := <-old.bad:
		t.Fatalf("lone envelope arrived as kind %d — batch of one was not unwrapped", k)
	case <-time.After(5 * time.Second):
		t.Fatal("v1 peer never received the lone envelope")
	}
}

// TestV1InteropInbound: envelopes from a v1 peer (plain framing, no
// batches) drive a v2 broker — upgrade one node at a time and the overlay
// keeps working. (The fault suite already covers malformed traffic; this is
// the well-formed v1 sender.)
func TestV1InteropInbound(t *testing.T) {
	n, err := NewNode(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() }) //lint:errdrop test teardown is best-effort
	n.Connect(1, "127.0.0.1:1")         // membership only; we never send to it

	conn, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(Envelope{Kind: MsgAdvert, From: 1, StreamName: "R", Origin: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "v1 advert applied at v2 broker", func() bool {
		_, learned := n.Broker.AdvertStateSize()
		return learned == 1
	})
}
