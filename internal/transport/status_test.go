package transport

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/logging"
	"repro/internal/pubsub"
	"repro/internal/stream"
)

// logBuf is a goroutine-safe sink: the logger writes from the sender
// goroutines while the test polls String.
type logBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestPipeStatusHealthy: after real traffic crosses a link, its status row
// reports connected with no error and nonzero byte accounting.
func TestPipeStatusHealthy(t *testing.T) {
	nodes := line3(t)
	nodes[0].Broker.Advertise("S")
	var got atomic.Int64
	err := nodes[2].Broker.Subscribe(&pubsub.Subscription{ID: "s", Streams: []string{"S"}},
		func(*pubsub.Subscription, stream.Tuple) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "subscription to reach the publisher", func() bool {
		remote, _ := nodes[0].Broker.RoutingStateSize()
		return remote > 0
	})
	nodes[0].Broker.Publish(stream.Tuple{Stream: "S", Size: 24})
	waitFor(t, "delivery", func() bool { return got.Load() > 0 })

	st := nodes[0].PipeStatus()
	if len(st) != 1 || st[0].Peer != 1 {
		t.Fatalf("PipeStatus = %+v, want one row for peer 1", st)
	}
	if !st[0].Healthy() || !st[0].Connected || st[0].LastErr != nil {
		t.Fatalf("link should be healthy and connected: %+v", st[0])
	}
	if st[0].ControlBytes == 0 || st[0].DataBytes == 0 {
		t.Fatalf("byte accounting empty: %+v", st[0])
	}

	// The middle node has pipes to both ends, ascending order.
	mid := nodes[1].PipeStatus()
	if len(mid) != 2 || mid[0].Peer != 0 || mid[1].Peer != 2 {
		t.Fatalf("middle PipeStatus = %+v, want rows for peers 0 and 2", mid)
	}
}

// TestPipeStatusDeadPeer: a link whose peer is gone goes unhealthy once a
// send fails, and the failure is logged through the Options.Logger seam.
func TestPipeStatusDeadPeer(t *testing.T) {
	// Reserve an address with nothing listening on it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}

	var buf logBuf
	log := logging.New(&buf, logging.LevelDebug)
	n, err := NewNodeWith(5, "127.0.0.1:0", Options{Logger: log})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() }) //lint:errdrop test teardown is best-effort
	n.Connect(9, deadAddr)

	// Before any traffic the pipe is pending: not connected, but healthy.
	st := n.PipeStatus()
	if len(st) != 1 || !st[0].Healthy() || st[0].Connected {
		t.Fatalf("pre-traffic status = %+v, want pending-healthy", st)
	}

	n.Broker.Advertise("S") // forces a send toward the dead peer
	waitFor(t, "link to report unhealthy", func() bool {
		st := n.PipeStatus()
		return len(st) == 1 && !st[0].Healthy()
	})
	st = n.PipeStatus()
	if st[0].Connected || st[0].LastErr == nil {
		t.Fatalf("dead link status = %+v, want disconnected with error", st[0])
	}
	waitFor(t, "dial failure to be logged", func() bool {
		return strings.Contains(buf.String(), "msg=\"dial failed\"")
	})
	if out := buf.String(); !strings.Contains(out, "peer=9") {
		t.Fatalf("log line missing peer field:\n%s", out)
	}
}

// TestMsgKindString pins the names the loss logs and handlers report.
func TestMsgKindString(t *testing.T) {
	want := map[MsgKind]string{
		MsgAdvert:      "advert",
		MsgSubscribe:   "subscribe",
		MsgData:        "data",
		MsgUnsubscribe: "unsubscribe",
		MsgUnadvertise: "unadvertise",
		MsgBatch:       "batch",
		MsgKind(99):    "kind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("MsgKind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
