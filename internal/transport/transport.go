package transport

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/pubsub"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
)

var errClosed = errors.New("transport: node closed")

var (
	cSendFailures = metrics.GetCounter("transport.send_failures")
	cSendRetries  = metrics.GetCounter("transport.send_retries")
	cUnknownKind  = metrics.GetCounter("transport.unknown_envelope_kind")
	cMalformed    = metrics.GetCounter("transport.malformed_envelope")
	// Pipeline counters (pipeline.go): MsgBatch wire messages, the
	// envelopes they carried (batch_size/batches = mean batch size),
	// total top-level wire messages written (the syscall proxy), the sum
	// of per-peer queue high-water marks, and data tuples shed by the
	// drop-oldest overflow policy.
	cBatches     = metrics.GetCounter("transport.batches")
	cBatchSize   = metrics.GetCounter("transport.batch_size")
	cWireMsgs    = metrics.GetCounter("transport.wire_msgs")
	cQueueDepth  = metrics.GetCounter("transport.queue_depth")
	cDroppedData = metrics.GetCounter("transport.dropped_data")
)

// MsgKind discriminates wire envelopes.
type MsgKind int

// Envelope kinds.
const (
	MsgAdvert MsgKind = iota + 1
	MsgSubscribe
	MsgData
	MsgUnsubscribe
	// MsgUnadvertise withdraws an advertisement: the (StreamName, Origin)
	// advert at epoch Seq or older is pruned along the advert paths.
	MsgUnadvertise
	// MsgBatch carries a coalesced run of envelopes from one sender's
	// pipeline (Batch, in enqueue order). Batches never nest.
	MsgBatch
)

// String names the kind for logs and loss reports.
func (k MsgKind) String() string {
	switch k {
	case MsgAdvert:
		return "advert"
	case MsgSubscribe:
		return "subscribe"
	case MsgData:
		return "data"
	case MsgUnsubscribe:
		return "unsubscribe"
	case MsgUnadvertise:
		return "unadvertise"
	case MsgBatch:
		return "batch"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Envelope is the single wire message type.
type Envelope struct {
	Kind MsgKind
	From topology.NodeID
	// Advert / Unadvertise: the stream, the broker whose clients publish
	// it, and the epoch the origin stamped the advertisement with.
	StreamName string
	Origin     topology.NodeID
	// Subscribe
	Sub *WireSubscription
	// Unsubscribe (retraction): the withdrawn subscription's ID. Seq is
	// the epoch being retracted (shared with Advert/Unadvertise).
	SubID string
	Seq   uint64
	// Data
	Tuple *WireTuple
	// Batch (MsgBatch only): the coalesced envelopes, oldest first.
	Batch []Envelope
}

// WireTuple is the wire form of stream.Tuple with the attribute map
// flattened to a name-sorted slice. Two reasons: encode and decode of
// Attrs dominate the data plane's CPU once batching has removed the
// syscalls (so WireTuple carries its own GobEncode/GobDecode below, a flat
// hand-written body instead of gob's per-field reflection), and map
// iteration order would make the encoded bytes of a multi-attribute tuple
// differ run to run — sorting makes every envelope byte-stable, which the
// golden-bytes suite pins.
type WireTuple struct {
	Stream    string
	Timestamp int64
	Attrs     []WireAttr // sorted by Name
	Size      int
}

// WireAttr is one attribute of a WireTuple.
type WireAttr struct {
	Name string
	Val  stream.Value
}

func toWireTuple(t stream.Tuple) *WireTuple {
	w := &WireTuple{Stream: t.Stream, Timestamp: t.Timestamp, Size: t.Size}
	if len(t.Attrs) > 0 {
		w.Attrs = make([]WireAttr, 0, len(t.Attrs))
		for name, v := range t.Attrs {
			//lint:maporder the slice is sorted below; iteration order is unobservable
			w.Attrs = append(w.Attrs, WireAttr{Name: name, Val: v})
		}
		sort.Slice(w.Attrs, func(i, j int) bool { return w.Attrs[i].Name < w.Attrs[j].Name })
	}
	return w
}

// wireTupleVersion tags the hand-written WireTuple body so a future layout
// change can coexist with old bytes instead of silently misparsing them.
const wireTupleVersion = 1

// GobEncode writes the flat WireTuple body: version byte, stream name,
// timestamp, size, then each attribute as (name, value type, float bits,
// string). Data tuples are the transport's hot path — the manual body costs
// one buffer alloc where gob's generic struct walk costs a reflect call per
// field per attribute, and the bytes stay deterministic because Attrs is
// name-sorted.
func (w *WireTuple) GobEncode() ([]byte, error) {
	n := 1 + binary.MaxVarintLen64*3 + len(w.Stream)
	for _, a := range w.Attrs {
		n += 2*binary.MaxVarintLen64 + 1 + 8 + len(a.Name) + len(a.Val.S)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, wireTupleVersion)
	buf = binary.AppendUvarint(buf, uint64(len(w.Stream)))
	buf = append(buf, w.Stream...)
	buf = binary.AppendVarint(buf, w.Timestamp)
	buf = binary.AppendVarint(buf, int64(w.Size))
	buf = binary.AppendUvarint(buf, uint64(len(w.Attrs)))
	for _, a := range w.Attrs {
		buf = binary.AppendUvarint(buf, uint64(len(a.Name)))
		buf = append(buf, a.Name...)
		buf = append(buf, byte(a.Val.Type))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(a.Val.F))
		buf = binary.AppendUvarint(buf, uint64(len(a.Val.S)))
		buf = append(buf, a.Val.S...)
	}
	return buf, nil
}

var errBadWireTuple = errors.New("transport: malformed WireTuple body")

// GobDecode parses the body written by GobEncode.
func (w *WireTuple) GobDecode(data []byte) error {
	if len(data) == 0 || data[0] != wireTupleVersion {
		return errBadWireTuple
	}
	data = data[1:]
	str := func() (string, bool) {
		l, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < l {
			return "", false
		}
		s := string(data[n : n+int(l)])
		data = data[n+int(l):]
		return s, true
	}
	varint := func() (int64, bool) {
		v, n := binary.Varint(data)
		if n <= 0 {
			return 0, false
		}
		data = data[n:]
		return v, true
	}
	var ok bool
	if w.Stream, ok = str(); !ok {
		return errBadWireTuple
	}
	if w.Timestamp, ok = varint(); !ok {
		return errBadWireTuple
	}
	size, ok := varint()
	if !ok {
		return errBadWireTuple
	}
	w.Size = int(size)
	count, n := binary.Uvarint(data)
	if n <= 0 || count > uint64(len(data)) { // each attr needs ≥1 byte
		return errBadWireTuple
	}
	data = data[n:]
	w.Attrs = nil
	if count > 0 {
		w.Attrs = make([]WireAttr, count)
		for i := range w.Attrs {
			a := &w.Attrs[i]
			if a.Name, ok = str(); !ok {
				return errBadWireTuple
			}
			if len(data) < 9 {
				return errBadWireTuple
			}
			a.Val.Type = stream.AttrType(data[0])
			a.Val.F = math.Float64frombits(binary.BigEndian.Uint64(data[1:9]))
			data = data[9:]
			if a.Val.S, ok = str(); !ok {
				return errBadWireTuple
			}
		}
	}
	if len(data) != 0 {
		return errBadWireTuple
	}
	return nil
}

func fromWireTuple(w *WireTuple) stream.Tuple {
	// Relay carries the decoded wire form alongside the tuple: if the
	// broker forwards it whole (no projection), the next hop's envelope
	// reuses w instead of re-flattening and re-sorting the attribute map.
	t := stream.Tuple{Stream: w.Stream, Timestamp: w.Timestamp, Size: w.Size, Relay: w}
	if len(w.Attrs) > 0 {
		t.Attrs = make(map[string]stream.Value, len(w.Attrs))
		for _, a := range w.Attrs {
			t.Attrs[a.Name] = a.Val
		}
	}
	return t
}

// WireSubscription is the gob-friendly form of pubsub.Subscription (the
// Predicate type contains interface-free pointers, so a flat encoding keeps
// the wire format stable).
type WireSubscription struct {
	ID      string
	Seq     uint64
	Streams []string
	Attrs   []string
	Filters []WirePredicate
}

// WirePredicate flattens query.Predicate: each operand is either a column
// name or a literal.
type WirePredicate struct {
	LeftCol   string
	LeftLit   *stream.Value
	Op        query.Op
	RightCol  string
	RightLit  *stream.Value
	LeftAlias string
	RightAls  string
}

func toWire(s *pubsub.Subscription) *WireSubscription {
	w := &WireSubscription{
		ID:      s.ID,
		Seq:     s.Seq,
		Streams: append([]string(nil), s.Streams...),
		Attrs:   append([]string(nil), s.Attrs...),
	}
	for _, p := range s.Filters {
		wp := WirePredicate{Op: p.Op}
		if p.Left.Col != nil {
			wp.LeftCol = p.Left.Col.Attr
			wp.LeftAlias = p.Left.Col.Alias
		}
		if p.Left.Lit != nil {
			v := *p.Left.Lit
			wp.LeftLit = &v
		}
		if p.Right.Col != nil {
			wp.RightCol = p.Right.Col.Attr
			wp.RightAls = p.Right.Col.Alias
		}
		if p.Right.Lit != nil {
			v := *p.Right.Lit
			wp.RightLit = &v
		}
		w.Filters = append(w.Filters, wp)
	}
	return w
}

func fromWire(w *WireSubscription) *pubsub.Subscription {
	s := &pubsub.Subscription{
		ID:      w.ID,
		Seq:     w.Seq,
		Streams: append([]string(nil), w.Streams...),
		Attrs:   w.Attrs,
	}
	for _, wp := range w.Filters {
		p := query.Predicate{Op: wp.Op}
		if wp.LeftCol != "" || wp.LeftAlias != "" {
			p.Left.Col = &query.ColRef{Alias: wp.LeftAlias, Attr: wp.LeftCol}
		}
		if wp.LeftLit != nil {
			p.Left.Lit = wp.LeftLit
		}
		if wp.RightCol != "" || wp.RightAls != "" {
			p.Right.Col = &query.ColRef{Alias: wp.RightAls, Attr: wp.RightCol}
		}
		if wp.RightLit != nil {
			p.Right.Lit = wp.RightLit
		}
		s.Filters = append(s.Filters, p)
	}
	return s
}

// Node hosts one broker over TCP. Outbound traffic flows through per-peer
// send pipelines (pipeline.go); inbound connections are served by one
// decode goroutine each.
type Node struct {
	ID     topology.NodeID
	Broker *pubsub.Broker

	opts Options

	mu      sync.Mutex
	ln      net.Listener
	pipes   map[topology.NodeID]*peerPipe
	inbound map[net.Conn]bool
	closed  bool
	wg      sync.WaitGroup

	// pipesSnap is an immutable copy of pipes, swapped on every pipe
	// creation. Per-tuple lookups (deliver, byte accounting) read it
	// lock-free; only a first contact with a new peer takes n.mu.
	pipesSnap atomic.Pointer[map[topology.NodeID]*peerPipe]

	wrap        pubsub.PeerWrapper
	onSendError func(peer topology.NodeID, kind MsgKind, err error)
}

// NewNode creates a broker node listening on addr (e.g. "127.0.0.1:0") with
// default pipeline options.
func NewNode(id topology.NodeID, addr string) (*Node, error) {
	return NewNodeWith(id, addr, Options{})
}

// NewNodeWith creates a broker node with explicit pipeline options.
func NewNodeWith(id topology.NodeID, addr string, opts Options) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &Node{
		ID:      id,
		opts:    opts.withDefaults(),
		ln:      ln,
		pipes:   make(map[topology.NodeID]*peerPipe),
		inbound: make(map[net.Conn]bool),
	}
	n.Broker = pubsub.NewBroker(n, id)
	n.wg.Add(1)
	go n.accept()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Connect registers a neighbor at the given address. Both ends must connect
// to each other (the overlay is built from a static edge list).
func (n *Node) Connect(peer topology.NodeID, addr string) {
	p := n.pipe(peer)
	p.mu.Lock()
	p.addr = addr
	p.mu.Unlock()
	n.Broker.AddNeighbor(peer)
}

// pipe returns the peer's send pipeline, creating it (and starting its
// sender goroutine) on first use. Creation is the only per-peer work that
// touches n.mu; dialing and sending happen on the sender goroutine, so a
// slow peer never stalls another peer's sends, byte accounting, or Close.
func (n *Node) pipe(peer topology.NodeID) *peerPipe {
	if snap := n.pipesSnap.Load(); snap != nil {
		if p, ok := (*snap)[peer]; ok {
			return p
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.pipes[peer]
	if !ok {
		p = newPeerPipe(n, peer)
		n.pipes[peer] = p
		snap := make(map[topology.NodeID]*peerPipe, len(n.pipes))
		for id, pp := range n.pipes {
			snap[id] = pp
		}
		n.pipesSnap.Store(&snap)
		if n.closed {
			p.closed = true
		} else {
			n.wg.Add(1)
			go p.run(n.opts)
		}
	}
	return p
}

// pipesSnapshot returns the live pipes in ascending peer order.
func (n *Node) pipesSnapshot() []*peerPipe {
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]topology.NodeID, 0, len(n.pipes))
	for id := range n.pipes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*peerPipe, len(ids))
	for i, id := range ids {
		out[i] = n.pipes[id]
	}
	return out
}

// Close shuts the node down and waits for its goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	err := n.ln.Close()
	pipes := make([]*peerPipe, 0, len(n.pipes))
	for _, p := range n.pipes {
		//lint:maporder each pipe gets one independent close; visit order is unobservable
		pipes = append(pipes, p)
	}
	for c := range n.inbound {
		//lint:errdrop best-effort teardown: the node is closing and the listener error above is the one reported
		_ = c.Close()
	}
	n.mu.Unlock()
	for _, p := range pipes {
		p.close()
	}
	n.wg.Wait()
	return err
}

// Flush blocks until every envelope enqueued before the call has been
// handed to the operating system (or shed/terminally failed by policy) and
// the connection buffers are flushed. It says nothing about the REMOTE
// side having processed the envelopes — drain oracles over an overlay still
// poll the receiving brokers. pubsub.Flusher seam for Quiesce-style oracles.
func (n *Node) Flush() {
	for _, p := range n.pipesSnapshot() {
		p.drain()
	}
}

// accept serves inbound envelope streams.
func (n *Node) accept() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			//lint:errdrop connection raced the shutdown and is discarded unused; nothing to salvage from its close
			_ = conn.Close()
			return
		}
		n.inbound[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.serve(conn)
	}
}

func (n *Node) serve(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
		//lint:errdrop the decode loop already ended this stream; close is cleanup, its error changes nothing
		_ = conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		if env.Kind == MsgBatch {
			if len(env.Batch) == 0 {
				cMalformed.Inc()
				continue
			}
			for i := range env.Batch {
				if env.Batch[i].Kind == MsgBatch {
					cMalformed.Inc() // batches never nest
					continue
				}
				n.dispatch(env.Batch[i])
			}
			continue
		}
		n.dispatch(env)
	}
}

// dispatch hands one protocol envelope to the broker. Called for plain
// envelopes and for each member of a batch — the broker (and anything
// wrapped around it) always sees individual protocol messages, whatever
// framing they arrived in.
func (n *Node) dispatch(env Envelope) {
	switch env.Kind {
	case MsgAdvert:
		n.Broker.AdvertFrom(env.From, env.StreamName, env.Origin, env.Seq)
	case MsgUnadvertise:
		n.Broker.UnadvertFrom(env.From, env.StreamName, env.Origin, env.Seq)
	case MsgSubscribe:
		if env.Sub == nil {
			cMalformed.Inc()
			return
		}
		n.Broker.PropagateFrom(fromWire(env.Sub), env.From)
	case MsgUnsubscribe:
		n.Broker.RetractFrom(env.From, env.SubID, env.Seq)
	case MsgData:
		if env.Tuple == nil {
			cMalformed.Inc()
			return
		}
		n.Broker.RouteFrom(fromWireTuple(env.Tuple), env.From)
	default:
		cUnknownKind.Inc()
	}
}

// deliver enqueues one envelope on the peer's send pipeline. Non-blocking
// for data (drop-oldest under pressure); control blocks only at the
// configured queue bound (backpressure). Everything downstream — dialing,
// batching, retry backoff, terminal-failure surfacing — runs on the pipe's
// sender goroutine, never on the calling (routing) goroutine.
func (n *Node) deliver(peer topology.NodeID, env Envelope) {
	n.pipe(peer).enqueue(env, n.opts)
}

// sendErrorHandler returns the registered terminal-loss callback.
func (n *Node) sendErrorHandler() func(peer topology.NodeID, kind MsgKind, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.onSendError
}

// SetSendErrorHandler installs a callback invoked whenever an envelope is
// lost for good (all retries exhausted, or a data tuple's single attempt
// failed). The callback runs on the pipe's sender goroutine; it must not
// block it indefinitely.
func (n *Node) SetSendErrorHandler(h func(peer topology.NodeID, kind MsgKind, err error)) {
	n.mu.Lock()
	n.onSendError = h
	n.mu.Unlock()
}

// SetPeerWrapper installs (or, with nil, removes) a pubsub.PeerWrapper
// around the node's outbound peer endpoints — the same fault-injection seam
// Network.SetPeerWrapper provides in-process. The wrapper sees every
// individual protocol message BEFORE it enters the send pipeline, so a
// chaos fabric's per-message fate draws are batching-agnostic: faults apply
// per envelope, never per batch.
func (n *Node) SetPeerWrapper(w pubsub.PeerWrapper) {
	n.mu.Lock()
	n.wrap = w
	n.mu.Unlock()
}

// remotePeer adapts one neighbor to pubsub.Peer.
type remotePeer struct {
	n  *Node
	id topology.NodeID
}

func (r remotePeer) AdvertFrom(from topology.NodeID, streamName string, origin topology.NodeID, seq uint64) {
	r.n.deliver(r.id, Envelope{Kind: MsgAdvert, From: from, StreamName: streamName, Origin: origin, Seq: seq})
}

func (r remotePeer) UnadvertFrom(from topology.NodeID, streamName string, origin topology.NodeID, seq uint64) {
	r.n.deliver(r.id, Envelope{Kind: MsgUnadvertise, From: from, StreamName: streamName, Origin: origin, Seq: seq})
}

func (r remotePeer) PropagateFrom(sub *pubsub.Subscription, from topology.NodeID) {
	r.n.deliver(r.id, Envelope{Kind: MsgSubscribe, From: from, Sub: toWire(sub)})
}

func (r remotePeer) RetractFrom(from topology.NodeID, id string, seq uint64) {
	r.n.deliver(r.id, Envelope{Kind: MsgUnsubscribe, From: from, SubID: id, Seq: seq})
}

func (r remotePeer) RouteFrom(t stream.Tuple, from topology.NodeID) {
	// A relayed tuple forwarded whole already carries its wire form
	// (fromWireTuple stashed it in Relay; projection would have dropped
	// it). WireTuples are immutable once enqueued, so sharing one across
	// output pipes is safe. The field guard is belt-and-braces against a
	// future caller attaching a stale hint.
	w, ok := t.Relay.(*WireTuple)
	if !ok || w.Stream != t.Stream || w.Timestamp != t.Timestamp ||
		w.Size != t.Size || len(w.Attrs) != len(t.Attrs) {
		w = toWireTuple(t)
	}
	r.n.deliver(r.id, Envelope{Kind: MsgData, From: from, Tuple: w})
}

// Peer implements pubsub.Fabric.
func (n *Node) Peer(id topology.NodeID) pubsub.Peer {
	var p pubsub.Peer = remotePeer{n: n, id: id}
	n.mu.Lock()
	w := n.wrap
	n.mu.Unlock()
	if w != nil {
		p = w.WrapPeer(id, p)
	}
	return p
}

// CountControl implements pubsub.Fabric. Per-peer atomics: accounting from
// routing goroutines never contends with dials, sends, or Close.
func (n *Node) CountControl(_, to topology.NodeID, size int) {
	n.pipe(to).controlBytes.Add(int64(size))
}

// CountData implements pubsub.Fabric.
func (n *Node) CountData(_, to topology.NodeID, size int) {
	n.pipe(to).dataBytes.Add(int64(size))
}

// SentBytes returns the data and control bytes this node sent per peer.
// Per-peer totals are integers (exact), summed in ascending peer order and
// converted to float last — the float-determinism discipline: were these
// float sums, map order would drift the total bit-for-bit across runs.
func (n *Node) SentBytes() (data, control float64) {
	var d, c int64
	for _, p := range n.pipesSnapshot() {
		d += p.dataBytes.Load()
		c += p.controlBytes.Load()
	}
	return float64(d), float64(c)
}

var _ pubsub.Fabric = (*Node)(nil)
var _ pubsub.Flusher = (*Node)(nil)
