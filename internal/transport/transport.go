package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/pubsub"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
)

// Send self-healing knobs. Control-plane envelopes carry routing state the
// overlay cannot reconstruct on its own, so a failed send is retried over a
// fresh connection with capped exponential backoff; data tuples are
// best-effort (the data plane promises at-most-once) and get one attempt.
const (
	sendAttempts   = 4
	retryBaseDelay = 2 * time.Millisecond
	retryMaxDelay  = 50 * time.Millisecond
	// maxRetryBudget bounds concurrently retrying sends per node: past the
	// budget, failures surface immediately rather than queueing sleeps
	// behind a dead peer.
	maxRetryBudget = 64
)

var errClosed = errors.New("transport: node closed")

var (
	cSendFailures = metrics.GetCounter("transport.send_failures")
	cSendRetries  = metrics.GetCounter("transport.send_retries")
	cUnknownKind  = metrics.GetCounter("transport.unknown_envelope_kind")
	cMalformed    = metrics.GetCounter("transport.malformed_envelope")
)

// MsgKind discriminates wire envelopes.
type MsgKind int

// Envelope kinds.
const (
	MsgAdvert MsgKind = iota + 1
	MsgSubscribe
	MsgData
	MsgUnsubscribe
	// MsgUnadvertise withdraws an advertisement: the (StreamName, Origin)
	// advert at epoch Seq or older is pruned along the advert paths.
	MsgUnadvertise
)

// Envelope is the single wire message type.
type Envelope struct {
	Kind MsgKind
	From topology.NodeID
	// Advert / Unadvertise: the stream, the broker whose clients publish
	// it, and the epoch the origin stamped the advertisement with.
	StreamName string
	Origin     topology.NodeID
	// Subscribe
	Sub *WireSubscription
	// Unsubscribe (retraction): the withdrawn subscription's ID. Seq is
	// the epoch being retracted (shared with Advert/Unadvertise).
	SubID string
	Seq   uint64
	// Data
	Tuple *stream.Tuple
}

// WireSubscription is the gob-friendly form of pubsub.Subscription (the
// Predicate type contains interface-free pointers, so a flat encoding keeps
// the wire format stable).
type WireSubscription struct {
	ID      string
	Seq     uint64
	Streams []string
	Attrs   []string
	Filters []WirePredicate
}

// WirePredicate flattens query.Predicate: each operand is either a column
// name or a literal.
type WirePredicate struct {
	LeftCol   string
	LeftLit   *stream.Value
	Op        query.Op
	RightCol  string
	RightLit  *stream.Value
	LeftAlias string
	RightAls  string
}

func toWire(s *pubsub.Subscription) *WireSubscription {
	w := &WireSubscription{
		ID:      s.ID,
		Seq:     s.Seq,
		Streams: append([]string(nil), s.Streams...),
		Attrs:   append([]string(nil), s.Attrs...),
	}
	for _, p := range s.Filters {
		wp := WirePredicate{Op: p.Op}
		if p.Left.Col != nil {
			wp.LeftCol = p.Left.Col.Attr
			wp.LeftAlias = p.Left.Col.Alias
		}
		if p.Left.Lit != nil {
			v := *p.Left.Lit
			wp.LeftLit = &v
		}
		if p.Right.Col != nil {
			wp.RightCol = p.Right.Col.Attr
			wp.RightAls = p.Right.Col.Alias
		}
		if p.Right.Lit != nil {
			v := *p.Right.Lit
			wp.RightLit = &v
		}
		w.Filters = append(w.Filters, wp)
	}
	return w
}

func fromWire(w *WireSubscription) *pubsub.Subscription {
	s := &pubsub.Subscription{
		ID:      w.ID,
		Seq:     w.Seq,
		Streams: append([]string(nil), w.Streams...),
		Attrs:   w.Attrs,
	}
	for _, wp := range w.Filters {
		p := query.Predicate{Op: wp.Op}
		if wp.LeftCol != "" || wp.LeftAlias != "" {
			p.Left.Col = &query.ColRef{Alias: wp.LeftAlias, Attr: wp.LeftCol}
		}
		if wp.LeftLit != nil {
			p.Left.Lit = wp.LeftLit
		}
		if wp.RightCol != "" || wp.RightAls != "" {
			p.Right.Col = &query.ColRef{Alias: wp.RightAls, Attr: wp.RightCol}
		}
		if wp.RightLit != nil {
			p.Right.Lit = wp.RightLit
		}
		s.Filters = append(s.Filters, p)
	}
	return s
}

// Node hosts one broker over TCP.
type Node struct {
	ID     topology.NodeID
	Broker *pubsub.Broker

	mu      sync.Mutex
	ln      net.Listener
	peers   map[topology.NodeID]*peerConn
	addrs   map[topology.NodeID]string
	inbound map[net.Conn]bool
	data    map[topology.NodeID]float64
	control map[topology.NodeID]float64
	closed  bool
	wg      sync.WaitGroup

	retrySlots  int
	onSendError func(peer topology.NodeID, kind MsgKind, err error)
}

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// NewNode creates a broker node listening on addr (e.g. "127.0.0.1:0").
func NewNode(id topology.NodeID, addr string) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &Node{
		ID:         id,
		ln:         ln,
		peers:      make(map[topology.NodeID]*peerConn),
		addrs:      make(map[topology.NodeID]string),
		inbound:    make(map[net.Conn]bool),
		data:       make(map[topology.NodeID]float64),
		control:    make(map[topology.NodeID]float64),
		retrySlots: maxRetryBudget,
	}
	n.Broker = pubsub.NewBroker(n, id)
	n.wg.Add(1)
	go n.accept()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Connect registers a neighbor at the given address. Both ends must connect
// to each other (the overlay is built from a static edge list).
func (n *Node) Connect(peer topology.NodeID, addr string) {
	n.mu.Lock()
	n.addrs[peer] = addr
	n.mu.Unlock()
	n.Broker.AddNeighbor(peer)
}

// Close shuts the node down and waits for its goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	err := n.ln.Close()
	for _, p := range n.peers {
		//lint:errdrop best-effort teardown: the node is closing and the listener error above is the one reported
		_ = p.conn.Close()
	}
	for c := range n.inbound {
		//lint:errdrop best-effort teardown: the node is closing and the listener error above is the one reported
		_ = c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	return err
}

// accept serves inbound envelope streams.
func (n *Node) accept() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			//lint:errdrop connection raced the shutdown and is discarded unused; nothing to salvage from its close
			_ = conn.Close()
			return
		}
		n.inbound[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.serve(conn)
	}
}

func (n *Node) serve(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
		//lint:errdrop the decode loop already ended this stream; close is cleanup, its error changes nothing
		_ = conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		switch env.Kind {
		case MsgAdvert:
			n.Broker.AdvertFrom(env.From, env.StreamName, env.Origin, env.Seq)
		case MsgUnadvertise:
			n.Broker.UnadvertFrom(env.From, env.StreamName, env.Origin, env.Seq)
		case MsgSubscribe:
			if env.Sub == nil {
				cMalformed.Inc()
				continue
			}
			n.Broker.PropagateFrom(fromWire(env.Sub), env.From)
		case MsgUnsubscribe:
			n.Broker.RetractFrom(env.From, env.SubID, env.Seq)
		case MsgData:
			if env.Tuple == nil {
				cMalformed.Inc()
				continue
			}
			n.Broker.RouteFrom(*env.Tuple, env.From)
		default:
			cUnknownKind.Inc()
		}
	}
}

// send delivers one envelope to a peer, dialing lazily. A failed encode
// leaves the gob stream (and usually the connection) broken, so the cached
// peerConn is evicted and closed — the next send redials instead of
// inheriting a poisoned encoder. The eviction is identity-checked under
// n.mu: a concurrent sender may already have replaced the entry.
func (n *Node) send(peer topology.NodeID, env Envelope) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("transport: node %d: %w", n.ID, errClosed)
	}
	pc, ok := n.peers[peer]
	if !ok {
		addr, known := n.addrs[peer]
		if !known {
			n.mu.Unlock()
			return fmt.Errorf("transport: node %d has no address for peer %d", n.ID, peer)
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			n.mu.Unlock()
			return fmt.Errorf("transport: dial peer %d: %w", peer, err)
		}
		pc = &peerConn{conn: conn, enc: gob.NewEncoder(conn)}
		n.peers[peer] = pc
	}
	n.mu.Unlock()

	pc.mu.Lock()
	err := pc.enc.Encode(env)
	pc.mu.Unlock()
	if err != nil {
		//lint:errdrop the encode error is the one propagated; closing the poisoned conn is disposal, not I/O
		_ = pc.conn.Close()
		n.mu.Lock()
		if n.peers[peer] == pc {
			delete(n.peers, peer)
		}
		n.mu.Unlock()
		return fmt.Errorf("transport: send to peer %d: %w", peer, err)
	}
	return nil
}

// acquireRetrySlot claims one unit of the node's in-flight retry budget.
func (n *Node) acquireRetrySlot() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || n.retrySlots <= 0 {
		return false
	}
	n.retrySlots--
	return true
}

func (n *Node) releaseRetrySlot() {
	n.mu.Lock()
	n.retrySlots++
	n.mu.Unlock()
}

// deliver sends one envelope with the per-kind retry policy and surfaces
// terminal failures instead of dropping them on the floor: the failure
// counter always moves, and the node's send-error handler (if any) is told
// which peer and kind were lost so the layer above can repair (e.g. declare
// the link failed and re-attach).
func (n *Node) deliver(peer topology.NodeID, env Envelope) {
	err := n.send(peer, env)
	if err == nil {
		return
	}
	attempts := sendAttempts
	if env.Kind == MsgData {
		attempts = 1 // data plane is at-most-once; never retry tuples
	}
	for try := 1; try < attempts && !errors.Is(err, errClosed); try++ {
		if !n.acquireRetrySlot() {
			break
		}
		cSendRetries.Inc()
		delay := retryBaseDelay << (try - 1)
		if delay > retryMaxDelay {
			delay = retryMaxDelay
		}
		time.Sleep(delay)
		err = n.send(peer, env)
		n.releaseRetrySlot()
		if err == nil {
			return
		}
	}
	if errors.Is(err, errClosed) {
		return // teardown noise, not a lost link
	}
	cSendFailures.Inc()
	n.mu.Lock()
	h := n.onSendError
	n.mu.Unlock()
	if h != nil {
		h(peer, env.Kind, err)
	}
}

// SetSendErrorHandler installs a callback invoked whenever an envelope is
// lost for good (all retries exhausted). The callback runs on the sending
// goroutine; it must not call back into Node under the broker's lock.
func (n *Node) SetSendErrorHandler(h func(peer topology.NodeID, kind MsgKind, err error)) {
	n.mu.Lock()
	n.onSendError = h
	n.mu.Unlock()
}

// remotePeer adapts one neighbor to pubsub.Peer.
type remotePeer struct {
	n  *Node
	id topology.NodeID
}

func (r remotePeer) AdvertFrom(from topology.NodeID, streamName string, origin topology.NodeID, seq uint64) {
	r.n.deliver(r.id, Envelope{Kind: MsgAdvert, From: from, StreamName: streamName, Origin: origin, Seq: seq})
}

func (r remotePeer) UnadvertFrom(from topology.NodeID, streamName string, origin topology.NodeID, seq uint64) {
	r.n.deliver(r.id, Envelope{Kind: MsgUnadvertise, From: from, StreamName: streamName, Origin: origin, Seq: seq})
}

func (r remotePeer) PropagateFrom(sub *pubsub.Subscription, from topology.NodeID) {
	r.n.deliver(r.id, Envelope{Kind: MsgSubscribe, From: from, Sub: toWire(sub)})
}

func (r remotePeer) RetractFrom(from topology.NodeID, id string, seq uint64) {
	r.n.deliver(r.id, Envelope{Kind: MsgUnsubscribe, From: from, SubID: id, Seq: seq})
}

func (r remotePeer) RouteFrom(t stream.Tuple, from topology.NodeID) {
	r.n.deliver(r.id, Envelope{Kind: MsgData, From: from, Tuple: &t})
}

// Peer implements pubsub.Fabric.
func (n *Node) Peer(id topology.NodeID) pubsub.Peer { return remotePeer{n: n, id: id} }

// CountControl implements pubsub.Fabric.
func (n *Node) CountControl(_, to topology.NodeID, size int) {
	n.mu.Lock()
	n.control[to] += float64(size)
	n.mu.Unlock()
}

// CountData implements pubsub.Fabric.
func (n *Node) CountData(_, to topology.NodeID, size int) {
	n.mu.Lock()
	n.data[to] += float64(size)
	n.mu.Unlock()
}

// SentBytes returns the data and control bytes this node sent per peer.
func (n *Node) SentBytes() (data, control float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return sumByPeer(n.data), sumByPeer(n.control)
}

// sumByPeer adds per-peer byte totals in ascending peer order: float
// addition is not associative, so a map-order sum would drift bit-for-bit
// across runs (the TrafficReport bug class).
func sumByPeer(m map[topology.NodeID]float64) float64 {
	ids := make([]topology.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var total float64
	for _, id := range ids {
		total += m[id]
	}
	return total
}

var _ pubsub.Fabric = (*Node)(nil)
