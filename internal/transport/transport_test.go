package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/pubsub"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
)

// line3 builds a 3-node TCP overlay 0-1-2 on loopback.
func line3(t *testing.T) [3]*Node {
	t.Helper()
	var nodes [3]*Node
	for i := range nodes {
		n, err := NewNode(topology.NodeID(i), "127.0.0.1:0")
		if err != nil {
			t.Fatalf("NewNode %d: %v", i, err)
		}
		t.Cleanup(func() { _ = n.Close() }) //lint:errdrop test teardown is best-effort
		nodes[i] = n
	}
	nodes[0].Connect(1, nodes[1].Addr())
	nodes[1].Connect(0, nodes[0].Addr())
	nodes[1].Connect(2, nodes[2].Addr())
	nodes[2].Connect(1, nodes[1].Addr())
	return nodes
}

func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestEndToEndOverTCP(t *testing.T) {
	nodes := line3(t)

	// Node 0 advertises stream R; the flood must traverse both hops.
	nodes[0].Broker.Advertise("R")
	waitFor(t, "advert relayed by node 1", func() bool {
		_, ctrl := nodes[1].SentBytes()
		return ctrl > 0
	})
	time.Sleep(50 * time.Millisecond)

	var mu sync.Mutex
	var got []stream.Tuple
	lit := stream.FloatVal(10)
	sub := &pubsub.Subscription{
		ID:      "s",
		Streams: []string{"R"},
		Filters: []query.Predicate{{
			Left:  query.Operand{Col: &query.ColRef{Attr: "a"}},
			Op:    query.Gt,
			Right: query.Operand{Lit: &lit},
		}},
	}
	if err := nodes[2].Broker.Subscribe(sub, func(_ *pubsub.Subscription, tp stream.Tuple) {
		mu.Lock()
		got = append(got, tp)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	// Subscription propagation is asynchronous over TCP.
	time.Sleep(100 * time.Millisecond)

	pub := func(a float64) {
		nodes[0].Broker.Publish(stream.Tuple{
			Stream:    "R",
			Timestamp: 1,
			Attrs:     map[string]stream.Value{"a": stream.FloatVal(a)},
			Size:      24,
		})
	}
	pub(15)
	pub(5) // filtered at the source broker

	waitFor(t, "delivery at node 2", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 1
	})
	time.Sleep(50 * time.Millisecond) // let any stray deliveries land
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Attrs["a"].F != 15 {
		t.Fatalf("delivered %v, want one tuple with a=15", got)
	}
	// Early filtering: node 0 sent exactly one data tuple.
	data0, _ := nodes[0].SentBytes()
	if data0 != 24 {
		t.Errorf("node 0 sent %v data bytes, want 24", data0)
	}
}

// TestUnsubscribeRetractionOverTCP: a subscription registered before the
// advert exists is re-propagated over the wire when the advert arrives, and
// an unsubscribe retraction crosses the wire and drains the remote routing
// state (publishes stop leaving the source).
func TestUnsubscribeRetractionOverTCP(t *testing.T) {
	nodes := line3(t)

	// Subscribe BEFORE any advert: the lifecycle replay must carry the
	// subscription to node 0 once the advert floods.
	var mu sync.Mutex
	delivered := 0
	sub := &pubsub.Subscription{ID: "life", Streams: []string{"R"}}
	if err := nodes[2].Broker.Subscribe(sub, func(*pubsub.Subscription, stream.Tuple) {
		mu.Lock()
		delivered++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	nodes[0].Broker.Advertise("R")
	waitFor(t, "re-propagated subscription recorded at node 0", func() bool {
		remote, _ := nodes[0].Broker.RoutingStateSize()
		return remote == 1
	})

	nodes[0].Broker.Publish(stream.Tuple{Stream: "R", Timestamp: 1,
		Attrs: map[string]stream.Value{"a": stream.FloatVal(1)}, Size: 24})
	waitFor(t, "delivery at node 2", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return delivered == 1
	})

	// Retraction crosses both hops and removes the remote records.
	nodes[2].Broker.Unsubscribe("life")
	waitFor(t, "retraction drains node 0 and node 1", func() bool {
		r0, _ := nodes[0].Broker.RoutingStateSize()
		r1, _ := nodes[1].Broker.RoutingStateSize()
		return r0 == 0 && r1 == 0
	})
	dataBefore, _ := nodes[0].SentBytes()
	nodes[0].Broker.Publish(stream.Tuple{Stream: "R", Timestamp: 2,
		Attrs: map[string]stream.Value{"a": stream.FloatVal(2)}, Size: 24})
	time.Sleep(50 * time.Millisecond)
	if dataAfter, _ := nodes[0].SentBytes(); dataAfter != dataBefore {
		t.Errorf("publish after retraction still left the source: %v -> %v data bytes", dataBefore, dataAfter)
	}
	mu.Lock()
	defer mu.Unlock()
	if delivered != 1 {
		t.Errorf("deliveries = %d, want 1 (none after unsubscribe)", delivered)
	}
}

func TestWireSubscriptionRoundTrip(t *testing.T) {
	lit := stream.FloatVal(7)
	in := &pubsub.Subscription{
		ID:      "rt",
		Seq:     42,
		Streams: []string{"R", "S"},
		Attrs:   []string{"a", "b"},
		Filters: []query.Predicate{{
			Left:  query.Operand{Col: &query.ColRef{Alias: "S1", Attr: "a"}},
			Op:    query.Le,
			Right: query.Operand{Lit: &lit},
		}},
	}
	out := fromWire(toWire(in))
	if out.ID != in.ID || out.Seq != 42 || len(out.Streams) != 2 || len(out.Attrs) != 2 || len(out.Filters) != 1 {
		t.Fatalf("round trip mangled subscription: %+v", out)
	}
	f := out.Filters[0]
	if f.Left.Col == nil || f.Left.Col.Attr != "a" || f.Left.Col.Alias != "S1" {
		t.Errorf("left operand = %+v", f.Left)
	}
	if f.Right.Lit == nil || f.Right.Lit.F != 7 {
		t.Errorf("right operand = %+v", f.Right)
	}
	if !in.Covers(out) || !out.Covers(in) {
		t.Error("round-tripped subscription not equivalent")
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	n, err := NewNode(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
