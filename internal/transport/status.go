package transport

import "repro/internal/topology"

// PipeStatus is a point-in-time snapshot of one peer send pipeline's health
// and accounting — the rows behind the node's /healthz endpoint and the
// per-link section of /debug/overlay.dot.
type PipeStatus struct {
	Peer topology.NodeID
	Addr string
	// Connected reports a live outbound connection. A pipe that has not
	// needed to dial yet (no traffic since Connect) is not connected and
	// not unhealthy: health is judged by LastErr.
	Connected bool
	// LastErr is the most recent dial or write failure, nil after a
	// successful (re)dial. Healthy means LastErr == nil.
	LastErr error
	// Queued counts envelopes waiting in the pipe (control + data).
	Queued int
	// DataBytes and ControlBytes are the send-side per-plane byte totals
	// accounted against this link (pubsub.Fabric accounting).
	DataBytes    int64
	ControlBytes int64
}

// Healthy reports whether the link is usable: either no failure has been
// observed since the last successful dial, or no dial was needed yet.
func (s PipeStatus) Healthy() bool { return s.LastErr == nil }

// PipeStatus snapshots every peer pipe in ascending peer order.
func (n *Node) PipeStatus() []PipeStatus {
	pipes := n.pipesSnapshot()
	out := make([]PipeStatus, 0, len(pipes))
	for _, p := range pipes {
		p.mu.Lock()
		st := PipeStatus{
			Peer:      p.id,
			Addr:      p.addr,
			Connected: p.connected,
			LastErr:   p.lastErr,
			Queued:    len(p.queue),
		}
		p.mu.Unlock()
		st.DataBytes = p.dataBytes.Load()
		st.ControlBytes = p.controlBytes.Load()
		out = append(out, st)
	}
	return out
}
