package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/pubsub"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
)

// TestTransportEquivalence drives the same randomized workload over the same
// randomized live-TCP overlay in batched mode, reference (DisableBatching)
// mode, and an aggressive small-batch mode, and requires all three to
// deliver the identical multiset of tuples and to drain to the identical
// (empty) routing state. Batching is pure framing: the broker protocol must
// not be able to tell the difference.
func TestTransportEquivalence(t *testing.T) {
	modes := []struct {
		name string
		opts Options
	}{
		{"batched", Options{}},
		{"unbatched", Options{DisableBatching: true}},
		// Small batches with no flush window: exercises the partial-batch
		// path and batch-of-1 unwrapping under the same workload.
		{"batch4-nowindow", Options{BatchSize: 4, FlushWindow: -1}},
	}
	for seed := int64(1); seed <= 2; seed++ {
		var want map[string]int
		for _, m := range modes {
			name := fmt.Sprintf("seed%d/%s", seed, m.name)
			got := runEquivalenceWorkload(t, name, seed, m.opts)
			if want == nil {
				want = got // batched mode is the reference multiset
				if len(want) == 0 {
					t.Fatalf("%s: workload delivered nothing — vacuous equivalence", name)
				}
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("%s: delivered %d distinct (sub,tuple) pairs, want %d", name, len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("%s: delivery %q seen %d times, want %d", name, k, got[k], n)
				}
			}
		}
	}
}

// runEquivalenceWorkload builds a random tree overlay, runs a scripted
// advert/subscribe/publish/churn workload derived from seed, verifies the
// overlay drains to empty, and returns the delivery multiset keyed by
// (subscriber node, sub ID, stream, timestamp).
func runEquivalenceWorkload(t *testing.T, name string, seed int64, opts Options) map[string]int {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	const nNodes = 6

	nodes := make([]*Node, nNodes)
	for i := range nodes {
		n, err := NewNodeWith(topology.NodeID(i), "127.0.0.1:0", opts)
		if err != nil {
			t.Fatalf("%s: NewNodeWith %d: %v", name, i, err)
		}
		defer n.Close() //lint:errdrop test teardown is best-effort
		nodes[i] = n
	}
	// Random spanning tree: node i attaches to a random earlier node.
	for i := 1; i < nNodes; i++ {
		p := rnd.Intn(i)
		nodes[i].Connect(topology.NodeID(p), nodes[p].Addr())
		nodes[p].Connect(topology.NodeID(i), nodes[i].Addr())
	}

	var mu sync.Mutex
	delivered := make(map[string]int)
	var deliveredN int

	quiesce := func(phase string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		stable := 0
		last := ""
		for time.Now().Before(deadline) {
			for _, n := range nodes {
				n.Flush()
			}
			fp := ""
			for _, n := range nodes {
				remote, local := n.Broker.RoutingStateSize()
				own, learned := n.Broker.AdvertStateSize()
				fp += fmt.Sprintf("%d.%d.%d.%d;", remote, local, own, learned)
			}
			mu.Lock()
			fp += fmt.Sprintf("d%d", deliveredN)
			mu.Unlock()
			if fp == last {
				if stable++; stable >= 3 {
					return
				}
			} else {
				stable, last = 0, fp
			}
			time.Sleep(15 * time.Millisecond)
		}
		t.Fatalf("%s: overlay did not quiesce after %s", name, phase)
	}

	// Phase 1: adverts. Each stream lives at a random node.
	const nStreams = 4
	src := make([]int, nStreams)
	for s := range src {
		src[s] = rnd.Intn(nNodes)
		nodes[src[s]].Broker.Advertise(fmt.Sprintf("S%d", s))
	}
	quiesce("adverts")

	// Phase 2: subscriptions — nested thresholds on a shared attribute so
	// containment (and its suppression machinery) engages on the wire.
	type subAt struct {
		node int
		id   string
	}
	var subs []subAt
	for i := 0; i < 10; i++ {
		at := rnd.Intn(nNodes)
		strm := fmt.Sprintf("S%d", rnd.Intn(nStreams))
		id := fmt.Sprintf("sub%d@%d", i, at)
		sub := &pubsub.Subscription{ID: id, Streams: []string{strm}}
		if rnd.Intn(3) > 0 { // 2/3 filtered, thresholds overlap across subs
			lit := stream.FloatVal(float64(10 * rnd.Intn(5)))
			sub.Filters = []query.Predicate{{
				Left:  query.Operand{Col: &query.ColRef{Attr: "a"}},
				Op:    query.Ge,
				Right: query.Operand{Lit: &lit},
			}}
		}
		err := nodes[at].Broker.Subscribe(sub, func(s *pubsub.Subscription, tp stream.Tuple) {
			mu.Lock()
			delivered[fmt.Sprintf("%s/%s/%d", s.ID, tp.Stream, tp.Timestamp)]++
			deliveredN++
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("%s: subscribe %s: %v", name, id, err)
		}
		subs = append(subs, subAt{at, id})
	}
	quiesce("subscriptions")

	// Phase 3: publish a burst from every source.
	ts := int64(0)
	publishBurst := func(k int) {
		for s := 0; s < nStreams; s++ {
			for j := 0; j < k; j++ {
				ts++
				nodes[src[s]].Broker.Publish(stream.Tuple{
					Stream:    fmt.Sprintf("S%d", s),
					Timestamp: ts,
					Attrs:     map[string]stream.Value{"a": stream.FloatVal(float64(rnd.Intn(60)))},
					Size:      24,
				})
			}
		}
	}
	publishBurst(6)
	quiesce("first burst")

	// Phase 4: churn — retract some subscriptions and one advert, then
	// publish again into the reshaped overlay.
	for i, s := range subs {
		if i%3 == 0 {
			nodes[s.node].Broker.Unsubscribe(s.id)
		}
	}
	nodes[src[0]].Broker.Unadvertise("S0")
	quiesce("churn")
	publishBurst(4)
	quiesce("second burst")

	// Phase 5: teardown — the overlay must drain to empty in every mode.
	for i, s := range subs {
		if i%3 != 0 {
			nodes[s.node].Broker.Unsubscribe(s.id)
		}
	}
	for s := 1; s < nStreams; s++ {
		nodes[src[s]].Broker.Unadvertise(fmt.Sprintf("S%d", s))
	}
	quiesce("teardown")
	for i, n := range nodes {
		remote, local := n.Broker.RoutingStateSize()
		own, learned := n.Broker.AdvertStateSize()
		if remote+local+own+learned != 0 {
			t.Fatalf("%s: node %d did not drain: remote=%d local=%d own=%d learned=%d",
				name, i, remote, local, own, learned)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]int, len(delivered))
	for k, v := range delivered {
		out[k] = v
	}
	return out
}
