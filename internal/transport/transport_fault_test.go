package transport

import (
	"encoding/gob"
	"net"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/pubsub"
	"repro/internal/stream"
	"repro/internal/topology"
)

// TestSenderRetriesAfterPeerRestart: a neighbor restarts while the sender
// holds a connection to its previous incarnation. The next write fails
// (gob streams cannot resume mid-message), the sender must evict the
// poisoned connection, redial and retry — the control envelope arrives and
// no terminal failure is surfaced.
func TestSenderRetriesAfterPeerRestart(t *testing.T) {
	a, err := NewNode(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() }) //lint:errdrop test teardown is best-effort
	b, err := NewNode(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bAddr := b.Addr()
	a.Connect(1, bAddr)
	b.Connect(0, a.Addr())

	// Prime the pipeline: the sender dials and caches a connection.
	a.Broker.Advertise("R")
	waitFor(t, "advert at original peer", func() bool {
		_, learned := b.Broker.AdvertStateSize()
		return learned == 1
	})

	// Restart: same identity, same address, empty state. a's cached
	// connection now points at a dead socket.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := NewNode(1, bAddr)
	if err != nil {
		t.Fatalf("rebind restarted peer at %s: %v", bAddr, err)
	}
	t.Cleanup(func() { _ = b2.Close() }) //lint:errdrop test teardown is best-effort
	b2.Connect(0, a.Addr())

	failures := cSendFailures.Value()
	// The resync rides whatever connection state a has; a write into the
	// dead socket's kernel buffer can vanish without an error, so drive
	// the resend until the restarted peer has caught up (each envelope
	// that DOES error is retried over a fresh dial by the sender).
	waitFor(t, "restarted peer resynced", func() bool {
		a.Peer(1).AdvertFrom(0, "R", 0, 1)
		a.Flush()
		_, learned := b2.Broker.AdvertStateSize()
		return learned == 1
	})
	if cSendFailures.Value() != failures {
		t.Errorf("retryable write failure surfaced as terminal: %d new failures",
			cSendFailures.Value()-failures)
	}
}

// TestSendErrorHandlerSurfacesTerminalFailures: when every retry is
// exhausted (peer gone, nothing listening), the loss is counted and the
// registered handler is told which peer and kind died — no more silent
// `_ =` drops.
func TestSendErrorHandlerSurfacesTerminalFailures(t *testing.T) {
	n, err := NewNode(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() }) //lint:errdrop test teardown is best-effort
	// A listener we immediately close: dialing its address now fails.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	_ = dead.Close() //lint:errdrop deliberately killing the listener so the dial target is dead
	n.Connect(1, deadAddr)

	type loss struct {
		peer topology.NodeID
		kind MsgKind
	}
	losses := make(chan loss, 1)
	n.SetSendErrorHandler(func(peer topology.NodeID, kind MsgKind, err error) {
		select {
		case losses <- loss{peer, kind}:
		default:
		}
	})
	failures := cSendFailures.Value()

	n.Broker.Advertise("R") // floods to peer 1, which is unreachable

	select {
	case l := <-losses:
		if l.peer != 1 || l.kind != MsgAdvert {
			t.Errorf("handler got peer=%d kind=%d, want peer=1 kind=advert", l.peer, l.kind)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send-error handler never invoked")
	}
	if cSendFailures.Value() == failures {
		t.Error("terminal loss did not move transport.send_failures")
	}
}

// TestMalformedEnvelopesCounted: unknown kinds and envelopes missing their
// payload are dropped and counted, not crashed on — the decode loop accepts
// unauthenticated inbound connections. A nested batch is malformed too.
func TestMalformedEnvelopesCounted(t *testing.T) {
	nodes := line3(t)
	unknown := cUnknownKind.Value()
	malformed := cMalformed.Value()

	conn, err := net.Dial("tcp", nodes[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	for _, env := range []Envelope{
		{Kind: MsgKind(99), From: 0},
		{Kind: MsgSubscribe, From: 0, Sub: nil},
		{Kind: MsgData, From: 0, Tuple: nil},
		{Kind: MsgBatch, From: 0}, // empty batch
		{Kind: MsgBatch, From: 0, Batch: []Envelope{ // nested batch
			{Kind: MsgBatch, From: 0, Batch: []Envelope{{Kind: MsgAdvert, From: 0, StreamName: "X", Origin: 0, Seq: 9}}},
		}},
	} {
		if err := enc.Encode(env); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "malformed envelopes counted", func() bool {
		return cUnknownKind.Value() == unknown+1 && cMalformed.Value() == malformed+4
	})
	if remote, _ := nodes[1].Broker.RoutingStateSize(); remote != 0 {
		t.Errorf("malformed envelopes installed routing state: %d records", remote)
	}
	if _, learned := nodes[1].Broker.AdvertStateSize(); learned != 0 {
		t.Errorf("nested batch content was dispatched: learned=%d adverts", learned)
	}
	snap := metrics.Counters()
	if snap["transport.unknown_envelope_kind"] == 0 {
		t.Error("unknown-kind counter missing from metrics snapshot")
	}
}

// TestWireIdempotenceUnderDupAndReorder: a rogue connection impersonating a
// legitimate neighbor replays duplicated and reordered control envelopes at
// a broker in the middle of a real TCP chain. The epoch machinery must
// leave the overlay in exactly the state of a clean run: no ghost routing
// records, no resurrected adverts, and probe traffic delivering once.
func TestWireIdempotenceUnderDupAndReorder(t *testing.T) {
	nodes := line3(t)
	nodes[0].Broker.Advertise("R")
	waitFor(t, "advert reaches the far end", func() bool {
		_, learned := nodes[2].Broker.AdvertStateSize()
		return learned == 1
	})

	// Rogue conn to node 1 impersonating neighbor 2 — a valid direction,
	// so the messages exercise the epoch machinery, not the membership
	// guards. "R" is advertised at node 1 via direction 0, so absent the
	// tombstone the ghost subscription WOULD install. Half the replay
	// rides MsgBatch framing: batched and plain envelopes must hit the
	// same idempotence machinery.
	conn, err := net.Dial("tcp", nodes[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	ghost := toWire(&pubsub.Subscription{ID: "ghost", Seq: 5, Streams: []string{"R"}})
	for _, env := range []Envelope{
		// Retraction overtakes its propagation, which then lands TWICE
		// (once plain, once inside a batch).
		{Kind: MsgUnsubscribe, From: 2, SubID: "ghost", Seq: 5},
		{Kind: MsgSubscribe, From: 2, Sub: ghost},
		{Kind: MsgBatch, From: 2, Batch: []Envelope{
			{Kind: MsgSubscribe, From: 2, Sub: ghost},
			// Withdrawal overtakes its advert, which then lands twice.
			{Kind: MsgUnadvertise, From: 2, StreamName: "X", Origin: 2, Seq: 3},
			{Kind: MsgAdvert, From: 2, StreamName: "X", Origin: 2, Seq: 3},
		}},
		{Kind: MsgAdvert, From: 2, StreamName: "X", Origin: 2, Seq: 3},
		// Adjacent duplicate of a well-formed retraction for a record that
		// never existed: must be absorbed without residue.
		{Kind: MsgUnsubscribe, From: 2, SubID: "never", Seq: 1},
		{Kind: MsgUnsubscribe, From: 2, SubID: "never", Seq: 1},
	} {
		if err := enc.Encode(env); err != nil {
			t.Fatal(err)
		}
	}
	// The replay is absorbed asynchronously; settle, then assert nothing
	// stuck. (The per-link gob stream is FIFO, so a later probe flowing
	// 2->1 would also fence the rogue stream — but the rogue conn is its
	// own stream, hence the sleep.)
	time.Sleep(100 * time.Millisecond)
	if remote, _ := nodes[1].Broker.RoutingStateSize(); remote != 0 {
		t.Fatalf("ghost subscription installed: %d remote records at node 1", remote)
	}
	if _, learned := nodes[1].Broker.AdvertStateSize(); learned != 1 {
		t.Fatalf("replayed advert resurrected state: learned=%d at node 1, want 1 (just R)", learned)
	}

	// The overlay still behaves exactly like a clean run.
	delivered := 0
	done := make(chan struct{}, 8)
	if err := nodes[2].Broker.Subscribe(&pubsub.Subscription{ID: "s", Streams: []string{"R"}},
		func(*pubsub.Subscription, stream.Tuple) { delivered++; done <- struct{}{} }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "probe subscription recorded at source", func() bool {
		remote, _ := nodes[0].Broker.RoutingStateSize()
		return remote == 1
	})
	nodes[0].Broker.Publish(stream.Tuple{Stream: "R", Timestamp: 1,
		Attrs: map[string]stream.Value{"a": stream.FloatVal(1)}, Size: 24})
	<-done
	time.Sleep(50 * time.Millisecond)
	if delivered != 1 {
		t.Fatalf("probe delivered %d times, want exactly 1", delivered)
	}

	nodes[2].Broker.Unsubscribe("s")
	nodes[0].Broker.Unadvertise("R")
	waitFor(t, "overlay drains after teardown", func() bool {
		for _, n := range nodes {
			remote, local := n.Broker.RoutingStateSize()
			own, learned := n.Broker.AdvertStateSize()
			if remote+local+own+learned != 0 {
				return false
			}
		}
		return true
	})
}
