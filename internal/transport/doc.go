// Package transport runs the Pub/Sub broker protocol over TCP, turning the
// in-process overlay into a genuinely distributed one: each process hosts
// one broker and exchanges gob-encoded envelopes (advertisements,
// subscriptions, data tuples) with its overlay neighbors. It implements
// pubsub.Fabric, so the routing logic is byte-for-byte the same code that
// the simulation and the embedded middleware run.
//
// Failure handling: each link is one gob stream over TCP, delivered FIFO —
// which is why the epoch machinery's duplication/reorder tolerance only
// needs to absorb retransmit bursts and cross-link races (see
// internal/chaos). A failed encode evicts and closes the cached
// connection so the next send redials; control-plane envelopes retry with
// capped exponential backoff under a bounded in-flight budget, data
// tuples are at-most-once. Terminal failures surface through
// internal/metrics counters and the SetSendErrorHandler callback so the
// layer above can declare the link failed and re-attach. Transport and
// encode errors must never be silently discarded — cosmoslint's errdrop
// analyzer enforces this (LINT.md).
package transport
