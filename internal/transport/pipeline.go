package transport

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/logging"
	"repro/internal/topology"
)

// Per-peer send pipeline. Every neighbor of a Node gets one peerPipe: a
// bounded FIFO queue drained by a dedicated sender goroutine that coalesces
// queued envelopes into MsgBatch wire messages (batching amortizes the
// per-message gob and syscall cost, the dominant term of control floods and
// high-rate data fan-out). The pipeline is what makes deliver a non-blocking
// enqueue: dialing, encoding, retry backoff and terminal-failure surfacing
// all run on the sender goroutine, never on the broker's route/propagate
// goroutines (see CONCURRENCY.md "Transport send pipelines").
//
// Overflow policy is per plane. Control envelopes are lossless — the
// routing-state machinery cannot reconstruct a lost propagate or retract —
// so a full control queue blocks the enqueuer (backpressure, propagating
// hop by hop exactly like a slow TCP receiver would). Data tuples are
// at-most-once by contract, so a full data queue sheds the OLDEST queued
// tuple under the transport.dropped_data counter and never blocks routing.
//
// Ordering: one queue and one sender per peer give per-peer FIFO — an
// envelope enqueued before another toward the same peer is written to the
// same TCP stream first, across retries (a batch is retried as a unit, with
// shed data tuples removed, never reordered). The tombstone/epoch machinery
// in pubsub depends on exactly this per-link FIFO.

// Send self-healing knobs. Control-plane envelopes carry routing state the
// overlay cannot reconstruct on its own, so a failed write is retried over a
// fresh connection with capped exponential backoff; data tuples are
// best-effort (the data plane promises at-most-once) and ride only the
// first attempt of their batch.
const (
	sendAttempts   = 4
	retryBaseDelay = 2 * time.Millisecond
	retryMaxDelay  = 50 * time.Millisecond
	// dialTimeout bounds a sender's connection attempt so a blackholed
	// peer cannot pin its sender goroutine (and Close) for the OS default.
	dialTimeout = 2 * time.Second
	// sendBufSize is the bufio.Writer buffer in front of each connection:
	// one flush per batch instead of one syscall per envelope.
	sendBufSize = 64 << 10
)

// Options tunes a Node's send pipelines. The zero value means defaults.
type Options struct {
	// BatchSize is the most envelopes coalesced into one MsgBatch wire
	// message (default 64). A batch of one is sent as a plain envelope.
	BatchSize int
	// FlushWindow is how long a partial batch waits for more traffic
	// before flushing (default 1ms). Zero means the default; negative
	// flushes immediately (batch only what is already queued).
	FlushWindow time.Duration
	// ControlQueueDepth bounds queued control envelopes per peer
	// (default 4096). At the bound, enqueue blocks: backpressure.
	ControlQueueDepth int
	// DataQueueDepth bounds queued data envelopes per peer (default
	// 4096). At the bound, the oldest queued tuple is dropped and
	// counted: at-most-once.
	DataQueueDepth int
	// DisableBatching is the reference mode: one wire message per
	// envelope, flushed immediately — the v1 framing, for equivalence
	// tests, benchmarks, and single-envelope peers (the negotiated
	// fallback when a neighbor predates MsgBatch).
	DisableBatching bool
	// Logger receives the transport's structured link-lifecycle events:
	// connect/dial failure at debug, terminal envelope loss at warn. Nil
	// means logging.Nop(). Logging calls run on the pipe's sender
	// goroutine, never under a pipe or node lock.
	Logger logging.Logger
}

const (
	defaultBatchSize  = 64
	defaultFlushWin   = time.Millisecond
	defaultQueueDepth = 4096
)

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = defaultBatchSize
	}
	if o.FlushWindow == 0 {
		o.FlushWindow = defaultFlushWin
	}
	if o.FlushWindow < 0 {
		o.FlushWindow = 0
	}
	if o.ControlQueueDepth <= 0 {
		o.ControlQueueDepth = defaultQueueDepth
	}
	if o.DataQueueDepth <= 0 {
		o.DataQueueDepth = defaultQueueDepth
	}
	if o.Logger == nil {
		o.Logger = logging.Nop()
	}
	return o
}

// peerPipe is the send pipeline of one neighbor.
type peerPipe struct {
	node *Node
	id   topology.NodeID

	// cosmoslint:guards — the queue state lives under mu; the sender
	// copies batches out and writes them with mu released.
	mu   sync.Mutex
	cond *sync.Cond
	addr string
	// queue holds control and data envelopes interleaved in enqueue
	// order (per-peer FIFO is a cross-plane guarantee: a tuple routed
	// after a propagate must not overtake it on the wire).
	queue []Envelope
	ctrl  int // control envelopes in queue
	ndata int // data envelopes in queue
	// sending marks a batch taken off the queue but not yet written (or
	// terminally failed) — Flush waits for it.
	sending bool
	closed  bool
	// windowUp is the flush-window timer's signal to the collect wait
	// loop: the partial batch has waited long enough.
	windowUp bool
	// highwater is the longest queue seen; its increments feed the
	// monotone transport.queue_depth counter (sum of per-pipe marks).
	highwater int
	// Link health, read by Node.PipeStatus for the ops /healthz endpoint:
	// connected tracks whether a live outbound connection is installed;
	// lastErr remembers the most recent dial or write failure and is
	// cleared by the next successful dial. A pipe that never needed to
	// dial has both zero — healthy by default.
	connected bool
	lastErr   error

	// Byte accounting (pubsub.Fabric Count* calls), per-peer atomics so
	// accounting never contends with dial/send or Close. Integer sums
	// are exact; SentBytes converts after summing in sorted peer order
	// (the float-determinism discipline).
	dataBytes    atomic.Int64
	controlBytes atomic.Int64

	// Connection state. Only the sender goroutine dials, encodes and
	// evicts, so bw/enc need no lock; conn is additionally published
	// under mu so close() can reach in and unblock a stuck write.
	conn net.Conn
	bw   *bufio.Writer
	enc  *gob.Encoder
}

func newPeerPipe(n *Node, id topology.NodeID) *peerPipe {
	p := &peerPipe{node: n, id: id}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// enqueue appends one envelope to the pipe applying the per-plane overflow
// policy. It returns immediately for data, blocks only on a full control
// queue, and drops the envelope silently once the pipe is closed (teardown
// noise, exactly like the v1 errClosed path).
func (p *peerPipe) enqueue(env Envelope, o Options) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	if env.Kind == MsgData {
		if p.ndata >= o.DataQueueDepth {
			// Shed the OLDEST queued tuple so the freshest data
			// survives; routing goroutines never block on data.
			for i := range p.queue {
				if p.queue[i].Kind == MsgData {
					p.queue = append(p.queue[:i], p.queue[i+1:]...)
					break
				}
			}
			p.ndata--
			cDroppedData.Inc()
		}
		p.ndata++
	} else {
		for p.ctrl >= o.ControlQueueDepth && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			return
		}
		p.ctrl++
	}
	p.queue = append(p.queue, env)
	if len(p.queue) > p.highwater {
		cQueueDepth.Add(int64(len(p.queue) - p.highwater))
		p.highwater = len(p.queue)
	}
	p.cond.Broadcast()
}

// run is the sender goroutine: collect a batch, write it, repeat until the
// pipe closes. The batch buffer is reused across iterations, as are the
// bufio.Writer and gob encoder across batches on one connection.
func (p *peerPipe) run(o Options) {
	defer p.node.wg.Done()
	var batch []Envelope
	for {
		var ok bool
		batch, ok = p.collect(batch[:0], o)
		if !ok {
			break
		}
		p.writeBatch(batch, o)
		p.mu.Lock()
		p.sending = false
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	p.evictConn()
}

// collect blocks until there is work, gives a partial batch one flush
// window to fill, then moves up to BatchSize envelopes into buf. The second
// return is false when the pipe closed (remaining queue is discarded:
// teardown drops in-flight traffic exactly like v1's socket close did).
func (p *peerPipe) collect(buf []Envelope, o Options) ([]Envelope, bool) {
	p.mu.Lock()
	for len(p.queue) == 0 && !p.closed {
		p.cond.Wait()
	}
	if p.closed {
		p.mu.Unlock()
		return nil, false
	}
	if !o.DisableBatching && o.FlushWindow > 0 && len(p.queue) < o.BatchSize {
		p.windowUp = false
		t := time.AfterFunc(o.FlushWindow, func() {
			p.mu.Lock()
			p.windowUp = true
			p.mu.Unlock()
			p.cond.Broadcast()
		})
		for len(p.queue) < o.BatchSize && !p.windowUp && !p.closed {
			p.cond.Wait()
		}
		t.Stop()
		if p.closed {
			p.mu.Unlock()
			return nil, false
		}
	}
	take := len(p.queue)
	if take > o.BatchSize {
		take = o.BatchSize
	}
	buf = append(buf, p.queue[:take]...)
	rest := copy(p.queue, p.queue[take:])
	for i := rest; i < len(p.queue); i++ {
		p.queue[i] = Envelope{} // release payload references to the GC
	}
	p.queue = p.queue[:rest]
	for i := range buf {
		if buf[i].Kind == MsgData {
			p.ndata--
		} else {
			p.ctrl--
		}
	}
	p.sending = true
	p.cond.Broadcast() // space freed: wake blocked control enqueuers
	p.mu.Unlock()
	return buf, true
}

// writeBatch puts one batch on the wire with the per-plane retry policy: a
// failed write evicts the connection (a gob stream cannot resume
// mid-message) and retries over a fresh dial with capped backoff — minus
// the data tuples, which get exactly one attempt (at-most-once). Terminal
// failures are counted and surfaced per envelope through the node's
// send-error handler. All of it runs on the sender goroutine.
func (p *peerPipe) writeBatch(batch []Envelope, o Options) {
	var err error
	for attempt := 0; attempt < sendAttempts; attempt++ {
		if attempt > 0 {
			cSendRetries.Inc()
			delay := retryBaseDelay << (attempt - 1)
			if delay > retryMaxDelay {
				delay = retryMaxDelay
			}
			time.Sleep(delay)
		}
		err = p.tryWrite(batch, o)
		if err == nil {
			return
		}
		p.mu.Lock()
		p.lastErr = err
		p.mu.Unlock()
		p.evictConn()
		if errors.Is(err, errClosed) {
			return // teardown noise, not a lost link
		}
		if attempt == 0 {
			// The failed attempt consumed the data tuples' single try.
			kept := batch[:0]
			for _, env := range batch {
				if env.Kind == MsgData {
					p.surfaceLoss(env, err)
				} else {
					kept = append(kept, env)
				}
			}
			batch = kept
			if len(batch) == 0 {
				return
			}
		}
	}
	for _, env := range batch {
		p.surfaceLoss(env, err)
	}
}

// surfaceLoss counts one terminally lost envelope and tells the node's
// send-error handler which peer and kind died. Losses during teardown are
// not surfaced — a closing node's undeliverable queue is noise, not a dead
// link.
func (p *peerPipe) surfaceLoss(env Envelope, err error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return
	}
	cSendFailures.Inc()
	p.node.opts.Logger.Warn("envelope lost", "peer", p.id, "kind", env.Kind, "err", err)
	if h := p.node.sendErrorHandler(); h != nil {
		h(p.id, env.Kind, err)
	}
}

// tryWrite encodes the batch onto the current connection, dialing first if
// there is none, and flushes. Batches of more than one envelope ride a
// single MsgBatch wire message; a batch of one — and every envelope in
// DisableBatching mode — goes out in the v1 single-envelope framing, so
// low-rate links and reference-mode nodes interoperate with peers that
// predate MsgBatch.
func (p *peerPipe) tryWrite(batch []Envelope, o Options) error {
	// enc is the sender-owned "connected" marker; the conn field itself
	// is shared with close() and only touched under mu.
	if p.enc == nil {
		if err := p.dial(); err != nil {
			return err
		}
	}
	var err error
	if !o.DisableBatching && len(batch) > 1 {
		err = p.enc.Encode(Envelope{Kind: MsgBatch, From: p.node.ID, Batch: batch})
		if err == nil {
			cBatches.Inc()
			cBatchSize.Add(int64(len(batch)))
			cWireMsgs.Inc()
		}
	} else {
		for i := range batch {
			if err = p.enc.Encode(batch[i]); err != nil {
				break
			}
			cWireMsgs.Inc()
			if o.DisableBatching {
				// Reference mode models v1: every envelope its own write.
				if err = p.bw.Flush(); err != nil {
					break
				}
			}
		}
	}
	if err == nil {
		err = p.bw.Flush()
	}
	return err
}

// dial connects to the peer and installs a fresh buffered writer and gob
// encoder. Runs on the sender goroutine only.
func (p *peerPipe) dial() error {
	p.mu.Lock()
	addr, closed := p.addr, p.closed
	p.mu.Unlock()
	if closed {
		return fmt.Errorf("transport: node %d: %w", p.node.ID, errClosed)
	}
	if addr == "" {
		return fmt.Errorf("transport: node %d has no address for peer %d", p.node.ID, p.id)
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		err = fmt.Errorf("transport: dial peer %d: %w", p.id, err)
		p.mu.Lock()
		p.lastErr = err
		p.mu.Unlock()
		p.node.opts.Logger.Debug("dial failed", "peer", p.id, "addr", addr, "err", err)
		return err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		//lint:errdrop the dial raced the shutdown and is discarded unused
		_ = conn.Close()
		return fmt.Errorf("transport: node %d: %w", p.node.ID, errClosed)
	}
	p.conn = conn
	p.connected = true
	p.lastErr = nil
	p.mu.Unlock()
	p.bw = bufio.NewWriterSize(conn, sendBufSize)
	p.enc = gob.NewEncoder(p.bw)
	p.node.opts.Logger.Debug("peer connected", "peer", p.id, "addr", addr)
	return nil
}

// evictConn drops the current connection (if any): a failed write poisons
// the gob stream, so the next attempt must start a fresh one.
func (p *peerPipe) evictConn() {
	p.mu.Lock()
	conn := p.conn
	p.conn = nil
	p.connected = false
	p.mu.Unlock()
	p.bw, p.enc = nil, nil
	if conn != nil {
		//lint:errdrop the write error is the one surfaced; closing the poisoned conn is disposal, not I/O
		_ = conn.Close()
	}
}

// close marks the pipe dead, wakes every waiter (blocked control enqueuers,
// the sender's wait loops, Flush) and severs the live connection so a
// sender stuck mid-write errors out instead of pinning Close.
func (p *peerPipe) close() {
	p.mu.Lock()
	p.closed = true
	conn := p.conn
	p.conn = nil
	p.cond.Broadcast()
	p.mu.Unlock()
	if conn != nil {
		//lint:errdrop best-effort teardown: the node is closing
		_ = conn.Close()
	}
}

// drain blocks until the pipe's queue is empty and no batch is in flight
// (or the pipe closes). Part of Node.Flush's contract.
func (p *peerPipe) drain() {
	p.mu.Lock()
	for (len(p.queue) > 0 || p.sending) && !p.closed {
		p.cond.Wait()
	}
	p.mu.Unlock()
}
