package transport

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pubsub"
	"repro/internal/stream"
	"repro/internal/topology"
)

// --- queue-policy unit tests (no sender goroutine: the pipe is exercised
// --- directly, so enqueue/collect behavior is deterministic).

func TestControlBackpressureBlocksAtBound(t *testing.T) {
	o := Options{ControlQueueDepth: 2}.withDefaults()
	p := newPeerPipe(nil, 1)

	ctrl := func(seq uint64) Envelope {
		return Envelope{Kind: MsgAdvert, From: 0, StreamName: "R", Seq: seq}
	}
	p.enqueue(ctrl(1), o)
	p.enqueue(ctrl(2), o)

	unblocked := make(chan struct{})
	go func() {
		p.enqueue(ctrl(3), o) // over the bound: must block
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("control enqueue past the bound did not block")
	case <-time.After(50 * time.Millisecond):
	}

	// The sender taking a batch frees space and must wake the enqueuer.
	batch, ok := p.collect(nil, o)
	if !ok || len(batch) != 2 {
		t.Fatalf("collect = %d envelopes, ok=%v; want 2, true", len(batch), ok)
	}
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked control enqueue not released by collect")
	}

	// close() must release a blocked enqueuer too (envelope dropped).
	p.enqueue(ctrl(4), o) // back at the bound (1 queued + 1 re-queued)
	blocked2 := make(chan struct{})
	go func() {
		p.enqueue(ctrl(5), o)
		close(blocked2)
	}()
	time.Sleep(20 * time.Millisecond)
	p.close()
	select {
	case <-blocked2:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked control enqueue not released by close")
	}
}

func TestDataOverflowDropsOldestTupleOnly(t *testing.T) {
	o := Options{DataQueueDepth: 3}.withDefaults()
	p := newPeerPipe(nil, 1)
	dropped := cDroppedData.Value()

	data := func(ts int64) Envelope {
		return Envelope{Kind: MsgData, From: 0, Tuple: &WireTuple{Stream: "R", Timestamp: ts}}
	}
	// A control envelope older than every tuple: overflow must never
	// evict it — only MsgData is at-most-once.
	p.enqueue(Envelope{Kind: MsgSubscribe, From: 0, Sub: &WireSubscription{ID: "s"}}, o)
	for ts := int64(1); ts <= 5; ts++ {
		p.enqueue(data(ts), o)
	}

	if got := cDroppedData.Value() - dropped; got != 2 {
		t.Fatalf("transport.dropped_data moved by %d, want 2", got)
	}
	batch, ok := p.collect(nil, o)
	if !ok {
		t.Fatal("collect failed")
	}
	var kinds []string
	for _, env := range batch {
		if env.Kind == MsgData {
			kinds = append(kinds, fmt.Sprintf("d%d", env.Tuple.Timestamp))
		} else {
			kinds = append(kinds, "ctrl")
		}
	}
	// Oldest tuples (1, 2) shed; control survives in FIFO position.
	want := "[ctrl d3 d4 d5]"
	if got := fmt.Sprintf("%v", kinds); got != want {
		t.Fatalf("queue after overflow = %v, want %v", got, want)
	}
}

// --- flush-window and framing behavior over a live pair.

func TestFlushWindowCoalescesBurst(t *testing.T) {
	// A long window so the whole burst lands inside it deterministically.
	opts := Options{FlushWindow: 100 * time.Millisecond}
	a, err := NewNodeWith(0, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() }) //lint:errdrop test teardown is best-effort
	b, err := NewNode(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() }) //lint:errdrop test teardown is best-effort
	a.Connect(1, b.Addr())
	b.Connect(0, a.Addr())

	batches, sized, wire := cBatches.Value(), cBatchSize.Value(), cWireMsgs.Value()
	for i := 0; i < 10; i++ {
		a.Peer(1).AdvertFrom(0, fmt.Sprintf("S%d", i), 0, 1)
	}
	a.Flush()

	// The first envelope wakes the sender, which opens the flush window;
	// the other nine arrive microseconds later — one MsgBatch of 10.
	if got := cBatches.Value() - batches; got != 1 {
		t.Errorf("burst produced %d batches, want 1", got)
	}
	if got := cBatchSize.Value() - sized; got != 10 {
		t.Errorf("batch_size moved by %d, want 10 (all envelopes in one batch)", got)
	}
	if got := cWireMsgs.Value() - wire; got != 1 {
		t.Errorf("burst produced %d wire messages, want 1", got)
	}
	waitFor(t, "batched adverts applied", func() bool {
		_, learned := b.Broker.AdvertStateSize()
		return learned == 10
	})
}

func TestDisableBatchingNeverEmitsMsgBatch(t *testing.T) {
	opts := Options{DisableBatching: true}
	a, err := NewNodeWith(0, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() }) //lint:errdrop test teardown is best-effort
	b, err := NewNode(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() }) //lint:errdrop test teardown is best-effort
	a.Connect(1, b.Addr())
	b.Connect(0, a.Addr())

	batches, wire := cBatches.Value(), cWireMsgs.Value()
	for i := 0; i < 25; i++ {
		a.Peer(1).AdvertFrom(0, fmt.Sprintf("S%d", i), 0, 1)
	}
	a.Flush()
	if got := cBatches.Value() - batches; got != 0 {
		t.Errorf("reference mode emitted %d MsgBatch messages, want 0", got)
	}
	if got := cWireMsgs.Value() - wire; got != 25 {
		t.Errorf("reference mode wrote %d wire messages, want 25 (one per envelope)", got)
	}
	waitFor(t, "unbatched adverts applied", func() bool {
		_, learned := b.Broker.AdvertStateSize()
		return learned == 25
	})
}

// --- satellite regression: a partitioned (unreachable) peer must not delay
// --- traffic to healthy peers. Before the pipelines, sends ran inline on
// --- the flooding goroutine, so one dead neighbor's dial/retry/backoff
// --- cycle serialized in front of every healthy neighbor's envelope.

func TestPartitionedPeerDoesNotDelayHealthyPeers(t *testing.T) {
	hub, err := NewNode(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() }) //lint:errdrop test teardown is best-effort
	healthy, err := NewNode(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = healthy.Close() }) //lint:errdrop test teardown is best-effort
	hub.Connect(1, healthy.Addr())
	healthy.Connect(0, hub.Addr())

	// Peer 2 is partitioned: its listener is gone, every dial fails and
	// every envelope toward it burns the full retry/backoff schedule.
	gone, err := NewNode(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := gone.Addr()
	if err := gone.Close(); err != nil {
		t.Fatal(err)
	}
	hub.Connect(2, deadAddr)

	failures := cSendFailures.Value()
	const streams = 300
	start := time.Now()
	for i := 0; i < streams; i++ {
		hub.Broker.Advertise(fmt.Sprintf("S%d", i))
	}
	waitFor(t, "healthy peer learned every advert", func() bool {
		_, learned := healthy.Broker.AdvertStateSize()
		return learned == streams
	})
	elapsed := time.Since(start)

	// Inline sends would pay peer 2's retry schedule (~14ms of backoff per
	// failed batch) in front of peer 1's envelopes — minutes for 300
	// floods. The pipelines must keep the healthy path at wire speed.
	if elapsed > 2500*time.Millisecond {
		t.Fatalf("healthy peer took %v to catch up — the dead peer is delaying it", elapsed)
	}
	// The dead pipe really was churning through terminal failures the
	// whole time (i.e. the test exercised the contention it claims to).
	waitFor(t, "dead peer surfaced terminal losses", func() bool {
		return cSendFailures.Value() > failures
	})
}

// --- satellite seam: fault injection sees protocol messages, not batches.

// countingWrapper tallies every Peer call it intercepts.
type countingWrapper struct {
	adverts, subs, tuples atomic.Int64
}

func (w *countingWrapper) WrapPeer(_ topology.NodeID, p pubsub.Peer) pubsub.Peer {
	return &countingPeer{w: w, next: p}
}

type countingPeer struct {
	w    *countingWrapper
	next pubsub.Peer
}

func (c *countingPeer) AdvertFrom(from topology.NodeID, s string, o topology.NodeID, q uint64) {
	c.w.adverts.Add(1)
	c.next.AdvertFrom(from, s, o, q)
}
func (c *countingPeer) UnadvertFrom(from topology.NodeID, s string, o topology.NodeID, q uint64) {
	c.next.UnadvertFrom(from, s, o, q)
}
func (c *countingPeer) PropagateFrom(sub *pubsub.Subscription, from topology.NodeID) {
	c.w.subs.Add(1)
	c.next.PropagateFrom(sub, from)
}
func (c *countingPeer) RetractFrom(from topology.NodeID, id string, seq uint64) {
	c.next.RetractFrom(from, id, seq)
}
func (c *countingPeer) RouteFrom(t stream.Tuple, from topology.NodeID) {
	c.w.tuples.Add(1)
	c.next.RouteFrom(t, from)
}

// TestPeerWrapperSeesIndividualEnvelopes: the fault-injection seam sits
// BEFORE the send pipeline, so a wrapper (chaos fabric) draws one fate per
// protocol message even when the wire carries them as MsgBatch frames.
func TestPeerWrapperSeesIndividualEnvelopes(t *testing.T) {
	a, err := NewNode(0, "127.0.0.1:0") // batching on (defaults)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() }) //lint:errdrop test teardown is best-effort
	b, err := NewNode(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() }) //lint:errdrop test teardown is best-effort
	a.Connect(1, b.Addr())
	b.Connect(0, a.Addr())

	w := &countingWrapper{}
	a.SetPeerWrapper(w)

	batches := cBatches.Value()
	for i := 0; i < 8; i++ {
		a.Peer(1).AdvertFrom(0, fmt.Sprintf("S%d", i), 0, 1)
	}
	for i := 0; i < 8; i++ {
		a.Peer(1).RouteFrom(stream.Tuple{Stream: "S0", Timestamp: int64(i)}, 0)
	}
	a.Flush()

	if got := w.adverts.Load(); got != 8 {
		t.Errorf("wrapper saw %d adverts, want 8 (one per protocol message)", got)
	}
	if got := w.tuples.Load(); got != 8 {
		t.Errorf("wrapper saw %d tuples, want 8 (one per protocol message)", got)
	}
	if cBatches.Value() == batches {
		t.Error("no MsgBatch on the wire — the test did not cover batched framing")
	}
	waitFor(t, "wrapped traffic applied", func() bool {
		_, learned := b.Broker.AdvertStateSize()
		return learned == 8
	})
}
