package netgraph

import (
	"testing"

	"repro/internal/topology"
)

func lineOracle(t *testing.T) *topology.Oracle {
	t.Helper()
	g := topology.NewGraph(4)
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(topology.NodeID(i), topology.NodeID(i+1), 2); err != nil {
			t.Fatal(err)
		}
	}
	return topology.NewOracle(g)
}

func TestNewComputesLatencies(t *testing.T) {
	o := lineOracle(t)
	g, err := New([]Vertex{
		{Node: 0, Capability: 1, Members: []topology.NodeID{0}},
		{Node: 3, Capability: 2, Members: []topology.NodeID{3}},
	}, o)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	if got := g.Latency(0, 1); got != 6 {
		t.Errorf("Latency(0,1) = %v, want 6", got)
	}
	if got := g.Latency(1, 1); got != 0 {
		t.Errorf("Latency(1,1) = %v", got)
	}
	if got := g.TotalCapability(); got != 3 {
		t.Errorf("TotalCapability = %v", got)
	}
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil, lineOracle(t)); err == nil {
		t.Error("empty vertex set accepted")
	}
	if _, err := NewWithLatencies([]Vertex{{Node: 0}}, [][]float64{{0, 1}}); err == nil {
		t.Error("mismatched latency matrix accepted")
	}
}

func TestIndexOfNode(t *testing.T) {
	o := lineOracle(t)
	g, err := New([]Vertex{
		{Node: 0, Capability: 1, Members: []topology.NodeID{0, 1}},
		{Node: 3, Capability: 1, Members: []topology.NodeID{3}},
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.IndexOfNode(0); got != 0 {
		t.Errorf("IndexOfNode(0) = %d", got)
	}
	if got := g.IndexOfNode(1); got != 0 {
		t.Errorf("IndexOfNode(1) = %d (member lookup)", got)
	}
	if got := g.IndexOfNode(2); got != -1 {
		t.Errorf("IndexOfNode(2) = %d, want -1", got)
	}
}

func TestCapacities(t *testing.T) {
	g, err := NewWithLatencies([]Vertex{
		{Node: 0, Capability: 1},
		{Node: 1, Capability: 3},
	}, [][]float64{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	caps := g.Capacities(8, 0.1)
	// cap_i = 1.1 * c_i * 8 / 4
	if caps[0] != 2.2 {
		t.Errorf("caps[0] = %v, want 2.2", caps[0])
	}
	if caps[1] != 6.6000000000000005 && caps[1] != 6.6 {
		t.Errorf("caps[1] = %v, want 6.6", caps[1])
	}
	zero, err := NewWithLatencies([]Vertex{{Node: 0}}, [][]float64{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := zero.Capacities(5, 0.1); got[0] != 0 {
		t.Errorf("zero-capability caps = %v", got)
	}
}
