// Package netgraph implements the network graph NG = {Vn, En, Wn} of the
// paper's graph-mapping model (§3.1.2): a complete weighted graph whose
// vertices are processors (or, at inner coordinators, child clusters) with
// capability weights, and whose edge weights are communication latencies.
//
// The latency matrix is stored row-major in one flat []float64 so that the
// mapping algorithms' inner loops can hoist a row once (Row) and index it
// with plain slice arithmetic instead of chasing per-row pointers.
package netgraph

import (
	"fmt"

	"repro/internal/topology"
)

// Vertex is one mapping target: a processor or a child-coordinator cluster.
type Vertex struct {
	// Node is the topology node this vertex represents: the processor
	// itself for leaf-level graphs, or the cluster's median (the child
	// coordinator) for inner levels.
	Node topology.NodeID
	// Capability is Wn(v): the processor's capability ci, or the total
	// capability of all descendant processors for a cluster vertex.
	Capability float64
	// Members lists the descendant processors covered by this vertex;
	// for a leaf-level vertex it is just {Node}.
	Members []topology.NodeID
}

// Graph is a complete network graph with an explicit latency matrix.
type Graph struct {
	Vertices []Vertex
	lat      []float64 // row-major n×n latency matrix
	n        int
	totalCap float64
}

// New builds a network graph over the given vertices, measuring pairwise
// latencies between vertex nodes with the oracle.
func New(vertices []Vertex, oracle *topology.Oracle) (*Graph, error) {
	if len(vertices) == 0 {
		return nil, fmt.Errorf("netgraph: no vertices")
	}
	n := len(vertices)
	g := &Graph{
		Vertices: append([]Vertex(nil), vertices...),
		lat:      make([]float64, n*n),
		n:        n,
	}
	for i := range vertices {
		dst := g.lat[i*n : (i+1)*n]
		row := oracle.Row(vertices[i].Node)
		for j := range vertices {
			if i == j {
				continue
			}
			dst[j] = row[vertices[j].Node]
		}
		g.totalCap += vertices[i].Capability
	}
	return g, nil
}

// NewWithLatencies builds a graph from an explicit latency matrix, used by
// tests and by the paper's worked example (Fig. 5).
func NewWithLatencies(vertices []Vertex, lat [][]float64) (*Graph, error) {
	if len(vertices) == 0 {
		return nil, fmt.Errorf("netgraph: no vertices")
	}
	if len(lat) != len(vertices) {
		return nil, fmt.Errorf("netgraph: latency matrix is %dx?, want %d rows", len(lat), len(vertices))
	}
	n := len(vertices)
	g := &Graph{
		Vertices: append([]Vertex(nil), vertices...),
		lat:      make([]float64, n*n),
		n:        n,
	}
	for i := range lat {
		if len(lat[i]) != len(vertices) {
			return nil, fmt.Errorf("netgraph: latency row %d has %d cols, want %d", i, len(lat[i]), len(vertices))
		}
		copy(g.lat[i*n:(i+1)*n], lat[i])
		g.totalCap += vertices[i].Capability
	}
	return g, nil
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return g.n }

// Latency returns Wn(e_ij), the latency between vertices i and j.
func (g *Graph) Latency(i, j int) float64 { return g.lat[i*g.n+j] }

// Row returns the latency row from vertex i to every vertex: Row(i)[j] ==
// Latency(i, j). The slice aliases the matrix; callers must not modify it.
// Hot loops scanning many j for one i should hoist the row.
func (g *Graph) Row(i int) []float64 { return g.lat[i*g.n : (i+1)*g.n] }

// TotalCapability returns Σ Wn(v).
func (g *Graph) TotalCapability() float64 { return g.totalCap }

// IndexOfNode returns the vertex index representing the given topology node,
// searching vertex nodes first and then member lists. It returns -1 when the
// node is not covered by the graph.
func (g *Graph) IndexOfNode(n topology.NodeID) int {
	for i, v := range g.Vertices {
		if v.Node == n {
			return i
		}
	}
	for i, v := range g.Vertices {
		for _, m := range v.Members {
			if m == n {
				return i
			}
		}
	}
	return -1
}

// Capacities returns the per-vertex load limits (1+α)·ci·L/C for a total
// query load L and imbalance slack α (Eqn 3.1).
func (g *Graph) Capacities(totalLoad, alpha float64) []float64 {
	out := make([]float64, g.Len())
	if g.totalCap == 0 {
		return out
	}
	for i, v := range g.Vertices {
		out[i] = (1 + alpha) * v.Capability * totalLoad / g.totalCap
	}
	return out
}
