// Package prototype reproduces the paper's prototype study (§4.2, Fig 11):
// a 30-node wide-area deployment processing SensorScope-style readings,
// comparing COSMOS's hierarchical query distribution against the classic
// two-phase operator-placement approach (global operator graph [12] +
// network-aware placement [3]) on plan quality and optimizer running time.
//
// PlanetLab and the real sensor dataset are replaced by a simulated WAN
// topology and the synthetic trace generator (see DESIGN.md §3); both
// schemes see exactly the same queries, statistics, and latencies.
package prototype

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"time"

	"repro/internal/bitvec"
	"repro/internal/hierarchy"
	"repro/internal/opplace"
	"repro/internal/query"
	"repro/internal/querygraph"
	"repro/internal/topology"
	"repro/internal/trace"
)

// World is the prototype deployment: a small WAN with one source node per
// deployment and the remaining nodes as processors.
type World struct {
	Graph      *topology.Graph
	Oracle     *topology.Oracle
	Sources    []topology.NodeID // one per deployment
	Processors []topology.NodeID
	Trace      *trace.Generator

	// Substream space: one substream per station.
	SubRates    []float64
	SourceOfSub []topology.NodeID
	// stationSub[i] is station i's global substream index (== i).
	stationsPerDeployment int

	selCache map[string]float64
}

// NewWorld builds the 30-node prototype world with cfg.Deployments sources.
func NewWorld(nodes int, tcfg trace.Config, seed uint64) (*World, error) {
	if nodes < tcfg.Deployments+2 {
		return nil, fmt.Errorf("prototype: %d nodes cannot host %d sources", nodes, tcfg.Deployments)
	}
	// A compact WAN: every node is a stub of a 1x2 transit backbone.
	topoCfg := topology.Config{
		TransitDomains:      2,
		TransitNodes:        2,
		StubDomainsPerNode:  2,
		StubNodes:           (nodes + 7) / 8,
		InterTransitLatency: [2]float64{60, 200},
		IntraTransitLatency: [2]float64{15, 40},
		TransitStubLatency:  [2]float64{3, 12},
		IntraStubLatency:    [2]float64{1, 3},
		ExtraStubEdgeProb:   0.1,
		Seed:                seed,
	}
	g, err := topology.Generate(topoCfg)
	if err != nil {
		return nil, err
	}
	gen, err := trace.New(tcfg)
	if err != nil {
		return nil, err
	}
	exclude := make(map[topology.NodeID]bool)
	sources, err := topology.SampleNodes(g, topology.Stub, tcfg.Deployments, seed+1, exclude)
	if err != nil {
		return nil, err
	}
	for _, s := range sources {
		exclude[s] = true
	}
	procs, err := topology.SampleNodes(g, topology.Stub, nodes-tcfg.Deployments, seed+2, exclude)
	if err != nil {
		return nil, err
	}
	w := &World{
		Graph:                 g,
		Oracle:                topology.NewOracle(g),
		Sources:               sources,
		Processors:            procs,
		Trace:                 gen,
		stationsPerDeployment: (tcfg.Stations + tcfg.Deployments - 1) / tcfg.Deployments,
	}
	// One substream per station; rate = one reading per period.
	perStation := float64(16+8*5) / (float64(tcfg.PeriodMillis) / 1000)
	for i := 0; i < tcfg.Stations; i++ {
		w.SubRates = append(w.SubRates, perStation)
		w.SourceOfSub = append(w.SourceOfSub, sources[i%tcfg.Deployments])
	}
	return w, nil
}

// GenerateQueries draws n random prototype queries in CQL text and parses
// them: each joins two random deployments with 1–3 selection predicates on
// the readings or sensor type and 1–3 join predicates on the timestamp
// (§4.2), under random range windows. Proxies are random processors.
func (w *World) GenerateQueries(n int, seed uint64) ([]*CompiledQuery, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0xf19))
	deployments := w.Trace.Cfg.Deployments
	out := make([]*CompiledQuery, 0, n)
	for i := 0; i < n; i++ {
		d1 := rng.IntN(deployments)
		d2 := rng.IntN(deployments)
		for d2 == d1 {
			d2 = rng.IntN(deployments)
		}
		text := w.randomQueryText(rng, d1, d2)
		q, err := query.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("prototype: generated query %d: %w (text: %s)", i, err, text)
		}
		q.Name = fmt.Sprintf("P%d", i)
		proxy := w.Processors[rng.IntN(len(w.Processors))]
		cq, err := w.Compile(q, proxy)
		if err != nil {
			return nil, err
		}
		out = append(out, cq)
	}
	return out, nil
}

func (w *World) randomQueryText(rng *rand.Rand, d1, d2 int) string {
	var b strings.Builder
	b.WriteString("SELECT S1.*, S2.* FROM ")
	fmt.Fprintf(&b, "%s [Range %d Minutes] S1, %s [Range %d Minutes] S2 WHERE ",
		trace.StreamName(d1), 1+rng.IntN(60), trace.StreamName(d2), 1+rng.IntN(60))

	var preds []string
	nSel := 1 + rng.IntN(3)
	attrs := []string{"snowHeight", "temperature", "windSpeed"}
	for i := 0; i < nSel; i++ {
		alias := []string{"S1", "S2"}[rng.IntN(2)]
		if rng.Float64() < 0.25 {
			st := trace.SensorTypes[rng.IntN(len(trace.SensorTypes))]
			preds = append(preds, fmt.Sprintf("%s.sensorType = '%s'", alias, st))
			continue
		}
		attr := attrs[rng.IntN(len(attrs))]
		op := []string{">", ">=", "<", "<="}[rng.IntN(4)]
		var threshold float64
		switch attr {
		case "snowHeight":
			threshold = 10 + rng.Float64()*60
		case "temperature":
			threshold = -15 + rng.Float64()*20
		default:
			threshold = rng.Float64() * 12
		}
		preds = append(preds, fmt.Sprintf("%s.%s %s %.1f", alias, attr, op, threshold))
	}
	nJoin := 1 + rng.IntN(3)
	joinOps := []string{"<=", ">=", "="}
	for i := 0; i < nJoin; i++ {
		preds = append(preds, fmt.Sprintf("S1.timestamp %s S2.timestamp", joinOps[i%len(joinOps)]))
	}
	b.WriteString(strings.Join(preds, " AND "))
	return b.String()
}

// CompiledQuery pairs a parsed query with its distribution metadata.
type CompiledQuery struct {
	Query *query.Query
	Proxy topology.NodeID
	Info  querygraph.QueryInfo
	// Sel is the memoized empirical selectivity of the query's
	// selection conjunction.
	Sel float64
}

// Compile derives the COSMOS distribution view of a query: its substream
// interest (the stations of its deployments, pruned by sensor-type
// predicates), load, and result rate.
func (w *World) Compile(q *query.Query, proxy topology.NodeID) (*CompiledQuery, error) {
	interest := bitvec.New(len(w.SubRates))
	var inputRate float64
	for _, ref := range q.From {
		d, err := deploymentIndex(ref.Stream)
		if err != nil {
			return nil, err
		}
		wantType := sensorTypeOf(q, ref.Alias)
		for st := 0; st < len(w.SubRates); st++ {
			if st%w.Trace.Cfg.Deployments != d {
				continue
			}
			if wantType != "" && trace.SensorTypes[st%len(trace.SensorTypes)] != wantType {
				continue
			}
			interest.Set(st)
			inputRate += w.SubRates[st]
		}
	}
	sel := w.Selectivity(q)
	info := querygraph.QueryInfo{
		Name:       q.Name,
		Proxy:      proxy,
		Load:       0.0005 * inputRate,
		Interest:   interest,
		ResultRate: inputRate * sel * 0.1,
		StateSize:  inputRate,
	}
	return &CompiledQuery{Query: q, Proxy: proxy, Info: info, Sel: sel}, nil
}

func deploymentIndex(streamName string) (int, error) {
	var d int
	if _, err := fmt.Sscanf(streamName, "Deployment%d", &d); err != nil {
		return 0, fmt.Errorf("prototype: stream %q is not a deployment stream", streamName)
	}
	return d, nil
}

// sensorTypeOf returns the sensor type an alias's selections pin, if any.
func sensorTypeOf(q *query.Query, alias string) string {
	for _, p := range q.SelectionsFor(alias) {
		p = p.Normalize()
		if p.Left.Col.Attr == "sensorType" && p.Op == query.Eq && p.Right.Lit != nil {
			return p.Right.Lit.S
		}
	}
	return ""
}

// Selectivity estimates the pass fraction of a query's selection
// conjunction by sampling the trace generator. Results are memoized by
// predicate signature.
func (w *World) Selectivity(q *query.Query) float64 {
	key := ""
	for _, p := range q.Where {
		if p.IsSelection() {
			key += p.Normalize().String() + "|"
		}
	}
	if w.selCache == nil {
		w.selCache = make(map[string]float64)
	}
	if v, ok := w.selCache[key]; ok {
		return v
	}
	gen, err := trace.New(w.Trace.Cfg)
	if err != nil {
		return 1
	}
	const ticks = 30
	pass, total := 0, 0
	for i := 0; i < ticks; i++ {
		for _, t := range gen.Next() {
			for _, ref := range q.From {
				if ref.Stream != t.Stream {
					continue
				}
				total++
				ok := true
				for _, p := range q.SelectionsFor(ref.Alias) {
					if !query.EvalSelection(p, t) {
						ok = false
						break
					}
				}
				if ok {
					pass++
				}
			}
		}
	}
	v := 1.0
	if total > 0 {
		v = float64(pass) / float64(total)
	}
	w.selCache[key] = v
	return v
}

// rateModel adapts the world to opplace.RateModel, with memoized empirical
// selectivities.
type rateModel struct {
	w     *World
	cache map[string]float64
}

func (m *rateModel) StreamRate(name string) float64 {
	d, err := deploymentIndex(name)
	if err != nil {
		return 0
	}
	var total float64
	for st := 0; st < len(m.w.SubRates); st++ {
		if st%m.w.Trace.Cfg.Deployments == d {
			total += m.w.SubRates[st]
		}
	}
	return total
}

func (m *rateModel) SourceOf(name string) (topology.NodeID, bool) {
	d, err := deploymentIndex(name)
	if err != nil || d >= len(m.w.Sources) {
		return -1, false
	}
	return m.w.Sources[d], true
}

func (m *rateModel) Selectivity(streamName string, preds []query.Predicate) float64 {
	key := streamName
	for _, p := range preds {
		key += "|" + p.Normalize().String()
	}
	if v, ok := m.cache[key]; ok {
		return v
	}
	gen, err := trace.New(m.w.Trace.Cfg)
	if err != nil {
		return 1
	}
	pass, total := 0, 0
	for i := 0; i < 30; i++ {
		for _, t := range gen.Next() {
			if t.Stream != streamName {
				continue
			}
			total++
			ok := true
			for _, p := range preds {
				if !query.EvalSelection(p, t) {
					ok = false
					break
				}
			}
			if ok {
				pass++
			}
		}
	}
	v := 1.0
	if total > 0 {
		v = float64(pass) / float64(total)
	}
	m.cache[key] = v
	return v
}

func (m *rateModel) JoinFactor(q *query.Query) float64 {
	// Timestamp-window joins emit roughly one match per overlapping
	// reading pair; scale with the smaller window.
	minSpan := time.Duration(1 << 62)
	for _, r := range q.From {
		if r.Window.Kind == query.Range && r.Window.Span < minSpan {
			minSpan = r.Window.Span
		}
	}
	f := 0.02 * minSpan.Minutes() / 60
	if f > 0.5 {
		f = 0.5
	}
	if f <= 0 {
		f = 0.01
	}
	return f
}

// Result is one Fig 11 measurement point.
type Result struct {
	Queries int
	// CosmosCost and OpCost are weighted communication costs.
	CosmosCost float64
	OpCost     float64
	// CosmosTime and OpTime are optimizer running times.
	CosmosTime time.Duration
	OpTime     time.Duration
	// SharedOperators reports how much sharing the operator graph found.
	SharedOperators map[opplace.OpKind]int
}

// Run executes one comparison point: distribute the queries with COSMOS and
// with operator placement, and cost both plans.
func (w *World) Run(cqs []*CompiledQuery, k int) (*Result, error) {
	res := &Result{Queries: len(cqs)}

	// COSMOS.
	tree, err := hierarchy.Build(w.Oracle, w.Processors, nil, hierarchy.Config{K: k, VMax: 60, Seed: 11})
	if err != nil {
		return nil, err
	}
	infos := make([]querygraph.QueryInfo, len(cqs))
	for i, cq := range cqs {
		infos[i] = cq.Info
	}
	start := time.Now()
	if _, err := tree.Distribute(infos, w.SubRates, w.SourceOfSub); err != nil {
		return nil, err
	}
	res.CosmosTime = time.Since(start)
	res.CosmosCost = w.cosmosCost(cqs, tree.Placement())

	// Operator placement.
	model := &rateModel{w: w, cache: make(map[string]float64)}
	start = time.Now()
	og := opplace.NewGraph()
	for _, cq := range cqs {
		if err := og.AddQuery(cq.Query, cq.Proxy, model); err != nil {
			return nil, err
		}
	}
	og.Place(w.Oracle, w.Processors, 3)
	res.OpTime = time.Since(start)
	res.OpCost = og.Cost(w.Oracle)
	res.SharedOperators = og.OperatorCount()
	return res, nil
}

// cosmosCost prices the COSMOS plan under the same pairwise model used for
// the operator graph: each processor pulls, per station it is interested
// in, the station's rate scaled by the weakest (largest) selectivity among
// its queries — the Pub/Sub merges subscriptions, so the union filter
// governs the wire rate — and each query ships its result to its proxy.
func (w *World) cosmosCost(cqs []*CompiledQuery, placement map[string]topology.NodeID) float64 {
	type key struct {
		proc topology.NodeID
		sub  int
	}
	wire := make(map[key]float64)
	var total float64
	for _, cq := range cqs {
		proc, ok := placement[cq.Query.Name]
		if !ok {
			continue
		}
		sel := cq.Sel
		for _, sub := range cq.Info.Interest.Indices() {
			k := key{proc, sub}
			if sel > wire[k] {
				wire[k] = sel
			}
		}
		if proc != cq.Proxy {
			total += cq.Info.ResultRate * w.Oracle.Latency(proc, cq.Proxy)
		}
	}
	// Sum the wire terms in sorted key order: float addition is not
	// associative, and the cost is compared bit-for-bit across runs.
	keys := make([]key, 0, len(wire))
	for k := range wire {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].proc != keys[j].proc {
			return keys[i].proc < keys[j].proc
		}
		return keys[i].sub < keys[j].sub
	})
	for _, k := range keys {
		src := w.SourceOfSub[k.sub]
		total += w.SubRates[k.sub] * wire[k] * w.Oracle.Latency(src, k.proc)
	}
	return total
}
