package prototype

import (
	"testing"

	"repro/internal/opplace"
	"repro/internal/trace"
)

func testPrototypeWorld(t *testing.T) *World {
	t.Helper()
	cfg := trace.DefaultConfig()
	w, err := NewWorld(30, cfg, 3)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	return w
}

func TestGenerateQueriesParse(t *testing.T) {
	w := testPrototypeWorld(t)
	cqs, err := w.GenerateQueries(50, 9)
	if err != nil {
		t.Fatalf("GenerateQueries: %v", err)
	}
	if len(cqs) != 50 {
		t.Fatalf("got %d queries, want 50", len(cqs))
	}
	for _, cq := range cqs {
		if cq.Info.Interest.Count() == 0 {
			t.Errorf("query %s has empty interest", cq.Query.Name)
		}
		if len(cq.Query.JoinPredicates()) == 0 {
			t.Errorf("query %s has no join predicates", cq.Query.Name)
		}
		if cq.Sel < 0 || cq.Sel > 1 {
			t.Errorf("query %s has selectivity %v outside [0,1]", cq.Query.Name, cq.Sel)
		}
	}
}

func TestFig11Comparison(t *testing.T) {
	w := testPrototypeWorld(t)
	for _, n := range []int{50, 150} {
		cqs, err := w.GenerateQueries(n, 9)
		if err != nil {
			t.Fatalf("GenerateQueries(%d): %v", n, err)
		}
		res, err := w.Run(cqs, 2)
		if err != nil {
			t.Fatalf("Run(%d): %v", n, err)
		}
		t.Logf("n=%d cosmos cost=%.0f time=%v | opplace cost=%.0f time=%v | ops=%v",
			n, res.CosmosCost, res.CosmosTime, res.OpCost, res.OpTime, res.SharedOperators)
		// Fig 11(a): COSMOS within a small factor of operator placement.
		if res.CosmosCost > res.OpCost*3 {
			t.Errorf("n=%d: cosmos cost %.0f more than 3x op placement %.0f", n, res.CosmosCost, res.OpCost)
		}
		// Sharing must collapse duplicate selections (joins rarely
		// share because their windows are drawn at random).
		if res.SharedOperators[opplace.OpSelect] >= 2*n {
			t.Errorf("n=%d: no selection sharing (%d selects)", n, res.SharedOperators[opplace.OpSelect])
		}
		// Fig 11(b): operator placement's running time exceeds
		// COSMOS's.
		if res.OpTime < res.CosmosTime {
			t.Errorf("n=%d: op placement time %v below cosmos %v", n, res.OpTime, res.CosmosTime)
		}
	}
}
