package pubsub

import (
	"fmt"
	"testing"

	"repro/internal/stream"
	"repro/internal/topology"
)

// Ungraceful-failure tests: RemoveBroker (crash), FailLink (link loss/flap),
// rejoin via AddBroker, the non-neighbor straggler guards, and the quiesce
// garbage collection of reorder tombstones. The recurring oracle is
// behavioral equivalence with a from-scratch overlay: after repair, probe
// deliveries (and, when the healed topology coincides, routing state sizes)
// match a network that never saw the failure, and teardown still drains to
// empty.

// collectState snapshots (remote, local, own, learned) per broker.
func collectState(net *Network) map[topology.NodeID][4]int {
	out := make(map[topology.NodeID][4]int)
	for _, n := range net.Nodes() {
		b, _ := net.Broker(n)
		remote, local := b.RoutingStateSize()
		own, learned := b.AdvertStateSize()
		out[n] = [4]int{remote, local, own, learned}
	}
	return out
}

// TestRemoveBrokerRepairsAroundGap: crashing a relay broker on the 0-1-2-3
// line splits the tree; the survivors detach the dead link, the components
// re-attach over the cheapest surviving pair, and routing works end to end
// across the repaired overlay without re-issuing any subscription.
func TestRemoveBrokerRepairsAroundGap(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	dst, _ := net.Broker(3)
	src.Advertise("R")
	hits := 0
	if err := dst.Subscribe(&Subscription{ID: "s", Streams: []string{"R"}},
		func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}

	if !net.RemoveBroker(1) {
		t.Fatal("RemoveBroker(1) found no broker")
	}
	if net.RemoveBroker(1) {
		t.Fatal("second RemoveBroker(1) should report no broker")
	}
	// The dead node is gone from the membership and from every link.
	for _, n := range net.Nodes() {
		if n == 1 {
			t.Fatal("removed broker still listed")
		}
	}
	for _, link := range net.Links() {
		if link[0] == 1 || link[1] == 1 {
			t.Fatalf("link %v still references the removed broker", link)
		}
	}

	// Repair: {0} and {2,3} re-attach via 0-2 (latency 3, the cheapest
	// surviving cross pair), and the advert resync re-propagates the
	// subscription toward the publisher.
	src.Publish(tuple("R", map[string]float64{"a": 1}))
	if hits != 1 {
		t.Fatalf("deliveries after repair = %d, want 1", hits)
	}

	// The healed overlay equals a from-scratch build over the survivors:
	// same MST (0-2, 2-3), same routing and advert state sizes.
	g := topology.NewGraph(4)
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(topology.NodeID(i), topology.NodeID(i+1), float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := NewNetwork(topology.NewOracle(g), []topology.NodeID{0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	fsrc, _ := fresh.Broker(0)
	fdst, _ := fresh.Broker(3)
	fsrc.Advertise("R")
	fhits := 0
	if err := fdst.Subscribe(&Subscription{ID: "s", Streams: []string{"R"}},
		func(*Subscription, stream.Tuple) { fhits++ }); err != nil {
		t.Fatal(err)
	}
	healed, scratch := collectState(net), collectState(fresh)
	for n, want := range scratch {
		if healed[n] != want {
			t.Errorf("broker %d state %v differs from from-scratch build %v", n, healed[n], want)
		}
	}

	// Teardown drains the healed overlay to empty.
	dst.Unsubscribe("s")
	src.Unadvertise("R")
	if residual := net.ResidualState(); len(residual) != 0 {
		t.Fatalf("healed overlay did not drain:\n%v", residual)
	}
}

// TestRemoveBrokerPublisherWithdrawsAdverts: crashing the PUBLISHER broker
// withdraws its advertisements at every survivor (no unadvertise was ever
// sent), leaving subscribers holding only their local records.
func TestRemoveBrokerPublisherWithdrawsAdverts(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	dst, _ := net.Broker(3)
	src.Advertise("R")
	if err := dst.Subscribe(&Subscription{ID: "s", Streams: []string{"R"}}, nil); err != nil {
		t.Fatal(err)
	}

	if !net.RemoveBroker(0) {
		t.Fatal("RemoveBroker(0) found no broker")
	}
	for _, n := range net.Nodes() {
		b, _ := net.Broker(n)
		own, learned := b.AdvertStateSize()
		if own != 0 || learned != 0 {
			t.Errorf("broker %d still holds advert state own=%d learned=%d after publisher crash", n, own, learned)
		}
		remote, _ := b.RoutingStateSize()
		if remote != 0 {
			t.Errorf("broker %d still records %d remote subscriptions after publisher crash", n, remote)
		}
	}
	dst.Unsubscribe("s")
	if residual := net.ResidualState(); len(residual) != 0 {
		t.Fatalf("survivors did not drain after publisher crash:\n%v", residual)
	}
}

// TestRemoveBrokerRejoinResyncs: a crashed broker rejoining via AddBroker
// resyncs advert state over its attach link and is immediately routable in
// both directions — the crash/rejoin cycle is invisible to probe traffic.
func TestRemoveBrokerRejoinResyncs(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	dst, _ := net.Broker(3)
	src.Advertise("R")
	hits := 0
	if err := dst.Subscribe(&Subscription{ID: "s", Streams: []string{"R"}},
		func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}

	net.RemoveBroker(1)
	rejoined := net.AddBroker(1)

	// The rejoined broker learned the advert state of the overlay...
	_, learned := rejoined.AdvertStateSize()
	if learned != 1 {
		t.Fatalf("rejoined broker learned %d adverts, want 1", learned)
	}
	// ...and can subscribe (routing toward it works) while traffic through
	// the healed overlay still reaches the old subscriber.
	rhits := 0
	if err := rejoined.Subscribe(&Subscription{ID: "r", Streams: []string{"R"}},
		func(*Subscription, stream.Tuple) { rhits++ }); err != nil {
		t.Fatal(err)
	}
	src.Publish(tuple("R", map[string]float64{"a": 2}))
	if hits != 1 || rhits != 1 {
		t.Fatalf("deliveries after rejoin: old=%d rejoined=%d, want 1/1", hits, rhits)
	}

	rejoined.Unsubscribe("r")
	dst.Unsubscribe("s")
	src.Unadvertise("R")
	if residual := net.ResidualState(); len(residual) != 0 {
		t.Fatalf("overlay did not drain after rejoin teardown:\n%v", residual)
	}
}

// TestFailLinkFlap: failing the 1-2 link tears both sides down; the repair
// re-adds the very same link (it is the cheapest cross pair), making the
// flap a full teardown+resync. The flapped overlay is state-identical to a
// from-scratch build and still drains.
func TestFailLinkFlap(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	dst, _ := net.Broker(3)
	src.Advertise("R")
	hits := 0
	if err := dst.Subscribe(&Subscription{ID: "s", Streams: []string{"R"}},
		func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}

	if !net.FailLink(1, 2) {
		t.Fatal("FailLink(1,2) found no link")
	}
	if net.FailLink(0, 3) {
		t.Fatal("FailLink(0,3) is not an overlay link, want false")
	}
	links := net.Links()
	if len(links) != 3 {
		t.Fatalf("flapped overlay has %d links, want 3: %v", len(links), links)
	}

	src.Publish(tuple("R", map[string]float64{"a": 1}))
	if hits != 1 {
		t.Fatalf("deliveries after flap = %d, want 1", hits)
	}

	// Same topology as the never-flapped build: state sizes must coincide.
	ref := lineNet(t)
	rsrc, _ := ref.Broker(0)
	rdst, _ := ref.Broker(3)
	rsrc.Advertise("R")
	if err := rdst.Subscribe(&Subscription{ID: "s", Streams: []string{"R"}}, nil); err != nil {
		t.Fatal(err)
	}
	flapped, scratch := collectState(net), collectState(ref)
	for n, want := range scratch {
		if flapped[n] != want {
			t.Errorf("broker %d state %v differs from never-flapped build %v", n, flapped[n], want)
		}
	}

	dst.Unsubscribe("s")
	src.Unadvertise("R")
	if residual := net.ResidualState(); len(residual) != 0 {
		t.Fatalf("flapped overlay did not drain:\n%v", residual)
	}
}

// TestDeadLinkStragglersDropped: after a crash, messages the dead link still
// delivers (delayed copies impersonating the removed neighbor) are rejected
// by the non-neighbor guards instead of installing unreachable state.
func TestDeadLinkStragglersDropped(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	b2, _ := net.Broker(2)
	src.Advertise("R")
	net.RemoveBroker(1)

	// Stragglers "from 1" land at 0 and 2 after the link died.
	b2.AdvertFrom(1, "S", 1, 9)
	b2.PropagateFrom(&Subscription{ID: "ghost", Seq: 9, Streams: []string{"R"}}, 1)
	b2.RetractFrom(1, "ghost", 9)
	b2.UnadvertFrom(1, "R", 0, 9)
	b2.RouteFrom(tuple("R", map[string]float64{"a": 1}), 1)
	src.PropagateFrom(&Subscription{ID: "ghost2", Seq: 9, Streams: []string{"R"}}, 1)

	if remote, _ := b2.RoutingStateSize(); remote != 0 {
		t.Errorf("straggler subscription recorded: %d remote records", remote)
	}
	if _, learned := b2.AdvertStateSize(); learned != 1 {
		t.Errorf("straggler advert/unadvert mutated advert state: learned=%d, want 1 (R via repair link)", learned)
	}
	src.Unadvertise("R")
	if residual := net.ResidualState(); len(residual) != 0 {
		t.Fatalf("stragglers left residual state:\n%v", residual)
	}
}

// TestTombstonesSurviveDuplicatedStragglers: on a duplicating link, the
// second stale copy of an annihilated advert or tombstoned propagation must
// ALSO be dropped — the tombstone is kept, not consumed by the first copy —
// and Quiesce garbage-collects the tombstones once the link is quiet.
func TestTombstonesSurviveDuplicatedStragglers(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	b1, _ := net.Broker(1)
	src.Advertise("R")

	// Retraction overtakes the propagation; the propagation then arrives
	// TWICE (duplicated link). Absent the tombstone the copies WOULD
	// install ("R" is advertised via direction 0), and a consume-on-first-
	// copy tombstone would let the second copy through.
	b1.RetractFrom(2, "dup", 5)
	late := &Subscription{ID: "dup", Seq: 5, Streams: []string{"R"}}
	b1.PropagateFrom(late, 2)
	b1.PropagateFrom(late, 2)
	if remote, _ := b1.RoutingStateSize(); remote != 0 {
		t.Fatalf("duplicated stale propagation installed %d records past its retraction", remote)
	}

	// Withdrawal overtakes the advert; the advert arrives twice.
	b1.UnadvertFrom(0, "X", 0, 7)
	b1.AdvertFrom(0, "X", 0, 7)
	b1.AdvertFrom(0, "X", 0, 7)
	if _, learned := b1.AdvertStateSize(); learned != 1 {
		t.Fatalf("duplicated stale advert resurrected entries: learned=%d, want 1 (just R)", learned)
	}

	// After a clean unadvertise the kept tombstones are the only residual
	// state; Quiesce garbage-collects them once the links are quiet.
	src.Unadvertise("R")
	residual := net.ResidualState()
	if len(residual) != 2 {
		t.Fatalf("residual = %v, want exactly the two tombstone entries", residual)
	}
	net.Quiesce()
	if residual := net.ResidualState(); len(residual) != 0 {
		t.Fatalf("Quiesce left residual state:\n%v", residual)
	}

	// Newer epochs still supersede after a quiesce.
	src.Advertise("R")
	b1.PropagateFrom(&Subscription{ID: "dup", Seq: 6, Streams: []string{"R"}}, 2)
	if remote, _ := b1.RoutingStateSize(); remote != 1 {
		t.Fatalf("fresh epoch blocked after quiesce: %d records", remote)
	}
}

// TestRemoveBrokerStarTopology: crashing the hub of a star splits the tree
// into three singleton components; the deterministic re-attach must produce
// one connected overlay and keep every subscriber reachable.
func TestRemoveBrokerStarTopology(t *testing.T) {
	g := topology.NewGraph(4)
	// Star around node 0 with distinct spoke latencies.
	for i := 1; i < 4; i++ {
		if err := g.AddEdge(0, topology.NodeID(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	net, err := NewNetwork(topology.NewOracle(g), []topology.NodeID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := net.Broker(1)
	src.Advertise("R")
	var hits [4]int
	for i := 2; i < 4; i++ {
		b, _ := net.Broker(topology.NodeID(i))
		i := i
		if err := b.Subscribe(&Subscription{ID: fmt.Sprintf("s%d", i), Streams: []string{"R"}},
			func(*Subscription, stream.Tuple) { hits[i]++ }); err != nil {
			t.Fatal(err)
		}
	}

	net.RemoveBroker(0)
	if got := len(net.Links()); got != 2 {
		t.Fatalf("re-attached overlay has %d links, want 2 (spanning tree over 3 nodes)", got)
	}
	src.Publish(tuple("R", map[string]float64{"a": 1}))
	if hits[2] != 1 || hits[3] != 1 {
		t.Fatalf("deliveries after hub crash = %v, want one each at 2 and 3", hits)
	}

	for i := 2; i < 4; i++ {
		b, _ := net.Broker(topology.NodeID(i))
		b.Unsubscribe(fmt.Sprintf("s%d", i))
	}
	src.Unadvertise("R")
	if residual := net.ResidualState(); len(residual) != 0 {
		t.Fatalf("star overlay did not drain after hub crash:\n%v", residual)
	}
}
