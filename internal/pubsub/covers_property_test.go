package pubsub

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/query"
	"repro/internal/stream"
)

// randomSub draws a subscription over streams {R,S}, attrs {a,b}, with 0-2
// numeric filters.
func randomSub(r *rand.Rand, id string) *Subscription {
	s := &Subscription{ID: id}
	if r.IntN(2) == 0 {
		s.Streams = []string{"R"}
	} else {
		s.Streams = []string{"R", "S"}
	}
	if r.IntN(3) == 0 {
		s.Attrs = []string{"a"}
	}
	ops := []query.Op{query.Gt, query.Ge, query.Lt, query.Le}
	attrs := []string{"a", "b"}
	for i := 0; i < r.IntN(3); i++ {
		s.Filters = append(s.Filters,
			filter(attrs[r.IntN(len(attrs))], ops[r.IntN(len(ops))], float64(r.IntN(21)-10)))
	}
	return s
}

// randomTuple draws a message over the same domain.
func randomTuple(r *rand.Rand) stream.Tuple {
	name := "R"
	if r.IntN(2) == 0 {
		name = "S"
	}
	return stream.Tuple{
		Stream: name,
		Attrs: map[string]stream.Value{
			"a": stream.FloatVal(float64(r.IntN(25) - 12)),
			"b": stream.FloatVal(float64(r.IntN(25) - 12)),
		},
		Size: 32,
	}
}

// TestQuickCoversSoundness: the covering relation used to suppress
// subscription propagation must be SOUND — if wide.Covers(narrow), then
// every message narrow matches, wide matches too. (Routing correctness
// depends on exactly this: a suppressed subscription relies on the covering
// one to pull its traffic.)
func TestQuickCoversSoundness(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 101))
		wide := randomSub(r, "w")
		narrow := randomSub(r, "n")
		if !wide.Covers(narrow) {
			return true
		}
		for trial := 0; trial < 40; trial++ {
			msg := randomTuple(r)
			if narrow.Matches(msg) && !wide.Matches(msg) {
				t.Logf("wide %s claimed to cover %s but misses %v", wide, narrow, msg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickMergeCoversInputs: a merged subscription profile must admit
// every message either input admits (the p3 = p1 ∪ p2 step of Fig 3).
func TestQuickMergeCoversInputs(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 103))
		a := randomSub(r, "a")
		b := randomSub(r, "b")
		m := MergeSubscriptions("m", a, b)
		for trial := 0; trial < 40; trial++ {
			msg := randomTuple(r)
			if (a.Matches(msg) || b.Matches(msg)) && !m.Matches(msg) {
				t.Logf("merge %s drops message %v admitted by %s / %s",
					m, msg, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickCoversReflexiveTransitive: covering is reflexive and transitive
// on random chains built by syntactic weakening.
func TestQuickCoversReflexiveTransitive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 107))
		base := float64(r.IntN(10))
		mk := func(bound float64) *Subscription {
			return &Subscription{
				ID:      fmt.Sprint(bound),
				Streams: []string{"R"},
				Filters: []query.Predicate{filter("a", query.Gt, bound)},
			}
		}
		weak := mk(base)
		mid := mk(base + float64(r.IntN(5)))
		strong := mk(base + 5 + float64(r.IntN(5)))
		if !weak.Covers(weak) {
			return false
		}
		if !weak.Covers(mid) || !mid.Covers(strong) {
			return false
		}
		return weak.Covers(strong)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
