package pubsub

import (
	"fmt"
	"testing"

	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
)

// lineNet builds a 4-broker overlay over a path topology 0-1-2-3.
func lineNet(t *testing.T) *Network {
	t.Helper()
	g := topology.NewGraph(4)
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(topology.NodeID(i), topology.NodeID(i+1), float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	net, err := NewNetwork(topology.NewOracle(g), []topology.NodeID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func filter(attr string, op query.Op, v float64) query.Predicate {
	lit := stream.FloatVal(v)
	return query.Predicate{
		Left:  query.Operand{Col: &query.ColRef{Attr: attr}},
		Op:    op,
		Right: query.Operand{Lit: &lit},
	}
}

func tuple(streamName string, attrs map[string]float64) stream.Tuple {
	t := stream.Tuple{Stream: streamName, Attrs: make(map[string]stream.Value, len(attrs)), Size: 24}
	for k, v := range attrs {
		t.Attrs[k] = stream.FloatVal(v)
	}
	return t
}

func TestDeliveryWithFilter(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	dst, _ := net.Broker(3)
	src.Advertise("R")

	var got []stream.Tuple
	sub := &Subscription{
		ID:      "s1",
		Streams: []string{"R"},
		Filters: []query.Predicate{filter("a", query.Gt, 10)},
	}
	if err := dst.Subscribe(sub, func(_ *Subscription, t stream.Tuple) {
		got = append(got, t)
	}); err != nil {
		t.Fatal(err)
	}

	src.Publish(tuple("R", map[string]float64{"a": 15}))
	src.Publish(tuple("R", map[string]float64{"a": 5}))  // filtered at source
	src.Publish(tuple("S", map[string]float64{"a": 99})) // wrong stream

	if len(got) != 1 || got[0].Attrs["a"].F != 15 {
		t.Fatalf("delivered %v, want one tuple with a=15", got)
	}
	// The a=5 tuple must not have crossed ANY link (early filtering).
	rep := net.Traffic()
	if rep.DataBytes != 24*3 { // one tuple over three links
		t.Errorf("data bytes = %v, want 72 (one tuple, three hops)", rep.DataBytes)
	}
}

func TestEarlyProjection(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	dst, _ := net.Broker(3)
	src.Advertise("R")

	var got stream.Tuple
	sub := &Subscription{ID: "s", Streams: []string{"R"}, Attrs: []string{"a"}}
	if err := dst.Subscribe(sub, func(_ *Subscription, t stream.Tuple) { got = t }); err != nil {
		t.Fatal(err)
	}
	src.Publish(tuple("R", map[string]float64{"a": 1, "b": 2, "c": 3}))
	if len(got.Attrs) != 1 {
		t.Fatalf("projected tuple has attrs %v, want only a", got.Attrs)
	}
	// Forwarded size reflects the projection: 16 + 8*1 = 24 per hop.
	if rep := net.Traffic(); rep.DataBytes != 24*3 {
		t.Errorf("data bytes = %v, want 72", rep.DataBytes)
	}
}

func TestDuplicateEliminationAcrossSubscribers(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	b2, _ := net.Broker(2)
	b3, _ := net.Broker(3)
	src.Advertise("R")

	count2, count3 := 0, 0
	sub := func(id string) *Subscription {
		return &Subscription{ID: id, Streams: []string{"R"}}
	}
	if err := b2.Subscribe(sub("a"), func(*Subscription, stream.Tuple) { count2++ }); err != nil {
		t.Fatal(err)
	}
	if err := b3.Subscribe(sub("b"), func(*Subscription, stream.Tuple) { count3++ }); err != nil {
		t.Fatal(err)
	}
	src.Publish(tuple("R", map[string]float64{"a": 1}))
	if count2 != 1 || count3 != 1 {
		t.Fatalf("deliveries = %d/%d", count2, count3)
	}
	// Links 0-1 and 1-2 carry the tuple once; 2-3 once more: 3 link
	// crossings total despite two subscribers (one copy per link).
	if rep := net.Traffic(); rep.DataBytes != 24*3 {
		t.Errorf("data bytes = %v, want 72 (duplicate elimination)", rep.DataBytes)
	}
}

func TestLocalSubscriberAtSource(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	src.Advertise("R")
	hits := 0
	if err := src.Subscribe(&Subscription{ID: "l", Streams: []string{"R"}},
		func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}
	src.Publish(tuple("R", map[string]float64{"a": 1}))
	if hits != 1 {
		t.Errorf("local delivery = %d", hits)
	}
	if rep := net.Traffic(); rep.DataBytes != 0 {
		t.Errorf("local-only delivery used the network: %v", rep.DataBytes)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	dst, _ := net.Broker(1)
	src.Advertise("R")
	hits := 0
	if err := dst.Subscribe(&Subscription{ID: "u", Streams: []string{"R"}},
		func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}
	src.Publish(tuple("R", nil))
	dst.Unsubscribe("u")
	src.Publish(tuple("R", nil))
	if hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
}

// TestLocalDeliveryOrderAndPhase: matched local handlers fire in
// subscription-registration order, and before forwarding. (They used to run
// as deferred calls: LIFO and only after every forward.)
func TestLocalDeliveryOrderAndPhase(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	dst, _ := net.Broker(1)
	src.Advertise("R")

	var events []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("local%d", i)
		sub := &Subscription{ID: name, Streams: []string{"R"}}
		if err := src.Subscribe(sub, func(*Subscription, stream.Tuple) {
			events = append(events, name)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dst.Subscribe(&Subscription{ID: "remote", Streams: []string{"R"}},
		func(*Subscription, stream.Tuple) { events = append(events, "remote") }); err != nil {
		t.Fatal(err)
	}

	src.Publish(tuple("R", map[string]float64{"a": 1}))
	want := []string{"local0", "local1", "local2", "remote"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

// TestLocalDeliveryCopiesAttrs: a handler receiving the full tuple (nil
// projection) gets its own attribute map, so mutating it cannot corrupt the
// copies forwarded to neighbors or delivered to later handlers.
func TestLocalDeliveryCopiesAttrs(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	dst, _ := net.Broker(1)
	src.Advertise("R")

	if err := src.Subscribe(&Subscription{ID: "mut", Streams: []string{"R"}},
		func(_ *Subscription, tp stream.Tuple) { delete(tp.Attrs, "a") }); err != nil {
		t.Fatal(err)
	}
	var got stream.Tuple
	if err := dst.Subscribe(&Subscription{ID: "obs", Streams: []string{"R"}},
		func(_ *Subscription, tp stream.Tuple) { got = tp }); err != nil {
		t.Fatal(err)
	}
	src.Publish(tuple("R", map[string]float64{"a": 7}))
	if v, ok := got.Attrs["a"]; !ok || v.F != 7 {
		t.Fatalf("forwarded tuple lost attribute mutated by a local handler: %v", got.Attrs)
	}
}

// TestAdvertSendSideAccounting: advert flood traffic is charged by the
// sender for every link the advert crosses — including re-advertisements
// the receiver duplicate-suppresses, which used to go uncounted.
func TestAdvertSendSideAccounting(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	src.Advertise("R")
	// First flood crosses each of the 3 overlay links once.
	if rep := net.Traffic(); rep.ControlBytes != 3*advertSize {
		t.Fatalf("control bytes after flood = %v, want %v", rep.ControlBytes, 3*advertSize)
	}
	// Re-advertising crosses 0-1 once more before broker 1 suppresses it.
	src.Advertise("R")
	if rep := net.Traffic(); rep.ControlBytes != 4*advertSize {
		t.Fatalf("control bytes after duplicate advert = %v, want %v", rep.ControlBytes, 4*advertSize)
	}
}

// TestLocalCoverSuppressesPropagation: a second local subscription covered
// by an earlier local one must not flood the overlay — the covering
// subscription already pulls a superset of its traffic — while local
// delivery of both keeps working. (Locally-originated subscriptions used to
// be invisible to the suppression check.)
func TestLocalCoverSuppressesPropagation(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	b3, _ := net.Broker(3)
	src.Advertise("R")

	wideHits, narrowHits := 0, 0
	wide := &Subscription{ID: "wide", Streams: []string{"R"}}
	if err := b3.Subscribe(wide, func(*Subscription, stream.Tuple) { wideHits++ }); err != nil {
		t.Fatal(err)
	}
	before := net.Traffic().ControlBytes
	narrow := &Subscription{ID: "narrow", Streams: []string{"R"},
		Filters: []query.Predicate{filter("a", query.Gt, 10)}}
	if err := b3.Subscribe(narrow, func(*Subscription, stream.Tuple) { narrowHits++ }); err != nil {
		t.Fatal(err)
	}
	if after := net.Traffic().ControlBytes; after != before {
		t.Fatalf("covered local subscription still flooded: control %v -> %v", before, after)
	}

	src.Publish(tuple("R", map[string]float64{"a": 15}))
	src.Publish(tuple("R", map[string]float64{"a": 5}))
	if wideHits != 2 || narrowHits != 1 {
		t.Fatalf("deliveries wide=%d narrow=%d, want 2/1", wideHits, narrowHits)
	}
}

// TestAdvertTriggeredRepropagation: a local subscription registered before
// any matching advert exists is replayed toward the advertiser when the
// advert flood arrives (the re-propagation epoch), multi-hop — so
// subscribe-before-advertise orderings route correctly — and from then on
// it suppresses covered subscriptions exactly as an eagerly propagated one
// would. (Before the lifecycle subsystem, such a subscription was never
// propagated at all and deliveries silently failed.)
func TestAdvertTriggeredRepropagation(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	b3, _ := net.Broker(3)

	// Subscribe before any advert exists: wide has nowhere to go yet.
	wideHits, narrowHits := 0, 0
	wide := &Subscription{ID: "wide", Streams: []string{"R"}}
	if err := b3.Subscribe(wide, func(*Subscription, stream.Tuple) { wideHits++ }); err != nil {
		t.Fatal(err)
	}
	if rep := net.Traffic(); rep.ControlBytes != 0 {
		t.Fatalf("subscription with no advertised stream generated traffic: %v", rep.ControlBytes)
	}

	// The advert flood triggers the replay: wide crosses each link once,
	// right behind the advert, and is recorded along the whole path.
	src.Advertise("R")
	wantControl := float64(3*advertSize + 3*subSize(wide))
	if rep := net.Traffic(); rep.ControlBytes != wantControl {
		t.Fatalf("control bytes after advert = %v, want %v (advert + replayed subscription per link)",
			rep.ControlBytes, wantControl)
	}
	if remote, _ := src.RoutingStateSize(); remote != 1 {
		t.Fatalf("publisher records %d subscriptions, want 1 (replayed wide)", remote)
	}

	// A later covered subscription is suppressed — wide has genuinely
	// been propagated now, so the suppression is sound.
	before := net.Traffic().ControlBytes
	narrow := &Subscription{ID: "narrow", Streams: []string{"R"},
		Filters: []query.Predicate{filter("a", query.Gt, 10)}}
	if err := b3.Subscribe(narrow, func(*Subscription, stream.Tuple) { narrowHits++ }); err != nil {
		t.Fatal(err)
	}
	if after := net.Traffic().ControlBytes; after != before {
		t.Fatalf("covered subscription flooded after replay: control %v -> %v", before, after)
	}

	src.Publish(tuple("R", map[string]float64{"a": 15}))
	src.Publish(tuple("R", map[string]float64{"a": 5}))
	if wideHits != 2 || narrowHits != 1 {
		t.Fatalf("deliveries wide=%d narrow=%d, want 2/1", wideHits, narrowHits)
	}
}

// TestRepropagationCoversWithinReplay: when several pending subscriptions
// replay in one epoch, covering applies inside the batch — the covering one
// (earlier registration) is sent, the covered one suppressed.
func TestRepropagationCoversWithinReplay(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	b3, _ := net.Broker(3)

	wide := &Subscription{ID: "wide", Streams: []string{"R"}}
	narrow := &Subscription{ID: "narrow", Streams: []string{"R"},
		Filters: []query.Predicate{filter("a", query.Gt, 10)}}
	hits := map[string]int{}
	for _, s := range []*Subscription{wide, narrow} {
		if err := b3.Subscribe(s, func(s *Subscription, _ stream.Tuple) { hits[s.ID]++ }); err != nil {
			t.Fatal(err)
		}
	}
	src.Advertise("R")
	// Only wide replays: one advert and one subscription per link.
	wantControl := float64(3*advertSize + 3*subSize(wide))
	if rep := net.Traffic(); rep.ControlBytes != wantControl {
		t.Fatalf("control bytes = %v, want %v (covered subscription must not replay)",
			rep.ControlBytes, wantControl)
	}
	src.Publish(tuple("R", map[string]float64{"a": 15}))
	if hits["wide"] != 1 || hits["narrow"] != 1 {
		t.Fatalf("deliveries = %v, want wide=1 narrow=1", hits)
	}
}

// TestPropagateFromRejectsEmptySubscription: wire transports can deliver
// arbitrary subscriptions; a streamless one must be dropped, not crash the
// broker.
func TestPropagateFromRejectsEmptySubscription(t *testing.T) {
	net := lineNet(t)
	b1, _ := net.Broker(1)
	b1.PropagateFrom(&Subscription{ID: "bad"}, 0)
	b1.PropagateFrom(nil, 0)
	if rep := net.Traffic(); rep.ControlBytes != 0 {
		t.Fatalf("empty subscription generated traffic: %v", rep.ControlBytes)
	}
}

// TestMalformedFilterTolerated: a filter whose non-column operand carries no
// literal (IsSelection is still true for it) must not crash compilation —
// it evaluates false, exactly as the linear matcher's evalFilter treats it.
func TestMalformedFilterTolerated(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	src.Advertise("R")
	hits := 0
	bad := &Subscription{ID: "bad", Streams: []string{"R"},
		Filters: []query.Predicate{{
			Left: query.Operand{Col: &query.ColRef{Attr: "a"}},
			Op:   query.Gt, // Right operand empty: no Col, no Lit
		}}}
	if err := src.Subscribe(bad, func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}
	b1, _ := net.Broker(1)
	b1.PropagateFrom(bad, 2) // wire-delivered copy must not crash either
	src.Publish(tuple("R", map[string]float64{"a": 5}))
	if hits != 0 {
		t.Fatalf("malformed filter matched %d tuples, want 0", hits)
	}
}

func TestCoversRelation(t *testing.T) {
	wide := &Subscription{ID: "w", Streams: []string{"R", "S"}}
	narrow := &Subscription{
		ID:      "n",
		Streams: []string{"R"},
		Attrs:   []string{"a"},
		Filters: []query.Predicate{filter("a", query.Gt, 10)},
	}
	if !wide.Covers(narrow) {
		t.Error("unfiltered multi-stream subscription should cover the narrow one")
	}
	if narrow.Covers(wide) {
		t.Error("narrow subscription cannot cover the wide one")
	}
	// Filter weakening: a > 5 covers a > 10 but not vice versa.
	weak := &Subscription{ID: "k", Streams: []string{"R"}, Filters: []query.Predicate{filter("a", query.Gt, 5)}}
	strong := &Subscription{ID: "s", Streams: []string{"R"}, Filters: []query.Predicate{filter("a", query.Gt, 10)}}
	if !weak.Covers(strong) {
		t.Error("a>5 should cover a>10")
	}
	if strong.Covers(weak) {
		t.Error("a>10 should not cover a>5")
	}
}

func TestMergeSubscriptions(t *testing.T) {
	a := &Subscription{ID: "a", Streams: []string{"R"}, Attrs: []string{"x"},
		Filters: []query.Predicate{filter("x", query.Gt, 10)}}
	b := &Subscription{ID: "b", Streams: []string{"S"}, Attrs: []string{"y"},
		Filters: []query.Predicate{filter("x", query.Gt, 20)}}
	m := MergeSubscriptions("m", a, b)
	if len(m.Streams) != 2 {
		t.Errorf("merged streams = %v", m.Streams)
	}
	if len(m.Attrs) != 2 {
		t.Errorf("merged attrs = %v", m.Attrs)
	}
	if !m.Covers(a) || !m.Covers(b) {
		t.Errorf("merged subscription %v does not cover inputs", m)
	}
}

func TestMSTConnectsAllBrokers(t *testing.T) {
	net := lineNet(t)
	links := 0
	for _, n := range net.Nodes() {
		b, _ := net.Broker(n)
		links += len(b.Neighbors())
	}
	if links/2 != 3 {
		t.Errorf("overlay has %d links, want 3 (spanning tree of 4)", links/2)
	}
}

func TestNetworkValidation(t *testing.T) {
	g := topology.NewGraph(2)
	_ = g.AddEdge(0, 1, 1)
	o := topology.NewOracle(g)
	if _, err := NewNetwork(o, nil); err == nil {
		t.Error("empty broker set accepted")
	}
	if _, err := NewNetwork(o, []topology.NodeID{0, 0}); err == nil {
		t.Error("duplicate broker accepted")
	}
}
