package pubsub

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/stream"
	"repro/internal/topology"
)

// Network is an acyclic broker overlay over a set of topology nodes, with
// per-link traffic accounting. The overlay is a minimum-spanning tree of the
// pairwise latencies, the standard dissemination overlay for Siena-style
// acyclic routing.
type Network struct {
	oracle *topology.Oracle

	mu      sync.Mutex
	brokers map[topology.NodeID]*Broker
	// linear, noPrune, snapOff and coverDelta record the matcher and
	// propagation modes so dynamically joined brokers (AddBroker)
	// inherit them.
	linear     bool
	noPrune    bool
	snapOff    bool
	coverDelta bool
	// latency of each overlay link, keyed by ordered pair.
	links map[[2]topology.NodeID]float64
	// traffic in bytes per overlay link.
	data    map[[2]topology.NodeID]float64
	control map[[2]topology.NodeID]float64
	// wrap, when set, intercepts every Peer endpoint handed to brokers —
	// the fault-injection seam (see SetPeerWrapper).
	wrap PeerWrapper
}

// PeerWrapper intercepts the Peer endpoints the network hands to its
// brokers, one wrapped Peer per destination. The chaos fabric implements it
// to inject per-link faults without the routing logic knowing; the identity
// wrapper (or none) leaves the overlay loss-free.
type PeerWrapper interface {
	WrapPeer(to topology.NodeID, p Peer) Peer
}

// NewNetwork builds the broker overlay over the given nodes.
func NewNetwork(oracle *topology.Oracle, nodes []topology.NodeID) (*Network, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("pubsub: no broker nodes")
	}
	net := &Network{
		oracle:  oracle,
		brokers: make(map[topology.NodeID]*Broker, len(nodes)),
		links:   make(map[[2]topology.NodeID]float64),
		data:    make(map[[2]topology.NodeID]float64),
		control: make(map[[2]topology.NodeID]float64),
	}
	for _, n := range nodes {
		if _, dup := net.brokers[n]; dup {
			return nil, fmt.Errorf("pubsub: duplicate broker node %d", n)
		}
		net.brokers[n] = NewBroker(net, n)
	}
	net.buildMST(nodes)
	return net, nil
}

// buildMST wires the brokers with Prim's algorithm over oracle latencies.
func (net *Network) buildMST(nodes []topology.NodeID) {
	if len(nodes) == 1 {
		return
	}
	inTree := map[topology.NodeID]bool{nodes[0]: true}
	best := make(map[topology.NodeID]topology.NodeID, len(nodes))
	bestD := make(map[topology.NodeID]float64, len(nodes))
	for _, n := range nodes[1:] {
		best[n] = nodes[0]
		bestD[n] = net.oracle.Latency(nodes[0], n)
	}
	for len(inTree) < len(nodes) {
		// Pick the cheapest frontier node (deterministic tie-break).
		var pick topology.NodeID = -1
		min := math.Inf(1)
		for _, n := range nodes {
			if inTree[n] {
				continue
			}
			if d := bestD[n]; d < min || (d == min && (pick < 0 || n < pick)) {
				min, pick = d, n
			}
		}
		parent := best[pick]
		net.addLink(parent, pick, min)
		inTree[pick] = true
		for _, n := range nodes {
			if inTree[n] {
				continue
			}
			if d := net.oracle.Latency(pick, n); d < bestD[n] {
				bestD[n] = d
				best[n] = pick
			}
		}
	}
}

func (net *Network) addLink(a, b topology.NodeID, latency float64) {
	net.brokers[a].AddNeighbor(b)
	net.brokers[b].AddNeighbor(a)
	net.links[orderPair(a, b)] = latency
}

// Broker returns the broker at a node. The broker map is read under the
// network lock: AddBroker can grow it on a live overlay.
func (net *Network) Broker(n topology.NodeID) (*Broker, bool) {
	net.mu.Lock()
	defer net.mu.Unlock()
	b, ok := net.brokers[n]
	return b, ok
}

// AddBroker dynamically joins a broker for node n to a running overlay,
// attaching it by a new link to the nearest existing broker (greedy MST
// extension — the overlay stays an acyclic tree). The attach point replays
// its known advertisements over the new link so the newcomer immediately
// learns the direction of every advertised stream; the newcomer's own
// advertisements then flood normally and trigger subscription
// re-propagation toward it. Returns the existing broker unchanged when n
// is already part of the overlay.
func (net *Network) AddBroker(n topology.NodeID) *Broker {
	net.mu.Lock()
	if b, ok := net.brokers[n]; ok {
		net.mu.Unlock()
		return b
	}
	var attach topology.NodeID = -1
	best := math.Inf(1)
	for id := range net.brokers {
		d := net.oracle.Latency(id, n)
		if d < best || (d == best && (attach < 0 || id < attach)) {
			best, attach = d, id
		}
	}
	b := NewBroker(net, n)
	net.brokers[n] = b
	net.addLink(attach, n, best)
	attachBroker := net.brokers[attach]
	lin, noPrune, snapOff, delta := net.linear, net.noPrune, net.snapOff, net.coverDelta
	net.mu.Unlock()
	if lin {
		b.SetLinearMatching(true)
	}
	if noPrune {
		b.SetAttrPruning(false)
	}
	if snapOff {
		b.SetSnapshotRouting(false)
	}
	if delta {
		b.SetCoverDelta(true)
	}
	attachBroker.syncAdvertsTo(n)
	return b
}

// RemoveBroker removes a broker from a running overlay ungracefully — the
// crash-failure symmetric of AddBroker. The dead broker gets no goodbye
// protocol: it is deleted from the overlay first (its Peer becomes a null
// endpoint), then every former neighbor detaches its side of the dead link
// (DetachNeighbor — withdrawing the adverts and retracting the subscriptions
// learned through it, with the withdrawal and retraction floods repairing
// the survivors' state around the gap), and finally the orphaned components
// the removal split the tree into are re-attached deterministically
// (reattachComponents), each new link resyncing advert state in both
// directions so subscribe-before-advertise replay rebuilds the routing
// paths. Returns false when no broker lives at n.
func (net *Network) RemoveBroker(n topology.NodeID) bool {
	net.mu.Lock()
	if _, ok := net.brokers[n]; !ok {
		net.mu.Unlock()
		return false
	}
	delete(net.brokers, n)
	var former []*Broker
	for link := range net.links {
		var other topology.NodeID = -1
		if link[0] == n {
			other = link[1]
		} else if link[1] == n {
			other = link[0]
		}
		if other < 0 {
			continue
		}
		delete(net.links, link)
		if m, ok := net.brokers[other]; ok {
			former = append(former, m)
		}
	}
	sort.Slice(former, func(i, j int) bool { return former[i].Node < former[j].Node })
	net.mu.Unlock()
	for _, m := range former {
		m.DetachNeighbor(n)
	}
	net.reattachComponents()
	return true
}

// FailLink tears one overlay link down ungracefully: both endpoints detach
// their side (withdrawing and retracting what they learned through it), then
// the two components are re-attached by the cheapest surviving latency —
// possibly the very same link, which makes FailLink(a,b) a full link flap
// with teardown and resync. Returns false when a-b is not an overlay link.
func (net *Network) FailLink(a, b topology.NodeID) bool {
	net.mu.Lock()
	if _, ok := net.links[orderPair(a, b)]; !ok {
		net.mu.Unlock()
		return false
	}
	delete(net.links, orderPair(a, b))
	if a > b {
		a, b = b, a
	}
	ba, bb := net.brokers[a], net.brokers[b]
	net.mu.Unlock()
	// Detach in ascending endpoint order. The first detach may synchronously
	// push strays over the dying link into the second endpoint; the second
	// detach cleans them, and its own strays are dropped by the first
	// endpoint's non-neighbor guards.
	ba.DetachNeighbor(b)
	bb.DetachNeighbor(a)
	net.reattachComponents()
	return true
}

// reattachComponents restores overlay connectivity after a removal split the
// tree: while more than one connected component remains, the cheapest
// cross-component link (by oracle latency, ties broken on ascending endpoint
// IDs) between the component holding the smallest node and the rest is
// added, and the new link's endpoints resync advert state in both directions
// — the same join protocol AddBroker uses, so subscriptions re-propagate
// into the re-attached subtree exactly as they would toward a fresh advert.
func (net *Network) reattachComponents() {
	for {
		net.mu.Lock()
		nodes := make([]topology.NodeID, 0, len(net.brokers))
		for id := range net.brokers {
			nodes = append(nodes, id)
		}
		if len(nodes) < 2 {
			net.mu.Unlock()
			return
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		adj := make(map[topology.NodeID][]topology.NodeID, len(nodes))
		for link := range net.links {
			// Adjacency only feeds the reachability flood below; the
			// connected SET and the sorted best-edge scan that consume it
			// are order-independent.
			adj[link[0]] = append(adj[link[0]], link[1]) //lint:maporder consumed as a set; see above
			adj[link[1]] = append(adj[link[1]], link[0])
		}
		connected := map[topology.NodeID]bool{nodes[0]: true}
		frontier := []topology.NodeID{nodes[0]}
		for len(frontier) > 0 {
			x := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for _, y := range adj[x] {
				if !connected[y] {
					connected[y] = true
					frontier = append(frontier, y)
				}
			}
		}
		if len(connected) == len(nodes) {
			net.mu.Unlock()
			return
		}
		var bestX, bestY topology.NodeID = -1, -1
		best := math.Inf(1)
		for _, x := range nodes {
			if !connected[x] {
				continue
			}
			for _, y := range nodes {
				if connected[y] {
					continue
				}
				d := net.oracle.Latency(x, y)
				if d < best || (d == best && (x < bestX || (x == bestX && y < bestY))) {
					best, bestX, bestY = d, x, y
				}
			}
		}
		net.addLink(bestX, bestY, best)
		bx, by := net.brokers[bestX], net.brokers[bestY]
		net.mu.Unlock()
		// Both directions resync: each side announces the adverts of its own
		// component over the new link (syncAdvertsTo skips what it learned
		// FROM the link), and the arriving floods trigger posting-list
		// replay at every broker that holds matching subscriptions.
		bx.syncAdvertsTo(bestY)
		by.syncAdvertsTo(bestX)
	}
}

// Links returns the current overlay links in sorted order.
func (net *Network) Links() [][2]topology.NodeID {
	net.mu.Lock()
	defer net.mu.Unlock()
	return sortedLinks(net.links)
}

// Quiesce drops every reorder tombstone (unadvert and retraction) in the
// overlay. Tombstones exist to absorb duplicated or reordered stragglers on
// a link; on a link that can duplicate they cannot be consumed by the
// messages they suppress (another stale copy may follow), so they drain only
// here. Calling Quiesce is sound exactly when no protocol message is in
// flight — after the fault fabric has flushed and paused — which is the
// failure-detector/GC epoch boundary a production deployment would provide.
func (net *Network) Quiesce() {
	for _, n := range net.Nodes() {
		b, _ := net.Broker(n)
		b.clearTombstones()
	}
}

// RemoveStream withdraws a stream advertised at the given source broker:
// the advert withdrawal floods along the advert paths and every broker
// prunes the advert entry plus the routing state it justified (see
// Broker.Unadvertise). Removing a stream the broker never advertised — or
// naming a node with no broker — is a no-op; the return value reports
// whether a broker was found.
func (net *Network) RemoveStream(source topology.NodeID, streamName string) bool {
	b, ok := net.Broker(source)
	if !ok {
		return false
	}
	b.Unadvertise(streamName)
	return true
}

// ResidualState describes every piece of routing or advert state any broker
// still holds — empty exactly when the overlay has drained to nothing
// (every subscription withdrawn, every advertisement withdrawn, no pending
// tombstones). The churn-soak tests assert on it.
func (net *Network) ResidualState() []string {
	var out []string
	for _, n := range net.Nodes() {
		b, _ := net.Broker(n)
		b.mu.Lock()
		report := func(d *dirIndex, what string) {
			if len(d.subs) > 0 {
				out = append(out, fmt.Sprintf("broker %d: %d %s records", n, len(d.subs), what))
			}
			if len(d.byStream) > 0 {
				out = append(out, fmt.Sprintf("broker %d: %d %s posting lists", n, len(d.byStream), what))
			}
			if len(d.union) > 0 {
				out = append(out, fmt.Sprintf("broker %d: %d %s projection unions", n, len(d.union), what))
			}
			if len(d.aidx) > 0 {
				out = append(out, fmt.Sprintf("broker %d: %d %s prune trees", n, len(d.aidx), what))
			}
			if len(d.byID) > 0 {
				out = append(out, fmt.Sprintf("broker %d: %d %s ID entries", n, len(d.byID), what))
			}
			if len(d.retracted) > 0 {
				out = append(out, fmt.Sprintf("broker %d: %d %s retraction tombstones", n, len(d.retracted), what))
			}
		}
		report(b.idx.locals, "local")
		for _, d := range sortedDirs(b.idx.dirs) {
			report(b.idx.dirs[d], fmt.Sprintf("dir-%d", d))
		}
		if len(b.ownAdverts) > 0 {
			out = append(out, fmt.Sprintf("broker %d: %d own adverts", n, len(b.ownAdverts)))
		}
		for d, set := range b.adverts {
			if len(set) > 0 {
				out = append(out, fmt.Sprintf("broker %d: %d advert streams from %d", n, len(set), d))
			}
		}
		for d, tombs := range b.unadvTomb {
			if len(tombs) > 0 {
				out = append(out, fmt.Sprintf("broker %d: %d unadvert tombstones from %d", n, len(tombs), d))
			}
		}
		b.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// nullPeer is the Peer of a node with no broker: every message into it is
// dropped. RemoveBroker deletes the broker from the overlay before its
// neighbors detach, so transient re-propagations decided mid-teardown land
// here instead of dereferencing a nil broker.
type nullPeer struct{}

func (nullPeer) AdvertFrom(topology.NodeID, string, topology.NodeID, uint64)   {}
func (nullPeer) UnadvertFrom(topology.NodeID, string, topology.NodeID, uint64) {}
func (nullPeer) PropagateFrom(*Subscription, topology.NodeID)                  {}
func (nullPeer) RetractFrom(topology.NodeID, string, uint64)                   {}
func (nullPeer) RouteFrom(stream.Tuple, topology.NodeID)                       {}

// Peer implements Fabric with direct in-process calls. Locked like Broker
// (AddBroker and RemoveBroker mutate the map); the cost is in line with the
// per-send traffic-counter locking the fabric already pays. Unknown or
// removed nodes resolve to a message-dropping null peer, and an installed
// PeerWrapper (chaos) intercepts every endpoint, including null ones.
func (net *Network) Peer(n topology.NodeID) Peer {
	net.mu.Lock()
	b, ok := net.brokers[n]
	w := net.wrap
	net.mu.Unlock()
	var p Peer
	if ok {
		p = b
	} else {
		p = nullPeer{}
	}
	if w != nil {
		p = w.WrapPeer(n, p)
	}
	return p
}

// SetPeerWrapper installs (or, with nil, removes) the Peer interception
// layer. Meant to be set before fault injection starts; the soak harnesses
// install the chaos fabric right after the overlay is built.
func (net *Network) SetPeerWrapper(w PeerWrapper) {
	net.mu.Lock()
	net.wrap = w
	net.mu.Unlock()
}

func orderPair(a, b topology.NodeID) [2]topology.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]topology.NodeID{a, b}
}

// CountData implements Fabric.
func (net *Network) CountData(a, b topology.NodeID, size int) {
	net.mu.Lock()
	net.data[orderPair(a, b)] += float64(size)
	net.mu.Unlock()
}

// CountControl implements Fabric.
func (net *Network) CountControl(a, b topology.NodeID, size int) {
	net.mu.Lock()
	net.control[orderPair(a, b)] += float64(size)
	net.mu.Unlock()
}

// ResetTraffic clears the data and control counters (e.g. after a warm-up
// phase).
func (net *Network) ResetTraffic() {
	net.mu.Lock()
	defer net.mu.Unlock()
	for k := range net.data {
		delete(net.data, k)
	}
	for k := range net.control {
		delete(net.control, k)
	}
}

// TrafficReport summarizes overlay traffic.
type TrafficReport struct {
	// DataBytes and ControlBytes total the per-link volumes.
	DataBytes    float64
	ControlBytes float64
	// WeightedCost is Σ bytes·latency over overlay links — the paper's
	// communication-cost metric measured on the substrate itself.
	WeightedCost float64
	// Links is the number of overlay links that carried any data.
	Links int
}

// Traffic returns the current report. Per-link volumes are summed in sorted
// link order: float addition is not associative, so summing in Go's random
// map-iteration order would make the report differ across identical runs.
func (net *Network) Traffic() TrafficReport {
	net.mu.Lock()
	defer net.mu.Unlock()
	var rep TrafficReport
	for _, link := range sortedLinks(net.data) {
		bytes := net.data[link]
		rep.DataBytes += bytes
		rep.WeightedCost += bytes * net.links[link]
		if bytes > 0 {
			rep.Links++
		}
	}
	for _, link := range sortedLinks(net.control) {
		rep.ControlBytes += net.control[link]
	}
	return rep
}

func sortedLinks(m map[[2]topology.NodeID]float64) [][2]topology.NodeID {
	out := make([][2]topology.NodeID, 0, len(m))
	for link := range m {
		out = append(out, link)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// SetLinearMatching flips every broker between the inverted matching index
// and the retained linear reference matcher (see Broker.SetLinearMatching).
// Equivalence tests and baseline benchmarks use it; production deployments
// stay indexed.
func (net *Network) SetLinearMatching(on bool) {
	net.mu.Lock()
	net.linear = on
	brokers := make([]*Broker, 0, len(net.brokers))
	for _, b := range net.brokers {
		//lint:maporder each broker gets one independent flag write; visit order is unobservable
		brokers = append(brokers, b)
	}
	net.mu.Unlock()
	for _, b := range brokers {
		b.SetLinearMatching(on)
	}
}

// SetAttrPruning flips attribute-level candidate pruning on every broker
// (see Broker.SetAttrPruning). On by default; the unpruned indexed matcher
// is the baseline the selectivity benchmarks compare against.
func (net *Network) SetAttrPruning(on bool) {
	net.mu.Lock()
	net.noPrune = !on
	brokers := make([]*Broker, 0, len(net.brokers))
	for _, b := range net.brokers {
		//lint:maporder each broker gets one independent flag write; visit order is unobservable
		brokers = append(brokers, b)
	}
	net.mu.Unlock()
	for _, b := range brokers {
		b.SetAttrPruning(on)
	}
}

// SetCoverDelta flips covering-delta re-propagation on every broker (see
// Broker.SetCoverDelta). Off by default: the delta mode delivers
// identically but reshapes per-link control traffic, so the
// rebuilt-from-scratch equivalence oracles keep it off.
func (net *Network) SetCoverDelta(on bool) {
	net.mu.Lock()
	net.coverDelta = on
	brokers := make([]*Broker, 0, len(net.brokers))
	for _, b := range net.brokers {
		//lint:maporder each broker gets one independent flag write; visit order is unobservable
		brokers = append(brokers, b)
	}
	net.mu.Unlock()
	for _, b := range brokers {
		b.SetCoverDelta(on)
	}
}

// SetSnapshotRouting flips the lock-free snapshot route path on every
// broker (see Broker.SetSnapshotRouting). On by default; off serializes
// every route under its broker's mutex against the live index — the
// sequential debugging/reference mode.
func (net *Network) SetSnapshotRouting(on bool) {
	net.mu.Lock()
	net.snapOff = !on
	brokers := make([]*Broker, 0, len(net.brokers))
	for _, b := range net.brokers {
		//lint:maporder each broker gets one independent flag write; visit order is unobservable
		brokers = append(brokers, b)
	}
	net.mu.Unlock()
	for _, b := range brokers {
		b.SetSnapshotRouting(on)
	}
}

// Nodes returns the broker nodes sorted by ID.
func (net *Network) Nodes() []topology.NodeID {
	net.mu.Lock()
	defer net.mu.Unlock()
	out := make([]topology.NodeID, 0, len(net.brokers))
	for n := range net.brokers {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
