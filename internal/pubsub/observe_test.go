package pubsub

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/logging"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// The observability tests run on the shared lineNet overlay (0-1-2-3,
// pubsub_test.go) with the publisher at 0 and the subscriber at 2: node 3
// stays idle, so flood reach and forwarding stop are both visible.

// TestDrainLeavesNoResidualState: after every broker with state drains, no
// broker in the overlay holds adverts or routing records for anyone — the
// property the node-smoke lane asserts across real processes.
func TestDrainLeavesNoResidualState(t *testing.T) {
	net := lineNet(t)
	b0, _ := net.Broker(0)
	b1, _ := net.Broker(1)
	b2, _ := net.Broker(2)

	b0.Advertise("R")
	hits := 0
	if err := b2.Subscribe(&Subscription{ID: "s", Streams: []string{"R"}},
		func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}
	b0.Publish(tuple("R", map[string]float64{"a": 1}))
	if hits != 1 {
		t.Fatalf("deliveries = %d, want 1 (overlay must route before drain)", hits)
	}

	// Publisher drains: its advert withdrawal must flood and take the
	// subscription records it justified with it.
	b0.Drain()
	if own, _ := b0.AdvertStateSize(); own != 0 {
		t.Fatalf("drained publisher still owns %d adverts", own)
	}
	for _, b := range []*Broker{b0, b1, b2} {
		if _, learned := b.AdvertStateSize(); learned != 0 {
			t.Fatalf("broker %d still holds %d learned adverts after publisher drain", b.Node, learned)
		}
		if remote, _ := b.RoutingStateSize(); remote != 0 {
			t.Fatalf("broker %d still holds %d remote records after publisher drain", b.Node, remote)
		}
	}
	// The subscriber's own client subscription survives its publisher.
	if _, local := b2.RoutingStateSize(); local != 1 {
		t.Fatalf("subscriber lost its local subscription: local = %d", local)
	}

	// Subscriber drains too: fully empty overlay.
	b2.Drain()
	assertDrained(t, net)

	// Drain is idempotent.
	b0.Drain()
	b2.Drain()
	assertDrained(t, net)
}

func TestDirStatesAndAdvertisedStreams(t *testing.T) {
	net := lineNet(t)
	b0, _ := net.Broker(0)
	b1, _ := net.Broker(1)
	b2, _ := net.Broker(2)

	b0.Advertise("R")
	b0.Advertise("S")
	if err := b2.Subscribe(&Subscription{ID: "s", Streams: []string{"R"}}, func(*Subscription, stream.Tuple) {}); err != nil {
		t.Fatal(err)
	}

	if got := b0.AdvertisedStreams(); len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Fatalf("AdvertisedStreams = %q, want [R S]", got)
	}
	if got := b1.AdvertisedStreams(); len(got) != 0 {
		t.Fatalf("middle broker advertises %q, want none", got)
	}

	// The middle broker sees the adverts behind link 0 and the
	// subscription behind link 2.
	st := b1.DirStates()
	if len(st) != 2 || st[0].Neighbor != 0 || st[1].Neighbor != 2 {
		t.Fatalf("DirStates = %+v, want rows for neighbors 0 and 2", st)
	}
	if st[0].Adverts != 2 || st[0].Subs != 0 {
		t.Fatalf("link to 0 = %+v, want 2 adverts, 0 subs", st[0])
	}
	if st[1].Adverts != 0 || st[1].Subs != 1 {
		t.Fatalf("link to 2 = %+v, want 0 adverts, 1 sub", st[1])
	}

	b0.Drain()
	b2.Drain()
	for _, row := range b1.DirStates() {
		if row.Subs != 0 || row.Adverts != 0 {
			t.Fatalf("residual state after drain: %+v", row)
		}
	}
	if got := b0.AdvertisedStreams(); len(got) != 0 {
		t.Fatalf("AdvertisedStreams after drain = %q, want none", got)
	}
}

// TestRouteCounters: routing moves the process-wide counters the /metrics
// endpoint exposes. Counters never reset, so assertions are on deltas.
func TestRouteCounters(t *testing.T) {
	before := metrics.Counters()
	net := lineNet(t)
	b0, _ := net.Broker(0)
	b2, _ := net.Broker(2)

	b0.Advertise("R")
	if err := b2.Subscribe(&Subscription{ID: "s", Streams: []string{"R"}}, func(*Subscription, stream.Tuple) {}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b0.Publish(tuple("R", map[string]float64{"a": float64(i)}))
	}
	b2.Unsubscribe("s")
	b0.Unadvertise("R")

	after := metrics.Counters()
	delta := func(name string) int64 { return after[name] - before[name] }
	// Each publish routes at 0, 1 and 2: 15 route calls, 5 local
	// deliveries at node 2, 10 link crossings.
	if got := delta("pubsub.routed_tuples"); got != 15 {
		t.Errorf("routed_tuples delta = %d, want 15", got)
	}
	if got := delta("pubsub.local_deliveries"); got != 5 {
		t.Errorf("local_deliveries delta = %d, want 5", got)
	}
	if got := delta("pubsub.forwarded_tuples"); got != 10 {
		t.Errorf("forwarded_tuples delta = %d, want 10", got)
	}
	for name, want := range map[string]int64{
		"pubsub.advertises":   1,
		"pubsub.unadvertises": 1,
		"pubsub.subscribes":   1,
		"pubsub.unsubscribes": 1,
	} {
		if got := delta(name); got != want {
			t.Errorf("%s delta = %d, want %d", name, got, want)
		}
	}
	// The subscription crossed links 2→1 and 1→0, and its retraction
	// chased both records.
	if got := delta("pubsub.subscriptions_sent"); got != 2 {
		t.Errorf("subscriptions_sent delta = %d, want 2", got)
	}
	if got := delta("pubsub.retractions_sent"); got < 1 {
		t.Errorf("retractions_sent delta = %d, want >= 1", got)
	}
}

func TestSetLoggerCapturesLifecycle(t *testing.T) {
	net := lineNet(t)
	b0, _ := net.Broker(0)
	var buf bytes.Buffer
	b0.SetLogger(logging.New(&buf, logging.LevelDebug))
	b0.Advertise("R")
	b0.Drain()
	out := buf.String()
	for _, want := range []string{"msg=\"drain begin\"", "own_adverts=1", "msg=\"drain done\""} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
	// A nil logger restores Nop without panicking.
	b0.SetLogger(nil)
	b0.Drain()
}
