package pubsub

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/query"
	"repro/internal/stream"
)

// Subscription is the content-based interest profile of §2.1: the streams
// wanted, the attributes to retain (nil = all), and conjunctive filters
// over attribute values.
type Subscription struct {
	// ID is the subscription's identity ACROSS THE OVERLAY: routing
	// records, covering suppression, epoch supersession and retraction
	// all key on it. Callers must keep IDs globally unique (the cosmos
	// middleware derives them from the owning node or query name); two
	// distinct subscriptions reusing an ID are treated as incarnations
	// of one subscription, and the newer epoch silently supersedes the
	// older everywhere.
	ID string
	// Seq is the epoch the subscription was issued in, stamped by the
	// origin broker on Subscribe and carried along propagation. Brokers
	// drop re-deliveries that are not newer than their recorded epoch
	// (duplicate-flood suppression) and ignore retractions older than
	// it, so a re-subscribe of a reused ID cleanly supersedes the
	// previous incarnation everywhere.
	Seq uint64
	// Streams lists the stream names of interest.
	Streams []string
	// Attrs is the projection list; nil keeps every attribute.
	Attrs []string
	// Filters are conjunctive selection predicates applied to message
	// attributes. Column references use only the Attr field (messages
	// are flat attribute/value sets, §1.2).
	Filters []query.Predicate
}

// Matches reports whether a tuple satisfies the subscription: its stream is
// listed and every filter passes.
func (s *Subscription) Matches(t stream.Tuple) bool {
	if !s.hasStream(t.Stream) {
		return false
	}
	for _, f := range s.Filters {
		if !evalFilter(f, t) {
			return false
		}
	}
	return true
}

func (s *Subscription) hasStream(name string) bool {
	for _, st := range s.Streams {
		if st == name {
			return true
		}
	}
	return false
}

// evalFilter evaluates a predicate against a flat tuple, resolving column
// operands by attribute name only.
func evalFilter(p query.Predicate, t stream.Tuple) bool {
	resolve := func(o query.Operand) (stream.Value, bool) {
		if o.Col != nil {
			return t.Get(o.Col.Attr)
		}
		if o.Lit != nil {
			return *o.Lit, true
		}
		return stream.Value{}, false
	}
	lv, ok := resolve(p.Left)
	if !ok {
		return false
	}
	rv, ok := resolve(p.Right)
	if !ok {
		return false
	}
	return p.Op.Eval(lv.Compare(rv))
}

// Covers reports whether s admits every message that o admits — the
// covering relation Siena uses to suppress redundant subscription
// propagation. It is sound but not complete: a false result may still be a
// covering pair (e.g. filters over disjoint attribute sets), which costs
// extra propagation but never correctness.
func (s *Subscription) Covers(o *Subscription) bool {
	return s.CoversPrepared(o, query.SelectionIntervalsByAttr(o.Filters))
}

// CoversPrepared is Covers with o's filter conjunction already folded into
// per-attribute intervals (query.SelectionIntervalsByAttr(o.Filters)).
// Cover scans test many candidate covers against one subscription; hoisting
// the fold makes the scan cost one interval-implication walk per candidate
// instead of one compilation each.
func (s *Subscription) CoversPrepared(o *Subscription, ivs map[string]query.Interval) bool {
	for _, st := range o.Streams {
		if !s.hasStream(st) {
			return false
		}
	}
	// Projection: s must keep at least o's attributes.
	if s.Attrs != nil {
		if o.Attrs == nil {
			return false
		}
		keep := make(map[string]bool, len(s.Attrs))
		for _, a := range s.Attrs {
			keep[a] = true
		}
		for _, a := range o.Attrs {
			if !keep[a] {
				return false
			}
		}
	}
	// Filters: o's conjunction must imply every filter of s.
	for _, f := range s.Filters {
		f = f.Normalize()
		if !f.IsSelection() || f.Right.Lit == nil {
			return false
		}
		iv, ok := ivs[f.Left.Col.Attr]
		if !ok {
			iv = query.FullInterval()
		}
		if !iv.Implies(f.Op, *f.Right.Lit) {
			return false
		}
	}
	return true
}

// MergeSubscriptions builds the union profile of two subscriptions — the
// p3 = p1 ∪ p2 step of Fig 3: stream and attribute lists union; per-column
// filters weaken to the union interval; filters on columns constrained by
// only one input are dropped (the merged profile must admit both).
func MergeSubscriptions(id string, a, b *Subscription) *Subscription {
	out := &Subscription{ID: id}
	seen := make(map[string]bool)
	for _, st := range append(append([]string(nil), a.Streams...), b.Streams...) {
		if !seen[st] {
			seen[st] = true
			out.Streams = append(out.Streams, st)
		}
	}
	if a.Attrs == nil || b.Attrs == nil {
		out.Attrs = nil
	} else {
		seenA := make(map[string]bool)
		for _, at := range append(append([]string(nil), a.Attrs...), b.Attrs...) {
			if !seenA[at] {
				seenA[at] = true
				out.Attrs = append(out.Attrs, at)
			}
		}
		sort.Strings(out.Attrs)
	}
	ia, ib := query.SelectionIntervalsByAttr(a.Filters), query.SelectionIntervalsByAttr(b.Filters)
	cols := make([]string, 0, len(ia))
	for c := range ia {
		if _, ok := ib[c]; ok {
			cols = append(cols, c)
		}
	}
	sort.Strings(cols)
	for _, c := range cols {
		u := ia[c].Union(ib[c])
		out.Filters = append(out.Filters, u.Predicates(query.ColRef{Attr: c})...)
	}
	return out
}

// String renders the subscription for logs and tests.
func (s *Subscription) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sub(%s: S=%v", s.ID, s.Streams)
	if s.Attrs != nil {
		fmt.Fprintf(&b, " P=%v", s.Attrs)
	}
	if len(s.Filters) > 0 {
		parts := make([]string, len(s.Filters))
		for i, f := range s.Filters {
			parts[i] = f.String()
		}
		fmt.Fprintf(&b, " F=%s", strings.Join(parts, " AND "))
	}
	b.WriteByte(')')
	return b.String()
}

// Clone returns an independent copy.
func (s *Subscription) Clone() *Subscription {
	c := &Subscription{ID: s.ID, Seq: s.Seq}
	c.Streams = append([]string(nil), s.Streams...)
	if s.Attrs != nil {
		c.Attrs = append([]string(nil), s.Attrs...)
	}
	c.Filters = append([]query.Predicate(nil), s.Filters...)
	return c
}
