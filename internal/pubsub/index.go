package pubsub

import (
	"math"

	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
)

// This file implements the broker-side routing state and matching index:
// the same inverted-index discipline the optimizer uses for query-graph
// edge construction (internal/querygraph), applied to event routing. The
// subscriptions a broker knows — the interests recorded per neighbor
// direction and the local client subscriptions — live in one dirIndex per
// direction holding
//
//   - stream → posting list (registration order), so a tuple is matched only
//     against subscriptions that list its stream instead of every
//     subscription the broker knows;
//   - per subscription, the conjunctive selection filters compiled into one
//     query.Interval per attribute, so matching evaluates one membership
//     test per constrained attribute instead of one predicate walk each;
//   - per (direction, stream), the incrementally maintained union of the
//     subscriptions' attribute projections, so the common all-match case
//     forwards with the precomputed union instead of rebuilding it per
//     tuple;
//   - per subscription, its lifecycle state: the epoch it was issued in
//     (seq) and the neighbors it was actually propagated to (sentTo), which
//     re-propagation replays and retraction cleanup walk.
//
// The index is maintained under Broker.mu at subscribe/propagate/retract
// time. The retained linear matcher iterates the same records (subs, in
// registration order) but matches and checks covering with the uncompiled
// per-subscription walks; the two are equivalent bit-for-bit: identical
// forwarding decisions, local delivery sets and orders, projection
// attribute sets, and therefore identical traffic counters (enforced by the
// package equivalence tests, the same discipline as
// querygraph.ComputeEdgesNaive).

// matchIndex is one broker's routing state: one dirIndex per neighbor
// direction plus one for local client subscriptions.
type matchIndex struct {
	locals *dirIndex
	dirs   map[topology.NodeID]*dirIndex
}

func newMatchIndex() *matchIndex {
	return &matchIndex{locals: newDirIndex(), dirs: make(map[topology.NodeID]*dirIndex)}
}

// dir returns the index of one neighbor direction, creating it on first use.
func (m *matchIndex) dir(n topology.NodeID) *dirIndex {
	d, ok := m.dirs[n]
	if !ok {
		d = newDirIndex()
		m.dirs[n] = d
	}
	return d
}

// dirIndex indexes the subscriptions of one direction (a neighbor, or the
// broker's locals).
type dirIndex struct {
	subs []*compiledSub
	// byStream holds the posting lists, each in registration order. A
	// subscription listing a stream twice appears once (matching is
	// per-subscription, not per-listing).
	byStream map[string][]*compiledSub
	// union holds the per-stream projection union, maintained
	// incrementally on add and recomputed for the affected streams on
	// remove. Published maps are immutable (copy-on-write): route hands
	// them to in-flight hops outside the broker lock.
	union map[string]*attrUnion
	// retracted holds tombstones for retractions that arrived before
	// the subscription they withdraw (ID → retracted epoch). Sends
	// happen outside the broker lock, so a retraction can overtake the
	// propagation it chases (concurrent brokers, or the asynchronous
	// TCP transport); without the tombstone the late-arriving record
	// would be installed with no retraction ever coming. A tombstone is
	// consumed by the propagation it suppresses, or superseded by a
	// newer epoch of the ID.
	retracted map[string]uint64
}

func newDirIndex() *dirIndex {
	return &dirIndex{
		byStream:  make(map[string][]*compiledSub),
		union:     make(map[string]*attrUnion),
		retracted: make(map[string]uint64),
	}
}

// add appends a compiled subscription, updating posting lists and projection
// unions.
func (d *dirIndex) add(c *compiledSub) {
	d.subs = append(d.subs, c)
	seen := make(map[string]bool, len(c.sub.Streams))
	for _, s := range c.sub.Streams {
		if seen[s] {
			continue
		}
		seen[s] = true
		d.byStream[s] = append(d.byStream[s], c)
		d.union[s] = d.union[s].extend(c.keep)
	}
}

// find returns the most recently added record with the given subscription
// ID, or nil. Directions hold at most one record per ID (propagate replaces
// on newer epochs); locals may briefly hold more when a client reuses an ID
// without unsubscribing, and then the newest registration owns it.
func (d *dirIndex) find(id string) *compiledSub {
	for i := len(d.subs) - 1; i >= 0; i-- {
		if d.subs[i].sub.ID == id {
			return d.subs[i]
		}
	}
	return nil
}

// remove deletes one record, keeping posting lists in registration order
// and recomputing the projection unions of the affected streams. Posting
// lists and unions of streams no longer subscribed are deleted outright, so
// an idle broker's routing tables drain to empty.
func (d *dirIndex) remove(c *compiledSub) {
	for i, x := range d.subs {
		if x == c {
			d.subs = append(d.subs[:i], d.subs[i+1:]...)
			break
		}
	}
	seen := make(map[string]bool, len(c.sub.Streams))
	for _, s := range c.sub.Streams {
		if seen[s] {
			continue
		}
		seen[s] = true
		list := d.byStream[s]
		for i, x := range list {
			if x == c {
				list = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(list) == 0 {
			delete(d.byStream, s)
			delete(d.union, s)
			continue
		}
		d.byStream[s] = list
		var u *attrUnion
		for _, x := range list {
			u = u.extend(x.keep)
		}
		d.union[s] = u
	}
}

// removeByID removes every record with the given subscription ID and
// returns them in registration order (empty when the ID is unknown — the
// caller treats that as a no-op).
func (d *dirIndex) removeByID(id string) []*compiledSub {
	var removed []*compiledSub
	for _, c := range d.subs {
		if c.sub.ID == id {
			removed = append(removed, c)
		}
	}
	for _, c := range removed {
		d.remove(c)
	}
	return removed
}

// coverCandidates returns the recorded subscriptions that could cover sub:
// a covering subscription must list every stream of sub, so the posting list
// of sub's first stream is an exact candidate superset.
func (d *dirIndex) coverCandidates(sub *Subscription) []*compiledSub {
	return d.byStream[sub.Streams[0]]
}

// attrUnion is the projection union of the subscriptions posted on one
// (direction, stream) pair: all is set when any of them keeps every
// attribute (nil Attrs); keep unions the explicit projection lists.
type attrUnion struct {
	all  bool
	keep map[string]bool
}

// extend returns the union grown by one subscription's projection set. The
// receiver (and its keep map) is never mutated — hops captured by an
// in-flight route may still reference it — so growth builds a fresh map.
func (u *attrUnion) extend(keep map[string]bool) *attrUnion {
	next := &attrUnion{}
	var old map[string]bool
	if u != nil {
		next.all = u.all
		old = u.keep
	}
	if keep == nil {
		next.all = true
		next.keep = old
		return next
	}
	merged := make(map[string]bool, len(old)+len(keep))
	for a := range old {
		merged[a] = true
	}
	for a := range keep {
		merged[a] = true
	}
	next.keep = merged
	return next
}

// compiledSub is one recorded subscription with its matching and lifecycle
// state: the projection set as a lookup map, the filters partitioned into
// compiled per-attribute interval groups (numeric selections) and a raw
// remainder evaluated predicate-by-predicate, the issuing epoch, and the
// propagation record.
type compiledSub struct {
	sub     *Subscription
	handler Handler // locals only
	// seq is the epoch the subscription was issued in (Subscription.Seq
	// at record time): a later incarnation of a reused ID carries a
	// higher seq, superseding records and outrunning stale retractions.
	seq uint64
	// sentTo records the neighbors this subscription was actually
	// propagated to. Covering suppression of another subscription toward
	// neighbor n is sound only when the covering one was sent to n, and
	// retraction follows exactly these edges. Mutated under Broker.mu.
	sentTo map[topology.NodeID]bool
	// keep mirrors sub.Attrs as a set: nil keeps every attribute; an empty
	// non-nil map mirrors an explicitly empty projection list.
	keep   map[string]bool
	groups []attrGroup
	raw    []query.Predicate
}

// listsAny reports whether the subscription lists any stream of the set —
// the candidate filter of retraction un-suppression (a covering
// subscription lists a superset of the covered one's streams).
func (c *compiledSub) listsAny(streams map[string]bool) bool {
	for _, s := range c.sub.Streams {
		if streams[s] {
			return true
		}
	}
	return false
}

// attrGroup is the compiled conjunction of one attribute's numeric selection
// filters: the folded interval for the fast path, plus the original
// predicates for the fallback on string-typed or NaN attribute values (whose
// Compare semantics an interval cannot express).
type attrGroup struct {
	attr  string
	iv    query.Interval
	preds []query.Predicate
}

// compileSub precomputes the matching state of one subscription. handler is
// non-nil only for local client subscriptions.
func compileSub(s *Subscription, h Handler) *compiledSub {
	c := &compiledSub{sub: s, handler: h, keep: keepSet(s.Attrs)}
	groups := make(map[string]int)
	for _, f := range s.Filters {
		n, ok := query.NumericSelection(f)
		if !ok {
			c.raw = append(c.raw, f)
			continue
		}
		attr := n.Left.Col.Attr
		gi, ok := groups[attr]
		if !ok {
			gi = len(c.groups)
			groups[attr] = gi
			c.groups = append(c.groups, attrGroup{attr: attr, iv: query.FullInterval()})
		}
		g := &c.groups[gi]
		g.iv = g.iv.Constrain(n.Op, *n.Right.Lit)
		g.preds = append(g.preds, f)
	}
	return c
}

// matches reproduces sub.Matches(t) for posting-list candidates (whose
// stream membership is already established): each compiled group evaluates
// one interval-membership test on the attribute value; string-typed or NaN
// values fall back to the group's original predicates; uncompiled filters
// evaluate raw. Conjunction order does not matter (predicate evaluation is
// pure), so the outcome is exactly the linear matcher's.
func (c *compiledSub) matches(t stream.Tuple) bool {
	for i := range c.groups {
		g := &c.groups[i]
		v, ok := t.Get(g.attr)
		if !ok {
			return false
		}
		if v.Type == stream.String || math.IsNaN(v.F) {
			for _, p := range g.preds {
				if !evalFilter(p, t) {
					return false
				}
			}
			continue
		}
		if !g.iv.ContainsFloat(v.F) {
			return false
		}
	}
	for _, p := range c.raw {
		if !evalFilter(p, t) {
			return false
		}
	}
	return true
}
