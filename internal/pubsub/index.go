package pubsub

import (
	"math"
	"sort"

	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
)

// This file implements the broker-side routing state and matching index:
// the same inverted-index discipline the optimizer uses for query-graph
// edge construction (internal/querygraph), applied to event routing. The
// subscriptions a broker knows — the interests recorded per neighbor
// direction and the local client subscriptions — live in one dirIndex per
// direction holding
//
//   - stream → posting list (registration order), so a tuple is matched only
//     against subscriptions that list its stream instead of every
//     subscription the broker knows;
//   - per subscription, the conjunctive selection filters compiled into one
//     query.Interval per attribute, so matching evaluates one membership
//     test per constrained attribute instead of one predicate walk each;
//   - per (direction, stream), the incrementally maintained union of the
//     subscriptions' attribute projections, so the common all-match case
//     forwards with the precomputed union instead of rebuilding it per
//     tuple;
//   - per subscription, its lifecycle state: the epoch it was issued in
//     (seq) and the neighbors it was actually propagated to (sentTo), which
//     re-propagation replays and retraction cleanup walk.
//
// The index is maintained under Broker.mu at subscribe/propagate/retract
// time. The retained linear matcher iterates the same records (subs, in
// registration order) but matches and checks covering with the uncompiled
// per-subscription walks; the two are equivalent bit-for-bit: identical
// forwarding decisions, local delivery sets and orders, projection
// attribute sets, and therefore identical traffic counters (enforced by the
// package equivalence tests, the same discipline as
// querygraph.ComputeEdgesNaive).
//
// The index also feeds the lock-free snapshot read path (snapshot.go):
// add/remove mark the touched streams in dirtySnap so publishLocked can
// re-freeze only those, and remove REPLACES a posting list with a fresh
// copy instead of splicing it in place — published snapshots alias the
// byStream slices, and an in-place splice would mutate an epoch a
// lock-free route is reading. add may append in place: it writes only at
// indexes beyond every published snapshot's length. See CONCURRENCY.md.

// matchIndex is one broker's routing state: one dirIndex per neighbor
// direction plus one for local client subscriptions.
type matchIndex struct {
	locals *dirIndex
	dirs   map[topology.NodeID]*dirIndex
	// dirOrder caches the direction keys ascending, so cover scans, replay
	// and un-suppression sweeps iterate deterministically without
	// re-sorting the key set per call.
	dirOrder []topology.NodeID
}

func newMatchIndex() *matchIndex {
	return &matchIndex{locals: newDirIndex(), dirs: make(map[topology.NodeID]*dirIndex)}
}

// dir returns the index of one neighbor direction, creating it on first use.
func (m *matchIndex) dir(n topology.NodeID) *dirIndex {
	d, ok := m.dirs[n]
	if !ok {
		d = newDirIndex()
		m.dirs[n] = d
		at := sort.Search(len(m.dirOrder), func(i int) bool { return m.dirOrder[i] >= n })
		m.dirOrder = append(m.dirOrder, 0)
		copy(m.dirOrder[at+1:], m.dirOrder[at:])
		m.dirOrder[at] = n
	}
	return d
}

// dropDir deletes a direction's index wholesale. Only DetachNeighbor calls
// it, after retracting every record the direction held — what remains is at
// most the empty container maps and reorder tombstones, which die with the
// link (no message can ever arrive from the direction again).
func (m *matchIndex) dropDir(n topology.NodeID) {
	if _, ok := m.dirs[n]; !ok {
		return
	}
	delete(m.dirs, n)
	for i, x := range m.dirOrder {
		if x == n {
			m.dirOrder = append(m.dirOrder[:i], m.dirOrder[i+1:]...)
			break
		}
	}
}

// dirIndex indexes the subscriptions of one direction (a neighbor, or the
// broker's locals).
type dirIndex struct {
	subs []*compiledSub
	// byStream holds the posting lists, each in registration order. A
	// subscription listing a stream twice appears once (matching is
	// per-subscription, not per-listing).
	byStream map[string][]*compiledSub
	// union holds the per-stream projection union, maintained
	// incrementally on add and recomputed for the affected streams on
	// remove. Published maps are immutable (copy-on-write): route hands
	// them to in-flight hops outside the broker lock.
	union map[string]*attrUnion
	// retracted holds tombstones for retractions that arrived before
	// the subscription they withdraw (ID → retracted epoch). Sends
	// happen outside the broker lock, so a retraction can overtake the
	// propagation it chases (concurrent brokers, or the asynchronous
	// TCP transport); without the tombstone the late-arriving record
	// would be installed with no retraction ever coming. A tombstone is
	// consumed by the propagation it suppresses, or superseded by a
	// newer epoch of the ID.
	retracted map[string]uint64
	// aidx caches the per-stream attribute-prune index (attrindex.go).
	// Invalidated on add/remove of a subscription listing the stream and
	// rebuilt lazily by the first route through it; a cached nil records
	// that the stream's population is not worth indexing.
	aidx map[string]*attrPruneIndex
	// byID indexes records by subscription ID in registration order, so
	// find/removeByID are O(records per ID) instead of a scan over the
	// whole direction — the dominant cost of a subscribe/unsubscribe
	// cycle against a large stable population.
	byID map[string][]*compiledSub
	// dirtySnap marks the streams whose posting list or union changed
	// since the last snapshot publish, so publishLocked re-freezes only
	// those (snapshot.go). Maintained by add/remove, drained by snapDir.
	dirtySnap map[string]bool
}

func newDirIndex() *dirIndex {
	return &dirIndex{
		byStream:  make(map[string][]*compiledSub),
		union:     make(map[string]*attrUnion),
		retracted: make(map[string]uint64),
		aidx:      make(map[string]*attrPruneIndex),
		byID:      make(map[string][]*compiledSub),
		dirtySnap: make(map[string]bool),
	}
}

// attrIndex returns the stream's attribute-prune index, building and
// caching it on first use after a subscription change. Caller holds the
// broker lock.
func (d *dirIndex) attrIndex(s string) *attrPruneIndex {
	if ai, ok := d.aidx[s]; ok {
		return ai
	}
	ai := buildAttrPruneIndex(d.byStream[s])
	d.aidx[s] = ai
	return ai
}

// add appends a compiled subscription, updating posting lists and projection
// unions.
func (d *dirIndex) add(c *compiledSub) {
	d.subs = append(d.subs, c)
	d.byID[c.sub.ID] = append(d.byID[c.sub.ID], c)
	seen := make(map[string]bool, len(c.sub.Streams))
	for _, s := range c.sub.Streams {
		if seen[s] {
			continue
		}
		seen[s] = true
		d.byStream[s] = append(d.byStream[s], c)
		d.union[s] = d.union[s].extend(c.keep)
		delete(d.aidx, s)
		d.dirtySnap[s] = true
	}
}

// find returns the most recently added record with the given subscription
// ID, or nil. Directions hold at most one record per ID (propagate replaces
// on newer epochs); locals may briefly hold more when a client reuses an ID
// without unsubscribing, and then the newest registration owns it.
func (d *dirIndex) find(id string) *compiledSub {
	recs := d.byID[id]
	if len(recs) == 0 {
		return nil
	}
	return recs[len(recs)-1]
}

// remove deletes one record, keeping posting lists in registration order
// and recomputing the projection unions of the affected streams. Posting
// lists and unions of streams no longer subscribed are deleted outright, so
// an idle broker's routing tables drain to empty. The surviving posting
// list is a FRESH slice, not an in-place splice: published snapshots alias
// the old one (snapshot.go's sharing discipline), so it must stay intact
// until its epoch is swapped out.
func (d *dirIndex) remove(c *compiledSub) {
	for i, x := range d.subs {
		if x == c {
			d.subs = append(d.subs[:i], d.subs[i+1:]...)
			break
		}
	}
	ids := d.byID[c.sub.ID]
	for i, x := range ids {
		if x == c {
			ids = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(ids) == 0 {
		delete(d.byID, c.sub.ID)
	} else {
		d.byID[c.sub.ID] = ids
	}
	seen := make(map[string]bool, len(c.sub.Streams))
	for _, s := range c.sub.Streams {
		if seen[s] {
			continue
		}
		seen[s] = true
		delete(d.aidx, s)
		d.dirtySnap[s] = true
		list := d.byStream[s]
		fresh := make([]*compiledSub, 0, len(list))
		for _, x := range list {
			if x != c {
				fresh = append(fresh, x)
			}
		}
		if len(fresh) == 0 {
			delete(d.byStream, s)
			delete(d.union, s)
			continue
		}
		d.byStream[s] = fresh
		d.union[s] = unionOf(fresh)
	}
}

// removeByID removes every record with the given subscription ID and
// returns them in registration order (empty when the ID is unknown — the
// caller treats that as a no-op).
func (d *dirIndex) removeByID(id string) []*compiledSub {
	removed := append([]*compiledSub(nil), d.byID[id]...)
	for _, c := range removed {
		d.remove(c)
	}
	return removed
}

// coverCandidates returns the recorded subscriptions that could cover sub:
// a covering subscription must list every stream of sub, so the posting list
// of sub's first stream is an exact candidate superset.
func (d *dirIndex) coverCandidates(sub *Subscription) []*compiledSub {
	return d.byStream[sub.Streams[0]]
}

// attrUnion is the projection union of the subscriptions posted on one
// (direction, stream) pair: all is set when any of them keeps every
// attribute (nil Attrs); keep unions the explicit projection lists.
type attrUnion struct {
	all  bool
	keep map[string]bool
}

// unionOf rebuilds a projection union from scratch — the recompute path of
// remove, folding in place instead of chaining per-candidate extends. The
// result is content-identical to the incremental chain: all is set when any
// candidate keeps every attribute, keep unions the explicit lists.
func unionOf(list []*compiledSub) *attrUnion {
	u := &attrUnion{}
	for _, c := range list {
		if c.keep == nil {
			u.all = true
			continue
		}
		if u.keep == nil {
			u.keep = make(map[string]bool, len(c.keep))
		}
		for a := range c.keep {
			u.keep[a] = true
		}
	}
	return u
}

// extend returns the union grown by one subscription's projection set. The
// receiver (and its keep map) is never mutated — hops captured by an
// in-flight route may still reference it — so growth builds a fresh map.
func (u *attrUnion) extend(keep map[string]bool) *attrUnion {
	next := &attrUnion{}
	var old map[string]bool
	if u != nil {
		next.all = u.all
		old = u.keep
	}
	if keep == nil {
		next.all = true
		next.keep = old
		return next
	}
	merged := make(map[string]bool, len(old)+len(keep))
	for a := range old {
		merged[a] = true
	}
	for a := range keep {
		merged[a] = true
	}
	next.keep = merged
	return next
}

// compiledSub is one recorded subscription with its matching and lifecycle
// state: the projection set as a lookup map, the filters partitioned into
// compiled per-attribute interval groups (numeric selections) and a raw
// remainder evaluated predicate-by-predicate, the issuing epoch, and the
// propagation record.
type compiledSub struct {
	sub     *Subscription
	handler Handler // locals only
	// seq is the epoch the subscription was issued in (Subscription.Seq
	// at record time): a later incarnation of a reused ID carries a
	// higher seq, superseding records and outrunning stale retractions.
	seq uint64
	// srcDir is the direction the record was received from (-1 for local
	// client subscriptions) and regSeq its broker-wide registration
	// number. Together they define the canonical sweep order (locals
	// first, then directions ascending, registration order within) that
	// un-suppression re-propagates in, whichever enumeration produced the
	// candidates.
	srcDir topology.NodeID
	regSeq uint64
	// sentTo records the neighbors this subscription was actually
	// propagated to. Covering suppression of another subscription toward
	// neighbor n is sound only when the covering one was sent to n, and
	// retraction follows exactly these edges. Mutated under Broker.mu.
	sentTo map[topology.NodeID]bool
	// coveredBy is the covered-by churn index, forward side: coveredBy[n]
	// is the record whose propagation toward n suppressed this one.
	// Invariant (maintained at propagate/replay/retract/un-suppress time,
	// under Broker.mu): the suppressor is still recorded, has sentTo[n],
	// and Covers this subscription; the entry is deleted the moment the
	// suppressor is removed or this record is removed or sent.
	coveredBy map[topology.NodeID]*compiledSub
	// suppresses is the reverse side: every (record, neighbor) decision
	// this record's propagation is currently suppressing. Retraction
	// un-suppression visits exactly this set instead of every record
	// sharing a stream.
	suppresses map[covEdge]bool
	// keep mirrors sub.Attrs as a set: nil keeps every attribute; an empty
	// non-nil map mirrors an explicitly empty projection list.
	keep   map[string]bool
	groups []attrGroup
	raw    []query.Predicate
}

// covEdge is one suppressed propagation decision: rec was not sent toward
// to because a covering subscription (the record whose suppresses set holds
// the edge) already was.
type covEdge struct {
	rec *compiledSub
	to  topology.NodeID
}

// suppressEdge records that cov's propagation toward n suppresses rec.
func suppressEdge(cov, rec *compiledSub, n topology.NodeID) {
	if rec.coveredBy == nil {
		rec.coveredBy = make(map[topology.NodeID]*compiledSub)
	}
	rec.coveredBy[n] = cov
	if cov.suppresses == nil {
		cov.suppresses = make(map[covEdge]bool)
	}
	cov.suppresses[covEdge{rec: rec, to: n}] = true
}

// detachCovEdges unlinks a removed record from the covered-by index: edges
// where c is the covered side are deleted from their suppressors, and the
// decisions c itself was suppressing are returned in canonical sweep order
// for reconsideration (their coveredBy entries are cleared — each must now
// either find a new suppressor or be sent).
func detachCovEdges(c *compiledSub) []covEdge {
	for n, cov := range c.coveredBy {
		delete(cov.suppresses, covEdge{rec: c, to: n})
	}
	c.coveredBy = nil
	if len(c.suppresses) == 0 {
		c.suppresses = nil
		return nil
	}
	out := make([]covEdge, 0, len(c.suppresses))
	for e := range c.suppresses {
		delete(e.rec.coveredBy, e.to)
		//lint:maporder freed edges are put into canonical sweep order by sortCovEdges below
		out = append(out, e)
	}
	c.suppresses = nil
	sortCovEdges(out)
	return out
}

// sortCovEdges orders suppressed decisions the way the reference sweep
// visits records: target neighbor ascending, then locals before remote
// directions (srcDir ascending), then registration order.
func sortCovEdges(edges []covEdge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].to != edges[j].to {
			return edges[i].to < edges[j].to
		}
		if edges[i].rec.srcDir != edges[j].rec.srcDir {
			return edges[i].rec.srcDir < edges[j].rec.srcDir
		}
		return edges[i].rec.regSeq < edges[j].rec.regSeq
	})
}

// listsAny reports whether the subscription lists any stream of the set —
// the candidate filter of retraction un-suppression (a covering
// subscription lists a superset of the covered one's streams).
func (c *compiledSub) listsAny(streams map[string]bool) bool {
	for _, s := range c.sub.Streams {
		if streams[s] {
			return true
		}
	}
	return false
}

// attrGroup is the compiled conjunction of one attribute's numeric selection
// filters: the folded interval for the fast path, plus the original
// predicates for the fallback on string-typed or NaN attribute values (whose
// Compare semantics an interval cannot express).
type attrGroup struct {
	attr  string
	iv    query.Interval
	preds []query.Predicate
}

// compileSub precomputes the matching state of one subscription. handler is
// non-nil only for local client subscriptions.
func compileSub(s *Subscription, h Handler) *compiledSub {
	c := &compiledSub{sub: s, handler: h, keep: keepSet(s.Attrs)}
	groups := make(map[string]int)
	for _, f := range s.Filters {
		n, ok := query.NumericSelection(f)
		if !ok {
			c.raw = append(c.raw, f)
			continue
		}
		attr := n.Left.Col.Attr
		gi, ok := groups[attr]
		if !ok {
			gi = len(c.groups)
			groups[attr] = gi
			c.groups = append(c.groups, attrGroup{attr: attr, iv: query.FullInterval()})
		}
		g := &c.groups[gi]
		g.iv = g.iv.Constrain(n.Op, *n.Right.Lit)
		g.preds = append(g.preds, f)
	}
	return c
}

// matches reproduces sub.Matches(t) for posting-list candidates (whose
// stream membership is already established): each compiled group evaluates
// one interval-membership test on the attribute value; string-typed or NaN
// values fall back to the group's original predicates; uncompiled filters
// evaluate raw. Conjunction order does not matter (predicate evaluation is
// pure), so the outcome is exactly the linear matcher's.
func (c *compiledSub) matches(t stream.Tuple) bool {
	for i := range c.groups {
		g := &c.groups[i]
		v, ok := t.Get(g.attr)
		if !ok {
			return false
		}
		if v.Type == stream.String || math.IsNaN(v.F) {
			for _, p := range g.preds {
				if !evalFilter(p, t) {
					return false
				}
			}
			continue
		}
		if !g.iv.ContainsFloat(v.F) {
			return false
		}
	}
	for _, p := range c.raw {
		if !evalFilter(p, t) {
			return false
		}
	}
	return true
}
