package pubsub

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
)

// This file enforces the index-equivalence contract: the inverted matching
// index must reproduce the retained linear matcher bit-for-bit — the same
// forwarding decisions (observed as per-link traffic), the same local
// delivery sets and orders, the same projected payloads, and the same
// recorded routing state — over randomized overlays and workloads. It is
// the pub/sub counterpart of querygraph's ComputeEdgesNaive equivalence
// discipline.

const (
	eqAdvertise = iota
	eqSubscribe
	eqPublish
	eqUnsubscribe
	eqUnadvertise
)

type eqOp struct {
	kind int
	node topology.NodeID
	strm string
	sub  *Subscription
	tup  stream.Tuple
}

var eqStreams = []string{"R", "S", "T"}

// eqRandomSub draws a subscription over the shared stream pool: 1-3 streams,
// a nil / empty / partial projection, and 0-3 filters mixing numeric ops,
// string literals (uncompilable: kept raw) and absent attributes.
func eqRandomSub(r *rand.Rand, id int) *Subscription {
	s := &Subscription{ID: fmt.Sprintf("s%d", id)}
	perm := r.Perm(len(eqStreams))
	for _, i := range perm[:1+r.IntN(len(eqStreams))] {
		s.Streams = append(s.Streams, eqStreams[i])
	}
	switch r.IntN(4) {
	case 0: // nil: keep everything
	case 1:
		s.Attrs = []string{} // empty projection
	default:
		pool := []string{"a", "b", "tag"}
		pp := r.Perm(len(pool))
		for _, i := range pp[:1+r.IntN(len(pool))] {
			s.Attrs = append(s.Attrs, pool[i])
		}
	}
	ops := []query.Op{query.Eq, query.Ne, query.Lt, query.Le, query.Gt, query.Ge}
	attrs := []string{"a", "b", "c", "d"} // d is often absent from tuples
	for i := 0; i < r.IntN(4); i++ {
		attr := attrs[r.IntN(len(attrs))]
		op := ops[r.IntN(len(ops))]
		var lit stream.Value
		if r.IntN(5) == 0 {
			lit = stream.StringVal([]string{"x", "y"}[r.IntN(2)])
		} else {
			lit = stream.FloatVal(float64(r.IntN(21) - 10))
		}
		s.Filters = append(s.Filters, query.Predicate{
			Left:  query.Operand{Col: &query.ColRef{Attr: attr}},
			Op:    op,
			Right: query.Operand{Lit: &lit},
		})
	}
	return s
}

// eqRandomTuple draws a message over the same domain, mixing value types so
// the compiled matcher's string/type-mismatch fallback is exercised.
func eqRandomTuple(r *rand.Rand) stream.Tuple {
	names := append(append([]string(nil), eqStreams...), "Z") // Z: never subscribed
	t := stream.Tuple{
		Stream: names[r.IntN(len(names))],
		Attrs:  make(map[string]stream.Value),
	}
	for _, attr := range []string{"a", "b", "c"} {
		switch r.IntN(4) {
		case 0: // absent
		case 1:
			t.Attrs[attr] = stream.StringVal([]string{"x", "y"}[r.IntN(2)])
		case 2:
			t.Attrs[attr] = stream.IntVal(int64(r.IntN(25) - 12))
		default:
			t.Attrs[attr] = stream.FloatVal(float64(r.IntN(25) - 12))
		}
	}
	if r.IntN(2) == 0 {
		t.Attrs["tag"] = stream.StringVal([]string{"x", "y"}[r.IntN(2)])
	}
	t.Size = tupleSize(len(t.Attrs))
	return t
}

// advLife keys one advertisement lifecycle: the advertising broker and the
// stream name.
type advLife struct {
	node topology.NodeID
	strm string
}

// eqScenario draws a full randomized churn workload: adverts, advert
// withdrawals, subscriptions, unsubscriptions and publishes over a random
// broker set, shuffled so registration, withdrawal and traffic interleave
// in arbitrary order — including subscriptions registered before the
// adverts of their streams exist (caught up by re-propagation epochs),
// unsubscribes of IDs that were never subscribed (explicit no-ops), streams
// advertised by two brokers where only one withdraws, and
// unadvertise-then-re-advertise cycles (new epochs, full re-propagation).
func eqScenario(r *rand.Rand, nodes int) []eqOp {
	var ops []eqOp
	// Per (node, stream) advertisement, a lifecycle: advertise, possibly
	// withdraw, possibly advertise again. The per-key op order is
	// canonical; the shuffle below scatters the positions and the fix-up
	// pass replays each key's ops in canonical order at those positions.
	advSeq := make(map[advLife][]int) // key -> op kinds in issue order
	for _, s := range eqStreams {
		seen := map[topology.NodeID]bool{}
		for i := 0; i < 1+r.IntN(2); i++ {
			n := topology.NodeID(r.IntN(nodes))
			if seen[n] {
				continue
			}
			seen[n] = true
			key := advLife{node: n, strm: s}
			life := []int{eqAdvertise}
			if r.IntN(3) == 0 {
				life = append(life, eqUnadvertise)
				if r.IntN(2) == 0 {
					life = append(life, eqAdvertise)
				}
			}
			advSeq[key] = life
			for _, kind := range life {
				ops = append(ops, eqOp{kind: kind, node: n, strm: s})
			}
		}
	}
	for i := 0; i < 10+r.IntN(20); i++ {
		node := topology.NodeID(r.IntN(nodes))
		sub := eqRandomSub(r, i)
		ops = append(ops, eqOp{kind: eqSubscribe, node: node, sub: sub})
		// Roughly a third of the subscriptions churn away again.
		if r.IntN(3) == 0 {
			ops = append(ops, eqOp{kind: eqUnsubscribe, node: node, sub: sub})
		}
	}
	// A couple of unsubscribes for IDs nobody ever subscribed.
	for i := 0; i < 2; i++ {
		ops = append(ops, eqOp{kind: eqUnsubscribe, node: topology.NodeID(r.IntN(nodes)),
			sub: &Subscription{ID: fmt.Sprintf("ghost%d", i)}})
	}
	for i := 0; i < 40+r.IntN(40); i++ {
		ops = append(ops, eqOp{kind: eqPublish, node: topology.NodeID(r.IntN(nodes)), tup: eqRandomTuple(r)})
	}
	r.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	// Keep each real unsubscribe after its subscribe so the withdrawal
	// actually exercises retraction (an early unsubscribe is just a
	// no-op, already covered by the ghost IDs above).
	pos := make(map[string]int)
	for i, o := range ops {
		if o.kind == eqSubscribe {
			pos[o.sub.ID] = i
		}
	}
	for i, o := range ops {
		if o.kind == eqUnsubscribe {
			if j, ok := pos[o.sub.ID]; ok && j > i {
				ops[i], ops[j] = ops[j], ops[i]
				pos[o.sub.ID] = i
			}
		}
	}
	// Replay each advert lifecycle in canonical order at its shuffled
	// positions, so a withdrawal follows its advertisement and a
	// re-advertisement follows the withdrawal.
	advAt := make(map[advLife][]int)
	for i, o := range ops {
		if o.kind == eqAdvertise || o.kind == eqUnadvertise {
			key := advLife{node: o.node, strm: o.strm}
			advAt[key] = append(advAt[key], i)
		}
	}
	for key, idxs := range advAt {
		for j, i := range idxs {
			ops[i].kind = advSeq[key][j]
		}
	}
	return ops
}

func eqNetwork(t *testing.T, r *rand.Rand, nodes int) (*topology.Oracle, []topology.NodeID) {
	t.Helper()
	g := topology.NewGraph(nodes)
	ids := make([]topology.NodeID, nodes)
	for i := 0; i < nodes; i++ {
		ids[i] = topology.NodeID(i)
		for j := i + 1; j < nodes; j++ {
			if err := g.AddEdge(topology.NodeID(i), topology.NodeID(j), 1+10*r.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return topology.NewOracle(g), ids
}

func renderTuple(t stream.Tuple) string {
	keys := make([]string, 0, len(t.Attrs))
	for k := range t.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%s sz=%d", t.Stream, t.Size)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, t.Attrs[k])
	}
	return b.String()
}

// runEqScenario replays a scenario on a fresh overlay, appending every
// delivery to *log in order. Handlers keep appending to the same log after
// the scenario, so probe publishes made later are captured too.
func runEqScenario(t *testing.T, net *Network, ops []eqOp, log *[]string) {
	t.Helper()
	for _, o := range ops {
		b, ok := net.Broker(o.node)
		if !ok {
			t.Fatalf("no broker at %d", o.node)
		}
		switch o.kind {
		case eqAdvertise:
			b.Advertise(o.strm)
		case eqUnadvertise:
			b.Unadvertise(o.strm)
		case eqSubscribe:
			node, sub := o.node, o.sub.Clone()
			if err := b.Subscribe(sub, func(s *Subscription, tp stream.Tuple) {
				*log = append(*log, fmt.Sprintf("%d/%s %s", node, s.ID, renderTuple(tp)))
			}); err != nil {
				t.Fatal(err)
			}
		case eqUnsubscribe:
			b.Unsubscribe(o.sub.ID)
		case eqPublish:
			b.Publish(o.tup)
		}
	}
}

// subsState renders every broker's recorded routing state (the per-direction
// subscription lists with their propagation records), so covering and
// lifecycle decisions are compared too.
func subsState(net *Network) string {
	var b strings.Builder
	for _, n := range net.Nodes() {
		br, _ := net.Broker(n)
		br.mu.Lock()
		for _, d := range sortedDirs(br.idx.dirs) {
			recs := br.idx.dirs[d].subs
			if len(recs) == 0 {
				continue
			}
			ids := make([]string, 0, len(recs))
			for _, c := range recs {
				ids = append(ids, c.sub.ID+"->"+renderSentTo(c.sentTo))
			}
			fmt.Fprintf(&b, "%d<-%d: %s\n", n, d, strings.Join(ids, ","))
		}
		br.mu.Unlock()
	}
	return b.String()
}

func renderSentTo(sentTo map[topology.NodeID]bool) string {
	nodes := sortedNodeSet(sentTo)
	parts := make([]string, len(nodes))
	for i, n := range nodes {
		parts[i] = fmt.Sprint(n)
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// TestMatchIndexEquivalence: over randomized overlays and churn workloads
// (interleaved advertise/subscribe/unsubscribe/publish in any order), the
// indexed matcher and the linear reference produce identical delivery logs
// (sets, order, payloads), identical per-link data and control traffic, and
// identical recorded routing state including propagation records.
func TestMatchIndexEquivalence(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		r := rand.New(rand.NewPCG(seed, 2008))
		nodes := 4 + int(seed%4)
		oracle, ids := eqNetwork(t, r, nodes)
		ops := eqScenario(r, nodes)

		lin, err := NewNetwork(oracle, ids)
		if err != nil {
			t.Fatal(err)
		}
		lin.SetLinearMatching(true)
		idx, err := NewNetwork(oracle, ids)
		if err != nil {
			t.Fatal(err)
		}

		var linLog, idxLog []string
		runEqScenario(t, lin, ops, &linLog)
		runEqScenario(t, idx, ops, &idxLog)

		if !reflect.DeepEqual(linLog, idxLog) {
			t.Fatalf("seed %d: delivery logs differ\nlinear:  %v\nindexed: %v", seed, linLog, idxLog)
		}
		if !reflect.DeepEqual(lin.data, idx.data) {
			t.Fatalf("seed %d: per-link data traffic differs\nlinear:  %v\nindexed: %v", seed, lin.data, idx.data)
		}
		if !reflect.DeepEqual(lin.control, idx.control) {
			t.Fatalf("seed %d: per-link control traffic differs\nlinear:  %v\nindexed: %v", seed, lin.control, idx.control)
		}
		if a, b := subsState(lin), subsState(idx); a != b {
			t.Fatalf("seed %d: routing state differs\nlinear:\n%s\nindexed:\n%s", seed, a, b)
		}
		if a, b := lin.Traffic(), idx.Traffic(); a != b {
			t.Fatalf("seed %d: traffic reports differ: %+v vs %+v", seed, a, b)
		}
	}
}

// checkLifecycleInvariant asserts the propagation fixpoint on a quiescent
// network: every recorded subscription (local or per-direction) has, for
// every other neighbor that advertises one of its streams, either been sent
// that way or a covering subscription that was. This is the property that
// makes re-propagation and un-suppression complete — no interest is ever
// silently stranded, whatever the advertise/subscribe/unsubscribe order
// was.
func checkLifecycleInvariant(t *testing.T, net *Network, seed uint64) {
	t.Helper()
	for _, n := range net.Nodes() {
		br, _ := net.Broker(n)
		br.mu.Lock()
		check := func(c *compiledSub, srcDir topology.NodeID) {
			for _, nb := range br.neighbors {
				if nb == srcDir || c.sentTo[nb] {
					continue
				}
				if !br.advertisesAny(nb, c.sub.Streams) {
					continue
				}
				if br.coverFor(nb, c.sub, query.SelectionIntervalsByAttr(c.sub.Filters)) != nil {
					continue
				}
				t.Errorf("seed %d: broker %d: %s neither sent toward %d nor covered",
					seed, n, c.sub, nb)
			}
		}
		for _, c := range br.idx.locals.subs {
			check(c, -1)
		}
		for _, d := range sortedDirs(br.idx.dirs) {
			for _, c := range br.idx.dirs[d].subs {
				check(c, d)
			}
		}
		br.mu.Unlock()
	}
}

// recordState captures each broker's per-direction records as ID →
// subscription maps, keyed "broker<-direction".
func recordState(net *Network) map[string]map[string]*Subscription {
	out := make(map[string]map[string]*Subscription)
	for _, n := range net.Nodes() {
		br, _ := net.Broker(n)
		br.mu.Lock()
		for _, d := range sortedDirs(br.idx.dirs) {
			recs := br.idx.dirs[d].subs
			if len(recs) == 0 {
				continue
			}
			key := fmt.Sprintf("%d<-%d", n, d)
			m := make(map[string]*Subscription, len(recs))
			for _, c := range recs {
				m[c.sub.ID] = c.sub
			}
			out[key] = m
		}
		br.mu.Unlock()
	}
	return out
}

// TestChurnReferenceEquivalence: for randomized interleavings of
// advertise/subscribe/publish/unsubscribe — including
// subscribe-before-advertise orderings the pre-lifecycle code routed
// incorrectly — the network that lived through the churn behaves exactly
// like a reference network rebuilt from scratch from the surviving state
// (all adverts first, then only the surviving subscriptions, in order):
// identical probe deliveries, identical per-link probe data traffic, and
// equivalent routing state (every reference record present, extras only
// redundant covered records that cannot change a forwarding decision).
// Finally, withdrawing the survivors drains every broker to empty.
func TestChurnReferenceEquivalence(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		r := rand.New(rand.NewPCG(seed, 777))
		nodes := 4 + int(seed%4)
		oracle, ids := eqNetwork(t, r, nodes)
		ops := eqScenario(r, nodes)

		churn, err := NewNetwork(oracle, ids)
		if err != nil {
			t.Fatal(err)
		}
		var churnLog []string
		runEqScenario(t, churn, ops, &churnLog)

		// Survivors: advertisements never withdrawn (per node+stream,
		// last lifecycle op wins) and subscriptions never withdrawn, in
		// scenario order — adverts first, as a from-scratch deployment
		// would issue them.
		alive := make(map[string]bool)
		aliveAdv := make(map[advLife]bool)
		var refOps []eqOp
		for _, o := range ops {
			switch o.kind {
			case eqAdvertise:
				aliveAdv[advLife{node: o.node, strm: o.strm}] = true
			case eqUnadvertise:
				delete(aliveAdv, advLife{node: o.node, strm: o.strm})
			case eqSubscribe:
				alive[o.sub.ID] = true
			case eqUnsubscribe:
				delete(alive, o.sub.ID)
			}
		}
		advDone := make(map[advLife]bool)
		for _, o := range ops {
			if o.kind != eqAdvertise {
				continue
			}
			key := advLife{node: o.node, strm: o.strm}
			if aliveAdv[key] && !advDone[key] {
				advDone[key] = true
				refOps = append(refOps, o)
			}
		}
		for _, o := range ops {
			if o.kind == eqSubscribe && alive[o.sub.ID] {
				refOps = append(refOps, o)
			}
		}
		ref, err := NewNetwork(oracle, ids)
		if err != nil {
			t.Fatal(err)
		}
		var refLog []string
		runEqScenario(t, ref, refOps, &refLog)

		checkLifecycleInvariant(t, churn, seed)

		// Routing state: per (broker, direction), the two record sets
		// must be coverage-equivalent — every record one network holds
		// is present in, or covered by a record of, the other's same
		// slot. (Exact ID sets can legitimately differ: covering
		// suppression is order-dependent, so e.g. two mutually covering
		// subscriptions may be recorded one-or-the-other depending on
		// arrival order.) Coverage-equivalence implies identical
		// forwarding decisions and projection unions, which the probe
		// checks below verify empirically.
		churnState, refState := recordState(churn), recordState(ref)
		coveredBy := func(sub *Subscription, recs map[string]*Subscription) bool {
			if _, ok := recs[sub.ID]; ok {
				return true
			}
			for _, other := range recs {
				if other.Covers(sub) {
					return true
				}
			}
			return false
		}
		for key, refRecs := range refState {
			got := churnState[key]
			for id, sub := range refRecs {
				if !coveredBy(sub, got) {
					t.Errorf("seed %d: %s: reference record %s stranded (neither present nor covered after churn)",
						seed, key, id)
				}
			}
		}
		for key, recs := range churnState {
			refRecs := refState[key]
			for id, sub := range recs {
				if !coveredBy(sub, refRecs) {
					t.Errorf("seed %d: %s: stale record %s survived churn (not justified by reference state)",
						seed, key, id)
				}
			}
		}

		// Probe publishes: identical deliveries and identical per-link
		// data traffic on both networks.
		var probes []eqOp
		for i := 0; i < 30; i++ {
			probes = append(probes, eqOp{kind: eqPublish, node: topology.NodeID(r.IntN(nodes)), tup: eqRandomTuple(r)})
		}
		churn.ResetTraffic()
		ref.ResetTraffic()
		mark := len(churnLog)
		refMark := len(refLog)
		runEqScenario(t, churn, probes, &churnLog)
		runEqScenario(t, ref, probes, &refLog)
		if !reflect.DeepEqual(churnLog[mark:], refLog[refMark:]) {
			t.Fatalf("seed %d: probe deliveries differ\nchurned:   %v\nreference: %v",
				seed, churnLog[mark:], refLog[refMark:])
		}
		if !reflect.DeepEqual(churn.data, ref.data) {
			t.Fatalf("seed %d: per-link probe data traffic differs\nchurned:   %v\nreference: %v",
				seed, churn.data, ref.data)
		}

		// Withdrawing every surviving subscription and advertisement
		// drains all routing AND advert state — the full teardown
		// invariant.
		for _, o := range refOps {
			if o.kind == eqSubscribe {
				b, _ := churn.Broker(o.node)
				b.Unsubscribe(o.sub.ID)
			}
		}
		assertDrained(t, churn)
		for _, o := range refOps {
			if o.kind == eqAdvertise {
				b, _ := churn.Broker(o.node)
				b.Unadvertise(o.strm)
			}
		}
		assertAdvertsDrained(t, churn)
	}
}

// TestCompiledSubMatchesLinear: the compiled per-subscription matcher agrees
// with Subscription.Matches on every tuple whose stream the subscription
// lists (the posting-list precondition).
func TestCompiledSubMatchesLinear(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		r := rand.New(rand.NewPCG(seed, 31))
		s := eqRandomSub(r, int(seed))
		c := compileSub(s, nil)
		for trial := 0; trial < 30; trial++ {
			tp := eqRandomTuple(r)
			if !s.hasStream(tp.Stream) {
				continue
			}
			if got, want := c.matches(tp), s.Matches(tp); got != want {
				t.Fatalf("seed %d: compiled=%v linear=%v for %s on %s",
					seed, got, want, s, renderTuple(tp))
			}
		}
	}
}

// TestTrafficReportDeterminism: replaying the same workload on a fresh
// multi-broker overlay yields a bit-identical TrafficReport and delivery
// log. (Traffic sums per-link volumes in sorted order — map-iteration-order
// summation used to make WeightedCost drift across identical runs.)
func TestTrafficReportDeterminism(t *testing.T) {
	const nodes = 6
	run := func() (TrafficReport, []string) {
		r := rand.New(rand.NewPCG(7, 2008))
		oracle, ids := eqNetwork(t, r, nodes)
		ops := eqScenario(r, nodes)
		net, err := NewNetwork(oracle, ids)
		if err != nil {
			t.Fatal(err)
		}
		var log []string
		runEqScenario(t, net, ops, &log)
		return net.Traffic(), log
	}
	rep1, log1 := run()
	for i := 0; i < 5; i++ {
		rep2, log2 := run()
		if rep1 != rep2 {
			t.Fatalf("traffic report not deterministic: %+v vs %+v", rep1, rep2)
		}
		if !reflect.DeepEqual(log1, log2) {
			t.Fatalf("delivery log not deterministic")
		}
	}
}
