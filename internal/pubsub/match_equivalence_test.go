package pubsub

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
)

// This file enforces the index-equivalence contract: the inverted matching
// index must reproduce the retained linear matcher bit-for-bit — the same
// forwarding decisions (observed as per-link traffic), the same local
// delivery sets and orders, the same projected payloads, and the same
// recorded routing state — over randomized overlays and workloads. It is
// the pub/sub counterpart of querygraph's ComputeEdgesNaive equivalence
// discipline.

const (
	eqAdvertise = iota
	eqSubscribe
	eqPublish
)

type eqOp struct {
	kind int
	node topology.NodeID
	strm string
	sub  *Subscription
	tup  stream.Tuple
}

var eqStreams = []string{"R", "S", "T"}

// eqRandomSub draws a subscription over the shared stream pool: 1-3 streams,
// a nil / empty / partial projection, and 0-3 filters mixing numeric ops,
// string literals (uncompilable: kept raw) and absent attributes.
func eqRandomSub(r *rand.Rand, id int) *Subscription {
	s := &Subscription{ID: fmt.Sprintf("s%d", id)}
	perm := r.Perm(len(eqStreams))
	for _, i := range perm[:1+r.IntN(len(eqStreams))] {
		s.Streams = append(s.Streams, eqStreams[i])
	}
	switch r.IntN(4) {
	case 0: // nil: keep everything
	case 1:
		s.Attrs = []string{} // empty projection
	default:
		pool := []string{"a", "b", "tag"}
		pp := r.Perm(len(pool))
		for _, i := range pp[:1+r.IntN(len(pool))] {
			s.Attrs = append(s.Attrs, pool[i])
		}
	}
	ops := []query.Op{query.Eq, query.Ne, query.Lt, query.Le, query.Gt, query.Ge}
	attrs := []string{"a", "b", "c", "d"} // d is often absent from tuples
	for i := 0; i < r.IntN(4); i++ {
		attr := attrs[r.IntN(len(attrs))]
		op := ops[r.IntN(len(ops))]
		var lit stream.Value
		if r.IntN(5) == 0 {
			lit = stream.StringVal([]string{"x", "y"}[r.IntN(2)])
		} else {
			lit = stream.FloatVal(float64(r.IntN(21) - 10))
		}
		s.Filters = append(s.Filters, query.Predicate{
			Left:  query.Operand{Col: &query.ColRef{Attr: attr}},
			Op:    op,
			Right: query.Operand{Lit: &lit},
		})
	}
	return s
}

// eqRandomTuple draws a message over the same domain, mixing value types so
// the compiled matcher's string/type-mismatch fallback is exercised.
func eqRandomTuple(r *rand.Rand) stream.Tuple {
	names := append(append([]string(nil), eqStreams...), "Z") // Z: never subscribed
	t := stream.Tuple{
		Stream: names[r.IntN(len(names))],
		Attrs:  make(map[string]stream.Value),
	}
	for _, attr := range []string{"a", "b", "c"} {
		switch r.IntN(4) {
		case 0: // absent
		case 1:
			t.Attrs[attr] = stream.StringVal([]string{"x", "y"}[r.IntN(2)])
		case 2:
			t.Attrs[attr] = stream.IntVal(int64(r.IntN(25) - 12))
		default:
			t.Attrs[attr] = stream.FloatVal(float64(r.IntN(25) - 12))
		}
	}
	if r.IntN(2) == 0 {
		t.Attrs["tag"] = stream.StringVal([]string{"x", "y"}[r.IntN(2)])
	}
	t.Size = tupleSize(len(t.Attrs))
	return t
}

// eqScenario draws a full randomized workload: adverts, subscriptions and
// publishes over a random broker set, shuffled so registration and traffic
// interleave.
func eqScenario(r *rand.Rand, nodes int) []eqOp {
	var ops []eqOp
	for _, s := range eqStreams {
		for i := 0; i < 1+r.IntN(2); i++ {
			ops = append(ops, eqOp{kind: eqAdvertise, node: topology.NodeID(r.IntN(nodes)), strm: s})
		}
	}
	for i := 0; i < 10+r.IntN(20); i++ {
		ops = append(ops, eqOp{kind: eqSubscribe, node: topology.NodeID(r.IntN(nodes)), sub: eqRandomSub(r, i)})
	}
	for i := 0; i < 40+r.IntN(40); i++ {
		ops = append(ops, eqOp{kind: eqPublish, node: topology.NodeID(r.IntN(nodes)), tup: eqRandomTuple(r)})
	}
	r.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops
}

func eqNetwork(t *testing.T, r *rand.Rand, nodes int) (*topology.Oracle, []topology.NodeID) {
	t.Helper()
	g := topology.NewGraph(nodes)
	ids := make([]topology.NodeID, nodes)
	for i := 0; i < nodes; i++ {
		ids[i] = topology.NodeID(i)
		for j := i + 1; j < nodes; j++ {
			if err := g.AddEdge(topology.NodeID(i), topology.NodeID(j), 1+10*r.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return topology.NewOracle(g), ids
}

func renderTuple(t stream.Tuple) string {
	keys := make([]string, 0, len(t.Attrs))
	for k := range t.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%s sz=%d", t.Stream, t.Size)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, t.Attrs[k])
	}
	return b.String()
}

// runEqScenario replays a scenario on a fresh overlay and returns the
// ordered delivery log.
func runEqScenario(t *testing.T, net *Network, ops []eqOp) []string {
	t.Helper()
	var log []string
	for _, o := range ops {
		b, ok := net.Broker(o.node)
		if !ok {
			t.Fatalf("no broker at %d", o.node)
		}
		switch o.kind {
		case eqAdvertise:
			b.Advertise(o.strm)
		case eqSubscribe:
			node, sub := o.node, o.sub.Clone()
			if err := b.Subscribe(sub, func(s *Subscription, tp stream.Tuple) {
				log = append(log, fmt.Sprintf("%d/%s %s", node, s.ID, renderTuple(tp)))
			}); err != nil {
				t.Fatal(err)
			}
		case eqPublish:
			b.Publish(o.tup)
		}
	}
	return log
}

// subsState renders every broker's recorded routing state (the per-direction
// subscription lists), so covering decisions are compared too.
func subsState(net *Network) string {
	var b strings.Builder
	for _, n := range net.Nodes() {
		br, _ := net.Broker(n)
		br.mu.Lock()
		dirs := make([]topology.NodeID, 0, len(br.subs))
		for d := range br.subs {
			dirs = append(dirs, d)
		}
		sort.Slice(dirs, func(i, j int) bool { return dirs[i] < dirs[j] })
		for _, d := range dirs {
			ids := make([]string, 0, len(br.subs[d]))
			for _, s := range br.subs[d] {
				ids = append(ids, s.ID)
			}
			fmt.Fprintf(&b, "%d<-%d: %s\n", n, d, strings.Join(ids, ","))
		}
		br.mu.Unlock()
	}
	return b.String()
}

// TestMatchIndexEquivalence: over randomized overlays and workloads, the
// indexed matcher and the linear reference produce identical delivery logs
// (sets, order, payloads), identical per-link data and control traffic, and
// identical recorded routing state.
func TestMatchIndexEquivalence(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		r := rand.New(rand.NewPCG(seed, 2008))
		nodes := 4 + int(seed%4)
		oracle, ids := eqNetwork(t, r, nodes)
		ops := eqScenario(r, nodes)

		lin, err := NewNetwork(oracle, ids)
		if err != nil {
			t.Fatal(err)
		}
		lin.SetLinearMatching(true)
		idx, err := NewNetwork(oracle, ids)
		if err != nil {
			t.Fatal(err)
		}

		linLog := runEqScenario(t, lin, ops)
		idxLog := runEqScenario(t, idx, ops)

		if !reflect.DeepEqual(linLog, idxLog) {
			t.Fatalf("seed %d: delivery logs differ\nlinear:  %v\nindexed: %v", seed, linLog, idxLog)
		}
		if !reflect.DeepEqual(lin.data, idx.data) {
			t.Fatalf("seed %d: per-link data traffic differs\nlinear:  %v\nindexed: %v", seed, lin.data, idx.data)
		}
		if !reflect.DeepEqual(lin.control, idx.control) {
			t.Fatalf("seed %d: per-link control traffic differs\nlinear:  %v\nindexed: %v", seed, lin.control, idx.control)
		}
		if a, b := subsState(lin), subsState(idx); a != b {
			t.Fatalf("seed %d: routing state differs\nlinear:\n%s\nindexed:\n%s", seed, a, b)
		}
		if a, b := lin.Traffic(), idx.Traffic(); a != b {
			t.Fatalf("seed %d: traffic reports differ: %+v vs %+v", seed, a, b)
		}
	}
}

// TestCompiledSubMatchesLinear: the compiled per-subscription matcher agrees
// with Subscription.Matches on every tuple whose stream the subscription
// lists (the posting-list precondition).
func TestCompiledSubMatchesLinear(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		r := rand.New(rand.NewPCG(seed, 31))
		s := eqRandomSub(r, int(seed))
		c := compileSub(s, nil)
		for trial := 0; trial < 30; trial++ {
			tp := eqRandomTuple(r)
			if !s.hasStream(tp.Stream) {
				continue
			}
			if got, want := c.matches(tp), s.Matches(tp); got != want {
				t.Fatalf("seed %d: compiled=%v linear=%v for %s on %s",
					seed, got, want, s, renderTuple(tp))
			}
		}
	}
}

// TestTrafficReportDeterminism: replaying the same workload on a fresh
// multi-broker overlay yields a bit-identical TrafficReport and delivery
// log. (Traffic sums per-link volumes in sorted order — map-iteration-order
// summation used to make WeightedCost drift across identical runs.)
func TestTrafficReportDeterminism(t *testing.T) {
	const nodes = 6
	run := func() (TrafficReport, []string) {
		r := rand.New(rand.NewPCG(7, 2008))
		oracle, ids := eqNetwork(t, r, nodes)
		ops := eqScenario(r, nodes)
		net, err := NewNetwork(oracle, ids)
		if err != nil {
			t.Fatal(err)
		}
		log := runEqScenario(t, net, ops)
		return net.Traffic(), log
	}
	rep1, log1 := run()
	for i := 0; i < 5; i++ {
		rep2, log2 := run()
		if rep1 != rep2 {
			t.Fatalf("traffic report not deterministic: %+v vs %+v", rep1, rep2)
		}
		if !reflect.DeepEqual(log1, log2) {
			t.Fatalf("delivery log not deterministic")
		}
	}
}
