package pubsub

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/stream"
	"repro/internal/topology"
)

// Handler consumes tuples delivered to a local subscriber.
type Handler func(sub *Subscription, t stream.Tuple)

// Peer is the broker-to-broker protocol: the four message kinds that cross
// overlay links. In-process networks implement it with direct calls;
// transport adapters (e.g. the TCP transport) implement it over the wire.
type Peer interface {
	// AdvertFrom delivers a stream advertisement arriving from a
	// neighbor.
	AdvertFrom(from topology.NodeID, streamName string)
	// PropagateFrom delivers a subscription arriving from a neighbor.
	PropagateFrom(sub *Subscription, from topology.NodeID)
	// RetractFrom delivers an unsubscription arriving from a neighbor:
	// the subscription with the given ID (at sequence number seq or
	// older) is withdrawn from the direction of 'from'.
	RetractFrom(from topology.NodeID, id string, seq uint64)
	// RouteFrom delivers a data tuple arriving from a neighbor.
	RouteFrom(t stream.Tuple, from topology.NodeID)
}

// Fabric connects a broker to its neighbors and accounts traffic. It is the
// seam between the routing logic and the deployment substrate.
type Fabric interface {
	// Peer returns the protocol endpoint of a neighbor broker.
	Peer(n topology.NodeID) Peer
	// CountControl and CountData account per-link traffic in bytes.
	CountControl(from, to topology.NodeID, size int)
	CountData(from, to topology.NodeID, size int)
}

// AdvertFrom, PropagateFrom, RetractFrom and RouteFrom make *Broker itself a
// Peer, so in-process fabrics hand brokers out directly.
func (b *Broker) AdvertFrom(from topology.NodeID, streamName string) { b.advertFrom(from, streamName) }

// PropagateFrom implements Peer.
func (b *Broker) PropagateFrom(sub *Subscription, from topology.NodeID) { b.propagate(sub, from) }

// RetractFrom implements Peer.
func (b *Broker) RetractFrom(from topology.NodeID, id string, seq uint64) {
	b.retractFrom(from, id, seq)
}

// RouteFrom implements Peer.
func (b *Broker) RouteFrom(t stream.Tuple, from topology.NodeID) { b.route(t, from) }

var _ Peer = (*Broker)(nil)

// Broker is one overlay node of the Pub/Sub network. Brokers are wired into
// an acyclic overlay by Network; all routing state is per-neighbor:
//
//   - adverts[n] holds the streams advertised from direction n, guiding
//     subscription propagation (Fig 2(a));
//   - idx.dirs[n] holds the subscriptions received from direction n, i.e.
//     the interests living "behind" that neighbor (Fig 2(c)); a message is
//     forwarded to n only when one of them matches (Fig 2(d));
//   - idx.locals holds this broker's client subscriptions.
//
// Routing state is dynamic (the lifecycle subsystem): every recorded
// subscription tracks the neighbors it was actually propagated to (sentTo)
// and the epoch it was issued in (seq). When a new advert direction is
// learned, the broker replays the matching posting list toward it
// (re-propagation), so subscribe-before-advertise orderings route
// correctly; when a subscription is withdrawn, a retraction follows the
// sentTo edges removing the remote records and un-suppressing any
// subscription the removed one was covering. Sequence numbers make
// duplicate floods and stale retractions no-ops.
type Broker struct {
	Node topology.NodeID

	mu        sync.Mutex
	net       Fabric
	neighbors []topology.NodeID
	adverts   map[topology.NodeID]map[string]bool
	// published advertisements by this broker's clients.
	ownAdverts map[string]bool

	// idx is the authoritative routing state: one dirIndex per neighbor
	// direction plus one for local client subscriptions, maintained
	// incrementally under mu (see index.go).
	idx *matchIndex
	// linearMatch routes and suppresses with the retained linear
	// reference matcher instead of the posting-list/compiled-filter
	// index. The two are equivalent bit-for-bit (equivalence tests); the
	// linear path is the reference implementation and the pre-index
	// benchmark baseline.
	linearMatch bool
	// matchScratch collects per-neighbor matched candidates under mu,
	// avoiding a per-tuple allocation on the indexed path.
	matchScratch []*compiledSub
	// seq numbers the subscription epochs originated by this broker's
	// clients: each Subscribe stamps the next value, so a re-subscribe
	// of a reused ID supersedes the records (and outruns stale
	// retractions) of the previous incarnation everywhere.
	seq uint64
}

// NewBroker creates a broker wired to a fabric. Neighbors are added with
// AddNeighbor; in-process networks do this during overlay construction.
func NewBroker(net Fabric, node topology.NodeID) *Broker {
	return &Broker{
		Node:       node,
		net:        net,
		adverts:    make(map[topology.NodeID]map[string]bool),
		ownAdverts: make(map[string]bool),
		idx:        newMatchIndex(),
	}
}

// SetLinearMatching switches the broker between the inverted matching index
// and the retained linear reference matcher. Both produce identical
// forwarding decisions, deliveries and traffic; the linear path exists as
// the reference implementation and baseline for benchmarks.
func (b *Broker) SetLinearMatching(on bool) {
	b.mu.Lock()
	b.linearMatch = on
	b.mu.Unlock()
}

// Advertise announces that this broker's clients will publish the given
// stream. The advertisement floods the overlay so every broker learns the
// direction toward the publisher; brokers holding subscriptions on the
// stream re-propagate them toward it as the flood passes (advertFrom).
//
// Advert traffic is accounted at the SEND side, like subscription
// propagation and data forwarding: every advert that crosses a link is
// charged by its sender, including re-advertisements the receiver will
// duplicate-suppress.
func (b *Broker) Advertise(streamName string) {
	b.mu.Lock()
	b.ownAdverts[streamName] = true
	neighbors := append([]topology.NodeID(nil), b.neighbors...)
	b.mu.Unlock()
	for _, n := range neighbors {
		b.net.CountControl(b.Node, n, advertSize)
		b.net.Peer(n).AdvertFrom(b.Node, streamName)
	}
}

func (b *Broker) advertFrom(from topology.NodeID, streamName string) {
	b.mu.Lock()
	set, ok := b.adverts[from]
	if !ok {
		set = make(map[string]bool)
		b.adverts[from] = set
	}
	if set[streamName] {
		b.mu.Unlock()
		return // already known; stop the flood
	}
	set[streamName] = true
	neighbors := append([]topology.NodeID(nil), b.neighbors...)
	resend := b.replayLocked(from, streamName)
	b.mu.Unlock()
	for _, n := range neighbors {
		if n != from {
			b.net.CountControl(b.Node, n, advertSize)
			b.net.Peer(n).AdvertFrom(b.Node, streamName)
		}
	}
	// Re-propagation epoch: replay the recorded subscriptions on the
	// newly learned stream toward the advertiser. Each send was already
	// marked in the record's sentTo under the lock, so a concurrent
	// replay cannot duplicate it.
	for _, sub := range resend {
		b.net.CountControl(b.Node, from, subSize(sub))
		b.net.Peer(from).PropagateFrom(sub, b.Node)
	}
}

// replayLocked collects the subscriptions to re-propagate toward 'from'
// after learning that it advertises streamName: every recorded subscription
// listing the stream (from the per-direction posting lists) that was not
// already sent that way and is not covered by one that was. Locals replay
// first in registration order, then each other direction in ascending
// neighbor order — the same order a from-scratch network would have
// propagated them in. Caller holds b.mu.
func (b *Broker) replayLocked(from topology.NodeID, streamName string) []*Subscription {
	var out []*Subscription
	consider := func(c *compiledSub) {
		if c.sentTo[from] {
			return
		}
		if b.coveredByLocalToward(from, c.sub) || b.coveredExcept(from, c.sub) {
			return
		}
		c.sentTo[from] = true
		out = append(out, c.sub)
	}
	for _, c := range b.idx.locals.byStream[streamName] {
		consider(c)
	}
	for _, d := range sortedDirs(b.idx.dirs) {
		if d == from {
			continue
		}
		for _, c := range b.idx.dirs[d].byStream[streamName] {
			consider(c)
		}
	}
	return out
}

// Subscribe registers a local client subscription and propagates it toward
// the advertised publishers, suppressing propagation covered by an earlier
// subscription sent the same way (the p1∪p2 merge point of Fig 3). Streams
// advertised only later are caught up by re-propagation epochs (advertFrom).
func (b *Broker) Subscribe(sub *Subscription, h Handler) error {
	if sub == nil || len(sub.Streams) == 0 {
		return fmt.Errorf("pubsub: empty subscription")
	}
	b.mu.Lock()
	exists := b.idx.locals.find(sub.ID) != nil
	b.mu.Unlock()
	if exists {
		// Re-subscribing a live ID supersedes the old incarnation
		// everywhere (the documented ID contract): retract it first so
		// no broker — including this one — is left holding both.
		b.Unsubscribe(sub.ID)
	}
	b.mu.Lock()
	b.seq++
	sub.Seq = b.seq
	c := compileSub(sub, h)
	c.seq = sub.Seq
	c.sentTo = make(map[topology.NodeID]bool)
	b.idx.locals.add(c)
	b.mu.Unlock()
	b.propagate(sub, -1)
	return nil
}

// Unsubscribe withdraws a local client subscription by ID: the local record
// is dropped, a retraction follows the propagation path removing the
// routing state recorded for it at other brokers, and any subscription the
// removed one was covering is re-propagated (un-suppressed) toward the
// neighbors it was suppressed for. Unsubscribing an unknown ID — including
// a second Unsubscribe of the same ID — is a no-op.
func (b *Broker) Unsubscribe(id string) {
	b.mu.Lock()
	removed := b.idx.locals.removeByID(id)
	if len(removed) == 0 {
		b.mu.Unlock()
		return // unknown or already removed: explicit no-op
	}
	targetSet := make(map[topology.NodeID]bool)
	var seq uint64
	streams := make(map[string]bool)
	for _, c := range removed {
		for n := range c.sentTo {
			targetSet[n] = true
		}
		if c.seq > seq {
			seq = c.seq
		}
		for _, s := range c.sub.Streams {
			streams[s] = true
		}
	}
	targets := sortedNodeSet(targetSet)
	resend := b.unsuppressLocked(streams, targets)
	b.mu.Unlock()
	for _, n := range targets {
		b.net.CountControl(b.Node, n, retractSize)
		b.net.Peer(n).RetractFrom(b.Node, id, seq)
	}
	for _, s := range resend {
		b.net.CountControl(b.Node, s.to, subSize(s.sub))
		b.net.Peer(s.to).PropagateFrom(s.sub, b.Node)
	}
}

// retractFrom handles a retraction arriving from a neighbor: the record of
// the subscription is removed, the retraction is forwarded along the
// record's own propagation edges, and covered subscriptions un-suppress. A
// retraction for an unknown ID, a duplicate retraction, or one older than
// the recorded epoch (seq) is a no-op.
func (b *Broker) retractFrom(from topology.NodeID, id string, seq uint64) {
	b.mu.Lock()
	d := b.idx.dir(from)
	rec := d.find(id)
	if rec == nil {
		// The retraction overtook the propagation it chases (sends
		// happen outside broker locks): leave a tombstone so the
		// late-arriving record is dropped instead of being installed
		// with no retraction ever coming. Nothing to forward — this
		// broker never recorded, so it never propagated onward.
		if ts, ok := d.retracted[id]; !ok || seq > ts {
			d.retracted[id] = seq
		}
		b.mu.Unlock()
		return
	}
	if rec.seq > seq {
		b.mu.Unlock()
		return // stale retraction: superseded by a newer epoch
	}
	d.remove(rec)
	targets := sortedNodeSet(rec.sentTo)
	streams := make(map[string]bool, len(rec.sub.Streams))
	for _, s := range rec.sub.Streams {
		streams[s] = true
	}
	resend := b.unsuppressLocked(streams, targets)
	b.mu.Unlock()
	for _, n := range targets {
		b.net.CountControl(b.Node, n, retractSize)
		b.net.Peer(n).RetractFrom(b.Node, id, seq)
	}
	for _, s := range resend {
		b.net.CountControl(b.Node, s.to, subSize(s.sub))
		b.net.Peer(s.to).PropagateFrom(s.sub, b.Node)
	}
}

// pendSend is one subscription re-propagation decided under the lock and
// sent after releasing it.
type pendSend struct {
	to  topology.NodeID
	sub *Subscription
}

// unsuppressLocked re-runs the propagation decision for every remaining
// subscription that the just-removed one (with the given stream set) may
// have been covering, toward the neighbors it had been sent to: a covering
// subscription only ever suppresses others on a subset of its own streams,
// and only toward neighbors in its sentTo. Eligible subscriptions are
// marked sent and returned for delivery outside the lock. Caller holds
// b.mu (with the removed record already gone).
func (b *Broker) unsuppressLocked(streams map[string]bool, targets []topology.NodeID) []pendSend {
	if len(targets) == 0 {
		return nil
	}
	var out []pendSend
	consider := func(c *compiledSub, n topology.NodeID) {
		if c.sentTo[n] || !c.listsAny(streams) {
			return
		}
		if !b.advertisesAny(n, c.sub.Streams) {
			return
		}
		if b.coveredByLocalToward(n, c.sub) || b.coveredExcept(n, c.sub) {
			return
		}
		c.sentTo[n] = true
		out = append(out, pendSend{to: n, sub: c.sub})
	}
	for _, n := range targets {
		for _, c := range b.idx.locals.subs {
			consider(c, n)
		}
		for _, d := range sortedDirs(b.idx.dirs) {
			if d == n {
				continue
			}
			for _, c := range b.idx.dirs[d].subs {
				consider(c, n)
			}
		}
	}
	return out
}

// propagate records a subscription arriving from a neighbor (from >= 0) and
// forwards it to every neighbor that advertises one of its streams (except
// the neighbor it came from), unless a subscription already forwarded that
// way covers it. Covering scans consult the matching index: a covering
// subscription must list sub's first stream, so only that posting list's
// candidates are examined. A re-delivery of an already recorded epoch
// (same ID and direction, seq not newer) is dropped without re-flooding —
// the duplicate suppression that keeps replay epochs from looping.
func (b *Broker) propagate(sub *Subscription, from topology.NodeID) {
	if sub == nil || len(sub.Streams) == 0 {
		// Subscribe validates this, but PropagateFrom is also reachable
		// from wire transports; a streamless subscription matches
		// nothing and must not be recorded or flooded.
		return
	}
	b.mu.Lock()
	var rec *compiledSub
	if from >= 0 {
		d := b.idx.dir(from)
		if ts, ok := d.retracted[sub.ID]; ok {
			// Either way the tombstone is consumed: each (link,
			// epoch) is propagated exactly once (sentTo is marked
			// under the sender's lock before sending), so the
			// suppressed arrival is the one it was waiting for, and
			// a newer epoch supersedes it.
			delete(d.retracted, sub.ID)
			if sub.Seq <= ts {
				b.mu.Unlock()
				return // retraction overtook this propagation: obey it
			}
		}
		if prev := d.find(sub.ID); prev != nil {
			if sub.Seq <= prev.seq {
				b.mu.Unlock()
				return // duplicate or stale epoch: stop the flood
			}
			// Newer epoch of a reused ID: the fresh record replaces
			// the old one and re-propagates from scratch.
			d.remove(prev)
		}
		rec = compileSub(sub.Clone(), nil)
		rec.seq = sub.Seq
		rec.sentTo = make(map[topology.NodeID]bool)
		d.add(rec)
	} else {
		// Locally originated: Subscribe already recorded it. The epoch
		// must match — under a concurrent re-subscribe of the same ID
		// the newest registration owns it, and sending this (older)
		// payload while charging the newer record's sentTo would leave
		// stale filters at the skipped neighbors forever.
		rec = b.idx.locals.find(sub.ID)
		if rec == nil || rec.seq != sub.Seq {
			b.mu.Unlock()
			return // unsubscribed or superseded since Subscribe
		}
	}
	targets := make([]topology.NodeID, 0, len(b.neighbors))
	for _, n := range b.neighbors {
		if n == from || rec.sentTo[n] {
			continue
		}
		if !b.advertisesAny(n, sub.Streams) {
			continue
		}
		// Covering suppression: a DIFFERENT subscription covering this
		// one that was actually propagated to n already pulls a
		// superset of its traffic toward n, so this one need not be
		// sent there. Suppression is gated on the covering record's
		// own sentTo — a subscription recorded before the relevant
		// adverts arrived was sent nowhere and guarantees nothing.
		if b.coveredByLocalToward(n, sub) || b.coveredExcept(n, sub) {
			continue
		}
		rec.sentTo[n] = true
		targets = append(targets, n)
	}
	b.mu.Unlock()
	for _, n := range targets {
		b.net.CountControl(b.Node, n, subSize(sub))
		b.net.Peer(n).PropagateFrom(sub, b.Node)
	}
}

// coveredByLocalToward reports whether a different local client
// subscription that was actually propagated to neighbor n covers sub.
func (b *Broker) coveredByLocalToward(n topology.NodeID, sub *Subscription) bool {
	cands := b.idx.locals.coverCandidates(sub)
	if b.linearMatch {
		cands = b.idx.locals.subs
	}
	for _, c := range cands {
		if c.sentTo[n] && c.sub.ID != sub.ID && c.sub.Covers(sub) {
			return true
		}
	}
	return false
}

// coveredExcept reports whether a different subscription recorded from any
// direction other than n, and actually propagated to n, covers sub.
func (b *Broker) coveredExcept(n topology.NodeID, sub *Subscription) bool {
	for dir, d := range b.idx.dirs {
		if dir == n {
			continue
		}
		cands := d.coverCandidates(sub)
		if b.linearMatch {
			cands = d.subs
		}
		for _, c := range cands {
			if c.sentTo[n] && c.sub.ID != sub.ID && c.sub.Covers(sub) {
				return true
			}
		}
	}
	return false
}

func (b *Broker) advertisesAny(neighbor topology.NodeID, streams []string) bool {
	set, ok := b.adverts[neighbor]
	if !ok {
		return false
	}
	for _, s := range streams {
		if set[s] {
			return true
		}
	}
	return false
}

// Publish injects a tuple produced by this broker's clients and routes it
// through the overlay.
func (b *Broker) Publish(t stream.Tuple) {
	b.route(t, -1)
}

// delivery is one matched local subscription, captured under the lock and
// invoked after releasing it.
type delivery struct {
	h    Handler
	sub  *Subscription
	keep map[string]bool // projection set; nil = all attributes
}

// hop is one forwarding decision toward a neighbor.
type hop struct {
	to    topology.NodeID
	attrs map[string]bool // nil = all
}

// route delivers the tuple locally and forwards it once per interested
// neighbor, projecting the payload down to the union of downstream
// attribute interests (early projection, §2). Matching runs on the inverted
// index (matchIndexed) or on the retained linear reference (matchLinear);
// the two produce identical decisions.
func (b *Broker) route(t stream.Tuple, from topology.NodeID) {
	b.mu.Lock()
	var locals []delivery
	var hops []hop
	if b.linearMatch {
		locals, hops = b.matchLinear(t, from)
	} else {
		locals, hops = b.matchIndexed(t, from)
	}
	b.mu.Unlock()

	// Local deliveries run first, in subscription-registration order,
	// outside the lock so handlers are free to call back into the broker.
	// A subscription that keeps every attribute gets its own copy of the
	// attribute map so a handler mutating its tuple cannot corrupt the
	// forwarded copies or a later handler's view.
	for _, d := range locals {
		pt := projectAttrs(t, d.keep)
		if d.keep == nil {
			pt.Attrs = make(map[string]stream.Value, len(t.Attrs))
			for a, v := range t.Attrs {
				pt.Attrs[a] = v
			}
		}
		d.h(d.sub, pt)
	}
	for _, h := range hops {
		fwd := projectAttrs(t, h.attrs)
		b.net.CountData(b.Node, h.to, fwd.Size)
		b.net.Peer(h.to).RouteFrom(fwd, b.Node)
	}
}

// matchLinear is the reference matcher: every local subscription and every
// recorded subscription of each outgoing direction is tested against the
// tuple with the uncompiled Subscription.Matches walk. Retained for the
// equivalence tests and the pre-index baseline.
func (b *Broker) matchLinear(t stream.Tuple, from topology.NodeID) ([]delivery, []hop) {
	var locals []delivery
	for _, c := range b.idx.locals.subs {
		if c.sub.Matches(t) && c.handler != nil {
			locals = append(locals, delivery{h: c.handler, sub: c.sub, keep: keepSet(c.sub.Attrs)})
		}
	}
	var hops []hop
	for _, n := range b.neighbors {
		if n == from {
			continue
		}
		d, ok := b.idx.dirs[n]
		if !ok {
			continue
		}
		var wanted map[string]bool
		interested := false
		all := false
		for _, c := range d.subs {
			if !c.sub.Matches(t) {
				continue
			}
			interested = true
			if c.sub.Attrs == nil {
				all = true
				break
			}
			if wanted == nil {
				wanted = make(map[string]bool)
			}
			for _, a := range c.sub.Attrs {
				wanted[a] = true
			}
		}
		if !interested {
			continue
		}
		if all {
			wanted = nil
		}
		hops = append(hops, hop{to: n, attrs: wanted})
	}
	return locals, hops
}

// matchIndexed matches via the inverted index: only the posting list of the
// tuple's stream is consulted per direction, each candidate evaluates its
// compiled filter groups, and when every candidate matches, the forwarding
// projection is the direction's precomputed per-stream union instead of a
// per-tuple rebuild.
func (b *Broker) matchIndexed(t stream.Tuple, from topology.NodeID) ([]delivery, []hop) {
	var locals []delivery
	for _, c := range b.idx.locals.byStream[t.Stream] {
		if c.handler != nil && c.matches(t) {
			locals = append(locals, delivery{h: c.handler, sub: c.sub, keep: c.keep})
		}
	}
	var hops []hop
	for _, n := range b.neighbors {
		if n == from {
			continue
		}
		d, ok := b.idx.dirs[n]
		if !ok {
			continue
		}
		cands := d.byStream[t.Stream]
		if len(cands) == 0 {
			continue
		}
		matched := b.matchScratch[:0]
		all := false
		for _, c := range cands {
			if !c.matches(t) {
				continue
			}
			if c.keep == nil {
				all = true
				break
			}
			matched = append(matched, c)
		}
		b.matchScratch = matched // retain grown capacity for the next tuple
		var wanted map[string]bool
		switch {
		case all:
			wanted = nil
		case len(matched) == 0:
			continue // not interested
		case len(matched) == len(cands):
			// Every candidate matched, and none keeps all attributes
			// (such a candidate would have matched too): the
			// incrementally maintained union IS the per-tuple union.
			// The map is immutable (copy-on-write on subscribe), so
			// handing it out is safe.
			wanted = d.union[t.Stream].keep
		default:
			wanted = make(map[string]bool)
			for _, c := range matched {
				for a := range c.keep {
					wanted[a] = true
				}
			}
		}
		hops = append(hops, hop{to: n, attrs: wanted})
	}
	return locals, hops
}

// keepSet converts an attribute projection list to the lookup-set form used
// by projectAttrs (nil stays nil = keep all).
func keepSet(attrs []string) map[string]bool {
	if attrs == nil {
		return nil
	}
	keep := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		keep[a] = true
	}
	return keep
}

func projectAttrs(t stream.Tuple, keep map[string]bool) stream.Tuple {
	if keep == nil {
		return t
	}
	out := stream.Tuple{Stream: t.Stream, Timestamp: t.Timestamp, Attrs: make(map[string]stream.Value, len(keep))}
	for a := range keep {
		if v, ok := t.Attrs[a]; ok {
			out.Attrs[a] = v
		}
	}
	// Size scales with retained attributes (8 bytes per value plus a
	// fixed header), mirroring the early-projection bandwidth savings.
	out.Size = tupleSize(len(out.Attrs))
	return out
}

func tupleSize(attrs int) int { return 16 + 8*attrs }

// AddNeighbor registers an overlay neighbor.
func (b *Broker) AddNeighbor(n topology.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, x := range b.neighbors {
		if x == n {
			return
		}
	}
	b.neighbors = append(b.neighbors, n)
}

// Neighbors returns the broker's overlay neighbors sorted by node ID.
func (b *Broker) Neighbors() []topology.NodeID {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := append([]topology.NodeID(nil), b.neighbors...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RoutingStateSize reports the broker's current routing-table population:
// remote counts the subscriptions recorded per neighbor direction, local
// the client subscriptions. Both drop to zero when every subscription in
// the overlay has been withdrawn — the retraction-completeness invariant
// tests assert.
func (b *Broker) RoutingStateSize() (remote, local int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, d := range b.idx.dirs {
		remote += len(d.subs)
	}
	return remote, len(b.idx.locals.subs)
}

// syncAdvertsTo replays every stream this broker knows to be advertised —
// its own and those learned from other directions — toward one neighbor, in
// sorted order. Used when a broker joins the overlay dynamically, so the
// newcomer learns the full advert state of the network it attached to.
func (b *Broker) syncAdvertsTo(n topology.NodeID) {
	b.mu.Lock()
	known := make(map[string]bool, len(b.ownAdverts))
	for s := range b.ownAdverts {
		known[s] = true
	}
	for d, set := range b.adverts {
		if d == n {
			continue
		}
		for s := range set {
			known[s] = true
		}
	}
	streams := make([]string, 0, len(known))
	for s := range known {
		streams = append(streams, s)
	}
	sort.Strings(streams)
	b.mu.Unlock()
	for _, s := range streams {
		b.net.CountControl(b.Node, n, advertSize)
		b.net.Peer(n).AdvertFrom(b.Node, s)
	}
}

// sortedDirs returns the direction keys in ascending neighbor order, so
// replay and un-suppression sweeps are deterministic.
func sortedDirs(dirs map[topology.NodeID]*dirIndex) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(dirs))
	for d := range dirs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedNodeSet(set map[topology.NodeID]bool) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

const (
	advertSize  = 32
	retractSize = 40 // ID + epoch, no filter payload
)

func subSize(s *Subscription) int {
	return 32 + 16*len(s.Streams) + 8*len(s.Attrs) + 24*len(s.Filters)
}
