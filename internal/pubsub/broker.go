package pubsub

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
)

// Handler consumes tuples delivered to a local subscriber. The delivered
// tuple is owned by the broker's subscribers collectively: full-tuple
// (nil-projection) deliveries of one routed message share one attribute
// map, so handlers must treat the tuple as read-only — a handler that needs
// to mutate attributes copies them first. Retaining the tuple (e.g. in a
// query window) is fine.
type Handler func(sub *Subscription, t stream.Tuple)

// Peer is the broker-to-broker protocol: the five message kinds that cross
// overlay links. In-process networks implement it with direct calls;
// transport adapters (e.g. the TCP transport) implement it over the wire.
type Peer interface {
	// AdvertFrom delivers a stream advertisement arriving from a
	// neighbor. origin is the broker whose clients publish the stream and
	// seq the epoch the origin stamped the advertisement with; together
	// they identify the advertisement across the overlay, so a later
	// withdrawal (UnadvertFrom) removes exactly this advert and a
	// duplicate flood of the same epoch is a no-op.
	AdvertFrom(from topology.NodeID, streamName string, origin topology.NodeID, seq uint64)
	// UnadvertFrom delivers an advert withdrawal arriving from a
	// neighbor: the advertisement of streamName by origin (at epoch seq
	// or older) is withdrawn from the direction of 'from'. Brokers prune
	// the per-direction advert entry and every piece of routing state the
	// advert pulled in.
	UnadvertFrom(from topology.NodeID, streamName string, origin topology.NodeID, seq uint64)
	// PropagateFrom delivers a subscription arriving from a neighbor.
	PropagateFrom(sub *Subscription, from topology.NodeID)
	// RetractFrom delivers an unsubscription arriving from a neighbor:
	// the subscription with the given ID (at sequence number seq or
	// older) is withdrawn from the direction of 'from'.
	RetractFrom(from topology.NodeID, id string, seq uint64)
	// RouteFrom delivers a data tuple arriving from a neighbor.
	RouteFrom(t stream.Tuple, from topology.NodeID)
}

// Fabric connects a broker to its neighbors and accounts traffic. It is the
// seam between the routing logic and the deployment substrate.
type Fabric interface {
	// Peer returns the protocol endpoint of a neighbor broker.
	Peer(n topology.NodeID) Peer
	// CountControl and CountData account per-link traffic in bytes.
	CountControl(from, to topology.NodeID, size int)
	CountData(from, to topology.NodeID, size int)
}

// Flusher is the optional flush hook of fabrics whose Peer sends are
// asynchronous (the TCP transport's per-peer send pipelines). Flush blocks
// until every protocol message handed to the fabric before the call has
// left the local node — been written to the wire, or dropped by the
// fabric's overflow/failure policy. It promises nothing about the REMOTE
// end having processed the messages, so drain oracles flush first and then
// poll the receiving brokers. In-process fabrics deliver synchronously and
// need not implement it.
type Flusher interface {
	Flush()
}

// AdvertFrom, UnadvertFrom, PropagateFrom, RetractFrom and RouteFrom make
// *Broker itself a Peer, so in-process fabrics hand brokers out directly.
func (b *Broker) AdvertFrom(from topology.NodeID, streamName string, origin topology.NodeID, seq uint64) {
	b.advertFrom(from, streamName, origin, seq)
}

// UnadvertFrom implements Peer.
func (b *Broker) UnadvertFrom(from topology.NodeID, streamName string, origin topology.NodeID, seq uint64) {
	b.unadvertFrom(from, streamName, origin, seq)
}

// PropagateFrom implements Peer.
func (b *Broker) PropagateFrom(sub *Subscription, from topology.NodeID) { b.propagate(sub, from) }

// RetractFrom implements Peer.
func (b *Broker) RetractFrom(from topology.NodeID, id string, seq uint64) {
	b.retractFrom(from, id, seq)
}

// RouteFrom implements Peer.
func (b *Broker) RouteFrom(t stream.Tuple, from topology.NodeID) { b.route(t, from) }

var _ Peer = (*Broker)(nil)

// Broker is one overlay node of the Pub/Sub network. Brokers are wired into
// an acyclic overlay by Network; all routing state is per-neighbor:
//
//   - adverts[n] holds the advertisements (stream, publishing origin, epoch)
//     learned from direction n, guiding subscription propagation (Fig 2(a));
//   - idx.dirs[n] holds the subscriptions received from direction n, i.e.
//     the interests living "behind" that neighbor (Fig 2(c)); a message is
//     forwarded to n only when one of them matches (Fig 2(d));
//   - idx.locals holds this broker's client subscriptions.
//
// Routing state is dynamic (the lifecycle subsystem): every recorded
// subscription tracks the neighbors it was actually propagated to (sentTo)
// and the epoch it was issued in (seq). When a new advert direction is
// learned, the broker replays the matching posting list toward it
// (re-propagation), so subscribe-before-advertise orderings route
// correctly; when a subscription is withdrawn, a retraction follows the
// sentTo edges removing the remote records and un-suppressing any
// subscription the removed one was covering; when an advertisement is
// withdrawn (Unadvertise), the withdrawal floods the advert paths and each
// broker locally prunes the advert entry plus the subscription state it
// alone justified. Sequence numbers make duplicate floods, stale
// retractions and stale withdrawals no-ops.
type Broker struct {
	Node topology.NodeID

	// cosmoslint:guards — no Peer send, transport call or Handler
	// callback may run while mu is held (lock-mutate-unlock-send).
	mu        sync.Mutex
	net       Fabric
	neighbors []topology.NodeID
	// adverts[n][stream] holds the advertising origins (and their advert
	// epochs) learned from direction n. The per-origin identity is what
	// makes teardown exact: a stream advertised by two publishers behind
	// the same neighbor stays routable when only one of them withdraws.
	// The stream entry is deleted when its last origin withdraws, so an
	// idle broker's advert tables drain to empty.
	adverts map[topology.NodeID]map[string]map[topology.NodeID]uint64
	// unadvTomb holds tombstones for withdrawals that arrived before the
	// advert they withdraw (per direction, keyed by stream+origin) —
	// control sends happen outside broker locks, so an UnadvertFrom can
	// overtake the AdvertFrom it chases on the same link. The tombstone
	// annihilates the late-arriving advert (neither is forwarded); a
	// genuinely newer advert epoch supersedes it.
	unadvTomb map[topology.NodeID]map[advKey]uint64
	// ownAdverts maps the streams published by this broker's clients to
	// the epoch of their current advertisement. Re-advertising a live
	// stream keeps its epoch (the re-flood is duplicate-suppressed
	// downstream); advertising after an Unadvertise stamps a fresh one.
	ownAdverts map[string]uint64

	// idx is the authoritative routing state: one dirIndex per neighbor
	// direction plus one for local client subscriptions, maintained
	// incrementally under mu (see index.go).
	idx *matchIndex
	// linearMatch routes and suppresses with the retained linear
	// reference matcher instead of the posting-list/compiled-filter
	// index. The two are equivalent bit-for-bit (equivalence tests); the
	// linear path is the reference implementation and the pre-index
	// benchmark baseline.
	linearMatch bool
	// noPrune disables attribute-level candidate pruning (attrindex.go),
	// so matching always scans the full per-stream posting list — the
	// first-generation indexed matcher, kept selectable as the
	// pruned-path baseline for benchmarks.
	noPrune bool
	// snap is the published matching-state epoch the lock-free route path
	// reads (snapshot.go, CONCURRENCY.md): rebuilt incrementally and
	// swapped by publishLocked at the end of every mutating critical
	// section. nil routes through the locked reference path — before the
	// first publish, in linear mode, and when snapOff is set.
	snap atomic.Pointer[matchSnapshot]
	// snapAll forces the next publish to rebuild the snapshot from
	// scratch instead of patching dirty streams — set when the neighbor
	// set or a matching mode changes (state the dirty marks don't cover).
	snapAll bool
	// snapOff disables snapshot routing (SetSnapshotRouting(false)): the
	// published epoch is dropped and every route takes the locked
	// sequential path — the debugging/reference mode, like linearMatch.
	snapOff bool
	// coverDelta enables covering-delta re-propagation (SetCoverDelta):
	// a replay burst toward a newly learned advert direction sends only
	// its maximal subscriptions under the covering relation, suppressing
	// the rest against the covers actually sent — one merged cover
	// instead of n covered subscriptions. Off by default: the delta mode
	// trades the reference traffic shape (each record propagated unless
	// an EARLIER-sent one covers it) for superlinearly less control
	// flood on cover-chain workloads, so the from-scratch-rebuild
	// equivalence oracles run with it off.
	coverDelta bool
	// seq numbers the subscription epochs originated by this broker's
	// clients: each Subscribe stamps the next value, so a re-subscribe
	// of a reused ID supersedes the records (and outruns stale
	// retractions) of the previous incarnation everywhere.
	seq uint64
	// recCount numbers every record (local or remote) this broker
	// installs, giving compiledSub.regSeq its broker-wide registration
	// order.
	recCount uint64

	// log holds the broker's structured logger as a loggerBox (observe.go);
	// the zero Value means logging.Nop(). Read with one atomic load per
	// logging site and invoked only outside mu.
	log atomic.Value
}

// NewBroker creates a broker wired to a fabric. Neighbors are added with
// AddNeighbor; in-process networks do this during overlay construction.
func NewBroker(net Fabric, node topology.NodeID) *Broker {
	return &Broker{
		Node:       node,
		net:        net,
		adverts:    make(map[topology.NodeID]map[string]map[topology.NodeID]uint64),
		unadvTomb:  make(map[topology.NodeID]map[advKey]uint64),
		ownAdverts: make(map[string]uint64),
		idx:        newMatchIndex(),
	}
}

// advKey identifies one advertisement: the stream name plus the broker whose
// clients publish it.
type advKey struct {
	stream string
	origin topology.NodeID
}

// SetLinearMatching switches the broker between the inverted matching index
// and the retained linear reference matcher. Both produce identical
// forwarding decisions, deliveries and traffic; the linear path exists as
// the reference implementation and baseline for benchmarks.
func (b *Broker) SetLinearMatching(on bool) {
	b.mu.Lock()
	b.linearMatch = on
	b.snapAll = true
	b.publishLocked()
	b.mu.Unlock()
}

// SetAttrPruning switches attribute-level candidate pruning on the indexed
// matching path (on by default). Pruned and unpruned matching produce
// identical decisions — the unpruned path is retained as the baseline the
// selectivity benchmarks compare against.
func (b *Broker) SetAttrPruning(on bool) {
	b.mu.Lock()
	b.noPrune = !on
	b.snapAll = true
	b.publishLocked()
	b.mu.Unlock()
}

// SetSnapshotRouting switches the lock-free snapshot route path (on by
// default). With it off every route serializes under the broker mutex
// against the live index — the sequential reference mode, useful when
// debugging a suspected snapshot-staleness or publish-ordering problem
// (decisions then always reflect the index at the instant of the route).
// Both modes produce identical decisions in any single-threaded execution;
// see CONCURRENCY.md for what concurrent executions may reorder.
func (b *Broker) SetSnapshotRouting(on bool) {
	b.mu.Lock()
	b.snapOff = !on
	b.snapAll = true
	b.publishLocked()
	b.mu.Unlock()
}

// SetCoverDelta switches covering-delta re-propagation (off by default):
// when a replay burst re-propagates recorded subscriptions toward a newly
// learned advert direction, only the burst's maximal subscriptions under
// the covering relation are sent; the covered remainder is suppressed
// against the sent covers through the ordinary covered-by edges, so
// retraction un-suppression and the lifecycle fixpoint invariant hold
// unchanged. Deliveries are identical in both modes (a cover admits every
// message the covered subscription admits); what changes is control-flood
// volume — one merged cover crosses the link instead of n covered
// subscriptions.
func (b *Broker) SetCoverDelta(on bool) {
	b.mu.Lock()
	b.coverDelta = on
	b.mu.Unlock()
}

// Advertise announces that this broker's clients will publish the given
// stream. The advertisement floods the overlay so every broker learns the
// direction toward the publisher; brokers holding subscriptions on the
// stream re-propagate them toward it as the flood passes (advertFrom).
//
// Advert traffic is accounted at the SEND side, like subscription
// propagation and data forwarding: every advert that crosses a link is
// charged by its sender, including re-advertisements the receiver will
// duplicate-suppress.
func (b *Broker) Advertise(streamName string) {
	b.mu.Lock()
	seq, live := b.ownAdverts[streamName]
	if !live {
		// A fresh advertisement (first ever, or after an Unadvertise)
		// opens a new epoch; re-advertising a live stream re-floods the
		// SAME epoch, so downstream duplicate suppression stops it at
		// the first hop exactly as before.
		b.seq++
		seq = b.seq
		b.ownAdverts[streamName] = seq
	}
	neighbors := append([]topology.NodeID(nil), b.neighbors...)
	b.mu.Unlock()
	cAdvertises.Inc()
	for _, n := range neighbors {
		b.net.CountControl(b.Node, n, advertSize)
		b.net.Peer(n).AdvertFrom(b.Node, streamName, b.Node, seq)
	}
}

// Unadvertise withdraws an advertisement published by this broker's clients:
// the withdrawal floods along the advert paths, and every broker — starting
// with this one — prunes the per-direction advert entry plus the routing
// state the advert pulled in (recorded subscriptions whose only
// justification it was, the posting-list entries, filter intervals,
// projection unions and prune trees they fed, and the propagation marks
// toward the withdrawn direction), re-deciding covered-by suppression
// exactly as unsubscribe retraction does. Withdrawing a stream this broker
// never advertised — including a second Unadvertise — is a no-op.
func (b *Broker) Unadvertise(streamName string) {
	b.mu.Lock()
	seq, live := b.ownAdverts[streamName]
	if !live {
		b.mu.Unlock()
		return // unknown or already withdrawn: explicit no-op
	}
	delete(b.ownAdverts, streamName)
	// Ensure the withdrawal epoch outruns the advert it withdraws, so a
	// subsequent re-advertise (with a yet-newer epoch) is not mistaken
	// for the withdrawn one.
	if b.seq < seq {
		b.seq = seq
	}
	neighbors := append([]topology.NodeID(nil), b.neighbors...)
	// At the origin only the own-advert justification changed: records of
	// any direction may have been pulled here solely by it (rule b); no
	// per-direction advert entry changed, so no sentTo pruning (rule a).
	resend := b.pruneAdvertLocked(streamName, -1, false)
	b.publishLocked()
	b.mu.Unlock()
	cUnadvertises.Inc()
	for _, n := range neighbors {
		b.net.CountControl(b.Node, n, advertSize)
		b.net.Peer(n).UnadvertFrom(b.Node, streamName, b.Node, seq)
	}
	b.sendPends(resend)
}

func (b *Broker) advertFrom(from topology.NodeID, streamName string, origin topology.NodeID, seq uint64) {
	b.mu.Lock()
	if !b.neighborLocked(from) {
		// A message from a direction that is not (or no longer) an overlay
		// neighbor: the link was torn down after this advert was sent.
		// Recording it would create per-direction state no withdrawal can
		// ever reach — drop it. A rejoining broker resyncs with fresh
		// floods over its new link.
		b.mu.Unlock()
		return
	}
	key := advKey{stream: streamName, origin: origin}
	if tombs := b.unadvTomb[from]; tombs != nil {
		if ts, ok := tombs[key]; ok {
			if seq <= ts {
				// The withdrawal that overtook this advert annihilates it
				// (neither flood is forwarded — downstream saw neither).
				// The tombstone is KEPT, not consumed: on a link that can
				// duplicate (chaos, retransmitting transports) another
				// stale copy may still be in flight, and consuming the
				// tombstone on the first one would let the second
				// resurrect the withdrawn stream. Only a genuinely newer
				// epoch clears it; a quiesced overlay can drop stragglers
				// wholesale (Network.Quiesce).
				b.mu.Unlock()
				return
			}
			// Newer advert epoch: supersedes the stale tombstone.
			delete(tombs, key)
			if len(tombs) == 0 {
				delete(b.unadvTomb, from)
			}
		}
	}
	set, ok := b.adverts[from]
	if !ok {
		set = make(map[string]map[topology.NodeID]uint64)
		b.adverts[from] = set
	}
	origins := set[streamName]
	if cur, dup := origins[origin]; dup && cur >= seq {
		b.mu.Unlock()
		return // already known at this epoch (or newer); stop the flood
	}
	newStream := len(origins) == 0
	if origins == nil {
		origins = make(map[topology.NodeID]uint64)
		set[streamName] = origins
	}
	origins[origin] = seq
	neighbors := append([]topology.NodeID(nil), b.neighbors...)
	var resend []*Subscription
	if newStream {
		resend = b.replayLocked(from, streamName)
	}
	b.mu.Unlock()
	for _, n := range neighbors {
		if n != from {
			b.net.CountControl(b.Node, n, advertSize)
			b.net.Peer(n).AdvertFrom(b.Node, streamName, origin, seq)
		}
	}
	// Re-propagation epoch: replay the recorded subscriptions on the
	// newly learned stream toward the advertiser. Each send was already
	// marked in the record's sentTo under the lock, so a concurrent
	// replay cannot duplicate it. A second origin of an already-known
	// stream changes no propagation decision, so nothing replays.
	for _, sub := range resend {
		b.net.CountControl(b.Node, from, subSize(sub))
		b.net.Peer(from).PropagateFrom(sub, b.Node)
	}
}

// unadvertFrom handles an advert withdrawal arriving from a neighbor. The
// withdrawal is forwarded along the flood (every broker recorded the advert,
// so every broker must see it), the (direction, stream, origin) advert entry
// is removed, and — when that was the stream's last origin behind 'from' —
// the routing state the advert justified is pruned: propagation marks toward
// 'from' whose streams are no longer advertised there (the mirror of the
// neighbor dropping its record), and recorded subscriptions of every other
// direction left with no advertised stream at all (the mirror of the
// upstream neighbor clearing its mark toward us). A withdrawal for an
// unknown advert leaves a tombstone (it overtook its advert); one older than
// the recorded epoch is a stale no-op.
func (b *Broker) unadvertFrom(from topology.NodeID, streamName string, origin topology.NodeID, seq uint64) {
	b.mu.Lock()
	if !b.neighborLocked(from) {
		b.mu.Unlock()
		return // dead-link straggler (see advertFrom)
	}
	set := b.adverts[from]
	origins := set[streamName]
	cur, ok := origins[origin]
	if !ok {
		tombs := b.unadvTomb[from]
		if tombs == nil {
			tombs = make(map[advKey]uint64)
			b.unadvTomb[from] = tombs
		}
		key := advKey{stream: streamName, origin: origin}
		if ts, seen := tombs[key]; !seen || seq > ts {
			tombs[key] = seq
		}
		b.mu.Unlock()
		return
	}
	if cur > seq {
		b.mu.Unlock()
		return // stale withdrawal: a newer advert epoch superseded it
	}
	if cur < seq {
		// The withdrawal withdraws an advert epoch NEWER than the one
		// recorded — that advert is still in flight on this link
		// (reordered sends). The recorded older epoch dies with it, and
		// a tombstone annihilates the chased advert when it lands;
		// without it the late advert would resurrect a fully withdrawn
		// stream.
		tombs := b.unadvTomb[from]
		if tombs == nil {
			tombs = make(map[advKey]uint64)
			b.unadvTomb[from] = tombs
		}
		key := advKey{stream: streamName, origin: origin}
		if ts, seen := tombs[key]; !seen || seq > ts {
			tombs[key] = seq
		}
	}
	delete(origins, origin)
	lastOrigin := len(origins) == 0
	if lastOrigin {
		delete(set, streamName)
		if len(set) == 0 {
			delete(b.adverts, from)
		}
	}
	neighbors := append([]topology.NodeID(nil), b.neighbors...)
	var resend []pendSend
	if lastOrigin {
		resend = b.pruneAdvertLocked(streamName, from, true)
	}
	b.publishLocked()
	b.mu.Unlock()
	for _, n := range neighbors {
		if n != from {
			b.net.CountControl(b.Node, n, advertSize)
			b.net.Peer(n).UnadvertFrom(b.Node, streamName, origin, seq)
		}
	}
	b.sendPends(resend)
}

// pruneAdvertLocked removes the routing state stranded by the disappearance
// of streamName's advertisement — via direction withdrawnDir (>= 0, the
// flood-processing case) or via this broker's own advert (withdrawnDir < 0,
// the origin case). Two symmetric rules, each broker applying them locally
// as the withdrawal flood passes (state at neighbors is pruned by THEIR
// rules — the mirror conditions coincide, so no retraction messages are
// needed):
//
//   - rule (a), only when a direction entry changed: every record listing
//     the stream that was propagated toward withdrawnDir and has no
//     remaining advertised stream there loses its sentTo mark — the
//     neighbor is dropping its mirrored record under rule (b);
//   - rule (b): every record of another direction listing the stream whose
//     streams are no longer advertised anywhere else (own adverts and the
//     remaining directions) is removed outright — the upstream neighbor is
//     clearing its sentTo mark toward us under rule (a), and no tuple it
//     could match can ever arrive here.
//
// Both rules release covered-by suppression the affected records provided;
// the freed decisions are re-decided in canonical sweep order exactly as
// unsubscribe retraction re-decides them, and the resulting re-propagations
// are returned for delivery outside the lock. Caller holds b.mu with the
// advert tables already updated.
func (b *Broker) pruneAdvertLocked(streamName string, withdrawnDir topology.NodeID, ruleA bool) []pendSend {
	var edges []covEdge
	var supStreams map[string]bool         // linear-reference sweep only
	var targetSet map[topology.NodeID]bool // linear-reference sweep only
	noteSup := func(c *compiledSub) {
		if !b.linearMatch {
			return
		}
		if supStreams == nil {
			supStreams = make(map[string]bool)
			targetSet = make(map[topology.NodeID]bool)
		}
		for _, s := range c.sub.Streams {
			supStreams[s] = true
		}
	}
	if ruleA {
		sweep := func(d *dirIndex) {
			for _, c := range d.byStream[streamName] {
				if !c.sentTo[withdrawnDir] || b.advertisesAny(withdrawnDir, c.sub.Streams) {
					continue
				}
				delete(c.sentTo, withdrawnDir)
				// Suppression this record provided toward the withdrawn
				// direction is no longer backed by a propagation:
				// release exactly those edges for re-decision.
				for e := range c.suppresses {
					if e.to != withdrawnDir {
						continue
					}
					delete(c.suppresses, e)
					delete(e.rec.coveredBy, e.to)
					//lint:maporder freed edges are put into canonical sweep order by sortCovEdges before any re-decision
					edges = append(edges, e)
				}
				if len(c.suppresses) == 0 {
					c.suppresses = nil
				}
				noteSup(c)
			}
		}
		sweep(b.idx.locals)
		for _, d := range b.idx.dirOrder {
			sweep(b.idx.dirs[d])
		}
		if b.linearMatch && len(edges) > 0 && targetSet != nil {
			targetSet[withdrawnDir] = true
		}
	}
	// rule (b): orphaned records, per direction in ascending order. The
	// orphans are collected BEFORE any removal: d.remove replaces the
	// d.byStream posting list (copy-on-remove, see index.go), so a scan
	// interleaved with removals would walk a stale alias and re-decide
	// against records already gone.
	for _, a := range b.idx.dirOrder {
		if a == withdrawnDir {
			// The withdrawn direction's own records are justified by
			// the OTHER sides' adverts, which did not change.
			continue
		}
		d := b.idx.dirs[a]
		list := d.byStream[streamName]
		if len(list) == 0 {
			continue
		}
		orphans := make([]*compiledSub, 0, len(list))
		for _, c := range list {
			if !b.advertisedExceptAny(a, c.sub.Streams) {
				orphans = append(orphans, c)
			}
		}
		for _, c := range orphans {
			d.remove(c)
			edges = append(edges, detachCovEdges(c)...)
			noteSup(c)
			if b.linearMatch {
				for n := range c.sentTo {
					targetSet[n] = true
				}
			}
		}
	}
	if len(edges) == 0 {
		return nil
	}
	sortCovEdges(edges)
	var targets []topology.NodeID
	if b.linearMatch {
		// The reference sweep visits every record sharing a stream with
		// an affected suppressor, toward every neighbor a freed decision
		// could concern; decisions not freed are no-ops (sent, still
		// covered, or not advertised), so the outcome matches the
		// edge-driven pass bit for bit.
		for _, e := range edges {
			if targetSet == nil {
				targetSet = make(map[topology.NodeID]bool)
			}
			targetSet[e.to] = true
		}
		targets = sortedNodeSet(targetSet)
	}
	return b.unsuppressLocked(supStreams, targets, edges)
}

// sendPends delivers re-propagations decided under the lock.
func (b *Broker) sendPends(pends []pendSend) {
	for _, s := range pends {
		b.net.CountControl(b.Node, s.to, subSize(s.sub))
		b.net.Peer(s.to).PropagateFrom(s.sub, b.Node)
	}
}

// advertisedExceptAny reports whether any of the streams is advertised by
// this broker's own clients or from any direction other than 'exclude' —
// i.e. whether a neighbor in direction 'exclude' still has a reason to keep
// a subscription listing these streams recorded here. This is exactly the
// advert set the broker announces toward 'exclude' (syncAdvertsTo), the
// mirror of the neighbor's advertisesAny check.
func (b *Broker) advertisedExceptAny(exclude topology.NodeID, streams []string) bool {
	for _, s := range streams {
		if _, ok := b.ownAdverts[s]; ok {
			return true
		}
	}
	for d, set := range b.adverts {
		if d == exclude {
			continue
		}
		for _, s := range streams {
			if len(set[s]) > 0 {
				return true
			}
		}
	}
	return false
}

// replayLocked collects the subscriptions to re-propagate toward 'from'
// after learning that it advertises streamName: every recorded subscription
// listing the stream (from the per-direction posting lists) that was not
// already sent that way and is not covered by one that was. Locals replay
// first in registration order, then each other direction in ascending
// neighbor order — the same order a from-scratch network would have
// propagated them in. Caller holds b.mu.
func (b *Broker) replayLocked(from topology.NodeID, streamName string) []*Subscription {
	var cands []*compiledSub
	collect := func(c *compiledSub) {
		if c.sentTo[from] || c.coveredBy[from] != nil {
			return
		}
		cands = append(cands, c)
	}
	for _, c := range b.idx.locals.byStream[streamName] {
		collect(c)
	}
	for _, d := range b.idx.dirOrder {
		if d == from {
			continue
		}
		for _, c := range b.idx.dirs[d].byStream[streamName] {
			collect(c)
		}
	}
	if b.coverDelta {
		return b.replayDeltaLocked(from, cands)
	}
	var out []*Subscription
	for _, c := range cands {
		// coverFor sees the sentTo marks set earlier in this loop, so
		// in-burst covering works exactly as the incremental sweep did:
		// an EARLIER candidate already marked sent can cover a later one.
		if cov := b.coverFor(from, c.sub, query.SelectionIntervalsByAttr(c.sub.Filters)); cov != nil {
			suppressEdge(cov, c, from)
			continue
		}
		c.sentTo[from] = true
		out = append(out, c.sub)
	}
	return out
}

// maxDeltaScan caps the kept-maximal list the delta pass compares new
// candidates against. Cover-chain workloads (the ones the delta mode
// exists for) keep the list short; on a pathological burst of thousands of
// mutually non-covering subscriptions the pairwise scan would go
// quadratic, so past the cap new candidates are kept unexamined — the
// result is merely less minimal, never unsound.
const maxDeltaScan = 128

// replayDeltaLocked is the covering-delta replay: of the burst's
// candidates, only the maximal subscriptions under the covering relation
// are sent toward 'from'; every other candidate is suppressed against the
// maximal one that covers it. The reference sweep only suppresses a
// candidate under an EARLIER-sent cover, so a cover chain registered
// narrow-to-wide replays every link of the chain; the delta pass merges the
// burst first and sends one cover, cutting control-flood volume
// superlinearly on such workloads.
//
// The suppression edges recorded here satisfy the covered-by invariant
// (index.go): every suppressor is itself sent (sentTo[from] marked below),
// still recorded, and Covers the suppressed record — the covering relation
// is transitive, so re-pointing the dependents of an evicted keeper at its
// evictor preserves it. Candidates covered by a record sent in an EARLIER
// burst are suppressed against that record, exactly as the reference sweep
// would. Caller holds b.mu.
func (b *Broker) replayDeltaLocked(from topology.NodeID, cands []*compiledSub) []*Subscription {
	ivs := make([]map[string]query.Interval, len(cands))
	for i, c := range cands {
		ivs[i] = query.SelectionIntervalsByAttr(c.sub.Filters)
	}
	// kept holds the indexes of the currently maximal candidates, in
	// canonical order; coverIdx[i] >= 0 names the candidate suppressing
	// candidate i (always a kept member once the pass finishes).
	kept := make([]int, 0, len(cands))
	coverIdx := make([]int, len(cands))
	for i := range coverIdx {
		coverIdx[i] = -1
	}
	for i, c := range cands {
		// A cover actually sent toward 'from' by an earlier burst wins
		// outright — same decision, same edge as the reference sweep.
		// coverIdx stays -1: the candidate is decided and leaves the
		// burst merge entirely.
		if cov := b.coverFor(from, c.sub, ivs[i]); cov != nil {
			suppressEdge(cov, c, from)
			continue
		}
		covered := false
		if len(kept) <= maxDeltaScan {
			for _, k := range kept {
				if cands[k].sub.ID != c.sub.ID && cands[k].sub.CoversPrepared(c.sub, ivs[i]) {
					coverIdx[i] = k
					covered = true
					break
				}
			}
		}
		if covered {
			continue
		}
		// c is maximal so far: evict the keepers it covers, re-pointing
		// their dependents at c (covering is transitive). Two equal
		// subscriptions cover each other; the canonically earlier one is
		// already kept and covers c above, so eviction here is always by
		// a strictly wider candidate.
		if len(kept) <= maxDeltaScan {
			live := kept[:0]
			for _, k := range kept {
				if cands[k].sub.ID != c.sub.ID && c.sub.CoversPrepared(cands[k].sub, ivs[k]) {
					coverIdx[k] = i
					for j := 0; j < i; j++ {
						if coverIdx[j] == k {
							coverIdx[j] = i
						}
					}
				} else {
					live = append(live, k)
				}
			}
			kept = append(live, i)
		} else {
			kept = append(kept, i)
		}
	}
	// Mark the maximal set sent first (the covered-by invariant requires
	// suppressors to carry the sentTo mark), then record the edges.
	out := make([]*Subscription, 0, len(kept))
	for _, k := range kept {
		cands[k].sentTo[from] = true
		out = append(out, cands[k].sub)
	}
	for i, k := range coverIdx {
		if k >= 0 {
			suppressEdge(cands[k], cands[i], from)
		}
	}
	return out
}

// Subscribe registers a local client subscription and propagates it toward
// the advertised publishers, suppressing propagation covered by an earlier
// subscription sent the same way (the p1∪p2 merge point of Fig 3). Streams
// advertised only later are caught up by re-propagation epochs (advertFrom).
func (b *Broker) Subscribe(sub *Subscription, h Handler) error {
	if sub == nil || len(sub.Streams) == 0 {
		return fmt.Errorf("pubsub: empty subscription")
	}
	b.mu.Lock()
	exists := b.idx.locals.find(sub.ID) != nil
	b.mu.Unlock()
	if exists {
		// Re-subscribing a live ID supersedes the old incarnation
		// everywhere (the documented ID contract): retract it first so
		// no broker — including this one — is left holding both.
		b.Unsubscribe(sub.ID)
	}
	b.mu.Lock()
	b.seq++
	sub.Seq = b.seq
	c := compileSub(sub, h)
	c.seq = sub.Seq
	c.srcDir = -1
	b.recCount++
	c.regSeq = b.recCount
	c.sentTo = make(map[topology.NodeID]bool)
	b.idx.locals.add(c)
	b.publishLocked()
	b.mu.Unlock()
	cSubscribes.Inc()
	b.propagate(sub, -1)
	return nil
}

// Unsubscribe withdraws a local client subscription by ID: the local record
// is dropped, a retraction follows the propagation path removing the
// routing state recorded for it at other brokers, and any subscription the
// removed one was covering is re-propagated (un-suppressed) toward the
// neighbors it was suppressed for. Unsubscribing an unknown ID — including
// a second Unsubscribe of the same ID — is a no-op.
func (b *Broker) Unsubscribe(id string) {
	b.mu.Lock()
	removed := b.idx.locals.removeByID(id)
	if len(removed) == 0 {
		b.mu.Unlock()
		return // unknown or already removed: explicit no-op
	}
	targetSet := make(map[topology.NodeID]bool)
	var seq uint64
	var streams map[string]bool // linear-reference sweep only
	var edges []covEdge
	for _, c := range removed {
		for n := range c.sentTo {
			targetSet[n] = true
		}
		if c.seq > seq {
			seq = c.seq
		}
		if b.linearMatch {
			if streams == nil {
				streams = make(map[string]bool)
			}
			for _, s := range c.sub.Streams {
				streams[s] = true
			}
		}
		edges = append(edges, detachCovEdges(c)...)
	}
	targets := sortedNodeSet(targetSet)
	if len(removed) > 1 {
		sortCovEdges(edges)
	}
	resend := b.unsuppressLocked(streams, targets, edges)
	b.publishLocked()
	b.mu.Unlock()
	cUnsubscribes.Inc()
	cRetractionsSent.Add(int64(len(targets)))
	for _, n := range targets {
		b.net.CountControl(b.Node, n, retractSize)
		b.net.Peer(n).RetractFrom(b.Node, id, seq)
	}
	b.sendPends(resend)
}

// retractFrom handles a retraction arriving from a neighbor: the record of
// the subscription is removed, the retraction is forwarded along the
// record's own propagation edges, and covered subscriptions un-suppress. A
// retraction for an unknown ID, a duplicate retraction, or one older than
// the recorded epoch (seq) is a no-op.
func (b *Broker) retractFrom(from topology.NodeID, id string, seq uint64) {
	b.mu.Lock()
	if !b.neighborLocked(from) {
		b.mu.Unlock()
		return // dead-link straggler (see advertFrom)
	}
	d := b.idx.dir(from)
	rec := d.find(id)
	if rec == nil {
		// The retraction overtook the propagation it chases (sends
		// happen outside broker locks): leave a tombstone so the
		// late-arriving record is dropped instead of being installed
		// with no retraction ever coming. Nothing to forward — this
		// broker never recorded, so it never propagated onward.
		if ts, ok := d.retracted[id]; !ok || seq > ts {
			d.retracted[id] = seq
		}
		b.mu.Unlock()
		return
	}
	if rec.seq > seq {
		b.mu.Unlock()
		return // stale retraction: superseded by a newer epoch
	}
	d.remove(rec)
	edges := detachCovEdges(rec)
	targets := sortedNodeSet(rec.sentTo)
	var streams map[string]bool // linear-reference sweep only
	if b.linearMatch {
		streams = make(map[string]bool, len(rec.sub.Streams))
		for _, s := range rec.sub.Streams {
			streams[s] = true
		}
	}
	resend := b.unsuppressLocked(streams, targets, edges)
	b.publishLocked()
	b.mu.Unlock()
	for _, n := range targets {
		b.net.CountControl(b.Node, n, retractSize)
		b.net.Peer(n).RetractFrom(b.Node, id, seq)
	}
	b.sendPends(resend)
}

// pendSend is one subscription re-propagation decided under the lock and
// sent after releasing it.
type pendSend struct {
	to  topology.NodeID
	sub *Subscription
}

// unsuppressLocked re-runs the propagation decision for the subscriptions a
// just-removed record may have been covering. On the indexed path that is
// exactly the removed record's suppression edges (already detached and in
// canonical sweep order); on the linear reference path it is the full sweep
// over every record sharing a stream with the removed one, toward the
// neighbors it had been sent to — the pre-index algorithm, kept as the
// contract. Both paths re-decide with the same cover scan in the same
// order, so decisions and re-propagation order are bit-identical; the edge
// set just lets the indexed path skip the records whose suppressor was not
// the removed one (their decision cannot have changed — covering is
// monotone in sentTo, which only grows between removals). Eligible
// subscriptions are marked sent and returned for delivery outside the
// lock. Caller holds b.mu (with the removed record already gone).
func (b *Broker) unsuppressLocked(streams map[string]bool, targets []topology.NodeID, edges []covEdge) []pendSend {
	if !b.linearMatch {
		return b.unsuppressEdges(edges)
	}
	if len(targets) == 0 {
		return nil
	}
	var out []pendSend
	consider := func(c *compiledSub, n topology.NodeID) {
		if c.sentTo[n] || !c.listsAny(streams) {
			return
		}
		if !b.advertisesAny(n, c.sub.Streams) {
			return
		}
		if c.coveredBy[n] != nil {
			// Still suppressed by a suppressor that was not removed:
			// its covering (recorded, sent toward n) is intact.
			return
		}
		if cov := b.coverFor(n, c.sub, query.SelectionIntervalsByAttr(c.sub.Filters)); cov != nil {
			suppressEdge(cov, c, n)
			return
		}
		c.sentTo[n] = true
		out = append(out, pendSend{to: n, sub: c.sub})
	}
	for _, n := range targets {
		for _, c := range b.idx.locals.subs {
			consider(c, n)
		}
		for _, d := range b.idx.dirOrder {
			if d == n {
				continue
			}
			for _, c := range b.idx.dirs[d].subs {
				consider(c, n)
			}
		}
	}
	return out
}

// unsuppressEdges is the covered-by-index un-suppression: each detached
// suppression edge is one (record, neighbor) decision to re-run — either a
// surviving cover takes over (a fresh edge is recorded) or the record
// finally propagates. Visiting edges in canonical sweep order makes a
// record sent early in the pass eligible to cover records considered later,
// exactly as the reference sweep's in-pass covering does.
func (b *Broker) unsuppressEdges(edges []covEdge) []pendSend {
	var out []pendSend
	// A record suppressed toward several neighbors appears once per edge;
	// memoize its folded filter intervals so the cover scans compile the
	// conjunction once per record, not once per edge.
	var ivsCache map[*compiledSub]map[string]query.Interval
	ivsFor := func(c *compiledSub) map[string]query.Interval {
		if ivs, ok := ivsCache[c]; ok {
			return ivs
		}
		ivs := query.SelectionIntervalsByAttr(c.sub.Filters)
		if ivsCache == nil {
			ivsCache = make(map[*compiledSub]map[string]query.Interval)
		}
		ivsCache[c] = ivs
		return ivs
	}
	for _, e := range edges {
		c, n := e.rec, e.to
		if c.sentTo[n] || c.coveredBy[n] != nil {
			continue
		}
		if !b.advertisesAny(n, c.sub.Streams) {
			continue
		}
		if cov := b.coverFor(n, c.sub, ivsFor(c)); cov != nil {
			suppressEdge(cov, c, n)
			continue
		}
		c.sentTo[n] = true
		out = append(out, pendSend{to: n, sub: c.sub})
	}
	return out
}

// propagate records a subscription arriving from a neighbor (from >= 0) and
// forwards it to every neighbor that advertises one of its streams (except
// the neighbor it came from), unless a subscription already forwarded that
// way covers it. Covering scans consult the matching index: a covering
// subscription must list sub's first stream, so only that posting list's
// candidates are examined. A re-delivery of an already recorded epoch
// (same ID and direction, seq not newer) is dropped without re-flooding —
// the duplicate suppression that keeps replay epochs from looping.
func (b *Broker) propagate(sub *Subscription, from topology.NodeID) {
	if sub == nil || len(sub.Streams) == 0 {
		// Subscribe validates this, but PropagateFrom is also reachable
		// from wire transports; a streamless subscription matches
		// nothing and must not be recorded or flooded.
		return
	}
	b.mu.Lock()
	if from >= 0 && !b.neighborLocked(from) {
		b.mu.Unlock()
		return // dead-link straggler (see advertFrom)
	}
	var rec *compiledSub
	// State released by a superseded older epoch of the same ID, to
	// un-suppress after the fresh record has made its own propagation
	// decisions (so it can take over the covering it still provides).
	var supEdges []covEdge
	var supStreams map[string]bool
	var supTargets []topology.NodeID
	superseded := false
	if from >= 0 {
		d := b.idx.dir(from)
		if ts, ok := d.retracted[sub.ID]; ok {
			if sub.Seq <= ts {
				// The retraction overtook this propagation: obey it. The
				// tombstone is KEPT, not consumed — on a link that can
				// duplicate, a second stale copy may still be in flight,
				// and consuming the tombstone here would let that copy
				// install a record no retraction will ever chase. Only a
				// newer epoch of the ID clears it; a quiesced overlay
				// drops stragglers wholesale (Network.Quiesce).
				b.mu.Unlock()
				return
			}
			// Newer epoch of the ID: supersedes the tombstone.
			delete(d.retracted, sub.ID)
		}
		if prev := d.find(sub.ID); prev != nil {
			if sub.Seq <= prev.seq {
				b.mu.Unlock()
				return // duplicate or stale epoch: stop the flood
			}
			// Newer epoch of a reused ID: the fresh record replaces
			// the old one and re-propagates from scratch. Whatever the
			// old epoch was suppressing is re-decided below — the new
			// epoch may no longer cover it.
			d.remove(prev)
			supEdges = detachCovEdges(prev)
			superseded = true
			supTargets = sortedNodeSet(prev.sentTo)
			if b.linearMatch {
				supStreams = make(map[string]bool, len(prev.sub.Streams))
				for _, s := range prev.sub.Streams {
					supStreams[s] = true
				}
			}
		}
		if !b.advertisedExceptAny(from, sub.Streams) {
			// Mirror-rule install check: a record from this direction is
			// justified only while something OTHER than that direction
			// advertises one of its streams — the exact condition under
			// which the sender keeps its sentTo mark. The sender checked
			// it before sending, so the only way to get here is an
			// advert withdrawal that crossed this propagation in flight:
			// the sender's mark is (being) cleared by its rule (a), so
			// no retraction will ever chase this record — installing it
			// would strand it forever. Drop it; a re-advertisement
			// replays the subscription from the sender's surviving copy.
			var resend []pendSend
			if superseded {
				resend = b.unsuppressLocked(supStreams, supTargets, supEdges)
			}
			// The superseded record's removal (if any) must reach the
			// published epoch even though nothing was installed.
			b.publishLocked()
			b.mu.Unlock()
			b.sendPends(resend)
			return
		}
		rec = compileSub(sub.Clone(), nil)
		rec.seq = sub.Seq
		rec.srcDir = from
		b.recCount++
		rec.regSeq = b.recCount
		rec.sentTo = make(map[topology.NodeID]bool)
		d.add(rec)
	} else {
		// Locally originated: Subscribe already recorded it. The epoch
		// must match — under a concurrent re-subscribe of the same ID
		// the newest registration owns it, and sending this (older)
		// payload while charging the newer record's sentTo would leave
		// stale filters at the skipped neighbors forever.
		rec = b.idx.locals.find(sub.ID)
		if rec == nil || rec.seq != sub.Seq {
			b.mu.Unlock()
			return // unsubscribed or superseded since Subscribe
		}
	}
	ivs := query.SelectionIntervalsByAttr(sub.Filters)
	targets := make([]topology.NodeID, 0, len(b.neighbors))
	suppressed := 0
	for _, n := range b.neighbors {
		if n == from || rec.sentTo[n] || rec.coveredBy[n] != nil {
			continue
		}
		if !b.advertisesAny(n, sub.Streams) {
			continue
		}
		// Covering suppression: a DIFFERENT subscription covering this
		// one that was actually propagated to n already pulls a
		// superset of its traffic toward n, so this one need not be
		// sent there. Suppression is gated on the covering record's
		// own sentTo — a subscription recorded before the relevant
		// adverts arrived was sent nowhere and guarantees nothing.
		if cov := b.coverFor(n, sub, ivs); cov != nil {
			suppressEdge(cov, rec, n)
			suppressed++
			continue
		}
		rec.sentTo[n] = true
		targets = append(targets, n)
	}
	var resend []pendSend
	if superseded {
		resend = b.unsuppressLocked(supStreams, supTargets, supEdges)
	}
	b.publishLocked()
	b.mu.Unlock()
	cSubsSent.Add(int64(len(targets)))
	cSubsSuppressed.Add(int64(suppressed))
	for _, n := range targets {
		b.net.CountControl(b.Node, n, subSize(sub))
		b.net.Peer(n).PropagateFrom(sub, b.Node)
	}
	b.sendPends(resend)
}

// coverFor returns the first recorded subscription — locals in registration
// order, then each direction other than n in ascending order — that was
// actually propagated to n and covers sub, or nil. ivs must be
// query.SelectionIntervalsByAttr(sub.Filters), hoisted by the caller so a
// scan over many candidate covers compiles sub's filter conjunction once.
// The returned record is the suppressor the covered-by index records; the
// scan order is deterministic, so repeated runs pick the same suppressor.
// A cover must list every stream of sub, so on the indexed path only the
// posting list of sub's first stream is examined (the linear reference
// scans every record of each direction — same candidates in the same
// relative order, since covers always appear in that posting list).
func (b *Broker) coverFor(n topology.NodeID, sub *Subscription, ivs map[string]query.Interval) *compiledSub {
	cands := b.idx.locals.coverCandidates(sub)
	if b.linearMatch {
		cands = b.idx.locals.subs
	}
	for _, c := range cands {
		if c.sentTo[n] && c.sub.ID != sub.ID && c.sub.CoversPrepared(sub, ivs) {
			return c
		}
	}
	for _, dir := range b.idx.dirOrder {
		if dir == n {
			continue
		}
		d := b.idx.dirs[dir]
		cands := d.coverCandidates(sub)
		if b.linearMatch {
			cands = d.subs
		}
		for _, c := range cands {
			if c.sentTo[n] && c.sub.ID != sub.ID && c.sub.CoversPrepared(sub, ivs) {
				return c
			}
		}
	}
	return nil
}

func (b *Broker) advertisesAny(neighbor topology.NodeID, streams []string) bool {
	set, ok := b.adverts[neighbor]
	if !ok {
		return false
	}
	for _, s := range streams {
		if len(set[s]) > 0 {
			return true
		}
	}
	return false
}

// Publish injects a tuple produced by this broker's clients and routes it
// through the overlay.
func (b *Broker) Publish(t stream.Tuple) {
	b.route(t, -1)
}

// delivery is one matched local subscription, captured under the lock and
// invoked after releasing it.
type delivery struct {
	h    Handler
	sub  *Subscription
	keep map[string]bool // projection set; nil = all attributes
}

// hop is one forwarding decision toward a neighbor.
type hop struct {
	to    topology.NodeID
	attrs map[string]bool // nil = all
}

// routeBufs are the per-route-call matching buffers, pooled so the
// steady-state route path allocates none of them. They cannot live on the
// broker: the snapshot path runs without the broker lock, so concurrent
// routes each need their own scratch (and handlers are free to call back
// into the broker — a nested route pops its own buffers from the pool).
type routeBufs struct {
	locals []delivery
	hops   []hop
	// match collects per-direction matched candidates; stab and sel back
	// the prune index's stab and merged-selection sets (attrindex.go).
	match []*compiledSub
	stab  []int32
	sel   []int32
}

var routeBufPool = sync.Pool{New: func() any { return new(routeBufs) }}

// route delivers the tuple locally and forwards it once per interested
// neighbor, projecting the payload down to the union of downstream
// attribute interests (early projection, §2). Matching normally runs
// lock-free against the published snapshot epoch (matchSnap, snapshot.go),
// so concurrent routes proceed in parallel; when no epoch is published
// (linear mode, SetSnapshotRouting(false), or a broker that never churned)
// it serializes under the mutex on the live index (matchIndexed with
// attribute-level candidate pruning unless disabled, or the retained
// linear reference matchLinear). All paths produce identical decisions.
func (b *Broker) route(t stream.Tuple, from topology.NodeID) {
	bufs := routeBufPool.Get().(*routeBufs)
	locals, hops := bufs.locals[:0], bufs.hops[:0]
	if snap := b.snap.Load(); snap != nil {
		if from >= 0 && !nodeIn(snap.neighbors, from) {
			// Data from a torn-down link (as of this epoch): dropped, the
			// same at-most-once stance as the locked path below. A route
			// racing the detach may read the pre-detach epoch and accept —
			// that is the linearization where the route happened first.
			routeBufPool.Put(bufs)
			return
		}
		locals, hops = matchSnap(snap, t, from, bufs, locals, hops)
	} else {
		b.mu.Lock()
		if from >= 0 && !b.neighborLocked(from) {
			// Data from a torn-down link: no routing state references the
			// direction anymore, so the tuple is dropped (at-most-once data
			// delivery; the repaired overlay routes fresh traffic).
			b.mu.Unlock()
			routeBufPool.Put(bufs)
			return
		}
		if b.linearMatch {
			locals, hops = b.matchLinear(t, from, locals, hops)
		} else {
			locals, hops = b.matchIndexed(t, from, bufs, locals, hops)
		}
		b.mu.Unlock()
	}
	cRoutedTuples.Inc()
	if len(locals) > 0 {
		cLocalDeliveries.Add(int64(len(locals)))
	}
	if len(hops) > 0 {
		cForwardedTuples.Add(int64(len(hops)))
	}

	// Local deliveries run first, in subscription-registration order,
	// outside the lock so handlers are free to call back into the broker.
	// Full-tuple (nil-projection) deliveries share ONE copy of the
	// attribute map per route call: the copy decouples retaining
	// subscribers from a publisher reusing its tuple after Publish, and
	// delivered tuples are read-only by contract (see Handler), so the
	// old per-match defensive copy is not needed. A wire-arrived tuple
	// (Relay non-nil) needs no copy at all — the transport built its map
	// this hop, so no publisher alias exists.
	fullAttrs := t.Attrs
	if t.Relay == nil {
		fullAttrs = nil
	}
	for _, d := range locals {
		pt := projectAttrs(t, d.keep)
		pt.Relay = nil // transport-internal hint; handlers see a clean tuple
		if d.keep == nil {
			if fullAttrs == nil {
				fullAttrs = make(map[string]stream.Value, len(t.Attrs))
				for a, v := range t.Attrs {
					fullAttrs[a] = v
				}
			}
			pt.Attrs = fullAttrs
		}
		d.h(d.sub, pt)
	}
	for _, h := range hops {
		fwd := projectAttrs(t, h.attrs)
		b.net.CountData(b.Node, h.to, fwd.Size)
		b.net.Peer(h.to).RouteFrom(fwd, b.Node)
	}
	clear(locals) // drop handler/sub/map references before pooling
	clear(hops)
	clear(bufs.match) // and the candidate records the match scratch held
	bufs.locals, bufs.hops, bufs.match = locals[:0], hops[:0], bufs.match[:0]
	routeBufPool.Put(bufs)
}

// matchLinear is the reference matcher: every local subscription and every
// recorded subscription of each outgoing direction is tested against the
// tuple with the uncompiled Subscription.Matches walk. Retained for the
// equivalence tests and the pre-index baseline.
func (b *Broker) matchLinear(t stream.Tuple, from topology.NodeID, locals []delivery, hops []hop) ([]delivery, []hop) {
	for _, c := range b.idx.locals.subs {
		if c.sub.Matches(t) && c.handler != nil {
			locals = append(locals, delivery{h: c.handler, sub: c.sub, keep: keepSet(c.sub.Attrs)})
		}
	}
	for _, n := range b.neighbors {
		if n == from {
			continue
		}
		d, ok := b.idx.dirs[n]
		if !ok {
			continue
		}
		var wanted map[string]bool
		interested := false
		all := false
		for _, c := range d.subs {
			if !c.sub.Matches(t) {
				continue
			}
			interested = true
			if c.sub.Attrs == nil {
				all = true
				break
			}
			if wanted == nil {
				wanted = make(map[string]bool)
			}
			for _, a := range c.sub.Attrs {
				wanted[a] = true
			}
		}
		if !interested {
			continue
		}
		if all {
			wanted = nil
		}
		hops = append(hops, hop{to: n, attrs: wanted})
	}
	return locals, hops
}

// matchIndexed matches via the inverted index: only the posting list of the
// tuple's stream is consulted per direction — cut down further to the
// candidates whose compiled interval on the most selective constrained
// attribute admits the tuple's value (prunedCandidates), in posting-list
// order — each candidate evaluates its compiled filter groups, and when
// every candidate matches, the forwarding projection is the direction's
// precomputed per-stream union instead of a per-tuple rebuild. Pruning
// skips only candidates whose exact matcher would reject the tuple anyway,
// so deliveries, forwarding decisions and projections are identical with
// pruning on or off (and identical to matchLinear).
func (b *Broker) matchIndexed(t stream.Tuple, from topology.NodeID, bufs *routeBufs, locals []delivery, hops []hop) ([]delivery, []hop) {
	lcands := b.idx.locals.byStream[t.Stream]
	if sel, ok := b.prunedCandidates(b.idx.locals, t, lcands, bufs); ok {
		for _, p := range sel {
			if c := lcands[p]; c.handler != nil && c.matches(t) {
				locals = append(locals, delivery{h: c.handler, sub: c.sub, keep: c.keep})
			}
		}
	} else {
		for _, c := range lcands {
			if c.handler != nil && c.matches(t) {
				locals = append(locals, delivery{h: c.handler, sub: c.sub, keep: c.keep})
			}
		}
	}
	for _, n := range b.neighbors {
		if n == from {
			continue
		}
		d, ok := b.idx.dirs[n]
		if !ok {
			continue
		}
		cands := d.byStream[t.Stream]
		if len(cands) == 0 {
			continue
		}
		matched := bufs.match[:0]
		all := false
		if sel, ok := b.prunedCandidates(d, t, cands, bufs); ok {
			for _, p := range sel {
				c := cands[p]
				if !c.matches(t) {
					continue
				}
				if c.keep == nil {
					all = true
					break
				}
				matched = append(matched, c)
			}
		} else {
			for _, c := range cands {
				if !c.matches(t) {
					continue
				}
				if c.keep == nil {
					all = true
					break
				}
				matched = append(matched, c)
			}
		}
		bufs.match = matched // retain grown capacity for the next direction
		var wanted map[string]bool
		switch {
		case all:
			wanted = nil
		case len(matched) == 0:
			continue // not interested
		case len(matched) == len(cands):
			// Every posting-list candidate matched (a pruned scan can
			// only reach this count by having evaluated the whole
			// list), and none keeps all attributes (such a candidate
			// would have matched too): the incrementally maintained
			// union IS the per-tuple union. The map is immutable
			// (copy-on-write on subscribe), so handing it out is safe.
			wanted = d.union[t.Stream].keep
		default:
			wanted = make(map[string]bool)
			for _, c := range matched {
				for a := range c.keep {
					wanted[a] = true
				}
			}
		}
		hops = append(hops, hop{to: n, attrs: wanted})
	}
	return locals, hops
}

// keepSet converts an attribute projection list to the lookup-set form used
// by projectAttrs (nil stays nil = keep all).
func keepSet(attrs []string) map[string]bool {
	if attrs == nil {
		return nil
	}
	keep := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		keep[a] = true
	}
	return keep
}

func projectAttrs(t stream.Tuple, keep map[string]bool) stream.Tuple {
	if keep == nil {
		return t
	}
	out := stream.Tuple{Stream: t.Stream, Timestamp: t.Timestamp, Attrs: make(map[string]stream.Value, len(keep))}
	for a := range keep {
		if v, ok := t.Attrs[a]; ok {
			out.Attrs[a] = v
		}
	}
	// Size scales with retained attributes (8 bytes per value plus a
	// fixed header), mirroring the early-projection bandwidth savings.
	out.Size = tupleSize(len(out.Attrs))
	return out
}

func tupleSize(attrs int) int { return 16 + 8*attrs }

// AddNeighbor registers an overlay neighbor.
func (b *Broker) AddNeighbor(n topology.NodeID) {
	b.mu.Lock()
	for _, x := range b.neighbors {
		if x == n {
			b.mu.Unlock()
			return
		}
	}
	b.neighbors = append(b.neighbors, n)
	b.snapAll = true // the epoch's frozen neighbor set must grow too
	b.publishLocked()
	b.mu.Unlock()
	b.logger().Info("neighbor attached", "neighbor", n)
}

// neighborLocked reports whether n is a current overlay neighbor. Caller
// holds b.mu. Degrees are small (tree overlay), so a linear scan beats a set.
func (b *Broker) neighborLocked(n topology.NodeID) bool {
	for _, x := range b.neighbors {
		if x == n {
			return true
		}
	}
	return false
}

// DetachNeighbor severs this broker's side of the overlay link to 'gone'
// (broker crash or link failure) and prunes everything learned through it,
// reusing the graceful-teardown machinery so the surviving overlay ends in
// exactly the state a clean withdrawal would have produced:
//
//  1. every advertisement recorded from the link is withdrawn at its
//     recorded epoch, in sorted (stream, origin) order — the withdrawal
//     floods onward through the surviving component and the mirror rules
//     (pruneAdvertLocked) clear the propagation marks toward the dead link
//     and the records it alone justified;
//  2. every subscription recorded from the link is retracted at its
//     recorded epoch, in registration order — retractions follow the
//     records' own sentTo edges, and covered subscriptions un-suppress;
//  3. the neighbor entry, its withdrawal tombstones and its (now empty)
//     direction index are dropped.
//
// Mid-teardown re-propagations toward the dead direction are legal (step 1
// may transiently re-decide toward it while some of its streams are still
// advertised); they land on the removed broker's null peer — or on the live
// far endpoint, which cleans them when its own DetachNeighbor runs — and the
// marks they set are cleared by the time step 1 finishes (each record's last
// withdrawn stream sweeps it). The steps run with 'gone' still a neighbor;
// once it is removed, the non-neighbor guards on the protocol entry points
// drop any straggler the dead link still delivers.
func (b *Broker) DetachNeighbor(gone topology.NodeID) {
	b.mu.Lock()
	if !b.neighborLocked(gone) {
		b.mu.Unlock()
		return
	}
	type withdrawal struct {
		key advKey
		seq uint64
	}
	var withdrawals []withdrawal
	for s, origins := range b.adverts[gone] {
		for o, seq := range origins {
			withdrawals = append(withdrawals, withdrawal{advKey{stream: s, origin: o}, seq})
		}
	}
	sort.Slice(withdrawals, func(i, j int) bool {
		if withdrawals[i].key.stream != withdrawals[j].key.stream {
			return withdrawals[i].key.stream < withdrawals[j].key.stream
		}
		return withdrawals[i].key.origin < withdrawals[j].key.origin
	})
	b.mu.Unlock()
	for _, w := range withdrawals {
		b.unadvertFrom(gone, w.key.stream, w.key.origin, w.seq)
	}

	// Retract the direction's records until none remain: processing above
	// can synchronously trigger the live far endpoint into sending fresh
	// propagations over the dying link (its pruning re-decides coverings
	// toward us), so one snapshot is not enough. Arrivals stop once step 1's
	// cascades have returned, so the loop settles in practice on the second
	// pass.
	for {
		type retraction struct {
			id  string
			seq uint64
		}
		var retractions []retraction
		b.mu.Lock()
		if d, ok := b.idx.dirs[gone]; ok {
			for _, c := range d.subs {
				retractions = append(retractions, retraction{c.sub.ID, c.seq})
			}
		}
		b.mu.Unlock()
		if len(retractions) == 0 {
			break
		}
		for _, r := range retractions {
			b.retractFrom(gone, r.id, r.seq)
		}
	}

	b.mu.Lock()
	for i, x := range b.neighbors {
		if x == gone {
			b.neighbors = append(b.neighbors[:i], b.neighbors[i+1:]...)
			break
		}
	}
	delete(b.unadvTomb, gone)
	b.idx.dropDir(gone)
	b.snapAll = true // neighbor set and direction map both shrank
	b.publishLocked()
	b.mu.Unlock()
	b.logger().Info("neighbor detached", "neighbor", gone)
}

// clearTombstones drops every reorder tombstone (unadvert and retraction)
// this broker holds. Only sound when no protocol message is in flight — see
// Network.Quiesce.
func (b *Broker) clearTombstones() {
	b.mu.Lock()
	defer b.mu.Unlock()
	clear(b.unadvTomb)
	clear(b.idx.locals.retracted)
	for _, d := range b.idx.dirs {
		clear(d.retracted)
	}
}

// Neighbors returns the broker's overlay neighbors sorted by node ID.
func (b *Broker) Neighbors() []topology.NodeID {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := append([]topology.NodeID(nil), b.neighbors...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RoutingStateSize reports the broker's current routing-table population:
// remote counts the subscriptions recorded per neighbor direction, local
// the client subscriptions. Both drop to zero when every subscription in
// the overlay has been withdrawn — the retraction-completeness invariant
// tests assert.
func (b *Broker) RoutingStateSize() (remote, local int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, d := range b.idx.dirs {
		remote += len(d.subs)
	}
	return remote, len(b.idx.locals.subs)
}

// AdvertStateSize reports the broker's advert-table population: own counts
// the streams advertised by this broker's clients, learned the (direction,
// stream, origin) entries recorded from neighbors. Both drop to zero when
// every advertisement in the overlay has been withdrawn — the teardown
// half of the drain-to-empty invariant.
func (b *Broker) AdvertStateSize() (own, learned int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, set := range b.adverts {
		for _, origins := range set {
			learned += len(origins)
		}
	}
	return len(b.ownAdverts), learned
}

// syncAdvertsTo replays every advertisement this broker knows — its own and
// those learned from other directions, each with its origin and epoch —
// toward one neighbor, in sorted (stream, origin) order. Used when a broker
// joins the overlay dynamically, so the newcomer learns the full advert
// state of the network it attached to and later withdrawals match the
// epochs it recorded.
func (b *Broker) syncAdvertsTo(n topology.NodeID) {
	b.mu.Lock()
	known := make(map[advKey]uint64, len(b.ownAdverts))
	for s, seq := range b.ownAdverts {
		known[advKey{stream: s, origin: b.Node}] = seq
	}
	for d, set := range b.adverts {
		if d == n {
			continue
		}
		for s, origins := range set {
			for origin, seq := range origins {
				key := advKey{stream: s, origin: origin}
				if cur, ok := known[key]; !ok || seq > cur {
					known[key] = seq
				}
			}
		}
	}
	keys := make([]advKey, 0, len(known))
	for k := range known {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].stream != keys[j].stream {
			return keys[i].stream < keys[j].stream
		}
		return keys[i].origin < keys[j].origin
	})
	b.mu.Unlock()
	for _, k := range keys {
		b.net.CountControl(b.Node, n, advertSize)
		b.net.Peer(n).AdvertFrom(b.Node, k.stream, k.origin, known[k])
	}
}

// sortedDirs returns the direction keys in ascending neighbor order, so
// replay and un-suppression sweeps are deterministic.
func sortedDirs(dirs map[topology.NodeID]*dirIndex) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(dirs))
	for d := range dirs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedNodeSet(set map[topology.NodeID]bool) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

const (
	advertSize  = 32
	retractSize = 40 // ID + epoch, no filter payload
)

func subSize(s *Subscription) int {
	return 32 + 16*len(s.Streams) + 8*len(s.Attrs) + 24*len(s.Filters)
}
