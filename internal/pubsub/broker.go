package pubsub

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/stream"
	"repro/internal/topology"
)

// Handler consumes tuples delivered to a local subscriber.
type Handler func(sub *Subscription, t stream.Tuple)

// Peer is the broker-to-broker protocol: the three message kinds that cross
// overlay links. In-process networks implement it with direct calls;
// transport adapters (e.g. the TCP transport) implement it over the wire.
type Peer interface {
	// AdvertFrom delivers a stream advertisement arriving from a
	// neighbor.
	AdvertFrom(from topology.NodeID, streamName string)
	// PropagateFrom delivers a subscription arriving from a neighbor.
	PropagateFrom(sub *Subscription, from topology.NodeID)
	// RouteFrom delivers a data tuple arriving from a neighbor.
	RouteFrom(t stream.Tuple, from topology.NodeID)
}

// Fabric connects a broker to its neighbors and accounts traffic. It is the
// seam between the routing logic and the deployment substrate.
type Fabric interface {
	// Peer returns the protocol endpoint of a neighbor broker.
	Peer(n topology.NodeID) Peer
	// CountControl and CountData account per-link traffic in bytes.
	CountControl(from, to topology.NodeID, size int)
	CountData(from, to topology.NodeID, size int)
}

// AdvertFrom, PropagateFrom and RouteFrom make *Broker itself a Peer, so
// in-process fabrics hand brokers out directly.
func (b *Broker) AdvertFrom(from topology.NodeID, streamName string) { b.advertFrom(from, streamName) }

// PropagateFrom implements Peer.
func (b *Broker) PropagateFrom(sub *Subscription, from topology.NodeID) { b.propagate(sub, from) }

// RouteFrom implements Peer.
func (b *Broker) RouteFrom(t stream.Tuple, from topology.NodeID) { b.route(t, from) }

var _ Peer = (*Broker)(nil)

// localSub is a client subscription attached to a broker.
type localSub struct {
	sub     *Subscription
	handler Handler
}

// Broker is one overlay node of the Pub/Sub network. Brokers are wired into
// an acyclic overlay by Network; all routing state is per-neighbor:
//
//   - adverts[n] holds the streams advertised from direction n, guiding
//     subscription propagation (Fig 2(a));
//   - subs[n] holds the subscriptions received from direction n, i.e. the
//     interests living "behind" that neighbor (Fig 2(c)); a message is
//     forwarded to n only when one of them matches (Fig 2(d)).
type Broker struct {
	Node topology.NodeID

	mu        sync.Mutex
	net       Fabric
	neighbors []topology.NodeID
	adverts   map[topology.NodeID]map[string]bool
	subs      map[topology.NodeID][]*Subscription
	locals    []localSub
	// published advertisements by this broker's clients.
	ownAdverts map[string]bool
}

// NewBroker creates a broker wired to a fabric. Neighbors are added with
// AddNeighbor; in-process networks do this during overlay construction.
func NewBroker(net Fabric, node topology.NodeID) *Broker {
	return &Broker{
		Node:       node,
		net:        net,
		adverts:    make(map[topology.NodeID]map[string]bool),
		subs:       make(map[topology.NodeID][]*Subscription),
		ownAdverts: make(map[string]bool),
	}
}

// Advertise announces that this broker's clients will publish the given
// stream. The advertisement floods the overlay so every broker learns the
// direction toward the publisher.
func (b *Broker) Advertise(streamName string) {
	b.mu.Lock()
	b.ownAdverts[streamName] = true
	neighbors := append([]topology.NodeID(nil), b.neighbors...)
	b.mu.Unlock()
	for _, n := range neighbors {
		b.net.Peer(n).AdvertFrom(b.Node, streamName)
	}
}

func (b *Broker) advertFrom(from topology.NodeID, streamName string) {
	b.mu.Lock()
	set, ok := b.adverts[from]
	if !ok {
		set = make(map[string]bool)
		b.adverts[from] = set
	}
	if set[streamName] {
		b.mu.Unlock()
		return // already known; stop the flood
	}
	set[streamName] = true
	b.net.CountControl(b.Node, from, advertSize)
	neighbors := append([]topology.NodeID(nil), b.neighbors...)
	b.mu.Unlock()
	for _, n := range neighbors {
		if n != from {
			b.net.Peer(n).AdvertFrom(b.Node, streamName)
		}
	}
}

// Subscribe registers a local client subscription and propagates it toward
// the advertised publishers, suppressing propagation covered by an earlier
// subscription sent the same way (the p1∪p2 merge point of Fig 3).
func (b *Broker) Subscribe(sub *Subscription, h Handler) error {
	if sub == nil || len(sub.Streams) == 0 {
		return fmt.Errorf("pubsub: empty subscription")
	}
	b.mu.Lock()
	b.locals = append(b.locals, localSub{sub: sub, handler: h})
	b.mu.Unlock()
	b.propagate(sub, -1)
	return nil
}

// Unsubscribe removes a local client subscription by ID. Routing state at
// other brokers is left in place (as in Siena, stale entries only cost
// spurious forwarding and are cleaned by re-subscription epochs).
func (b *Broker) Unsubscribe(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	kept := b.locals[:0]
	for _, l := range b.locals {
		if l.sub.ID != id {
			kept = append(kept, l)
		}
	}
	b.locals = kept
}

// propagate forwards a subscription to every neighbor that advertises one
// of its streams (except the neighbor it came from), unless a subscription
// already forwarded from that direction covers it.
func (b *Broker) propagate(sub *Subscription, from topology.NodeID) {
	b.mu.Lock()
	if from >= 0 {
		// Record the interest living behind 'from'.
		covered := false
		for _, s := range b.subs[from] {
			if s.Covers(sub) {
				covered = true
				break
			}
		}
		if !covered {
			b.subs[from] = append(b.subs[from], sub.Clone())
		}
	}
	targets := make([]topology.NodeID, 0, len(b.neighbors))
	for _, n := range b.neighbors {
		if n == from {
			continue
		}
		if !b.advertisesAny(n, sub.Streams) {
			continue
		}
		// Covering suppression: skip if a DIFFERENT subscription we
		// already hold from any direction other than the target
		// covers this one — it was already sent toward the sources.
		// The subscription's own just-recorded clone must not
		// suppress it, so identity is compared by ID.
		suppressed := false
		for dir, lst := range b.subs {
			if dir == n {
				continue
			}
			for _, s := range lst {
				if s.ID != sub.ID && s.Covers(sub) {
					suppressed = true
					break
				}
			}
			if suppressed {
				break
			}
		}
		if !suppressed {
			targets = append(targets, n)
		}
	}
	b.mu.Unlock()
	for _, n := range targets {
		b.net.CountControl(b.Node, n, subSize(sub))
		b.net.Peer(n).PropagateFrom(sub, b.Node)
	}
}

func (b *Broker) advertisesAny(neighbor topology.NodeID, streams []string) bool {
	set, ok := b.adverts[neighbor]
	if !ok {
		return false
	}
	for _, s := range streams {
		if set[s] {
			return true
		}
	}
	return false
}

// Publish injects a tuple produced by this broker's clients and routes it
// through the overlay.
func (b *Broker) Publish(t stream.Tuple) {
	b.route(t, -1)
}

// route delivers the tuple locally and forwards it once per interested
// neighbor, projecting the payload down to the union of downstream
// attribute interests (early projection, §2).
func (b *Broker) route(t stream.Tuple, from topology.NodeID) {
	b.mu.Lock()
	for _, l := range b.locals {
		if l.sub.Matches(t) && l.handler != nil {
			h, s := l.handler, l.sub
			// Deliver outside the lock to keep handlers free to
			// call back into the broker.
			defer func(tt stream.Tuple) { h(s, project(s, tt)) }(t)
		}
	}
	type hop struct {
		to    topology.NodeID
		attrs map[string]bool // nil = all
	}
	var hops []hop
	for _, n := range b.neighbors {
		if n == from {
			continue
		}
		var wanted map[string]bool
		interested := false
		all := false
		for _, s := range b.subs[n] {
			if !s.Matches(t) {
				continue
			}
			interested = true
			if s.Attrs == nil {
				all = true
				break
			}
			if wanted == nil {
				wanted = make(map[string]bool)
			}
			for _, a := range s.Attrs {
				wanted[a] = true
			}
		}
		if !interested {
			continue
		}
		if all {
			wanted = nil
		}
		hops = append(hops, hop{to: n, attrs: wanted})
	}
	b.mu.Unlock()

	for _, h := range hops {
		fwd := projectAttrs(t, h.attrs)
		b.net.CountData(b.Node, h.to, fwd.Size)
		b.net.Peer(h.to).RouteFrom(fwd, b.Node)
	}
}

// project narrows a tuple to a subscription's attribute list.
func project(s *Subscription, t stream.Tuple) stream.Tuple {
	if s.Attrs == nil {
		return t
	}
	keep := make(map[string]bool, len(s.Attrs))
	for _, a := range s.Attrs {
		keep[a] = true
	}
	return projectAttrs(t, keep)
}

func projectAttrs(t stream.Tuple, keep map[string]bool) stream.Tuple {
	if keep == nil {
		return t
	}
	out := stream.Tuple{Stream: t.Stream, Timestamp: t.Timestamp, Attrs: make(map[string]stream.Value, len(keep))}
	for a := range keep {
		if v, ok := t.Attrs[a]; ok {
			out.Attrs[a] = v
		}
	}
	// Size scales with retained attributes (8 bytes per value plus a
	// fixed header), mirroring the early-projection bandwidth savings.
	out.Size = tupleSize(len(out.Attrs))
	return out
}

func tupleSize(attrs int) int { return 16 + 8*attrs }

// AddNeighbor registers an overlay neighbor.
func (b *Broker) AddNeighbor(n topology.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, x := range b.neighbors {
		if x == n {
			return
		}
	}
	b.neighbors = append(b.neighbors, n)
}

// Neighbors returns the broker's overlay neighbors sorted by node ID.
func (b *Broker) Neighbors() []topology.NodeID {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := append([]topology.NodeID(nil), b.neighbors...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

const advertSize = 32

func subSize(s *Subscription) int {
	return 32 + 16*len(s.Streams) + 8*len(s.Attrs) + 24*len(s.Filters)
}
