package pubsub

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
)

// Handler consumes tuples delivered to a local subscriber. The delivered
// tuple is owned by the broker's subscribers collectively: full-tuple
// (nil-projection) deliveries of one routed message share one attribute
// map, so handlers must treat the tuple as read-only — a handler that needs
// to mutate attributes copies them first. Retaining the tuple (e.g. in a
// query window) is fine.
type Handler func(sub *Subscription, t stream.Tuple)

// Peer is the broker-to-broker protocol: the four message kinds that cross
// overlay links. In-process networks implement it with direct calls;
// transport adapters (e.g. the TCP transport) implement it over the wire.
type Peer interface {
	// AdvertFrom delivers a stream advertisement arriving from a
	// neighbor.
	AdvertFrom(from topology.NodeID, streamName string)
	// PropagateFrom delivers a subscription arriving from a neighbor.
	PropagateFrom(sub *Subscription, from topology.NodeID)
	// RetractFrom delivers an unsubscription arriving from a neighbor:
	// the subscription with the given ID (at sequence number seq or
	// older) is withdrawn from the direction of 'from'.
	RetractFrom(from topology.NodeID, id string, seq uint64)
	// RouteFrom delivers a data tuple arriving from a neighbor.
	RouteFrom(t stream.Tuple, from topology.NodeID)
}

// Fabric connects a broker to its neighbors and accounts traffic. It is the
// seam between the routing logic and the deployment substrate.
type Fabric interface {
	// Peer returns the protocol endpoint of a neighbor broker.
	Peer(n topology.NodeID) Peer
	// CountControl and CountData account per-link traffic in bytes.
	CountControl(from, to topology.NodeID, size int)
	CountData(from, to topology.NodeID, size int)
}

// AdvertFrom, PropagateFrom, RetractFrom and RouteFrom make *Broker itself a
// Peer, so in-process fabrics hand brokers out directly.
func (b *Broker) AdvertFrom(from topology.NodeID, streamName string) { b.advertFrom(from, streamName) }

// PropagateFrom implements Peer.
func (b *Broker) PropagateFrom(sub *Subscription, from topology.NodeID) { b.propagate(sub, from) }

// RetractFrom implements Peer.
func (b *Broker) RetractFrom(from topology.NodeID, id string, seq uint64) {
	b.retractFrom(from, id, seq)
}

// RouteFrom implements Peer.
func (b *Broker) RouteFrom(t stream.Tuple, from topology.NodeID) { b.route(t, from) }

var _ Peer = (*Broker)(nil)

// Broker is one overlay node of the Pub/Sub network. Brokers are wired into
// an acyclic overlay by Network; all routing state is per-neighbor:
//
//   - adverts[n] holds the streams advertised from direction n, guiding
//     subscription propagation (Fig 2(a));
//   - idx.dirs[n] holds the subscriptions received from direction n, i.e.
//     the interests living "behind" that neighbor (Fig 2(c)); a message is
//     forwarded to n only when one of them matches (Fig 2(d));
//   - idx.locals holds this broker's client subscriptions.
//
// Routing state is dynamic (the lifecycle subsystem): every recorded
// subscription tracks the neighbors it was actually propagated to (sentTo)
// and the epoch it was issued in (seq). When a new advert direction is
// learned, the broker replays the matching posting list toward it
// (re-propagation), so subscribe-before-advertise orderings route
// correctly; when a subscription is withdrawn, a retraction follows the
// sentTo edges removing the remote records and un-suppressing any
// subscription the removed one was covering. Sequence numbers make
// duplicate floods and stale retractions no-ops.
type Broker struct {
	Node topology.NodeID

	mu        sync.Mutex
	net       Fabric
	neighbors []topology.NodeID
	adverts   map[topology.NodeID]map[string]bool
	// published advertisements by this broker's clients.
	ownAdverts map[string]bool

	// idx is the authoritative routing state: one dirIndex per neighbor
	// direction plus one for local client subscriptions, maintained
	// incrementally under mu (see index.go).
	idx *matchIndex
	// linearMatch routes and suppresses with the retained linear
	// reference matcher instead of the posting-list/compiled-filter
	// index. The two are equivalent bit-for-bit (equivalence tests); the
	// linear path is the reference implementation and the pre-index
	// benchmark baseline.
	linearMatch bool
	// noPrune disables attribute-level candidate pruning (attrindex.go),
	// so matching always scans the full per-stream posting list — the
	// first-generation indexed matcher, kept selectable as the
	// pruned-path baseline for benchmarks.
	noPrune bool
	// matchScratch collects per-neighbor matched candidates under mu,
	// avoiding a per-tuple allocation on the indexed path; stabScratch
	// and selScratch back the prune index's stab and merged-selection
	// sets the same way.
	matchScratch []*compiledSub
	stabScratch  []int32
	selScratch   []int32
	// seq numbers the subscription epochs originated by this broker's
	// clients: each Subscribe stamps the next value, so a re-subscribe
	// of a reused ID supersedes the records (and outruns stale
	// retractions) of the previous incarnation everywhere.
	seq uint64
	// recCount numbers every record (local or remote) this broker
	// installs, giving compiledSub.regSeq its broker-wide registration
	// order.
	recCount uint64
}

// NewBroker creates a broker wired to a fabric. Neighbors are added with
// AddNeighbor; in-process networks do this during overlay construction.
func NewBroker(net Fabric, node topology.NodeID) *Broker {
	return &Broker{
		Node:       node,
		net:        net,
		adverts:    make(map[topology.NodeID]map[string]bool),
		ownAdverts: make(map[string]bool),
		idx:        newMatchIndex(),
	}
}

// SetLinearMatching switches the broker between the inverted matching index
// and the retained linear reference matcher. Both produce identical
// forwarding decisions, deliveries and traffic; the linear path exists as
// the reference implementation and baseline for benchmarks.
func (b *Broker) SetLinearMatching(on bool) {
	b.mu.Lock()
	b.linearMatch = on
	b.mu.Unlock()
}

// SetAttrPruning switches attribute-level candidate pruning on the indexed
// matching path (on by default). Pruned and unpruned matching produce
// identical decisions — the unpruned path is retained as the baseline the
// selectivity benchmarks compare against.
func (b *Broker) SetAttrPruning(on bool) {
	b.mu.Lock()
	b.noPrune = !on
	b.mu.Unlock()
}

// Advertise announces that this broker's clients will publish the given
// stream. The advertisement floods the overlay so every broker learns the
// direction toward the publisher; brokers holding subscriptions on the
// stream re-propagate them toward it as the flood passes (advertFrom).
//
// Advert traffic is accounted at the SEND side, like subscription
// propagation and data forwarding: every advert that crosses a link is
// charged by its sender, including re-advertisements the receiver will
// duplicate-suppress.
func (b *Broker) Advertise(streamName string) {
	b.mu.Lock()
	b.ownAdverts[streamName] = true
	neighbors := append([]topology.NodeID(nil), b.neighbors...)
	b.mu.Unlock()
	for _, n := range neighbors {
		b.net.CountControl(b.Node, n, advertSize)
		b.net.Peer(n).AdvertFrom(b.Node, streamName)
	}
}

func (b *Broker) advertFrom(from topology.NodeID, streamName string) {
	b.mu.Lock()
	set, ok := b.adverts[from]
	if !ok {
		set = make(map[string]bool)
		b.adverts[from] = set
	}
	if set[streamName] {
		b.mu.Unlock()
		return // already known; stop the flood
	}
	set[streamName] = true
	neighbors := append([]topology.NodeID(nil), b.neighbors...)
	resend := b.replayLocked(from, streamName)
	b.mu.Unlock()
	for _, n := range neighbors {
		if n != from {
			b.net.CountControl(b.Node, n, advertSize)
			b.net.Peer(n).AdvertFrom(b.Node, streamName)
		}
	}
	// Re-propagation epoch: replay the recorded subscriptions on the
	// newly learned stream toward the advertiser. Each send was already
	// marked in the record's sentTo under the lock, so a concurrent
	// replay cannot duplicate it.
	for _, sub := range resend {
		b.net.CountControl(b.Node, from, subSize(sub))
		b.net.Peer(from).PropagateFrom(sub, b.Node)
	}
}

// replayLocked collects the subscriptions to re-propagate toward 'from'
// after learning that it advertises streamName: every recorded subscription
// listing the stream (from the per-direction posting lists) that was not
// already sent that way and is not covered by one that was. Locals replay
// first in registration order, then each other direction in ascending
// neighbor order — the same order a from-scratch network would have
// propagated them in. Caller holds b.mu.
func (b *Broker) replayLocked(from topology.NodeID, streamName string) []*Subscription {
	var out []*Subscription
	consider := func(c *compiledSub) {
		if c.sentTo[from] || c.coveredBy[from] != nil {
			return
		}
		if cov := b.coverFor(from, c.sub, query.SelectionIntervalsByAttr(c.sub.Filters)); cov != nil {
			suppressEdge(cov, c, from)
			return
		}
		c.sentTo[from] = true
		out = append(out, c.sub)
	}
	for _, c := range b.idx.locals.byStream[streamName] {
		consider(c)
	}
	for _, d := range b.idx.dirOrder {
		if d == from {
			continue
		}
		for _, c := range b.idx.dirs[d].byStream[streamName] {
			consider(c)
		}
	}
	return out
}

// Subscribe registers a local client subscription and propagates it toward
// the advertised publishers, suppressing propagation covered by an earlier
// subscription sent the same way (the p1∪p2 merge point of Fig 3). Streams
// advertised only later are caught up by re-propagation epochs (advertFrom).
func (b *Broker) Subscribe(sub *Subscription, h Handler) error {
	if sub == nil || len(sub.Streams) == 0 {
		return fmt.Errorf("pubsub: empty subscription")
	}
	b.mu.Lock()
	exists := b.idx.locals.find(sub.ID) != nil
	b.mu.Unlock()
	if exists {
		// Re-subscribing a live ID supersedes the old incarnation
		// everywhere (the documented ID contract): retract it first so
		// no broker — including this one — is left holding both.
		b.Unsubscribe(sub.ID)
	}
	b.mu.Lock()
	b.seq++
	sub.Seq = b.seq
	c := compileSub(sub, h)
	c.seq = sub.Seq
	c.srcDir = -1
	b.recCount++
	c.regSeq = b.recCount
	c.sentTo = make(map[topology.NodeID]bool)
	b.idx.locals.add(c)
	b.mu.Unlock()
	b.propagate(sub, -1)
	return nil
}

// Unsubscribe withdraws a local client subscription by ID: the local record
// is dropped, a retraction follows the propagation path removing the
// routing state recorded for it at other brokers, and any subscription the
// removed one was covering is re-propagated (un-suppressed) toward the
// neighbors it was suppressed for. Unsubscribing an unknown ID — including
// a second Unsubscribe of the same ID — is a no-op.
func (b *Broker) Unsubscribe(id string) {
	b.mu.Lock()
	removed := b.idx.locals.removeByID(id)
	if len(removed) == 0 {
		b.mu.Unlock()
		return // unknown or already removed: explicit no-op
	}
	targetSet := make(map[topology.NodeID]bool)
	var seq uint64
	var streams map[string]bool // linear-reference sweep only
	var edges []covEdge
	for _, c := range removed {
		for n := range c.sentTo {
			targetSet[n] = true
		}
		if c.seq > seq {
			seq = c.seq
		}
		if b.linearMatch {
			if streams == nil {
				streams = make(map[string]bool)
			}
			for _, s := range c.sub.Streams {
				streams[s] = true
			}
		}
		edges = append(edges, detachCovEdges(c)...)
	}
	targets := sortedNodeSet(targetSet)
	if len(removed) > 1 {
		sortCovEdges(edges)
	}
	resend := b.unsuppressLocked(streams, targets, edges)
	b.mu.Unlock()
	for _, n := range targets {
		b.net.CountControl(b.Node, n, retractSize)
		b.net.Peer(n).RetractFrom(b.Node, id, seq)
	}
	for _, s := range resend {
		b.net.CountControl(b.Node, s.to, subSize(s.sub))
		b.net.Peer(s.to).PropagateFrom(s.sub, b.Node)
	}
}

// retractFrom handles a retraction arriving from a neighbor: the record of
// the subscription is removed, the retraction is forwarded along the
// record's own propagation edges, and covered subscriptions un-suppress. A
// retraction for an unknown ID, a duplicate retraction, or one older than
// the recorded epoch (seq) is a no-op.
func (b *Broker) retractFrom(from topology.NodeID, id string, seq uint64) {
	b.mu.Lock()
	d := b.idx.dir(from)
	rec := d.find(id)
	if rec == nil {
		// The retraction overtook the propagation it chases (sends
		// happen outside broker locks): leave a tombstone so the
		// late-arriving record is dropped instead of being installed
		// with no retraction ever coming. Nothing to forward — this
		// broker never recorded, so it never propagated onward.
		if ts, ok := d.retracted[id]; !ok || seq > ts {
			d.retracted[id] = seq
		}
		b.mu.Unlock()
		return
	}
	if rec.seq > seq {
		b.mu.Unlock()
		return // stale retraction: superseded by a newer epoch
	}
	d.remove(rec)
	edges := detachCovEdges(rec)
	targets := sortedNodeSet(rec.sentTo)
	var streams map[string]bool // linear-reference sweep only
	if b.linearMatch {
		streams = make(map[string]bool, len(rec.sub.Streams))
		for _, s := range rec.sub.Streams {
			streams[s] = true
		}
	}
	resend := b.unsuppressLocked(streams, targets, edges)
	b.mu.Unlock()
	for _, n := range targets {
		b.net.CountControl(b.Node, n, retractSize)
		b.net.Peer(n).RetractFrom(b.Node, id, seq)
	}
	for _, s := range resend {
		b.net.CountControl(b.Node, s.to, subSize(s.sub))
		b.net.Peer(s.to).PropagateFrom(s.sub, b.Node)
	}
}

// pendSend is one subscription re-propagation decided under the lock and
// sent after releasing it.
type pendSend struct {
	to  topology.NodeID
	sub *Subscription
}

// unsuppressLocked re-runs the propagation decision for the subscriptions a
// just-removed record may have been covering. On the indexed path that is
// exactly the removed record's suppression edges (already detached and in
// canonical sweep order); on the linear reference path it is the full sweep
// over every record sharing a stream with the removed one, toward the
// neighbors it had been sent to — the pre-index algorithm, kept as the
// contract. Both paths re-decide with the same cover scan in the same
// order, so decisions and re-propagation order are bit-identical; the edge
// set just lets the indexed path skip the records whose suppressor was not
// the removed one (their decision cannot have changed — covering is
// monotone in sentTo, which only grows between removals). Eligible
// subscriptions are marked sent and returned for delivery outside the
// lock. Caller holds b.mu (with the removed record already gone).
func (b *Broker) unsuppressLocked(streams map[string]bool, targets []topology.NodeID, edges []covEdge) []pendSend {
	if !b.linearMatch {
		return b.unsuppressEdges(edges)
	}
	if len(targets) == 0 {
		return nil
	}
	var out []pendSend
	consider := func(c *compiledSub, n topology.NodeID) {
		if c.sentTo[n] || !c.listsAny(streams) {
			return
		}
		if !b.advertisesAny(n, c.sub.Streams) {
			return
		}
		if c.coveredBy[n] != nil {
			// Still suppressed by a suppressor that was not removed:
			// its covering (recorded, sent toward n) is intact.
			return
		}
		if cov := b.coverFor(n, c.sub, query.SelectionIntervalsByAttr(c.sub.Filters)); cov != nil {
			suppressEdge(cov, c, n)
			return
		}
		c.sentTo[n] = true
		out = append(out, pendSend{to: n, sub: c.sub})
	}
	for _, n := range targets {
		for _, c := range b.idx.locals.subs {
			consider(c, n)
		}
		for _, d := range b.idx.dirOrder {
			if d == n {
				continue
			}
			for _, c := range b.idx.dirs[d].subs {
				consider(c, n)
			}
		}
	}
	return out
}

// unsuppressEdges is the covered-by-index un-suppression: each detached
// suppression edge is one (record, neighbor) decision to re-run — either a
// surviving cover takes over (a fresh edge is recorded) or the record
// finally propagates. Visiting edges in canonical sweep order makes a
// record sent early in the pass eligible to cover records considered later,
// exactly as the reference sweep's in-pass covering does.
func (b *Broker) unsuppressEdges(edges []covEdge) []pendSend {
	var out []pendSend
	// A record suppressed toward several neighbors appears once per edge;
	// memoize its folded filter intervals so the cover scans compile the
	// conjunction once per record, not once per edge.
	var ivsCache map[*compiledSub]map[string]query.Interval
	ivsFor := func(c *compiledSub) map[string]query.Interval {
		if ivs, ok := ivsCache[c]; ok {
			return ivs
		}
		ivs := query.SelectionIntervalsByAttr(c.sub.Filters)
		if ivsCache == nil {
			ivsCache = make(map[*compiledSub]map[string]query.Interval)
		}
		ivsCache[c] = ivs
		return ivs
	}
	for _, e := range edges {
		c, n := e.rec, e.to
		if c.sentTo[n] || c.coveredBy[n] != nil {
			continue
		}
		if !b.advertisesAny(n, c.sub.Streams) {
			continue
		}
		if cov := b.coverFor(n, c.sub, ivsFor(c)); cov != nil {
			suppressEdge(cov, c, n)
			continue
		}
		c.sentTo[n] = true
		out = append(out, pendSend{to: n, sub: c.sub})
	}
	return out
}

// propagate records a subscription arriving from a neighbor (from >= 0) and
// forwards it to every neighbor that advertises one of its streams (except
// the neighbor it came from), unless a subscription already forwarded that
// way covers it. Covering scans consult the matching index: a covering
// subscription must list sub's first stream, so only that posting list's
// candidates are examined. A re-delivery of an already recorded epoch
// (same ID and direction, seq not newer) is dropped without re-flooding —
// the duplicate suppression that keeps replay epochs from looping.
func (b *Broker) propagate(sub *Subscription, from topology.NodeID) {
	if sub == nil || len(sub.Streams) == 0 {
		// Subscribe validates this, but PropagateFrom is also reachable
		// from wire transports; a streamless subscription matches
		// nothing and must not be recorded or flooded.
		return
	}
	b.mu.Lock()
	var rec *compiledSub
	// State released by a superseded older epoch of the same ID, to
	// un-suppress after the fresh record has made its own propagation
	// decisions (so it can take over the covering it still provides).
	var supEdges []covEdge
	var supStreams map[string]bool
	var supTargets []topology.NodeID
	superseded := false
	if from >= 0 {
		d := b.idx.dir(from)
		if ts, ok := d.retracted[sub.ID]; ok {
			// Either way the tombstone is consumed: each (link,
			// epoch) is propagated exactly once (sentTo is marked
			// under the sender's lock before sending), so the
			// suppressed arrival is the one it was waiting for, and
			// a newer epoch supersedes it.
			delete(d.retracted, sub.ID)
			if sub.Seq <= ts {
				b.mu.Unlock()
				return // retraction overtook this propagation: obey it
			}
		}
		if prev := d.find(sub.ID); prev != nil {
			if sub.Seq <= prev.seq {
				b.mu.Unlock()
				return // duplicate or stale epoch: stop the flood
			}
			// Newer epoch of a reused ID: the fresh record replaces
			// the old one and re-propagates from scratch. Whatever the
			// old epoch was suppressing is re-decided below — the new
			// epoch may no longer cover it.
			d.remove(prev)
			supEdges = detachCovEdges(prev)
			superseded = true
			supTargets = sortedNodeSet(prev.sentTo)
			if b.linearMatch {
				supStreams = make(map[string]bool, len(prev.sub.Streams))
				for _, s := range prev.sub.Streams {
					supStreams[s] = true
				}
			}
		}
		rec = compileSub(sub.Clone(), nil)
		rec.seq = sub.Seq
		rec.srcDir = from
		b.recCount++
		rec.regSeq = b.recCount
		rec.sentTo = make(map[topology.NodeID]bool)
		d.add(rec)
	} else {
		// Locally originated: Subscribe already recorded it. The epoch
		// must match — under a concurrent re-subscribe of the same ID
		// the newest registration owns it, and sending this (older)
		// payload while charging the newer record's sentTo would leave
		// stale filters at the skipped neighbors forever.
		rec = b.idx.locals.find(sub.ID)
		if rec == nil || rec.seq != sub.Seq {
			b.mu.Unlock()
			return // unsubscribed or superseded since Subscribe
		}
	}
	ivs := query.SelectionIntervalsByAttr(sub.Filters)
	targets := make([]topology.NodeID, 0, len(b.neighbors))
	for _, n := range b.neighbors {
		if n == from || rec.sentTo[n] || rec.coveredBy[n] != nil {
			continue
		}
		if !b.advertisesAny(n, sub.Streams) {
			continue
		}
		// Covering suppression: a DIFFERENT subscription covering this
		// one that was actually propagated to n already pulls a
		// superset of its traffic toward n, so this one need not be
		// sent there. Suppression is gated on the covering record's
		// own sentTo — a subscription recorded before the relevant
		// adverts arrived was sent nowhere and guarantees nothing.
		if cov := b.coverFor(n, sub, ivs); cov != nil {
			suppressEdge(cov, rec, n)
			continue
		}
		rec.sentTo[n] = true
		targets = append(targets, n)
	}
	var resend []pendSend
	if superseded {
		resend = b.unsuppressLocked(supStreams, supTargets, supEdges)
	}
	b.mu.Unlock()
	for _, n := range targets {
		b.net.CountControl(b.Node, n, subSize(sub))
		b.net.Peer(n).PropagateFrom(sub, b.Node)
	}
	for _, s := range resend {
		b.net.CountControl(b.Node, s.to, subSize(s.sub))
		b.net.Peer(s.to).PropagateFrom(s.sub, b.Node)
	}
}

// coverFor returns the first recorded subscription — locals in registration
// order, then each direction other than n in ascending order — that was
// actually propagated to n and covers sub, or nil. ivs must be
// query.SelectionIntervalsByAttr(sub.Filters), hoisted by the caller so a
// scan over many candidate covers compiles sub's filter conjunction once.
// The returned record is the suppressor the covered-by index records; the
// scan order is deterministic, so repeated runs pick the same suppressor.
// A cover must list every stream of sub, so on the indexed path only the
// posting list of sub's first stream is examined (the linear reference
// scans every record of each direction — same candidates in the same
// relative order, since covers always appear in that posting list).
func (b *Broker) coverFor(n topology.NodeID, sub *Subscription, ivs map[string]query.Interval) *compiledSub {
	cands := b.idx.locals.coverCandidates(sub)
	if b.linearMatch {
		cands = b.idx.locals.subs
	}
	for _, c := range cands {
		if c.sentTo[n] && c.sub.ID != sub.ID && c.sub.CoversPrepared(sub, ivs) {
			return c
		}
	}
	for _, dir := range b.idx.dirOrder {
		if dir == n {
			continue
		}
		d := b.idx.dirs[dir]
		cands := d.coverCandidates(sub)
		if b.linearMatch {
			cands = d.subs
		}
		for _, c := range cands {
			if c.sentTo[n] && c.sub.ID != sub.ID && c.sub.CoversPrepared(sub, ivs) {
				return c
			}
		}
	}
	return nil
}

func (b *Broker) advertisesAny(neighbor topology.NodeID, streams []string) bool {
	set, ok := b.adverts[neighbor]
	if !ok {
		return false
	}
	for _, s := range streams {
		if set[s] {
			return true
		}
	}
	return false
}

// Publish injects a tuple produced by this broker's clients and routes it
// through the overlay.
func (b *Broker) Publish(t stream.Tuple) {
	b.route(t, -1)
}

// delivery is one matched local subscription, captured under the lock and
// invoked after releasing it.
type delivery struct {
	h    Handler
	sub  *Subscription
	keep map[string]bool // projection set; nil = all attributes
}

// hop is one forwarding decision toward a neighbor.
type hop struct {
	to    topology.NodeID
	attrs map[string]bool // nil = all
}

// routeBufs are the per-route-call delivery and hop buffers, pooled so the
// steady-state route path allocates neither slice. They cannot live on the
// broker: handlers are free to call back into the broker (a nested route
// pops its own buffers from the pool).
type routeBufs struct {
	locals []delivery
	hops   []hop
}

var routeBufPool = sync.Pool{New: func() any { return new(routeBufs) }}

// route delivers the tuple locally and forwards it once per interested
// neighbor, projecting the payload down to the union of downstream
// attribute interests (early projection, §2). Matching runs on the inverted
// index (matchIndexed, with attribute-level candidate pruning unless
// disabled) or on the retained linear reference (matchLinear); the paths
// produce identical decisions.
func (b *Broker) route(t stream.Tuple, from topology.NodeID) {
	bufs := routeBufPool.Get().(*routeBufs)
	locals, hops := bufs.locals[:0], bufs.hops[:0]
	b.mu.Lock()
	if b.linearMatch {
		locals, hops = b.matchLinear(t, from, locals, hops)
	} else {
		locals, hops = b.matchIndexed(t, from, locals, hops)
	}
	b.mu.Unlock()

	// Local deliveries run first, in subscription-registration order,
	// outside the lock so handlers are free to call back into the broker.
	// Full-tuple (nil-projection) deliveries share ONE copy of the
	// attribute map per route call: the copy decouples retaining
	// subscribers from a publisher reusing its tuple after Publish, and
	// delivered tuples are read-only by contract (see Handler), so the
	// old per-match defensive copy is not needed.
	var fullAttrs map[string]stream.Value
	for _, d := range locals {
		pt := projectAttrs(t, d.keep)
		if d.keep == nil {
			if fullAttrs == nil {
				fullAttrs = make(map[string]stream.Value, len(t.Attrs))
				for a, v := range t.Attrs {
					fullAttrs[a] = v
				}
			}
			pt.Attrs = fullAttrs
		}
		d.h(d.sub, pt)
	}
	for _, h := range hops {
		fwd := projectAttrs(t, h.attrs)
		b.net.CountData(b.Node, h.to, fwd.Size)
		b.net.Peer(h.to).RouteFrom(fwd, b.Node)
	}
	clear(locals) // drop handler/sub/map references before pooling
	clear(hops)
	bufs.locals, bufs.hops = locals[:0], hops[:0]
	routeBufPool.Put(bufs)
}

// matchLinear is the reference matcher: every local subscription and every
// recorded subscription of each outgoing direction is tested against the
// tuple with the uncompiled Subscription.Matches walk. Retained for the
// equivalence tests and the pre-index baseline.
func (b *Broker) matchLinear(t stream.Tuple, from topology.NodeID, locals []delivery, hops []hop) ([]delivery, []hop) {
	for _, c := range b.idx.locals.subs {
		if c.sub.Matches(t) && c.handler != nil {
			locals = append(locals, delivery{h: c.handler, sub: c.sub, keep: keepSet(c.sub.Attrs)})
		}
	}
	for _, n := range b.neighbors {
		if n == from {
			continue
		}
		d, ok := b.idx.dirs[n]
		if !ok {
			continue
		}
		var wanted map[string]bool
		interested := false
		all := false
		for _, c := range d.subs {
			if !c.sub.Matches(t) {
				continue
			}
			interested = true
			if c.sub.Attrs == nil {
				all = true
				break
			}
			if wanted == nil {
				wanted = make(map[string]bool)
			}
			for _, a := range c.sub.Attrs {
				wanted[a] = true
			}
		}
		if !interested {
			continue
		}
		if all {
			wanted = nil
		}
		hops = append(hops, hop{to: n, attrs: wanted})
	}
	return locals, hops
}

// matchIndexed matches via the inverted index: only the posting list of the
// tuple's stream is consulted per direction — cut down further to the
// candidates whose compiled interval on the most selective constrained
// attribute admits the tuple's value (prunedCandidates), in posting-list
// order — each candidate evaluates its compiled filter groups, and when
// every candidate matches, the forwarding projection is the direction's
// precomputed per-stream union instead of a per-tuple rebuild. Pruning
// skips only candidates whose exact matcher would reject the tuple anyway,
// so deliveries, forwarding decisions and projections are identical with
// pruning on or off (and identical to matchLinear).
func (b *Broker) matchIndexed(t stream.Tuple, from topology.NodeID, locals []delivery, hops []hop) ([]delivery, []hop) {
	lcands := b.idx.locals.byStream[t.Stream]
	if sel, ok := b.prunedCandidates(b.idx.locals, t, lcands); ok {
		for _, p := range sel {
			if c := lcands[p]; c.handler != nil && c.matches(t) {
				locals = append(locals, delivery{h: c.handler, sub: c.sub, keep: c.keep})
			}
		}
	} else {
		for _, c := range lcands {
			if c.handler != nil && c.matches(t) {
				locals = append(locals, delivery{h: c.handler, sub: c.sub, keep: c.keep})
			}
		}
	}
	for _, n := range b.neighbors {
		if n == from {
			continue
		}
		d, ok := b.idx.dirs[n]
		if !ok {
			continue
		}
		cands := d.byStream[t.Stream]
		if len(cands) == 0 {
			continue
		}
		matched := b.matchScratch[:0]
		all := false
		if sel, ok := b.prunedCandidates(d, t, cands); ok {
			for _, p := range sel {
				c := cands[p]
				if !c.matches(t) {
					continue
				}
				if c.keep == nil {
					all = true
					break
				}
				matched = append(matched, c)
			}
		} else {
			for _, c := range cands {
				if !c.matches(t) {
					continue
				}
				if c.keep == nil {
					all = true
					break
				}
				matched = append(matched, c)
			}
		}
		b.matchScratch = matched // retain grown capacity for the next tuple
		var wanted map[string]bool
		switch {
		case all:
			wanted = nil
		case len(matched) == 0:
			continue // not interested
		case len(matched) == len(cands):
			// Every posting-list candidate matched (a pruned scan can
			// only reach this count by having evaluated the whole
			// list), and none keeps all attributes (such a candidate
			// would have matched too): the incrementally maintained
			// union IS the per-tuple union. The map is immutable
			// (copy-on-write on subscribe), so handing it out is safe.
			wanted = d.union[t.Stream].keep
		default:
			wanted = make(map[string]bool)
			for _, c := range matched {
				for a := range c.keep {
					wanted[a] = true
				}
			}
		}
		hops = append(hops, hop{to: n, attrs: wanted})
	}
	return locals, hops
}

// keepSet converts an attribute projection list to the lookup-set form used
// by projectAttrs (nil stays nil = keep all).
func keepSet(attrs []string) map[string]bool {
	if attrs == nil {
		return nil
	}
	keep := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		keep[a] = true
	}
	return keep
}

func projectAttrs(t stream.Tuple, keep map[string]bool) stream.Tuple {
	if keep == nil {
		return t
	}
	out := stream.Tuple{Stream: t.Stream, Timestamp: t.Timestamp, Attrs: make(map[string]stream.Value, len(keep))}
	for a := range keep {
		if v, ok := t.Attrs[a]; ok {
			out.Attrs[a] = v
		}
	}
	// Size scales with retained attributes (8 bytes per value plus a
	// fixed header), mirroring the early-projection bandwidth savings.
	out.Size = tupleSize(len(out.Attrs))
	return out
}

func tupleSize(attrs int) int { return 16 + 8*attrs }

// AddNeighbor registers an overlay neighbor.
func (b *Broker) AddNeighbor(n topology.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, x := range b.neighbors {
		if x == n {
			return
		}
	}
	b.neighbors = append(b.neighbors, n)
}

// Neighbors returns the broker's overlay neighbors sorted by node ID.
func (b *Broker) Neighbors() []topology.NodeID {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := append([]topology.NodeID(nil), b.neighbors...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RoutingStateSize reports the broker's current routing-table population:
// remote counts the subscriptions recorded per neighbor direction, local
// the client subscriptions. Both drop to zero when every subscription in
// the overlay has been withdrawn — the retraction-completeness invariant
// tests assert.
func (b *Broker) RoutingStateSize() (remote, local int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, d := range b.idx.dirs {
		remote += len(d.subs)
	}
	return remote, len(b.idx.locals.subs)
}

// syncAdvertsTo replays every stream this broker knows to be advertised —
// its own and those learned from other directions — toward one neighbor, in
// sorted order. Used when a broker joins the overlay dynamically, so the
// newcomer learns the full advert state of the network it attached to.
func (b *Broker) syncAdvertsTo(n topology.NodeID) {
	b.mu.Lock()
	known := make(map[string]bool, len(b.ownAdverts))
	for s := range b.ownAdverts {
		known[s] = true
	}
	for d, set := range b.adverts {
		if d == n {
			continue
		}
		for s := range set {
			known[s] = true
		}
	}
	streams := make([]string, 0, len(known))
	for s := range known {
		streams = append(streams, s)
	}
	sort.Strings(streams)
	b.mu.Unlock()
	for _, s := range streams {
		b.net.CountControl(b.Node, n, advertSize)
		b.net.Peer(n).AdvertFrom(b.Node, s)
	}
}

// sortedDirs returns the direction keys in ascending neighbor order, so
// replay and un-suppression sweeps are deterministic.
func sortedDirs(dirs map[topology.NodeID]*dirIndex) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(dirs))
	for d := range dirs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedNodeSet(set map[topology.NodeID]bool) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

const (
	advertSize  = 32
	retractSize = 40 // ID + epoch, no filter payload
)

func subSize(s *Subscription) int {
	return 32 + 16*len(s.Streams) + 8*len(s.Attrs) + 24*len(s.Filters)
}
