package pubsub

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/stream"
	"repro/internal/topology"
)

// Handler consumes tuples delivered to a local subscriber.
type Handler func(sub *Subscription, t stream.Tuple)

// Peer is the broker-to-broker protocol: the three message kinds that cross
// overlay links. In-process networks implement it with direct calls;
// transport adapters (e.g. the TCP transport) implement it over the wire.
type Peer interface {
	// AdvertFrom delivers a stream advertisement arriving from a
	// neighbor.
	AdvertFrom(from topology.NodeID, streamName string)
	// PropagateFrom delivers a subscription arriving from a neighbor.
	PropagateFrom(sub *Subscription, from topology.NodeID)
	// RouteFrom delivers a data tuple arriving from a neighbor.
	RouteFrom(t stream.Tuple, from topology.NodeID)
}

// Fabric connects a broker to its neighbors and accounts traffic. It is the
// seam between the routing logic and the deployment substrate.
type Fabric interface {
	// Peer returns the protocol endpoint of a neighbor broker.
	Peer(n topology.NodeID) Peer
	// CountControl and CountData account per-link traffic in bytes.
	CountControl(from, to topology.NodeID, size int)
	CountData(from, to topology.NodeID, size int)
}

// AdvertFrom, PropagateFrom and RouteFrom make *Broker itself a Peer, so
// in-process fabrics hand brokers out directly.
func (b *Broker) AdvertFrom(from topology.NodeID, streamName string) { b.advertFrom(from, streamName) }

// PropagateFrom implements Peer.
func (b *Broker) PropagateFrom(sub *Subscription, from topology.NodeID) { b.propagate(sub, from) }

// RouteFrom implements Peer.
func (b *Broker) RouteFrom(t stream.Tuple, from topology.NodeID) { b.route(t, from) }

var _ Peer = (*Broker)(nil)

// localSub is a client subscription attached to a broker.
type localSub struct {
	sub     *Subscription
	handler Handler
	// sentTo records the neighbors this subscription was actually
	// propagated to. Covering suppression of a later local subscription
	// toward neighbor n is sound only when the covering one was sent to n
	// — a local subscription registered before the relevant adverts
	// arrived was sent nowhere and must not suppress anything. The map is
	// shared with the compiled index entry and mutated under Broker.mu.
	sentTo map[topology.NodeID]bool
}

// Broker is one overlay node of the Pub/Sub network. Brokers are wired into
// an acyclic overlay by Network; all routing state is per-neighbor:
//
//   - adverts[n] holds the streams advertised from direction n, guiding
//     subscription propagation (Fig 2(a));
//   - subs[n] holds the subscriptions received from direction n, i.e. the
//     interests living "behind" that neighbor (Fig 2(c)); a message is
//     forwarded to n only when one of them matches (Fig 2(d)).
type Broker struct {
	Node topology.NodeID

	mu        sync.Mutex
	net       Fabric
	neighbors []topology.NodeID
	adverts   map[topology.NodeID]map[string]bool
	subs      map[topology.NodeID][]*Subscription
	locals    []localSub
	// published advertisements by this broker's clients.
	ownAdverts map[string]bool

	// idx mirrors subs and locals as the matching/forwarding index (see
	// index.go); it is maintained incrementally under mu.
	idx *matchIndex
	// linearMatch routes and suppresses with the retained linear
	// reference matcher instead of the index. The two are equivalent
	// bit-for-bit (equivalence tests); the linear path is the reference
	// implementation and the pre-index benchmark baseline.
	linearMatch bool
	// matchScratch collects per-neighbor matched candidates under mu,
	// avoiding a per-tuple allocation on the indexed path.
	matchScratch []*compiledSub
}

// NewBroker creates a broker wired to a fabric. Neighbors are added with
// AddNeighbor; in-process networks do this during overlay construction.
func NewBroker(net Fabric, node topology.NodeID) *Broker {
	return &Broker{
		Node:       node,
		net:        net,
		adverts:    make(map[topology.NodeID]map[string]bool),
		subs:       make(map[topology.NodeID][]*Subscription),
		ownAdverts: make(map[string]bool),
		idx:        newMatchIndex(),
	}
}

// SetLinearMatching switches the broker between the inverted matching index
// and the retained linear reference matcher. Both produce identical
// forwarding decisions, deliveries and traffic; the linear path exists as
// the reference implementation and baseline for benchmarks.
func (b *Broker) SetLinearMatching(on bool) {
	b.mu.Lock()
	b.linearMatch = on
	b.mu.Unlock()
}

// Advertise announces that this broker's clients will publish the given
// stream. The advertisement floods the overlay so every broker learns the
// direction toward the publisher.
//
// Advert traffic is accounted at the SEND side, like subscription
// propagation and data forwarding: every advert that crosses a link is
// charged by its sender, including re-advertisements the receiver will
// duplicate-suppress. (The accounting used to live at the receive side,
// charged only for streams the receiver had not seen, so suppressed adverts
// that still crossed the link went uncounted.)
func (b *Broker) Advertise(streamName string) {
	b.mu.Lock()
	b.ownAdverts[streamName] = true
	neighbors := append([]topology.NodeID(nil), b.neighbors...)
	b.mu.Unlock()
	for _, n := range neighbors {
		b.net.CountControl(b.Node, n, advertSize)
		b.net.Peer(n).AdvertFrom(b.Node, streamName)
	}
}

func (b *Broker) advertFrom(from topology.NodeID, streamName string) {
	b.mu.Lock()
	set, ok := b.adverts[from]
	if !ok {
		set = make(map[string]bool)
		b.adverts[from] = set
	}
	if set[streamName] {
		b.mu.Unlock()
		return // already known; stop the flood
	}
	set[streamName] = true
	neighbors := append([]topology.NodeID(nil), b.neighbors...)
	b.mu.Unlock()
	for _, n := range neighbors {
		if n != from {
			b.net.CountControl(b.Node, n, advertSize)
			b.net.Peer(n).AdvertFrom(b.Node, streamName)
		}
	}
}

// Subscribe registers a local client subscription and propagates it toward
// the advertised publishers, suppressing propagation covered by an earlier
// subscription sent the same way (the p1∪p2 merge point of Fig 3).
func (b *Broker) Subscribe(sub *Subscription, h Handler) error {
	if sub == nil || len(sub.Streams) == 0 {
		return fmt.Errorf("pubsub: empty subscription")
	}
	b.mu.Lock()
	l := localSub{sub: sub, handler: h, sentTo: make(map[topology.NodeID]bool)}
	b.locals = append(b.locals, l)
	c := compileSub(sub, h)
	c.sentTo = l.sentTo
	b.idx.locals.add(c)
	b.mu.Unlock()
	b.propagate(sub, -1)
	return nil
}

// Unsubscribe removes a local client subscription by ID. Routing state at
// other brokers is left in place (as in Siena, stale entries only cost
// spurious forwarding and are cleaned by re-subscription epochs).
func (b *Broker) Unsubscribe(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	kept := b.locals[:0]
	for _, l := range b.locals {
		if l.sub.ID != id {
			kept = append(kept, l)
		}
	}
	b.locals = kept
	b.idx.rebuildLocals(b.locals)
}

// propagate forwards a subscription to every neighbor that advertises one
// of its streams (except the neighbor it came from), unless a subscription
// already forwarded from that direction covers it. Covering scans consult
// the matching index: a covering subscription must list sub's first stream,
// so only that posting list's candidates are examined.
func (b *Broker) propagate(sub *Subscription, from topology.NodeID) {
	if sub == nil || len(sub.Streams) == 0 {
		// Subscribe validates this, but PropagateFrom is also reachable
		// from wire transports; a streamless subscription matches
		// nothing and must not be recorded or flooded.
		return
	}
	b.mu.Lock()
	if from >= 0 {
		// Record the interest living behind 'from'.
		if !b.coveredFrom(from, sub) {
			clone := sub.Clone()
			b.subs[from] = append(b.subs[from], clone)
			b.idx.dir(from).add(compileSub(clone, nil))
		}
	}
	targets := make([]topology.NodeID, 0, len(b.neighbors))
	for _, n := range b.neighbors {
		if n == from {
			continue
		}
		if !b.advertisesAny(n, sub.Streams) {
			continue
		}
		// Covering suppression: a DIFFERENT subscription covering this
		// one already pulls a superset of its traffic toward n, so this
		// one need not be sent there. A subscription recorded FROM the
		// target direction cannot suppress (it was never sent toward n),
		// and the subscription's own just-recorded clone must not
		// suppress it, so identity is compared by ID. A locally-
		// originated covering subscription suppresses only toward
		// neighbors it was actually propagated to (its sentTo set):
		// locals registered before the relevant adverts arrived were
		// sent nowhere and guarantee nothing. (Locals used to be
		// invisible here entirely, so a second local subscription
		// covered by an earlier local one still flooded the overlay.)
		if b.coveredByLocalToward(n, sub) || b.coveredExcept(n, sub) {
			continue
		}
		targets = append(targets, n)
	}
	if from < 0 {
		// Record where this local subscription is being sent; later
		// covered subscriptions may suppress toward exactly these
		// neighbors. The most recent registration owns the ID.
		for i := len(b.locals) - 1; i >= 0; i-- {
			if b.locals[i].sub.ID == sub.ID {
				for _, n := range targets {
					b.locals[i].sentTo[n] = true
				}
				break
			}
		}
	}
	b.mu.Unlock()
	for _, n := range targets {
		b.net.CountControl(b.Node, n, subSize(sub))
		b.net.Peer(n).PropagateFrom(sub, b.Node)
	}
}

// coveredFrom reports whether a subscription already recorded from direction
// `from` covers sub.
func (b *Broker) coveredFrom(from topology.NodeID, sub *Subscription) bool {
	if b.linearMatch {
		for _, s := range b.subs[from] {
			if s.Covers(sub) {
				return true
			}
		}
		return false
	}
	for _, c := range b.idx.dir(from).coverCandidates(sub) {
		if c.sub.Covers(sub) {
			return true
		}
	}
	return false
}

// coveredExcept reports whether a different subscription recorded from any
// direction other than n covers sub.
func (b *Broker) coveredExcept(n topology.NodeID, sub *Subscription) bool {
	if b.linearMatch {
		for dir, lst := range b.subs {
			if dir == n {
				continue
			}
			for _, s := range lst {
				if s.ID != sub.ID && s.Covers(sub) {
					return true
				}
			}
		}
		return false
	}
	for dir, d := range b.idx.dirs {
		if dir == n {
			continue
		}
		for _, c := range d.coverCandidates(sub) {
			if c.sub.ID != sub.ID && c.sub.Covers(sub) {
				return true
			}
		}
	}
	return false
}

// coveredByLocalToward reports whether a different local client
// subscription that was actually propagated to neighbor n covers sub.
func (b *Broker) coveredByLocalToward(n topology.NodeID, sub *Subscription) bool {
	if b.linearMatch {
		for _, l := range b.locals {
			if l.sentTo[n] && l.sub.ID != sub.ID && l.sub.Covers(sub) {
				return true
			}
		}
		return false
	}
	for _, c := range b.idx.locals.coverCandidates(sub) {
		if c.sentTo[n] && c.sub.ID != sub.ID && c.sub.Covers(sub) {
			return true
		}
	}
	return false
}

func (b *Broker) advertisesAny(neighbor topology.NodeID, streams []string) bool {
	set, ok := b.adverts[neighbor]
	if !ok {
		return false
	}
	for _, s := range streams {
		if set[s] {
			return true
		}
	}
	return false
}

// Publish injects a tuple produced by this broker's clients and routes it
// through the overlay.
func (b *Broker) Publish(t stream.Tuple) {
	b.route(t, -1)
}

// delivery is one matched local subscription, captured under the lock and
// invoked after releasing it.
type delivery struct {
	h    Handler
	sub  *Subscription
	keep map[string]bool // projection set; nil = all attributes
}

// hop is one forwarding decision toward a neighbor.
type hop struct {
	to    topology.NodeID
	attrs map[string]bool // nil = all
}

// route delivers the tuple locally and forwards it once per interested
// neighbor, projecting the payload down to the union of downstream
// attribute interests (early projection, §2). Matching runs on the inverted
// index (matchIndexed) or on the retained linear reference (matchLinear);
// the two produce identical decisions.
func (b *Broker) route(t stream.Tuple, from topology.NodeID) {
	b.mu.Lock()
	var locals []delivery
	var hops []hop
	if b.linearMatch {
		locals, hops = b.matchLinear(t, from)
	} else {
		locals, hops = b.matchIndexed(t, from)
	}
	b.mu.Unlock()

	// Local deliveries run first, in subscription-registration order,
	// outside the lock so handlers are free to call back into the broker.
	// (They used to run via deferred calls: LIFO — the reverse of
	// registration — and only after all forwarding.) A subscription that
	// keeps every attribute gets its own copy of the attribute map so a
	// handler mutating its tuple cannot corrupt the forwarded copies or a
	// later handler's view.
	for _, d := range locals {
		pt := projectAttrs(t, d.keep)
		if d.keep == nil {
			pt.Attrs = make(map[string]stream.Value, len(t.Attrs))
			for a, v := range t.Attrs {
				pt.Attrs[a] = v
			}
		}
		d.h(d.sub, pt)
	}
	for _, h := range hops {
		fwd := projectAttrs(t, h.attrs)
		b.net.CountData(b.Node, h.to, fwd.Size)
		b.net.Peer(h.to).RouteFrom(fwd, b.Node)
	}
}

// matchLinear is the reference matcher: every local subscription and every
// recorded subscription of each outgoing direction is tested against the
// tuple. Retained for the equivalence tests and the pre-index baseline.
func (b *Broker) matchLinear(t stream.Tuple, from topology.NodeID) ([]delivery, []hop) {
	var locals []delivery
	for _, l := range b.locals {
		if l.sub.Matches(t) && l.handler != nil {
			locals = append(locals, delivery{h: l.handler, sub: l.sub, keep: keepSet(l.sub.Attrs)})
		}
	}
	var hops []hop
	for _, n := range b.neighbors {
		if n == from {
			continue
		}
		var wanted map[string]bool
		interested := false
		all := false
		for _, s := range b.subs[n] {
			if !s.Matches(t) {
				continue
			}
			interested = true
			if s.Attrs == nil {
				all = true
				break
			}
			if wanted == nil {
				wanted = make(map[string]bool)
			}
			for _, a := range s.Attrs {
				wanted[a] = true
			}
		}
		if !interested {
			continue
		}
		if all {
			wanted = nil
		}
		hops = append(hops, hop{to: n, attrs: wanted})
	}
	return locals, hops
}

// matchIndexed matches via the inverted index: only the posting list of the
// tuple's stream is consulted per direction, each candidate evaluates its
// compiled filter groups, and when every candidate matches, the forwarding
// projection is the direction's precomputed per-stream union instead of a
// per-tuple rebuild.
func (b *Broker) matchIndexed(t stream.Tuple, from topology.NodeID) ([]delivery, []hop) {
	var locals []delivery
	for _, c := range b.idx.locals.byStream[t.Stream] {
		if c.handler != nil && c.matches(t) {
			locals = append(locals, delivery{h: c.handler, sub: c.sub, keep: c.keep})
		}
	}
	var hops []hop
	for _, n := range b.neighbors {
		if n == from {
			continue
		}
		d, ok := b.idx.dirs[n]
		if !ok {
			continue
		}
		cands := d.byStream[t.Stream]
		if len(cands) == 0 {
			continue
		}
		matched := b.matchScratch[:0]
		all := false
		for _, c := range cands {
			if !c.matches(t) {
				continue
			}
			if c.keep == nil {
				all = true
				break
			}
			matched = append(matched, c)
		}
		b.matchScratch = matched // retain grown capacity for the next tuple
		var wanted map[string]bool
		switch {
		case all:
			wanted = nil
		case len(matched) == 0:
			continue // not interested
		case len(matched) == len(cands):
			// Every candidate matched, and none keeps all attributes
			// (such a candidate would have matched too): the
			// incrementally maintained union IS the per-tuple union.
			// The map is immutable (copy-on-write on subscribe), so
			// handing it out is safe.
			wanted = d.union[t.Stream].keep
		default:
			wanted = make(map[string]bool)
			for _, c := range matched {
				for a := range c.keep {
					wanted[a] = true
				}
			}
		}
		hops = append(hops, hop{to: n, attrs: wanted})
	}
	return locals, hops
}

// keepSet converts an attribute projection list to the lookup-set form used
// by projectAttrs (nil stays nil = keep all).
func keepSet(attrs []string) map[string]bool {
	if attrs == nil {
		return nil
	}
	keep := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		keep[a] = true
	}
	return keep
}

func projectAttrs(t stream.Tuple, keep map[string]bool) stream.Tuple {
	if keep == nil {
		return t
	}
	out := stream.Tuple{Stream: t.Stream, Timestamp: t.Timestamp, Attrs: make(map[string]stream.Value, len(keep))}
	for a := range keep {
		if v, ok := t.Attrs[a]; ok {
			out.Attrs[a] = v
		}
	}
	// Size scales with retained attributes (8 bytes per value plus a
	// fixed header), mirroring the early-projection bandwidth savings.
	out.Size = tupleSize(len(out.Attrs))
	return out
}

func tupleSize(attrs int) int { return 16 + 8*attrs }

// AddNeighbor registers an overlay neighbor.
func (b *Broker) AddNeighbor(n topology.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, x := range b.neighbors {
		if x == n {
			return
		}
	}
	b.neighbors = append(b.neighbors, n)
}

// Neighbors returns the broker's overlay neighbors sorted by node ID.
func (b *Broker) Neighbors() []topology.NodeID {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := append([]topology.NodeID(nil), b.neighbors...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

const advertSize = 32

func subSize(s *Subscription) int {
	return 32 + 16*len(s.Streams) + 8*len(s.Attrs) + 24*len(s.Filters)
}
