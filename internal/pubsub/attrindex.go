package pubsub

import (
	"math"
	"slices"
	"sort"

	"repro/internal/query"
	"repro/internal/stream"
)

// This file implements attribute-level candidate intersection — the second
// pruning stage of the matching engine. The stream posting lists bound the
// candidates of a tuple by the per-stream population; for large populations
// with selective filters that is still O(candidates) interval tests per
// tuple. The prune index cuts the evaluated set down to the candidates whose
// compiled interval on one chosen attribute actually admits the tuple's
// value:
//
//   - per (direction, stream) and per constrained attribute, the candidates'
//     compiled query.Intervals are held twice: sorted by lower bound as an
//     implicit balanced stabbing tree (augmented with the subtree's maximal
//     upper bound), and sorted by upper bound for an O(log n) stab-count
//     estimate;
//   - candidates with no compiled interval on the attribute (unconstrained,
//     or constrained only by raw/string filters) are listed in `rest` — they
//     are candidates regardless of the tuple's value on that attribute;
//   - at match time the broker picks the most selective constrained
//     attribute of the incoming tuple (smallest estimated stab count plus
//     rest), stabs the tree, and evaluates only stabbed ∪ rest, in
//     posting-list order.
//
// The stab test uses only the interval's pure bounds (query.AdmitsLower ∧
// AdmitsUpper) — a superset of Interval.ContainsFloat (which additionally
// rejects disequality points, string constraints and contradictions) — so
// the selected set is always a superset of the matching set and the exact
// compiledSub.matches run on it reproduces the full scan bit for bit
// (TestPrunedCandidateSuperset). String-typed or NaN tuple values cannot be
// pruned on (their comparisons fall back to raw predicates) and fall back
// to the full posting list, exactly as before.
//
// The index is rebuilt lazily: add/remove invalidate the affected stream's
// entry and the first route through it rebuilds it — under the broker lock
// on the locked reference path (dirIndex.attrIndex), or lock-free per
// snapshot epoch on the snapshot path (streamSnap.pruneIndex, which relies
// on buildAttrPruneIndex being a pure function of the frozen posting list).
// A built index is immutable either way; invalidation replaces, never
// mutates.

// pruneMin is the posting-list population below which the prune index is
// not built: selection and merge overhead beats a handful of direct
// interval tests. Package variable so tests can force pruning on tiny
// populations.
var pruneMin = 16

// attrPruneIndex is the prune index of one (direction, stream) posting
// list.
type attrPruneIndex struct {
	attrs []attrIvIndex // one per constrained attribute, sorted by name
}

// attrIvIndex indexes the compiled intervals of one attribute over one
// posting list. Positions are indices into the posting list the index was
// built from (the index is invalidated on any add/remove, so they never go
// stale).
type attrIvIndex struct {
	attr string
	// entries is sorted by query.LowerLess and read as an implicit
	// balanced BST (midpoint recursion): all entries left of an index sort
	// at-or-before it, all entries right of it sort at-or-after.
	entries []ivEntry
	// maxUp[i] is the query.UpperMax over the implicit subtree rooted at
	// i: if it rejects the probe value, no interval in the subtree admits
	// it and the descent prunes the whole subtree.
	maxUp []query.Interval
	// ups holds the same intervals sorted by query.UpperLess, for the
	// binary-search stab-count estimate.
	ups []query.Interval
	// rest lists the posting-list positions with no compiled interval on
	// attr, ascending.
	rest []int32
}

// ivEntry is one candidate's compiled interval on one attribute.
type ivEntry struct {
	iv  query.Interval
	pos int32
}

// buildAttrPruneIndex compiles the prune index of one posting list, or
// returns nil when the population is too small or no candidate constrains
// any attribute.
func buildAttrPruneIndex(cands []*compiledSub) *attrPruneIndex {
	if len(cands) < pruneMin {
		return nil
	}
	byAttr := make(map[string][]ivEntry)
	for pos, c := range cands {
		for gi := range c.groups {
			g := &c.groups[gi]
			byAttr[g.attr] = append(byAttr[g.attr], ivEntry{iv: g.iv, pos: int32(pos)})
		}
	}
	if len(byAttr) == 0 {
		return nil
	}
	names := make([]string, 0, len(byAttr))
	for a := range byAttr {
		names = append(names, a)
	}
	sort.Strings(names)
	idx := &attrPruneIndex{attrs: make([]attrIvIndex, 0, len(names))}
	for _, a := range names {
		entries := byAttr[a]
		constrained := make([]bool, len(cands))
		for _, e := range entries {
			constrained[e.pos] = true
		}
		var rest []int32
		for pos := range cands {
			if !constrained[pos] {
				rest = append(rest, int32(pos))
			}
		}
		sort.Slice(entries, func(i, j int) bool { return query.LowerLess(entries[i].iv, entries[j].iv) })
		ups := make([]query.Interval, len(entries))
		for i, e := range entries {
			ups[i] = e.iv
		}
		sort.Slice(ups, func(i, j int) bool { return query.UpperLess(ups[i], ups[j]) })
		ai := attrIvIndex{attr: a, entries: entries, ups: ups, rest: rest,
			maxUp: make([]query.Interval, len(entries))}
		buildMaxUp(ai.entries, ai.maxUp, 0, len(entries))
		idx.attrs = append(idx.attrs, ai)
	}
	return idx
}

// buildMaxUp fills the subtree upper-bound augmentation of the implicit
// tree over entries[l:r) and returns the segment's maximum.
func buildMaxUp(entries []ivEntry, maxUp []query.Interval, l, r int) (query.Interval, bool) {
	if l >= r {
		return query.Interval{}, false
	}
	m := (l + r) / 2
	best := entries[m].iv
	if left, ok := buildMaxUp(entries, maxUp, l, m); ok {
		best = query.UpperMax(best, left)
	}
	if right, ok := buildMaxUp(entries, maxUp, m+1, r); ok {
		best = query.UpperMax(best, right)
	}
	maxUp[m] = best
	return best, true
}

// estimate returns an O(log n) stab-count estimate for value v: the number
// of lower bounds admitting v minus the number of upper bounds rejecting
// it. Exact for non-empty bound pairs; an estimate is all attribute
// selection needs (the stab itself is exact).
func (ai *attrIvIndex) estimate(v float64) int {
	admitLo := sort.Search(len(ai.entries), func(i int) bool { return !ai.entries[i].iv.AdmitsLower(v) })
	rejectHi := sort.Search(len(ai.ups), func(i int) bool { return ai.ups[i].AdmitsUpper(v) })
	if est := admitLo - rejectHi; est > 0 {
		return est
	}
	return 0
}

// stab appends to out the posting-list positions whose interval bounds
// admit v, walking the implicit tree over entries[l:r): a subtree whose
// maximal upper bound rejects v holds no admitting interval, and once a
// node's lower bound rejects v every entry to its right does too.
func stabTree(entries []ivEntry, maxUp []query.Interval, l, r int, v float64, out []int32) []int32 {
	for l < r {
		m := (l + r) / 2
		if !maxUp[m].AdmitsUpper(v) {
			return out
		}
		out = stabTree(entries, maxUp, l, m, v, out)
		if !entries[m].iv.AdmitsLower(v) {
			return out
		}
		if entries[m].iv.AdmitsUpper(v) {
			out = append(out, entries[m].pos)
		}
		l = m + 1
	}
	return out
}

// prunedCandidates selects the posting-list positions worth evaluating for
// t against d's posting list of t.Stream, in ascending (registration)
// order — the locked-path wrapper over pruneSelect, using the live
// dirIndex's cached prune index. ok reports whether pruning applies; when
// false the caller scans the full posting list. The returned slice aliases
// bufs scratch and is valid until the next call; the caller holds b.mu.
func (b *Broker) prunedCandidates(d *dirIndex, t stream.Tuple, cands []*compiledSub, bufs *routeBufs) ([]int32, bool) {
	if b.noPrune || len(cands) < pruneMin {
		return nil, false
	}
	return pruneSelect(d.attrIndex(t.Stream), t, len(cands), bufs)
}

// prunedSnapCandidates is the snapshot-path wrapper: same selection over
// the epoch's frozen posting list, with the prune index built lazily per
// epoch (streamSnap.pruneIndex) instead of cached on the live dirIndex.
// Runs without the broker lock; scratch lives in the caller's pooled bufs.
func prunedSnapCandidates(ss *streamSnap, t stream.Tuple, noPrune bool, bufs *routeBufs) ([]int32, bool) {
	if noPrune || len(ss.cands) < pruneMin {
		return nil, false
	}
	return pruneSelect(ss.pruneIndex(), t, len(ss.cands), bufs)
}

// pruneSelect picks the most selective constrained attribute of the tuple
// and stabs its interval tree, returning the positions worth evaluating in
// ascending (registration) order. ok is false when no usable constrained
// attribute exists or the estimated yield is too close to the full
// population (nCands) to pay for the merge. Pure with respect to ai — it
// writes only into bufs — so it serves both the locked path (under b.mu)
// and the lock-free snapshot path.
func pruneSelect(ai *attrPruneIndex, t stream.Tuple, nCands int, bufs *routeBufs) ([]int32, bool) {
	if ai == nil {
		return nil, false
	}
	best := -1
	bestEst := 0
	bestAbsent := false
	for i := range ai.attrs {
		a := &ai.attrs[i]
		v, ok := t.Get(a.attr)
		var est int
		absent := false
		switch {
		case !ok:
			// The tuple lacks the attribute: every constrained
			// candidate fails its group test, so only rest remains.
			est, absent = len(a.rest), true
		case v.Type == stream.String || math.IsNaN(v.F):
			// Interval bounds cannot express Compare's string/NaN
			// semantics; this attribute cannot prune.
			continue
		default:
			est = a.estimate(v.F) + len(a.rest)
		}
		if best < 0 || est < bestEst {
			best, bestEst, bestAbsent = i, est, absent
		}
	}
	if best < 0 || 2*bestEst >= nCands {
		return nil, false
	}
	a := &ai.attrs[best]
	if bestAbsent {
		return a.rest, true
	}
	v, _ := t.Get(a.attr)
	stab := stabTree(a.entries, a.maxUp, 0, len(a.entries), v.F, bufs.stab[:0])
	bufs.stab = stab
	// Restore posting-list order. The tree emits lower-bound order, which
	// correlates with registration order only by accident, so this must
	// not assume near-sortedness (slices.Sort is O(k log k) regardless).
	slices.Sort(stab)
	sel := mergePos(stab, a.rest, bufs.sel[:0])
	bufs.sel = sel
	return sel, true
}

// mergePos merges two ascending position slices (disjoint by construction:
// a posting-list entry is either constrained on the attribute or in rest).
func mergePos(a, b []int32, out []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
