package pubsub

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
	"repro/internal/topology"
)

// This file property-tests the two matching-engine v2 structures:
//
//   - the attribute-prune index: the selected candidate set is always a
//     superset of the exactly-matching set (so evaluating only the
//     selection reproduces the full posting-list scan);
//   - the covered-by churn index: after arbitrary churn, the recorded
//     suppression edges equal a from-scratch recomputation of which
//     (record, neighbor) propagation decisions are suppressed, and every
//     recorded suppressor is a currently valid cover.

// TestPrunedCandidateSuperset: over random subscription populations and
// tuples, prunedCandidates returns a superset of the posting-list positions
// whose subscription matches the tuple, in ascending order.
func TestPrunedCandidateSuperset(t *testing.T) {
	old := pruneMin
	pruneMin = 0
	defer func() { pruneMin = old }()
	for seed := uint64(0); seed < 60; seed++ {
		r := rand.New(rand.NewPCG(seed, 41))
		b := NewBroker(nil, 0)
		n := 5 + r.IntN(60)
		for i := 0; i < n; i++ {
			s := eqRandomSub(r, i)
			s.Streams = s.Streams[:1] // single stream: dense posting list
			s.Streams[0] = "R"
			c := compileSub(s, nil)
			c.sentTo = make(map[topology.NodeID]bool)
			b.idx.locals.add(c)
		}
		cands := b.idx.locals.byStream["R"]
		bufs := new(routeBufs)
		for trial := 0; trial < 40; trial++ {
			tup := eqRandomTuple(r)
			tup.Stream = "R"
			sel, ok := b.prunedCandidates(b.idx.locals, tup, cands, bufs)
			if !ok {
				continue // full scan: trivially complete
			}
			inSel := make(map[int32]bool, len(sel))
			prev := int32(-1)
			for _, p := range sel {
				if p <= prev {
					t.Fatalf("seed %d: selection not ascending: %v", seed, sel)
				}
				prev = p
				inSel[p] = true
			}
			for pos, c := range cands {
				if c.matches(tup) && !inSel[int32(pos)] {
					t.Fatalf("seed %d: matching candidate %s at %d missing from pruned selection %v for %s",
						seed, c.sub, pos, sel, renderTuple(tup))
				}
			}
		}
	}
}

// TestMatchIndexEquivalencePruneTiny re-runs the full index-equivalence
// suite with the prune-index population threshold at zero, so attribute
// pruning engages on the small randomized workloads (posting lists there
// are usually below the production threshold).
func TestMatchIndexEquivalencePruneTiny(t *testing.T) {
	old := pruneMin
	pruneMin = 0
	defer func() { pruneMin = old }()
	TestMatchIndexEquivalence(t)
	TestChurnReferenceEquivalence(t)
}

// coveredByStates collects each broker's records (locals and per-direction)
// for the covered-by consistency walk.
func allRecords(br *Broker) []*compiledSub {
	out := append([]*compiledSub(nil), br.idx.locals.subs...)
	for _, d := range sortedDirs(br.idx.dirs) {
		out = append(out, br.idx.dirs[d].subs...)
	}
	return out
}

// checkCoveredByIndex asserts that a broker's covered-by index equals a
// from-scratch covering recomputation:
//
//   - completeness: every eligible-but-unsent (record, neighbor) decision —
//     the exact set a recomputation would classify as suppressed — holds a
//     suppression edge, and no edge exists for a sent or ineligible pair;
//   - validity: every edge's suppressor is a currently recorded, different
//     subscription that was sent toward the neighbor and covers the record
//     (the suppressor identity itself may lag the recomputation's
//     first-cover choice — any valid cover preserves the fixpoint);
//   - symmetry: forward (coveredBy) and reverse (suppresses) sides agree.
func checkCoveredByIndex(t *testing.T, br *Broker, seed uint64) {
	t.Helper()
	br.mu.Lock()
	defer br.mu.Unlock()
	recs := allRecords(br)
	recorded := make(map[*compiledSub]bool, len(recs))
	for _, c := range recs {
		recorded[c] = true
	}
	for _, c := range recs {
		for n, cov := range c.coveredBy {
			if c.sentTo[n] {
				t.Errorf("seed %d: broker %d: %s both sent toward and suppressed toward %d", seed, br.Node, c.sub, n)
			}
			if n == c.srcDir || !br.advertisesAny(n, c.sub.Streams) {
				t.Errorf("seed %d: broker %d: %s suppressed toward ineligible neighbor %d", seed, br.Node, c.sub, n)
			}
			if !recorded[cov] {
				t.Errorf("seed %d: broker %d: suppressor of %s toward %d is no longer recorded", seed, br.Node, c.sub, n)
				continue
			}
			if !cov.sentTo[n] || cov.sub.ID == c.sub.ID || !cov.sub.Covers(c.sub) {
				t.Errorf("seed %d: broker %d: %s has invalid suppressor %s toward %d", seed, br.Node, c.sub, cov.sub, n)
			}
			if !cov.suppresses[covEdge{rec: c, to: n}] {
				t.Errorf("seed %d: broker %d: reverse edge missing for %s toward %d", seed, br.Node, c.sub, n)
			}
		}
		for e := range c.suppresses {
			if e.rec.coveredBy[e.to] != c {
				t.Errorf("seed %d: broker %d: dangling reverse edge %s toward %d", seed, br.Node, e.rec.sub, e.to)
			}
		}
		// Completeness: the from-scratch recomputation of the suppressed
		// set is exactly {(c, n): n eligible, not sent} — the lifecycle
		// fixpoint guarantees a cover exists for each.
		for _, nb := range br.neighbors {
			if nb == c.srcDir || c.sentTo[nb] || !br.advertisesAny(nb, c.sub.Streams) {
				continue
			}
			if c.coveredBy[nb] == nil {
				t.Errorf("seed %d: broker %d: %s unsent toward eligible %d but holds no suppression edge",
					seed, br.Node, c.sub, nb)
			}
		}
	}
}

// TestCoveredByIndexMatchesRecomputation: after randomized churn workloads
// (both matching modes maintain the index), every broker's covered-by index
// equals the from-scratch covering recomputation, and stays consistent
// after withdrawing a random subset of the survivors.
func TestCoveredByIndexMatchesRecomputation(t *testing.T) {
	for _, linear := range []bool{false, true} {
		name := "indexed"
		if linear {
			name = "linear"
		}
		t.Run(name, func(t *testing.T) {
			for seed := uint64(0); seed < 25; seed++ {
				r := rand.New(rand.NewPCG(seed, 99))
				nodes := 4 + int(seed%4)
				oracle, ids := eqNetwork(t, r, nodes)
				ops := eqScenario(r, nodes)
				net, err := NewNetwork(oracle, ids)
				if err != nil {
					t.Fatal(err)
				}
				if linear {
					net.SetLinearMatching(true)
				}
				var log []string
				runEqScenario(t, net, ops, &log)
				for _, n := range net.Nodes() {
					br, _ := net.Broker(n)
					checkCoveredByIndex(t, br, seed)
				}
				// Withdraw a random half of the survivors and re-check:
				// un-suppression must leave the index equal to the
				// recomputation again.
				for _, o := range ops {
					if o.kind == eqSubscribe && r.IntN(2) == 0 {
						br, _ := net.Broker(o.node)
						br.Unsubscribe(o.sub.ID)
					}
				}
				for _, n := range net.Nodes() {
					br, _ := net.Broker(n)
					checkCoveredByIndex(t, br, seed)
				}
			}
		})
	}
}

// TestPrunedRouteMatchesUnpruned: on a dense single-stream population large
// enough to engage the production prune threshold, pruned and unpruned
// matching deliver identical tuples.
func TestPrunedRouteMatchesUnpruned(t *testing.T) {
	build := func(prune bool, log *[]string) *Network {
		g := topology.NewGraph(2)
		if err := g.AddEdge(0, 1, 1); err != nil {
			t.Fatal(err)
		}
		net, err := NewNetwork(topology.NewOracle(g), []topology.NodeID{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		net.SetAttrPruning(prune)
		src, _ := net.Broker(0)
		dst, _ := net.Broker(1)
		src.Advertise("R")
		r := rand.New(rand.NewPCG(7, 55))
		for i := 0; i < 80; i++ {
			s := eqRandomSub(r, i)
			s.Streams = []string{"R"}
			id := s.ID
			if err := dst.Subscribe(s, func(sub *Subscription, tp stream.Tuple) {
				*log = append(*log, fmt.Sprintf("%s %s", id, renderTuple(tp)))
			}); err != nil {
				t.Fatal(err)
			}
		}
		return net
	}
	var prunedLog, plainLog []string
	pruned := build(true, &prunedLog)
	plain := build(false, &plainLog)
	r := rand.New(rand.NewPCG(8, 56))
	for i := 0; i < 200; i++ {
		tup := eqRandomTuple(r)
		tup.Stream = "R"
		srcP, _ := pruned.Broker(0)
		srcU, _ := plain.Broker(0)
		srcP.Publish(tup)
		srcU.Publish(tup)
	}
	if len(prunedLog) == 0 {
		t.Fatal("no deliveries: test not exercising the match path")
	}
	if fmt.Sprint(prunedLog) != fmt.Sprint(plainLog) {
		t.Fatalf("pruned and unpruned deliveries differ:\npruned: %v\nplain:  %v", prunedLog, plainLog)
	}
}
