package pubsub

import (
	"sort"
	"sync/atomic"

	"repro/internal/stream"
	"repro/internal/topology"
)

// This file implements the RCU-style snapshot read path of the matching
// engine (see CONCURRENCY.md for the full memory model). The authoritative
// routing state — the per-direction dirIndex posting lists, compiled filter
// intervals and projection unions of index.go — stays mutable under
// Broker.mu exactly as before. What changes is how route reads it: every
// churn operation that mutates the index rebuilds the affected slice of an
// immutable matchSnapshot under the lock and publishes it with one atomic
// pointer swap (Broker.publishLocked). route loads the pointer once and
// matches against that frozen epoch without taking the lock at all, so
// concurrent publishes from different neighbors match in parallel and never
// block on (or observe a half-applied) subscribe/retract/advertise.
//
// Immutability contract (enforced by the lockdiscipline analyzer's
// cosmoslint:snapshot rule): snapshot types are write-once — populated only
// inside the builder that constructs them, never mutated after the
// atomic.Pointer publish. The one deliberate exception is streamSnap.prune,
// itself an atomic pointer to an immutable pruneSlot, built lazily by the
// first route through the stream (buildAttrPruneIndex is a pure function of
// the frozen posting list, so racing builders store identical values and
// whichever wins is correct).
//
// Sharing discipline: snapshots do NOT deep-copy the matching state. They
// alias the live d.byStream posting-list slices, the *compiledSub matching
// fields (sub, keep, groups, raw — write-once at compileSub) and the
// *attrUnion maps (copy-on-write by construction). This is sound because
// the write side never mutates shared memory in place: dirIndex.remove
// replaces a posting list with a fresh copy instead of splicing (see
// index.go), dirIndex.add appends — which writes only beyond every
// published snapshot's length — and the lifecycle fields a churn operation
// does mutate in place (sentTo, coveredBy, suppresses, seq) are never read
// by the match path. A snapshot therefore stays internally consistent
// forever; it just goes stale, and the next publish swaps it out wholesale.

// matchSnapshot is one published epoch of a broker's matching state: the
// neighbor set, the local-subscription view and one dirSnap per direction
// that held records at publish time. Reached only via Broker.snap.Load();
// the single top-level pointer is what makes an epoch atomic — a route
// either sees all of a churn operation's effects or none of them.
//
// cosmoslint:snapshot
type matchSnapshot struct {
	neighbors []topology.NodeID
	locals    *dirSnap
	dirs      map[topology.NodeID]*dirSnap
	// noPrune freezes the broker's attribute-pruning mode into the epoch,
	// so a mode toggle behaves like any other churn: it republishes, and
	// in-flight routes finish on the epoch they loaded.
	noPrune bool
}

// dirSnap is the frozen per-stream view of one direction: the posting-list
// entries sorted by stream name for binary-search lookup. Directions with
// no posting lists publish an empty dirSnap (or none at all — route treats
// both as "not interested").
//
// cosmoslint:snapshot
type dirSnap struct {
	streams []streamSnapEntry
}

// streamSnapEntry pairs a stream name with its frozen posting-list view.
//
// cosmoslint:snapshot
type streamSnapEntry struct {
	name string
	ss   *streamSnap
}

// streamSnap is the frozen matching state of one (direction, stream) pair:
// the posting list (aliasing the live slice — never spliced, see
// dirIndex.remove), the projection union, and the lazily built prune index.
//
// cosmoslint:snapshot
type streamSnap struct {
	cands []*compiledSub
	union *attrUnion
	// prune caches the attribute-prune index of cands, built by the first
	// route that wants it (pruneIndex). The indirection through pruneSlot
	// distinguishes "not built yet" (nil pointer) from "built, population
	// not worth indexing" (slot with nil idx).
	prune atomic.Pointer[pruneSlot]
}

// pruneSlot is the build-once result cell of streamSnap.prune.
//
// cosmoslint:snapshot
type pruneSlot struct {
	idx *attrPruneIndex
}

// stream returns the frozen view of one stream's posting list, or nil when
// the direction holds no subscriptions on it.
func (ds *dirSnap) stream(s string) *streamSnap {
	lo, hi := 0, len(ds.streams)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ds.streams[mid].name < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ds.streams) && ds.streams[lo].name == s {
		return ds.streams[lo].ss
	}
	return nil
}

// pruneIndex returns the snapshot's attribute-prune index (attrindex.go),
// building it on first use. Unlike the live dirIndex.attrIndex cache this
// runs OUTSIDE the broker lock, on the lock-free route path: correctness
// rests on buildAttrPruneIndex being a pure function of the frozen cands
// slice, so two racing builders compute identical indexes and either store
// may win.
func (ss *streamSnap) pruneIndex() *attrPruneIndex {
	if slot := ss.prune.Load(); slot != nil {
		return slot.idx
	}
	idx := buildAttrPruneIndex(ss.cands)
	ss.prune.Store(&pruneSlot{idx: idx})
	return idx
}

// newStreamSnap freezes one (direction, stream) posting list. The slices
// and maps are aliased, not copied — see the sharing discipline above.
func newStreamSnap(d *dirIndex, s string) *streamSnap {
	return &streamSnap{cands: d.byStream[s], union: d.union[s]}
}

// snapDir builds the frozen view of one direction. When the direction is
// clean since the previous epoch, the previous dirSnap is shared as-is
// (epoch construction is O(dirty streams), not O(index)); otherwise the
// dirty streams are re-frozen and merged into the previous entry list in
// one sorted walk. full forces a from-scratch rebuild (first publish, mode
// toggle, neighbor change). Caller holds Broker.mu.
func snapDir(d *dirIndex, prev *dirSnap, full bool) *dirSnap {
	if !full && prev != nil && len(d.dirtySnap) == 0 {
		return prev
	}
	if full || prev == nil {
		clear(d.dirtySnap)
		names := make([]string, 0, len(d.byStream))
		//lint:maporder names are put into canonical order by sort.Strings below
		for s := range d.byStream {
			names = append(names, s)
		}
		sort.Strings(names)
		ds := &dirSnap{streams: make([]streamSnapEntry, 0, len(names))}
		for _, s := range names {
			ds.streams = append(ds.streams, streamSnapEntry{name: s, ss: newStreamSnap(d, s)})
		}
		return ds
	}
	dirty := make([]string, 0, len(d.dirtySnap))
	//lint:maporder dirty names are put into canonical order by sort.Strings below
	for s := range d.dirtySnap {
		dirty = append(dirty, s)
	}
	sort.Strings(dirty)
	clear(d.dirtySnap)
	out := make([]streamSnapEntry, 0, len(prev.streams)+len(dirty))
	i, j := 0, 0
	for i < len(prev.streams) || j < len(dirty) {
		if j >= len(dirty) || (i < len(prev.streams) && prev.streams[i].name < dirty[j]) {
			out = append(out, prev.streams[i])
			i++
			continue
		}
		s := dirty[j]
		j++
		if i < len(prev.streams) && prev.streams[i].name == s {
			i++ // superseded (or fully drained) previous entry
		}
		// remove deletes emptied posting lists from byStream, so a dirty
		// stream with no list left simply drops out of the epoch.
		if len(d.byStream[s]) > 0 {
			out = append(out, streamSnapEntry{name: s, ss: newStreamSnap(d, s)})
		}
	}
	return &dirSnap{streams: out}
}

// publishLocked swaps in the next matching-state epoch. Every entry point
// that mutates the index (or the neighbor set, or a matching mode) calls it
// at the end of its critical section, so in any single-threaded execution
// the published snapshot is always exactly equivalent to the live index —
// which is what keeps the sequential equivalence suites bit-identical.
// Cheap when nothing relevant changed (one dirty check); O(dirty streams)
// otherwise. Caller holds b.mu.
func (b *Broker) publishLocked() {
	cur := b.snap.Load()
	if b.linearMatch || b.snapOff {
		// Reference modes route through the locked path; an epoch swap to
		// nil is how the mode change reaches in-flight routes. snapAll
		// stays set so re-enabling rebuilds from scratch (dirty marks kept
		// accumulating, but prev snapshots are gone).
		if cur != nil {
			b.snap.Store(nil)
		}
		b.snapAll = true
		return
	}
	full := b.snapAll || cur == nil
	if !full && !b.idx.dirtyAny() {
		return
	}
	next := &matchSnapshot{noPrune: b.noPrune}
	if full {
		next.neighbors = append([]topology.NodeID(nil), b.neighbors...)
		next.locals = snapDir(b.idx.locals, nil, true)
		next.dirs = make(map[topology.NodeID]*dirSnap, len(b.idx.dirs))
		for _, n := range b.idx.dirOrder {
			next.dirs[n] = snapDir(b.idx.dirs[n], nil, true)
		}
	} else {
		next.neighbors = cur.neighbors
		next.locals = snapDir(b.idx.locals, cur.locals, false)
		next.dirs = make(map[topology.NodeID]*dirSnap, len(b.idx.dirs))
		for _, n := range b.idx.dirOrder {
			next.dirs[n] = snapDir(b.idx.dirs[n], cur.dirs[n], false)
		}
	}
	b.snapAll = false
	b.snap.Store(next)
}

// dirtyAny reports whether any direction has unpublished posting-list
// changes. Caller holds Broker.mu.
func (m *matchIndex) dirtyAny() bool {
	if len(m.locals.dirtySnap) > 0 {
		return true
	}
	for _, n := range m.dirOrder {
		if len(m.dirs[n].dirtySnap) > 0 {
			return true
		}
	}
	return false
}

// nodeIn reports membership in a frozen neighbor slice (degrees are small,
// same linear-scan argument as neighborLocked).
func nodeIn(nodes []topology.NodeID, n topology.NodeID) bool {
	for _, x := range nodes {
		if x == n {
			return true
		}
	}
	return false
}

// matchSnap is matchIndexed against a frozen epoch: identical candidate
// enumeration, pruning, short-circuits and projection-union fast path, just
// reading the snapshot instead of the live index — so its decisions are bit
// for bit those matchIndexed would have made at publish time. Runs without
// Broker.mu; all scratch lives in the pooled bufs.
func matchSnap(snap *matchSnapshot, t stream.Tuple, from topology.NodeID, bufs *routeBufs, locals []delivery, hops []hop) ([]delivery, []hop) {
	if ls := snap.locals.stream(t.Stream); ls != nil {
		if sel, ok := prunedSnapCandidates(ls, t, snap.noPrune, bufs); ok {
			for _, p := range sel {
				if c := ls.cands[p]; c.handler != nil && c.matches(t) {
					locals = append(locals, delivery{h: c.handler, sub: c.sub, keep: c.keep})
				}
			}
		} else {
			for _, c := range ls.cands {
				if c.handler != nil && c.matches(t) {
					locals = append(locals, delivery{h: c.handler, sub: c.sub, keep: c.keep})
				}
			}
		}
	}
	for _, n := range snap.neighbors {
		if n == from {
			continue
		}
		ds, ok := snap.dirs[n]
		if !ok {
			continue
		}
		ss := ds.stream(t.Stream)
		if ss == nil {
			continue
		}
		cands := ss.cands
		matched := bufs.match[:0]
		all := false
		if sel, ok := prunedSnapCandidates(ss, t, snap.noPrune, bufs); ok {
			for _, p := range sel {
				c := cands[p]
				if !c.matches(t) {
					continue
				}
				if c.keep == nil {
					all = true
					break
				}
				matched = append(matched, c)
			}
		} else {
			for _, c := range cands {
				if !c.matches(t) {
					continue
				}
				if c.keep == nil {
					all = true
					break
				}
				matched = append(matched, c)
			}
		}
		bufs.match = matched // retain grown capacity for the next direction
		var wanted map[string]bool
		switch {
		case all:
			wanted = nil
		case len(matched) == 0:
			continue // not interested
		case len(matched) == len(cands):
			// Same argument as matchIndexed: every candidate matched and
			// none keeps all attributes, so the precomputed union IS the
			// per-tuple union, and the map is immutable by construction.
			wanted = ss.union.keep
		default:
			wanted = make(map[string]bool)
			for _, c := range matched {
				for a := range c.keep {
					wanted[a] = true
				}
			}
		}
		hops = append(hops, hop{to: n, attrs: wanted})
	}
	return locals, hops
}
