package pubsub

import (
	"testing"

	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
)

// This file tests the teardown half of the routing-state lifecycle: advert
// withdrawal (Unadvertise) flooding along the advert paths, the pruning of
// the subscription state each advert justified, covered-by re-decision, and
// the epoch rules that make duplicate floods and stale withdrawals no-ops.

// assertAdvertsDrained fails unless every broker's advert state — own
// advertisements, per-direction advert entries, and withdrawal tombstones —
// is empty: the advert-completeness half of drain-to-empty.
func assertAdvertsDrained(t *testing.T, net *Network) {
	t.Helper()
	for _, n := range net.Nodes() {
		br, _ := net.Broker(n)
		own, learned := br.AdvertStateSize()
		if own != 0 || learned != 0 {
			t.Errorf("broker %d still holds advert state: own=%d learned=%d", n, own, learned)
		}
		br.mu.Lock()
		for d, tombs := range br.unadvTomb {
			if len(tombs) > 0 {
				t.Errorf("broker %d holds %d unadvert tombstones from %d", n, len(tombs), d)
			}
		}
		br.mu.Unlock()
	}
}

// TestUnadvertisePrunesRemoteState: withdrawing a stream's advertisement
// removes, at every broker, the advert entries the flood installed AND the
// subscription records the advert alone justified — the publisher and every
// intermediate hop drain; the subscriber keeps only its local record.
func TestUnadvertisePrunesRemoteState(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	dst, _ := net.Broker(3)
	src.Advertise("R")

	hits := 0
	if err := dst.Subscribe(&Subscription{ID: "s", Streams: []string{"R"}},
		func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}
	// The subscription is recorded at brokers 0, 1, 2.
	for _, n := range []topology.NodeID{0, 1, 2} {
		b, _ := net.Broker(n)
		if remote, _ := b.RoutingStateSize(); remote != 1 {
			t.Fatalf("broker %d records %d subscriptions before unadvertise, want 1", n, remote)
		}
	}

	src.Unadvertise("R")
	// The advert state and the records it pulled in are gone everywhere;
	// only the subscriber's local record remains.
	for _, n := range net.Nodes() {
		b, _ := net.Broker(n)
		if remote, _ := b.RoutingStateSize(); remote != 0 {
			t.Fatalf("broker %d records %d subscriptions after unadvertise, want 0", n, remote)
		}
	}
	assertAdvertsDrained(t, net)
	if _, local := dst.RoutingStateSize(); local != 1 {
		t.Fatalf("subscriber lost its local record: %d locals", local)
	}
	// The local record's propagation marks toward the dead direction were
	// cleared, so a later re-advertise replays it (see below).
	dst.mu.Lock()
	rec := dst.idx.locals.find("s")
	sent := len(rec.sentTo)
	dst.mu.Unlock()
	if sent != 0 {
		t.Fatalf("local record still marked sent toward %d neighbors after unadvertise", sent)
	}

	// Re-advertising replays the surviving subscription toward the
	// publisher: delivery resumes end to end.
	src.Advertise("R")
	src.Publish(tuple("R", map[string]float64{"a": 1}))
	if hits != 1 {
		t.Fatalf("deliveries after re-advertise = %d, want 1 (subscription must replay)", hits)
	}
	if remote, _ := src.RoutingStateSize(); remote != 1 {
		t.Fatalf("publisher records %d subscriptions after re-advertise, want 1", remote)
	}
}

// TestUnadvertiseKeepsMultiStreamRecords: a subscription listing two streams
// stays recorded along the path while EITHER stream is advertised there; it
// is pruned only when the last justification disappears.
func TestUnadvertiseKeepsMultiStreamRecords(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	dst, _ := net.Broker(3)
	src.Advertise("R")
	src.Advertise("S")

	hits := 0
	if err := dst.Subscribe(&Subscription{ID: "rs", Streams: []string{"R", "S"}},
		func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}

	src.Unadvertise("R")
	// S still justifies the records: routing state intact, S tuples flow.
	for _, n := range []topology.NodeID{0, 1, 2} {
		b, _ := net.Broker(n)
		if remote, _ := b.RoutingStateSize(); remote != 1 {
			t.Fatalf("broker %d records %d subscriptions after partial unadvertise, want 1", n, remote)
		}
	}
	src.Publish(tuple("S", map[string]float64{"a": 1}))
	if hits != 1 {
		t.Fatalf("deliveries = %d, want 1 (S still advertised)", hits)
	}

	src.Unadvertise("S")
	assertAdvertsDrained(t, net)
	dst.Unsubscribe("rs")
	assertDrained(t, net)
}

// TestUnadvertiseUnsuppressesCovered: dropping a remote record under advert
// withdrawal re-decides the suppression it provided — a narrower
// subscription it was covering toward a STILL-advertised direction takes
// over, exactly as unsubscribe un-suppression does.
func TestUnadvertiseUnsuppressesCovered(t *testing.T) {
	// Path 0-1-2-3: publisher of R at 0, publisher of S at 3; broker 1
	// holds two subscriptions from its local clients.
	net := lineNet(t)
	b0, _ := net.Broker(0)
	b1, _ := net.Broker(1)
	b3, _ := net.Broker(3)
	b0.Advertise("R")
	b3.Advertise("S")

	// wide lists R and S, so it propagates both ways and covers narrow
	// (which lists only S) toward broker 2's direction.
	wide := &Subscription{ID: "wide", Streams: []string{"S", "R"}}
	if err := b1.Subscribe(wide, nil); err != nil {
		t.Fatal(err)
	}
	narrow := &Subscription{ID: "narrow", Streams: []string{"S"},
		Filters: []query.Predicate{filter("a", query.Gt, 10)}}
	if err := b1.Subscribe(narrow, nil); err != nil {
		t.Fatal(err)
	}
	// narrow is suppressed toward 2 (covered by wide, which was sent).
	b1.mu.Lock()
	nRec := b1.idx.locals.find("narrow")
	covered := nRec.coveredBy[2] != nil
	b1.mu.Unlock()
	if !covered {
		t.Fatal("setup: narrow not covered toward direction 2")
	}

	// Withdrawing R prunes wide's records along the path toward 0 only;
	// toward 3, wide's record survives (S justifies it) so narrow stays
	// covered. Withdrawing S then removes the records toward 3; the
	// freed decision re-runs and finds nothing advertised — no resend.
	b0.Unadvertise("R")
	b1.mu.Lock()
	stillCovered := nRec.coveredBy[2] != nil
	wSent := b1.idx.locals.find("wide").sentTo[2]
	b1.mu.Unlock()
	if !wSent || !stillCovered {
		t.Fatalf("withdrawing R must leave wide sent toward 2 (got %v) and narrow covered (got %v)",
			wSent, stillCovered)
	}

	// Now withdraw S while R is re-advertised: wide's justification
	// toward 2 disappears, the suppression of narrow toward 2 is freed,
	// and the re-decision finds S gone — narrow must NOT be sent.
	b0.Advertise("R")
	b3.Unadvertise("S")
	b1.mu.Lock()
	nCov := len(nRec.coveredBy)
	nSent := len(nRec.sentTo)
	b1.mu.Unlock()
	if nCov != 0 || nSent != 0 {
		t.Fatalf("narrow after full S withdrawal: coveredBy=%d sentTo=%d, want 0/0", nCov, nSent)
	}
	// wide still propagates toward R's publisher.
	if remote, _ := b0.RoutingStateSize(); remote != 1 {
		t.Fatalf("R publisher records %d subscriptions, want 1 (wide)", remote)
	}
}

// TestUnadvertiseDuplicateAndStaleNoOp: a second withdrawal of the same
// stream is a silent no-op, and a stale withdrawal (older epoch than a
// fresh re-advertisement) must not tear the new advert down.
func TestUnadvertiseDuplicateAndStaleNoOp(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	b1, _ := net.Broker(1)
	src.Advertise("R")
	src.mu.Lock()
	advSeq := src.ownAdverts["R"]
	src.mu.Unlock()

	src.Unadvertise("R")
	before := net.Traffic().ControlBytes
	src.Unadvertise("R")          // double withdrawal
	src.Unadvertise("never-seen") // unknown stream
	if after := net.Traffic().ControlBytes; after != before {
		t.Fatalf("no-op unadvertise generated traffic: %v -> %v", before, after)
	}

	// Re-advertise opens a newer epoch; a replayed stale withdrawal of
	// the OLD epoch must be ignored everywhere.
	src.Advertise("R")
	b1.UnadvertFrom(0, "R", 0, advSeq)
	if _, learned := b1.AdvertStateSize(); learned != 1 {
		t.Fatalf("stale withdrawal removed the fresh advert: %d learned entries", learned)
	}
	hits := 0
	if err := b1.Subscribe(&Subscription{ID: "x", Streams: []string{"R"}},
		func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}
	src.Publish(tuple("R", map[string]float64{"a": 1}))
	if hits != 1 {
		t.Fatalf("deliveries = %d, want 1 (advert must survive the stale withdrawal)", hits)
	}
}

// TestUnadvertiseTombstoneBeatsLateAdvert: a withdrawal that overtakes the
// advert it chases (sends happen outside broker locks) leaves a tombstone
// that annihilates the late-arriving advert — neither is forwarded, so the
// downstream subtree sees neither — while a genuinely newer advert epoch
// supersedes the tombstone.
func TestUnadvertiseTombstoneBeatsLateAdvert(t *testing.T) {
	net := lineNet(t)
	b1, _ := net.Broker(1)

	// The withdrawal wins the race to broker 1...
	b1.UnadvertFrom(0, "R", 0, 5)
	before := net.Traffic().ControlBytes
	// ...and the advert it chases lands afterwards: annihilated.
	b1.AdvertFrom(0, "R", 0, 5)
	if _, learned := b1.AdvertStateSize(); learned != 0 {
		t.Fatalf("tombstoned advert still installed: %d entries", learned)
	}
	if after := net.Traffic().ControlBytes; after != before {
		t.Fatalf("annihilated advert still flooded: control %v -> %v", before, after)
	}

	// A newer epoch is a different advertisement: recorded and flooded.
	b1.AdvertFrom(0, "R", 0, 6)
	if _, learned := b1.AdvertStateSize(); learned != 1 {
		t.Fatalf("newer advert blocked by a stale tombstone: %d entries", learned)
	}
}

// TestUnadvertiseTwoPublishersSameStream: with two brokers advertising the
// SAME stream name, withdrawing one advertisement keeps the other fully
// routable — the per-origin advert identity prevents the shared direction
// state from being torn down with the first publisher.
func TestUnadvertiseTwoPublishersSameStream(t *testing.T) {
	net := lineNet(t)
	b0, _ := net.Broker(0)
	b1, _ := net.Broker(1)
	b3, _ := net.Broker(3)
	b0.Advertise("R")
	b1.Advertise("R")

	hits := 0
	if err := b3.Subscribe(&Subscription{ID: "s", Streams: []string{"R"}},
		func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}
	b0.Unadvertise("R")
	// Broker 1 still publishes R: the subscription must remain recorded
	// at broker 1 (and on the path to 3), and tuples must flow.
	b1.Publish(tuple("R", map[string]float64{"a": 1}))
	if hits != 1 {
		t.Fatalf("deliveries = %d, want 1 (second publisher must survive the first's withdrawal)", hits)
	}
	if remote, _ := b1.RoutingStateSize(); remote != 1 {
		t.Fatalf("surviving publisher records %d subscriptions, want 1", remote)
	}

	b1.Unadvertise("R")
	assertAdvertsDrained(t, net)
	b3.Unsubscribe("s")
	assertDrained(t, net)
}

// TestUnadvertiseAfterUnsubscribeOrder: teardown in either order — all
// subscriptions first or all adverts first — drains the overlay to empty.
func TestUnadvertiseAfterUnsubscribeOrder(t *testing.T) {
	for _, advertsFirst := range []bool{false, true} {
		net := lineNet(t)
		src, _ := net.Broker(0)
		b2, _ := net.Broker(2)
		b3, _ := net.Broker(3)
		src.Advertise("R")
		src.Advertise("S")
		if err := b3.Subscribe(&Subscription{ID: "a", Streams: []string{"R"}}, nil); err != nil {
			t.Fatal(err)
		}
		if err := b2.Subscribe(&Subscription{ID: "b", Streams: []string{"S", "R"}}, nil); err != nil {
			t.Fatal(err)
		}
		if advertsFirst {
			src.Unadvertise("R")
			src.Unadvertise("S")
			b3.Unsubscribe("a")
			b2.Unsubscribe("b")
		} else {
			b3.Unsubscribe("a")
			b2.Unsubscribe("b")
			src.Unadvertise("S")
			src.Unadvertise("R")
		}
		assertDrained(t, net)
		assertAdvertsDrained(t, net)
	}
}

// TestPropagationCrossingWithdrawalDropped: a subscription propagation that
// crosses the advert withdrawal in flight (sends happen outside broker
// locks) must NOT be recorded at the receiver — the sender's propagation
// mark is cleared by its own mirror rule, so no retraction would ever chase
// the record and it would strand forever.
func TestPropagationCrossingWithdrawalDropped(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	b1, _ := net.Broker(1)
	src.Advertise("R")
	if err := b1.Subscribe(&Subscription{ID: "s", Streams: []string{"R"}}, nil); err != nil {
		t.Fatal(err)
	}
	src.Unadvertise("R")
	// The in-flight copy lands after the withdrawal was processed.
	src.PropagateFrom(&Subscription{ID: "late", Seq: 9, Streams: []string{"R"}}, 1)
	if remote, _ := src.RoutingStateSize(); remote != 0 {
		t.Fatalf("crossing propagation was recorded: %d remote records (would strand forever)", remote)
	}
	// Re-advertising replays the sender's surviving copy: nothing lost.
	src.Advertise("R")
	if remote, _ := src.RoutingStateSize(); remote != 1 {
		t.Fatalf("replay after re-advertise recorded %d records, want 1", remote)
	}
}

// TestReorderedNewerWithdrawalTombstones: sends from different flood
// goroutines can reorder on one link. A withdrawal carrying a NEWER epoch
// than the recorded advert kills the recorded one AND tombstones the newer
// advert it chases, so the late advert cannot resurrect a fully withdrawn
// stream; a yet-newer epoch still supersedes the tombstone.
func TestReorderedNewerWithdrawalTombstones(t *testing.T) {
	net := lineNet(t)
	b1, _ := net.Broker(1)
	b1.AdvertFrom(0, "R", 0, 1)   // advert epoch 1 arrives
	b1.UnadvertFrom(0, "R", 0, 2) // withdrawal of epoch 2 overtakes its advert
	b1.AdvertFrom(0, "R", 0, 2)   // the chased advert lands: annihilated
	b1.UnadvertFrom(0, "R", 0, 1) // the old withdrawal straggles in: no-op
	if _, learned := b1.AdvertStateSize(); learned != 0 {
		t.Fatalf("withdrawn stream resurrected by reordered advert: %d entries", learned)
	}
	// A genuinely newer advertisement epoch is a fresh advert.
	b1.AdvertFrom(0, "R", 0, 3)
	if _, learned := b1.AdvertStateSize(); learned != 1 {
		t.Fatalf("fresh advert blocked after reordered teardown: %d entries", learned)
	}
}
