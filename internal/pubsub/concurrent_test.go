package pubsub

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
)

// This file stress-tests the lock-free snapshot route path (snapshot.go)
// under genuine concurrency: several publisher goroutines route tuples
// while a churn goroutine advertises, subscribes, unsubscribes and
// unadvertises on a DISJOINT set of streams. Because churn never touches
// the stable streams, every stable tuple's matched set is the same in
// every snapshot epoch, so each stable subscription must receive exactly
// the delivery multiset of a sequential reference run — regardless of how
// routes interleave with epoch swaps. Run it with -race: the interesting
// failures here are data races between matchSnap readers and the write
// side, not multiset mismatches.

// csRecorder accumulates one subscription's delivery multiset.
type csRecorder struct {
	mu     sync.Mutex
	counts map[string]int
}

func (r *csRecorder) record(tp stream.Tuple) {
	key := renderTuple(tp)
	r.mu.Lock()
	r.counts[key]++
	r.mu.Unlock()
}

// csStableSub builds the i-th stable subscription deterministically: one
// S-stream, a numeric window on "a", and a projection that alternates
// between keep-all and {a, tag}.
func csStableSub(i int) *Subscription {
	lo := float64(i%7 - 3)
	s := &Subscription{
		ID:      fmt.Sprintf("stable%d", i),
		Streams: []string{fmt.Sprintf("S%d", i%8)},
		Filters: []query.Predicate{
			{
				Left:  query.Operand{Col: &query.ColRef{Attr: "a"}},
				Op:    query.Ge,
				Right: query.Operand{Lit: litFloat(lo)},
			},
			{
				Left:  query.Operand{Col: &query.ColRef{Attr: "a"}},
				Op:    query.Le,
				Right: query.Operand{Lit: litFloat(lo + 4)},
			},
		},
	}
	if i%2 == 0 {
		s.Attrs = []string{"a", "tag"}
	}
	return s
}

func litFloat(f float64) *stream.Value {
	v := stream.FloatVal(f)
	return &v
}

// csTuple is the j-th tuple published on streamName: a deterministic walk
// over the window domain with an occasional string-typed attribute.
func csTuple(streamName string, j int) stream.Tuple {
	t := stream.Tuple{
		Stream: streamName,
		Attrs: map[string]stream.Value{
			"a": stream.FloatVal(float64(j%13 - 6)),
			"b": stream.IntVal(int64(j % 5)),
		},
	}
	if j%3 == 0 {
		t.Attrs["tag"] = stream.StringVal([]string{"x", "y"}[j%2])
	}
	t.Size = tupleSize(len(t.Attrs))
	return t
}

// csBuild wires the star topology (center 2, leaves 0,1,3,4), advertises
// the eight stable streams from the leaves (leaf k advertises S{k'} for
// k' ≡ leaf order mod 4), and installs nSubs stable subscriptions spread
// over all five brokers. It returns the network and the per-sub recorders.
func csBuild(t *testing.T, nSubs int) (*Network, []*csRecorder) {
	t.Helper()
	g := topology.NewGraph(5)
	for _, leaf := range []topology.NodeID{0, 1, 3, 4} {
		if err := g.AddEdge(2, leaf, 1); err != nil {
			t.Fatal(err)
		}
	}
	ids := []topology.NodeID{0, 1, 2, 3, 4}
	net, err := NewNetwork(topology.NewOracle(g), ids)
	if err != nil {
		t.Fatal(err)
	}
	leaves := []topology.NodeID{0, 1, 3, 4}
	for s := 0; s < 8; s++ {
		b, _ := net.Broker(leaves[s%4])
		b.Advertise(fmt.Sprintf("S%d", s))
	}
	recs := make([]*csRecorder, nSubs)
	for i := 0; i < nSubs; i++ {
		recs[i] = &csRecorder{counts: make(map[string]int)}
		b, _ := net.Broker(ids[i%len(ids)])
		rec := recs[i]
		if err := b.Subscribe(csStableSub(i), func(_ *Subscription, tp stream.Tuple) {
			rec.record(tp)
		}); err != nil {
			t.Fatal(err)
		}
	}
	return net, recs
}

// csPublishAll publishes every publisher's tuple sequence from its
// advertising broker. Each leaf k owns streams S{k%4} and S{k%4+4}.
func csPublish(net *Network, leaf topology.NodeID, order int, nTuples int) {
	b, _ := net.Broker(leaf)
	for j := 0; j < nTuples; j++ {
		b.Publish(csTuple(fmt.Sprintf("S%d", order+4*(j%2)), j))
	}
}

// TestConcurrentRouteEquivalence: four publisher goroutines (one per leaf)
// route stable tuples while a churn goroutine cycles advertise → subscribe
// → publish → unsubscribe → unadvertise on disjoint C-streams. Every
// stable subscription's delivery multiset must equal the sequential
// reference, and tearing everything down must drain the overlay to zero.
func TestConcurrentRouteEquivalence(t *testing.T) {
	const nSubs = 40
	const nTuples = 300
	leaves := []topology.NodeID{0, 1, 3, 4}

	// Sequential reference: same overlay, same tuples, no concurrency.
	refNet, refRecs := csBuild(t, nSubs)
	for order, leaf := range leaves {
		csPublish(refNet, leaf, order, nTuples)
	}

	net, recs := csBuild(t, nSubs)
	var wg sync.WaitGroup
	for order, leaf := range leaves {
		wg.Add(1)
		go func(order int, leaf topology.NodeID) {
			defer wg.Done()
			csPublish(net, leaf, order, nTuples)
		}(order, leaf)
	}
	// Churn goroutine: full lifecycle cycles on C-streams only. Its own
	// deliveries are deterministic (the cycle is sequential), counted only
	// to prove the churned path actually matched.
	churned := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		src, _ := net.Broker(2)
		sub, _ := net.Broker(leaves[0])
		for cycle := 0; cycle < 60; cycle++ {
			cs := fmt.Sprintf("C%d", cycle%3)
			src.Advertise(cs)
			id := fmt.Sprintf("churn%d", cycle)
			s := &Subscription{ID: id, Streams: []string{cs}}
			if err := sub.Subscribe(s, func(_ *Subscription, _ stream.Tuple) {
				churned++
			}); err != nil {
				t.Error(err)
				return
			}
			src.Publish(csTuple(cs, cycle))
			sub.Unsubscribe(id)
			src.Unadvertise(cs)
		}
	}()
	wg.Wait()

	if churned == 0 {
		t.Fatal("churn goroutine never matched: C-path not exercised")
	}
	for i := range recs {
		got, want := recs[i].counts, refRecs[i].counts
		if len(got) != len(want) {
			t.Fatalf("sub %d: %d distinct tuples, reference %d", i, len(got), len(want))
		}
		total := 0
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("sub %d: tuple %q delivered %d times, reference %d", i, k, got[k], n)
			}
			total += n
		}
		if i == 0 && total == 0 {
			t.Fatal("reference run delivered nothing: test not exercising the match path")
		}
	}

	// Teardown: withdrawing every subscription and advertisement must
	// drain all brokers to zero residual state (posting lists, unions,
	// covered-by edges, snapshots' backing maps included).
	for i := 0; i < nSubs; i++ {
		b, _ := net.Broker(topology.NodeID([]topology.NodeID{0, 1, 2, 3, 4}[i%5]))
		b.Unsubscribe(fmt.Sprintf("stable%d", i))
	}
	for s := 0; s < 8; s++ {
		b, _ := net.Broker(leaves[s%4])
		b.Unadvertise(fmt.Sprintf("S%d", s))
	}
	if residual := net.ResidualState(); len(residual) != 0 {
		t.Fatalf("residual state after teardown: %v", residual)
	}
}
