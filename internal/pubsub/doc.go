// Package pubsub implements the content-based Publish/Subscribe substrate
// COSMOS is built on (§1.2, §2): a Siena-style broker overlay where data
// sources advertise streams, consumers subscribe with content filters, and
// messages are routed hop by hop so that (1) a message crosses each overlay
// link at most once, (2) messages are filtered as early as possible on the
// way to interested parties, and (3) unnecessary attributes are projected
// away as early as possible. Per-link traffic is accounted so experiments
// can measure weighted communication cost on the overlay.
//
// The package splits into four layers, roughly one file group each:
//
//   - The protocol (broker.go, subscription.go): Broker implements the five
//     peer messages — AdvertFrom, UnadvertFrom, PropagateFrom, RetractFrom,
//     RouteFrom — plus the client surface (Advertise, Subscribe,
//     Unsubscribe, Publish). Subscriptions carry epoch sequence numbers and
//     propagation records; adverts are epoch-stamped per (stream, origin).
//     Covering relations suppress redundant propagation, and every
//     lifecycle transition (retraction, withdrawal, crash teardown)
//     re-decides exactly the suppressions it released.
//
//   - The matching engine (index.go, attrindex.go, compile.go): per
//     direction, stream → posting-list indexes with compiled per-attribute
//     filter intervals, incremental projection unions, and attribute-level
//     candidate pruning via stabbing trees over the most selective
//     constrained attribute. The linear matcher (matchLinear) is the
//     retained reference; randomized equivalence suites hold every indexed
//     path bit-identical to it.
//
//   - The concurrency layer (snapshot.go): churn operations mutate the
//     index under Broker.mu and publish an immutable matchSnapshot epoch
//     behind one atomic pointer; Broker.route matches lock-free against
//     the loaded epoch, so concurrent publishes never block on churn. The
//     memory model — the sharing discipline, the write-once contract and
//     its static enforcement — is specified in CONCURRENCY.md at the repo
//     root. SetSnapshotRouting(false) restores the serialized reference
//     path.
//
//   - The overlay (network.go): Network wires Brokers over an in-process
//     Fabric (or, via PeerWrapper, a fault-injecting or TCP one), owns
//     membership (AddBroker, RemoveBroker, FailLink and the deterministic
//     re-attach repair), and aggregates traffic into TrafficReports.
//
// Delivered tuples are read-only by contract: a Handler must not mutate
// the tuple it receives (full-tuple deliveries share one attribute-map
// copy per routed tuple). Handlers may freely call back into the broker —
// every callback and peer send happens outside Broker.mu, a discipline
// enforced statically by cosmoslint's lockdiscipline analyzer (LINT.md).
package pubsub
