package pubsub

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
)

// This file tests the routing-state lifecycle subsystem: advert-triggered
// re-propagation epochs (subscribe-before-advertise orderings), unsubscribe
// retraction along the propagation path, covering un-suppression, and the
// sequence-number suppression of duplicate floods and stale retractions.

// assertDrained fails unless every broker's routing state — recorded
// subscriptions, posting lists, and projection unions, in every direction —
// is empty: the retraction-completeness invariant after the last
// unsubscribe.
func assertDrained(t *testing.T, net *Network) {
	t.Helper()
	for _, n := range net.Nodes() {
		br, _ := net.Broker(n)
		br.mu.Lock()
		for d, idx := range br.idx.dirs {
			if len(idx.subs) != 0 {
				t.Errorf("broker %d still records %d subscriptions from %d", n, len(idx.subs), d)
			}
			if len(idx.byStream) != 0 {
				t.Errorf("broker %d direction %d has %d stale posting lists", n, d, len(idx.byStream))
			}
			if len(idx.union) != 0 {
				t.Errorf("broker %d direction %d has %d stale projection unions", n, d, len(idx.union))
			}
		}
		if len(br.idx.locals.subs) != 0 {
			t.Errorf("broker %d still holds %d local subscriptions", n, len(br.idx.locals.subs))
		}
		br.mu.Unlock()
	}
}

// TestSubscribeBeforeAdvertiseDelivers: a subscription registered before
// the publisher advertises must still pull matching tuples once the advert
// arrives. This is the ordering the pre-lifecycle code silently dropped —
// the subscription was never propagated and publishes never left the
// source.
func TestSubscribeBeforeAdvertiseDelivers(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	dst, _ := net.Broker(3)

	hits := 0
	sub := &Subscription{ID: "early", Streams: []string{"R"},
		Filters: []query.Predicate{filter("a", query.Gt, 10)}}
	if err := dst.Subscribe(sub, func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}
	src.Advertise("R")
	src.Publish(tuple("R", map[string]float64{"a": 15}))
	src.Publish(tuple("R", map[string]float64{"a": 5})) // filtered at source
	if hits != 1 {
		t.Fatalf("deliveries = %d, want 1 (subscription must be re-propagated on advert)", hits)
	}
	// Early filtering must hold too: only the matching tuple crossed the
	// three links.
	if rep := net.Traffic(); rep.DataBytes != 24*3 {
		t.Errorf("data bytes = %v, want 72 (early filtering after re-propagation)", rep.DataBytes)
	}
}

// TestUnsubscribeRetractsRemoteState: withdrawing the last subscription on
// a stream removes the routing state it installed at EVERY broker along the
// propagation path — no stale forwarding remains anywhere.
func TestUnsubscribeRetractsRemoteState(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	dst, _ := net.Broker(3)
	src.Advertise("R")

	hits := 0
	if err := dst.Subscribe(&Subscription{ID: "u", Streams: []string{"R"}},
		func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}
	// The subscription is recorded at brokers 0, 1 and 2 (one hop each).
	for _, n := range []topology.NodeID{0, 1, 2} {
		b, _ := net.Broker(n)
		if remote, _ := b.RoutingStateSize(); remote != 1 {
			t.Fatalf("broker %d records %d subscriptions before unsubscribe, want 1", n, remote)
		}
	}

	dst.Unsubscribe("u")
	assertDrained(t, net)

	// Publishing now must not cross a single link.
	net.ResetTraffic()
	src.Publish(tuple("R", map[string]float64{"a": 1}))
	if rep := net.Traffic(); rep.DataBytes != 0 {
		t.Errorf("stale forwarding after retraction: %v data bytes", rep.DataBytes)
	}
	if hits != 0 {
		t.Errorf("delivered %d tuples after unsubscribe", hits)
	}
}

// TestUnsubscribeUnsuppressesCovered: withdrawing a covering subscription
// re-propagates the subscription it had suppressed, so the survivor's
// narrower filter takes over at the source (resumed flooding with early
// filtering) instead of starving.
func TestUnsubscribeUnsuppressesCovered(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	b3, _ := net.Broker(3)
	src.Advertise("R")

	wideHits, narrowHits := 0, 0
	wide := &Subscription{ID: "wide", Streams: []string{"R"}}
	if err := b3.Subscribe(wide, func(*Subscription, stream.Tuple) { wideHits++ }); err != nil {
		t.Fatal(err)
	}
	narrow := &Subscription{ID: "narrow", Streams: []string{"R"},
		Filters: []query.Predicate{filter("a", query.Gt, 10)}}
	if err := b3.Subscribe(narrow, func(*Subscription, stream.Tuple) { narrowHits++ }); err != nil {
		t.Fatal(err)
	}
	// narrow was suppressed by wide: the publisher knows only wide.
	if remote, _ := src.RoutingStateSize(); remote != 1 {
		t.Fatalf("publisher records %d subscriptions, want 1 (narrow covered)", remote)
	}

	b3.Unsubscribe("wide")
	// narrow must have been re-propagated (un-suppressed): the publisher
	// now records it, and nothing else.
	srcB := src
	srcB.mu.Lock()
	var ids []string
	for _, d := range sortedDirs(srcB.idx.dirs) {
		for _, c := range srcB.idx.dirs[d].subs {
			ids = append(ids, c.sub.ID)
		}
	}
	srcB.mu.Unlock()
	if len(ids) != 1 || ids[0] != "narrow" {
		t.Fatalf("publisher records %v after unsubscribing the cover, want [narrow]", ids)
	}

	net.ResetTraffic()
	src.Publish(tuple("R", map[string]float64{"a": 15})) // matches narrow
	src.Publish(tuple("R", map[string]float64{"a": 5}))  // must be filtered at source now
	if narrowHits != 1 || wideHits != 0 {
		t.Fatalf("deliveries narrow=%d wide=%d, want 1/0", narrowHits, wideHits)
	}
	if rep := net.Traffic(); rep.DataBytes != 24*3 {
		t.Errorf("data bytes = %v, want 72 (one matching tuple, early-filtered)", rep.DataBytes)
	}

	b3.Unsubscribe("narrow")
	assertDrained(t, net)
}

// TestUnsubscribeUnknownAndDoubleNoOp: unsubscribing an ID that was never
// subscribed, and unsubscribing the same ID twice, are explicit no-ops —
// no messages, no panics, and unrelated state is untouched.
func TestUnsubscribeUnknownAndDoubleNoOp(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	b3, _ := net.Broker(3)
	src.Advertise("R")

	hits := 0
	if err := b3.Subscribe(&Subscription{ID: "keep", Streams: []string{"R"}},
		func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}
	before := net.Traffic().ControlBytes

	b3.Unsubscribe("never-existed")
	src.Unsubscribe("keep") // wrong broker: keep is b3's local, not src's
	if after := net.Traffic().ControlBytes; after != before {
		t.Fatalf("no-op unsubscribes generated traffic: %v -> %v", before, after)
	}

	b3.Unsubscribe("keep")
	b3.Unsubscribe("keep") // second withdrawal of the same ID
	mid := net.Traffic().ControlBytes
	b3.Unsubscribe("keep")
	if after := net.Traffic().ControlBytes; after != mid {
		t.Fatalf("double unsubscribe generated traffic: %v -> %v", mid, after)
	}
	assertDrained(t, net)

	src.Publish(tuple("R", map[string]float64{"a": 1}))
	if hits != 0 {
		t.Errorf("delivered %d tuples after unsubscribe", hits)
	}
}

// TestDuplicatePropagationSuppressed: re-delivery of an already recorded
// subscription epoch (same ID, direction and seq — e.g. a wire-level
// duplicate) is dropped without re-recording or re-flooding.
func TestDuplicatePropagationSuppressed(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	b1, _ := net.Broker(1)
	b3, _ := net.Broker(3)
	src.Advertise("R")

	sub := &Subscription{ID: "dup", Streams: []string{"R"}}
	if err := b3.Subscribe(sub, nil); err != nil {
		t.Fatal(err)
	}
	before := net.Traffic().ControlBytes
	remoteBefore, _ := b1.RoutingStateSize()

	// Replay the exact epoch b1 already recorded from direction 2.
	b1.PropagateFrom(sub.Clone(), 2)

	if after := net.Traffic().ControlBytes; after != before {
		t.Fatalf("duplicate propagation re-flooded: control %v -> %v", before, after)
	}
	if remote, _ := b1.RoutingStateSize(); remote != remoteBefore {
		t.Fatalf("duplicate propagation re-recorded: %d -> %d", remoteBefore, remote)
	}
}

// TestStaleRetractionIgnored: a retraction carrying an older epoch than the
// recorded subscription (a message from a previous incarnation of a reused
// ID) must not remove the newer record; a retraction for an unknown ID is a
// no-op.
func TestStaleRetractionIgnored(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	b1, _ := net.Broker(1)
	b3, _ := net.Broker(3)
	src.Advertise("R")

	hits := 0
	sub := &Subscription{ID: "x", Streams: []string{"R"}}
	if err := b3.Subscribe(sub, func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}

	b1.RetractFrom(2, "x", sub.Seq-1)   // stale epoch
	b1.RetractFrom(2, "unknown-id", 99) // unknown ID
	b1.RetractFrom(0, "x", sub.Seq)     // wrong direction (recorded from 2)
	if remote, _ := b1.RoutingStateSize(); remote != 1 {
		t.Fatalf("stale/unknown retraction removed the record: %d remote records", remote)
	}
	src.Publish(tuple("R", map[string]float64{"a": 1}))
	if hits != 1 {
		t.Fatalf("deliveries = %d, want 1 (routing state must survive stale retractions)", hits)
	}
}

// TestRetractionTombstoneBeatsLatePropagation: control sends happen outside
// broker locks, so a retraction can overtake the propagation it withdraws
// (concurrent brokers, asynchronous transports). The early retraction must
// leave a tombstone that drops the late-arriving record — otherwise it
// would be installed with no retraction ever coming — while a genuinely
// newer epoch of the same ID supersedes the tombstone.
func TestRetractionTombstoneBeatsLatePropagation(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	b1, _ := net.Broker(1)
	src.Advertise("R")

	sub := &Subscription{ID: "late", Seq: 5, Streams: []string{"R"}}
	// The retraction wins the race to broker 1...
	b1.RetractFrom(2, "late", 5)
	before := net.Traffic().ControlBytes
	// ...and the propagation it chases lands afterwards: dropped.
	b1.PropagateFrom(sub, 2)
	if remote, _ := b1.RoutingStateSize(); remote != 0 {
		t.Fatalf("late propagation installed %d records past its retraction", remote)
	}
	if after := net.Traffic().ControlBytes; after != before {
		t.Fatalf("tombstoned propagation still flooded: control %v -> %v", before, after)
	}

	// A newer epoch of the ID is a different incarnation: recorded.
	renewed := sub.Clone()
	renewed.Seq = 6
	b1.PropagateFrom(renewed, 2)
	if remote, _ := b1.RoutingStateSize(); remote != 1 {
		t.Fatalf("newer epoch blocked by a stale tombstone: %d records", remote)
	}
}

// TestResubscribeSupersedesOldEpoch: re-subscribing a reused ID after an
// unsubscribe issues a higher epoch that replaces the old records along the
// path (the old incarnation's state cannot shadow the new filters).
func TestResubscribeSupersedesOldEpoch(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	b3, _ := net.Broker(3)
	src.Advertise("R")

	hits := 0
	narrow := &Subscription{ID: "q", Streams: []string{"R"},
		Filters: []query.Predicate{filter("a", query.Gt, 10)}}
	if err := b3.Subscribe(narrow, func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}
	b3.Unsubscribe("q")
	wide := &Subscription{ID: "q", Streams: []string{"R"}}
	if err := b3.Subscribe(wide, func(*Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}
	if wide.Seq <= narrow.Seq {
		t.Fatalf("re-subscribe epoch %d not newer than %d", wide.Seq, narrow.Seq)
	}

	// The new incarnation's (unfiltered) profile governs routing.
	src.Publish(tuple("R", map[string]float64{"a": 5}))
	if hits != 1 {
		t.Fatalf("deliveries = %d, want 1 (new epoch must replace the narrow filter)", hits)
	}
	b3.Unsubscribe("q")
	assertDrained(t, net)
}

// TestResubscribeLiveIDSupersedes: subscribing a reused ID WITHOUT
// unsubscribing first supersedes the live incarnation — the old local
// record (and handler) is retracted rather than accumulating next to the
// new one, so local and remote routing agree on which epoch owns the ID.
func TestResubscribeLiveIDSupersedes(t *testing.T) {
	net := lineNet(t)
	src, _ := net.Broker(0)
	b3, _ := net.Broker(3)
	src.Advertise("R")

	oldHits, newHits := 0, 0
	narrow := &Subscription{ID: "q", Streams: []string{"R"},
		Filters: []query.Predicate{filter("a", query.Gt, 10)}}
	if err := b3.Subscribe(narrow, func(*Subscription, stream.Tuple) { oldHits++ }); err != nil {
		t.Fatal(err)
	}
	wide := &Subscription{ID: "q", Streams: []string{"R"}}
	if err := b3.Subscribe(wide, func(*Subscription, stream.Tuple) { newHits++ }); err != nil {
		t.Fatal(err)
	}
	if _, local := b3.RoutingStateSize(); local != 1 {
		t.Fatalf("broker holds %d local incarnations of the ID, want 1", local)
	}
	src.Publish(tuple("R", map[string]float64{"a": 5})) // matches wide only
	if oldHits != 0 || newHits != 1 {
		t.Fatalf("deliveries old=%d new=%d, want 0/1 (stale incarnation must not fire)", oldHits, newHits)
	}
	b3.Unsubscribe("q")
	assertDrained(t, net)
}

// TestAddBrokerJoinsOverlay: a broker added to a running overlay learns the
// existing advertisement state over its attach link, its own adverts flood
// and pull existing subscriptions toward it (re-propagation), and routing
// works in both directions across the new link.
func TestAddBrokerJoinsOverlay(t *testing.T) {
	g := topology.NewGraph(5)
	for i := 0; i < 4; i++ {
		if err := g.AddEdge(topology.NodeID(i), topology.NodeID(i+1), float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	net, err := NewNetwork(topology.NewOracle(g), []topology.NodeID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := net.Broker(0)
	src.Advertise("R")

	// A subscription on a stream nobody advertises yet — the joining
	// broker will be its publisher.
	lateHits := 0
	b2, _ := net.Broker(2)
	if err := b2.Subscribe(&Subscription{ID: "late", Streams: []string{"NEW"}},
		func(*Subscription, stream.Tuple) { lateHits++ }); err != nil {
		t.Fatal(err)
	}

	nb := net.AddBroker(3)
	if got := len(nb.Neighbors()); got != 1 {
		t.Fatalf("joined broker has %d links, want 1 (tree attach)", got)
	}

	// The attach point replayed its adverts: the newcomer can subscribe
	// to R immediately.
	newHits := 0
	if err := nb.Subscribe(&Subscription{ID: "n", Streams: []string{"R"}},
		func(*Subscription, stream.Tuple) { newHits++ }); err != nil {
		t.Fatal(err)
	}
	src.Publish(tuple("R", map[string]float64{"a": 1}))
	if newHits != 1 {
		t.Fatalf("joined broker deliveries = %d, want 1", newHits)
	}

	// The newcomer's advert floods and re-propagates the pre-existing
	// subscription toward it.
	nb.Advertise("NEW")
	nb.Publish(tuple("NEW", map[string]float64{"a": 2}))
	if lateHits != 1 {
		t.Fatalf("pre-existing subscription deliveries = %d, want 1 (advert must pull it)", lateHits)
	}

	// Idempotent join.
	if again := net.AddBroker(3); again != nb {
		t.Fatal("AddBroker of an existing node must return the existing broker")
	}
}

// TestAddBrokerConcurrentWithRouting: joining brokers while tuples are
// being routed must be safe — the broker map is mutated on a live overlay,
// so its readers (Peer, Broker, Nodes) go through the network lock. Run
// under -race in CI.
func TestAddBrokerConcurrentWithRouting(t *testing.T) {
	g := topology.NewGraph(8)
	for i := 0; i < 7; i++ {
		if err := g.AddEdge(topology.NodeID(i), topology.NodeID(i+1), float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	net, err := NewNetwork(topology.NewOracle(g), []topology.NodeID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := net.Broker(0)
	src.Advertise("R")
	b2, _ := net.Broker(2)
	hits := 0
	var mu sync.Mutex
	if err := b2.Subscribe(&Subscription{ID: "c", Streams: []string{"R"}},
		func(*Subscription, stream.Tuple) { mu.Lock(); hits++; mu.Unlock() }); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			src.Publish(tuple("R", map[string]float64{"a": float64(i)}))
		}
	}()
	for n := topology.NodeID(3); n < 8; n++ {
		nb := net.AddBroker(n)
		nb.Advertise(fmt.Sprintf("S%d", n))
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	if hits != 200 {
		t.Fatalf("deliveries = %d, want 200 (routing must survive concurrent joins)", hits)
	}
}
