package pubsub

import (
	"sort"

	"repro/internal/logging"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// Operational counters, registered in the process-wide metrics registry so
// the node's /metrics endpoint (and the soak harnesses) can read them back.
// All are send-side accounted like the fabric byte counters: a suppressed
// subscription is one that covering suppression kept OFF a link, so
// subscriptions_sent/(subscriptions_sent+subscriptions_suppressed) is the
// control-plane savings ratio the paper's Fig 5 measures.
var (
	cRoutedTuples    = metrics.GetCounter("pubsub.routed_tuples")
	cLocalDeliveries = metrics.GetCounter("pubsub.local_deliveries")
	cForwardedTuples = metrics.GetCounter("pubsub.forwarded_tuples")
	cSubscribes      = metrics.GetCounter("pubsub.subscribes")
	cUnsubscribes    = metrics.GetCounter("pubsub.unsubscribes")
	cAdvertises      = metrics.GetCounter("pubsub.advertises")
	cUnadvertises    = metrics.GetCounter("pubsub.unadvertises")
	cSubsSent        = metrics.GetCounter("pubsub.subscriptions_sent")
	cSubsSuppressed  = metrics.GetCounter("pubsub.subscriptions_suppressed")
	cRetractionsSent = metrics.GetCounter("pubsub.retractions_sent")
)

// loggerBox wraps the Logger interface in one concrete type so the broker's
// atomic.Value accepts loggers of different dynamic types across SetLogger
// calls.
type loggerBox struct{ l logging.Logger }

// SetLogger installs a structured logger for the broker's lifecycle events
// (drain, neighbor attach/detach). The default is logging.Nop(); a nil l
// restores it. The broker does not stamp lines with its own identity —
// pass l.With("node", ...) to get one, as cmd/cosmos-node does. Safe to call concurrently with broker operation — the logger
// is read with a single atomic load at each logging site and is only ever
// invoked outside the broker mutex.
func (b *Broker) SetLogger(l logging.Logger) {
	if l == nil {
		l = logging.Nop()
	}
	b.log.Store(loggerBox{l: l})
}

// logger returns the broker's current logger (Nop before SetLogger).
func (b *Broker) logger() logging.Logger {
	if box, ok := b.log.Load().(loggerBox); ok {
		return box.l
	}
	return logging.Nop()
}

// Drain gracefully withdraws everything this broker's clients own: every
// local subscription is unsubscribed (retractions chase its records off the
// overlay, covered subscriptions un-suppress) and every own advertisement is
// withdrawn (the withdrawal floods the advert paths and remote brokers prune
// the entries plus the subscription state they alone justified). After Drain
// returns, the rest of the overlay holds no residual routing state for this
// node — the drain-to-empty invariant the lifecycle tests pin down — so a
// SIGTERM'd node can close its links without stranding state. Neighbor links
// themselves are left up; the transport owns flushing and closing them.
func (b *Broker) Drain() {
	b.mu.Lock()
	ids := make([]string, 0, len(b.idx.locals.subs))
	for _, c := range b.idx.locals.subs {
		ids = append(ids, c.sub.ID)
	}
	streams := make([]string, 0, len(b.ownAdverts))
	for s := range b.ownAdverts {
		streams = append(streams, s)
	}
	sort.Strings(streams)
	b.mu.Unlock()
	log := b.logger()
	log.Info("drain begin", "local_subs", len(ids), "own_adverts", len(streams))
	for _, id := range ids {
		b.Unsubscribe(id)
	}
	for _, s := range streams {
		b.Unadvertise(s)
	}
	log.Info("drain done")
}

// AdvertisedStreams returns the streams currently advertised by this
// broker's clients, sorted. Empty after Drain; the node's readiness probe
// watches a peer's learned half of this via DirStates.
func (b *Broker) AdvertisedStreams() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.ownAdverts))
	for s := range b.ownAdverts {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// StreamAdvertised reports whether anyone — this broker's own clients or any
// origin learned from a neighbor — currently advertises the stream. The
// node's readiness watcher polls this for its subscribed streams: true means
// the advert flood has arrived, so the subscription has a direction to
// propagate toward and data can flow.
func (b *Broker) StreamAdvertised(streamName string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.ownAdverts[streamName]; ok {
		return true
	}
	for _, set := range b.adverts {
		if origins, ok := set[streamName]; ok && len(origins) > 0 {
			return true
		}
	}
	return false
}

// DirState summarizes the routing state recorded for one overlay link — the
// per-link lines of /debug/overlay.dot and the residual-state check the
// node-smoke drain assertion reads.
type DirState struct {
	Neighbor topology.NodeID
	// Subs counts the subscriptions recorded from this direction (the
	// interests living behind the link).
	Subs int
	// Adverts counts the (stream, origin) advertisement entries learned
	// from this direction.
	Adverts int
}

// DirStates reports the per-neighbor routing-state summary in ascending
// neighbor order. A direction's counts drop to zero when everything behind
// it has been withdrawn — after a peer drains, its row reads 0/0.
func (b *Broker) DirStates() []DirState {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]DirState, 0, len(b.neighbors))
	for _, n := range b.neighbors {
		st := DirState{Neighbor: n}
		if d, ok := b.idx.dirs[n]; ok {
			st.Subs = len(d.subs)
		}
		for _, origins := range b.adverts[n] {
			st.Adverts += len(origins)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Neighbor < out[j].Neighbor })
	return out
}
