package pubsub

import (
	"fmt"
	"testing"

	"repro/internal/query"
	"repro/internal/stream"
)

// Covering-delta re-propagation (SetCoverDelta): when a new advertisement
// replays a burst of already-registered subscriptions toward its source,
// only the burst's maximal elements under the containment order travel —
// covered members are suppressed locally with the same covered-by edges an
// early-arriving cover would have produced. Traffic shrinks; delivery,
// lifecycle and drain behavior must not move at all.

// runCoverDeltaScenario subscribes a nested-threshold chain at the far end
// of a line BEFORE the source advertises (narrow to broad, so the delta
// pass must re-point earlier kept members when a broader sub arrives),
// floods the advert, publishes a sweep, churns the covering subscription,
// publishes again, then tears everything down. It returns the delivery log
// and the control bytes the advert-triggered replay cost.
func runCoverDeltaScenario(t *testing.T, delta bool) (map[string]int, float64) {
	t.Helper()
	net := lineNet(t)
	if delta {
		net.SetCoverDelta(true)
	}
	src, _ := net.Broker(0)
	dst, _ := net.Broker(3)

	delivered := make(map[string]int)
	// Nested chain a>=40 ⊃ a>=30 ⊃ a>=20 ⊃ a>=10, registered narrowest
	// first, plus an exact twin of the broadest.
	thresholds := []float64{40, 30, 20, 10, 10}
	for i, th := range thresholds {
		id := fmt.Sprintf("s%d", i)
		sub := &Subscription{ID: id, Streams: []string{"R"},
			Filters: []query.Predicate{filter("a", query.Ge, th)}}
		if err := dst.Subscribe(sub, func(s *Subscription, tp stream.Tuple) {
			delivered[fmt.Sprintf("%s@%d", s.ID, tp.Timestamp)]++
		}); err != nil {
			t.Fatal(err)
		}
	}

	net.ResetTraffic()
	src.Advertise("R") // triggers the replay burst on every hop
	replayCost := net.Traffic().ControlBytes

	publishSweep := func(base int64) {
		for i, v := range []float64{5, 15, 25, 35, 45} {
			src.Publish(tuple2("R", base+int64(i), v))
		}
	}
	publishSweep(100)

	// Churn the cover: retracting the broadest subs must un-suppress the
	// narrower ones (they re-propagate), keeping delivery intact.
	dst.Unsubscribe("s3")
	dst.Unsubscribe("s4")
	publishSweep(200)

	for _, id := range []string{"s0", "s1", "s2"} {
		dst.Unsubscribe(id)
	}
	src.Unadvertise("R")
	net.Quiesce()
	assertDrained(t, net)
	if rep := net.ResidualState(); len(rep) != 0 {
		t.Fatalf("delta=%v: residual state after teardown: %v", delta, rep)
	}
	return delivered, replayCost
}

func tuple2(streamName string, ts int64, a float64) stream.Tuple {
	return stream.Tuple{Stream: streamName, Timestamp: ts,
		Attrs: map[string]stream.Value{"a": stream.FloatVal(a)}, Size: 24}
}

func TestCoverDeltaEquivalentAndCheaper(t *testing.T) {
	ref, refCost := runCoverDeltaScenario(t, false)
	got, deltaCost := runCoverDeltaScenario(t, true)

	if len(got) != len(ref) {
		t.Fatalf("delta delivered %d distinct (sub,tuple) pairs, reference %d", len(got), len(ref))
	}
	for k, n := range ref {
		if got[k] != n {
			t.Errorf("delivery %q: delta saw %d, reference %d", k, got[k], n)
		}
	}

	// The replay burst carries 4 subscriptions per hop in reference mode
	// (the equal twin is already suppressed in-burst there too) but only
	// the maximal element (a>=10) in delta mode — an exact 4x cut on the
	// replay leg, once the shared advert-flood bytes are accounted for.
	if deltaCost >= refCost {
		t.Fatalf("delta replay cost %.0f not below reference %.0f", deltaCost, refCost)
	}
	advertBytes := 3 * 32.0 // advertSize per hop, identical in both modes
	if (refCost - advertBytes) != 4*(deltaCost-advertBytes) {
		t.Errorf("replay subscription bytes: reference %.0f, delta %.0f — want exactly 4x (4 subs vs 1 per hop)",
			refCost-advertBytes, deltaCost-advertBytes)
	}
}

// TestCoverDeltaLifecycleInvariant: after a delta replay, every recorded
// subscription must still satisfy the per-neighbor lifecycle invariant
// (sentTo or a live cover toward every advert direction) — the delta pass
// marks suppression with the same covered-by edges the incremental path
// uses, so churn (un-suppression, retraction) keeps working.
func TestCoverDeltaLifecycleInvariant(t *testing.T) {
	net := lineNet(t)
	net.SetCoverDelta(true)
	src, _ := net.Broker(0)
	dst, _ := net.Broker(3)

	for i, th := range []float64{30, 10, 20} {
		sub := &Subscription{ID: fmt.Sprintf("c%d", i), Streams: []string{"R"},
			Filters: []query.Predicate{filter("a", query.Ge, th)}}
		if err := dst.Subscribe(sub, func(*Subscription, stream.Tuple) {}); err != nil {
			t.Fatal(err)
		}
	}
	src.Advertise("R")
	checkLifecycleInvariant(t, net, 0)

	// The covered members must be retractable while suppressed, and the
	// cover's own retraction must release and re-propagate the rest.
	dst.Unsubscribe("c2") // covered (a>=20)
	dst.Unsubscribe("c1") // the cover (a>=10)
	checkLifecycleInvariant(t, net, 0)
	s0, _ := net.Broker(0)
	s0.mu.Lock()
	var present int
	for _, idx := range s0.idx.dirs {
		present += len(idx.subs)
	}
	s0.mu.Unlock()
	if present != 1 {
		t.Fatalf("source broker records %d remote subscriptions after churn, want 1 (c0 re-propagated)", present)
	}

	dst.Unsubscribe("c0")
	src.Unadvertise("R")
	net.Quiesce()
	assertDrained(t, net)
}
