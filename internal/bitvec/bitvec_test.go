package bitvec

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Test(i) {
			t.Errorf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Test(i) {
			t.Errorf("bit %d not set after Set", i)
		}
		v.Clear(i)
		if v.Test(i) {
			t.Errorf("bit %d still set after Clear", i)
		}
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	v := New(10)
	v.Set(-1)
	v.Set(10)
	v.Set(1 << 20)
	if v.Count() != 0 {
		t.Errorf("out-of-range Set changed the vector: %v", v)
	}
	if v.Test(-1) || v.Test(10) {
		t.Error("out-of-range Test returned true")
	}
}

func TestCountAndIndices(t *testing.T) {
	v := FromIndices(200, []int{3, 64, 65, 199})
	if got := v.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	want := []int{3, 64, 65, 199}
	got := v.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Indices[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestOverlapAndContains(t *testing.T) {
	a := FromIndices(100, []int{1, 2, 3, 70})
	b := FromIndices(100, []int{2, 3, 99})
	if got := a.OverlapCount(b); got != 2 {
		t.Errorf("OverlapCount = %d, want 2", got)
	}
	if !a.Overlaps(b) {
		t.Error("Overlaps = false, want true")
	}
	c := FromIndices(100, []int{2, 3})
	if !a.Contains(c) {
		t.Error("a should contain {2,3}")
	}
	if c.Contains(a) {
		t.Error("{2,3} should not contain a")
	}
	empty := New(100)
	if !a.Contains(empty) {
		t.Error("any vector contains the empty vector")
	}
	if a.Overlaps(empty) {
		t.Error("nothing overlaps the empty vector")
	}
}

func TestOrAndNotLengthMismatch(t *testing.T) {
	a, b := New(10), New(20)
	if err := a.Or(b); err == nil {
		t.Error("Or accepted mismatched lengths")
	}
	if err := a.AndNot(b); err == nil {
		t.Error("AndNot accepted mismatched lengths")
	}
}

func TestWeightedSum(t *testing.T) {
	weights := make([]float64, 70)
	for i := range weights {
		weights[i] = float64(i)
	}
	v := FromIndices(70, []int{1, 64, 69})
	if got, want := v.WeightedSum(weights), 1.0+64+69; got != want {
		t.Errorf("WeightedSum = %v, want %v", got, want)
	}
	o := FromIndices(70, []int{64, 69, 2})
	if got, want := v.OverlapWeightedSum(o, weights), 64.0+69; got != want {
		t.Errorf("OverlapWeightedSum = %v, want %v", got, want)
	}
}

func TestString(t *testing.T) {
	v := FromIndices(10, []int{1, 5, 9})
	if got := v.String(); got != "{1,5,9}" {
		t.Errorf("String = %q, want {1,5,9}", got)
	}
}

// randomVec builds a reproducible random vector for property tests.
func randomVec(r *rand.Rand, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if r.IntN(3) == 0 {
			v.Set(i)
		}
	}
	return v
}

func TestQuickOverlapSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		a, b := randomVec(r, 257), randomVec(r, 257)
		return a.OverlapCount(b) == b.OverlapCount(a) &&
			a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 2))
		a, b := randomVec(r, 193), randomVec(r, 193)
		u, err := Union(a, b)
		if err != nil {
			return false
		}
		// The union contains both operands, and its count is given by
		// inclusion-exclusion.
		if !u.Contains(a) || !u.Contains(b) {
			return false
		}
		return u.Count() == a.Count()+b.Count()-a.OverlapCount(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWeightedSumMatchesIndices(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		v := randomVec(r, 130)
		weights := make([]float64, 130)
		for i := range weights {
			weights[i] = r.Float64()
		}
		var want float64
		for _, i := range v.Indices() {
			want += weights[i]
		}
		got := v.WeightedSum(weights)
		diff := got - want
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCloneIndependent(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 4))
		a := randomVec(r, 99)
		c := a.Clone()
		if !c.Equal(a) {
			return false
		}
		c.Set(5)
		c.Clear(7)
		// a unchanged at those positions unless it already had them.
		orig := randomVec(rand.New(rand.NewPCG(seed, 4)), 99)
		return a.Equal(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkOverlapWeightedSum(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	x, y := randomVec(r, 20000), randomVec(r, 20000)
	weights := make([]float64, 20000)
	for i := range weights {
		weights[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.OverlapWeightedSum(y, weights)
	}
}
