// Package bitvec provides fixed-capacity bit vectors used to represent the
// data interest of continuous queries over partitioned substreams.
//
// The paper (§3.2) partitions each stream into substreams and represents a
// query's data interest as a bit vector with one bit per substream, so that
// the overlap between two queries — needed constantly by the graph-mapping
// algorithms — reduces to cheap word-wise AND/popcount operations.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length bit vector. The zero value is an empty vector of
// length zero; use New to create one with capacity.
type Vector struct {
	words []uint64
	n     int
}

// New returns a vector capable of holding n bits, all initially zero.
func New(n int) *Vector {
	if n < 0 {
		n = 0
	}
	return &Vector{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
	}
}

// FromIndices returns a vector of length n with the given bit positions set.
// Indices outside [0, n) are ignored.
func FromIndices(n int, indices []int) *Vector {
	v := New(n)
	for _, i := range indices {
		v.Set(i)
	}
	return v
}

// Len returns the number of bits the vector can hold.
func (v *Vector) Len() int { return v.n }

// Set sets bit i. Out-of-range indices are ignored.
func (v *Vector) Set(i int) {
	if i < 0 || i >= v.n {
		return
	}
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i. Out-of-range indices are ignored.
func (v *Vector) Clear(i int) {
	if i < 0 || i >= v.n {
		return
	}
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set.
func (v *Vector) Test(i int) bool {
	if i < 0 || i >= v.n {
		return false
	}
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	c := &Vector{words: make([]uint64, len(v.words)), n: v.n}
	copy(c.words, v.words)
	return c
}

// Or sets v to the union v | o. Vectors must have equal length.
func (v *Vector) Or(o *Vector) error {
	if err := v.check(o); err != nil {
		return err
	}
	for i, w := range o.words {
		v.words[i] |= w
	}
	return nil
}

// AndNot clears from v every bit that is set in o.
func (v *Vector) AndNot(o *Vector) error {
	if err := v.check(o); err != nil {
		return err
	}
	for i, w := range o.words {
		v.words[i] &^= w
	}
	return nil
}

// OverlapCount returns |v AND o|, the number of bits set in both vectors.
// It is the hot operation of the query-graph construction: the weight of an
// overlap edge is the total rate of the substreams both queries request.
func (v *Vector) OverlapCount(o *Vector) int {
	n := min(len(v.words), len(o.words))
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(v.words[i] & o.words[i])
	}
	return c
}

// Overlaps reports whether v and o share at least one set bit. It short-
// circuits on the first common word and is cheaper than OverlapCount when
// only existence matters.
func (v *Vector) Overlaps(o *Vector) bool {
	n := min(len(v.words), len(o.words))
	for i := 0; i < n; i++ {
		if v.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Contains reports whether every bit set in o is also set in v, i.e. o's
// interest is covered by v's. Used by subscription covering in the pub/sub.
func (v *Vector) Contains(o *Vector) bool {
	n := max(len(v.words), len(o.words))
	for i := 0; i < n; i++ {
		var vw, ow uint64
		if i < len(v.words) {
			vw = v.words[i]
		}
		if i < len(o.words) {
			ow = o.words[i]
		}
		if ow&^vw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and o have identical length and bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Union returns a new vector holding v | o. Vectors must have equal length.
func Union(v, o *Vector) (*Vector, error) {
	c := v.Clone()
	if err := c.Or(o); err != nil {
		return nil, err
	}
	return c, nil
}

// Words exposes the raw word representation for read-only scans, letting
// hot paths (the query-graph inverted indexes) iterate set bits without
// iterator or closure overhead. The slice must not be modified; bit i lives
// at words[i/64] bit (i%64).
func (v *Vector) Words() []uint64 { return v.words }

// Indices returns the positions of all set bits in ascending order.
func (v *Vector) Indices() []int {
	out := make([]int, 0, v.Count())
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// WeightedSum returns the sum of weights[i] over all set bits i. It computes
// the aggregate data rate of the substreams a query is interested in.
// Weights must have length >= v.Len().
func (v *Vector) WeightedSum(weights []float64) float64 {
	var s float64
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			s += weights[wi*wordBits+b]
			w &= w - 1
		}
	}
	return s
}

// OverlapWeightedSum returns the sum of weights[i] over bits set in both v
// and o — the shared data rate of two queries.
func (v *Vector) OverlapWeightedSum(o *Vector, weights []float64) float64 {
	return v.OverlapWeightedSumRange(o, weights, 0, len(v.words))
}

// OverlapWeightedSumRange is OverlapWeightedSum restricted to the word
// range [lo, hi). When the caller knows both vectors' set bits lie within
// the range (e.g. tracked word spans), the result is identical — skipped
// words contribute nothing — at a fraction of the scan cost.
func (v *Vector) OverlapWeightedSumRange(o *Vector, weights []float64, lo, hi int) float64 {
	if n := min(len(v.words), len(o.words)); hi > n {
		hi = n
	}
	var s float64
	for wi := lo; wi < hi; wi++ {
		w := v.words[wi] & o.words[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			s += weights[wi*wordBits+b]
			w &= w - 1
		}
	}
	return s
}

// String renders the vector as a compact run of set-bit indices, e.g.
// "{1,5,9}" — intended for tests and debugging, not serialization.
func (v *Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, idx := range v.Indices() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", idx)
	}
	b.WriteByte('}')
	return b.String()
}

func (v *Vector) check(o *Vector) error {
	if v.n != o.n {
		return fmt.Errorf("bitvec: length mismatch %d != %d", v.n, o.n)
	}
	return nil
}
