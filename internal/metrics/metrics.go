// Package metrics provides the small statistical helpers the experiment
// harness uses to report results: mean, standard deviation, normalization,
// and fixed-width series printing that mirrors the paper's figures.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs — the load-balance
// metric reported in Figures 7(b), 8(b) and 10(b).
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Normalize returns xs scaled so that base maps to 1. A zero base yields a
// copy of xs unchanged. Used for the normalized plots of Figure 11.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Median returns the median of xs, averaging the two middle elements for
// even lengths. It returns 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Series is one labelled line of a figure: a name plus y-values aligned with
// a shared x-axis.
type Series struct {
	Name   string
	Values []float64
}

// Table renders rows of series against shared x labels, in the row/column
// style the paper's figures tabulate. It is the single output format used by
// cmd/cosmos-sim and EXPERIMENTS.md.
type Table struct {
	Title  string
	XLabel string
	XS     []string
	Series []Series
}

// AddSeries appends a named series to the table.
func (t *Table) AddSeries(name string, values []float64) {
	t.Series = append(t.Series, Series{Name: name, Values: values})
}

// Write renders the table to w. Missing values (series shorter than XS)
// render as "-".
func (t *Table) Write(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	width := len(t.XLabel)
	for _, x := range t.XS {
		if len(x) > width {
			width = len(x)
		}
	}
	header := make([]string, 0, len(t.Series)+1)
	header = append(header, pad(t.XLabel, width))
	for _, s := range t.Series {
		header = append(header, pad(s.Name, 14))
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, "  ")); err != nil {
		return err
	}
	for i, x := range t.XS {
		row := make([]string, 0, len(t.Series)+1)
		row = append(row, pad(x, width))
		for _, s := range t.Series {
			if i < len(s.Values) {
				row = append(row, pad(fmt.Sprintf("%.4g", s.Values[i]), 14))
			} else {
				row = append(row, pad("-", 14))
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "  ")); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
