package metrics

import (
	"sync"
	"testing"
)

func TestCounterRegistry(t *testing.T) {
	a := GetCounter("test.counters.a")
	if again := GetCounter("test.counters.a"); again != a {
		t.Fatal("GetCounter returned a different instance for the same name")
	}
	base := a.Value()
	a.Inc()
	a.Add(4)
	if got := a.Value(); got != base+5 {
		t.Fatalf("counter value = %d, want %d", got, base+5)
	}
	snap := Counters()
	if snap["test.counters.a"] != base+5 {
		t.Fatalf("snapshot value = %d, want %d", snap["test.counters.a"], base+5)
	}
	found := false
	for _, name := range CounterNames() {
		if name == "test.counters.a" {
			found = true
		}
	}
	if !found {
		t.Fatal("CounterNames missing registered counter")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := GetCounter("test.counters.concurrent")
	base := c.Value()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != base+8000 {
		t.Fatalf("concurrent increments lost: %d, want %d", got, base+8000)
	}
}
