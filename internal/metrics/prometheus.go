package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders every registered counter — plus the caller's gauges
// — in the Prometheus text exposition format (version 0.0.4), the format the
// node's /metrics endpoint serves. Counter names from the internal registry
// (dotted, e.g. "transport.dropped_data") are mangled to Prometheus metric
// names by prefixing "cosmos_" and replacing each non-alphanumeric rune with
// '_', so "transport.dropped_data" becomes "cosmos_transport_dropped_data".
// Counters are emitted as TYPE counter; gauges (point-in-time state sizes
// such as routing-table records, already prefixed by the caller) as TYPE
// gauge. Output is sorted by metric name so scrapes are diffable.
func WritePrometheus(w io.Writer, gauges map[string]int64) error {
	type sample struct {
		name  string
		typ   string
		value int64
	}
	snap := Counters()
	samples := make([]sample, 0, len(snap)+len(gauges))
	for name, v := range snap {
		samples = append(samples, sample{PrometheusName(name), "counter", v})
	}
	for name, v := range gauges {
		samples = append(samples, sample{PrometheusName(name), "gauge", v})
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].name < samples[j].name })
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", s.name, s.typ, s.name, s.value); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusName mangles an internal counter name into a valid Prometheus
// metric name: "cosmos_" prefix, every rune outside [a-zA-Z0-9_] replaced
// with '_'. Names already starting with "cosmos_" are not double-prefixed.
func PrometheusName(name string) string {
	var b strings.Builder
	b.Grow(len("cosmos_") + len(name))
	if !strings.HasPrefix(name, "cosmos_") {
		b.WriteString("cosmos_")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
