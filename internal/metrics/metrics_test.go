package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStdDev(t *testing.T) {
	cases := []struct {
		xs       []float64
		mean, sd float64
	}{
		{nil, 0, 0},
		{[]float64{5}, 5, 0},
		{[]float64{1, 2, 3, 4}, 2.5, math.Sqrt(1.25)},
		{[]float64{2, 2, 2}, 2, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almost(got, c.mean) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.mean)
		}
		if got := StdDev(c.xs); !almost(got, c.sd) {
			t.Errorf("StdDev(%v) = %v, want %v", c.xs, got, c.sd)
		}
	}
}

func TestMinMaxSumMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if got := Sum(xs); got != 14 {
		t.Errorf("Sum = %v", got)
	}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("even Median = %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("empty Median = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 8}, 4)
	want := []float64{0.5, 1, 2}
	for i := range want {
		if !almost(out[i], want[i]) {
			t.Errorf("Normalize[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	same := Normalize([]float64{1, 2}, 0)
	if same[0] != 1 || same[1] != 2 {
		t.Errorf("zero-base Normalize changed values: %v", same)
	}
}

func TestTableWrite(t *testing.T) {
	tbl := &Table{Title: "T", XLabel: "x", XS: []string{"1", "2"}}
	tbl.AddSeries("a", []float64{1.5, 2.5})
	tbl.AddSeries("short", []float64{9}) // missing second value
	var b strings.Builder
	if err := tbl.Write(&b); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := b.String()
	for _, want := range []string{"== T ==", "a", "short", "1.5", "2.5", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestQuickStdDevInvariance(t *testing.T) {
	// StdDev is translation-invariant and non-negative.
	f := func(xs []float64, shift float64) bool {
		if len(xs) == 0 {
			return StdDev(xs) == 0
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true // skip degenerate inputs
			}
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e9 {
			return true
		}
		sd := StdDev(xs)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		return sd >= 0 && math.Abs(StdDev(shifted)-sd) < 1e-6*(1+sd)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
