package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing operational counter. Counters exist
// so fault-injection runs can account for every message a component dropped,
// retried or failed to deliver instead of losing them silently: the chaos
// and transport layers increment them on each such event and the soak
// harnesses read them back through Counters().
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registry name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be >= 0; counters only go up).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

var (
	countersMu sync.Mutex
	counters   = make(map[string]*Counter)
)

// GetCounter returns the process-wide counter with the given name, creating
// it on first use. Safe for concurrent use; the returned pointer is stable,
// so hot paths should look it up once and keep it.
func GetCounter(name string) *Counter {
	countersMu.Lock()
	defer countersMu.Unlock()
	c, ok := counters[name]
	if !ok {
		c = &Counter{name: name}
		counters[name] = c
	}
	return c
}

// Counters snapshots every registered counter, sorted by name. Counters are
// process-wide and never reset; tests assert on deltas.
func Counters() map[string]int64 {
	countersMu.Lock()
	defer countersMu.Unlock()
	out := make(map[string]int64, len(counters))
	for name, c := range counters {
		out[name] = c.Value()
	}
	return out
}

// CounterNames returns the registered counter names in sorted order.
func CounterNames() []string {
	countersMu.Lock()
	defer countersMu.Unlock()
	out := make([]string, 0, len(counters))
	for name := range counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
