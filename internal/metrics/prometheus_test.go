package metrics

import (
	"strings"
	"testing"
)

func TestPrometheusName(t *testing.T) {
	cases := map[string]string{
		"transport.dropped_data":  "cosmos_transport_dropped_data",
		"pubsub.routed_tuples":    "cosmos_pubsub_routed_tuples",
		"cosmos_already_prefixed": "cosmos_already_prefixed",
		"weird-name.v2":           "cosmos_weird_name_v2",
	}
	for in, want := range cases {
		if got := PrometheusName(in); got != want {
			t.Errorf("PrometheusName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	GetCounter("promtest.alpha").Add(3)
	GetCounter("promtest.beta").Inc()
	var b strings.Builder
	if err := WritePrometheus(&b, map[string]int64{"promtest_gauge": 42}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cosmos_promtest_alpha counter\ncosmos_promtest_alpha 3\n",
		"# TYPE cosmos_promtest_beta counter\ncosmos_promtest_beta 1\n",
		"# TYPE cosmos_promtest_gauge gauge\ncosmos_promtest_gauge 42\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Sorted by metric name: alpha before beta before gauge.
	ia := strings.Index(out, "cosmos_promtest_alpha")
	ib := strings.Index(out, "cosmos_promtest_beta")
	ig := strings.Index(out, "cosmos_promtest_gauge")
	if !(ia < ib && ib < ig) {
		t.Errorf("output not sorted (alpha@%d beta@%d gauge@%d):\n%s", ia, ib, ig, out)
	}
	// Every line is either a comment or "name value".
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 2 || !strings.HasPrefix(parts[0], "cosmos_") {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}
