package adapt

import (
	"math/rand/v2"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/mapping"
	"repro/internal/netgraph"
	"repro/internal/querygraph"
	"repro/internal/topology"
)

// instance builds a 3-processor problem with nQ queries.
func instance(t *testing.T, nQ int, seed uint64) (*querygraph.Graph, *netgraph.Graph) {
	t.Helper()
	r := rand.New(rand.NewPCG(seed, 41))
	rates := []float64{4, 4, 4, 4}
	sources := []topology.NodeID{50, 50, 51, 51}
	qg, err := querygraph.New(rates, sources)
	if err != nil {
		t.Fatal(err)
	}
	lat := [][]float64{
		{0, 4, 9, 2, 9},
		{4, 0, 6, 5, 5},
		{9, 6, 0, 9, 2},
		{2, 5, 9, 0, 9},
		{9, 5, 2, 9, 0},
	}
	ng, err := netgraph.NewWithLatencies([]netgraph.Vertex{
		{Node: 0, Capability: 1, Members: []topology.NodeID{0}},
		{Node: 1, Capability: 1, Members: []topology.NodeID{1}},
		{Node: 2, Capability: 1, Members: []topology.NodeID{2}},
		{Node: 50},
		{Node: 51},
	}, lat)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nQ; i++ {
		qg.AddQVertex(querygraph.QueryInfo{
			Name:       "q",
			Proxy:      topology.NodeID(r.IntN(3)),
			Load:       0.1,
			Interest:   bitvec.FromIndices(4, []int{r.IntN(4)}),
			ResultRate: 0.5,
			StateSize:  1 + r.Float64()*9,
		})
	}
	qg.AddNVertex(50, 3, false)
	qg.AddNVertex(51, 4, false)
	qg.AddNVertex(0, 0, true)
	qg.AddNVertex(1, 1, true)
	qg.AddNVertex(2, 2, true)
	qg.ComputeEdges()
	return qg, ng
}

// skewed places every query on processor 0.
func skewed(qg *querygraph.Graph) mapping.Assignment {
	a := make(mapping.Assignment, len(qg.Vertices))
	for i, v := range qg.Vertices {
		if v.IsN() {
			a[i] = v.Clu
		} else {
			a[i] = 0
		}
	}
	return a
}

func TestRebalanceReducesOverload(t *testing.T) {
	qg, ng := instance(t, 30, 1)
	a := skewed(qg)
	res, err := Rebalance(qg, ng, a, Options{})
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	loads := mapping.Loads(qg, ng, res.Assignment)
	total := loads[0] + loads[1] + loads[2]
	for k := 0; k < 3; k++ {
		if loads[k] > total/3*1.4 {
			t.Errorf("processor %d still overloaded: %v of %v", k, loads[k], total)
		}
	}
	if res.Migrations == 0 {
		t.Error("no migrations from a fully skewed start")
	}
	if res.MovedLoad <= 0 || res.MovedState <= 0 {
		t.Errorf("moved load/state not accounted: %+v", res)
	}
}

func TestRebalanceBalancedInputFewMigrations(t *testing.T) {
	qg, ng := instance(t, 30, 2)
	// Start from the mapper's own result: nothing to re-balance, and
	// refinement may only apply WEC-decreasing moves.
	m := mapping.NewMapper(qg, ng, mapping.Options{})
	a, err := m.Map()
	if err != nil {
		t.Fatal(err)
	}
	before := mapping.WEC(qg, ng, a)
	res, err := Rebalance(qg, ng, a, Options{})
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if res.WECAfter > before+1e-9 {
		t.Errorf("rebalance worsened WEC: %v -> %v", before, res.WECAfter)
	}
}

func TestRebalancePinsNVertices(t *testing.T) {
	qg, ng := instance(t, 12, 3)
	a := skewed(qg)
	res, err := Rebalance(qg, ng, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range qg.Vertices {
		if v.IsN() && res.Assignment[i] != v.Clu {
			t.Errorf("n-vertex %d moved to %d", i, res.Assignment[i])
		}
		if !v.IsN() && ng.Vertices[res.Assignment[i]].Capability == 0 {
			t.Errorf("query vertex %d placed on anchor %d", i, res.Assignment[i])
		}
	}
}

func TestRebalanceValidation(t *testing.T) {
	qg, ng := instance(t, 5, 4)
	if _, err := Rebalance(qg, ng, make(mapping.Assignment, 1), Options{}); err == nil {
		t.Error("short assignment accepted")
	}
}

func TestRebalanceInputUnchanged(t *testing.T) {
	qg, ng := instance(t, 20, 5)
	a := skewed(qg)
	orig := a.Clone()
	if _, err := Rebalance(qg, ng, a, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != orig[i] {
			t.Fatal("Rebalance mutated its input assignment")
		}
	}
}
