// Package adapt implements the paper's adaptive query redistribution
// (§3.7, Algorithm 3): a two-phase, per-coordinator procedure run in rounds.
//
// Phase 1 (load re-balancing) consumes a Hu–Blake diffusion plan over the
// coordinator's children and, for each positive flow m_ij, migrates
// q-vertices from child i to child j, preferring vertices whose WEC-
// reduction benefit is within x% of the best, that are already dirty
// (picked earlier in the same round — re-moving them adds no migration
// cost), and that have the highest load density (load per unit of operator
// state, so less state moves).
//
// Phase 2 (distribution refinement) visits q-vertices in random order and
// (1) moves a vertex back to its original location when that keeps load
// balance and does not worsen the WEC, or (2) moves it anywhere that
// strictly decreases the WEC without violating balance.
package adapt

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/diffusion"
	"repro/internal/mapping"
	"repro/internal/netgraph"
	"repro/internal/querygraph"
)

// Options tunes Algorithm 3.
type Options struct {
	// Alpha is the load slack used for feasibility in both phases
	// (default 0.1, as in the mapping algorithm).
	Alpha float64
	// BenefitSlackPct is the x of Algorithm 3 line 5 (default 10): the
	// candidate set holds vertices whose benefit is within x% of the
	// best benefit.
	BenefitSlackPct float64
	// FlowFraction is the 90% rule of line 8: a vertex is eligible when
	// the remaining flow m_ij exceeds FlowFraction of its weight.
	FlowFraction float64
	// RefinePasses bounds phase-2 sweeps (default 2).
	RefinePasses int
	// Rng drives the random pair/vertex selection; nil seeds a fixed PCG.
	Rng *rand.Rand
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.1
	}
	if o.BenefitSlackPct == 0 {
		o.BenefitSlackPct = 10
	}
	if o.FlowFraction == 0 {
		o.FlowFraction = 0.9
	}
	if o.RefinePasses == 0 {
		o.RefinePasses = 2
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewPCG(7, 77))
	}
	return o
}

// Result reports one adaptation round.
type Result struct {
	Assignment mapping.Assignment
	// Migrations counts q-vertices whose target differs from the input
	// assignment (a vertex moved twice within the round counts once —
	// actual migration happens only after all decisions, §3.7).
	Migrations int
	// MovedLoad and MovedState total the weight and operator state of
	// migrated vertices.
	MovedLoad  float64
	MovedState float64
	// WECBefore and WECAfter record the cut around the round.
	WECBefore float64
	WECAfter  float64
}

// Rebalance runs one adaptation round on a coordinator's query graph,
// network graph and current assignment. Vertex Dirty flags are reset at the
// start of the round. The input assignment is not modified.
func Rebalance(qg *querygraph.Graph, ng *netgraph.Graph, assign mapping.Assignment, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if len(assign) != len(qg.Vertices) {
		return nil, fmt.Errorf("adapt: assignment has %d entries for %d vertices", len(assign), len(qg.Vertices))
	}
	m := mapping.NewMapper(qg, ng, mapping.Options{Alpha: opts.Alpha, Rng: opts.Rng})
	a := assign.Clone()
	orig := assign.Clone()
	for _, v := range qg.Vertices {
		v.Dirty = false
	}

	res := &Result{WECBefore: mapping.WEC(qg, ng, a)}

	if err := rebalancePhase(qg, ng, m, a, opts); err != nil {
		return nil, err
	}
	refinePhase(qg, ng, m, a, orig, opts)

	res.Assignment = a
	res.WECAfter = mapping.WEC(qg, ng, a)
	for i, v := range qg.Vertices {
		if !v.IsN() && a[i] != orig[i] {
			res.Migrations++
			res.MovedLoad += v.Weight
			res.MovedState += v.StateSize
		}
	}
	return res, nil
}

// rebalancePhase is Algorithm 3.
func rebalancePhase(qg *querygraph.Graph, ng *netgraph.Graph, m *mapping.Mapper, a mapping.Assignment, opts Options) error {
	targets := m.Assignable()
	if len(targets) < 2 {
		return nil
	}
	// Diffusion over assignable children, in the compact index space.
	idxOf := make(map[int]int, len(targets))
	for i, t := range targets {
		idxOf[t] = i
	}
	loads := mapping.Loads(qg, ng, a)
	dLoads := make([]float64, len(targets))
	dCaps := make([]float64, len(targets))
	for i, t := range targets {
		dLoads[i] = loads[t]
		dCaps[i] = ng.Vertices[t].Capability
	}
	sol, err := diffusion.Solve(diffusion.Complete(len(targets)), dLoads, dCaps)
	if err != nil {
		return fmt.Errorf("adapt: %w", err)
	}
	moves := sol.Moves()

	// Vertices by current target.
	byTarget := make(map[int][]int, len(targets))
	for vi, v := range qg.Vertices {
		if !v.IsN() && a[vi] != mapping.Unassigned {
			byTarget[a[vi]] = append(byTarget[a[vi]], vi)
		}
	}

	// Active positive-flow pairs.
	type pair struct{ i, j int }
	var pairs []pair
	const eps = 1e-9
	for i := range moves {
		for j := range moves[i] {
			if moves[i][j] > eps {
				pairs = append(pairs, pair{i, j})
			}
		}
	}

	for len(pairs) > 0 {
		pi := opts.Rng.IntN(len(pairs))
		p := pairs[pi]
		from, to := targets[p.i], targets[p.j]
		vi := pickVertex(qg, m, a, byTarget[from], to, moves[p.i][p.j], opts)
		if vi < 0 {
			// No eligible vertex for this pair; retire it.
			moves[p.i][p.j] = 0
			pairs[pi] = pairs[len(pairs)-1]
			pairs = pairs[:len(pairs)-1]
			continue
		}
		v := qg.Vertices[vi]
		a[vi] = to
		v.Dirty = true
		byTarget[from] = remove(byTarget[from], vi)
		byTarget[to] = append(byTarget[to], vi)
		moves[p.i][p.j] -= v.Weight
		if moves[p.i][p.j] <= eps {
			moves[p.i][p.j] = 0
			pairs[pi] = pairs[len(pairs)-1]
			pairs = pairs[:len(pairs)-1]
		}
	}
	return nil
}

// pickVertex implements lines 5–8 of Algorithm 3 for one (i,j) pair: among
// vertices on "from" eligible under the flow rule, restrict to those within
// x% of the best benefit, prefer dirty ones, then pick the highest load
// density.
func pickVertex(qg *querygraph.Graph, m *mapping.Mapper, a mapping.Assignment, candidates []int, to int, flow float64, opts Options) int {
	best := math.Inf(-1)
	type cand struct {
		vi      int
		benefit float64
	}
	var eligible []cand
	for _, vi := range candidates {
		w := qg.Vertices[vi].Weight
		if w <= 0 || flow <= opts.FlowFraction*w {
			continue
		}
		b := m.Gain(a, vi, to)
		eligible = append(eligible, cand{vi, b})
		if b > best {
			best = b
		}
	}
	if len(eligible) == 0 {
		return -1
	}
	slack := math.Abs(best) * opts.BenefitSlackPct / 100
	var v []cand
	for _, c := range eligible {
		if best-c.benefit <= slack {
			v = append(v, c)
		}
	}
	// Vd ← dirty subset; if empty, Vd ← V.
	var vd []cand
	for _, c := range v {
		if qg.Vertices[c.vi].Dirty {
			vd = append(vd, c)
		}
	}
	if len(vd) == 0 {
		vd = v
	}
	// Highest load density (weight / state size); stateless vertices are
	// free to move and rank first.
	bestVi, bestDensity := -1, math.Inf(-1)
	for _, c := range vd {
		d := math.Inf(1)
		if s := qg.Vertices[c.vi].StateSize; s > 0 {
			d = qg.Vertices[c.vi].Weight / s
		}
		if d > bestDensity || (d == bestDensity && c.vi < bestVi) {
			bestVi, bestDensity = c.vi, d
		}
	}
	return bestVi
}

// refinePhase is the distribution-refinement phase of §3.7.
func refinePhase(qg *querygraph.Graph, ng *netgraph.Graph, m *mapping.Mapper, a mapping.Assignment, orig mapping.Assignment, opts Options) {
	caps := m.Capacities()
	loads := mapping.Loads(qg, ng, a)
	targets := m.Assignable()

	feasible := func(vi, to int) bool {
		w := qg.Vertices[vi].Weight
		return loads[to]+w <= caps[to]
	}
	move := func(vi, to int) {
		w := qg.Vertices[vi].Weight
		loads[a[vi]] -= w
		loads[to] += w
		a[vi] = to
	}

	var movable []int
	for vi, v := range qg.Vertices {
		if !v.IsN() && a[vi] != mapping.Unassigned {
			movable = append(movable, vi)
		}
	}
	for pass := 0; pass < opts.RefinePasses; pass++ {
		opts.Rng.Shuffle(len(movable), func(i, j int) { movable[i], movable[j] = movable[j], movable[i] })
		changed := false
		for _, vi := range movable {
			// (1) Map back to the original location if that keeps
			// balance and the current WEC.
			if o := orig[vi]; o != a[vi] && o != mapping.Unassigned &&
				feasible(vi, o) && m.Gain(a, vi, o) >= 0 {
				move(vi, o)
				changed = true
				continue
			}
			// (2) Any strictly WEC-decreasing feasible move.
			bestK, bestG := -1, 1e-12
			for _, k := range targets {
				if k == a[vi] || !feasible(vi, k) {
					continue
				}
				if g := m.Gain(a, vi, k); g > bestG {
					bestK, bestG = k, g
				}
			}
			if bestK >= 0 {
				move(vi, bestK)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func remove(s []int, x int) []int {
	for i, v := range s {
		if v == x {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}
