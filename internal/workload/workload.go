// Package workload generates the synthetic workload of the simulation study
// (§4.1): substreams randomly distributed over source nodes with uniform
// rates, and user queries clustered into interest groups, where each group
// draws substreams from its own zipf-permuted hot spots.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/querygraph"
	"repro/internal/topology"
)

// Config mirrors the paper's workload parameters.
type Config struct {
	// NumSubstreams is the size of the global substream space (paper:
	// 20,000).
	NumSubstreams int
	// RateMin and RateMax bound the uniform per-substream rate in
	// bytes/sec (paper: 1–10).
	RateMin, RateMax float64
	// Groups is the number of user-interest groups g (paper: 20).
	Groups int
	// ZipfTheta is the skew of substream popularity within a group
	// (paper: 0.8).
	ZipfTheta float64
	// SubsPerQueryMin and SubsPerQueryMax bound the number of substreams
	// per query (paper: 100–200).
	SubsPerQueryMin, SubsPerQueryMax int
	// LoadFactor scales query load: load = LoadFactor × total input
	// rate (the paper sets workload proportional to input stream rate).
	LoadFactor float64
	// ResultFractionMin/Max bound the result-stream rate as a fraction
	// of the query's input rate.
	ResultFractionMin, ResultFractionMax float64
	// StatePerRate scales operator state size with input rate.
	StatePerRate float64
	// Seed drives generation deterministically.
	Seed uint64
}

// DefaultConfig returns the paper-scale workload parameters.
func DefaultConfig() Config {
	return Config{
		NumSubstreams:     20000,
		RateMin:           1,
		RateMax:           10,
		Groups:            20,
		ZipfTheta:         0.8,
		SubsPerQueryMin:   100,
		SubsPerQueryMax:   200,
		LoadFactor:        0.001,
		ResultFractionMin: 0.01,
		ResultFractionMax: 0.06,
		StatePerRate:      5,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NumSubstreams < 1:
		return fmt.Errorf("workload: NumSubstreams must be >= 1")
	case c.RateMin <= 0 || c.RateMax < c.RateMin:
		return fmt.Errorf("workload: bad rate band [%v,%v]", c.RateMin, c.RateMax)
	case c.Groups < 1:
		return fmt.Errorf("workload: Groups must be >= 1")
	case c.SubsPerQueryMin < 1 || c.SubsPerQueryMax < c.SubsPerQueryMin:
		return fmt.Errorf("workload: bad substreams-per-query band [%d,%d]",
			c.SubsPerQueryMin, c.SubsPerQueryMax)
	case c.SubsPerQueryMin > c.NumSubstreams:
		return fmt.Errorf("workload: queries want %d substreams but only %d exist",
			c.SubsPerQueryMin, c.NumSubstreams)
	}
	return nil
}

// Workload is a generated substream space plus query set.
type Workload struct {
	Cfg Config
	// SubRates holds the current rate of each substream (mutable: the
	// perturbation experiments scale entries in place).
	SubRates []float64
	// SourceOfSub maps substream index -> origin node.
	SourceOfSub []topology.NodeID
	// Queries holds the generated queries in creation order.
	Queries []querygraph.QueryInfo
	// GroupOf records each query's interest group.
	GroupOf map[string]int

	perms [][]int // per-group substream permutation
	cum   []float64
	rng   *rand.Rand
	seq   int
}

// Generate builds the substream space over the given sources and numQueries
// queries proxied at random processors.
func Generate(cfg Config, sources, processors []topology.NodeID, numQueries int) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sources) == 0 || len(processors) == 0 {
		return nil, fmt.Errorf("workload: need sources and processors")
	}
	w := &Workload{
		Cfg:         cfg,
		SubRates:    make([]float64, cfg.NumSubstreams),
		SourceOfSub: make([]topology.NodeID, cfg.NumSubstreams),
		GroupOf:     make(map[string]int, numQueries),
		rng:         rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x51ed2700)),
	}
	for i := 0; i < cfg.NumSubstreams; i++ {
		w.SubRates[i] = cfg.RateMin + w.rng.Float64()*(cfg.RateMax-cfg.RateMin)
		w.SourceOfSub[i] = sources[w.rng.IntN(len(sources))]
	}
	// Per-group hot-spot permutations (§4.1: g random permutations of the
	// substreams model different groups having different hot spots).
	w.perms = make([][]int, cfg.Groups)
	for g := range w.perms {
		w.perms[g] = w.rng.Perm(cfg.NumSubstreams)
	}
	// Cumulative zipf weights over popularity ranks.
	w.cum = make([]float64, cfg.NumSubstreams)
	var acc float64
	for i := 0; i < cfg.NumSubstreams; i++ {
		acc += 1 / math.Pow(float64(i+1), cfg.ZipfTheta)
		w.cum[i] = acc
	}

	for i := 0; i < numQueries; i++ {
		w.Queries = append(w.Queries, w.NewQuery(processors))
	}
	return w, nil
}

// NewQuery draws one more query from the model (used by the online-arrival
// experiment, Fig 8).
func (w *Workload) NewQuery(processors []topology.NodeID) querygraph.QueryInfo {
	cfg := w.Cfg
	group := w.rng.IntN(cfg.Groups)
	count := cfg.SubsPerQueryMin + w.rng.IntN(cfg.SubsPerQueryMax-cfg.SubsPerQueryMin+1)
	interest := bitvec.New(cfg.NumSubstreams)
	picked := 0
	for picked < count {
		rank := w.sampleRank()
		sub := w.perms[group][rank]
		if !interest.Test(sub) {
			interest.Set(sub)
			picked++
		}
	}
	inputRate := interest.WeightedSum(w.SubRates)
	frac := cfg.ResultFractionMin + w.rng.Float64()*(cfg.ResultFractionMax-cfg.ResultFractionMin)
	q := querygraph.QueryInfo{
		Name:       fmt.Sprintf("Q%d", w.seq),
		Proxy:      processors[w.rng.IntN(len(processors))],
		Load:       cfg.LoadFactor * inputRate,
		Interest:   interest,
		ResultRate: frac * inputRate,
		StateSize:  cfg.StatePerRate * inputRate * w.rng.Float64(),
	}
	w.GroupOf[q.Name] = group
	w.seq++
	return q
}

// sampleRank draws a popularity rank from the zipf distribution.
func (w *Workload) sampleRank() int {
	target := w.rng.Float64() * w.cum[len(w.cum)-1]
	return sort.SearchFloat64s(w.cum, target)
}

// LoadOf returns the current load estimate of a query: proportional to its
// interest's aggregate rate under the current (possibly perturbed) rates.
func (w *Workload) LoadOf(q querygraph.QueryInfo) float64 {
	return w.Cfg.LoadFactor * q.Interest.WeightedSum(w.SubRates)
}

// Perturb scales the rates of n random substreams by factor, in place
// (Fig 10's "I"/"D" rate-change events). It returns the affected indices.
func (w *Workload) Perturb(n int, factor float64) []int {
	if n > len(w.SubRates) {
		n = len(w.SubRates)
	}
	idxs := w.rng.Perm(len(w.SubRates))[:n]
	for _, i := range idxs {
		w.SubRates[i] *= factor
	}
	return idxs
}

// TotalLoad returns the summed load of all queries at generation time.
func (w *Workload) TotalLoad() float64 {
	var s float64
	for _, q := range w.Queries {
		s += q.Load
	}
	return s
}
