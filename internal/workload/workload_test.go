package workload

import (
	"testing"

	"repro/internal/topology"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NumSubstreams = 500
	cfg.SubsPerQueryMin = 10
	cfg.SubsPerQueryMax = 20
	cfg.Groups = 4
	cfg.Seed = 7
	return cfg
}

var (
	testSources = []topology.NodeID{1, 2, 3}
	testProcs   = []topology.NodeID{10, 11, 12, 13}
)

func TestGenerateBasics(t *testing.T) {
	w, err := Generate(testConfig(), testSources, testProcs, 50)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(w.Queries) != 50 {
		t.Fatalf("queries = %d", len(w.Queries))
	}
	cfg := testConfig()
	for _, q := range w.Queries {
		n := q.Interest.Count()
		if n < cfg.SubsPerQueryMin || n > cfg.SubsPerQueryMax {
			t.Errorf("query %s has %d substreams, want [%d,%d]",
				q.Name, n, cfg.SubsPerQueryMin, cfg.SubsPerQueryMax)
		}
		if q.Load <= 0 || q.ResultRate <= 0 {
			t.Errorf("query %s has load=%v result=%v", q.Name, q.Load, q.ResultRate)
		}
		found := false
		for _, p := range testProcs {
			if q.Proxy == p {
				found = true
			}
		}
		if !found {
			t.Errorf("query %s proxied at non-processor %d", q.Name, q.Proxy)
		}
		if g, ok := w.GroupOf[q.Name]; !ok || g < 0 || g >= cfg.Groups {
			t.Errorf("query %s group = %d", q.Name, g)
		}
	}
	for i, rate := range w.SubRates {
		if rate < cfg.RateMin || rate > cfg.RateMax {
			t.Errorf("substream %d rate %v outside band", i, rate)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testConfig(), testSources, testProcs, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig(), testSources, testProcs, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Queries {
		if !a.Queries[i].Interest.Equal(b.Queries[i].Interest) {
			t.Fatalf("query %d interests differ between identical seeds", i)
		}
		if a.Queries[i].Proxy != b.Queries[i].Proxy {
			t.Fatalf("query %d proxies differ", i)
		}
	}
}

func TestGroupsShareMoreThanStrangers(t *testing.T) {
	w, err := Generate(testConfig(), testSources, testProcs, 200)
	if err != nil {
		t.Fatal(err)
	}
	var same, cross float64
	var sameN, crossN int
	for i := 0; i < len(w.Queries); i++ {
		for j := i + 1; j < len(w.Queries); j++ {
			qi, qj := w.Queries[i], w.Queries[j]
			ov := float64(qi.Interest.OverlapCount(qj.Interest))
			if w.GroupOf[qi.Name] == w.GroupOf[qj.Name] {
				same += ov
				sameN++
			} else {
				cross += ov
				crossN++
			}
		}
	}
	sameAvg, crossAvg := same/float64(sameN), cross/float64(crossN)
	t.Logf("avg overlap: same-group=%.2f cross-group=%.2f", sameAvg, crossAvg)
	if sameAvg <= 1.5*crossAvg {
		t.Errorf("zipf hot spots not clustering: same=%.2f cross=%.2f", sameAvg, crossAvg)
	}
}

func TestPerturb(t *testing.T) {
	w, err := Generate(testConfig(), testSources, testProcs, 5)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), w.SubRates...)
	idxs := w.Perturb(50, 2)
	if len(idxs) != 50 {
		t.Fatalf("perturbed %d substreams", len(idxs))
	}
	changed := 0
	for i := range w.SubRates {
		if w.SubRates[i] != before[i] {
			changed++
		}
	}
	if changed != 50 {
		t.Errorf("%d rates changed, want 50", changed)
	}
	for _, i := range idxs {
		if w.SubRates[i] != before[i]*2 {
			t.Errorf("substream %d rate %v, want %v", i, w.SubRates[i], before[i]*2)
		}
	}
	// Oversized perturbation clamps.
	if got := w.Perturb(10_000, 1); len(got) != len(w.SubRates) {
		t.Errorf("clamped perturb = %d", len(got))
	}
}

func TestLoadOfTracksRates(t *testing.T) {
	w, err := Generate(testConfig(), testSources, testProcs, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := w.Queries[0]
	if got, want := w.LoadOf(q), q.Load; got != want {
		t.Errorf("initial LoadOf = %v, want %v", got, want)
	}
	for i := range w.SubRates {
		w.SubRates[i] *= 2
	}
	if got := w.LoadOf(q); got != 2*q.Load {
		t.Errorf("LoadOf after doubling = %v, want %v", got, 2*q.Load)
	}
}

func TestValidation(t *testing.T) {
	bad := testConfig()
	bad.SubsPerQueryMin = 1000
	if _, err := Generate(bad, testSources, testProcs, 1); err == nil {
		t.Error("oversubscribed config accepted")
	}
	if _, err := Generate(testConfig(), nil, testProcs, 1); err == nil {
		t.Error("empty sources accepted")
	}
}
