package chaos

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"repro/internal/metrics"
	"repro/internal/pubsub"
	"repro/internal/stream"
	"repro/internal/topology"
)

// Kind identifies one of the five protocol message types.
type Kind int

const (
	KindAdvert Kind = iota
	KindUnadvert
	KindPropagate
	KindRetract
	KindRoute
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindAdvert:
		return "advert"
	case KindUnadvert:
		return "unadvert"
	case KindPropagate:
		return "propagate"
	case KindRetract:
		return "retract"
	case KindRoute:
		return "route"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ControlKinds returns the four control-plane message kinds — the default
// fault target. Data tuples (KindRoute) are deliberately excluded: the data
// plane makes no idempotence claim, so duplicating a route message would
// (correctly) double a delivery and break equivalence oracles.
func ControlKinds() []Kind {
	return []Kind{KindAdvert, KindUnadvert, KindPropagate, KindRetract}
}

// AllKinds returns every message kind, including data tuples.
func AllKinds() []Kind {
	return []Kind{KindAdvert, KindUnadvert, KindPropagate, KindRetract, KindRoute}
}

// Config parameterises a fault schedule. Drop, Dup and Delay are
// probabilities (their sum must be <= 1); the remainder delivers cleanly.
type Config struct {
	// Seed drives the single PCG stream behind every fate draw.
	Seed uint64
	// Drop is the probability a message is silently lost. Unsound without
	// a following teardown+resync — see the package comment.
	Drop float64
	// Dup is the probability a message is delivered twice back to back
	// (a retransmit burst).
	Dup float64
	// Delay is the probability a message is held back and released only
	// after 1..MaxHold later fabric events — a reordering.
	Delay float64
	// MaxHold bounds how many subsequent events a delayed message can be
	// held past. Zero means 1.
	MaxHold int
	// Kinds selects which message kinds are faulted; nil means
	// ControlKinds(). Crash and partition blackholes apply to ALL kinds
	// regardless — a dead link loses data tuples too.
	Kinds []Kind
}

// Stats counts fate outcomes since the fabric was created.
type Stats struct {
	Delivered  int64 // clean deliveries, including both halves of a duplicate
	Dropped    int64
	Duplicated int64
	Delayed    int64
	Released   int64 // delayed messages that eventually delivered
	Blackholed int64 // lost to a crash or partition window
}

type heldMsg struct {
	deliver func()
	from    topology.NodeID
	to      topology.NodeID
	left    int
}

// Fabric is a pubsub.PeerWrapper implementing the fault schedule. Install
// it with Network.SetPeerWrapper. The zero value is not usable; use New.
type Fabric struct {
	// cosmoslint:guards — fault decisions happen under mu, but held or
	// duplicated messages are delivered to Peers only after release.
	mu      sync.Mutex
	rng     *rand.Rand
	cfg     Config
	kinds   [numKinds]bool
	active  bool
	crashed map[topology.NodeID]bool
	cut     map[[2]topology.NodeID]bool
	held    []heldMsg
	stats   Stats

	cDropped, cDuplicated, cDelayed, cBlackholed *metrics.Counter
}

// New builds a fabric from cfg. The fabric starts active (injecting).
func New(cfg Config) *Fabric {
	if cfg.Drop+cfg.Dup+cfg.Delay > 1 {
		panic("chaos: Drop+Dup+Delay exceeds 1")
	}
	if cfg.MaxHold <= 0 {
		cfg.MaxHold = 1
	}
	f := &Fabric{
		rng:         rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15)),
		cfg:         cfg,
		active:      true,
		crashed:     make(map[topology.NodeID]bool),
		cut:         make(map[[2]topology.NodeID]bool),
		cDropped:    metrics.GetCounter("chaos.dropped"),
		cDuplicated: metrics.GetCounter("chaos.duplicated"),
		cDelayed:    metrics.GetCounter("chaos.delayed"),
		cBlackholed: metrics.GetCounter("chaos.blackholed"),
	}
	kinds := cfg.Kinds
	if kinds == nil {
		kinds = ControlKinds()
	}
	for _, k := range kinds {
		if k >= 0 && k < numKinds {
			f.kinds[k] = true
		}
	}
	return f
}

// WrapPeer implements pubsub.PeerWrapper: every protocol message bound for
// broker `to` passes through the fault schedule first.
func (f *Fabric) WrapPeer(to topology.NodeID, p pubsub.Peer) pubsub.Peer {
	return &link{f: f, to: to, p: p}
}

func linkKey(a, b topology.NodeID) [2]topology.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]topology.NodeID{a, b}
}

func (f *Fabric) blackholedLocked(from, to topology.NodeID) bool {
	return f.crashed[from] || f.crashed[to] || f.cut[linkKey(from, to)]
}

// tickLocked advances every held message by one fabric event and removes
// the ones that came due. Due messages whose endpoints died while held are
// blackholed here.
func (f *Fabric) tickLocked() []func() {
	if len(f.held) == 0 {
		return nil
	}
	var due []func()
	kept := f.held[:0]
	for _, m := range f.held {
		m.left--
		if m.left > 0 {
			kept = append(kept, m)
			continue
		}
		if f.blackholedLocked(m.from, m.to) {
			f.stats.Blackholed++
			f.cBlackholed.Inc()
			continue
		}
		f.stats.Released++
		f.stats.Delivered++
		due = append(due, m.deliver)
	}
	f.held = kept
	return due
}

// apply runs one message through the schedule. deliver is invoked outside
// the fabric mutex — broker entry points send synchronously to further
// peers, which re-enters apply.
func (f *Fabric) apply(kind Kind, from, to topology.NodeID, deliver func()) {
	f.mu.Lock()
	if !f.active {
		f.mu.Unlock()
		deliver()
		return
	}
	if f.blackholedLocked(from, to) {
		f.stats.Blackholed++
		f.cBlackholed.Inc()
		f.mu.Unlock()
		return
	}
	if !f.kinds[kind] {
		f.mu.Unlock()
		deliver()
		return
	}
	due := f.tickLocked()
	copies := 1
	fate := f.rng.Float64()
	switch {
	case fate < f.cfg.Drop:
		copies = 0
		f.stats.Dropped++
		f.cDropped.Inc()
	case fate < f.cfg.Drop+f.cfg.Dup:
		copies = 2
		f.stats.Duplicated++
		f.cDuplicated.Inc()
	case fate < f.cfg.Drop+f.cfg.Dup+f.cfg.Delay:
		copies = 0
		hold := 1 + f.rng.IntN(f.cfg.MaxHold)
		f.held = append(f.held, heldMsg{deliver: deliver, from: from, to: to, left: hold})
		f.stats.Delayed++
		f.cDelayed.Inc()
	}
	f.stats.Delivered += int64(copies)
	f.mu.Unlock()
	for i := 0; i < copies; i++ {
		deliver()
	}
	for _, d := range due {
		d()
	}
}

// Flush releases every held message immediately (in hold order) without
// deactivating the schedule. Call before a probe whose oracle assumes all
// control traffic has landed.
func (f *Fabric) Flush() {
	// Loop: delivering a held message re-enters the broker, whose cascade
	// sends pass through the schedule again and may be delayed anew.
	for {
		f.mu.Lock()
		if len(f.held) == 0 {
			f.mu.Unlock()
			return
		}
		held := f.held
		f.held = nil
		var due []func()
		for _, m := range held {
			if f.blackholedLocked(m.from, m.to) {
				f.stats.Blackholed++
				f.cBlackholed.Inc()
				continue
			}
			f.stats.Released++
			f.stats.Delivered++
			due = append(due, m.deliver)
		}
		f.mu.Unlock()
		for _, d := range due {
			d()
		}
	}
}

// Pause flushes held messages and switches the fabric to passthrough.
// Membership repairs (FailLink, RemoveBroker, AddBroker) must run paused so
// the teardown/resync floods are not themselves faulted.
func (f *Fabric) Pause() {
	f.mu.Lock()
	f.active = false
	f.mu.Unlock()
	f.Flush()
}

// Resume re-enables the schedule after a Pause.
func (f *Fabric) Resume() {
	f.mu.Lock()
	f.active = true
	f.mu.Unlock()
}

// Crash blackholes every link incident to n until Heal(n). Messages already
// held for those links are blackholed at release time.
func (f *Fabric) Crash(n topology.NodeID) {
	f.mu.Lock()
	f.crashed[n] = true
	f.mu.Unlock()
}

// Heal lifts a Crash.
func (f *Fabric) Heal(n topology.NodeID) {
	f.mu.Lock()
	delete(f.crashed, n)
	f.mu.Unlock()
}

// PartitionLink blackholes the a-b link in both directions until HealLink.
func (f *Fabric) PartitionLink(a, b topology.NodeID) {
	f.mu.Lock()
	f.cut[linkKey(a, b)] = true
	f.mu.Unlock()
}

// HealLink lifts a PartitionLink.
func (f *Fabric) HealLink(a, b topology.NodeID) {
	f.mu.Lock()
	delete(f.cut, linkKey(a, b))
	f.mu.Unlock()
}

// Held reports how many delayed messages are currently in flight.
func (f *Fabric) Held() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.held)
}

// Stats returns a snapshot of the fate counters.
func (f *Fabric) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// link applies the fabric's schedule to one directed peer endpoint.
type link struct {
	f  *Fabric
	to topology.NodeID
	p  pubsub.Peer
}

func (l *link) AdvertFrom(from topology.NodeID, streamName string, origin topology.NodeID, seq uint64) {
	l.f.apply(KindAdvert, from, l.to, func() { l.p.AdvertFrom(from, streamName, origin, seq) })
}

func (l *link) UnadvertFrom(from topology.NodeID, streamName string, origin topology.NodeID, seq uint64) {
	l.f.apply(KindUnadvert, from, l.to, func() { l.p.UnadvertFrom(from, streamName, origin, seq) })
}

func (l *link) PropagateFrom(sub *pubsub.Subscription, from topology.NodeID) {
	l.f.apply(KindPropagate, from, l.to, func() { l.p.PropagateFrom(sub, from) })
}

func (l *link) RetractFrom(from topology.NodeID, id string, seq uint64) {
	l.f.apply(KindRetract, from, l.to, func() { l.p.RetractFrom(from, id, seq) })
}

func (l *link) RouteFrom(t stream.Tuple, from topology.NodeID) {
	l.f.apply(KindRoute, from, l.to, func() { l.p.RouteFrom(t, from) })
}
