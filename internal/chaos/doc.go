// Package chaos wraps a pub/sub overlay's links with a seeded, deterministic
// fault injector. It intercepts the five protocol messages (advert,
// unadvert, propagate, retract, route) on their way into a broker and
// subjects each to a per-link fate draw: deliver, drop, duplicate, or delay
// (reorder past later traffic). Whole brokers can be crashed (all incident
// links blackhole) and individual links partitioned.
//
// The injector exists to attack the epoch machinery's idempotence claims:
//
//   - DUPLICATION and DELAY of control messages are survivable in place —
//     per-(stream,origin) advert epochs, subscription sequence numbers and
//     the reorder tombstones absorb adjacent duplicates and reordered
//     stale copies without residue. Equivalence with a fault-free run is
//     the test oracle (see TestChaosControlFaultEquivalence).
//
//   - DROP, PARTITION and CRASH are silent loss. Loss is NOT survivable in
//     place: the overlay only reconverges when the loss window is followed
//     by the teardown+resync path (Network.FailLink / Network.RemoveBroker
//     plus re-attach), which withdraws everything learned via the faulty
//     link and replays surviving state. Schedules must pair every loss
//     window with a repair, with the injector Paused during the repair so
//     membership-change floods are not themselves faulted.
//
// Everything is driven by a single PCG stream seeded from Config.Seed: the
// same seed over the same event sequence yields the same fault schedule.
// Fabric.mu is a cosmoslint:guards mutex like Broker.mu — fate draws and
// the delay queue are decided under it, deliveries happen after release
// (see CONCURRENCY.md for the repo-wide locking rules).
package chaos
