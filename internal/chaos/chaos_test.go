package chaos_test

import (
	"fmt"
	"testing"

	"repro/internal/chaos"
	"repro/internal/pubsub"
	"repro/internal/stream"
	"repro/internal/topology"
)

// lineNet builds the canonical 0-1-2-3 line overlay used across the pubsub
// suites (edge i-(i+1) has latency i+1).
func lineNet(t *testing.T) *pubsub.Network {
	t.Helper()
	g := topology.NewGraph(4)
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(topology.NodeID(i), topology.NodeID(i+1), float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	net, err := pubsub.NewNetwork(topology.NewOracle(g), []topology.NodeID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func tup(streamName string, v float64) stream.Tuple {
	return stream.Tuple{
		Stream: streamName,
		Attrs:  map[string]stream.Value{"a": stream.FloatVal(v)},
		Size:   24,
	}
}

// driveOps runs a fixed control+data script against a network and returns
// the per-subscriber delivery counts. Flush (nil for fault-free runs) is
// called after every control burst so delayed control messages land before
// the probes that depend on them.
func driveOps(t *testing.T, net *pubsub.Network, flush func()) map[string]int {
	t.Helper()
	if flush == nil {
		flush = func() {}
	}
	hits := make(map[string]int)
	sub := func(n topology.NodeID, id string, streams ...string) {
		b, _ := net.Broker(n)
		if err := b.Subscribe(&pubsub.Subscription{ID: id, Streams: streams},
			func(*pubsub.Subscription, stream.Tuple) { hits[id]++ }); err != nil {
			t.Fatal(err)
		}
	}
	b0, _ := net.Broker(0)
	b1, _ := net.Broker(1)
	b3, _ := net.Broker(3)

	b0.Advertise("R")
	b1.Advertise("S")
	sub(3, "s3", "R")
	sub(2, "s2", "R", "S")
	flush()
	b0.Publish(tup("R", 1))
	b1.Publish(tup("S", 2))

	b3.Unsubscribe("s3")
	sub(0, "s0", "S")
	flush()
	b0.Publish(tup("R", 3))
	b1.Publish(tup("S", 4))

	b2, _ := net.Broker(2)
	b2.Unsubscribe("s2")
	b0.Unsubscribe("s0")
	b0.Unadvertise("R")
	b1.Unadvertise("S")
	flush()
	return hits
}

// TestChaosDeterminism: the same seed over the same event sequence yields
// the same fault schedule; a different seed yields a different one.
func TestChaosDeterminism(t *testing.T) {
	run := func(seed uint64) chaos.Stats {
		net := lineNet(t)
		f := chaos.New(chaos.Config{Seed: seed, Drop: 0.1, Dup: 0.2, Delay: 0.2, MaxHold: 3})
		net.SetPeerWrapper(f)
		driveOps(t, net, f.Flush)
		return f.Stats()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if a.Dropped+a.Duplicated+a.Delayed == 0 {
		t.Fatalf("schedule injected no faults: %+v", a)
	}
	if c := run(43); c == a {
		t.Fatalf("different seed produced identical schedule: %+v", c)
	}
}

// TestChaosControlFaultEquivalence: duplication and reordering of control
// messages must be invisible — the faulted overlay delivers the same tuples
// and holds the same routing state as a fault-free run, and drains to empty
// after teardown (tombstones swept by Quiesce). This is the idempotence
// claim of the epoch machinery under an adversarial link.
func TestChaosControlFaultEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			clean := driveOps(t, lineNet(t), nil)

			net := lineNet(t)
			f := chaos.New(chaos.Config{Seed: seed, Dup: 0.25, Delay: 0.25, MaxHold: 4})
			net.SetPeerWrapper(f)
			faulted := driveOps(t, net, f.Flush)

			if len(faulted) != len(clean) {
				t.Fatalf("delivery map mismatch: faulted %v, clean %v", faulted, clean)
			}
			for id, want := range clean {
				if faulted[id] != want {
					t.Errorf("subscriber %s: %d deliveries under faults, %d clean", id, faulted[id], want)
				}
			}
			net.Quiesce()
			if residual := net.ResidualState(); len(residual) != 0 {
				t.Fatalf("faulted overlay did not drain:\n%v", residual)
			}
		})
	}
}

// TestChaosPartitionThenRepair: a partition window silently eats control
// traffic; the overlay reconverges only after the loss is repaired through
// the teardown+resync path (FailLink + re-attach) with the injector paused.
func TestChaosPartitionThenRepair(t *testing.T) {
	net := lineNet(t)
	f := chaos.New(chaos.Config{Seed: 7, Kinds: chaos.AllKinds()})
	net.SetPeerWrapper(f)

	src, _ := net.Broker(0)
	dst, _ := net.Broker(3)
	src.Advertise("R")
	hits := 0
	f.PartitionLink(1, 2)
	// Subscription issued during the window: its propagation dies at the
	// cut and the publisher never learns of it.
	if err := dst.Subscribe(&pubsub.Subscription{ID: "s", Streams: []string{"R"}},
		func(*pubsub.Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}
	src.Publish(tup("R", 1))
	if hits != 0 {
		t.Fatalf("delivery crossed a partitioned link: %d", hits)
	}
	if s := f.Stats(); s.Blackholed == 0 {
		t.Fatalf("partition window blackholed nothing: %+v", s)
	}

	// Repair: pause the injector, declare the link failed (teardown +
	// deterministic re-attach re-adds 1-2, the cheapest cross pair, and
	// resyncs), heal the partition, resume.
	f.Pause()
	if !net.FailLink(1, 2) {
		t.Fatal("FailLink(1,2) found no link")
	}
	f.HealLink(1, 2)
	f.Resume()

	src.Publish(tup("R", 2))
	if hits != 1 {
		t.Fatalf("deliveries after repair = %d, want 1", hits)
	}
	dst.Unsubscribe("s")
	src.Unadvertise("R")
	f.Pause()
	net.Quiesce()
	if residual := net.ResidualState(); len(residual) != 0 {
		t.Fatalf("repaired overlay did not drain:\n%v", residual)
	}
}

// TestChaosCrashThenRejoin: a crash window blackholes every incident link;
// recovery removes the broker (survivors detach and re-attach around it),
// heals, and rejoins it via AddBroker's advert resync.
func TestChaosCrashThenRejoin(t *testing.T) {
	net := lineNet(t)
	f := chaos.New(chaos.Config{Seed: 11, Kinds: chaos.AllKinds()})
	net.SetPeerWrapper(f)

	src, _ := net.Broker(0)
	dst, _ := net.Broker(3)
	src.Advertise("R")
	hits := 0
	if err := dst.Subscribe(&pubsub.Subscription{ID: "s", Streams: []string{"R"}},
		func(*pubsub.Subscription, stream.Tuple) { hits++ }); err != nil {
		t.Fatal(err)
	}

	f.Crash(1)
	src.Publish(tup("R", 1)) // dies at the crashed relay
	if hits != 0 {
		t.Fatalf("delivery crossed a crashed broker: %d", hits)
	}

	f.Pause()
	net.RemoveBroker(1)
	f.Resume()
	src.Publish(tup("R", 2)) // routed around the gap (0-2 repair link)
	if hits != 1 {
		t.Fatalf("deliveries after crash repair = %d, want 1", hits)
	}

	f.Pause()
	f.Heal(1)
	net.AddBroker(1)
	f.Resume()
	src.Publish(tup("R", 3))
	if hits != 2 {
		t.Fatalf("deliveries after rejoin = %d, want 2", hits)
	}

	dst.Unsubscribe("s")
	src.Unadvertise("R")
	f.Pause()
	net.Quiesce()
	if residual := net.ResidualState(); len(residual) != 0 {
		t.Fatalf("rejoined overlay did not drain:\n%v", residual)
	}
}
