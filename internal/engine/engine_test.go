package engine

import (
	"testing"

	"repro/internal/query"
	"repro/internal/stream"
)

func reading(streamName string, ts int64, snow float64) stream.Tuple {
	return stream.Tuple{
		Stream:    streamName,
		Timestamp: ts,
		Attrs:     map[string]stream.Value{"snowHeight": stream.FloatVal(snow)},
		Size:      24,
	}
}

const minute = int64(60_000)

func TestSingleStreamSelection(t *testing.T) {
	e := New()
	q := query.MustParse(`SELECT * FROM R [Now] WHERE snowHeight > 10`)
	q.Name = "sel"
	var out []stream.Tuple
	if err := e.AddQuery(q, "res", func(t stream.Tuple) { out = append(out, t) }); err != nil {
		t.Fatal(err)
	}
	e.Process(reading("R", 1, 15))
	e.Process(reading("R", 2, 5))
	if len(out) != 1 {
		t.Fatalf("emitted %d, want 1", len(out))
	}
	if out[0].Stream != "res" {
		t.Errorf("result stream = %q", out[0].Stream)
	}
	if v, ok := out[0].Attrs["R.snowHeight"]; !ok || v.F != 15 {
		t.Errorf("result attrs = %v", out[0].Attrs)
	}
	st := e.Stats()
	if st.Consumed != 2 || st.Emitted != 1 || st.Dropped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestPaperQ4Join replays the Table 1 Q4 semantics: a [Range 1 Hour] window
// on S1 joined with [Now] arrivals on S2 under S1.snowHeight > S2.snowHeight.
func TestPaperQ4Join(t *testing.T) {
	e := New()
	q := query.MustParse(`SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp
		FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2
		WHERE S1.snowHeight > S2.snowHeight`)
	q.Name = "q4"
	var out []stream.Tuple
	if err := e.AddQuery(q, "res", func(t stream.Tuple) { out = append(out, t) }); err != nil {
		t.Fatal(err)
	}
	e.Process(reading("Station1", 0*minute, 15))
	e.Process(reading("Station1", 40*minute, 8))
	e.Process(reading("Station1", 42*minute, 20))
	e.Process(reading("Station2", 45*minute, 12)) // joins 15@0m and 20@42m

	if len(out) != 2 {
		t.Fatalf("emitted %d, want 2: %v", len(out), out)
	}
	for _, r := range out {
		s1 := r.Attrs["S1.snowHeight"].F
		if s1 != 15 && s1 != 20 {
			t.Errorf("unexpected S1.snowHeight %v", s1)
		}
		if r.Attrs["S2.snowHeight"].F != 12 {
			t.Errorf("S2.snowHeight = %v", r.Attrs["S2.snowHeight"])
		}
		if _, ok := r.Attrs["S1.timestamp"]; !ok {
			t.Error("missing S1.timestamp projection")
		}
	}
}

func TestWindowEviction(t *testing.T) {
	e := New()
	q := query.MustParse(`SELECT S1.snowHeight FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2
		WHERE S1.snowHeight > S2.snowHeight`)
	q.Name = "w"
	var out []stream.Tuple
	if err := e.AddQuery(q, "res", func(t stream.Tuple) { out = append(out, t) }); err != nil {
		t.Fatal(err)
	}
	e.Process(reading("Station1", 0, 50))         // will expire
	e.Process(reading("Station1", 40*minute, 40)) // inside window at t=45m
	e.Process(reading("Station2", 45*minute, 10)) // probe
	if len(out) != 1 || out[0].Attrs["S1.snowHeight"].F != 40 {
		t.Fatalf("emitted %v, want one join with S1=40", out)
	}
}

func TestNowWindowExactTimestamp(t *testing.T) {
	e := New()
	q := query.MustParse(`SELECT S2.snowHeight FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2
		WHERE S1.snowHeight > S2.snowHeight`)
	q.Name = "now"
	var out []stream.Tuple
	if err := e.AddQuery(q, "res", func(t stream.Tuple) { out = append(out, t) }); err != nil {
		t.Fatal(err)
	}
	// S2 arrives first; then S1 at the SAME timestamp joins it ([Now]
	// admits same-instant tuples), but an S1 at a later timestamp does
	// not.
	e.Process(reading("Station2", 10*minute, 5))
	e.Process(reading("Station1", 10*minute, 9)) // same instant: join
	e.Process(reading("Station1", 11*minute, 9)) // S2 window expired
	if len(out) != 1 {
		t.Fatalf("emitted %d, want 1: %v", len(out), out)
	}
}

func TestRemoveQueryReleasesState(t *testing.T) {
	e := New()
	q := query.MustParse(`SELECT S1.snowHeight FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2
		WHERE S1.snowHeight > S2.snowHeight`)
	q.Name = "rm"
	if err := e.AddQuery(q, "res", nil); err != nil {
		t.Fatal(err)
	}
	e.Process(reading("Station1", 1, 10))
	e.Process(reading("Station1", 2, 11))
	if st := e.QueryState("rm"); st != 2 {
		t.Errorf("QueryState = %d, want 2", st)
	}
	n, err := e.RemoveQuery("rm")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("released state = %d, want 2", n)
	}
	if names := e.QueryNames(); len(names) != 0 {
		t.Errorf("queries left: %v", names)
	}
	if _, err := e.RemoveQuery("rm"); err == nil {
		t.Error("double remove succeeded")
	}
	// Tuples after removal are ignored.
	e.Process(reading("Station1", 3, 12))
}

func TestAddQueryValidation(t *testing.T) {
	e := New()
	q := query.MustParse(`SELECT * FROM R [Now]`)
	if err := e.AddQuery(q, "res", nil); err == nil {
		t.Error("unnamed query accepted")
	}
	q.Name = "dup"
	if err := e.AddQuery(q, "res", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.AddQuery(q, "res", nil); err == nil {
		t.Error("duplicate query accepted")
	}
}

func TestOutOfOrderInsertKeepsWindowSorted(t *testing.T) {
	e := New()
	q := query.MustParse(`SELECT S1.snowHeight FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2
		WHERE S1.snowHeight > S2.snowHeight`)
	q.Name = "ooo"
	var out []stream.Tuple
	if err := e.AddQuery(q, "res", func(t stream.Tuple) { out = append(out, t) }); err != nil {
		t.Fatal(err)
	}
	// Slightly out-of-order S1 arrivals.
	e.Process(reading("Station1", 20*minute, 30))
	e.Process(reading("Station1", 10*minute, 31))
	e.Process(reading("Station1", 30*minute, 32))
	e.Process(reading("Station2", 35*minute, 1))
	if len(out) != 3 {
		t.Fatalf("emitted %d, want 3", len(out))
	}
}

func BenchmarkJoinProbe(b *testing.B) {
	e := New()
	q := query.MustParse(`SELECT S1.snowHeight FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2
		WHERE S1.snowHeight > S2.snowHeight`)
	q.Name = "bench"
	if err := e.AddQuery(q, "res", nil); err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		e.Process(reading("Station1", i*1000, float64(i%50)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Process(reading("Station2", 100_000+int64(i), 25))
	}
}
