// Package engine is the continuous-query execution engine that plays the
// role GSN plays in the paper's prototype (§4.2): it runs the CQL-subset
// queries — selections, projections, and sliding-window joins — over live
// tuples and emits result streams. COSMOS places queries on processors;
// each processor runs one Engine fed by the Pub/Sub substrate.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/query"
	"repro/internal/stream"
)

// ResultSink receives the result tuples of one query.
type ResultSink func(t stream.Tuple)

// Stats counts an engine's activity.
type Stats struct {
	Consumed int64 // input tuples processed
	Emitted  int64 // result tuples produced
	Dropped  int64 // input tuples failing every selection
}

// Engine hosts running continuous queries.
type Engine struct {
	mu      sync.Mutex
	queries map[string]*running
	byInput map[string][]*running // stream name -> interested queries
	stats   Stats
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{
		queries: make(map[string]*running),
		byInput: make(map[string][]*running),
	}
}

type aliasState struct {
	ref        query.StreamRef
	spanMillis int64
	selections []query.Predicate
	window     []stream.Tuple // ascending by timestamp
}

type running struct {
	q          *query.Query
	resultName string
	sink       ResultSink
	aliases    []string
	state      map[string]*aliasState
	joins      []query.Predicate
	emitted    int64
}

// AddQuery starts a query. resultName names the emitted result stream; sink
// receives result tuples (may be nil to discard). The query must be valid
// and must not be registered already.
func (e *Engine) AddQuery(q *query.Query, resultName string, sink ResultSink) error {
	if err := q.Validate(); err != nil {
		return err
	}
	if q.Name == "" {
		return fmt.Errorf("engine: query needs a name")
	}
	r := &running{
		q:          q,
		resultName: resultName,
		sink:       sink,
		state:      make(map[string]*aliasState, len(q.From)),
		joins:      q.JoinPredicates(),
	}
	for _, ref := range q.From {
		r.aliases = append(r.aliases, ref.Alias)
		r.state[ref.Alias] = &aliasState{
			ref:        ref,
			spanMillis: spanMillis(ref.Window),
			selections: q.SelectionsFor(ref.Alias),
		}
	}
	sort.Strings(r.aliases)

	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.queries[q.Name]; dup {
		return fmt.Errorf("engine: query %q already running", q.Name)
	}
	e.queries[q.Name] = r
	for _, name := range q.StreamNames() {
		e.byInput[name] = append(e.byInput[name], r)
	}
	return nil
}

// RemoveQuery stops a query and discards its window state. It returns the
// total operator state (tuples buffered) released, which models the
// migration payload of §3.7.
func (e *Engine) RemoveQuery(name string) (stateTuples int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.queries[name]
	if !ok {
		return 0, fmt.Errorf("engine: query %q not running", name)
	}
	delete(e.queries, name)
	for streamName, lst := range e.byInput {
		kept := lst[:0]
		for _, x := range lst {
			if x != r {
				kept = append(kept, x)
			}
		}
		e.byInput[streamName] = kept
	}
	for _, st := range r.state {
		stateTuples += len(st.window)
	}
	return stateTuples, nil
}

// QueryState returns the buffered tuple count of a running query.
func (e *Engine) QueryState(name string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.queries[name]
	if !ok {
		return 0
	}
	total := 0
	for _, st := range r.state {
		total += len(st.window)
	}
	return total
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// QueryNames lists running queries, sorted.
func (e *Engine) QueryNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.queries))
	for n := range e.queries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Process feeds one input tuple to every interested query. Result tuples
// are delivered to sinks synchronously.
func (e *Engine) Process(t stream.Tuple) {
	e.mu.Lock()
	interested := append([]*running(nil), e.byInput[t.Stream]...)
	e.stats.Consumed++
	e.mu.Unlock()

	for _, r := range interested {
		e.processFor(r, t)
	}
}

func (e *Engine) processFor(r *running, t stream.Tuple) {
	e.mu.Lock()
	var results []stream.Tuple
	for _, alias := range r.aliases {
		st := r.state[alias]
		if st.ref.Stream != t.Stream {
			continue
		}
		// Early selection.
		pass := true
		for _, p := range st.selections {
			if !query.EvalSelection(p, t) {
				pass = false
				break
			}
		}
		if !pass {
			e.stats.Dropped++
			continue
		}
		// Evict expired tuples everywhere relative to the new arrival.
		for _, other := range r.state {
			other.evict(t.Timestamp)
		}
		// Probe the other aliases' windows.
		results = append(results, e.probe(r, alias, t)...)
		// Insert into this alias's window.
		st.insert(t)
	}
	emitted := len(results)
	r.emitted += int64(emitted)
	e.stats.Emitted += int64(emitted)
	sink := r.sink
	e.mu.Unlock()

	if sink != nil {
		for _, res := range results {
			sink(res)
		}
	}
}

// probe joins the arriving tuple (bound to alias) against every combination
// of tuples from the other aliases' windows, in a left-deep nested loop.
func (e *Engine) probe(r *running, alias string, t stream.Tuple) []stream.Tuple {
	others := make([]string, 0, len(r.aliases)-1)
	for _, a := range r.aliases {
		if a != alias {
			others = append(others, a)
		}
	}
	binding := map[string]stream.Tuple{alias: t}
	var out []stream.Tuple
	var rec func(i int)
	rec = func(i int) {
		if i == len(others) {
			if r.joinsSatisfied(binding) {
				out = append(out, r.project(binding, t.Timestamp))
			}
			return
		}
		a := others[i]
		for _, w := range r.state[a].window {
			binding[a] = w
			rec(i + 1)
		}
		delete(binding, a)
	}
	// A query over a single stream emits directly.
	if len(others) == 0 {
		out = append(out, r.project(binding, t.Timestamp))
		return out
	}
	rec(0)
	return out
}

// joinsSatisfied evaluates every join predicate under the current binding.
func (r *running) joinsSatisfied(binding map[string]stream.Tuple) bool {
	for _, p := range r.joins {
		lt, ok := binding[p.Left.Col.Alias]
		if !ok {
			return false
		}
		rt, ok := binding[p.Right.Col.Alias]
		if !ok {
			return false
		}
		lv, ok := lt.Get(p.Left.Col.Attr)
		if !ok {
			return false
		}
		rv, ok := rt.Get(p.Right.Col.Attr)
		if !ok {
			return false
		}
		if !p.Op.Eval(lv.Compare(rv)) {
			return false
		}
	}
	return true
}

// project builds the result tuple under the query's SELECT list, qualifying
// attributes as alias.attr so results from different input streams cannot
// collide.
func (r *running) project(binding map[string]stream.Tuple, ts int64) stream.Tuple {
	out := stream.Tuple{
		Stream:    r.resultName,
		Timestamp: ts,
		Attrs:     make(map[string]stream.Value, 8),
	}
	add := func(alias, attr string) {
		if t, ok := binding[alias]; ok {
			if v, okV := t.Get(attr); okV {
				out.Attrs[alias+"."+attr] = v
			}
		}
	}
	for _, p := range r.q.Select {
		switch {
		case p.Star && p.Col.Alias == "":
			for alias, t := range binding {
				for attr := range t.Attrs {
					add(alias, attr)
				}
				add(alias, "timestamp")
			}
		case p.Star:
			if t, ok := binding[p.Col.Alias]; ok {
				for attr := range t.Attrs {
					add(p.Col.Alias, attr)
				}
				add(p.Col.Alias, "timestamp")
			}
		default:
			add(p.Col.Alias, p.Col.Attr)
		}
	}
	out.Size = 16 + 8*len(out.Attrs)
	return out
}

// insert appends in timestamp order (inputs are near-ordered; a binary
// search keeps the window sorted under jitter).
func (st *aliasState) insert(t stream.Tuple) {
	n := len(st.window)
	if n == 0 || st.window[n-1].Timestamp <= t.Timestamp {
		st.window = append(st.window, t)
		return
	}
	i := sort.Search(n, func(i int) bool { return st.window[i].Timestamp > t.Timestamp })
	st.window = append(st.window, stream.Tuple{})
	copy(st.window[i+1:], st.window[i:])
	st.window[i] = t
}

// evict drops tuples older than the window span relative to now.
func (st *aliasState) evict(now int64) {
	cut := 0
	for cut < len(st.window) && now-st.window[cut].Timestamp > st.spanMillis {
		cut++
	}
	if cut > 0 {
		st.window = append(st.window[:0], st.window[cut:]...)
	}
}

func spanMillis(w query.Window) int64 {
	switch w.Kind {
	case query.Now:
		return 0
	case query.Unbounded:
		return 1<<62 - 1
	default:
		return w.Span.Milliseconds()
	}
}
