// Package stats implements the statistics-collection substrate of §3.8:
// sources periodically publish per-substream rates, processors publish
// per-query CPU loads, and interested parties (coordinators, the cost
// model) observe values with change detection so only deltas propagate.
package stats

import (
	"math"
	"sync"
)

// Collector aggregates substream rates and query loads with versioning:
// every accepted change bumps the version, letting observers cheaply poll
// "has anything changed since I last looked".
type Collector struct {
	mu      sync.RWMutex
	rates   []float64
	loads   map[string]float64
	version uint64
	// epsilon is the relative-change threshold below which updates are
	// suppressed (the paper resubmits stats only when values change).
	epsilon float64
}

// NewCollector returns a collector over a substream space of the given
// size. epsilon suppresses relative changes smaller than the threshold;
// zero means every change propagates.
func NewCollector(numSubstreams int, epsilon float64) *Collector {
	return &Collector{
		rates:   make([]float64, numSubstreams),
		loads:   make(map[string]float64),
		epsilon: epsilon,
	}
}

// ReportRate records a substream rate observation. It returns true when the
// change was significant enough to propagate.
func (c *Collector) ReportRate(sub int, rate float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sub < 0 || sub >= len(c.rates) {
		return false
	}
	if !significant(c.rates[sub], rate, c.epsilon) {
		return false
	}
	c.rates[sub] = rate
	c.version++
	return true
}

// ReportLoad records a per-query CPU load observation.
func (c *Collector) ReportLoad(query string, load float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !significant(c.loads[query], load, c.epsilon) {
		return false
	}
	c.loads[query] = load
	c.version++
	return true
}

// DropQuery forgets a terminated query's load.
func (c *Collector) DropQuery(query string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.loads[query]; ok {
		delete(c.loads, query)
		c.version++
	}
}

// Rate returns the last reported rate of a substream.
func (c *Collector) Rate(sub int) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if sub < 0 || sub >= len(c.rates) {
		return 0
	}
	return c.rates[sub]
}

// Load returns the last reported load of a query (0 if unknown).
func (c *Collector) Load(query string) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.loads[query]
}

// Version returns the current statistics version.
func (c *Collector) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// SnapshotRates copies the rate vector into dst (allocating when nil) and
// returns it with the version at snapshot time.
func (c *Collector) SnapshotRates(dst []float64) ([]float64, uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if dst == nil || len(dst) != len(c.rates) {
		dst = make([]float64, len(c.rates))
	}
	copy(dst, c.rates)
	return dst, c.version
}

func significant(old, new, eps float64) bool {
	if old == new {
		return false
	}
	if eps <= 0 {
		return true
	}
	base := math.Max(math.Abs(old), math.Abs(new))
	return math.Abs(new-old) > eps*base
}
