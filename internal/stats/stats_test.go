package stats

import (
	"sync"
	"testing"
)

func TestReportAndRead(t *testing.T) {
	c := NewCollector(4, 0)
	if !c.ReportRate(0, 5) {
		t.Error("first report suppressed")
	}
	if c.Rate(0) != 5 {
		t.Errorf("Rate = %v", c.Rate(0))
	}
	if c.ReportRate(0, 5) {
		t.Error("identical report not suppressed")
	}
	if c.ReportRate(9, 1) {
		t.Error("out-of-range report accepted")
	}
	if c.Rate(9) != 0 {
		t.Error("out-of-range Rate nonzero")
	}
}

func TestEpsilonSuppression(t *testing.T) {
	c := NewCollector(1, 0.1)
	c.ReportRate(0, 100)
	v := c.Version()
	if c.ReportRate(0, 105) { // 5% change < 10% threshold
		t.Error("sub-threshold change propagated")
	}
	if c.Version() != v {
		t.Error("version bumped for suppressed change")
	}
	if !c.ReportRate(0, 120) { // 20% change
		t.Error("significant change suppressed")
	}
}

func TestLoads(t *testing.T) {
	c := NewCollector(0, 0)
	if !c.ReportLoad("q1", 0.5) {
		t.Error("load report suppressed")
	}
	if c.Load("q1") != 0.5 {
		t.Errorf("Load = %v", c.Load("q1"))
	}
	c.DropQuery("q1")
	if c.Load("q1") != 0 {
		t.Error("dropped query still has load")
	}
	v := c.Version()
	c.DropQuery("q1") // double drop: no version bump
	if c.Version() != v {
		t.Error("double drop bumped version")
	}
}

func TestSnapshot(t *testing.T) {
	c := NewCollector(3, 0)
	c.ReportRate(1, 7)
	snap, ver := c.SnapshotRates(nil)
	if snap[1] != 7 || ver != c.Version() {
		t.Errorf("snapshot = %v @%d", snap, ver)
	}
	snap[1] = 99
	if c.Rate(1) != 7 {
		t.Error("snapshot aliases internal state")
	}
	// Reuse a correctly sized destination.
	dst := make([]float64, 3)
	out, _ := c.SnapshotRates(dst)
	if &out[0] != &dst[0] {
		t.Error("snapshot did not reuse destination")
	}
}

func TestConcurrentReporters(t *testing.T) {
	c := NewCollector(64, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.ReportRate((g*31+i)%64, float64(i))
				_ = c.Rate(i % 64)
				c.ReportLoad("q", float64(i))
			}
		}(g)
	}
	wg.Wait()
	if c.Version() == 0 {
		t.Error("no versions recorded")
	}
}
