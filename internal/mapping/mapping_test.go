package mapping

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/netgraph"
	"repro/internal/querygraph"
	"repro/internal/topology"
)

// randomInstance builds a random mapping problem with nProc processors and
// nQ queries over 8 substreams.
func randomInstance(t testing.TB, seed uint64, nProc, nQ int) (*querygraph.Graph, *netgraph.Graph) {
	r := rand.New(rand.NewPCG(seed, 23))
	rates := make([]float64, 8)
	sources := make([]topology.NodeID, 8)
	for i := range rates {
		rates[i] = 1 + r.Float64()*9
		sources[i] = topology.NodeID(100 + i%2)
	}
	qg, err := querygraph.New(rates, sources)
	if err != nil {
		t.Fatal(err)
	}
	verts := make([]netgraph.Vertex, 0, nProc+2)
	lat := make([][]float64, nProc+2)
	for i := range lat {
		lat[i] = make([]float64, nProc+2)
		for j := range lat[i] {
			if i != j {
				lat[i][j] = 1 + float64((i*7+j*13)%20)
			}
		}
	}
	// Symmetrize.
	for i := range lat {
		for j := i + 1; j < len(lat); j++ {
			lat[j][i] = lat[i][j]
		}
	}
	for p := 0; p < nProc; p++ {
		verts = append(verts, netgraph.Vertex{
			Node: topology.NodeID(p), Capability: 1, Members: []topology.NodeID{topology.NodeID(p)},
		})
	}
	verts = append(verts,
		netgraph.Vertex{Node: 100},
		netgraph.Vertex{Node: 101},
	)
	ng, err := netgraph.NewWithLatencies(verts, lat)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < nQ; q++ {
		subs := []int{r.IntN(8), r.IntN(8), r.IntN(8)}
		qg.AddQVertex(querygraph.QueryInfo{
			Name:       "q",
			Proxy:      topology.NodeID(r.IntN(nProc)),
			Load:       0.05 + r.Float64()*0.1,
			Interest:   bitvec.FromIndices(8, subs),
			ResultRate: r.Float64(),
		})
	}
	qg.AddNVertex(100, nProc, false)
	qg.AddNVertex(101, nProc+1, false)
	for p := 0; p < nProc; p++ {
		qg.AddNVertex(topology.NodeID(p), p, true)
	}
	qg.ComputeEdges()
	return qg, ng
}

func TestGreedyRespectsPins(t *testing.T) {
	qg, ng := randomInstance(t, 1, 4, 20)
	m := NewMapper(qg, ng, Options{})
	a, err := m.Greedy()
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	for i, v := range qg.Vertices {
		if v.IsN() && a[i] != v.Clu {
			t.Errorf("n-vertex %d mapped to %d, pinned to %d", i, a[i], v.Clu)
		}
		if !v.IsN() && (a[i] < 0 || a[i] >= 4) {
			t.Errorf("q-vertex %d mapped to non-processor %d", i, a[i])
		}
	}
}

func TestRefineNeverWorsensWEC(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		qg, ng := randomInstance(t, seed, 4, 25)
		m := NewMapper(qg, ng, Options{})
		a, err := m.Greedy()
		if err != nil {
			t.Fatal(err)
		}
		before := WEC(qg, ng, a)
		after := WEC(qg, ng, m.Refine(a))
		if after > before+1e-9 {
			t.Errorf("seed %d: refine worsened WEC %v -> %v", seed, before, after)
		}
	}
}

func TestMapKeepsLoadFeasibleWhenPossible(t *testing.T) {
	qg, ng := randomInstance(t, 3, 4, 24)
	m := NewMapper(qg, ng, Options{})
	a, err := m.Map()
	if err != nil {
		t.Fatal(err)
	}
	// Total load is well under capacity: no violation expected.
	if v := m.Violation(a); v > 0 {
		t.Errorf("violation = %v on an easy instance", v)
	}
}

func TestSweepModeMatchesInterface(t *testing.T) {
	qg, ng := randomInstance(t, 4, 4, 30)
	// Force sweep with ExactLimit=1.
	m := NewMapper(qg, ng, Options{ExactLimit: 1})
	a, err := m.Map()
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := m.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if WEC(qg, ng, a) > WEC(qg, ng, greedy)+1e-9 {
		t.Errorf("sweep result worse than greedy: %v > %v",
			WEC(qg, ng, a), WEC(qg, ng, greedy))
	}
}

func TestBestTarget(t *testing.T) {
	qg, ng := randomInstance(t, 5, 4, 10)
	m := NewMapper(qg, ng, Options{})
	a, err := m.Map()
	if err != nil {
		t.Fatal(err)
	}
	loads := Loads(qg, ng, a)
	// Insert a new query vertex and ask for the best target.
	v := qg.AddQVertex(querygraph.QueryInfo{
		Name:     "new",
		Proxy:    0,
		Load:     0.05,
		Interest: bitvec.FromIndices(8, []int{0, 1}),
	})
	qg.ConnectVertex(v)
	a = append(a, Unassigned)
	m2 := NewMapper(qg, ng, Options{})
	k := m2.BestTarget(a, v.ID, loads)
	if k < 0 || k >= 4 {
		t.Errorf("BestTarget = %d, want processor index", k)
	}
}

func TestWECUnassignedContributesNothing(t *testing.T) {
	qg, ng := randomInstance(t, 6, 3, 5)
	a := make(Assignment, len(qg.Vertices))
	for i := range a {
		a[i] = Unassigned
	}
	if w := WEC(qg, ng, a); w != 0 {
		t.Errorf("WEC of unassigned graph = %v", w)
	}
}

func TestMoveOK(t *testing.T) {
	loads := []float64{5, 1}
	caps := []float64{4, 4}
	// Target 1 has room: OK.
	if !moveOK(loads, caps, 2, 0, 1) {
		t.Error("move into free capacity rejected")
	}
	// Target 1 would overflow, but source 0 overflows by more: allowed
	// when it improves total violation.
	if !moveOK([]float64{8, 3.5}, caps, 1, 0, 1) {
		t.Error("violation-improving move rejected")
	}
	// Move that just shifts violation without improving: rejected.
	if moveOK([]float64{5, 4}, caps, 2, 0, 1) {
		t.Error("violation-shifting move accepted")
	}
}

// TestQuickMapperInvariant: for random instances, Map returns a complete
// assignment that pins n-vertices and never places queries on anchors.
func TestQuickMapperInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		qg, ng := randomInstance(t, seed%100, 3+int(seed%3), 8+int(seed%20))
		m := NewMapper(qg, ng, Options{})
		a, err := m.Map()
		if err != nil {
			return false
		}
		for i, v := range qg.Vertices {
			if a[i] == Unassigned {
				return false
			}
			if v.IsN() && a[i] != v.Clu {
				return false
			}
			if !v.IsN() && ng.Vertices[a[i]].Capability == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
