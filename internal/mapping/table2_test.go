package mapping

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/netgraph"
	"repro/internal/querygraph"
	"repro/internal/topology"
)

// paperExample reconstructs the worked example of §3.1.2 (Fig 5, Table 2):
// two sources s1, s2 with no computational capability, two processors n1,
// n2 with equal capability, and four queries of load 0.1 each:
//
//	Q1: 10 B/s from s1, 1 B/s result to n1
//	Q2: 10 B/s from s2, 1 B/s result to n1
//	Q3:  5 B/s from s1 (contained in Q1's interest), 1 B/s result to n2
//	Q4:  5 B/s from s2 (disjoint from Q2's interest), 1 B/s result to n2
//
// so exactly one overlap edge exists (Q1–Q3, weight 5), as in Fig 5(b).
// Latencies: both processors sit next to "their" source (d=1) and far from
// the other (d=5); the two processors are 5 apart.
//
// Network-graph vertex order: 0=n1, 1=n2, 2=s1 (anchor), 3=s2 (anchor).
func paperExample(t *testing.T) (*querygraph.Graph, *netgraph.Graph) {
	t.Helper()
	const (
		n1 = topology.NodeID(0)
		n2 = topology.NodeID(1)
		s1 = topology.NodeID(2)
		s2 = topology.NodeID(3)
	)
	// Substreams: 0,1 from s1 (5 B/s each); 2,3,4 from s2 (5,5,5).
	rates := []float64{5, 5, 5, 5, 5}
	sources := []topology.NodeID{s1, s1, s2, s2, s2}

	qg, err := querygraph.New(rates, sources)
	if err != nil {
		t.Fatal(err)
	}
	addQ := func(name string, proxy topology.NodeID, subs []int) {
		qg.AddQVertex(querygraph.QueryInfo{
			Name:       name,
			Proxy:      proxy,
			Load:       0.1,
			Interest:   bitvec.FromIndices(len(rates), subs),
			ResultRate: 1,
		})
	}
	addQ("Q1", n1, []int{0, 1})
	addQ("Q2", n1, []int{2, 3})
	addQ("Q3", n2, []int{0})
	addQ("Q4", n2, []int{4})
	// N-vertices: proxies pinned to their processors, sources anchored.
	qg.AddNVertex(n1, 0, true)
	qg.AddNVertex(n2, 1, true)
	qg.AddNVertex(s1, 2, false)
	qg.AddNVertex(s2, 3, false)
	qg.ComputeEdges()

	lat := [][]float64{
		// n1 n2 s1 s2
		{0, 5, 1, 5}, // n1
		{5, 0, 5, 1}, // n2
		{1, 5, 0, 6}, // s1
		{5, 1, 6, 0}, // s2
	}
	ng, err := netgraph.NewWithLatencies([]netgraph.Vertex{
		{Node: n1, Capability: 1, Members: []topology.NodeID{n1}},
		{Node: n2, Capability: 1, Members: []topology.NodeID{n2}},
		{Node: s1},
		{Node: s2},
	}, lat)
	if err != nil {
		t.Fatal(err)
	}
	return qg, ng
}

// schemeAssignment maps the four queries per a Table 2 scheme, with the
// n-vertices pinned.
func schemeAssignment(qg *querygraph.Graph, targets map[string]int) Assignment {
	a := make(Assignment, len(qg.Vertices))
	for i, v := range qg.Vertices {
		if v.IsN() {
			a[i] = v.Clu
			continue
		}
		a[i] = targets[v.Queries[0].Name]
	}
	return a
}

// TestPaperTable2 reproduces the Table 2 comparison: the sharing-aware
// scheme 3 has the smallest weighted edge cut, and the full graph-mapping
// algorithm finds a mapping at least that good.
func TestPaperTable2(t *testing.T) {
	qg, ng := paperExample(t)

	scheme1 := schemeAssignment(qg, map[string]int{"Q1": 0, "Q2": 0, "Q3": 1, "Q4": 1})
	scheme2 := schemeAssignment(qg, map[string]int{"Q1": 0, "Q4": 0, "Q2": 1, "Q3": 1})
	scheme3 := schemeAssignment(qg, map[string]int{"Q1": 0, "Q3": 0, "Q2": 1, "Q4": 1})

	wec1 := WEC(qg, ng, scheme1)
	wec2 := WEC(qg, ng, scheme2)
	wec3 := WEC(qg, ng, scheme3)
	t.Logf("WEC scheme1=%v scheme2=%v scheme3=%v", wec1, wec2, wec3)

	// Hand-computed cuts for the example's rates and latencies.
	if wec1 != 115 {
		t.Errorf("scheme 1 WEC = %v, want 115", wec1)
	}
	if wec2 != 105 {
		t.Errorf("scheme 2 WEC = %v, want 105", wec2)
	}
	if wec3 != 40 {
		t.Errorf("scheme 3 WEC = %v, want 40", wec3)
	}
	if !(wec3 < wec2 && wec2 < wec1) {
		t.Errorf("scheme ordering broken: %v %v %v", wec1, wec2, wec3)
	}

	// All schemes respect the load constraint (0.2 <= 1.1*0.4/2).
	m := NewMapper(qg, ng, Options{})
	for i, a := range []Assignment{scheme1, scheme2, scheme3} {
		if v := m.Violation(a); v != 0 {
			t.Errorf("scheme %d violates load constraint by %v", i+1, v)
		}
	}

	// Algorithm 2 must find scheme 3 (or better).
	got, err := m.Map()
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if w := WEC(qg, ng, got); w > wec3 {
		t.Errorf("mapper WEC = %v, want <= %v (scheme 3)", w, wec3)
	}
	if v := m.Violation(got); v != 0 {
		t.Errorf("mapper violates load constraint by %v", v)
	}
}
