// Package mapping implements the graph-mapping algorithm of the paper
// (Algorithm 2): map a query graph onto a network graph so that every
// n-vertex lands on the network vertex representing its node, every network
// vertex's query load stays within (1+α) of its fair share (Eqn 3.1), and
// the Weighted Edge Cut (Eqn 3.2) is minimized.
//
// Two refinement modes are provided. The exact mode follows Algorithm 2
// literally — each step moves the globally best-gain unmatched vertex, with
// hill-climbing via best-negative moves and best-mapping restoration. The
// sweep mode visits vertices in random order and applies positive-gain moves
// only; it is the standard scalable variant used when |Vq|·|Vn| is too large
// for the exact inner loop (the paper's centralized baseline at 60k queries).
package mapping

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/netgraph"
	"repro/internal/querygraph"
)

// Unassigned marks a vertex with no mapping target yet.
const Unassigned = -1

// Assignment maps query-graph vertex ID -> network-graph vertex index.
type Assignment []int

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	c := make(Assignment, len(a))
	copy(c, a)
	return c
}

// Options configures the mapper.
type Options struct {
	// Alpha is the load-imbalance slack of Eqn 3.1. The paper uses 0.1.
	Alpha float64
	// ExactLimit is the largest |movable|·|assignable| product for which
	// the exact Algorithm-2 refinement runs; larger instances use the
	// sweep refinement. Zero selects the default (5000), which keeps
	// the exact mode for coordinator-sized graphs (≈VMax vertices) and
	// sends large centralized instances to the scalable sweep.
	ExactLimit int
	// MaxOuter bounds outer refinement iterations (0 = default 8).
	MaxOuter int
	// Rng drives tie-breaking and sweep order; nil seeds a fixed PCG.
	Rng *rand.Rand
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.1
	}
	if o.ExactLimit == 0 {
		o.ExactLimit = 5000
	}
	if o.MaxOuter == 0 {
		o.MaxOuter = 8
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewPCG(42, 4242))
	}
	return o
}

// Mapper binds a query graph to a network graph and carries the scratch
// state of the algorithms. Create one per mapping task.
type Mapper struct {
	qg   *querygraph.Graph
	ng   *netgraph.Graph
	adj  [][]querygraph.Adj
	opts Options

	caps       []float64 // per-target load limit
	assignable []int     // indices of targets with capability > 0
}

// NewMapper prepares a mapper. The query graph must have its edges
// materialized (ComputeEdges) before calling.
func NewMapper(qg *querygraph.Graph, ng *netgraph.Graph, opts Options) *Mapper {
	opts = opts.withDefaults()
	m := &Mapper{
		qg:   qg,
		ng:   ng,
		adj:  qg.AdjacencyLists(),
		opts: opts,
		caps: ng.Capacities(qg.TotalQueryLoad(), opts.Alpha),
	}
	for i, v := range ng.Vertices {
		if v.Capability > 0 {
			m.assignable = append(m.assignable, i)
		}
	}
	return m
}

// WEC computes the weighted edge cut of an assignment (Eqn 3.2): the sum
// over query-graph edges of edge weight times the latency between the two
// endpoints' targets. Unassigned endpoints contribute nothing.
func WEC(qg *querygraph.Graph, ng *netgraph.Graph, a Assignment) float64 {
	var total float64
	for i := range qg.Vertices {
		ai := a[i]
		if ai == Unassigned {
			continue
		}
		row := ng.Row(ai)
		for _, e := range qg.Neighbors(i) {
			if e.To <= i {
				continue
			}
			aj := a[e.To]
			if aj == Unassigned {
				continue
			}
			total += e.W * row[aj]
		}
	}
	return total
}

// Loads returns the per-target query load of an assignment. Removed (nil)
// vertex slots contribute nothing.
func Loads(qg *querygraph.Graph, ng *netgraph.Graph, a Assignment) []float64 {
	loads := make([]float64, ng.Len())
	for i, v := range qg.Vertices {
		if v != nil && a[i] != Unassigned {
			loads[a[i]] += v.Weight
		}
	}
	return loads
}

// Violation returns the total load overflow Σ max(0, load_k − cap_k) of an
// assignment under the mapper's capacities.
func (m *Mapper) Violation(a Assignment) float64 {
	loads := Loads(m.qg, m.ng, a)
	var v float64
	for k, l := range loads {
		if over := l - m.caps[k]; over > 0 {
			v += over
		}
	}
	return v
}

// Capacities exposes the per-target load limits.
func (m *Mapper) Capacities() []float64 {
	out := make([]float64, len(m.caps))
	copy(out, m.caps)
	return out
}

// Map runs the full algorithm: greedy initial mapping followed by
// refinement. It returns an error when an n-vertex is pinned outside the
// network graph.
func (m *Mapper) Map() (Assignment, error) {
	a, err := m.Greedy()
	if err != nil {
		return nil, err
	}
	return m.Refine(a), nil
}

// Greedy produces the initial mapping of Algorithm 2 line 1: n-vertices go
// to their pinned targets; q-vertices are placed in descending weight order
// on the accommodating target minimizing the incremental WEC, falling back
// to the minimum-violation target.
func (m *Mapper) Greedy() (Assignment, error) {
	a := make(Assignment, len(m.qg.Vertices))
	loads := make([]float64, m.ng.Len())
	for i := range a {
		a[i] = Unassigned
	}

	// (a) Pin n-vertices (and coarse vertices containing them).
	var movable []int
	for i, v := range m.qg.Vertices {
		if v.IsN() {
			if v.Clu == querygraph.ClusterUnknown || v.Clu >= m.ng.Len() {
				return nil, fmt.Errorf("mapping: n-vertex %d pinned to invalid target %d", i, v.Clu)
			}
			a[i] = v.Clu
			loads[v.Clu] += v.Weight
			continue
		}
		movable = append(movable, i)
	}
	if len(m.assignable) == 0 && len(movable) > 0 {
		return nil, fmt.Errorf("mapping: no assignable network vertices for %d query vertices", len(movable))
	}

	// (b) Place q-vertices, heaviest first.
	sort.SliceStable(movable, func(x, y int) bool {
		return m.qg.Vertices[movable[x]].Weight > m.qg.Vertices[movable[y]].Weight
	})
	for _, vi := range movable {
		w := m.qg.Vertices[vi].Weight
		bestK, bestCost := -1, math.Inf(1)
		for _, k := range m.assignable {
			if loads[k]+w > m.caps[k] {
				continue
			}
			cost := m.placedCost(a, vi, k)
			if cost < bestCost {
				bestK, bestCost = k, cost
			}
		}
		if bestK < 0 {
			// No accommodating target: minimum violation.
			bestOver := math.Inf(1)
			for _, k := range m.assignable {
				over := loads[k] + w - m.caps[k]
				if over < bestOver {
					bestK, bestOver = k, over
				}
			}
		}
		a[vi] = bestK
		loads[bestK] += w
	}
	return a, nil
}

// placedCost is the WEC contribution of placing vi at k against already-
// placed neighbors.
func (m *Mapper) placedCost(a Assignment, vi, k int) float64 {
	var cost float64
	rowK := m.ng.Row(k)
	for _, e := range m.adj[vi] {
		if t := a[e.To]; t != Unassigned {
			cost += e.W * rowK[t]
		}
	}
	return cost
}

// gain is the WEC reduction of remapping vi from its current target to k.
func (m *Mapper) gain(a Assignment, vi, k int) float64 {
	var g float64
	rowCur := m.ng.Row(a[vi])
	rowK := m.ng.Row(k)
	for _, e := range m.adj[vi] {
		t := a[e.To]
		if t == Unassigned {
			continue
		}
		g += e.W * (rowCur[t] - rowK[t])
	}
	return g
}

// Refine improves an assignment, choosing the exact or sweep strategy by
// instance size.
func (m *Mapper) Refine(a Assignment) Assignment {
	movable := m.movableVertices()
	if len(movable)*len(m.assignable) <= m.opts.ExactLimit {
		return m.refineExact(a, movable)
	}
	return m.refineSweep(a, movable)
}

func (m *Mapper) movableVertices() []int {
	var out []int
	for i, v := range m.qg.Vertices {
		if !v.IsN() {
			out = append(out, i)
		}
	}
	return out
}

// moveOK implements the feasibility rule of Algorithm 2 line 9: a move must
// not violate load balancing, or must improve an existing violation.
func moveOK(loads, caps []float64, w float64, from, to int) bool {
	if loads[to]+w <= caps[to] {
		return true
	}
	// Target would overflow; allowed only when it improves total
	// violation (source currently overflows by more than target will).
	before := pos(loads[from]-caps[from]) + pos(loads[to]-caps[to])
	after := pos(loads[from]-w-caps[from]) + pos(loads[to]+w-caps[to])
	return after < before
}

// pos is max(0, x) without math.Max's NaN/signed-zero handling, which is
// measurable overhead in the refinement inner loop.
func pos(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// refineExact is Algorithm 2 lines 2–20. Gains are cached per
// (vertex, target): a move only changes the gains of the moved vertex's
// neighbors (their endpoint position changed) — every other cached value
// stays exact — so each step recomputes O(deg) gain rows instead of
// rescanning every movable vertex's adjacency.
func (m *Mapper) refineExact(a Assignment, movable []int) Assignment {
	loads := Loads(m.qg, m.ng, a)
	minWEC := WEC(m.qg, m.ng, a)
	minA := a.Clone()

	K := len(m.assignable)
	slotOf := make(map[int]int, len(movable)) // vertex ID -> movable slot
	for s, vi := range movable {
		slotOf[vi] = s
	}
	gains := make([]float64, len(movable)*K)
	// A cached gain is valid while its pair version matches its row
	// version; bumping a row version invalidates the whole row in O(1).
	rowVer := make([]int32, len(movable))
	pairVer := make([]int32, len(movable)*K)
	for s := range rowVer {
		rowVer[s] = 1
	}

	for outer := 0; outer < m.opts.MaxOuter; outer++ {
		a = minA.Clone()
		loads = Loads(m.qg, m.ng, a)
		matched := make(map[int]bool, len(movable))
		curWEC := WEC(m.qg, m.ng, a)
		improvedOuter := false
		for s := range rowVer {
			rowVer[s]++
		}

		for {
			maxGain := math.Inf(-1)
			moveV, moveK := -1, -1
			for s, vi := range movable {
				if matched[vi] {
					continue
				}
				w := m.qg.Vertices[vi].Weight
				from := a[vi]
				base := s * K
				for ki, k := range m.assignable {
					if k == from {
						continue
					}
					if !moveOK(loads, m.caps, w, from, k) {
						continue
					}
					if pairVer[base+ki] != rowVer[s] {
						gains[base+ki] = m.gain(a, vi, k)
						pairVer[base+ki] = rowVer[s]
					}
					if g := gains[base+ki]; g > maxGain {
						maxGain, moveV, moveK = g, vi, k
					}
				}
			}
			if moveV < 0 {
				break
			}
			matched[moveV] = true
			w := m.qg.Vertices[moveV].Weight
			loads[a[moveV]] -= w
			loads[moveK] += w
			a[moveV] = moveK
			for _, e := range m.adj[moveV] {
				if s, ok := slotOf[e.To]; ok {
					rowVer[s]++
				}
			}
			curWEC -= maxGain
			if curWEC < minWEC-1e-12 {
				minWEC = curWEC
				minA = a.Clone()
				improvedOuter = true
			}
		}
		if !improvedOuter {
			break
		}
	}
	return minA
}

// refineSweep is the scalable variant: randomized passes of positive-gain
// moves until a pass makes none.
func (m *Mapper) refineSweep(a Assignment, movable []int) Assignment {
	loads := Loads(m.qg, m.ng, a)
	order := append([]int(nil), movable...)
	for pass := 0; pass < m.opts.MaxOuter; pass++ {
		m.opts.Rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		moved := 0
		for _, vi := range order {
			w := m.qg.Vertices[vi].Weight
			from := a[vi]
			bestK, bestG := -1, 1e-12
			for _, k := range m.assignable {
				if k == from || !moveOK(loads, m.caps, w, from, k) {
					continue
				}
				if g := m.gain(a, vi, k); g > bestG {
					bestK, bestG = k, g
				}
			}
			if bestK >= 0 {
				loads[from] -= w
				loads[bestK] += w
				a[vi] = bestK
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return a
}

// Gain returns the WEC reduction of remapping vertex vi to target k under
// assignment a — the "benefit" of Algorithm 3.
func (m *Mapper) Gain(a Assignment, vi, k int) float64 { return m.gain(a, vi, k) }

// Assignable returns the indices of network vertices able to host query
// load.
func (m *Mapper) Assignable() []int {
	out := make([]int, len(m.assignable))
	copy(out, m.assignable)
	return out
}

// BestTarget returns the assignable target minimizing the incremental WEC
// of placing a single new vertex vi (already added to the query graph with
// edges computed), subject to load feasibility against the given loads.
// It is the primitive of online query insertion (§3.6). It falls back to
// the minimum-violation target when none accommodates the vertex.
func (m *Mapper) BestTarget(a Assignment, vi int, loads []float64) int {
	w := m.qg.Vertices[vi].Weight
	bestK, bestCost := -1, math.Inf(1)
	for _, k := range m.assignable {
		if loads[k]+w > m.caps[k] {
			continue
		}
		if cost := m.placedCost(a, vi, k); cost < bestCost {
			bestK, bestCost = k, cost
		}
	}
	if bestK >= 0 {
		return bestK
	}
	bestOver := math.Inf(1)
	for _, k := range m.assignable {
		over := loads[k] + w - m.caps[k]
		if over < bestOver {
			bestK, bestOver = k, over
		}
	}
	return bestK
}
