// Package checker runs the cosmoslint analyzer suite over loaded packages
// and applies the uniform //lint: suppression filtering. cmd/cosmoslint is
// a thin CLI over Run; tests drive Run directly against fixture packages.
package checker

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/errdrop"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockdiscipline"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nondeterminism"
	"repro/internal/analysis/poolescape"
)

// Analyzers returns the full cosmoslint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		lockdiscipline.Analyzer,
		poolescape.Analyzer,
		errdrop.Analyzer,
		nondeterminism.Analyzer,
	}
}

// Run loads patterns (relative to dir) and applies analyzers, returning
// the surviving diagnostics sorted by position. Suppressed findings are
// dropped; duplicate findings (the same non-test file analyzed both in a
// base package and its test variant under includeTests) are merged.
func Run(dir string, includeTests bool, analyzers []*analysis.Analyzer, patterns ...string) ([]analysis.Diagnostic, error) {
	pkgs, err := load.Load(load.Config{Dir: dir, IncludeTests: includeTests}, patterns...)
	if err != nil {
		return nil, err
	}
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("type errors in %s (fix before linting): %v", pkg.ImportPath, pkg.TypeErrors[0])
		}
		diags, err := Check(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	seen := map[string]bool{}
	dedup := all[:0]
	for _, d := range all {
		key := d.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		dedup = append(dedup, d)
	}
	return dedup, nil
}

// Check applies analyzers to one loaded package, returning unsuppressed
// diagnostics in issue order.
func Check(pkg *load.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	sup := analysis.BuildSuppressions(pkg.Fset, pkg.Files)
	var out []analysis.Diagnostic
	for _, a := range analyzers {
		report := func(d analysis.Diagnostic) {
			if !sup.Suppressed(d) {
				out = append(out, d)
			}
		}
		pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, report)
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	return out, nil
}
