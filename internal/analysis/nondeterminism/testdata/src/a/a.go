// Package a is the nondeterminism fixture. It opts into the
// seed-deterministic contract explicitly:
//
//cosmoslint:deterministic
package a

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want `time\.Now in a seed-deterministic package`
	return t.Unix()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in a seed-deterministic package`
}

// timingAnnotated is the measurement escape hatch: the value feeds a
// stats report, never a decision.
func timingAnnotated() time.Time {
	//lint:nondeterminism timing only, feeds the phase-runtime report
	return time.Now()
}

func globalRandV1() int {
	return rand.Intn(10) // want `rand\.Intn draws from the process-global rand source`
}

func globalRandV2() float64 {
	return randv2.Float64() // want `rand\.Float64 draws from the process-global rand source`
}

// seededRand is the compliant pattern: a seeded source threaded through.
func seededRand(seed uint64) int {
	rng := randv2.New(randv2.NewPCG(seed, 17))
	return rng.IntN(10)
}

func racySelect(a, b chan int) int {
	select { // want `select with 2 channel cases in a seed-deterministic package`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// singleCaseSelect has one ready case plus default: deterministic given
// channel state, so it stays quiet.
func singleCaseSelect(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}

type cell[T any] struct{ v *T }

func (c *cell[T]) Load() *T { return c.v }

type holder struct {
	snap cell[int]
	aux  cell[int]
}

// tornEpoch loads the same atomic cell twice: the decision spans two
// potentially different epochs.
func tornEpoch(h *holder) int {
	a := h.snap.Load()
	b := h.snap.Load() // want `second h\.snap\.Load\(\) in tornEpoch`
	if a == nil || b == nil {
		return 0
	}
	return *a + *b
}

// tornAcrossClosure splits the loads across a function literal — still the
// same cell feeding one function's logic.
func tornAcrossClosure(h *holder) func() int {
	a := h.snap.Load()
	return func() int {
		if b := h.snap.Load(); b != nil { // want `second h\.snap\.Load\(\) in tornAcrossClosure`
			return *b
		}
		_ = a
		return 0
	}
}

// singleLoadEach is the compliant shape: one load per cell, threaded
// through; distinct cells are independent.
func singleLoadEach(h *holder) int {
	a := h.snap.Load()
	b := h.aux.Load()
	if a == nil || b == nil {
		return 0
	}
	return *a + *b
}

// loadFunction calls a package-level function named Load, not an atomic
// method: not tracked.
func Load() int { return 1 }

func loadFunction() int {
	return Load() + Load()
}
