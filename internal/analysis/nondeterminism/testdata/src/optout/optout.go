// Package optout is NOT in the deterministic set and carries no opt-in
// comment: nothing here may be flagged even though every nondeterminism
// pattern appears. (Regression guard: the analyzer must not leak outside
// its target packages — cmd/ and the sim harness time real runs.)
package optout

import (
	"math/rand"
	"time"
)

func wallClock() time.Time { return time.Now() }

func globalRand() int { return rand.Intn(10) }

func anySelect(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
