// Package nondeterminism flags seed-independent randomness in the
// packages whose behavior must replay bit-identically from a seed: the
// pub/sub routing core, the chaos fabric (whose whole point is
// reproducible fault schedules) and the optimizer. The equivalence oracles
// — rebuild equivalence, drain-to-empty, the Fig 6 sweeps — compare
// complete system states across runs, so one wall-clock read or one draw
// from the global rand source hidden in a hot path invalidates every one
// of them.
//
// Flagged inside the target packages:
//
//   - time.Now / time.Since: wall-clock reads (timing-only measurement
//     sites are annotated `//lint:nondeterminism timing only, ...`);
//   - package-level math/rand and math/rand/v2 functions (Int, IntN,
//     Float64, Shuffle, Perm, ...): draws from the process-global source.
//     Constructors (New, NewPCG, NewSource, ...) stay quiet — building a
//     seeded *rand.Rand is exactly the compliant pattern;
//   - select statements with two or more ready-channel cases: the runtime
//     picks uniformly at random, so the winner is schedule-dependent;
//   - repeated .Load() method calls on the textually same atomic cell
//     within one function (torn epoch): a writer may publish between the
//     two loads, so decisions spanning them mix two snapshots. Load once
//     and thread the value through (a function whose loads are genuinely
//     independent — e.g. a retry loop — annotates //lint:nondeterminism).
//
// Target packages are the built-in seed-deterministic set below; a
// package outside it opts in by carrying a `//cosmoslint:deterministic`
// comment in any of its files.
package nondeterminism

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nondeterminism",
	Doc: "flag wall-clock reads, global rand-source draws and multi-case " +
		"selects in packages that must be seed-deterministic",
	Run: run,
}

// deterministicPackages is the built-in target set: the routing core, the
// chaos fabric and the optimizer stack.
var deterministicPackages = map[string]bool{
	"repro/internal/pubsub":    true,
	"repro/internal/chaos":     true,
	"repro/internal/adapt":     true,
	"repro/internal/mapping":   true,
	"repro/internal/hierarchy": true,
	"repro/internal/diffusion": true,
}

func run(pass *analysis.Pass) error {
	if !applies(pass) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, x)
			case *ast.SelectStmt:
				checkSelect(pass, x)
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkTornLoads(pass, fd)
			}
		}
	}
	return nil
}

func applies(pass *analysis.Pass) bool {
	if deterministicPackages[pass.Pkg.Path()] {
		return true
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "cosmoslint:deterministic") {
					return true
				}
			}
		}
	}
	return false
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(), "time.%s in a seed-deterministic package: wall-clock reads cannot replay (thread a logical clock through, or annotate //lint:nondeterminism for timing-only measurement)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if strings.HasPrefix(fn.Name(), "New") {
			return // seeded-source constructors are the compliant pattern
		}
		pass.Reportf(call.Pos(), "%s.%s draws from the process-global rand source: not seed-replayable — draw from a seeded *rand.Rand threaded through the config (or annotate //lint:nondeterminism)", fn.Pkg().Name(), fn.Name())
	}
}

// checkTornLoads flags a function that calls the zero-argument Load method
// twice (or more) on the textually same receiver chain — b.snap.Load() in
// two places means two potentially different epochs feeding one decision.
// Counting is per function declaration, nested literals included: a
// goroutine body and its enclosing function publish and consume the same
// cell, so splitting the loads across them does not untear them.
func checkTornLoads(pass *analysis.Pass, fd *ast.FuncDecl) {
	first := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Load" {
			return true
		}
		fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
		if !ok {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
			return true // only method-shaped loads are atomic cells
		}
		recv := selectorText(sel.X)
		if recv == "" {
			return true
		}
		if first[recv] {
			pass.Reportf(call.Pos(), "second %s.Load() in %s: a writer may publish between the loads, mixing two epochs in one decision — load once and thread the snapshot through (or annotate //lint:nondeterminism)", recv, fd.Name.Name)
			return true
		}
		first[recv] = true
		return true
	})
}

// selectorText renders a plain ident/selector chain ("b.snap"); any other
// expression shape yields "" and is not tracked.
func selectorText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := selectorText(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	comm := 0
	for _, cl := range sel.Body.List {
		if c, ok := cl.(*ast.CommClause); ok && c.Comm != nil {
			comm++
		}
	}
	if comm >= 2 {
		pass.Reportf(sel.Pos(), "select with %d channel cases in a seed-deterministic package: the runtime picks ready cases uniformly at random (drain in a fixed order, or annotate //lint:nondeterminism)", comm)
	}
}
