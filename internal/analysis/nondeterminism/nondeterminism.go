// Package nondeterminism flags seed-independent randomness in the
// packages whose behavior must replay bit-identically from a seed: the
// pub/sub routing core, the chaos fabric (whose whole point is
// reproducible fault schedules) and the optimizer. The equivalence oracles
// — rebuild equivalence, drain-to-empty, the Fig 6 sweeps — compare
// complete system states across runs, so one wall-clock read or one draw
// from the global rand source hidden in a hot path invalidates every one
// of them.
//
// Flagged inside the target packages:
//
//   - time.Now / time.Since: wall-clock reads (timing-only measurement
//     sites are annotated `//lint:nondeterminism timing only, ...`);
//   - package-level math/rand and math/rand/v2 functions (Int, IntN,
//     Float64, Shuffle, Perm, ...): draws from the process-global source.
//     Constructors (New, NewPCG, NewSource, ...) stay quiet — building a
//     seeded *rand.Rand is exactly the compliant pattern;
//   - select statements with two or more ready-channel cases: the runtime
//     picks uniformly at random, so the winner is schedule-dependent.
//
// Target packages are the built-in seed-deterministic set below; a
// package outside it opts in by carrying a `//cosmoslint:deterministic`
// comment in any of its files.
package nondeterminism

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nondeterminism",
	Doc: "flag wall-clock reads, global rand-source draws and multi-case " +
		"selects in packages that must be seed-deterministic",
	Run: run,
}

// deterministicPackages is the built-in target set: the routing core, the
// chaos fabric and the optimizer stack.
var deterministicPackages = map[string]bool{
	"repro/internal/pubsub":    true,
	"repro/internal/chaos":     true,
	"repro/internal/adapt":     true,
	"repro/internal/mapping":   true,
	"repro/internal/hierarchy": true,
	"repro/internal/diffusion": true,
}

func run(pass *analysis.Pass) error {
	if !applies(pass) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, x)
			case *ast.SelectStmt:
				checkSelect(pass, x)
			}
			return true
		})
	}
	return nil
}

func applies(pass *analysis.Pass) bool {
	if deterministicPackages[pass.Pkg.Path()] {
		return true
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "cosmoslint:deterministic") {
					return true
				}
			}
		}
	}
	return false
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(), "time.%s in a seed-deterministic package: wall-clock reads cannot replay (thread a logical clock through, or annotate //lint:nondeterminism for timing-only measurement)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if strings.HasPrefix(fn.Name(), "New") {
			return // seeded-source constructors are the compliant pattern
		}
		pass.Reportf(call.Pos(), "%s.%s draws from the process-global rand source: not seed-replayable — draw from a seeded *rand.Rand threaded through the config (or annotate //lint:nondeterminism)", fn.Pkg().Name(), fn.Name())
	}
}

func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	comm := 0
	for _, cl := range sel.Body.List {
		if c, ok := cl.(*ast.CommClause); ok && c.Comm != nil {
			comm++
		}
	}
	if comm >= 2 {
		pass.Reportf(sel.Pos(), "select with %d channel cases in a seed-deterministic package: the runtime picks ready cases uniformly at random (drain in a fixed order, or annotate //lint:nondeterminism)", comm)
	}
}
