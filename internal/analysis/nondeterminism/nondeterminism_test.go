package nondeterminism_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/nondeterminism"
)

func TestNondeterminism(t *testing.T) {
	analyzertest.Run(t, nondeterminism.Analyzer, "./testdata/src/a")
}

func TestNondeterminismOptOut(t *testing.T) {
	analyzertest.Run(t, nondeterminism.Analyzer, "./testdata/src/optout")
}
