// Package analysis is the core of cosmoslint, the repo's custom static
// analysis suite. It mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer owns a Run function that inspects one type-checked package
// through a Pass and reports Diagnostics — but is built entirely on the
// standard library so the suite works in hermetic build environments
// (no module downloads: packages are loaded from source plus the gc
// export data the `go list -export` build produces; see the load package).
//
// The analyzers live one package each under this directory (maporder,
// lockdiscipline, poolescape, errdrop, nondeterminism); the checker
// package registers and runs them, load type-checks the module, and
// analyzertest is the golden-fixture harness. LINT.md at the repo root
// documents each analyzer's invariant and escape hatch; CONCURRENCY.md
// documents the memory-model contracts the lockdiscipline and
// nondeterminism rules enforce.
//
// Invariant escape hatches: a finding can be suppressed with an
// annotation comment naming the analyzer,
//
//	//lint:maporder stats line, order-insensitive summation
//	//lint:errdrop,nondeterminism <reason>
//	//cosmoslint:ignore poolescape <reason>
//
// either trailing on the flagged line or alone on the line above it. The
// reason is not parsed but is required by convention: annotations are the
// greppable record of every intentional invariant exception. Suppression
// is applied uniformly by the checker, not per analyzer.
package analysis
