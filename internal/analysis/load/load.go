// Package load type-checks the packages of this module for cosmoslint
// without golang.org/x/tools/go/packages: `go list -export -deps -json`
// names every source file and produces gc export data for every
// dependency in the build cache, and the standard library's gc importer
// reads that export data through a lookup callback. The result is a fully
// type-checked package (AST + go/types info) per target, loaded from
// source, with no network access and no dependencies outside the standard
// library.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked target.
type Package struct {
	ImportPath string
	// ForTest is the base import path when this is a test variant
	// (`p [p.test]` or `p_test [p.test]`) loaded under IncludeTests.
	ForTest string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors holds soft type-checking errors. Loading fails hard only
	// when a package cannot be checked at all.
	TypeErrors []error
}

// Config controls a Load.
type Config struct {
	// Dir is the directory `go list` runs in (any directory inside the
	// module). Empty means the current directory.
	Dir string
	// IncludeTests loads the test variants of matched packages (their
	// GoFiles include the _test.go files) instead of just the base
	// packages.
	IncludeTests bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct{ Err string }
}

// Load lists patterns, parses every matched package from source and
// type-checks it against the export data of its dependencies.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-export", "-deps", "-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly,ForTest,ImportMap,Module,Error"}
	if cfg.IncludeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || p.DepOnly {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // the synthesized test-binary main package
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("package %s uses cgo, which the loader does not support", p.ImportPath)
		}
		q := p
		targets = append(targets, &q)
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func check(fset *token.FileSet, t *listPkg, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(t.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}

	// The importer is built fresh per target: test variants resolve some
	// import paths to the variant's own export data via ImportMap, so a
	// shared importer cache would conflate `p` with `p [p.test]`.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := t.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}

	pkg := &Package{
		ImportPath: t.ImportPath,
		ForTest:    t.ForTest,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	if t.Module != nil && t.Module.GoVersion != "" {
		conf.GoVersion = "go" + t.Module.GoVersion
	}
	tpkg, err := conf.Check(t.ImportPath, fset, files, pkg.Info)
	if tpkg == nil {
		return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
