package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:
	// suppression annotations. It must be a single lowercase word.
	Name string

	// Doc is the one-paragraph description printed by `cosmoslint -help`
	// and quoted in LINT.md.
	Doc string

	// Run inspects the package presented by pass and reports findings
	// through pass.Reportf. An error aborts the whole cosmoslint run —
	// reserve it for internal failures, not findings.
	Run func(pass *Pass) error
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// NewPass assembles a Pass. The report callback receives every diagnostic
// as it is issued (before suppression filtering, which is the checker's
// job).
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, report: report}
}

// Reportf issues a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by ident, consulting both Defs and
// Uses, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Suppressions indexes the //lint: annotation comments of one package:
// sup[filename][line] holds the analyzer names suppressed on that line.
type Suppressions map[string]map[int]map[string]bool

// BuildSuppressions scans the comment groups of files for suppression
// annotations. An annotation suppresses findings on the line its comment
// ends on and on the immediately following line, so both the trailing and
// the line-above placements work.
func BuildSuppressions(fset *token.FileSet, files []*ast.File) Suppressions {
	sup := Suppressions{}
	add := func(pos token.Position, names []string) {
		file := sup[pos.Filename]
		if file == nil {
			file = map[int]map[string]bool{}
			sup[pos.Filename] = file
		}
		for _, line := range []int{pos.Line, pos.Line + 1} {
			set := file[line]
			if set == nil {
				set = map[string]bool{}
				file[line] = set
			}
			for _, n := range names {
				set[n] = true
			}
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				var spec string
				switch {
				case strings.HasPrefix(text, "lint:"):
					spec = strings.TrimPrefix(text, "lint:")
				case strings.HasPrefix(text, "cosmoslint:ignore "):
					spec = strings.TrimPrefix(text, "cosmoslint:ignore ")
				default:
					continue
				}
				fields := strings.Fields(spec)
				if len(fields) == 0 {
					continue
				}
				names := strings.Split(fields[0], ",")
				add(fset.Position(c.End()), names)
			}
		}
	}
	return sup
}

// Suppressed reports whether d is covered by an annotation.
func (s Suppressions) Suppressed(d Diagnostic) bool {
	file := s[d.Pos.Filename]
	if file == nil {
		return false
	}
	return file[d.Pos.Line][d.Analyzer]
}
