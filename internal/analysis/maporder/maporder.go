// Package maporder flags code whose observable behavior depends on Go's
// randomized map iteration order — the TrafficReport bug class from PR 2,
// where per-link float volumes summed in map order drifted between runs
// and broke the bit-identical equivalence oracles.
//
// A `range` over a map is flagged when its body
//
//   - appends to a slice declared outside the loop (element order becomes
//     iteration order), unless the slice is passed to a sort.* / slices.*
//     call later in the same function — the canonical collect-then-sort
//     idiom stays quiet;
//   - accumulates into a float (+=, -=, *=, /=, or x = x + ...): float
//     addition is not associative, so the sum is order-dependent;
//   - sends on a Peer (the five wire-protocol methods): neighbors would
//     observe a different message order each run;
//   - writes wire envelopes (transport-package calls or gob encoding).
//
// Order-insensitive sites are annotated `//lint:maporder <reason>`.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map-range bodies whose effects depend on iteration order " +
		"(slice appends, float accumulation, Peer sends, wire writes)",
	Run: run,
}

// peerMethods is the wire-protocol method set (pubsub.Peer): a send inside
// a map range makes inter-broker message order run-dependent.
var peerMethods = map[string]bool{
	"AdvertFrom":    true,
	"UnadvertFrom":  true,
	"PropagateFrom": true,
	"RetractFrom":   true,
	"RouteFrom":     true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	reported := map[token.Pos]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypeOf(rng.X); t == nil || !isMap(t) {
			return true
		}
		checkRange(pass, body, rng, reported)
		return true
	})
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkRange(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, reported map[token.Pos]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return // already flagged under a nested map range
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, funcBody, rng, st, report)
		case *ast.CallExpr:
			checkCall(pass, st, report)
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, st *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range st.Rhs {
			if i >= len(st.Lhs) {
				break
			}
			obj := rootObj(pass, st.Lhs[i])
			if obj == nil || declaredWithin(obj, rng) {
				continue
			}
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
				if sortedAfter(pass, funcBody, rng, obj) {
					continue
				}
				report(st.Pos(), "append to %q inside range over map: element order follows map iteration order (sort the keys first, sort %q afterward, or annotate //lint:maporder)", obj.Name(), obj.Name())
				continue
			}
			if isFloat(pass.TypeOf(st.Lhs[i])) && mentionsObj(pass, rhs, obj) {
				report(st.Pos(), "float accumulation into %q inside range over map: float addition is not associative, so the result depends on iteration order (sort the keys first or annotate //lint:maporder)", obj.Name())
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := st.Lhs[0]
		obj := rootObj(pass, lhs)
		if obj == nil || declaredWithin(obj, rng) {
			return
		}
		if isFloat(pass.TypeOf(lhs)) {
			report(st.Pos(), "float accumulation into %q inside range over map: float addition is not associative, so the result depends on iteration order (sort the keys first or annotate //lint:maporder)", obj.Name())
		}
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if peerMethods[sel.Sel.Name] {
		report(call.Pos(), "Peer send %s inside range over map: neighbors observe a run-dependent message order (iterate in sorted order or annotate //lint:maporder)", sel.Sel.Name)
		return
	}
	fn := callee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if strings.Contains(path, "transport") || (path == "encoding/gob" && fn.Name() == "Encode") {
		report(call.Pos(), "wire write %s.%s inside range over map: envelopes go out in a run-dependent order (iterate in sorted order or annotate //lint:maporder)", fn.Pkg().Name(), fn.Name())
	}
}

// sortedAfter reports whether obj is handed to a sort.*/slices.* call
// after the range statement, within the same function body — the
// collect-then-sort idiom, which is order-insensitive.
func sortedAfter(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rng.End() {
			return !found
		}
		fn := callee(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObj(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootObj resolves the base identifier of an lvalue chain (x, x.f, x[i],
// *x, ...) to its object.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func declaredWithin(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

func mentionsObj(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}
