// Package a is the maporder fixture: order-sensitive map-range bodies are
// flagged, the collect-then-sort idiom and annotated sites stay quiet.
package a

import (
	"sort"
)

type peer struct{}

func (peer) RouteFrom(int)     {}
func (peer) PropagateFrom(int) {}

type node struct {
	peers map[int]peer
}

// appendUnsorted is the plain bug: element order follows map iteration.
func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside range over map`
	}
	return keys
}

// appendThenSort is the canonical compliant idiom (TrafficReport fix):
// the collected slice is sorted before anyone observes its order.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// floatSum is the TrafficReport bug class: float addition in map order.
func floatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `float accumulation into "total" inside range over map`
	}
	return total
}

// floatSumExplicit spells the accumulation as x = x + v.
func floatSumExplicit(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total = total + v // want `float accumulation into "total" inside range over map`
	}
	return total
}

// intSum is order-insensitive: integer addition is associative.
func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// localAppend appends to a slice scoped to the loop body: each iteration
// sees a fresh slice, so cross-iteration order cannot leak out.
func localAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		n += len(doubled)
	}
	return n
}

// peerSends flags the wire-protocol method set inside a map range.
func peerSends(n node) {
	for _, p := range n.peers {
		p.RouteFrom(1) // want `Peer send RouteFrom inside range over map`
	}
}

// annotated is the allowlist escape hatch: the send is order-insensitive
// (idempotent control refresh), recorded greppably.
func annotated(n node) {
	for _, p := range n.peers {
		//lint:maporder idempotent refresh, receiver dedupes by epoch
		p.PropagateFrom(7)
	}
}

// sortedKeysThenSend is the compliant send pattern: range over the sorted
// key slice, not the map.
func sortedKeysThenSend(n node) {
	keys := make([]int, 0, len(n.peers))
	for k := range n.peers {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		n.peers[k].RouteFrom(1)
	}
}
