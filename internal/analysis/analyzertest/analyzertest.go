// Package analyzertest is the golden-test harness for cosmoslint
// analyzers, modeled on golang.org/x/tools/go/analysis/analysistest:
// fixture packages live under the analyzer's testdata/ directory (which
// `go build ./...` ignores) and mark each expected finding with a trailing
// comment on the offending line,
//
//	out = append(out, k) // want `map range feeds`
//
// where the backquoted (or double-quoted) text is a regular expression the
// diagnostic message must match; several `// want` expectations on one
// line each need a matching diagnostic. Lines without a want comment must
// produce no diagnostic. Suppression annotations are applied exactly as in
// a real cosmoslint run, so allowlist fixtures assert silence by carrying
// a //lint: annotation and no want comment.
package analyzertest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/checker"
	"repro/internal/analysis/load"
)

var wantRE = regexp.MustCompile("// want ((?:[`\"][^`\"]*[`\"]\\s*)+)")
var wantArgRE = regexp.MustCompile("[`\"]([^`\"]*)[`\"]")

// Run loads the fixture package at pattern (a directory path relative to
// the calling test's working directory, e.g. "./testdata/src/a"), applies
// the analyzer, and compares findings against the fixture's want
// comments.
func Run(t *testing.T, a *analysis.Analyzer, pattern string) {
	t.Helper()
	pkgs, err := load.Load(load.Config{}, pattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pattern, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s matched %d packages, want 1", pattern, len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", pattern, pkg.TypeErrors)
	}
	diags, err := checker.Check(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatal(err)
	}

	matched := map[*want]bool{}
	for _, d := range diags {
		ok := false
		for _, w := range wants[key{d.Pos.Filename, d.Pos.Line}] {
			if !matched[w] && w.re.MatchString(d.Message) {
				matched[w] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !matched[w] {
				t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
			}
		}
	}
}

type key struct {
	file string
	line int
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// parseWants scans the fixture sources (as text: want comments may sit on
// lines the parser attaches elsewhere) for expectations.
func parseWants(pkg *load.Package) (map[key][]*want, error) {
	wants := map[key][]*want{}
	seen := map[string]bool{}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if seen[name] {
			continue
		}
		seen[name] = true
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		base := filepath.Base(name)
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(arg[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", base, i+1, arg[1], err)
				}
				k := key{name, i + 1}
				wants[k] = append(wants[k], &want{file: base, line: i + 1, re: re})
			}
		}
	}
	return wants, nil
}
