// Package errdrop flags discarded errors on transport, encode and flush
// calls — the PR 6 bug class, where `_ =`-dropped transport send errors
// hid terminal connection failures until the chaos tests surfaced them.
//
// A call is "must-check" when it returns an error and the callee lives in
// a transport package (import path containing "transport") or in one of
// the wire-adjacent standard packages: encoding/gob, bufio, net. Both
// forms of discard are flagged:
//
//	_ = enc.Encode(env)   // explicit discard
//	enc.Encode(env)       // bare call statement
//
// `defer c.Close()` is NOT flagged (the deferred-cleanup idiom); a
// non-deferred `_ = c.Close()` is, and the intentional ones — closing an
// already-poisoned gob stream, say — carry a `//lint:errdrop <reason>`
// annotation that documents why the error is meaningless there.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "flag discarded errors (_ = and bare calls) on transport, encode " +
		"and flush calls",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					check(pass, call, "return value not checked")
				}
			case *ast.AssignStmt:
				checkAssign(pass, st)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags must-check calls whose error result lands in a blank
// identifier.
func checkAssign(pass *analysis.Pass, st *ast.AssignStmt) {
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// x, _ := f(): the blank position must be the error result.
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		for i, lhs := range st.Lhs {
			if isBlank(lhs) && resultIsError(pass, call, i) {
				check(pass, call, "error discarded into _")
			}
		}
		return
	}
	for i, rhs := range st.Rhs {
		if i >= len(st.Lhs) || !isBlank(st.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if resultIsError(pass, call, 0) {
			check(pass, call, "error discarded into _")
		}
	}
}

func check(pass *analysis.Pass, call *ast.CallExpr, how string) {
	fn := callee(pass, call)
	if fn == nil || !returnsError(fn) || !mustCheck(fn) {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s.%s %s: transport/encode/flush errors signal dead connections and poisoned streams — handle it, or annotate //lint:errdrop with the reason it is meaningless here", fn.Pkg().Name(), fn.Name(), how)
}

// mustCheck reports whether fn belongs to the wire-path call set.
func mustCheck(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	if strings.Contains(path, "transport") {
		return true
	}
	switch path {
	case "encoding/gob", "bufio", "net":
		return true
	}
	return false
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return isErrorType(res.At(res.Len() - 1).Type())
}

// resultIsError reports whether result i of the call is of type error.
func resultIsError(pass *analysis.Pass, call *ast.CallExpr, i int) bool {
	t := pass.TypeOf(call)
	if tup, ok := t.(*types.Tuple); ok {
		return i < tup.Len() && isErrorType(tup.At(i).Type())
	}
	return i == 0 && t != nil && isErrorType(t)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}
