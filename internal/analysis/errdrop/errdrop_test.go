package errdrop_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/errdrop"
)

func TestErrDrop(t *testing.T) {
	analyzertest.Run(t, errdrop.Analyzer, "./testdata/src/a")
}

func TestErrDropTransportPackage(t *testing.T) {
	analyzertest.Run(t, errdrop.Analyzer, "./testdata/src/transport")
}
