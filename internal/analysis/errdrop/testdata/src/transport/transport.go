// Package transport is the errdrop fixture for the in-repo transport
// arm: the package path contains "transport", so its own error-returning
// functions are must-check even from inside the package — the PR 6 bug
// was exactly an in-package `_ =` drop of send().
package transport

type conn struct{}

func (conn) send(b []byte) error { return nil }
func (conn) flush() error        { return nil }
func (conn) size() (int, error)  { return 0, nil }
func helperNoError(b []byte) int { return len(b) }

func dropSend(c conn, b []byte) {
	_ = c.send(b) // want `error result of transport\.send error discarded into _`
}

func bareFlush(c conn) {
	c.flush() // want `error result of transport\.flush return value not checked`
}

func handled(c conn, b []byte) error {
	if err := c.send(b); err != nil {
		return err
	}
	return c.flush()
}

func keepValueDropError(c conn) int {
	n, _ := c.size() // want `error result of transport\.size error discarded into _`
	return n
}

func noError(b []byte) {
	helperNoError(b)
}
