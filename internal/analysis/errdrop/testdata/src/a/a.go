// Package a is the errdrop fixture: discarded errors on wire-adjacent
// calls (gob encode, bufio flush, net writes) are flagged; handled
// errors, non-wire drops and annotated sites stay quiet.
package a

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"strings"
)

func encodeDropped(enc *gob.Encoder, v any) {
	_ = enc.Encode(v) // want `error result of gob\.Encode error discarded into _`
}

func encodeBare(enc *gob.Encoder, v any) {
	enc.Encode(v) // want `error result of gob\.Encode return value not checked`
}

func encodeHandled(enc *gob.Encoder, v any) error {
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	return nil
}

func flushDropped(w *bufio.Writer) {
	_ = w.Flush() // want `error result of bufio\.Flush error discarded into _`
}

func closeDropped(c net.Conn) {
	_ = c.Close() // want `error result of net\.Close error discarded into _`
}

// closeDeferred is the deferred-cleanup idiom: not flagged.
func closeDeferred(c net.Conn) {
	defer c.Close()
}

// closeAnnotated documents why the error is meaningless: the stream is
// already poisoned, Close is best-effort teardown.
func closeAnnotated(c net.Conn) {
	//lint:errdrop stream already poisoned, best-effort teardown
	_ = c.Close()
}

// multiAssign: the error lands in _ next to a kept result.
func multiAssign(c net.Conn, b []byte) int {
	n, _ := c.Write(b) // want `error result of net\.Write error discarded into _`
	return n
}

// nonWireDrop: fmt and strings results are not wire calls — staticcheck
// territory, not ours. Must stay quiet.
func nonWireDrop(sb *strings.Builder) {
	_, _ = fmt.Println("hello")
	sb.WriteString("x")
}
