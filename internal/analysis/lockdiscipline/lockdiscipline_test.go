package lockdiscipline_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analyzertest.Run(t, lockdiscipline.Analyzer, "./testdata/src/a")
}
