// Snapshot write-once fixture: a miniature RCU epoch. Builders filling a
// fresh composite-literal local stay quiet; any write through an already
// published (or merely non-fresh) snapshot value is flagged, including map
// inserts, slice-element stores, appends and increments. Atomic .Store
// calls are method calls, not assignments, and stay quiet by construction.
package a

import "sync/atomic"

// epoch is one published view.
//
// cosmoslint:snapshot
type epoch struct {
	seq   int
	names []string
	dirs  map[int]*dirView
}

// dirView is the per-direction slice of an epoch. cosmoslint:snapshot
type dirView struct {
	cands []int
	prune atomic.Pointer[int]
}

// plain is an ordinary mutable type: writes through it are not checked.
type plain struct {
	n int
}

type owner struct {
	cur atomic.Pointer[epoch]
}

// rebuild is the compliant builder: the locals come from snapshot
// composite literals in this same function, so filling them is allowed.
func (o *owner) rebuild(names []string) {
	next := &epoch{dirs: map[int]*dirView{}}
	next.seq = 1
	next.names = append(next.names, names...)
	dv := &dirView{}
	dv.cands = append(dv.cands, len(names))
	next.dirs[0] = dv
	o.cur.Store(next)
}

// lazyCell is the sanctioned exception shape: storing through an atomic
// cell inside a snapshot is a method call, not an assignment.
func lazyCell(dv *dirView) {
	n := len(dv.cands)
	dv.prune.Store(&n)
}

// mutateLoaded writes through a loaded epoch: flagged on every shape.
func (o *owner) mutateLoaded(k int) {
	e := o.cur.Load()
	e.seq++                        // want `write through cosmoslint:snapshot type epoch outside its builder`
	e.names = append(e.names, "x") // want `write through cosmoslint:snapshot type epoch outside its builder`
	e.dirs[k] = &dirView{}         // want `write through cosmoslint:snapshot type epoch outside its builder`
	e.dirs[k].cands[0] = 7         // want `write through cosmoslint:snapshot type dirView outside its builder`
}

// mutateParam writes through a snapshot parameter — not constructed here,
// so not provably unpublished.
func mutateParam(dv *dirView) {
	dv.cands = nil // want `write through cosmoslint:snapshot type dirView outside its builder`
}

// plainWrites exercises the negative space: ordinary types and plain
// locals never trip the rule.
func plainWrites(p *plain) {
	p.n++
	xs := []int{1}
	xs[0] = 2
	xs = append(xs, 3)
	_ = xs
}
