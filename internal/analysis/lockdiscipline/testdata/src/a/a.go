// Package a is the lockdiscipline fixture: a miniature broker with the
// repo's lock-mutate-unlock-send shape. Sends and Handler callbacks under
// the annotated mutex are flagged, directly and through same-package
// helpers; the compliant entry points and the unannotated mutex stay
// quiet.
package a

import "sync"

type NodeID int

type Peer interface {
	RouteFrom(v int, from NodeID)
	PropagateFrom(sub *int, from NodeID)
}

type Fabric interface {
	Peer(n NodeID) Peer
}

type Handler func(v int)

type Broker struct {
	// mu guards all routing state below. cosmoslint:guards
	mu        sync.Mutex
	net       Fabric
	neighbors []NodeID
	handlers  []Handler
	state     int
}

// Publish is the compliant shape: decide under the lock, send after.
func (b *Broker) Publish(v int) {
	b.mu.Lock()
	b.state = v
	targets := append([]NodeID(nil), b.neighbors...)
	b.mu.Unlock()
	for _, n := range targets {
		b.net.Peer(n).RouteFrom(v, 0)
	}
}

// BadSend sends while holding the mutex: a synchronous neighbor re-entry
// deadlocks right here.
func (b *Broker) BadSend(v int) {
	b.mu.Lock()
	for _, n := range b.neighbors {
		b.net.Peer(n).RouteFrom(v, 0) // want `Peer send RouteFrom while mu is held`
	}
	b.mu.Unlock()
}

// BadDeliver invokes user handlers under a deferred unlock: handlers may
// call back into the broker.
func (b *Broker) BadDeliver(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, h := range b.handlers {
		h(v) // want `callback through Handler while mu is held`
	}
}

// flood reaches a Peer send; calling it under the lock is as bad as
// sending directly.
func (b *Broker) flood(v int) {
	for _, n := range b.neighbors {
		b.net.Peer(n).RouteFrom(v, 0)
	}
}

func (b *Broker) BadTransitive(v int) {
	b.mu.Lock()
	b.state = v
	b.flood(v) // want `call to flood while mu is held .* can reach a send`
	b.mu.Unlock()
}

// BranchUnlock is the unlock-and-return branch pattern: the fall-through
// path still holds the mutex until the explicit Unlock, and the send
// after it is fine.
func (b *Broker) BranchUnlock(v int) {
	b.mu.Lock()
	if v == 0 {
		b.mu.Unlock()
		return
	}
	b.state = v
	b.mu.Unlock()
	b.flood(v)
}

// AsyncRefresh hands the send to a goroutine: the goroutine does not
// inherit the critical section, so nothing is flagged.
func (b *Broker) AsyncRefresh(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = v
	go func(x int) {
		b.flood(x)
	}(v)
}

// Annotated is the escape hatch for a proven-safe site.
func (b *Broker) Annotated(v int) {
	b.mu.Lock()
	//lint:lockdiscipline loopback stub peer, cannot re-enter
	b.net.Peer(0).RouteFrom(v, 0)
	b.mu.Unlock()
}

// Quiet has an unannotated mutex: out of scope, nothing is flagged even
// though it sends under lock.
type Quiet struct {
	mu   sync.Mutex
	peer Peer
}

func (q *Quiet) Send(v int) {
	q.mu.Lock()
	q.peer.RouteFrom(v, 0)
	q.mu.Unlock()
}
